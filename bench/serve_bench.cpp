// serve_bench: throughput and overload behaviour of the solver service.
//
//   $ serve_bench --class S --clients 8 --requests 24 --json serve_raw.json
//
// Three phases (docs/serve.md):
//
//   serial     — the comparator: N solves run back to back in one thread,
//                no service in the way.
//   concurrent — the same N solves offered by `clients` closed-loop client
//                threads against one SolverService sharing the core budget.
//                Gate: speedup >= a core-scaled floor (3x needs >= 8
//                hardware threads; a 1-core host can only be asked not to
//                regress), and every result must match the serial final
//                norm to 1e-12 — concurrency must never change answers.
//   overload   — open-loop Poisson arrivals at ~2x the measured concurrent
//                throughput, mixed priorities, deadlines on non-high
//                requests.  Gates: the queue sheds (bounded, no OOM) and
//                admitted high-priority p99 stays within a core-scaled
//                factor of the unloaded p99.
//
// --json writes the raw summary; bench/serve_consolidate.py validates it
// against bench/serve_schema.json and emits BENCH_serve.json (CI's
// serve-load job runs exactly that pipeline).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "sacpp/common/cli.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/serve/server.hpp"

using namespace sacpp;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t idx = std::min(
      xs.size() - 1, static_cast<std::size_t>(q * static_cast<double>(xs.size())));
  return xs[idx];
}

// Core-scaled gates: the acceptance targets assume >= 8 hardware threads;
// smaller machines (the 1-CPU container this repo's experiments run in, or
// a 4-core CI runner) get proportionally weaker floors, recorded in the
// artifact so readers can see which gate applied.
double speedup_gate(unsigned cores) {
  if (cores >= 8) return 3.0;
  if (cores >= 4) return 2.0;
  if (cores >= 2) return 1.3;
  return 0.75;  // 1 core: the service must not cost more than ~25%
}

double p99_ratio_gate(unsigned cores) {
  // With one core an admitted high-priority job still waits out the
  // non-preemptible job in flight (and queues behind other high jobs, which
  // alone are ~20% core utilisation at 2x overload), so the single-core
  // floor is looser.
  return cores >= 2 ? 2.0 : 4.0;
}

struct PhaseResult {
  double wall_seconds = 0.0;
  double throughput = 0.0;  // completed solves per second
  std::size_t completed = 0;
  std::vector<double> norms;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("class", "S", "benchmark class for every request");
  cli.add_option("clients", "8", "concurrent closed-loop client threads");
  cli.add_option("requests", "24", "solves per phase");
  cli.add_option("cores", "0", "service core budget (0 = hardware)");
  cli.add_option("overload-seconds", "3", "duration of the overload phase");
  cli.add_option("json", "", "write the raw machine-readable summary here");
  cli.add_flag("skip-overload", "run only the throughput phases");
  if (!cli.parse(argc, argv)) return 1;

  const mg::MgClass cls = mg::parse_class(cli.get("class"));
  const auto requests = static_cast<std::size_t>(cli.get_int("requests"));
  const auto clients = static_cast<std::size_t>(cli.get_int("clients"));
  unsigned cores = static_cast<unsigned>(cli.get_int("cores"));
  if (cores == 0) cores = std::max(1u, std::thread::hardware_concurrency());

  const mg::MgSpec spec = mg::MgSpec::for_class(cls);
  mg::RunOptions run_opts;
  run_opts.warmup = false;
  run_opts.record_norms = false;

  // -- phase 1: serialized comparator ---------------------------------------
  PhaseResult serial;
  {
    const double t0 = now_seconds();
    for (std::size_t i = 0; i < requests; ++i) {
      const mg::MgResult r =
          mg::run_benchmark(mg::Variant::kSacDirect, spec, run_opts);
      serial.norms.push_back(r.final_norm);
    }
    serial.wall_seconds = now_seconds() - t0;
    serial.completed = requests;
    serial.throughput = static_cast<double>(requests) / serial.wall_seconds;
  }
  const double golden_norm = serial.norms.front();
  std::printf("serve_bench: serial    %zu solves in %.2fs  (%.2f/s)\n",
              serial.completed, serial.wall_seconds, serial.throughput);

  // -- phase 2: concurrent clients ------------------------------------------
  serve::ServeConfig cfg;
  cfg.total_cores = cores;
  cfg.executors = static_cast<unsigned>(
      std::min<std::size_t>(clients, cores));
  cfg.queue_capacity = std::max<std::size_t>(64, 2 * requests);
  serve::SolverService service(cfg);

  PhaseResult conc;
  {
    std::atomic<std::size_t> next{0};
    std::vector<std::vector<serve::SolveResult>> per_client(clients);
    const double t0 = now_seconds();
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        // Closed loop: each client keeps one request in flight.
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= requests) return;
          serve::SolveRequest req;
          req.id = i + 1;
          req.cls = cls;
          req.gang = 1;  // throughput mode: one core per job
          per_client[c].push_back(service.submit(req).get());
        }
      });
    }
    for (auto& t : threads) t.join();
    conc.wall_seconds = now_seconds() - t0;
    for (const auto& batch : per_client) {
      for (const serve::SolveResult& r : batch) {
        if (serve::solve_completed(r.status)) {
          conc.completed += 1;
          conc.norms.push_back(r.final_norm);
        }
      }
    }
    conc.throughput =
        static_cast<double>(conc.completed) / conc.wall_seconds;
  }
  const double speedup = conc.throughput / serial.throughput;
  double max_norm_rel_err = 0.0;
  for (const double norm : conc.norms) {
    max_norm_rel_err = std::max(
        max_norm_rel_err, std::abs(norm - golden_norm) /
                              std::max(std::abs(golden_norm), 1e-300));
  }
  const bool all_completed = conc.completed == requests;
  const bool norms_ok = all_completed && max_norm_rel_err <= 1e-12;
  const double gate = speedup_gate(cores);
  const bool speedup_ok = speedup >= gate;
  std::printf("serve_bench: concurrent %zu solves in %.2fs  (%.2f/s) with "
              "%zu clients on %u cores\n",
              conc.completed, conc.wall_seconds, conc.throughput, clients,
              cores);
  std::printf("serve_bench: speedup %.2fx (gate %.2fx on %u cores)  "
              "max norm rel err %.2e\n",
              speedup, gate, cores, max_norm_rel_err);

  // -- phase 3: overload ------------------------------------------------------
  bool overload_ran = false;
  bool shed_ok = true;
  bool p99_ok = true;
  double unloaded_p99_ms = 0.0;
  double high_p99_ms = 0.0;
  double p99_ratio = 0.0;
  double offered_rate = 0.0;
  serve::ServerSnapshot overload_snap{};
  std::size_t overload_offered = 0;
  std::size_t overload_completed = 0;
  std::size_t overload_shed = 0;
  if (!cli.get_flag("skip-overload")) {
    overload_ran = true;
    // Unloaded high-priority latency: a handful of solves on the idle
    // service.
    {
      std::vector<double> e2e_ms;
      for (int i = 0; i < 8; ++i) {
        serve::SolveRequest req;
        req.id = 9000 + static_cast<std::uint64_t>(i);
        req.cls = cls;
        req.priority = serve::Priority::kHigh;
        req.gang = 1;
        const serve::SolveResult r = service.submit(req).get();
        e2e_ms.push_back(static_cast<double>(r.e2e_ns) * 1e-6);
      }
      unloaded_p99_ms = quantile(e2e_ms, 0.99);
    }

    offered_rate = 2.0 * conc.throughput;  // 2x measured capacity
    const double duration = cli.get_double("overload-seconds");
    const auto offered =
        static_cast<std::size_t>(offered_rate * duration);
    const double mean_exec_s =
        serial.wall_seconds / static_cast<double>(requests);
    const auto deadline_ns =
        static_cast<std::int64_t>(3.0 * mean_exec_s * 1e9);
    std::mt19937_64 rng(12345);
    std::exponential_distribution<double> gap(offered_rate);
    std::uniform_real_distribution<double> uni(0.0, 1.0);

    std::vector<std::future<serve::SolveResult>> futures;
    std::vector<bool> is_high;
    futures.reserve(offered);
    is_high.reserve(offered);
    const auto start = std::chrono::steady_clock::now();
    double t = 0.0;
    for (std::size_t i = 0; i < offered; ++i) {
      std::this_thread::sleep_until(
          start + std::chrono::nanoseconds(static_cast<std::int64_t>(t * 1e9)));
      t += gap(rng);
      serve::SolveRequest req;
      req.id = 10000 + static_cast<std::uint64_t>(i);
      req.cls = cls;
      req.gang = 1;
      // 10% high keeps the high lane itself well under capacity (the gate
      // measures responsiveness of a small privileged share, not the high
      // lane's own saturation point).
      const bool high = uni(rng) < 0.1;
      req.priority = high ? serve::Priority::kHigh : serve::Priority::kLow;
      if (!high) req.deadline_ns = deadline_ns;  // sheddable bulk traffic
      is_high.push_back(high);
      futures.push_back(service.submit(req));
    }
    std::vector<double> high_e2e_ms;
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const serve::SolveResult r = futures[i].get();
      if (serve::solve_completed(r.status)) {
        overload_completed += 1;
        if (is_high[i]) {
          high_e2e_ms.push_back(static_cast<double>(r.e2e_ns) * 1e-6);
        }
      } else {
        overload_shed += 1;
      }
    }
    overload_offered = offered;
    overload_snap = service.snapshot();
    high_p99_ms = quantile(high_e2e_ms, 0.99);
    p99_ratio = unloaded_p99_ms > 0.0 ? high_p99_ms / unloaded_p99_ms : 0.0;
    // Under 2x overload the bounded queue must shed rather than absorb
    // everything, and the high lane must stay responsive.
    shed_ok = overload_shed > 0;
    p99_ok = !high_e2e_ms.empty() && p99_ratio <= p99_ratio_gate(cores);
    std::printf("serve_bench: overload  offered %zu at %.1f/s for %.1fs: "
                "%zu completed, %zu shed (queue peak %zu)\n",
                overload_offered, offered_rate, duration, overload_completed,
                overload_shed, overload_snap.counters.queue.peak_depth);
    std::printf("serve_bench: high-priority p99 %.2fms vs unloaded %.2fms "
                "(ratio %.2f, gate %.2f)\n",
                high_p99_ms, unloaded_p99_ms, p99_ratio,
                p99_ratio_gate(cores));
  }

  // -- report -----------------------------------------------------------------
  Table tbl({"phase", "solves", "wall_s", "per_s"});
  tbl.add_row({"serial", std::to_string(serial.completed),
               Table::fmt(serial.wall_seconds), Table::fmt(serial.throughput)});
  tbl.add_row({"concurrent", std::to_string(conc.completed),
               Table::fmt(conc.wall_seconds), Table::fmt(conc.throughput)});
  std::printf("\n%s", tbl.to_ascii("serve_bench (class " +
                                   cli.get("class") + ")")
                          .c_str());

  const std::string json_path = cli.get("json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "serve_bench: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"host\": {\"hw_threads\": %u, \"cores_used\": %u},\n",
                 std::max(1u, std::thread::hardware_concurrency()), cores);
    std::fprintf(f, "  \"class\": \"%s\",\n", cli.get("class").c_str());
    std::fprintf(f, "  \"clients\": %zu,\n", clients);
    std::fprintf(
        f,
        "  \"serial\": {\"solves\": %zu, \"wall_seconds\": %.6f, "
        "\"throughput\": %.6f},\n",
        serial.completed, serial.wall_seconds, serial.throughput);
    std::fprintf(
        f,
        "  \"concurrent\": {\"solves\": %zu, \"wall_seconds\": %.6f, "
        "\"throughput\": %.6f},\n",
        conc.completed, conc.wall_seconds, conc.throughput);
    std::fprintf(f, "  \"speedup\": %.6f,\n", speedup);
    std::fprintf(f, "  \"speedup_gate\": %.2f,\n", gate);
    std::fprintf(f, "  \"speedup_ok\": %s,\n", speedup_ok ? "true" : "false");
    std::fprintf(f, "  \"max_norm_rel_err\": %.3e,\n", max_norm_rel_err);
    std::fprintf(f, "  \"norms_ok\": %s,\n", norms_ok ? "true" : "false");
    if (overload_ran) {
      std::fprintf(
          f,
          "  \"overload\": {\"offered\": %zu, \"offered_rate\": %.3f, "
          "\"completed\": %zu, \"shed\": %zu, \"queue_peak\": %zu, "
          "\"unloaded_p99_ms\": %.3f, \"high_p99_ms\": %.3f, "
          "\"p99_ratio\": %.3f, \"p99_gate\": %.2f, \"shed_ok\": %s, "
          "\"p99_ok\": %s},\n",
          overload_offered, offered_rate, overload_completed, overload_shed,
          overload_snap.counters.queue.peak_depth, unloaded_p99_ms,
          high_p99_ms, p99_ratio, p99_ratio_gate(cores),
          shed_ok ? "true" : "false", p99_ok ? "true" : "false");
    }
    const bool all_ok =
        speedup_ok && norms_ok && (!overload_ran || (shed_ok && p99_ok));
    std::fprintf(f, "  \"ok\": %s\n}\n", all_ok ? "true" : "false");
    std::fclose(f);
    std::printf("serve_bench: raw summary written to %s\n",
                json_path.c_str());
  }

  if (!norms_ok) {
    std::fprintf(stderr,
                 "serve_bench: FAIL — concurrent results diverged from the "
                 "serial goldens (completed %zu/%zu, max rel err %.2e)\n",
                 conc.completed, requests, max_norm_rel_err);
    return 1;
  }
  if (!speedup_ok) {
    std::fprintf(stderr,
                 "serve_bench: FAIL — speedup %.2fx below the %.2fx gate "
                 "for %u cores\n",
                 speedup, gate, cores);
    return 1;
  }
  if (overload_ran && !shed_ok) {
    std::fprintf(stderr, "serve_bench: FAIL — 2x overload produced no "
                         "shedding (queue not bounded?)\n");
    return 1;
  }
  if (overload_ran && !p99_ok) {
    std::fprintf(stderr,
                 "serve_bench: FAIL — high-priority p99 %.2fms is %.2fx "
                 "the unloaded p99 (gate %.2fx)\n",
                 high_p99_ms, p99_ratio, p99_ratio_gate(cores));
    return 1;
  }
  std::printf("serve_bench: PASS\n");
  return 0;
}
