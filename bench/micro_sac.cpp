// Microbenchmarks of the SAC array system: with-loop engine dispatch,
// array-library operations, reductions, copy-on-write machinery.

#include <benchmark/benchmark.h>

#include "sacpp/sac/sac.hpp"

namespace {

using namespace sacpp;
using sac::Array;

Array<double> grid2(extent_t n) {
  return sac::with_genarray<double>(Shape{n, n}, [n](const IndexVec& iv) {
    return static_cast<double>(iv[0] * n + iv[1]);
  });
}

Array<double> grid3(extent_t n) {
  return sac::with_genarray<double>(
      cube_shape(3, n), sac::rank3_body([](extent_t i, extent_t j, extent_t k) {
        return static_cast<double>(i + j + k);
      }));
}

void BM_GenarrayRank3Body(benchmark::State& state) {
  const extent_t n = state.range(0);
  for (auto _ : state) {
    auto a = sac::with_genarray<double>(
        cube_shape(3, n),
        sac::rank3_body([](extent_t i, extent_t j, extent_t k) {
          return static_cast<double>(i * j - k);
        }));
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}

void BM_GenarrayIndexVectorBody(benchmark::State& state) {
  const extent_t n = state.range(0);
  for (auto _ : state) {
    auto a = sac::with_genarray<double>(
        cube_shape(3, n), [](const IndexVec& iv) {
          return static_cast<double>(iv[0] * iv[1] - iv[2]);
        });
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}

void BM_ModarrayInterior(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto base = grid3(n);
  for (auto _ : state) {
    auto a = sac::with_modarray(
        base, sac::gen_interior(base.shape()),
        sac::rank3_body(
            [](extent_t i, extent_t j, extent_t k) {
              return static_cast<double>(i + j * k);
            }));
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}

void BM_FoldSum(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto a = grid3(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sac::sum(a));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}

void BM_StridedGenerator(benchmark::State& state) {
  const extent_t n = state.range(0);
  const Shape shp = cube_shape(3, n);
  for (auto _ : state) {
    auto a = sac::with_genarray<double>(
        shp, sac::gen_range({0}, {n}).with_step(2),
        [](const IndexVec&) { return 1.0; }, 0.0);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n / 8);
}

void BM_RotateRank2(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto a = grid2(n);
  for (auto _ : state) {
    auto r = sac::rotate({3, -2}, a);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}

void BM_TransposeRank2(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto a = grid2(n);
  for (auto _ : state) {
    auto r = sac::transpose(a);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}

void BM_CopyOnWrite(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto a = grid3(n);
  for (auto _ : state) {
    Array<double> shared = a;  // O(1)
    shared.mutable_data()[0] = 1.0;  // deep copy
    benchmark::DoNotOptimize(shared.data());
  }
  state.SetBytesProcessed(state.iterations() * n * n * n * 8);
}

void BM_SharedCopyIsO1(benchmark::State& state) {
  auto a = grid3(state.range(0));
  for (auto _ : state) {
    Array<double> b = a;
    benchmark::DoNotOptimize(b.data());
  }
}

void BM_BorderExchangeWithLoop(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto a = grid3(n);
  std::vector<sac::ReadingPartition<double>> parts;
  const Shape shp = a.shape();
  for (std::size_t d = 0; d < 3; ++d) {
    IndexVec lo = uniform_vec(3, 0);
    IndexVec up(shp.extents().begin(), shp.extents().end());
    up[d] = 1;
    parts.push_back({sac::gen_range(lo, up),
                     [d, shp, n](const IndexVec& iv, const double* p) {
                       IndexVec src(iv.begin(), iv.end());
                       src[d] = n - 2;
                       return p[shp.linearize(src)];
                     }});
  }
  for (auto _ : state) {
    a = sac::with_modarray_reading(std::move(a), parts);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * 3 * n * n);
}

}  // namespace

BENCHMARK(BM_GenarrayRank3Body)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GenarrayIndexVectorBody)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ModarrayInterior)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FoldSum)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StridedGenerator)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RotateRank2)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TransposeRank2)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CopyOnWrite)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SharedCopyIsO1)->Arg(64);
BENCHMARK(BM_BorderExchangeWithLoop)->Arg(64)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
