#pragma once
// Shared plumbing of the figure-reproduction binaries: class selection and
// the standard CLI options.

#include <string>
#include <vector>

#include "sacpp/common/cli.hpp"
#include "sacpp/mg/spec.hpp"

namespace sacpp::bench {

// Parse a comma-separated class list ("S,W" / "W,A" / "A").
inline std::vector<mg::MgSpec> parse_classes(const std::string& list) {
  std::vector<mg::MgSpec> specs;
  std::string cur;
  for (char ch : list + ",") {
    if (ch == ',') {
      if (!cur.empty()) specs.push_back(mg::MgSpec::for_class(mg::parse_class(cur)));
      cur.clear();
    } else {
      cur += ch;
    }
  }
  return specs;
}

// The classes every figure binary accepts.  The paper evaluates W and A;
// the default keeps the out-of-the-box run laptop-friendly (W), with
// --classes W,A reproducing the full figure.
inline void add_standard_options(Cli& cli, const std::string& default_classes) {
  cli.add_option("classes", default_classes,
                 "comma-separated NPB classes (S, W, A, B)");
  cli.add_option("csv", "", "also write the table as CSV to this path");
  cli.add_option("repeats", "1", "timed repetitions; the minimum is reported");
}

}  // namespace sacpp::bench
