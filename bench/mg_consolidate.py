#!/usr/bin/env python3
"""Consolidate the MG timing + stencil-ablation runs into BENCH_mg.json.

Usage:
    mg_consolidate.py ABL_JSON SCHEMA_JSON OUT_JSON MIN_IMPROVEMENT_PCT \
        RUN_TXT... [meta...]

ABL_JSON is abl_stencil's google-benchmark JSON output; each RUN_TXT is one
teed npb_mg result block.  The summary records per-run wall time / Mop/s /
verification verdict (plus stencil mode and reused-row count for the SAC
variants) and the per-kernel ns/point ladder, then gates the kPlanes
improvement over kGrouped at the class-W-sized grid (n = 66): less than
MIN_IMPROVEMENT_PCT, an unparseable run, or an UNSUCCESSFUL verification is
a bench failure, not a silent artifact.  The file is written only after the
summary validates against the checked-in schema.

Extra ``key=value`` arguments are stored under ``"run"``.
Uses only the Python standard library (plus the sibling obs_consolidate
module for the shared schema validator).
"""

import json
import re
import sys

from obs_consolidate import validate

GATE_N = 66  # the class-W-sized rung of the abl_stencil ladder

# Lines of the npb_mg result block (driver.cpp npb_report + the npb_mg
# stencil-mode trailer).  Anchored loosely so column-width tweaks survive.
RUN_FIELDS = {
    "impl": (r"^ Implementation\s+= (.+)$", str),
    "class": (r"^ Class\s+= (.+)$", str),
    "seconds": (r"^ Time in seconds\s+= ([0-9.eE+-]+)$", float),
    "mops": (r"^ Mop/s total\s+= ([0-9.eE+-]+)$", float),
    "verification": (r"^ Verification\s+= (.+)$", str),
    "stencil_mode": (r"^ Stencil mode\s+= (.+)$", str),
    "rows_reused": (r"^ Rows reused\s+= ([0-9]+)$", int),
}
OPTIONAL_FIELDS = {"stencil_mode", "rows_reused"}


def parse_run(path):
    with open(path) as f:
        text = f.read()
    row = {}
    for field, (pattern, kind) in RUN_FIELDS.items():
        m = re.search(pattern, text, re.MULTILINE)
        if m:
            row[field] = kind(m.group(1).strip())
    missing = set(RUN_FIELDS) - OPTIONAL_FIELDS - set(row)
    if missing:
        raise ValueError(f"{path}: missing {sorted(missing)}")
    return row


def parse_ablation(path):
    """abl_stencil gbench JSON -> [{kernel, n, ns_per_point}]."""
    with open(path) as f:
        doc = json.load(f)
    points = []
    for b in doc.get("benchmarks", []):
        m = re.match(r"^BM_Stencil(\w+)/(\d+)$", b.get("name", ""))
        if not m or "items_per_second" not in b:
            continue
        points.append(
            {
                "kernel": m.group(1).lower(),
                "n": int(m.group(2)),
                "ns_per_point": 1e9 / b["items_per_second"],
            }
        )
    return points


def main(argv):
    if len(argv) < 6:
        sys.stderr.write(__doc__)
        return 2
    abl_path, schema_path, out_path = argv[1:4]
    min_improvement = float(argv[4])
    run_paths = [a for a in argv[5:] if "=" not in a]
    run_meta = dict(kv.split("=", 1) for kv in argv[5:] if "=" in kv)

    runs = [parse_run(p) for p in run_paths]
    bad = [r for r in runs if r["verification"] == "UNSUCCESSFUL"]
    if bad:
        for r in bad:
            sys.stderr.write(
                f"UNSUCCESSFUL verification: {r['impl']} class {r['class']}\n"
            )
        return 1

    points = parse_ablation(abl_path)
    ladder = {(p["kernel"], p["n"]): p["ns_per_point"] for p in points}
    try:
        grouped = ladder[("grouped", GATE_N)]
        planes = ladder[("planes", GATE_N)]
    except KeyError as e:
        sys.stderr.write(f"{abl_path}: no ns/point sample for {e}\n")
        return 1
    improvement = 100.0 * (1.0 - planes / grouped)

    summary = {
        "run": run_meta,
        "runs": runs,
        "stencil": {
            "points": points,
            "gate": {
                "n": GATE_N,
                "grouped_ns_per_point": grouped,
                "planes_ns_per_point": planes,
                "improvement_pct": improvement,
                "min_improvement_pct": min_improvement,
            },
        },
    }

    with open(schema_path) as f:
        schema = json.load(f)
    errors = validate(summary, schema)
    if errors:
        sys.stderr.write("BENCH_mg.json failed schema validation:\n")
        for e in errors:
            sys.stderr.write(f"  {e}\n")
        return 1

    with open(out_path, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(
        f"{out_path}: {len(runs)} runs, {len(points)} stencil samples, "
        f"planes vs grouped at n={GATE_N}: {improvement:.1f}% faster "
        f"(gate {min_improvement:.0f}%)"
    )
    if improvement < min_improvement:
        sys.stderr.write(
            f"GATE FAILED: kPlanes improves on kGrouped by only "
            f"{improvement:.1f}% at n={GATE_N} "
            f"(required {min_improvement:.0f}%)\n"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
