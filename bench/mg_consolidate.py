#!/usr/bin/env python3
"""Consolidate the MG timing + stencil/backend-ablation runs into BENCH_mg.json.

Usage:
    mg_consolidate.py ABL_JSON BACKEND_JSON SCHEMA_JSON OUT_JSON \
        MIN_IMPROVEMENT_PCT MIN_SPEEDUP MIN_JIT_SPEEDUP MAX_JIT_WALL_RATIO \
        RUN_TXT... [meta...]

ABL_JSON is abl_stencil's google-benchmark JSON output, BACKEND_JSON is
abl_backend's; each RUN_TXT is one teed npb_mg result block.  The summary
records per-run wall time / Mop/s / verification verdict (plus stencil
mode, backend, and reused-row count for the SAC variants), the per-kernel
ns/point ladder, and the per-row-primitive backend breakdown, then applies
four gates at the class-W-sized grid (n = 66):
  * the kPlanes improvement over kGrouped must reach MIN_IMPROVEMENT_PCT;
  * the simd row engine must beat scalar by MIN_SPEEDUP x on the fused
    resid and psinv row paths (BM_BackendFused, docs/backends.md);
  * the jit row engine must beat scalar by MIN_JIT_SPEEDUP x on the same
    fused rows, with its kernels warm (docs/jit.md);
  * the warm class-W jit wall time must stay within MAX_JIT_WALL_RATIO of
    the simd run's (both planes-mode SAC runs).
A failed gate, an unparseable run, or an UNSUCCESSFUL verification is a
bench failure, not a silent artifact.  The file is written only after the
summary validates against the checked-in schema.

Extra ``key=value`` arguments are stored under ``"run"``.
Uses only the Python standard library (plus the sibling obs_consolidate
module for the shared schema validator).
"""

import json
import re
import sys

from obs_consolidate import validate

GATE_N = 66  # the class-W-sized rung of the abl_stencil ladder

# Lines of the npb_mg result block (driver.cpp npb_report + the npb_mg
# stencil-mode trailer).  Anchored loosely so column-width tweaks survive.
RUN_FIELDS = {
    "impl": (r"^ Implementation\s+= (.+)$", str),
    "class": (r"^ Class\s+= (.+)$", str),
    "seconds": (r"^ Time in seconds\s+= ([0-9.eE+-]+)$", float),
    "mops": (r"^ Mop/s total\s+= ([0-9.eE+-]+)$", float),
    "verification": (r"^ Verification\s+= (.+)$", str),
    "stencil_mode": (r"^ Stencil mode\s+= (.+)$", str),
    "backend": (r"^ Backend\s+= (.+)$", str),
    "rows_reused": (r"^ Rows reused\s+= ([0-9]+)$", int),
}
OPTIONAL_FIELDS = {"stencil_mode", "backend", "rows_reused"}


def parse_run(path):
    with open(path) as f:
        text = f.read()
    row = {}
    for field, (pattern, kind) in RUN_FIELDS.items():
        m = re.search(pattern, text, re.MULTILINE)
        if m:
            row[field] = kind(m.group(1).strip())
    missing = set(RUN_FIELDS) - OPTIONAL_FIELDS - set(row)
    if missing:
        raise ValueError(f"{path}: missing {sorted(missing)}")
    return row


def parse_ablation(path):
    """abl_stencil gbench JSON -> [{kernel, n, ns_per_point}]."""
    with open(path) as f:
        doc = json.load(f)
    points = []
    for b in doc.get("benchmarks", []):
        m = re.match(r"^BM_Stencil(\w+)/(\d+)$", b.get("name", ""))
        if not m or "items_per_second" not in b:
            continue
        points.append(
            {
                "kernel": m.group(1).lower(),
                "n": int(m.group(2)),
                "ns_per_point": 1e9 / b["items_per_second"],
            }
        )
    return points


def parse_backend_ablation(path):
    """abl_backend gbench JSON -> [{family, primitive, backend, n, ns_per_point}].

    Runs with --benchmark_repetitions emit one entry per repetition (plus
    aggregate rows, whose suffixed names the regex skips); duplicates keep
    the fastest sample, so a one-off scheduling hiccup on a shared runner
    cannot fail the speedup gate.
    """
    with open(path) as f:
        doc = json.load(f)
    best = {}
    for b in doc.get("benchmarks", []):
        m = re.match(
            r"^BM_Backend(Row|Fused|Kernel)/(\w+)/([a-z0-9-]+)/(\d+)$",
            b.get("name", ""),
        )
        if not m or "items_per_second" not in b:
            continue
        key = (m.group(1).lower(), m.group(2), m.group(3), int(m.group(4)))
        ns = 1e9 / b["items_per_second"]
        if key not in best or ns < best[key]:
            best[key] = ns
    return [
        {
            "family": family,
            "primitive": primitive,
            "backend": backend,
            "n": n,
            "ns_per_point": ns,
        }
        for (family, primitive, backend, n), ns in best.items()
    ]


def backend_gate(points, min_speedup):
    """The simd-vs-scalar speedup on the fused resid/psinv rows at n=66."""
    fused = {
        (p["primitive"], p["backend"]): p["ns_per_point"]
        for p in points
        if p["family"] == "fused" and p["n"] == GATE_N
    }
    gate = {"n": GATE_N, "min_speedup": min_speedup}
    for prim in ("resid", "psinv"):
        try:
            scalar = fused[(prim, "scalar")]
            simd = fused[(prim, "simd")]
        except KeyError as e:
            raise ValueError(f"no fused {prim} sample for backend {e}")
        gate[prim] = {
            "scalar_ns_per_point": scalar,
            "simd_ns_per_point": simd,
            "speedup": scalar / simd,
        }
    return gate


def jit_gate(points, runs, min_speedup, max_wall_ratio):
    """The warm jit-vs-scalar fused-row speedup plus the class-W wall check.

    The fused samples come from abl_backend, which drains the kernel cache
    before timing, so they measure compiled kernels, not the fallback.  The
    wall check compares the planes-mode SAC class-W runs on the jit and simd
    engines; run_all.sh warms the jit disk cache first, so the timed run
    dlopens kernels instead of compiling them.
    """
    fused = {
        (p["primitive"], p["backend"]): p["ns_per_point"]
        for p in points
        if p["family"] == "fused" and p["n"] == GATE_N
    }
    gate = {"n": GATE_N, "min_speedup": min_speedup}
    for prim in ("resid", "psinv"):
        try:
            scalar = fused[(prim, "scalar")]
            jit = fused[(prim, "jit")]
        except KeyError as e:
            raise ValueError(f"no fused {prim} sample for backend {e}")
        gate[prim] = {
            "scalar_ns_per_point": scalar,
            "jit_ns_per_point": jit,
            "speedup": scalar / jit,
        }
    wall = {}
    for r in runs:
        # npb_mg reports the backend with its engine suffix ("jit [jit]",
        # "simd [avx512]"); the gate keys on the backend name alone.
        backend = r.get("backend", "").split()[0] if r.get("backend") else ""
        if (
            r["impl"].lower() == "sac"
            and r["class"] == "W"
            and r.get("stencil_mode") == "planes"
            and backend in ("jit", "simd")
        ):
            wall[backend] = r["seconds"]
    if "jit" not in wall or "simd" not in wall:
        raise ValueError(
            "class-W planes runs on both the jit and simd backends are "
            f"required for the wall gate; got {sorted(wall)}"
        )
    gate["class_w_wall"] = {
        "jit_seconds": wall["jit"],
        "simd_seconds": wall["simd"],
        "ratio": wall["jit"] / wall["simd"],
        "max_ratio": max_wall_ratio,
    }
    return gate


def main(argv):
    if len(argv) < 10:
        sys.stderr.write(__doc__)
        return 2
    abl_path, backend_path, schema_path, out_path = argv[1:5]
    min_improvement = float(argv[5])
    min_speedup = float(argv[6])
    min_jit_speedup = float(argv[7])
    max_jit_wall_ratio = float(argv[8])
    run_paths = [a for a in argv[9:] if "=" not in a]
    run_meta = dict(kv.split("=", 1) for kv in argv[9:] if "=" in kv)

    runs = [parse_run(p) for p in run_paths]
    bad = [r for r in runs if r["verification"] == "UNSUCCESSFUL"]
    if bad:
        for r in bad:
            sys.stderr.write(
                f"UNSUCCESSFUL verification: {r['impl']} class {r['class']}\n"
            )
        return 1

    points = parse_ablation(abl_path)
    ladder = {(p["kernel"], p["n"]): p["ns_per_point"] for p in points}
    try:
        grouped = ladder[("grouped", GATE_N)]
        planes = ladder[("planes", GATE_N)]
    except KeyError as e:
        sys.stderr.write(f"{abl_path}: no ns/point sample for {e}\n")
        return 1
    improvement = 100.0 * (1.0 - planes / grouped)

    backend_points = parse_backend_ablation(backend_path)
    try:
        be_gate = backend_gate(backend_points, min_speedup)
        be_jit_gate = jit_gate(
            backend_points, runs, min_jit_speedup, max_jit_wall_ratio
        )
    except ValueError as e:
        sys.stderr.write(f"{backend_path}: {e}\n")
        return 1

    summary = {
        "run": run_meta,
        "runs": runs,
        "stencil": {
            "points": points,
            "gate": {
                "n": GATE_N,
                "grouped_ns_per_point": grouped,
                "planes_ns_per_point": planes,
                "improvement_pct": improvement,
                "min_improvement_pct": min_improvement,
            },
        },
        "backend": {
            "points": backend_points,
            "gate": be_gate,
            "jit_gate": be_jit_gate,
        },
    }

    with open(schema_path) as f:
        schema = json.load(f)
    errors = validate(summary, schema)
    if errors:
        sys.stderr.write("BENCH_mg.json failed schema validation:\n")
        for e in errors:
            sys.stderr.write(f"  {e}\n")
        return 1

    with open(out_path, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(
        f"{out_path}: {len(runs)} runs, {len(points)} stencil samples, "
        f"{len(backend_points)} backend samples; "
        f"planes vs grouped at n={GATE_N}: {improvement:.1f}% faster "
        f"(gate {min_improvement:.0f}%); simd vs scalar fused rows: "
        f"resid {be_gate['resid']['speedup']:.2f}x, "
        f"psinv {be_gate['psinv']['speedup']:.2f}x "
        f"(gate {min_speedup:.2f}x); jit vs scalar fused rows: "
        f"resid {be_jit_gate['resid']['speedup']:.2f}x, "
        f"psinv {be_jit_gate['psinv']['speedup']:.2f}x "
        f"(gate {min_jit_speedup:.2f}x); class-W jit/simd wall ratio "
        f"{be_jit_gate['class_w_wall']['ratio']:.2f} "
        f"(gate {max_jit_wall_ratio:.2f})"
    )
    failed = False
    if improvement < min_improvement:
        sys.stderr.write(
            f"GATE FAILED: kPlanes improves on kGrouped by only "
            f"{improvement:.1f}% at n={GATE_N} "
            f"(required {min_improvement:.0f}%)\n"
        )
        failed = True
    for prim in ("resid", "psinv"):
        speedup = be_gate[prim]["speedup"]
        if speedup < min_speedup:
            sys.stderr.write(
                f"GATE FAILED: simd row engine beats scalar by only "
                f"{speedup:.2f}x on fused {prim} at n={GATE_N} "
                f"(required {min_speedup:.2f}x)\n"
            )
            failed = True
    for prim in ("resid", "psinv"):
        speedup = be_jit_gate[prim]["speedup"]
        if speedup < min_jit_speedup:
            sys.stderr.write(
                f"GATE FAILED: jit row engine beats scalar by only "
                f"{speedup:.2f}x on fused {prim} at n={GATE_N} "
                f"(required {min_jit_speedup:.2f}x)\n"
            )
            failed = True
    wall = be_jit_gate["class_w_wall"]
    if wall["ratio"] > wall["max_ratio"]:
        sys.stderr.write(
            f"GATE FAILED: warm class-W jit wall time is "
            f"{wall['ratio']:.2f}x the simd run's "
            f"(allowed {wall['max_ratio']:.2f}x)\n"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
