// Fig. 12 — speedups relative to each implementation's own sequential time,
// P = 1..10 CPUs, classes W and A.
//
// The paper's end points (10 CPUs of a SUN Ultra Enterprise 4000):
//   SAC 5.3 (W) / 7.6 (A); auto-parallelised Fortran-77 2.8 / 4.0;
//   C/OpenMP 8.0 / 9.0.
//
// Curves come from the calibrated SMP model executing each implementation's
// parallel-region trace (DESIGN.md §4 substitution — this container has one
// CPU).  With --real-threads the binary additionally measures the SAC
// implementation's actual multithreaded runtime on the host, which shows
// real scaling only on a multi-core machine.

#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "sacpp/common/svg_plot.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/machine/model.hpp"
#include "sacpp/machine/paper_data.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/sac/sac.hpp"

using namespace sacpp;
using namespace sacpp::mg;
using namespace sacpp::machine;

namespace {

double paper_endpoint(Variant v, const MgSpec& spec) {
  const bool w = spec.cls == MgClass::W;
  switch (v) {
    case Variant::kSac:
      return w ? paper::kSacSpeedupW10 : paper::kSacSpeedupA10;
    case Variant::kFortran:
      return w ? paper::kF77SpeedupW10 : paper::kF77SpeedupA10;
    case Variant::kOpenMp:
      return w ? paper::kOmpSpeedupW10 : paper::kOmpSpeedupA10;
    case Variant::kSacDirect:
      break;  // not in the paper (future work)
  }
  return 0.0;
}

void real_thread_scaling(const MgSpec& spec, int max_threads) {
  std::printf("Real host scaling of the SAC implementation (hardware "
              "concurrency: %u)\n",
              std::thread::hardware_concurrency());
  RunOptions opts;
  opts.record_norms = false;
  double base = 0.0;
  for (int p = 1; p <= max_threads; ++p) {
    sac::SacConfig cfg = sac::config();
    cfg.mt_enabled = p > 1;
    cfg.mt_threads = static_cast<unsigned>(p);
    sac::ScopedConfig guard(cfg);
    const MgResult res = run_benchmark(Variant::kSac, spec, opts);
    if (p == 1) base = res.seconds;
    std::printf("  P=%2d  %.3fs  speedup %.2f\n", p, res.seconds,
                base / res.seconds);
  }
  sac::shutdown_runtime();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "W,A");
  cli.add_option("cpus", "10", "maximum CPU count");
  cli.add_option("svg", "", "write the figure as SVG to this path prefix");
  cli.add_flag("real-threads", "also measure real SAC thread scaling on host");
  if (!cli.parse(argc, argv)) return 1;

  const int max_cpus = static_cast<int>(cli.get_int("cpus"));
  SmpModel model;

  std::vector<std::string> header{"class", "implementation"};
  for (int p = 1; p <= max_cpus; ++p) header.push_back("P=" + std::to_string(p));
  header.push_back("paper P=10");
  Table table(header);

  for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
    for (Variant v :
         {Variant::kSac, Variant::kFortran, Variant::kOpenMp}) {
      const Trace trace = build_trace(v, spec);
      const auto s = model.speedups(trace, max_cpus);
      std::vector<std::string> row{spec.name(), variant_name(v)};
      for (double x : s) row.push_back(Table::fmt(x, 2));
      row.push_back(spec.cls == MgClass::W || spec.cls == MgClass::A
                        ? Table::fmt(paper_endpoint(v, spec), 1)
                        : "-");
      table.add_row(row);
    }
  }

  std::printf("%s\n",
              table
                  .to_ascii("Fig. 12 — modelled speedups relative to own "
                            "sequential time (SUN E4000 model)")
                  .c_str());

  // ASCII rendition of the curves at P = max_cpus.
  std::printf("speedup at P=%d:\n", max_cpus);
  for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
    for (Variant v :
         {Variant::kSac, Variant::kFortran, Variant::kOpenMp}) {
      const auto s = model.speedups(build_trace(v, spec), max_cpus);
      std::printf("  %-2s %-11s %5.2f |%s|\n", spec.name().c_str(),
                  variant_name(v), s.back(),
                  ascii_bar(s.back(), static_cast<double>(max_cpus)).c_str());
    }
  }
  std::printf("\n");

  table.write_csv(cli.get("csv"));

  if (!cli.get("svg").empty()) {
    for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
      SvgChart chart("Fig. 12 — class " + spec.name() +
                         " (modelled SUN E4000)",
                     "processors", "speedup vs own sequential time");
      for (Variant v :
           {Variant::kSac, Variant::kFortran, Variant::kOpenMp}) {
        const auto s = model.speedups(build_trace(v, spec), max_cpus);
        std::vector<std::pair<double, double>> pts;
        for (int p = 1; p <= max_cpus; ++p) {
          pts.emplace_back(p, s[static_cast<std::size_t>(p - 1)]);
        }
        chart.add_series(variant_name(v), std::move(pts));
      }
      chart.add_diagonal("linear");
      chart.write(cli.get("svg") + "_" + spec.name() + ".svg");
    }
  }

  if (cli.get_flag("real-threads")) {
    const auto specs = bench::parse_classes(cli.get("classes"));
    if (!specs.empty()) {
      real_thread_scaling(specs.front(),
                          std::min(max_cpus,
                                   static_cast<int>(
                                       std::thread::hardware_concurrency())));
    }
  }
  return 0;
}
