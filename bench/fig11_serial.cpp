// Fig. 11 — single-processor performance of the three MG implementations.
//
// The paper reports (SUN Ultra Enterprise 4000, one CPU):
//   class W: Fortran-77 faster than SAC by 29.6 %, SAC faster than C by 14.2 %
//   class A: Fortran-77 faster than SAC by 23.0 %, SAC faster than C by 22.5 %
//
// This binary reports, per class:
//   * measured wall-clock on the current host (this machine, this compiler);
//   * the calibrated machine model's predicted E4000 times, which reproduce
//     the paper's ratios (the substitution documented in DESIGN.md §4);
//   * the paper's published ratios next to both.
//
// Default classes: S,W (quick).  Reproduce the figure with --classes W,A.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/machine/model.hpp"
#include "sacpp/machine/paper_data.hpp"
#include "sacpp/mg/driver.hpp"

using namespace sacpp;
using namespace sacpp::mg;
using namespace sacpp::machine;

namespace {

double measure(Variant v, const MgSpec& spec, int repeats) {
  RunOptions opts;
  opts.record_norms = false;
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const MgResult res = run_benchmark(v, spec, opts);
    best = (r == 0) ? res.seconds : std::min(best, res.seconds);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "S,W");
  if (!cli.parse(argc, argv)) return 1;

  SmpModel model;
  Table table({"class", "implementation", "host [s]", "host rel",
               "model E4000 [s]", "model rel", "paper rel"});

  for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
    const Variant variants[] = {Variant::kFortran, Variant::kSac,
                                Variant::kOpenMp};
    double host[3], modeled[3];
    for (int i = 0; i < 3; ++i) {
      host[i] = measure(variants[i], spec,
                        static_cast<int>(cli.get_int("repeats")));
      modeled[i] =
          model.benchmark_time(build_trace(variants[i], spec), /*cpus=*/1);
    }
    // Paper ratios relative to Fortran-77 (only published for W and A).
    auto paper_rel = [&](int i) -> std::string {
      double f77_over_sac = 0.0, sac_over_c = 0.0;
      if (spec.cls == MgClass::W && spec.nx == 64) {
        f77_over_sac = paper::kF77OverSacW;
        sac_over_c = paper::kSacOverCW;
      } else if (spec.cls == MgClass::A) {
        f77_over_sac = paper::kF77OverSacA;
        sac_over_c = paper::kSacOverCA;
      } else {
        return "-";
      }
      const double rel[3] = {1.0, f77_over_sac, f77_over_sac * sac_over_c};
      return Table::fmt(rel[i], 3);
    };
    for (int i = 0; i < 3; ++i) {
      table.add_row({spec.name(), variant_name(variants[i]),
                     Table::fmt(host[i], 3), Table::fmt(host[i] / host[0], 3),
                     Table::fmt(modeled[i], 2),
                     Table::fmt(modeled[i] / modeled[0], 3), paper_rel(i)});
    }
  }

  std::printf("%s\n",
              table
                  .to_ascii("Fig. 11 — single-processor performance "
                            "(rel = time / Fortran-77 time)")
                  .c_str());
  table.write_csv(cli.get("csv"));
  return 0;
}
