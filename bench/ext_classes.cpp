// Extension (paper Sec. 7 future work) — larger problem sizes and larger
// machines: "This includes larger problem sizes like size classes B and C
// of the NAS specification but also larger multiprocessor systems to
// determine scalability limits which have not yet been reached even for
// size class W."
//
// The calibrated E4000 model extended to P = 1..32 over classes W, A, B, C:
// per class and implementation, the speedup curve and the CPU count where
// it peaks (the scalability limit the paper could not reach with 10 CPUs).
// With --real the class B benchmark additionally runs for real through the
// Fortran-77 port (class C needs ~4 GB and several minutes).
//
// Related work context (paper Sec. 6): the ZPL study [Chamberlain et al.,
// SC'00] reported a maximum speedup of ~5 with 14 processors on classes
// B/C of a similar Sun Enterprise machine — the modelled SAC curves below
// land in the same regime.

#include <cstdio>

#include "bench_common.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/machine/model.hpp"
#include "sacpp/mg/driver.hpp"

using namespace sacpp;
using namespace sacpp::mg;
using namespace sacpp::machine;

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "W,A,B,C");
  cli.add_option("cpus", "32", "maximum modelled CPU count");
  cli.add_flag("real", "also run class B for real (Fortran-77 port)");
  if (!cli.parse(argc, argv)) return 1;

  const int max_cpus = static_cast<int>(cli.get_int("cpus"));
  SmpModel model;

  Table t({"class", "implementation", "S(4)", "S(8)", "S(16)", "S(32)",
           "peak speedup", "at P"});
  for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
    for (Variant v : {Variant::kSac, Variant::kFortran, Variant::kOpenMp}) {
      const Trace trace = build_trace(v, spec);
      const auto s = model.speedups(trace, max_cpus);
      double peak = 0.0;
      int peak_p = 1;
      for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] > peak) {
          peak = s[i];
          peak_p = static_cast<int>(i) + 1;
        }
      }
      auto at = [&](int p) {
        return p <= max_cpus ? Table::fmt(s[static_cast<std::size_t>(p - 1)], 2)
                             : std::string("-");
      };
      t.add_row({spec.name(), variant_name(v), at(4), at(8), at(16), at(32),
                 Table::fmt(peak, 2), std::to_string(peak_p)});
    }
  }
  std::printf("%s\n",
              t.to_ascii("Future work: modelled scalability limits, "
                         "classes W/A/B/C, up to " +
                         std::to_string(max_cpus) + " CPUs (E4000-class "
                         "bus scaled accordingly)")
                  .c_str());

  if (cli.get_flag("real")) {
    const MgSpec spec = MgSpec::for_class(MgClass::B);
    RunOptions opts;
    opts.record_norms = false;
    const MgResult res = run_benchmark(Variant::kFortran, spec, opts);
    std::printf("Real class B (Fortran-77 port): %.2fs, %.1f nominal "
                "Mflop/s, final norm %.6e\n",
                res.seconds, res.mflops, res.final_norm);
  }
  return 0;
}
