// Ablation 5 (DESIGN.md D3) — rank specialisation: the unrolled rank-3
// execution path (with-loop scalarisation + index-vector elimination) vs
// the rank-generic odometer walker, on the kernels MG actually runs.

#include <benchmark/benchmark.h>

#include "sacpp/sac/sac.hpp"

namespace {

using namespace sacpp;
using sac::Array;

Array<double> input_grid(extent_t n) {
  return sac::with_genarray<double>(
      cube_shape(3, n), sac::rank3_body([](extent_t i, extent_t j, extent_t k) {
        return 1e-3 * static_cast<double>(i * 7 + j * 3 + k);
      }));
}

const sac::StencilCoeffs kS{{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0}};

void with_specialize(bool on, benchmark::State& state,
                     const std::function<void()>& body) {
  sac::SacConfig cfg = sac::config();
  cfg.specialize = on;
  sac::ScopedConfig guard(cfg);
  for (auto _ : state) body();
}

void BM_RelaxSpecialized(benchmark::State& state) {
  auto a = input_grid(state.range(0));
  with_specialize(true, state, [&] {
    auto r = sac::relax_kernel(a, kS);
    benchmark::DoNotOptimize(r.data());
  });
  state.SetItemsProcessed(state.iterations() * a.elem_count());
}

void BM_RelaxGeneric(benchmark::State& state) {
  auto a = input_grid(state.range(0));
  with_specialize(false, state, [&] {
    auto r = sac::relax_kernel(a, kS);
    benchmark::DoNotOptimize(r.data());
  });
  state.SetItemsProcessed(state.iterations() * a.elem_count());
}

void BM_EwiseSpecialized(benchmark::State& state) {
  auto a = input_grid(state.range(0));
  auto b = input_grid(state.range(0));
  with_specialize(true, state, [&] {
    auto r = a + b;
    benchmark::DoNotOptimize(r.data());
  });
  state.SetItemsProcessed(state.iterations() * a.elem_count());
}

void BM_EwiseGeneric(benchmark::State& state) {
  auto a = input_grid(state.range(0));
  auto b = input_grid(state.range(0));
  with_specialize(false, state, [&] {
    auto r = a + b;
    benchmark::DoNotOptimize(r.data());
  });
  state.SetItemsProcessed(state.iterations() * a.elem_count());
}

void BM_CondenseSpecialized(benchmark::State& state) {
  auto a = input_grid(state.range(0));
  with_specialize(true, state, [&] {
    auto r = sac::condense(2, a);
    benchmark::DoNotOptimize(r.data());
  });
  state.SetItemsProcessed(state.iterations() * a.elem_count() / 8);
}

void BM_CondenseGeneric(benchmark::State& state) {
  auto a = input_grid(state.range(0));
  with_specialize(false, state, [&] {
    auto r = sac::condense(2, a);
    benchmark::DoNotOptimize(r.data());
  });
  state.SetItemsProcessed(state.iterations() * a.elem_count() / 8);
}

}  // namespace

BENCHMARK(BM_RelaxSpecialized)->Arg(34)->Arg(66)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RelaxGeneric)->Arg(34)->Arg(66)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EwiseSpecialized)->Arg(66)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EwiseGeneric)->Arg(66)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CondenseSpecialized)->Arg(66)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CondenseGeneric)->Arg(66)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
