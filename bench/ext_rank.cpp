// Extension — the price of rank genericity.
//
// The paper's central expressiveness claim is that the identical MG code
// runs on grids of any dimension (double[+]).  This binary quantifies what
// that costs at runtime: the same MGrid code on 1-D, 2-D and 3-D problems
// of comparable element count, with per-element rates, plus the effect of
// the rank-3 specialisation (which only fires for rank 3 — exactly the
// trade sac2c makes when it specialises shape-generic code).

#include <cstdio>

#include "bench_common.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/common/timer.hpp"
#include "sacpp/mg/mg_sac.hpp"
#include "sacpp/sac/sac.hpp"

using namespace sacpp;
using namespace sacpp::mg;

namespace {

sac::Array<double> dipole_rhs(const Shape& shp) {
  auto v = sac::with_genarray<double>(shp, [&](const IndexVec& iv) -> double {
    if (iv[0] == 3) return 1.0;
    if (iv[0] == shp.extent(0) / 2) return -1.0;
    return 0.0;
  });
  return MgSac::setup_periodic_border(std::move(v));
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "S");
  cli.add_option("iterations", "4", "V-cycle iterations per measurement");
  if (!cli.parse(argc, argv)) return 1;
  const int iters = static_cast<int>(cli.get_int("iterations"));

  struct Case {
    int rank;
    extent_t nx;
  };
  // roughly 2^18 interior elements each
  const Case cases[] = {{1, 262144}, {2, 512}, {3, 64}};

  Table t({"rank", "grid", "elements", "time [s]", "ns/element/iter",
           "specialised"});
  for (const Case& c : cases) {
    const MgSpec spec = MgSpec::custom(c.nx, iters);
    MgSac mg(spec);
    const Shape shp = cube_shape(static_cast<std::size_t>(c.rank), c.nx + 2);
    const auto v = dipole_rhs(shp);
    for (bool specialize : {true, false}) {
      if (c.rank != 3 && specialize) continue;  // only rank 3 has a fast path
      sac::SacConfig cfg = sac::config();
      cfg.specialize = specialize;
      sac::ScopedConfig guard(cfg);
      Timer timer;
      auto u = mg.mgrid(v, iters);
      const double secs = timer.elapsed_seconds();
      const double elems = static_cast<double>(shp.elem_count());
      t.add_row({std::to_string(c.rank),
                 std::to_string(c.nx) + "^" + std::to_string(c.rank),
                 Table::fmt(elems, 0), Table::fmt(secs, 3),
                 Table::fmt(secs * 1e9 / elems / iters, 1),
                 specialize ? "yes" : "no"});
      (void)u;
    }
  }
  std::printf("%s\n",
              t.to_ascii("Rank genericity: the identical MGrid code across "
                         "dimensions (~equal element count)")
                  .c_str());
  return 0;
}
