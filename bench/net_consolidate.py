#!/usr/bin/env python3
"""Consolidate mg_cluster --json runs into BENCH_net.json.

Usage:
    net_consolidate.py SINGLE_JSON TWO_JSON TWO_NO_OVERLAP_JSON \
        SCHEMA_JSON OUT_JSON

Joins a 1-process class-A run, a 2-process run over loopback TCP, and a
2-process run with halo/compute overlap disabled into one artifact:

  * speedup  = single.seconds / two_proc.seconds, gated on a core-scaled
    floor (the acceptance target assumes >= 2 hardware threads; on a
    single-core host two processes time-slice one CPU, so the floor drops
    to a bounded-overhead check: the wire must not cost more than ~30%).
  * overlap_ratio = no_overlap.seconds / overlap.seconds; overlapping the
    halo exchange with interior compute must never cost more than ~15%
    (on multi-core hosts it must win outright).
  * norms: the 2-process final norm must match the single-process one to
    1e-12 relative -- a fast wrong answer is a failure, not a result.

Validates against bench/net_schema.json and refuses to write the artifact
when any gate fails.  Stdlib only; the JSON-Schema subset validator is
shared with obs_consolidate.py.
"""

import json
import os
import sys

from obs_consolidate import validate


def speedup_gate(cores):
    """Core-scaled 2-process speedup floor (mirrors serve_bench)."""
    if cores >= 8:
        return 1.5
    if cores >= 4:
        return 1.3
    if cores >= 2:
        return 1.15
    return 0.70  # one core: the wire may not cost more than ~30%


def overlap_gate(cores):
    """Overlap-on vs overlap-off floor: >1 demands an outright win."""
    if cores >= 2:
        return 1.0
    return 0.85  # one core: overlap must not cost more than ~15%


def main(argv):
    if len(argv) != 6:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    single_path, two_path, no_overlap_path, schema_path, out_path = argv[1:6]
    with open(single_path) as f:
        single = json.load(f)
    with open(two_path) as f:
        two = json.load(f)
    with open(no_overlap_path) as f:
        no_overlap = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)

    for name, run, ranks, overlap in (("single", single, 1, True),
                                      ("two_proc", two, 2, True),
                                      ("no_overlap", no_overlap, 2, False)):
        if run.get("ranks") != ranks or run.get("overlap") != overlap:
            print(f"net_consolidate: {name} run is ranks="
                  f"{run.get('ranks')} overlap={run.get('overlap')}, "
                  f"expected ranks={ranks} overlap={overlap}",
                  file=sys.stderr)
            return 1
    if not (single["class"] == two["class"] == no_overlap["class"]
            and single["nit"] == two["nit"] == no_overlap["nit"]):
        print("net_consolidate: runs disagree on class/nit", file=sys.stderr)
        return 1

    cores = os.cpu_count() or 1
    speedup = single["seconds"] / max(two["seconds"], 1e-12)
    s_gate = speedup_gate(cores)
    ratio = no_overlap["seconds"] / max(two["seconds"], 1e-12)
    o_gate = overlap_gate(cores)
    norm_err = (abs(single["final_norm"] - two["final_norm"])
                / max(abs(single["final_norm"]), 1e-300))

    summary = {
        "run": {"class": two["class"], "nit": two["nit"]},
        "host": {"hw_threads": cores},
        "single": {"seconds": single["seconds"],
                   "final_norm": single["final_norm"]},
        "two_proc": {"seconds": two["seconds"],
                     "final_norm": two["final_norm"],
                     "bytes_sent": two["bytes_sent"],
                     "bytes_received": two["bytes_received"],
                     "messages": two["messages"]},
        "two_proc_no_overlap": {"seconds": no_overlap["seconds"]},
        "speedup": speedup,
        "speedup_gate": s_gate,
        "speedup_ok": speedup >= s_gate,
        "overlap_ratio": ratio,
        "overlap_gate": o_gate,
        "overlap_ok": ratio >= o_gate,
        "max_norm_rel_err": norm_err,
        "norms_ok": norm_err <= 1e-12,
    }
    summary["ok"] = (summary["speedup_ok"] and summary["overlap_ok"]
                     and summary["norms_ok"])

    errors = validate(summary, schema)
    if errors:
        for err in errors:
            print(f"net_consolidate: {err}", file=sys.stderr)
        return 1
    if not summary["ok"]:
        print(f"net_consolidate: gates failed "
              f"(speedup {speedup:.3f} vs floor {s_gate} on {cores} "
              f"core(s): {summary['speedup_ok']}, overlap ratio "
              f"{ratio:.3f} vs floor {o_gate}: {summary['overlap_ok']}, "
              f"norm rel err {norm_err:.3e}: {summary['norms_ok']}); "
              f"refusing to write the artifact", file=sys.stderr)
        return 1

    with open(out_path, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"net_consolidate: wrote {out_path} "
          f"(2-process speedup {speedup:.3f} on {cores} core(s), "
          f"overlap ratio {ratio:.3f})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
