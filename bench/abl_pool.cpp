// Ablation — pooled buffer allocator on the small-grid knee (paper Sec. 5/6).
//
// The paper pins SAC's parallel limit on dynamic memory management whose
// cost is invariant in grid size: on the small grids at the bottom of the MG
// V-cycle the per-operation overhead dominates the arithmetic.  The pooled
// allocator (docs/memory.md) attacks exactly that term.  This binary shows:
//
//  * the allocation-path microbench: alloc/release pairs over the class-W
//    V-cycle shape ladder with the pool on vs off, with the aggregate
//    reduction on the bottom-of-V-cycle (sub-threshold) grids — the
//    acceptance number for the pool (--min-reduction enforces it);
//  * real benchmark runs with the pool on vs off: wall time and the
//    hit/miss counters that calibrate the model's pool term;
//  * the model's Fig. 12-style predicted speedup with the malloc-overhead
//    term replaced by the measured pool hit/miss split — the small-grid
//    knee with and without the pool.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/common/timer.hpp"
#include "sacpp/machine/model.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/sac/buffer.hpp"
#include "sacpp/sac/sac.hpp"

using namespace sacpp;
using namespace sacpp::mg;
using namespace sacpp::machine;

namespace {

// One alloc/release pair through the real Buffer hot path (what every
// with-loop result costs before any element is computed).
double time_alloc_pairs(extent_t n, int reps) {
  const std::size_t count = static_cast<std::size_t>(n * n * n);
  Timer timer;
  for (int i = 0; i < reps; ++i) {
    sac::Buffer<double> b(count);
    // Touch one line so lazily mapped pages cannot make cold malloc look
    // artificially cheap relative to a recycled (already mapped) block.
    b.data()[0] = static_cast<double>(i);
  }
  return timer.elapsed_seconds() * 1e9 / reps;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "S,W");
  cli.add_option("min-reduction", "0",
                 "fail unless the bottom-of-V-cycle allocation-path "
                 "reduction reaches this percentage");
  if (!cli.parse(argc, argv)) return 1;

  const MgSpec w = MgSpec::for_class(MgClass::W);

  // 1. allocation-path microbench over the class-W V-cycle shape ladder
  double bottom_on = 0.0, bottom_off = 0.0;
  {
    Table t({"level", "extended grid", "ns/pair pool off", "ns/pair pool on",
             "reduction"});
    for (int k = 1; k <= w.levels(); ++k) {
      const extent_t n = w.extended_extent(k);
      const int reps = n <= 18 ? 200000 : (n <= 34 ? 20000 : 2000);
      double ns[2] = {0.0, 0.0};
      for (bool pool : {false, true}) {
        sac::SacConfig cfg = sac::config();
        cfg.pool = pool;
        sac::ScopedConfig guard(cfg);
        time_alloc_pairs(n, reps / 10 + 1);  // warm caches / pool
        ns[pool ? 1 : 0] = time_alloc_pairs(n, reps);
      }
      // The paper's knee lives on the sub-threshold grids: aggregate the
      // levels whose with-loops run sequentially (D4 threshold).
      const double elems = static_cast<double>(n * n * n);
      if (elems < static_cast<double>(sac::config().mt_threshold) * 2.0) {
        bottom_off += ns[0];
        bottom_on += ns[1];
      }
      t.add_row({std::to_string(k), std::to_string(n) + "^3",
                 Table::fmt(ns[0], 1), Table::fmt(ns[1], 1),
                 Table::fmt(100.0 * (1.0 - ns[1] / ns[0]), 1) + "%"});
    }
    std::printf("%s\n",
                t.to_ascii("Allocation-path cost per buffer alloc/release "
                           "pair, class-W V-cycle shapes")
                    .c_str());
    if (!cli.get("csv").empty()) t.write_csv(cli.get("csv"));
  }
  const double reduction = 100.0 * (1.0 - bottom_on / bottom_off);
  std::printf("Bottom-of-V-cycle allocation-path reduction: %.1f%%\n\n",
              reduction);

  // 2. real runs with the pool on/off: wall time + the counters that feed
  // the model's pool term
  double hit_rate = 1.0;
  {
    Table t({"class", "pool", "time [s]", "allocations", "hits", "misses",
             "hit rate"});
    for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
      for (bool pool : {false, true}) {
        sac::SacConfig cfg = sac::config();
        cfg.pool = pool;
        sac::ScopedConfig guard(cfg);
        sac::reset_stats();
        RunOptions opts;
        opts.record_norms = false;
        const MgResult res = run_benchmark(Variant::kSac, spec, opts);
        const auto& st = sac::stats();
        const double rate =
            st.pool_hits + st.pool_misses > 0
                ? static_cast<double>(st.pool_hits) /
                      static_cast<double>(st.pool_hits + st.pool_misses)
                : 0.0;
        if (pool) hit_rate = rate;  // last class: steady-state measurement
        t.add_row({spec.name(), pool ? "on" : "off",
                   Table::fmt(res.seconds, 3), std::to_string(st.allocations),
                   std::to_string(st.pool_hits),
                   std::to_string(st.pool_misses),
                   pool ? Table::fmt(100.0 * rate, 1) + "%" : "-"});
      }
    }
    std::printf("%s\n",
                t.to_ascii("Real benchmark runs (SAC variant) with the "
                           "pooled allocator on/off")
                    .c_str());
  }

  // 3. model: the Fig. 12 small-grid knee with the malloc term replaced by
  // the measured pool hit/miss split
  {
    TraceOptions off;
    TraceOptions on;
    on.sac_pool = true;
    on.sac_pool_hit_rate = hit_rate;
    const Trace t_off = build_trace(Variant::kSac, w, off);
    const Trace t_on = build_trace(Variant::kSac, w, on);
    SmpModel model;
    const auto s_off = model.speedups(t_off, 10);
    const auto s_on = model.speedups(t_on, 10);
    Table t({"CPUs", "speedup (malloc)", "speedup (pool)", "gain"});
    for (int p = 1; p <= 10; ++p) {
      t.add_row({std::to_string(p), Table::fmt(s_off[p - 1], 2),
                 Table::fmt(s_on[p - 1], 2),
                 Table::fmt(100.0 * (s_on[p - 1] / s_off[p - 1] - 1.0), 1) +
                     "%"});
    }
    std::printf(
        "%s\n",
        t.to_ascii("Modelled class-W speedup on the E4000: the paper's "
                   "memory-management term vs the pooled allocator "
                   "(measured hit rate " +
                   Table::fmt(100.0 * hit_rate, 1) + "%)")
            .c_str());
  }

  if (reduction < cli.get_double("min-reduction")) {
    std::fprintf(stderr,
                 "FAIL: allocation-path reduction %.1f%% is below the "
                 "required %.1f%%\n",
                 reduction, cli.get_double("min-reduction"));
    return 1;
  }
  return 0;
}
