#!/usr/bin/env bash
# Regenerate every figure and ablation of the reproduction.
#
#   bench/run_all.sh [build-dir] [out-dir]
#
# Defaults: build directory ./build, output directory ./bench_results.
# The full paper figures use classes W and A; class A needs ~2 GB RAM and a
# few minutes per variant on a laptop-class machine.

set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-bench_results}"
mkdir -p "$OUT"

# Run one bench, teeing its output; a failure is recorded (with its exit
# status) instead of aborting, so one broken bench cannot hide the rest, and
# the script still exits nonzero at the end.
FAILED=()

run() {
  local name="$1"; shift
  echo "== $name =="
  local status=0
  "$@" | tee "$OUT/$name.txt" || status=$?
  if [[ $status -ne 0 ]]; then
    echo "!! $name failed (exit $status)" >&2
    FAILED+=("$name")
  fi
}

run fig11_serial        "$BUILD/bench/fig11_serial" --classes W,A --csv "$OUT/fig11.csv"
run fig12_speedup       "$BUILD/bench/fig12_speedup" --classes W,A --csv "$OUT/fig12.csv" --svg "$OUT/fig12"
run fig13_speedup_vs_f77 "$BUILD/bench/fig13_speedup_vs_f77" --classes W,A --csv "$OUT/fig13.csv" --svg "$OUT/fig13"
run abl_folding         "$BUILD/bench/abl_folding" --classes S,W
run abl_memory          "$BUILD/bench/abl_memory" --classes S
run abl_pool            "$BUILD/bench/abl_pool" --classes S,W --csv "$OUT/abl_pool.csv" --min-reduction 25
run abl_threshold       "$BUILD/bench/abl_threshold"
run abl_levels          "$BUILD/bench/abl_levels" --classes W
run ext_direct          "$BUILD/bench/ext_direct" --classes S,W
run ext_mpi             "$BUILD/bench/ext_mpi" --classes W,A
run ext_classes         "$BUILD/bench/ext_classes"
run ext_rank            "$BUILD/bench/ext_rank"
run abl_graph           "$BUILD/bench/abl_graph"
run abl_stencil         "$BUILD/bench/abl_stencil" --benchmark_min_time=0.2 \
  --benchmark_out="$OUT/abl_stencil.json" --benchmark_out_format=json
# abl_backend's jit column needs compiled kernels: the bench drains the
# kernel cache before timing, and the shared cache dir lets the class-W jit
# runs below reuse the same .so files instead of recompiling.
run abl_backend env SACPP_JIT_SYNC=1 SACPP_JIT_CACHE_DIR="$OUT/jit_cache" \
  "$BUILD/bench/abl_backend" --benchmark_min_time=0.2 \
  --benchmark_repetitions=5 \
  --benchmark_out="$OUT/abl_backend.json" --benchmark_out_format=json
run abl_specialize      "$BUILD/bench/abl_specialize" --benchmark_min_time=0.2
run micro_sac           "$BUILD/bench/micro_sac" --benchmark_min_time=0.2

# Telemetry artifact: one instrumented class-W run, consolidated into
# BENCH_obs.json.  The consolidator validates the summary against
# bench/obs_schema.json and refuses to emit the file otherwise, so a
# malformed trace/metrics dump fails the bench run instead of producing a
# silently-broken artifact.
run obs_npb_mg "$BUILD/examples/npb_mg" --class W --impl sac --obs \
  --trace-out="$OUT/obs_trace.json" --metrics-out="$OUT/obs_metrics.txt"
run obs_consolidate python3 "$(dirname "$0")/obs_consolidate.py" \
  "$OUT/obs_trace.json" "$OUT/obs_metrics.txt" \
  "$(dirname "$0")/obs_schema.json" "$OUT/BENCH_obs.json" class=W impl=sac

# MG timing artifact: every variant at classes S and W, the SAC variants in
# both the grouped and the shared plane-sum (kPlanes) stencil engines
# (docs/stencil.md), plus kPlanes runs on the simd and jit row engines
# (docs/backends.md, docs/jit.md).  The consolidator joins these wall times
# with abl_stencil's ns/point ladder and abl_backend's per-primitive
# breakdown into BENCH_mg.json, validates it against bench/mg_schema.json,
# and gates at the class-W-sized grid (n = 66): planes-vs-grouped
# improvement under 20%, a fused-row simd-vs-scalar speedup under 1.5x, a
# warm fused-row jit-vs-scalar speedup under 2.0x, or a warm class-W jit
# wall time above 1.10x the simd run's fails the bench run.
for cls in S W; do
  for mode in grouped planes; do
    run "time_mg_sac_${cls}_${mode}" "$BUILD/examples/npb_mg" \
      --class "$cls" --impl sac --stencil-mode "$mode"
    run "time_mg_direct_${cls}_${mode}" "$BUILD/examples/npb_mg" \
      --class "$cls" --impl direct --stencil-mode "$mode"
  done
  run "time_mg_sac_${cls}_planes_simd" "$BUILD/examples/npb_mg" \
    --class "$cls" --impl sac --stencil-mode planes --backend simd
  # The jit engine is timed warm: the first run compiles into the shared
  # disk cache (its wall time includes the toolchain and is deliberately
  # NOT named time_mg_*, so the consolidator never sees it); the second
  # dlopens the cached kernels and is the one the wall gate compares
  # against the simd run above.  The warm run compiles synchronously so
  # the cache is fully populated when it exits -- an async warm run can
  # exit before the worker thread has landed every kernel.
  run "warm_jit_${cls}" env SACPP_JIT_SYNC=1 SACPP_JIT_CACHE_DIR="$OUT/jit_cache" \
    "$BUILD/examples/npb_mg" --class "$cls" --impl sac \
    --stencil-mode planes --backend jit
  run "time_mg_sac_${cls}_planes_jit" env SACPP_JIT_CACHE_DIR="$OUT/jit_cache" \
    "$BUILD/examples/npb_mg" --class "$cls" --impl sac \
    --stencil-mode planes --backend jit
  run "time_mg_f77_${cls}" "$BUILD/examples/npb_mg" --class "$cls" --impl f77
  run "time_mg_omp_${cls}" "$BUILD/examples/npb_mg" --class "$cls" --impl omp
done
run mg_consolidate python3 "$(dirname "$0")/mg_consolidate.py" \
  "$OUT/abl_stencil.json" "$OUT/abl_backend.json" \
  "$(dirname "$0")/mg_schema.json" \
  "$OUT/BENCH_mg.json" 20 1.5 2.0 1.10 "$OUT"/time_mg_*.txt

# Serving artifact: class-S throughput (serialized vs 8 concurrent clients)
# plus the 2x-overload shedding/latency phase.  serve_bench gates itself on
# core-scaled targets; the consolidator validates the summary against
# bench/serve_schema.json before emitting BENCH_serve.json.
run serve_bench "$BUILD/bench/serve_bench" --class S --clients 8 \
  --requests 24 --json "$OUT/serve_raw.json"
run serve_consolidate python3 "$(dirname "$0")/serve_consolidate.py" \
  "$OUT/serve_raw.json" "$(dirname "$0")/serve_schema.json" \
  "$OUT/BENCH_serve.json"

# Tracing artifact: a 2x-overloaded loadgen run with full tail sampling, so
# the retained set carries both completed and shed requests, plus paired
# class-W runs with tracing fully off/on.  The consolidator re-validates
# every stitched trace (one serve_e2e root, queue+exec within 5% of it for
# completed requests), gates the overload factor at >= 2x and the tracing
# overhead at <= 1%, and folds a "tracing" section into BENCH_obs.json --
# refusing to update the artifact when any gate fails.
run trace_loadgen "$BUILD/examples/mg_loadgen" --class S --requests 48 \
  --rate 400 --deadline-ms 250 --slo-ms 100 --trace-sample 1.0 \
  --traces-out "$OUT/loadgen_traces.json"
for i in 1 2; do
  run "trace_off_W_$i" "$BUILD/examples/npb_mg" --class W --impl sac
  run "trace_on_W_$i" "$BUILD/examples/npb_mg" --class W --impl sac \
    --obs --trace-sample 1.0
done
run trace_consolidate python3 "$(dirname "$0")/trace_consolidate.py" \
  "$OUT/loadgen_traces.json" "$(dirname "$0")/trace_schema.json" \
  "$OUT/BENCH_obs.json" 0.01 "$OUT/trace_loadgen.txt" \
  "$OUT/trace_off_W_1.txt" "$OUT/trace_off_W_2.txt" \
  "$OUT/trace_on_W_1.txt" "$OUT/trace_on_W_2.txt"

# Distributed artifact: class A over real sockets (examples/mg_cluster forks
# one OS process per rank and wires them with sacpp_net over loopback TCP).
# One single-process baseline, one 2-process run (--verify re-checks the
# norms against an in-process world at 1e-12), and one 2-process run with
# halo/compute overlap disabled.  The consolidator gates the 2-process
# speedup on a core-scaled floor (single-core hosts time-slice both ranks on
# one CPU, so they get a bounded-overhead floor instead), demands overlap
# never lose more than the floor allows, and refuses to write BENCH_net.json
# when the distributed norms drift past 1e-12.
run net_single "$BUILD/examples/mg_cluster" --ranks 1 --class A \
  --json "$OUT/net_single.json"
run net_two "$BUILD/examples/mg_cluster" --ranks 2 --class A --verify \
  --json "$OUT/net_two.json"
run net_two_no_overlap "$BUILD/examples/mg_cluster" --ranks 2 --class A \
  --no-overlap --json "$OUT/net_two_no_overlap.json"
run net_consolidate python3 "$(dirname "$0")/net_consolidate.py" \
  "$OUT/net_single.json" "$OUT/net_two.json" \
  "$OUT/net_two_no_overlap.json" \
  "$(dirname "$0")/net_schema.json" "$OUT/BENCH_net.json"

echo
if [[ ${#FAILED[@]} -ne 0 ]]; then
  echo "FAILED: ${FAILED[*]}" >&2
  exit 1
fi
echo "All outputs in $OUT/"
