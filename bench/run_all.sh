#!/usr/bin/env bash
# Regenerate every figure and ablation of the reproduction.
#
#   bench/run_all.sh [build-dir] [out-dir]
#
# Defaults: build directory ./build, output directory ./bench_results.
# The full paper figures use classes W and A; class A needs ~2 GB RAM and a
# few minutes per variant on a laptop-class machine.

set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-bench_results}"
mkdir -p "$OUT"

# Run one bench, teeing its output; a failure is recorded (with its exit
# status) instead of aborting, so one broken bench cannot hide the rest, and
# the script still exits nonzero at the end.
FAILED=()

run() {
  local name="$1"; shift
  echo "== $name =="
  local status=0
  "$@" | tee "$OUT/$name.txt" || status=$?
  if [[ $status -ne 0 ]]; then
    echo "!! $name failed (exit $status)" >&2
    FAILED+=("$name")
  fi
}

run fig11_serial        "$BUILD/bench/fig11_serial" --classes W,A --csv "$OUT/fig11.csv"
run fig12_speedup       "$BUILD/bench/fig12_speedup" --classes W,A --csv "$OUT/fig12.csv" --svg "$OUT/fig12"
run fig13_speedup_vs_f77 "$BUILD/bench/fig13_speedup_vs_f77" --classes W,A --csv "$OUT/fig13.csv" --svg "$OUT/fig13"
run abl_folding         "$BUILD/bench/abl_folding" --classes S,W
run abl_memory          "$BUILD/bench/abl_memory" --classes S
run abl_pool            "$BUILD/bench/abl_pool" --classes S,W --csv "$OUT/abl_pool.csv" --min-reduction 25
run abl_threshold       "$BUILD/bench/abl_threshold"
run abl_levels          "$BUILD/bench/abl_levels" --classes W
run ext_direct          "$BUILD/bench/ext_direct" --classes S,W
run ext_mpi             "$BUILD/bench/ext_mpi" --classes W,A
run ext_classes         "$BUILD/bench/ext_classes"
run ext_rank            "$BUILD/bench/ext_rank"
run abl_graph           "$BUILD/bench/abl_graph"
run abl_stencil         "$BUILD/bench/abl_stencil" --benchmark_min_time=0.2
run abl_specialize      "$BUILD/bench/abl_specialize" --benchmark_min_time=0.2
run micro_sac           "$BUILD/bench/micro_sac" --benchmark_min_time=0.2

# Telemetry artifact: one instrumented class-W run, consolidated into
# BENCH_obs.json.  The consolidator validates the summary against
# bench/obs_schema.json and refuses to emit the file otherwise, so a
# malformed trace/metrics dump fails the bench run instead of producing a
# silently-broken artifact.
run obs_npb_mg "$BUILD/examples/npb_mg" --class W --impl sac --obs \
  --trace-out="$OUT/obs_trace.json" --metrics-out="$OUT/obs_metrics.txt"
run obs_consolidate python3 "$(dirname "$0")/obs_consolidate.py" \
  "$OUT/obs_trace.json" "$OUT/obs_metrics.txt" \
  "$(dirname "$0")/obs_schema.json" "$OUT/BENCH_obs.json" class=W impl=sac

echo
if [[ ${#FAILED[@]} -ne 0 ]]; then
  echo "FAILED: ${FAILED[*]}" >&2
  exit 1
fi
echo "All outputs in $OUT/"
