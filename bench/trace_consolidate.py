#!/usr/bin/env python3
"""Validate a retained-traces dump and gate the tracing overhead.

Two modes:

Validate-only (CI telemetry job)::

    trace_consolidate.py TRACES_JSON SCHEMA_JSON

  Validates the ``--traces-out`` dump (mg_loadgen / mg_server / npb_mg)
  against bench/trace_schema.json and re-checks every trace against the
  stitching rules of ``obs::validate_trace``: exactly one ``serve_e2e``
  root, exactly one ``serve_queue``, exactly one ``serve_job`` iff the
  request completed (none for sheds), every server-side span inside the
  root window, and queue + exec within 5% of the root for completed
  requests.

Consolidate (bench/run_all.sh)::

    trace_consolidate.py TRACES_JSON SCHEMA_JSON BENCH_OBS_JSON \\
        MAX_OVERHEAD LOADGEN_TXT OFF1_TXT OFF2_TXT ON1_TXT ON2_TXT

  Everything above, plus: requires the loadgen run to be >= 2x overloaded
  (offered / achieved throughput), requires at least one completed and one
  shed trace, computes the class-W tracing overhead from the paired npb_mg
  runs (best Mop/s of the tracing-off pair vs best of the tracing-on pair;
  min-of-2 so runner noise cannot manufacture a failure), gates it at
  MAX_OVERHEAD, and folds the results into a ``"tracing"`` section of the
  existing BENCH_obs.json.  Any failed gate refuses the artifact.

Uses only the Python standard library; the JSON-Schema subset validator is
shared with obs_consolidate.py.
"""

import json
import os
import re
import sys

from obs_consolidate import validate

SERVE_ROOT = "serve_e2e"
SERVE_QUEUE = "serve_queue"
SERVE_EXEC = "serve_job"
CLIENT_SPANS = ("client_request", "respond")
SHED_STATUSES = ("shed-deadline", "shed-capacity")
MIN_OVERLOAD = 2.0


def is_completed(trace):
    return trace["status"] not in SHED_STATUSES


def check_stitching(trace):
    """Mirror of obs::validate_trace; returns an error string or None."""
    roots = [s for s in trace["spans"] if s["name"] == SERVE_ROOT]
    queues = [s for s in trace["spans"] if s["name"] == SERVE_QUEUE]
    execs = [s for s in trace["spans"] if s["name"] == SERVE_EXEC]
    if len(roots) != 1:
        return f"{len(roots)} {SERVE_ROOT} root spans (want exactly 1)"
    if len(queues) != 1:
        return f"{len(queues)} {SERVE_QUEUE} spans (want exactly 1)"
    completed = is_completed(trace)
    if completed and len(execs) != 1:
        return f"completed trace has {len(execs)} {SERVE_EXEC} spans"
    if not completed and execs:
        return f"shed trace carries a {SERVE_EXEC} span"
    root = roots[0]
    slop = max(root["dur_ns"] // 20, 1_000_000)
    lo = root["start_ns"] - slop
    hi = root["start_ns"] + root["dur_ns"] + slop
    for span in trace["spans"]:
        if span["name"] in CLIENT_SPANS:
            continue
        if span["start_ns"] < lo or span["start_ns"] + span["dur_ns"] > hi:
            return f"span '{span['name']}' outside the root window"
    if completed and root["dur_ns"] > 0:
        parts = queues[0]["dur_ns"] + execs[0]["dur_ns"]
        if not 0.95 * root["dur_ns"] <= parts <= 1.05 * root["dur_ns"]:
            return (
                f"queue+exec = {parts} ns vs root {root['dur_ns']} ns "
                f"({parts / root['dur_ns']:.1%}): outside the 5% gate"
            )
    return None


def validate_traces(traces_path, schema_path):
    """Schema + stitching validation; returns (dump, failures)."""
    with open(traces_path) as f:
        dump = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)
    failures = [f"schema: {e}" for e in validate(dump, schema)]
    if failures:
        return dump, failures
    for trace in dump["traces"]:
        err = check_stitching(trace)
        if err:
            failures.append(f"trace {trace['trace_id']} "
                            f"({trace['status']}): {err}")
    return dump, failures


def parse_loadgen(path):
    """offered/achieved req/s from mg_loadgen's exit summary."""
    with open(path) as f:
        text = f.read()
    m = re.search(
        r"offered ([0-9.]+) req/s, achieved ([0-9.]+) solves/s", text)
    if not m:
        raise ValueError(f"{path}: no offered/achieved summary line")
    return float(m.group(1)), float(m.group(2))


def parse_mops(path):
    with open(path) as f:
        text = f.read()
    m = re.search(r"^ Mop/s total\s+= ([0-9.eE+-]+)$", text, re.MULTILINE)
    if not m:
        raise ValueError(f"{path}: no 'Mop/s total' line")
    return float(m.group(1))


def main(argv):
    if len(argv) not in (3, 10):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    traces_path, schema_path = argv[1:3]

    dump, failures = validate_traces(traces_path, schema_path)
    completed = sum(1 for t in dump.get("traces", []) if is_completed(t))
    sheds = len(dump.get("traces", [])) - completed
    for err in failures:
        print(f"trace_consolidate: {err}", file=sys.stderr)

    if len(argv) == 3:
        if not dump.get("traces"):
            print("trace_consolidate: no retained traces", file=sys.stderr)
            return 1
        if failures:
            return 1
        print(f"trace_consolidate: {len(dump['traces'])} trace(s) OK "
              f"({completed} completed, {sheds} shed)")
        return 0

    bench_obs_path = argv[3]
    max_overhead = float(argv[4])
    loadgen_txt = argv[5]
    off_mops = max(parse_mops(p) for p in argv[6:8])
    on_mops = max(parse_mops(p) for p in argv[8:10])

    offered, achieved = parse_loadgen(loadgen_txt)
    overload = offered / achieved if achieved > 0 else float("inf")
    overload_ok = overload >= MIN_OVERLOAD
    if not overload_ok:
        print(f"trace_consolidate: loadgen only {overload:.2f}x overloaded "
              f"(need >= {MIN_OVERLOAD}x)", file=sys.stderr)
    if completed < 1 or sheds < 1:
        failures.append(
            f"2x-overload run must retain both completed and shed traces "
            f"(got {completed} completed, {sheds} shed)")
        print(f"trace_consolidate: {failures[-1]}", file=sys.stderr)

    # Wall time scales as 1/Mop/s on the fixed class-W work, so the overhead
    # of turning tracing fully on is off/on - 1 over the best run of each
    # pair.  Gating the tracing-ON ratio subsumes the tracing-off claim.
    overhead = off_mops / on_mops - 1.0 if on_mops > 0 else float("inf")
    overhead_ok = overhead <= max_overhead
    if not overhead_ok:
        print(f"trace_consolidate: class-W tracing overhead {overhead:.2%} "
              f"exceeds the {max_overhead:.0%} gate", file=sys.stderr)

    ok = overload_ok and overhead_ok and not failures
    with open(bench_obs_path) as f:
        bench = json.load(f)
    bench["tracing"] = {
        "loadgen": {
            "offered_rps": offered,
            "achieved_rps": achieved,
            "overload_factor": overload,
            "overload_ok": overload_ok,
        },
        "stitching": {
            "retained": len(dump.get("traces", [])),
            "completed": completed,
            "shed": sheds,
            "failures": failures,
            "decomposition_ok": not failures,
        },
        "overhead": {
            "baseline_mops": off_mops,
            "traced_mops": on_mops,
            "overhead": overhead,
            "max_overhead": max_overhead,
            "overhead_ok": overhead_ok,
        },
        "ok": ok,
    }
    obs_schema_path = os.path.join(
        os.path.dirname(os.path.abspath(schema_path)), "obs_schema.json")
    with open(obs_schema_path) as f:
        obs_schema = json.load(f)
    for err in validate(bench, obs_schema):
        ok = False
        print(f"trace_consolidate: merged artifact: {err}", file=sys.stderr)

    if not ok:
        print("trace_consolidate: gates failed; refusing to update "
              f"{bench_obs_path}", file=sys.stderr)
        return 1
    with open(bench_obs_path, "w") as f:
        json.dump(bench, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"trace_consolidate: tracing section added to {bench_obs_path} "
          f"({overload:.1f}x overload, {completed} completed / {sheds} shed "
          f"traces, overhead {overhead:+.2%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
