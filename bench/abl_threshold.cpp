// Ablation 4 (DESIGN.md D4) — the sequential small-grid threshold.
//
// Below the threshold a with-loop runs on one CPU even when multithreading
// is on; the paper advises this to avoid fork/join overhead on the small
// grids at the bottom of the V-cycle.  The sweep shows the modelled class
// W/A speedups at 10 CPUs as the threshold moves, and the host-measured
// cost of parallelising tiny with-loops.

#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/common/timer.hpp"
#include "sacpp/machine/model.hpp"
#include "sacpp/sac/sac.hpp"

using namespace sacpp;
using namespace sacpp::machine;

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "W,A");
  cli.add_option("cpus", "10", "CPU count for the modelled speedups");
  if (!cli.parse(argc, argv)) return 1;
  const int cpus = static_cast<int>(cli.get_int("cpus"));

  // 1. model sweep
  {
    SmpModel model;
    Table t({"class", "threshold [elems]", "speedup at P=" + std::to_string(cpus)});
    for (const mg::MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
      for (double threshold : {1.0, 512.0, 4096.0, 32768.0, 262144.0,
                               2097152.0}) {
        TraceOptions opts;
        opts.sac_seq_threshold_elems = threshold;
        const Trace trace = build_trace(mg::Variant::kSac, spec, opts);
        const auto s = model.speedups(trace, cpus);
        t.add_row({spec.name(), Table::fmt(threshold, 0),
                   Table::fmt(s.back(), 2)});
      }
    }
    std::printf(
        "%s\n",
        t.to_ascii("Ablation D4 — modelled SAC speedup vs sequential "
                   "threshold (too low: fork/join on tiny grids; too high: "
                   "lost parallelism)")
            .c_str());
  }

  // 2. host: cost of parallelising tiny with-loops (needs >1 hardware CPU
  //    to show a benefit; on 1 CPU it shows pure overhead, which is the
  //    point of the threshold)
  {
    Table t({"grid", "sequential [us]", "forced parallel [us]"});
    const sac::StencilCoeffs c{{-0.5, 0.1, 0.05, 0.02}};
    for (extent_t n : {4, 10, 18, 34, 66}) {
      auto a = sac::genarray_const(cube_shape(3, n), 1.0);
      const int reps = n <= 18 ? 5000 : 200;
      double seq_us = 0.0, par_us = 0.0;
      {
        sac::SacConfig cfg = sac::config();
        cfg.mt_enabled = false;
        sac::ScopedConfig guard(cfg);
        Timer timer;
        for (int i = 0; i < reps; ++i) (void)sac::relax_kernel(a, c);
        seq_us = timer.elapsed_seconds() * 1e6 / reps;
      }
      {
        sac::SacConfig cfg = sac::config();
        cfg.mt_enabled = true;
        cfg.mt_threads = std::max(2u, std::thread::hardware_concurrency());
        cfg.mt_threshold = 1;  // force parallel execution
        sac::ScopedConfig guard(cfg);
        Timer timer;
        for (int i = 0; i < reps; ++i) (void)sac::relax_kernel(a, c);
        par_us = timer.elapsed_seconds() * 1e6 / reps;
      }
      t.add_row({std::to_string(n) + "^3", Table::fmt(seq_us, 1),
                 Table::fmt(par_us, 1)});
    }
    sac::shutdown_runtime();
    std::printf("%s\n",
                t.to_ascii("Host: forcing multithreading on small grids "
                           "(threshold = 1)")
                    .c_str());
  }
  return 0;
}
