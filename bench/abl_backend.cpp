// Backend ablation (docs/backends.md) — the row-primitive engine ladder:
//
//   scalar     the historical per-element loops (bit-exact reference),
//   simd       what BackendKind::kSimd resolves to on this host (widest of
//              AVX-512 / AVX2 / the portable 4-wide engine),
//   portable   the 4-wide fallback engine, pinned explicitly so a host with
//              AVX still measures the no-ISA path,
//   jit        runtime-compiled kernels (docs/jit.md), warmed before the
//              timed loops: main() pre-issues every key the benchmarks
//              request and drains the compile queue, so the numbers are
//              steady-state kernel throughput, not compiler latency.
//
// Three benchmark families, named so mg_consolidate.py can parse the
// backend as a dimension (BM_Backend<family>/<primitive>/<backend>/<n>):
//
//   Row        each Backend row primitive in isolation on rows of length n
//              (the per-primitive breakdown),
//   Fused      the resid/psinv inner row path exactly as the kPlanes engine
//              issues it — one stencil_row call per interior row (plane
//              sums + combine fused; the default engines compose the two
//              passes, the jit engine runs a single generated loop) — on an
//              n x n slab that stays cache-resident, isolating row-engine
//              throughput from DRAM bandwidth,
//   Kernel     the full relax_kernel under StencilMode::kPlanes with the
//              backend selected through ScopedConfig, for end-to-end
//              context (memory-bound at n = 130, so speedups compress).
//
// bench/run_all.sh gates the fused resid/psinv rows at the class-W-sized
// grid (n = 66): simd under 1.5x over scalar, or jit under 2.0x, fails the
// bench run (BENCH_mg.json "backend" section).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "sacpp/sac/backend.hpp"
#include "sacpp/sac/jit.hpp"
#include "sacpp/sac/sac.hpp"

namespace {

using namespace sacpp;
using sac::Array;
using sac::Backend;

// Deterministic pseudo-random fill in [-1, 1) — cheap, no <random>.
std::vector<double> noise(std::size_t count, std::uint64_t seed) {
  std::vector<double> v(count);
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
  for (double& x : v) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    x = static_cast<double>(static_cast<std::int64_t>(s >> 11)) * 0x1.0p-52;
  }
  return v;
}

Array<double> input_grid(extent_t n) {
  const Shape shp{n, n, n};
  return sac::with_genarray<double>(
      shp, sac::rank3_body([](extent_t i, extent_t j, extent_t k) {
        return 0.25 * static_cast<double>(i + 2 * j + 3 * k);
      }));
}

const sac::StencilCoeffs kResid{{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}};
const sac::StencilCoeffs kPsinv{{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0}};

// -- Row: one primitive per benchmark -----------------------------------------

using RowFn = void (*)(const Backend&, benchmark::State&);

void row_fill(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    be.fill_row(out.data(), 0, n, 0.125);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void row_copy(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  const std::vector<double> src = noise(static_cast<std::size_t>(n), 1);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    be.copy_row(out.data(), src.data(), 0, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void row_plane_sums(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  const std::size_t len = static_cast<std::size_t>(n);
  std::vector<std::vector<double>> in;
  for (int r = 0; r < 8; ++r) {
    in.push_back(noise(len, static_cast<std::uint64_t>(r + 2)));
  }
  std::vector<double> u1(len), u2(len);
  for (auto _ : state) {
    be.plane_sums(in[0].data(), in[1].data(), in[2].data(), in[3].data(),
                  in[4].data(), in[5].data(), in[6].data(), in[7].data(),
                  u1.data(), u2.data(), n);
    benchmark::DoNotOptimize(u1.data());
    benchmark::DoNotOptimize(u2.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void row_combine(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  const std::size_t len = static_cast<std::size_t>(n);
  const std::vector<double> uc = noise(len, 11), u1 = noise(len, 12),
                            u2 = noise(len, 13);
  std::vector<double> out(len);
  for (auto _ : state) {
    be.combine_row(kResid.c.data(), uc.data(), u1.data(), u2.data(),
                   out.data(), 1, n - 1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2));
}

void row_accumulate(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  const std::size_t len = static_cast<std::size_t>(n);
  const std::vector<double> uc = noise(len, 21), u1 = noise(len, 22),
                            u2 = noise(len, 23);
  std::vector<double> out = noise(len, 24);
  for (auto _ : state) {
    be.accumulate_row(kPsinv.c.data(), uc.data(), u1.data(), u2.data(),
                      out.data(), 1, n - 1);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2));
}

void row_add_into(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  const std::vector<double> a = noise(static_cast<std::size_t>(n), 31);
  std::vector<double> out = noise(static_cast<std::size_t>(n), 32);
  for (auto _ : state) {
    be.add_into_row(a.data(), out.data(), 0, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void row_sub_into(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  const std::vector<double> a = noise(static_cast<std::size_t>(n), 35);
  std::vector<double> out = noise(static_cast<std::size_t>(n), 36);
  for (auto _ : state) {
    be.sub_into_row(a.data(), out.data(), 0, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void row_mul_into(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  const std::vector<double> a = noise(static_cast<std::size_t>(n), 33);
  std::vector<double> out = noise(static_cast<std::size_t>(n), 34);
  for (auto _ : state) {
    be.mul_into_row(a.data(), out.data(), 0, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void row_gather(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  const std::vector<double> src = noise(static_cast<std::size_t>(2 * n), 41);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    be.gather_row(out.data(), src.data(), 2, n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void row_scatter(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  const std::vector<double> src = noise(static_cast<std::size_t>(n), 42);
  std::vector<double> out(static_cast<std::size_t>(2 * n));
  for (auto _ : state) {
    be.scatter_row(out.data(), 2, src.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void row_sum_sq(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  const std::vector<double> p = noise(static_cast<std::size_t>(n), 51);
  double acc = 0.0;
  for (auto _ : state) {
    acc = be.sum_sq_row(acc * 1e-300, p.data(), 0, n);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void row_max_abs(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  const std::vector<double> p = noise(static_cast<std::size_t>(n), 52);
  double acc = 0.0;
  for (auto _ : state) {
    acc = be.max_abs_row(acc * 0.5, p.data(), 0, n);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// -- Fused: the kPlanes inner row path ----------------------------------------
//
// One n x n slab of rows: for each interior j, one stencil_row over the
// eight neighbour rows of plane i into the output row — precisely the
// per-row call resid issues in StencilMode::kPlanes (accumulate for psinv).
// Three planes of n x n doubles stay L2-resident through n = 130, so this
// measures the row engine, not DRAM.

struct FusedSlab {
  extent_t n;
  std::size_t len;  // n*n doubles per plane
  std::vector<double> pm, pc, pp;  // planes i-1, i, i+1
  std::vector<double> u1, u2, out;

  explicit FusedSlab(extent_t n_in)
      : n(n_in),
        len(static_cast<std::size_t>(n_in) * static_cast<std::size_t>(n_in)),
        pm(noise(len, 61)),
        pc(noise(len, 62)),
        pp(noise(len, 63)),
        u1(static_cast<std::size_t>(n_in)),
        u2(static_cast<std::size_t>(n_in)),
        out(noise(len, 64)) {}

  const double* row(const std::vector<double>& plane, extent_t j) const {
    return plane.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(n);
  }
};

template <bool kAccumulate>
void fused_rows(const Backend& be, benchmark::State& state) {
  const extent_t n = state.range(0);
  FusedSlab s(n);
  const sac::StencilCoeffs& c = kAccumulate ? kPsinv : kResid;
  for (auto _ : state) {
    for (extent_t j = 1; j < n - 1; ++j) {
      double* out = s.out.data() + static_cast<std::size_t>(j) *
                                       static_cast<std::size_t>(n);
      be.stencil_row(c.c.data(), s.row(s.pc, j), s.row(s.pm, j),
                     s.row(s.pp, j), s.row(s.pc, j - 1), s.row(s.pc, j + 1),
                     s.row(s.pm, j - 1), s.row(s.pm, j + 1),
                     s.row(s.pp, j - 1), s.row(s.pp, j + 1), s.u1.data(),
                     s.u2.data(), out, 1, n - 1, n, kAccumulate);
    }
    benchmark::DoNotOptimize(s.out.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2));
}

// -- Kernel: whole relax_kernel under the selected backend --------------------

void kernel_resid(sac::BackendKind kind, benchmark::State& state) {
  const extent_t n = state.range(0);
  sac::SacConfig cfg = sac::config();
  cfg.stencil_mode = sac::StencilMode::kPlanes;
  cfg.backend = kind;
  sac::ScopedConfig scoped(cfg);
  auto a = input_grid(n);
  for (auto _ : state) {
    auto r = sac::relax_kernel(a, kResid, sac::StencilMode::kPlanes);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2) * (n - 2));
}

struct Engine {
  const char* label;  // dimension value in benchmark names
  sac::BackendKind kind;
};

constexpr Engine kEngines[] = {
    {"scalar", sac::BackendKind::kScalar},
    {"simd", sac::BackendKind::kSimd},
    {"portable", sac::BackendKind::kSimdPortable},
    {"jit", sac::BackendKind::kJit},
};

struct RowBench {
  const char* primitive;
  RowFn fn;
};

constexpr RowBench kRowBenches[] = {
    {"fill", row_fill},         {"copy", row_copy},
    {"plane_sums", row_plane_sums}, {"combine", row_combine},
    {"accumulate", row_accumulate}, {"add_into", row_add_into},
    {"sub_into", row_sub_into},
    {"mul_into", row_mul_into}, {"gather", row_gather},
    {"scatter", row_scatter},   {"sum_sq", row_sum_sq},
    {"max_abs", row_max_abs},
};

void register_benches() {
  for (const Engine& e : kEngines) {
    const Backend& be = sac::backend_for(e.kind);
    for (const RowBench& rb : kRowBenches) {
      const std::string name =
          std::string("BM_BackendRow/") + rb.primitive + "/" + e.label;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&be, fn = rb.fn](benchmark::State& st) { fn(be, st); })
          ->Arg(66)
          ->Unit(benchmark::kNanosecond);
    }
    benchmark::RegisterBenchmark(
        (std::string("BM_BackendFused/resid/") + e.label).c_str(),
        [&be](benchmark::State& st) { fused_rows<false>(be, st); })
        ->Arg(34)
        ->Arg(66)
        ->Arg(130)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        (std::string("BM_BackendFused/psinv/") + e.label).c_str(),
        [&be](benchmark::State& st) { fused_rows<true>(be, st); })
        ->Arg(34)
        ->Arg(66)
        ->Arg(130)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        (std::string("BM_BackendKernel/resid/") + e.label).c_str(),
        [kind = e.kind](benchmark::State& st) { kernel_resid(kind, st); })
        ->Arg(66)
        ->Unit(benchmark::kMillisecond);
  }
}

// Pre-issue every kernel key the jit benchmarks below will request, then
// drain the compile queue: the timed loops measure generated-code
// throughput, never source-to-dlopen latency.  Sync compilation is forced
// unless the caller already chose (overwrite=0), so a cold cache warms in
// one pass either way.
void warm_jit() {
  ::setenv("SACPP_JIT_SYNC", "1", /*overwrite=*/0);
  const Backend& be = sac::backend_for(sac::BackendKind::kJit);
  for (const extent_t n : {extent_t{34}, extent_t{66}, extent_t{130}}) {
    FusedSlab s(n);
    for (const bool acc : {false, true}) {
      const sac::StencilCoeffs& c = acc ? kPsinv : kResid;
      be.stencil_row(c.c.data(), s.row(s.pc, 1), s.row(s.pm, 1),
                     s.row(s.pp, 1), s.row(s.pc, 0), s.row(s.pc, 2),
                     s.row(s.pm, 0), s.row(s.pm, 2), s.row(s.pp, 0),
                     s.row(s.pp, 2), s.u1.data(), s.u2.data(),
                     s.out.data() + static_cast<std::size_t>(n), 1, n - 1, n,
                     acc);
    }
  }
  {
    const extent_t n = 66;
    const std::size_t len = static_cast<std::size_t>(n);
    const auto a = noise(len, 91);
    std::vector<double> out = noise(len, 92);
    std::vector<double> u1(len), u2(len);
    const auto s2 = noise(2 * len, 93);
    std::vector<double> wide(2 * len);
    be.plane_sums(a.data(), a.data(), a.data(), a.data(), a.data(), a.data(),
                  a.data(), a.data(), u1.data(), u2.data(), n);
    be.combine_row(kResid.c.data(), a.data(), u1.data(), u2.data(),
                   out.data(), 1, n - 1);
    be.accumulate_row(kPsinv.c.data(), a.data(), u1.data(), u2.data(),
                      out.data(), 1, n - 1);
    be.add_into_row(a.data(), out.data(), 0, n);
    be.sub_into_row(a.data(), out.data(), 0, n);
    be.mul_into_row(a.data(), out.data(), 0, n);
    be.gather_row(out.data(), s2.data(), 2, n);
    be.scatter_row(wide.data(), 2, a.data(), n);
    benchmark::DoNotOptimize(be.sum_sq_row(0.0, a.data(), 0, n));
    benchmark::DoNotOptimize(be.max_abs_row(0.0, a.data(), 0, n));
  }
  {
    // The end-to-end kernel family: run it once so every row shape the
    // with-loop engine issues at n = 66 (boundary sub-ranges included) has
    // its kernel before timing starts.
    sac::SacConfig cfg = sac::config();
    cfg.stencil_mode = sac::StencilMode::kPlanes;
    cfg.backend = sac::BackendKind::kJit;
    sac::ScopedConfig scoped(cfg);
    auto a = input_grid(66);
    auto r = sac::relax_kernel(a, kResid, sac::StencilMode::kPlanes);
    benchmark::DoNotOptimize(r.data());
  }
  sac::jit::drain();
}

}  // namespace

int main(int argc, char** argv) {
  warm_jit();
  register_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
