// Ablation 2 (paper Sec. 5) — dynamic memory management on small grids.
//
// The paper attributes SAC's scalability limit to memory-management
// overhead that is invariant in grid size and therefore dominates the small
// grids at the bottom of the V-cycle.  This binary makes that visible:
//
//  * measured per-grid-size with-loop cost on this host, showing the fixed
//    per-operation overhead taking over as grids shrink;
//  * the SAC implementation's allocation counters with uniqueness reuse
//    on/off (DESIGN.md D2);
//  * the model's per-level time split for one V-cycle on the E4000.

#include <cstdio>

#include "bench_common.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/common/timer.hpp"
#include "sacpp/machine/model.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/sac/sac.hpp"

using namespace sacpp;
using namespace sacpp::mg;
using namespace sacpp::machine;

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "S");
  if (!cli.parse(argc, argv)) return 1;

  // 1. fixed per-with-loop overhead vs grid size (host measurement)
  {
    Table t({"extended grid", "elements", "ns/with-loop", "ns/element"});
    const sac::StencilCoeffs c{{-0.5, 0.1, 0.05, 0.02}};
    for (extent_t n : {4, 6, 10, 18, 34, 66, 130}) {
      auto a = sac::genarray_const(cube_shape(3, n), 1.0);
      const int reps = n <= 18 ? 20000 : (n <= 66 ? 500 : 50);
      Timer timer;
      for (int i = 0; i < reps; ++i) {
        auto r = sac::relax_kernel(a, c);
        (void)r;
      }
      const double ns = timer.elapsed_seconds() * 1e9 / reps;
      const double elems = static_cast<double>(n * n * n);
      t.add_row({std::to_string(n) + "^3", Table::fmt(elems, 0),
                 Table::fmt(ns, 0), Table::fmt(ns / elems, 1)});
    }
    std::printf("%s\n",
                t.to_ascii("Per-with-loop cost vs grid size (host): the "
                           "fixed overhead dominates small grids")
                    .c_str());
  }

  // 2. allocation counters with reuse on/off
  {
    Table t({"class", "reuse", "time [s]", "allocations", "reuses",
             "copies-on-write", "bytes allocated [MB]"});
    for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
      for (bool reuse : {true, false}) {
        sac::SacConfig cfg = sac::config();
        cfg.reuse = reuse;
        sac::ScopedConfig guard(cfg);
        sac::reset_stats();
        RunOptions opts;
        opts.record_norms = false;
        const MgResult res = run_benchmark(Variant::kSac, spec, opts);
        const auto& st = sac::stats();
        t.add_row({spec.name(), reuse ? "on" : "off",
                   Table::fmt(res.seconds, 3), std::to_string(st.allocations),
                   std::to_string(st.reuses),
                   std::to_string(st.copies_on_write),
                   Table::fmt(static_cast<double>(st.bytes_allocated) / 1e6,
                              1)});
      }
    }
    std::printf("%s\n",
                t.to_ascii("Ablation D2 — uniqueness-based reuse").c_str());
  }

  // 3. model: per-level time split of one SAC V-cycle iteration on the E4000
  {
    const MgSpec spec = MgSpec::for_class(MgClass::A);
    const Trace trace = build_trace(Variant::kSac, spec);
    SmpModel model;
    const VariantProfile prof = VariantProfile::for_variant(Variant::kSac);
    Table t({"level", "grid", "time P=1 [ms]", "time P=10 [ms]",
             "alloc events", "alloc share P=10"});
    for (int k = 1; k <= spec.levels(); ++k) {
      double t1 = 0.0, t10 = 0.0, talloc = 0.0;
      int allocs = 0;
      for (const auto& r : trace.regions) {
        if (r.level != k) continue;
        t1 += model.region_time(r, 1, prof);
        t10 += model.region_time(r, 10, prof);
        talloc += r.alloc_events * model.params().alloc_cost;
        allocs += r.alloc_events;
      }
      t.add_row({std::to_string(k),
                 std::to_string(extent_t{1} << k) + "^3",
                 Table::fmt(t1 * 1e3, 3), Table::fmt(t10 * 1e3, 3),
                 std::to_string(allocs),
                 Table::fmt(100.0 * talloc / t10, 1) + "%"});
    }
    std::printf("%s\n",
                t.to_ascii("Modelled per-level time of one SAC V-cycle "
                           "iteration, class A (memory management is "
                           "size-invariant, so its share grows as grids "
                           "shrink — the paper's Sec. 5 analysis)")
                    .c_str());
  }
  return 0;
}
