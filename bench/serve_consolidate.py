#!/usr/bin/env python3
"""Consolidate a serve_bench raw summary into BENCH_serve.json.

Usage:
    serve_consolidate.py RAW_JSON SCHEMA_JSON OUT_JSON [meta...]

Reads serve_bench's --json output, folds its run identity (class, clients,
plus any extra ``key=value`` arguments) under ``"run"``, validates the
result against bench/serve_schema.json, and writes OUT_JSON only when it
validates AND the bench's own gates passed (``"ok": true``).  A summary
that fails either check is a bench failure, not a silent artifact.

Uses only the Python standard library; the JSON-Schema subset validator is
shared with obs_consolidate.py.
"""

import json
import sys

from obs_consolidate import validate


def main(argv):
    if len(argv) < 4:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    raw_path, schema_path, out_path = argv[1:4]
    with open(raw_path) as f:
        raw = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)

    run = {
        "class": raw.pop("class", "?"),
        "clients": raw.pop("clients", 0),
    }
    for arg in argv[4:]:
        key, _, value = arg.partition("=")
        run[key] = value
    summary = {"run": run}
    summary.update(raw)

    errors = validate(summary, schema)
    if errors:
        for err in errors:
            print(f"serve_consolidate: {err}", file=sys.stderr)
        return 1
    if not summary.get("ok", False):
        print("serve_consolidate: serve_bench gates failed (ok=false); "
              "refusing to write the artifact", file=sys.stderr)
        return 1

    with open(out_path, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"serve_consolidate: wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
