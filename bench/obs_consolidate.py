#!/usr/bin/env python3
"""Consolidate one npb_mg telemetry run into BENCH_obs.json.

Usage:
    obs_consolidate.py TRACE_JSON METRICS_TXT SCHEMA_JSON OUT_JSON [meta...]

Reads the Chrome trace (``--trace-out``) and the Prometheus text dump
(``--metrics-out``), distils them into one machine-readable summary, and
writes OUT_JSON only after the summary validates against the checked-in
schema (a small JSON-Schema subset: type / required / properties / items).
A summary that fails validation is a bench failure, not a silent artifact.

Extra ``key=value`` arguments are stored under ``"run"`` (class, impl, ...).
Uses only the Python standard library.
"""

import json
import re
import sys


def validate(value, schema, path="$"):
    """Minimal JSON-Schema subset validator; returns a list of errors."""
    errors = []
    expected = schema.get("type")
    if expected:
        kinds = {
            "object": dict,
            "array": list,
            "string": str,
            "number": (int, float),
            "integer": int,
            "boolean": bool,
        }
        if not isinstance(value, kinds[expected]) or (
            expected in ("number", "integer") and isinstance(value, bool)
        ):
            return [f"{path}: expected {expected}, got {type(value).__name__}"]
    if expected == "object":
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                errors += validate(value[key], sub, f"{path}.{key}")
    if expected == "array":
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: fewer than {schema['minItems']} items")
        items = schema.get("items")
        if items:
            for i, item in enumerate(value):
                errors += validate(item, items, f"{path}[{i}]")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    return errors


def parse_prometheus(text):
    """name -> value for plain samples, (name, label-dict) for labelled."""
    plain, labelled = {}, []
    sample = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+([-+0-9.eEinfa]+)$"
    )
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        m = sample.match(line)
        if not m:
            continue
        name, labels, value = m.group(1), m.group(2), float(m.group(3))
        if labels:
            pairs = dict(re.findall(r'(\w+)="([^"]*)"', labels))
            labelled.append((name, pairs, value))
        else:
            plain[name] = value
    return plain, labelled


def main(argv):
    if len(argv) < 5:
        sys.stderr.write(__doc__)
        return 2
    trace_path, metrics_path, schema_path, out_path = argv[1:5]
    run_meta = dict(kv.split("=", 1) for kv in argv[5:])

    with open(trace_path) as f:
        trace = json.load(f)  # also proves the trace is valid JSON
    events = trace.get("traceEvents", [])
    threads = sorted(
        e["args"]["name"] for e in events if e.get("name") == "thread_name"
    )
    spans = [e for e in events if e.get("ph") == "X"]

    with open(metrics_path) as f:
        plain, labelled = parse_prometheus(f.read())

    levels = {}
    for name, labels, value in labelled:
        if not name.startswith("sacpp_level_") or "level" not in labels:
            continue
        field = name[len("sacpp_level_"):]
        levels.setdefault(int(labels["level"]), {})[field] = value
    # Level -1 collects parallel regions that ran outside any V-cycle level
    # (setup, norms); the per-level table is about the cycle itself.
    level_rows = [
        {"level": lvl, **fields}
        for lvl, fields in sorted(levels.items())
        if lvl >= 0 and fields.get("visits", 0) >= 1
    ]

    summary = {
        "run": run_meta,
        "trace": {
            "events": len(spans),
            "threads": threads,
            "dropped_spans": int(plain.get("sacpp_obs_spans_dropped_total", 0)),
            "recorded_spans": int(
                plain.get("sacpp_obs_spans_recorded_total", 0)
            ),
        },
        "counters": {
            k: v for k, v in plain.items() if k.startswith("sacpp_")
        },
        "levels": level_rows,
    }

    with open(schema_path) as f:
        schema = json.load(f)
    errors = validate(summary, schema)
    if errors:
        sys.stderr.write("BENCH_obs.json failed schema validation:\n")
        for e in errors:
            sys.stderr.write(f"  {e}\n")
        return 1

    with open(out_path, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(
        f"{out_path}: {len(spans)} trace events, "
        f"{len(threads)} threads, {len(level_rows)} levels"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
