// Model validation — measured vs modelled per-level time shares.
//
// The paper's Sec. 5 analysis (and our machine model's core assumption) is
// that time concentrates on the finest levels while fixed per-operation
// overheads grow in *share* toward the bottom of the V-cycle.  This binary
// runs the real solvers with the per-level profiler and prints the measured
// shares next to the model's sequential prediction for the same schedule.

#include <cstdio>

#include "bench_common.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/machine/model.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/mg/profiler.hpp"

using namespace sacpp;
using namespace sacpp::mg;
using namespace sacpp::machine;

namespace {

std::vector<double> model_level_shares(Variant v, const MgSpec& spec) {
  const Trace trace = build_trace(v, spec);
  SmpModel model;
  const VariantProfile prof = VariantProfile::for_variant(v);
  std::vector<double> per_level(static_cast<std::size_t>(spec.levels()) + 1,
                                0.0);
  double total = 0.0;
  for (const auto& r : trace.regions) {
    const double t = model.region_time(r, 1, prof);
    per_level[static_cast<std::size_t>(r.level)] += t;
    total += t;
  }
  for (double& t : per_level) t /= total;
  return per_level;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "W");
  if (!cli.parse(argc, argv)) return 1;

  for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
    for (Variant v : {Variant::kFortran, Variant::kSac}) {
      LevelProfiler::instance().reset();
      LevelProfiler::instance().enable(true);
      RunOptions opts;
      opts.record_norms = false;
      opts.warmup = false;
      (void)run_benchmark(v, spec, opts);
      LevelProfiler::instance().enable(false);

      const auto measured = LevelProfiler::instance().entries();
      const double total = LevelProfiler::instance().total_seconds();
      const auto modelled = model_level_shares(v, spec);

      Table t({"level", "grid", "measured [ms]", "measured share",
               "model share"});
      for (const auto& e : measured) {
        t.add_row({std::to_string(e.level),
                   std::to_string(extent_t{1} << e.level) + "^3",
                   Table::fmt(e.seconds * 1e3, 2),
                   Table::fmt(100.0 * e.seconds / total, 1) + "%",
                   Table::fmt(100.0 * modelled[static_cast<std::size_t>(
                                          e.level)],
                              1) +
                       "%"});
      }
      std::printf("%s\n",
                  t.to_ascii("Per-level time, class " + spec.name() + ", " +
                             variant_name(v) +
                             " (measured on this host vs the E4000 model's "
                             "sequential shares)")
                      .c_str());
    }
  }
  return 0;
}
