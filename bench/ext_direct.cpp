// Extension (paper Sec. 7 future work) — direct periodic relaxation:
// what does making the artificial boundary elements obsolete buy?
//
//   * real host measurement: ghost-layer SAC vs ghost-free SAC-direct;
//   * the modelled E4000 account: the border copy-on-write sweeps and
//     ghost exchanges vanish from the trace, improving both the serial
//     time and (fewer small serial regions) the scaling.

#include <cstdio>

#include "bench_common.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/machine/model.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/sac/sac.hpp"

using namespace sacpp;
using namespace sacpp::mg;
using namespace sacpp::machine;

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "S,W");
  if (!cli.parse(argc, argv)) return 1;

  // 1. real host comparison
  {
    Table t({"class", "implementation", "host [s]", "allocations",
             "bytes allocated [MB]", "final norm"});
    for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
      for (Variant v : {Variant::kSac, Variant::kSacDirect}) {
        sac::reset_stats();
        RunOptions opts;
        opts.record_norms = false;
        const MgResult res = run_benchmark(v, spec, opts);
        t.add_row({spec.name(), variant_name(v), Table::fmt(res.seconds, 3),
                   std::to_string(sac::stats().allocations),
                   Table::fmt(static_cast<double>(
                                  sac::stats().bytes_allocated) / 1e6, 1),
                   Table::fmt_sci(res.final_norm)});
      }
    }
    std::printf("%s\n",
                t.to_ascii("Future work: ghost-layer vs direct-periodic SAC "
                           "on this host (norms must agree)")
                    .c_str());
  }

  // 2. modelled E4000 account
  {
    SmpModel model;
    Table t({"class", "implementation", "model T1 [s]", "model S(10)",
             "regions/iter", "allocs/iter"});
    for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
      for (Variant v : {Variant::kSac, Variant::kSacDirect}) {
        const Trace trace = build_trace(v, spec);
        const auto s = model.speedups(trace, 10);
        t.add_row({spec.name(), variant_name(v),
                   Table::fmt(model.benchmark_time(trace, 1), 2),
                   Table::fmt(s.back(), 2),
                   std::to_string(trace.regions.size()),
                   std::to_string(trace.total_alloc_events())});
      }
    }
    std::printf("%s\n",
                t.to_ascii("Modelled E4000: removing the artificial "
                           "boundary elements (paper Sec. 7)")
                    .c_str());
  }
  return 0;
}
