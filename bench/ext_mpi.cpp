// Extension (paper Sec. 7 future work) — the MPI-reference comparison:
// "a direct comparison with the MPI-based parallel reference implementation
// of NAS-MG would be interesting."
//
// This binary produces that comparison:
//   1. real runs of the message-passing MG on the in-process world
//      (correctness + measured traffic; real speedup needs multi-core);
//   2. the calibrated models side by side: message-passing MG vs
//      shared-memory SAC / OpenMP on the modelled E4000, P = 1..16 —
//      the figure the paper asks for.

#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/machine/dist_model.hpp"
#include "sacpp/machine/model.hpp"
#include "sacpp/mg/mg_mpi.hpp"

using namespace sacpp;
using namespace sacpp::mg;
using namespace sacpp::machine;

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "W,A");
  cli.add_option("ranks", "4", "max rank count for the real runs");
  cli.add_option("real-class", "S", "class for the real message-passing runs");
  if (!cli.parse(argc, argv)) return 1;

  // 1. real runs (class S by default: the thread-backed world on one core
  //    is about correctness and traffic, not wall-clock speedup)
  {
    const MgSpec spec =
        MgSpec::for_class(parse_class(cli.get("real-class")));
    Table t({"ranks", "time [s]", "final norm", "messages", "MB moved"});
    for (int ranks = 1; ranks <= static_cast<int>(cli.get_int("ranks"));
         ranks *= 2) {
      if (2 * static_cast<extent_t>(ranks) > spec.nx) break;
      MgMpi mpi(spec, ranks);
      const MgMpi::Result res = mpi.run(spec.nit, /*warmup=*/false);
      t.add_row({std::to_string(ranks), Table::fmt(res.seconds, 3),
                 Table::fmt_sci(res.final_norm),
                 std::to_string(res.comm.messages),
                 Table::fmt(static_cast<double>(res.comm.bytes) / 1e6, 1)});
    }
    std::printf("%s\n",
                t.to_ascii("Real message-passing MG, class " +
                           cli.get("real-class") +
                           " (thread-backed ranks; norms must equal the "
                           "serial reference)")
                    .c_str());
  }

  // 2. modelled comparison on the E4000
  {
    SmpModel smp;
    DistModel dist;
    for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
      Table t({"P", "MPI ref [s/iter]", "MPI speedup", "SAC shm speedup",
               "OpenMP shm speedup"});
      const Trace sac = build_trace(Variant::kSac, spec);
      const Trace omp = build_trace(Variant::kOpenMp, spec);
      const auto sac_s = smp.speedups(sac, 16);
      const auto omp_s = smp.speedups(omp, 16);
      const double mpi_base = dist.iteration_cost(spec, 1).seconds;
      for (int p = 1; p <= 16; p *= 2) {
        if (2 * static_cast<extent_t>(p) > spec.nx) break;
        const DistCost c = dist.iteration_cost(spec, p);
        t.add_row({std::to_string(p), Table::fmt(c.seconds, 3),
                   Table::fmt(mpi_base / c.seconds, 2),
                   Table::fmt(sac_s[static_cast<std::size_t>(p - 1)], 2),
                   Table::fmt(omp_s[static_cast<std::size_t>(p - 1)], 2)});
      }
      std::printf(
          "%s\n",
          t.to_ascii("Modelled E4000, class " + spec.name() +
                     ": message-passing reference vs shared-memory "
                     "implementations")
              .c_str());
    }
  }
  return 0;
}
