// Ablation 1 (paper Sec. 5 analysis) — the stencil implementation ladder:
//
//   naive      27 multiplications + 26 additions per point (the literal
//              mathematics),
//   grouped    4 multiplications per point by summing coefficient classes
//              first (what sac2c reaches implicitly),
//   planes     the same factorisation as the Fortran hand optimisation,
//              expressed generically in the SAC stencil engine
//              (StencilMode::kPlanes, docs/stencil.md): per-class row sums
//              shared across the k loop through pooled scratch,
//   shared     the hand-coded Fortran-77 resid kernel itself (mg_ref), the
//              upper bound the paper says sac2c lacks.
//
// One google-benchmark timing per rung and level size (the MG ladder 10,
// 18, 34, 66, 130).  kPlanes runs with the production small-grid cutover,
// so sizes below it report the grouped fallback — exactly what the engine
// does at the bottom of the V-cycle.  bench/run_all.sh gates the
// planes-vs-grouped improvement at the class-W-sized grid (n = 66).

#include <benchmark/benchmark.h>

#include <vector>

#include "sacpp/mg/mg_ref.hpp"
#include "sacpp/mg/problem.hpp"
#include "sacpp/sac/sac.hpp"

namespace {

using namespace sacpp;
using sac::Array;

Array<double> input_grid(extent_t n) {
  const Shape shp{n, n, n};
  return sac::with_genarray<double>(
      shp, sac::rank3_body([](extent_t i, extent_t j, extent_t k) {
        return 0.25 * static_cast<double>(i + 2 * j + 3 * k);
      }));
}

const sac::StencilCoeffs kA{{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}};

void BM_StencilNaive(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto a = input_grid(n);
  for (auto _ : state) {
    auto r = sac::relax_kernel(a, kA, sac::StencilMode::kNaive);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2) * (n - 2));
}

void BM_StencilGrouped(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto a = input_grid(n);
  for (auto _ : state) {
    auto r = sac::relax_kernel(a, kA, sac::StencilMode::kGrouped);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2) * (n - 2));
}

void BM_StencilPlanes(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto a = input_grid(n);
  for (auto _ : state) {
    auto r = sac::relax_kernel(a, kA, sac::StencilMode::kPlanes);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2) * (n - 2));
}

void BM_StencilSharedPlanes(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto a = input_grid(n);
  const std::size_t count = static_cast<std::size_t>(n * n * n);
  std::vector<double> u(a.data(), a.data() + count);
  std::vector<double> v(count, 0.0);
  std::vector<double> r(count, 0.0);
  mg::MgRef ref(mg::MgSpec::for_class(mg::MgClass::A));
  for (auto _ : state) {
    ref.kernel_resid(u.data(), v.data(), r.data(), n);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2) * (n - 2));
}

}  // namespace

BENCHMARK(BM_StencilNaive)->Arg(10)->Arg(18)->Arg(34)->Arg(66)->Arg(130)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StencilGrouped)->Arg(10)->Arg(18)->Arg(34)->Arg(66)->Arg(130)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StencilPlanes)->Arg(10)->Arg(18)->Arg(34)->Arg(66)->Arg(130)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StencilSharedPlanes)->Arg(10)->Arg(18)->Arg(34)->Arg(66)->Arg(130)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
