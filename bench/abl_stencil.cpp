// Ablation 1 (paper Sec. 5 analysis) — the stencil implementation ladder:
//
//   naive      27 multiplications + 26 additions per point (the literal
//              mathematics),
//   grouped    4 multiplications per point by summing coefficient classes
//              first (what sac2c reaches implicitly),
//   shared     the Fortran-77 hand optimisation: partial line sums shared
//              between neighbouring points through plane buffers (12-20
//              additions per point — the trick the paper says sac2c lacks).
//
// One google-benchmark timing per rung and grid size.

#include <benchmark/benchmark.h>

#include <vector>

#include "sacpp/mg/mg_ref.hpp"
#include "sacpp/mg/problem.hpp"
#include "sacpp/sac/sac.hpp"

namespace {

using namespace sacpp;
using sac::Array;

Array<double> input_grid(extent_t n) {
  const Shape shp{n, n, n};
  return sac::with_genarray<double>(
      shp, sac::rank3_body([](extent_t i, extent_t j, extent_t k) {
        return 0.25 * static_cast<double>(i + 2 * j + 3 * k);
      }));
}

const sac::StencilCoeffs kA{{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}};

void BM_StencilNaive(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto a = input_grid(n);
  for (auto _ : state) {
    auto r = sac::relax_kernel(a, kA, sac::StencilMode::kNaive);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2) * (n - 2));
}

void BM_StencilGrouped(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto a = input_grid(n);
  for (auto _ : state) {
    auto r = sac::relax_kernel(a, kA, sac::StencilMode::kGrouped);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2) * (n - 2));
}

void BM_StencilSharedPlanes(benchmark::State& state) {
  const extent_t n = state.range(0);
  auto a = input_grid(n);
  const std::size_t count = static_cast<std::size_t>(n * n * n);
  std::vector<double> u(a.data(), a.data() + count);
  std::vector<double> v(count, 0.0);
  std::vector<double> r(count, 0.0);
  mg::MgRef ref(mg::MgSpec::for_class(mg::MgClass::A));
  for (auto _ : state) {
    ref.kernel_resid(u.data(), v.data(), r.data(), n);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(state.iterations() * (n - 2) * (n - 2) * (n - 2));
}

}  // namespace

BENCHMARK(BM_StencilNaive)->Arg(34)->Arg(66)->Arg(130)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StencilGrouped)->Arg(34)->Arg(66)->Arg(130)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StencilSharedPlanes)->Arg(34)->Arg(66)->Arg(130)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
