// Ablation 3 (DESIGN.md D1) — with-loop folding on the full benchmark and
// on the grid-transfer microkernel where it matters most (Fine2Coarse
// evaluates the P stencil at 1/8 of the points when fused).

#include <cstdio>

#include "bench_common.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/common/timer.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/mg/mg_sac.hpp"
#include "sacpp/sac/sac.hpp"

using namespace sacpp;
using namespace sacpp::mg;

namespace {

MgResult run_with_folding(const MgSpec& spec, bool folding) {
  sac::SacConfig cfg = sac::config();
  cfg.folding = folding;
  sac::ScopedConfig guard(cfg);
  RunOptions opts;
  opts.record_norms = false;
  return run_benchmark(Variant::kSac, spec, opts);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "S,W");
  if (!cli.parse(argc, argv)) return 1;

  Table table({"class", "folding", "time [s]", "with-loops", "allocations",
               "bytes allocated [MB]", "speed vs unfolded"});

  for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
    double unfolded_time = 0.0;
    for (bool folding : {false, true}) {
      sac::reset_stats();
      const MgResult res = run_with_folding(spec, folding);
      const auto& st = sac::stats();
      if (!folding) unfolded_time = res.seconds;
      table.add_row({spec.name(), folding ? "on" : "off",
                     Table::fmt(res.seconds, 3),
                     std::to_string(st.with_loops),
                     std::to_string(st.allocations),
                     Table::fmt(static_cast<double>(st.bytes_allocated) / 1e6,
                                1),
                     Table::fmt(unfolded_time / res.seconds, 2)});
    }
  }
  std::printf("%s\n",
              table.to_ascii("Ablation D1 — with-loop folding on the SAC MG "
                             "implementation")
                  .c_str());

  // Microkernel: Fine2Coarse fused vs unfused.
  const extent_t n = 130;
  MgSac mg(MgSpec::for_class(MgClass::A));
  auto r = sac::with_genarray<double>(
      cube_shape(3, n), sac::rank3_body([](extent_t i, extent_t j, extent_t k) {
        return 1e-3 * static_cast<double>(i * j + k);
      }));
  Table micro({"kernel", "mode", "time [ms]"});
  for (bool folding : {false, true}) {
    sac::SacConfig cfg = sac::config();
    cfg.folding = folding;
    sac::ScopedConfig guard(cfg);
    Timer t;
    for (int i = 0; i < 5; ++i) {
      auto rn = mg.fine2coarse(r);
      (void)rn;
    }
    micro.add_row({"Fine2Coarse 128^3", folding ? "fused" : "materialised",
                   Table::fmt(t.elapsed_seconds() / 5.0 * 1e3, 2)});
  }
  std::printf("%s\n", micro.to_ascii("Fine2Coarse microkernel").c_str());
  table.write_csv(cli.get("csv"));
  return 0;
}
