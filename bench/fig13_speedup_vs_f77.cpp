// Fig. 13 — speedups relative to the fastest sequential implementation in
// the field, i.e. serial Fortran-77, P = 1..10, classes W and A.
//
// The paper's qualitative findings reproduced here:
//   * SAC overtakes the auto-parallelised Fortran-77 code at four CPUs;
//   * for class A, SAC's superior sequential base keeps it ahead of the
//     C/OpenMP code over the whole investigated processor range.

#include <cstdio>

#include "bench_common.hpp"
#include "sacpp/common/svg_plot.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/machine/model.hpp"
#include "sacpp/machine/paper_data.hpp"
#include "sacpp/mg/driver.hpp"

using namespace sacpp;
using namespace sacpp::mg;
using namespace sacpp::machine;

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "W,A");
  cli.add_option("cpus", "10", "maximum CPU count");
  cli.add_option("svg", "", "write the figure as SVG to this path prefix");
  if (!cli.parse(argc, argv)) return 1;

  const int max_cpus = static_cast<int>(cli.get_int("cpus"));
  SmpModel model;

  std::vector<std::string> header{"class", "implementation"};
  for (int p = 1; p <= max_cpus; ++p) header.push_back("P=" + std::to_string(p));
  Table table(header);

  for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
    const double f77_serial =
        model.trace_time(build_trace(Variant::kFortran, spec), 1);
    int sac_overtakes_f77 = -1;
    bool sac_ahead_of_omp = true;
    for (Variant v :
         {Variant::kSac, Variant::kFortran, Variant::kOpenMp}) {
      const Trace trace = build_trace(v, spec);
      std::vector<std::string> row{spec.name(), variant_name(v)};
      for (int p = 1; p <= max_cpus; ++p) {
        row.push_back(Table::fmt(f77_serial / model.trace_time(trace, p), 2));
      }
      table.add_row(row);
    }
    const Trace sac = build_trace(Variant::kSac, spec);
    const Trace f77 = build_trace(Variant::kFortran, spec);
    const Trace omp = build_trace(Variant::kOpenMp, spec);
    for (int p = 1; p <= max_cpus; ++p) {
      if (sac_overtakes_f77 < 0 &&
          model.trace_time(sac, p) < model.trace_time(f77, p)) {
        sac_overtakes_f77 = p;
      }
      if (model.trace_time(sac, p) >= model.trace_time(omp, p)) {
        sac_ahead_of_omp = false;
      }
    }
    std::printf("class %s: SAC overtakes auto-parallelised Fortran-77 at "
                "P=%d (paper: %d); SAC ahead of OpenMP over the whole "
                "range: %s%s\n",
                spec.name().c_str(), sac_overtakes_f77,
                paper::kSacBeatsF77AtCpus, sac_ahead_of_omp ? "yes" : "no",
                spec.cls == MgClass::A ? " (paper: yes)" : "");
  }

  std::printf("\n%s\n",
              table
                  .to_ascii("Fig. 13 — modelled speedups relative to "
                            "sequential Fortran-77 (SUN E4000 model)")
                  .c_str());
  table.write_csv(cli.get("csv"));

  if (!cli.get("svg").empty()) {
    for (const MgSpec& spec : bench::parse_classes(cli.get("classes"))) {
      const double f77_serial =
          model.trace_time(build_trace(Variant::kFortran, spec), 1);
      SvgChart chart("Fig. 13 — class " + spec.name() +
                         " (modelled SUN E4000)",
                     "processors", "speedup vs sequential Fortran-77");
      for (Variant v :
           {Variant::kSac, Variant::kFortran, Variant::kOpenMp}) {
        const Trace trace = build_trace(v, spec);
        std::vector<std::pair<double, double>> pts;
        for (int p = 1; p <= max_cpus; ++p) {
          pts.emplace_back(p, f77_serial / model.trace_time(trace, p));
        }
        chart.add_series(variant_name(v), std::move(pts));
      }
      chart.write(cli.get("svg") + "_" + spec.name() + ".svg");
    }
  }
  return 0;
}
