// Ablation — the with-loop graph optimiser (docs/with_loops.md §folding):
// naive one-with-loop-per-node evaluation vs the optimised graph, on the
// compositions MG actually uses, with rewrite statistics.

#include <cstdio>

#include "bench_common.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/common/timer.hpp"
#include "sacpp/sac/sac.hpp"
#include "sacpp/sac/wlgraph.hpp"

using namespace sacpp;
using namespace sacpp::sac;

namespace {

struct CaseResult {
  double naive_ms, opt_ms;
  std::uint64_t naive_allocs, opt_allocs;
  wl::RewriteStats stats;
};

CaseResult run_case(const wl::NodeRef& graph, const wl::Bindings& bindings,
                    int reps) {
  CaseResult r{};
  const wl::NodeRef opt = wl::optimise(graph, &r.stats);
  {
    reset_stats();
    Timer t;
    for (int i = 0; i < reps; ++i) (void)wl::evaluate_naive(graph, bindings);
    r.naive_ms = t.elapsed_seconds() * 1e3 / reps;
    r.naive_allocs = stats().allocations / static_cast<unsigned>(reps);
  }
  {
    reset_stats();
    Timer t;
    for (int i = 0; i < reps; ++i) (void)wl::evaluate(opt, bindings);
    r.opt_ms = t.elapsed_seconds() * 1e3 / reps;
    r.opt_allocs = stats().allocations / static_cast<unsigned>(reps);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  bench::add_standard_options(cli, "S");
  if (!cli.parse(argc, argv)) return 1;

  const Shape shp{66, 66, 66};
  const Shape coarse{34, 34, 34};
  auto field = with_genarray<double>(
      shp, rank3_body([](extent_t i, extent_t j, extent_t k) {
        return 1e-3 * static_cast<double>(i * 3 + j * 2 + k);
      }));
  const StencilCoeffs P{{0.5, 0.25, 0.125, 0.0625}};

  Table t({"graph", "naive [ms]", "optimised [ms]", "naive allocs",
           "opt allocs", "gathers collapsed", "nodes fused"});
  auto report = [&](const char* name, const wl::NodeRef& g,
                    const wl::Bindings& b, int reps) {
    const CaseResult r = run_case(g, b, reps);
    t.add_row({name, Table::fmt(r.naive_ms, 2), Table::fmt(r.opt_ms, 2),
               std::to_string(r.naive_allocs), std::to_string(r.opt_allocs),
               std::to_string(r.stats.gathers_collapsed),
               std::to_string(r.stats.ewise_fused)});
  };

  {
    // the paper's Fine2Coarse: embed(shp+1, 0, condense(2, P(r)))
    auto x = wl::input("r", shp);
    auto g = wl::embed(coarse.extents(), {0, 0, 0},
                       wl::condense(2, wl::stencil(x, P)));
    report("Fine2Coarse 64^3", g, {{"r", field}}, 5);
  }
  {
    // Coarse2Fine's mapping: take(shape-2, scatter(2, z))
    auto zc = with_genarray<double>(coarse, [&](const IndexVec& iv) {
      return static_cast<double>(coarse.linearize(iv));
    });
    auto z = wl::input("z", coarse);
    auto g = wl::take(shp.extents(), wl::scatter(2, z));
    report("scatter+take 34^3", g, {{"z", zc}}, 5);
  }
  {
    // a deep element-wise + structural chain
    auto x = wl::input("x", shp);
    auto g = wl::condense(
        2, wl::add(wl::mul(x, x), wl::scale(wl::shift({1, 0, 0}, x), 0.5)));
    report("condense(x*x + 0.5*shift(x))", g, {{"x", field}}, 5);
  }

  std::printf("%s\n",
              t.to_ascii("With-loop graph optimiser: naive vs optimised "
                         "evaluation (values bitwise equal; see "
                         "tests/sac_wlgraph_test)")
                  .c_str());
  return 0;
}
