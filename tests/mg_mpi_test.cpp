// Distributed MG: the slab-decomposed message-passing implementation must
// reproduce the serial reference norms for any power-of-two rank count,
// including the gather-to-root coarse tail.

#include <gtest/gtest.h>

#include <cmath>

#include "sacpp/mg/mg_mpi.hpp"
#include "sacpp/mg/mg_ref.hpp"

namespace sacpp::mg {
namespace {

std::vector<double> serial_norms(const MgSpec& spec, int nit) {
  MgRef ref(spec);
  ref.setup_default_rhs();
  ref.zero_u();
  ref.initial_resid();
  std::vector<double> norms;
  for (int it = 0; it < nit; ++it) {
    ref.iterate(1);
    norms.push_back(ref.residual_norm());
  }
  return norms;
}

class MpiRanks : public ::testing::TestWithParam<int> {};

TEST_P(MpiRanks, NormsMatchSerialReferenceEveryIteration) {
  const int ranks = GetParam();
  const MgSpec spec = MgSpec::custom(16, 3);
  const auto serial = serial_norms(spec, 3);

  MgMpi mpi(spec, ranks);
  const MgMpi::Result res = mpi.run(3, /*warmup=*/false);
  ASSERT_EQ(res.norms.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_NEAR(res.norms[i], serial[i], serial[i] * 1e-12 + 1e-18)
        << "ranks=" << ranks << " iteration " << i;
  }
}

TEST_P(MpiRanks, ClassSVerificationValue) {
  const int ranks = GetParam();
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  MgMpi mpi(spec, ranks);
  const MgMpi::Result res = mpi.run(spec.nit, /*warmup=*/false);
  EXPECT_NEAR(res.final_norm, 0.530770700573e-04, 1e-13) << "ranks=" << ranks;
}

INSTANTIATE_TEST_SUITE_P(Ranks, MpiRanks, ::testing::Values(1, 2, 4));

TEST(MgMpi, EightRanksOnClassS) {
  // Deeper coarse tail (kd = 3): three serial levels under five distributed.
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  MgMpi mpi(spec, 8);
  const MgMpi::Result res = mpi.run(spec.nit, /*warmup=*/false);
  EXPECT_NEAR(res.final_norm, 0.530770700573e-04, 1e-13);
}

TEST(MgMpi, WarmupDoesNotChangeNorms) {
  const MgSpec spec = MgSpec::custom(16, 2);
  MgMpi mpi(spec, 2);
  const auto with = mpi.run(2, /*warmup=*/true);
  const auto without = mpi.run(2, /*warmup=*/false);
  ASSERT_EQ(with.norms.size(), without.norms.size());
  for (std::size_t i = 0; i < with.norms.size(); ++i) {
    EXPECT_DOUBLE_EQ(with.norms[i], without.norms[i]);
  }
}

TEST(MgMpi, CommunicationVolumeScalesWithRanks) {
  const MgSpec spec = MgSpec::custom(16, 1);
  const auto r2 = MgMpi(spec, 2).run(1, false);
  const auto r4 = MgMpi(spec, 4).run(1, false);
  EXPECT_GT(r2.comm.messages, 0u);
  EXPECT_GT(r4.comm.messages, r2.comm.messages);
  EXPECT_GT(r2.comm.bytes, 0u);
  // per-rank halo volume stays a plane, so total bytes grow with ranks
  EXPECT_GT(r4.comm.bytes, r2.comm.bytes);
}

TEST(MgMpi, SingleRankHasOnlySelfMessages) {
  const MgSpec spec = MgSpec::custom(8, 1);
  const auto res = MgMpi(spec, 1).run(1, false);
  EXPECT_GT(res.comm.messages, 0u);  // self-exchange of halo planes
  EXPECT_GT(res.final_norm, 0.0);
}

TEST(MgMpi, InvalidConfigurationsRejected) {
  const MgSpec spec = MgSpec::custom(8, 1);
  EXPECT_THROW(MgMpi(spec, 3), ContractError);   // not a power of two
  EXPECT_THROW(MgMpi(spec, 8), ContractError);   // fewer than 2 planes/rank
  (void)MgMpi(spec, 4);                          // boundary case is fine
}

}  // namespace
}  // namespace sacpp::mg
