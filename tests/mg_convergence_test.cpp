// Multigrid convergence behaviour: the V-cycle must contract the residual
// at a grid-size-independent rate (the defining property of multigrid), and
// the benchmark classes must reproduce their verification norms.

#include <gtest/gtest.h>

#include <cmath>

#include "sacpp/mg/driver.hpp"
#include "sacpp/mg/mg_ref.hpp"

namespace sacpp::mg {
namespace {

std::vector<double> norms_for(extent_t nx, int nit) {
  MgRef solver(MgSpec::custom(nx, nit));
  solver.setup_default_rhs();
  solver.zero_u();
  solver.initial_resid();
  std::vector<double> norms{solver.residual_norm()};
  for (int it = 0; it < nit; ++it) {
    solver.iterate(1);
    norms.push_back(solver.residual_norm());
  }
  return norms;
}

TEST(Convergence, ResidualDecreasesMonotonically) {
  const auto norms = norms_for(32, 4);
  for (std::size_t i = 1; i < norms.size(); ++i) {
    ASSERT_LT(norms[i], norms[i - 1]) << "iteration " << i;
  }
}

TEST(Convergence, ContractionFactorIsMultigridLike) {
  // Each V-cycle should shrink the residual by a large, roughly constant
  // factor (NPB MG contracts by tens per iteration).
  const auto norms = norms_for(32, 4);
  for (std::size_t i = 1; i < norms.size(); ++i) {
    const double factor = norms[i - 1] / norms[i];
    ASSERT_GT(factor, 3.0) << "weak contraction at iteration " << i;
    ASSERT_LT(factor, 1e4) << "implausible contraction at iteration " << i;
  }
}

TEST(Convergence, RateIsGridSizeIndependent) {
  // The multigrid promise: the contraction factor of the first iteration
  // does not degrade as the grid is refined.
  double prev_factor = 0.0;
  for (extent_t nx : {16, 32, 64}) {
    const auto norms = norms_for(nx, 1);
    const double factor = norms[0] / norms[1];
    if (prev_factor > 0.0) {
      EXPECT_GT(factor, prev_factor * 0.3)
          << "contraction collapsed between grid sizes at nx=" << nx;
    }
    prev_factor = factor;
  }
}

TEST(Convergence, ClassSVerificationValue) {
  // Regenerated class S reference value; also exactly the official NPB 2.3
  // verification constant 0.530770700573e-04 (our kernels reproduce the
  // benchmark definition bit-compatibly at this size).
  MgRef solver(MgSpec::for_class(MgClass::S));
  solver.setup_default_rhs();
  solver.zero_u();
  solver.initial_resid();
  solver.iterate(4);
  EXPECT_NEAR(solver.residual_norm(), 0.530770700573e-04, 1e-14);
}

TEST(Convergence, InitialNormMatchesChargeCount) {
  // Before any iteration r == v: twenty unit charges on nx^3 points.
  const extent_t nx = 32;
  MgRef solver(MgSpec::custom(nx, 1));
  solver.setup_default_rhs();
  solver.zero_u();
  solver.initial_resid();
  const double expect =
      std::sqrt(20.0 / (static_cast<double>(nx) * nx * nx));
  EXPECT_NEAR(solver.residual_norm(), expect, 1e-12);
}

TEST(Convergence, MoreIterationsNeverWorse) {
  const auto four = norms_for(16, 4);
  const auto eight = norms_for(16, 8);
  EXPECT_LT(eight.back(), four.back());
}

TEST(Convergence, SmootherCoefficientsBMatter) {
  // The class-B smoother is a different operator; same grid, different
  // final norm (guards against the smoother coefficients being ignored).
  MgRef a(MgSpec::custom(16, 2, /*class_b_smoother=*/false));
  MgRef b(MgSpec::custom(16, 2, /*class_b_smoother=*/true));
  for (MgRef* s : {&a, &b}) {
    s->setup_default_rhs();
    s->zero_u();
    s->initial_resid();
    s->iterate(2);
  }
  EXPECT_NE(a.residual_norm(), b.residual_norm());
  // both still converge (S(b) contracts slower on small grids)
  EXPECT_LT(a.residual_norm(), 5e-2);
  EXPECT_LT(b.residual_norm(), 5e-2);
}

TEST(Verification, ClassSAllVariantsSuccessful) {
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  RunOptions opts;
  opts.warmup = false;
  for (auto v : {Variant::kSac, Variant::kFortran, Variant::kOpenMp,
                 Variant::kSacDirect}) {
    const MgResult res = run_benchmark(v, spec, opts);
    bool known = false;
    EXPECT_TRUE(verify(res, spec, &known)) << variant_name(v);
    EXPECT_TRUE(known);
  }
}

TEST(Verification, ReferenceNormsRecordedForStandardClasses) {
  double ref = 0.0;
  ASSERT_TRUE(reference_norm(MgSpec::for_class(MgClass::S), &ref));
  // classes S, A, B equal the official NPB 2.3 verification constants
  EXPECT_NEAR(ref, 0.5307707005734e-04, 1e-15);
  ASSERT_TRUE(reference_norm(MgSpec::for_class(MgClass::A), &ref));
  EXPECT_NEAR(ref, 0.2433365309e-05, 1e-14);
  ASSERT_TRUE(reference_norm(MgSpec::for_class(MgClass::B), &ref));
  EXPECT_NEAR(ref, 0.180056440132e-05, 1e-14);
  ASSERT_TRUE(reference_norm(MgSpec::for_class(MgClass::W), &ref));
  EXPECT_FALSE(reference_norm(MgSpec::custom(16, 2), &ref));
}

TEST(Verification, ClassWVerifiesAtTheRoundingFloor) {
  // 40 iterations reach the round-off floor; reordered arithmetic lands at
  // a slightly different noise norm, which must still verify by magnitude.
  const MgSpec spec = MgSpec::for_class(MgClass::W);
  MgResult res;
  res.final_norm = 3.2e-18;  // a SAC-ordered run's typical floor value
  res.variant = Variant::kSac;
  bool known = false;
  EXPECT_TRUE(verify(res, spec, &known));
  EXPECT_TRUE(known);
  res.final_norm = 1e-12;  // three orders off: stalled convergence
  EXPECT_FALSE(verify(res, spec, &known));
}

TEST(Verification, CorruptedResultFailsVerification) {
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  RunOptions opts;
  opts.warmup = false;
  MgResult res = run_benchmark(Variant::kFortran, spec, opts);
  res.final_norm *= 1.0 + 1e-6;  // outside the 1e-8 tolerance
  bool known = false;
  EXPECT_FALSE(verify(res, spec, &known));
  EXPECT_TRUE(known);
}

TEST(Verification, NpbReportContainsVerdict) {
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  RunOptions opts;
  opts.warmup = false;
  const MgResult res = run_benchmark(Variant::kFortran, spec, opts);
  const std::string report = npb_report(res, spec);
  EXPECT_NE(report.find("SUCCESSFUL"), std::string::npos);
  EXPECT_NE(report.find("Class               = S"), std::string::npos);
  EXPECT_NE(report.find("Fortran-77"), std::string::npos);
}

TEST(Spec, ClassGeometry) {
  EXPECT_EQ(MgSpec::for_class(MgClass::S).nx, 32);
  EXPECT_EQ(MgSpec::for_class(MgClass::S).nit, 4);
  EXPECT_EQ(MgSpec::for_class(MgClass::W).nx, 64);
  EXPECT_EQ(MgSpec::for_class(MgClass::W).nit, 40);
  EXPECT_EQ(MgSpec::for_class(MgClass::A).nx, 256);
  EXPECT_EQ(MgSpec::for_class(MgClass::A).nit, 4);
  EXPECT_EQ(MgSpec::for_class(MgClass::B).nx, 256);
  EXPECT_EQ(MgSpec::for_class(MgClass::B).nit, 20);
}

TEST(Spec, LevelsAndExtents) {
  const MgSpec s = MgSpec::for_class(MgClass::S);
  EXPECT_EQ(s.levels(), 5);
  EXPECT_EQ(s.extended_extent(5), 34);
  EXPECT_EQ(s.extended_extent(1), 4);
  EXPECT_THROW(s.extended_extent(0), ContractError);
  EXPECT_THROW(s.extended_extent(6), ContractError);
}

TEST(Spec, SmootherSelectionByClass) {
  EXPECT_DOUBLE_EQ(MgSpec::for_class(MgClass::A).s[0], -3.0 / 8.0);
  EXPECT_DOUBLE_EQ(MgSpec::for_class(MgClass::B).s[0], -3.0 / 17.0);
}

TEST(Spec, ParseClassAndName) {
  EXPECT_EQ(parse_class("A"), MgClass::A);
  EXPECT_EQ(parse_class("w"), MgClass::W);
  EXPECT_THROW(parse_class("X"), ContractError);
  EXPECT_THROW(parse_class("AB"), ContractError);
  EXPECT_EQ(MgSpec::for_class(MgClass::W).name(), "W");
  EXPECT_EQ(MgSpec::custom(16, 2).name(), "custom(16^3 x 2)");
}

TEST(Driver, NominalFlopsFormula) {
  const MgSpec s = MgSpec::for_class(MgClass::S);
  EXPECT_DOUBLE_EQ(nominal_flops(s), 58.0 * 32768.0 * 4.0);
}

TEST(Driver, VariantNamesRoundTrip) {
  EXPECT_EQ(parse_variant("sac"), Variant::kSac);
  EXPECT_EQ(parse_variant("f77"), Variant::kFortran);
  EXPECT_EQ(parse_variant("omp"), Variant::kOpenMp);
  EXPECT_THROW(parse_variant("pascal"), ContractError);
  EXPECT_STREQ(variant_name(Variant::kSac), "SAC");
}

}  // namespace
}  // namespace sacpp::mg
