// The implicit multithreading runtime: thread-pool correctness, chunk
// alignment, threshold behaviour, and value-equivalence of parallel and
// sequential with-loop execution.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include "sacpp/sac/sac.hpp"

namespace sacpp::sac {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hit(10, 0);
  pool.parallel_for(0, 10, 1, [&](extent_t lo, extent_t hi, unsigned) {
    for (extent_t i = lo; i < hi; ++i) hit[static_cast<std::size_t>(i)] = 1;
  });
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 1, [&](extent_t lo, extent_t hi, unsigned) {
    for (extent_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkStartsAlignedToStride) {
  ThreadPool pool(3);
  std::vector<extent_t> starts;
  std::mutex m;
  pool.parallel_for(2, 100, 7, [&](extent_t lo, extent_t, unsigned) {
    std::lock_guard<std::mutex> g(m);
    starts.push_back(lo);
  });
  for (extent_t s : starts) {
    EXPECT_EQ((s - 2) % 7, 0) << "chunk start " << s << " not step-aligned";
  }
}

TEST(ThreadPool, EmptyRangeDoesNothing) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, 1,
                    [&](extent_t, extent_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<extent_t> total{0};
    pool.parallel_for(0, 64, 1, [&](extent_t lo, extent_t hi, unsigned) {
      total.fetch_add(hi - lo);
    });
    ASSERT_EQ(total.load(), 64);
  }
}

TEST(ThreadPool, WorkerIdsAreDistinctAndInRange) {
  ThreadPool pool(4);
  std::set<unsigned> ids;
  std::mutex m;
  pool.parallel_for(0, 400, 1, [&](extent_t, extent_t, unsigned who) {
    std::lock_guard<std::mutex> g(m);
    ids.insert(who);
  });
  for (unsigned id : ids) EXPECT_LT(id, 4u);
  EXPECT_GE(ids.size(), 1u);
}

TEST(Runtime, GlobalPoolFollowsConfig) {
  SacConfig cfg = config();
  cfg.mt_enabled = true;
  cfg.mt_threads = 3;
  {
    ScopedConfig guard(cfg);
    EXPECT_EQ(runtime().thread_count(), 3u);
  }
  // mt disabled -> single-thread pool
  cfg.mt_enabled = false;
  {
    ScopedConfig guard(cfg);
    EXPECT_EQ(runtime().thread_count(), 1u);
  }
  shutdown_runtime();
}

class ParallelEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelEquivalence, GenarrayValuesMatchSequential) {
  const Shape shp{32, 16, 16};
  auto body = rank3_body([](extent_t i, extent_t j, extent_t k) {
    return static_cast<double>(i * 1000 + j * 50 + k) * 0.25;
  });
  Array<double> seq = with_genarray<double>(shp, gen_all(), body);

  SacConfig cfg = config();
  cfg.mt_enabled = true;
  cfg.mt_threads = GetParam();
  cfg.mt_threshold = 1;
  ScopedConfig guard(cfg);
  Array<double> par = with_genarray<double>(shp, gen_all(), body);
  for (extent_t i = 0; i < shp.elem_count(); ++i) {
    ASSERT_DOUBLE_EQ(par.at_linear(i), seq.at_linear(i)) << i;
  }
  shutdown_runtime();
}

TEST_P(ParallelEquivalence, FoldSumMatchesSequential) {
  const Shape shp{64, 8, 8};
  auto body = [&shp](const IndexVec& iv) {
    return static_cast<double>(shp.linearize(iv) % 97);
  };
  const double seq =
      with_fold(std::plus<>{}, 0.0, shp, gen_all(), body);

  SacConfig cfg = config();
  cfg.mt_enabled = true;
  cfg.mt_threads = GetParam();
  cfg.mt_threshold = 1;
  ScopedConfig guard(cfg);
  const double par = with_fold(std::plus<>{}, 0.0, shp, gen_all(), body);
  EXPECT_DOUBLE_EQ(par, seq);
  shutdown_runtime();
}

TEST_P(ParallelEquivalence, StridedGeneratorKeepsPhase) {
  const Shape shp{40};
  SacConfig cfg = config();
  cfg.mt_enabled = true;
  cfg.mt_threads = GetParam();
  cfg.mt_threshold = 1;
  ScopedConfig guard(cfg);
  auto a = with_genarray<int>(
      shp, gen_range({1}, {40}).with_step(3),
      [](const IndexVec&) { return 1; }, 0);
  for (extent_t i = 0; i < 40; ++i) {
    const int expect = (i >= 1 && (i - 1) % 3 == 0) ? 1 : 0;
    ASSERT_EQ((a[IndexVec{i}]), expect) << i;
  }
  shutdown_runtime();
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEquivalence,
                         ::testing::Values(2u, 3u, 4u, 8u));

TEST(Threshold, SmallLoopsStaySequential) {
  SacConfig cfg = config();
  cfg.mt_enabled = true;
  cfg.mt_threads = 4;
  cfg.mt_threshold = 1 << 20;  // everything below a megaelement is serial
  ScopedConfig guard(cfg);
  reset_stats();
  (void)with_genarray<double>(Shape{16, 16}, gen_all(),
                              [](const IndexVec&) { return 1.0; });
  EXPECT_EQ(stats().parallel_regions, 0u);
  shutdown_runtime();
}

TEST(Threshold, LargeLoopsGoParallel) {
  SacConfig cfg = config();
  cfg.mt_enabled = true;
  cfg.mt_threads = 4;
  cfg.mt_threshold = 64;
  ScopedConfig guard(cfg);
  reset_stats();
  (void)with_genarray<double>(Shape{64, 64}, gen_all(),
                              [](const IndexVec&) { return 1.0; });
  EXPECT_EQ(stats().parallel_regions, 1u);
  shutdown_runtime();
}

TEST(ParallelMg, ClassSizeNormsUnchangedUnderMt) {
  // End-to-end determinism guard: the whole data-parallel MG run must
  // produce identical results multithreaded (reductions excluded from
  // bitwise identity are re-associated per chunk, so compare tightly).
  const Shape shp{18, 18, 18};
  auto a = with_genarray<double>(shp, [&shp](const IndexVec& iv) {
    return std::sin(static_cast<double>(shp.linearize(iv)));
  });
  const StencilCoeffs c{{-0.4, 0.1, 0.05, 0.02}};
  auto seq = relax_kernel(a, c);
  SacConfig cfg = config();
  cfg.mt_enabled = true;
  cfg.mt_threads = 4;
  cfg.mt_threshold = 1;
  ScopedConfig guard(cfg);
  auto par = relax_kernel(a, c);
  for (extent_t i = 0; i < seq.elem_count(); ++i) {
    ASSERT_DOUBLE_EQ(par.at_linear(i), seq.at_linear(i)) << i;
  }
  shutdown_runtime();
}

}  // namespace
}  // namespace sacpp::sac
