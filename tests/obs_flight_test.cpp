// Flight recorder: dump gating (no path / rate limit / force), snapshot
// content (reason, per-thread spans, retained traces, provider state), and
// the dump counter.  Signal-handler installation is exercised only for
// idempotence — actually crashing belongs to the CI telemetry job.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sacpp/obs/flight.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/obs/trace.hpp"

namespace sacpp::obs {
namespace {

std::string unique_dump_path(const char* test) {
  return testing::TempDir() + "sacpp_flight_" + test + ".json";
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

TEST(FlightRecorder, NoConfiguredPathMeansNoDump) {
  flight_configure("");
  EXPECT_EQ(flight_path(), "");
  EXPECT_FALSE(flight_dump("unit-test", /*force=*/true));
}

TEST(FlightRecorder, DumpEmbedsSpansTracesAndProviderState) {
  set_enabled(false);
  reset();
  clear_retained_traces();

  // One stamped span promoted into the retained store, so the dump carries
  // both the black-box ring view and the trace store view of it.
  set_enabled(true);
  const std::uint64_t id = mint_trace_id();
  {
    TraceBinding bind({id, 0, kTraceForced});
    record_span(SpanKind::kPhase, "flight_probe_span", 10, 5);
  }
  set_enabled(false);
  TraceMeta meta;
  meta.trace_id = id;
  meta.reason = RetainReason::kFlagged;
  meta.status = "ok";
  ASSERT_TRUE(retain_trace(meta));

  // Providers are process-lifetime, so give this one a test-unique name.
  flight_register_provider("flight_test_probe",
                           [] { return std::string("{\"answer\":42}"); });

  const std::string path = unique_dump_path("content");
  flight_configure(path);
  const std::uint64_t dumps_before = flight_dump_count();
  ASSERT_TRUE(flight_dump("unit-test-reason", /*force=*/true));
  EXPECT_EQ(flight_dump_count(), dumps_before + 1);
  flight_configure("");

  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"reason\":\"unit-test-reason\""), std::string::npos);
  EXPECT_NE(json.find("flight_probe_span"), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"" + std::to_string(id) + "\""),
            std::string::npos);
  EXPECT_NE(json.find("\"flight_test_probe\":{\"answer\":42}"),
            std::string::npos);
  EXPECT_NE(json.find("\"threads\":["), std::string::npos);

  reset();
  clear_retained_traces();
}

TEST(FlightRecorder, DumpsAreRateLimitedUnlessForced) {
  const std::string path = unique_dump_path("ratelimit");
  flight_configure(path);
  ASSERT_TRUE(flight_dump("first", /*force=*/true));
  // Within the 1s window an unforced dump is suppressed (a storm of
  // deadline misses must not thrash the disk) ...
  EXPECT_FALSE(flight_dump("suppressed"));
  // ... but an operator-forced dump still lands, and refreshes the file.
  ASSERT_TRUE(flight_dump("forced-second", /*force=*/true));
  EXPECT_NE(slurp(path).find("\"reason\":\"forced-second\""),
            std::string::npos);
  flight_configure("");
}

TEST(FlightRecorder, ProviderExceptionsAreContained) {
  flight_register_provider("flight_test_thrower",
                           []() -> std::string { throw std::runtime_error("boom"); });
  const std::string path = unique_dump_path("thrower");
  flight_configure(path);
  ASSERT_TRUE(flight_dump("provider-threw", /*force=*/true));
  flight_configure("");
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"flight_test_thrower\":\"<provider threw>\""),
            std::string::npos)
      << json;
}

TEST(FlightRecorder, SignalHandlerInstallIsIdempotent) {
  flight_install_signal_handlers();
  flight_install_signal_handlers();  // second call must be a no-op
}

}  // namespace
}  // namespace sacpp::obs
