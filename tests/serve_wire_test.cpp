// Wire framing tests: request/result round trips, stream reassembly,
// malformed-frame rejection, and the double-packed msg::World transport.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sacpp/common/error.hpp"
#include "sacpp/msg/msg.hpp"
#include "sacpp/serve/wire.hpp"

using namespace sacpp;
using namespace sacpp::serve;

namespace {

SolveRequest sample_request() {
  SolveRequest req;
  req.id = 0x0123456789abcdefull;
  req.cls = mg::MgClass::W;
  req.variant = mg::Variant::kSac;
  req.nit = 7;
  req.priority = Priority::kHigh;
  req.stencil_mode = sac::StencilMode::kPlanes;
  req.backend = sac::BackendKind::kSimd;
  req.gang = 3;
  req.deadline_ns = 1'500'000'000;
  req.record_norms = true;
  return req;
}

SolveResult sample_result() {
  SolveResult res;
  res.id = 42;
  res.status = SolveStatus::kDeadlineMiss;
  res.final_norm = 5.307707005734909e-05;
  res.seconds = 0.125;
  res.queue_ns = 1234;
  res.e2e_ns = 56789;
  res.gang = 2;
  res.verified = true;
  res.error = "late by 3ms";
  return res;
}

TEST(ServeWire, RequestRoundTrip) {
  const SolveRequest req = sample_request();
  const std::vector<std::uint8_t> frame = encode_request(req);
  ASSERT_EQ(frame_size(frame), frame.size());

  SolveRequest back;
  std::string error;
  ASSERT_TRUE(decode_request(frame, &back, &error)) << error;
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.cls, req.cls);
  EXPECT_EQ(back.variant, req.variant);
  EXPECT_EQ(back.nit, req.nit);
  EXPECT_EQ(back.priority, req.priority);
  EXPECT_EQ(back.stencil_mode, req.stencil_mode);
  EXPECT_EQ(back.backend, req.backend);
  EXPECT_EQ(back.gang, req.gang);
  EXPECT_EQ(back.deadline_ns, req.deadline_ns);
  EXPECT_EQ(back.record_norms, req.record_norms);
}

TEST(ServeWire, ResultRoundTrip) {
  const SolveResult res = sample_result();
  const std::vector<std::uint8_t> frame = encode_result(res);
  ASSERT_EQ(frame_size(frame), frame.size());

  SolveResult back;
  std::string error;
  ASSERT_TRUE(decode_result(frame, &back, &error)) << error;
  EXPECT_EQ(back.id, res.id);
  EXPECT_EQ(back.status, res.status);
  EXPECT_EQ(back.final_norm, res.final_norm);  // bit-exact through the wire
  EXPECT_EQ(back.seconds, res.seconds);
  EXPECT_EQ(back.queue_ns, res.queue_ns);
  EXPECT_EQ(back.e2e_ns, res.e2e_ns);
  EXPECT_EQ(back.gang, res.gang);
  EXPECT_EQ(back.verified, res.verified);
  EXPECT_EQ(back.error, res.error);
}

TEST(ServeWire, StreamReassembly) {
  // Two frames concatenated: frame_size peels them one at a time, and a
  // partial prefix reports "incomplete" instead of guessing.
  const std::vector<std::uint8_t> a = encode_request(sample_request());
  const std::vector<std::uint8_t> b = encode_result(sample_result());
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  ASSERT_EQ(frame_size(stream), a.size());
  const std::span<const std::uint8_t> rest =
      std::span<const std::uint8_t>(stream).subspan(a.size());
  ASSERT_EQ(frame_size(rest), b.size());

  for (std::size_t cut = 0; cut < a.size(); ++cut) {
    EXPECT_EQ(frame_size(std::span<const std::uint8_t>(a.data(), cut)), 0u)
        << "prefix of " << cut << " bytes should be incomplete";
  }
}

TEST(ServeWire, RejectsWrongMagic) {
  std::vector<std::uint8_t> frame = encode_request(sample_request());
  frame[4] ^= 0xff;  // corrupt the magic
  SolveRequest out;
  std::string error;
  EXPECT_FALSE(decode_request(frame, &out, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
  // A result frame is not a request frame either.
  EXPECT_FALSE(decode_request(encode_result(sample_result()), &out, &error));
}

TEST(ServeWire, RejectsBadVersion) {
  std::vector<std::uint8_t> frame = encode_request(sample_request());
  frame[8] = kWireVersion + 1;
  SolveRequest out;
  std::string error;
  EXPECT_FALSE(decode_request(frame, &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(ServeWire, RejectsTruncatedAndOversized) {
  const std::vector<std::uint8_t> frame = encode_request(sample_request());
  SolveRequest out;
  std::string error;
  // Truncated: drop the last byte.
  EXPECT_FALSE(decode_request(
      std::span<const std::uint8_t>(frame.data(), frame.size() - 1), &out,
      &error));
  // Length prefix beyond the cap: frame_size clamps, decode reports.
  std::vector<std::uint8_t> huge = frame;
  huge[0] = 0xff;
  huge[1] = 0xff;
  huge[2] = 0xff;
  huge[3] = 0x7f;
  EXPECT_FALSE(decode_request(huge, &out, &error));
}

TEST(ServeWire, RejectsOutOfRangeEnums) {
  // Priority byte sits after length(4) + magic(4) + version(1) + id(8) +
  // cls(1) + variant(1).
  std::vector<std::uint8_t> frame = encode_request(sample_request());
  frame[19] = 99;
  SolveRequest out;
  std::string error;
  EXPECT_FALSE(decode_request(frame, &out, &error));
  EXPECT_NE(error.find("priority"), std::string::npos) << error;
}

TEST(ServeWire, RejectsOutOfRangeBackend) {
  // Backend byte sits after length(4) + magic(4) + version(1) + id(8) +
  // cls(1) + variant(1) + priority(1) + stencil(1).
  std::vector<std::uint8_t> frame = encode_request(sample_request());
  frame[21] = 99;
  SolveRequest out;
  std::string error;
  EXPECT_FALSE(decode_request(frame, &out, &error));
  EXPECT_NE(error.find("backend"), std::string::npos) << error;
}

TEST(ServeWire, TraceContextRoundTrip) {
  SolveRequest req = sample_request();
  req.trace_id = 0xfeedfacecafebeefull;
  req.trace_parent = 0x1122334455667788ull;
  req.trace_flags = 0x3;
  SolveRequest back;
  std::string error;
  ASSERT_TRUE(decode_request(encode_request(req), &back, &error)) << error;
  EXPECT_EQ(back.trace_id, req.trace_id);
  EXPECT_EQ(back.trace_parent, req.trace_parent);
  EXPECT_EQ(back.trace_flags, req.trace_flags);

  SolveResult res = sample_result();
  res.trace_id = 0xfeedfacecafebeefull;
  SolveResult res_back;
  ASSERT_TRUE(decode_result(encode_result(res), &res_back, &error)) << error;
  EXPECT_EQ(res_back.trace_id, res.trace_id);
}

// -- cross-version negotiation ----------------------------------------------
// v3 appended the trace context at the END of each payload, so a v2 frame is
// a v3 frame minus its trace tail with the version byte rolled back.  These
// tests pin both directions of the skew: a v2 peer's frames decode with the
// trace fields defaulted, and out-of-range versions are rejected with a
// diagnostic naming the PEER's version (not a bare "bad frame").

// Rewrites the length prefix after surgery on the frame body.
void reseal(std::vector<std::uint8_t>& frame) {
  const std::uint32_t body = static_cast<std::uint32_t>(frame.size() - 4);
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body >> (8 * i));
  }
}

std::vector<std::uint8_t> downgrade_to_v2(std::vector<std::uint8_t> frame,
                                          std::size_t trace_tail_bytes) {
  frame.resize(frame.size() - trace_tail_bytes);
  frame[8] = 2;  // version byte follows length(4) + magic(4)
  reseal(frame);
  return frame;
}

TEST(ServeWireVersions, V2RequestDecodesWithTraceFieldsDefaulted) {
  // Request trace tail: trace_id(8) + trace_parent(8) + trace_flags(1).
  SolveRequest v3 = sample_request();
  v3.trace_id = 0xdeadbeefull;  // must NOT leak through the v2 decode
  const std::vector<std::uint8_t> frame =
      downgrade_to_v2(encode_request(v3), 17);
  SolveRequest back;
  std::string error;
  ASSERT_TRUE(decode_request(frame, &back, &error)) << error;
  EXPECT_EQ(back.id, v3.id);
  EXPECT_EQ(back.deadline_ns, v3.deadline_ns);
  EXPECT_EQ(back.trace_id, 0u);
  EXPECT_EQ(back.trace_parent, 0u);
  EXPECT_EQ(back.trace_flags, 0u);
}

TEST(ServeWireVersions, V2ResultDecodesWithTraceIdDefaulted) {
  // Result trace tail: the echoed trace_id(8).
  SolveResult v3 = sample_result();
  v3.trace_id = 0xdeadbeefull;
  const std::vector<std::uint8_t> frame =
      downgrade_to_v2(encode_result(v3), 8);
  SolveResult back;
  std::string error;
  ASSERT_TRUE(decode_result(frame, &back, &error)) << error;
  EXPECT_EQ(back.id, v3.id);
  EXPECT_EQ(back.error, v3.error);
  EXPECT_EQ(back.trace_id, 0u);
}

TEST(ServeWireVersions, PreV2PeerIsRejectedNamingItsVersion) {
  std::vector<std::uint8_t> frame = encode_request(sample_request());
  frame[8] = 1;
  SolveRequest out;
  std::string error;
  EXPECT_FALSE(decode_request(frame, &out, &error));
  EXPECT_NE(error.find("version 1"), std::string::npos) << error;
  EXPECT_NE(error.find("2..3"), std::string::npos)
      << "diagnostic should name the supported range: " << error;
}

TEST(ServeWireVersions, FutureVersionIsRejectedNamingItsVersion) {
  std::vector<std::uint8_t> frame = encode_result(sample_result());
  frame[8] = kWireVersion + 1;
  SolveResult out;
  std::string error;
  EXPECT_FALSE(decode_result(frame, &out, &error));
  EXPECT_NE(error.find("version " + std::to_string(kWireVersion + 1)),
            std::string::npos)
      << error;
}

TEST(ServeWireVersions, V2FrameWithV3LengthIsRejected) {
  // A frame claiming v2 but still carrying the v3 trace tail has the wrong
  // payload size for its version — it must not decode as either.
  std::vector<std::uint8_t> frame = encode_request(sample_request());
  frame[8] = 2;  // lie about the version, keep the v3 body
  SolveRequest out;
  std::string error;
  EXPECT_FALSE(decode_request(frame, &out, &error));
  EXPECT_NE(error.find("payload size"), std::string::npos) << error;
}

TEST(ServeWire, DoublePackingRoundTrip) {
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u}) {
    std::vector<std::uint8_t> bytes(n);
    for (std::size_t i = 0; i < n; ++i) {
      bytes[i] = static_cast<std::uint8_t>(i * 37 + 11);
    }
    const std::vector<double> packed = frame_to_doubles(bytes);
    EXPECT_EQ(frame_from_doubles(packed), bytes) << "n=" << n;
  }
}

TEST(ServeWire, RpcOverMsgWorld) {
  // Full request/response over the SPMD substrate: rank 0 is the client,
  // rank 1 decodes, "solves", and answers.
  msg::World world(2);
  world.run([](msg::Comm& comm) {
    constexpr int kTag = 7;
    if (comm.rank() == 0) {
      send_frame(comm, 1, kTag, encode_request(sample_request()));
      const std::vector<std::uint8_t> reply = recv_frame(comm, 1, kTag);
      SolveResult res;
      std::string error;
      ASSERT_TRUE(decode_result(reply, &res, &error)) << error;
      EXPECT_EQ(res.id, sample_request().id);
      EXPECT_EQ(res.status, SolveStatus::kOk);
    } else {
      const std::vector<std::uint8_t> frame = recv_frame(comm, 0, kTag);
      SolveRequest req;
      std::string error;
      ASSERT_TRUE(decode_request(frame, &req, &error)) << error;
      SolveResult res;
      res.id = req.id;
      res.status = SolveStatus::kOk;
      send_frame(comm, 0, kTag, encode_result(res));
    }
  });
}

TEST(ServeWire, RecvFrameRejectsLyingLengthHeader) {
  // A peer-controlled length header claiming more than the reassembly
  // buffer cap must be rejected BEFORE recv_frame sizes its buffer — a
  // declared length of a billion doubles would otherwise become an 8 GB
  // allocation the real payload can never satisfy.
  msg::World world(2);
  EXPECT_THROW(
      world.run([](msg::Comm& comm) {
        constexpr int kTag = 7;
        if (comm.rank() == 0) {
          const double lying_header = 1e9;
          comm.send(1, kTag, std::span<const double>(&lying_header, 1));
        } else {
          (void)recv_frame(comm, 0, kTag);
        }
      }),
      ContractError);
}

TEST(ServeWire, RecvFrameRejectsEmptyLengthHeader) {
  // The header must announce at least the byte-count word; zero (or a
  // negative double) is corruption, not a frame.
  msg::World world(2);
  EXPECT_THROW(
      world.run([](msg::Comm& comm) {
        constexpr int kTag = 7;
        if (comm.rank() == 0) {
          const double empty_header = 0.0;
          comm.send(1, kTag, std::span<const double>(&empty_header, 1));
        } else {
          (void)recv_frame(comm, 0, kTag);
        }
      }),
      ContractError);
}

TEST(ServeWire, RecvFrameAcceptsLargestLegalFrame) {
  // The bound must not reject genuine traffic: a result frame padded out to
  // the maximum error-string length still round-trips.
  SolveResult res = sample_result();
  res.error.assign(512, 'x');
  const std::vector<std::uint8_t> frame = encode_result(res);
  msg::World world(2);
  world.run([&frame](msg::Comm& comm) {
    constexpr int kTag = 7;
    if (comm.rank() == 0) {
      send_frame(comm, 1, kTag, frame);
    } else {
      EXPECT_EQ(recv_frame(comm, 0, kTag), frame);
    }
  });
}

}  // namespace
