// With-loop computation graphs: the optimiser's rewrites must preserve
// semantics (optimised == naive evaluation for every graph), collapse
// affine chains exactly, and eliminate the materialisations it claims.

#include <gtest/gtest.h>

#include <random>

#include "sacpp/sac/sac.hpp"
#include "sacpp/sac/wlgraph.hpp"

namespace sacpp::sac::wl {
namespace {

Array<double> sequential(const Shape& shp) {
  return with_genarray<double>(shp, [&shp](const IndexVec& iv) {
    return static_cast<double>(shp.linearize(iv)) + 1.0;
  });
}

void expect_equal(const Array<double>& a, const Array<double>& b,
                  double tol = 0.0) {
  ASSERT_EQ(a.shape(), b.shape());
  for (extent_t i = 0; i < a.elem_count(); ++i) {
    if (tol == 0.0) {
      ASSERT_DOUBLE_EQ(a.at_linear(i), b.at_linear(i)) << "at " << i;
    } else {
      ASSERT_NEAR(a.at_linear(i), b.at_linear(i), tol) << "at " << i;
    }
  }
}

void check_graph(const NodeRef& g, const Bindings& b, double tol = 0.0) {
  RewriteStats stats;
  const NodeRef opt = optimise(g, &stats);
  expect_equal(evaluate(opt, b), evaluate_naive(g, b), tol);
  EXPECT_LE(stats.materialisations_after, stats.materialisations_before);
}

constexpr StencilCoeffs kC{{-0.5, 0.125, 0.0625, 0.03125}};

TEST(WlGraph, InputEvaluatesToBinding) {
  auto x = input("x", Shape{4});
  Bindings b{{"x", sequential(Shape{4})}};
  expect_equal(evaluate(x, b), b.at("x"));
  expect_equal(evaluate_naive(x, b), b.at("x"));
}

TEST(WlGraph, UnboundInputThrows) {
  auto x = input("x", Shape{4});
  EXPECT_THROW(evaluate(x, {}), ContractError);
}

TEST(WlGraph, BoundShapeMismatchThrows) {
  auto x = input("x", Shape{4});
  Bindings b{{"x", sequential(Shape{5})}};
  EXPECT_THROW(evaluate(x, b), ContractError);
}

TEST(WlGraph, EwiseTreeMatchesEagerOps) {
  const Shape shp{3, 4};
  auto x = input("x", shp);
  auto y = input("y", shp);
  auto g = sub(mul(add(x, y), x), scale(y, 2.0));
  Bindings b{{"x", sequential(shp)}, {"y", sequential(shp)}};
  auto ax = b.at("x");
  auto ay = b.at("y");
  auto expect = (ax + ay) * ax - ay * 2.0;
  expect_equal(evaluate(g, b), expect);
  check_graph(g, b);
}

TEST(WlGraph, EwiseShapeMismatchThrowsAtBuild) {
  auto x = input("x", Shape{3});
  auto y = input("y", Shape{4});
  EXPECT_THROW(add(x, y), ContractError);
}

TEST(WlGraph, StructuralBuildersMatchArrayLibrary) {
  const Shape shp{6, 6};
  auto x = input("x", shp);
  Bindings b{{"x", sequential(shp)}};
  const auto& ax = b.at("x");
  expect_equal(evaluate(condense(2, x), b), sac::condense(2, ax));
  expect_equal(evaluate(scatter(3, x), b), sac::scatter(3, ax));
  expect_equal(evaluate(take({4, 3}, x), b), sac::take({4, 3}, ax));
  expect_equal(evaluate(embed({8, 8}, {1, 1}, x), b),
               sac::embed({8, 8}, {1, 1}, ax));
  expect_equal(evaluate(shift({1, -1}, x), b), sac::shift({1, -1}, ax));
}

TEST(WlGraph, StencilMatchesRelaxKernel) {
  const Shape shp{6, 6, 6};
  auto x = input("x", shp);
  Bindings b{{"x", sequential(shp)}};
  expect_equal(evaluate(stencil(x, kC), b), relax_kernel(b.at("x"), kC));
}

TEST(WlGraph, GatherChainCollapsesToOneNode) {
  const Shape shp{8, 8};
  auto x = input("x", shp);
  // take(shape-2, scatter(2, x)): the paper's Coarse2Fine mapping
  auto g = take({14, 14}, scatter(2, x));
  RewriteStats stats;
  const NodeRef opt = optimise(g, &stats);
  EXPECT_EQ(stats.gathers_collapsed, 1u);
  EXPECT_EQ(opt->kind, OpKind::kGather);
  EXPECT_EQ(opt->args[0]->kind, OpKind::kInput);
  Bindings b{{"x", sequential(shp)}};
  expect_equal(evaluate(opt, b), evaluate_naive(g, b));
}

TEST(WlGraph, CondenseOfScatterBecomesIdentity) {
  const Shape shp{6};
  auto x = input("x", shp);
  auto g = condense(2, scatter(2, x));
  RewriteStats stats;
  const NodeRef opt = optimise(g, &stats);
  // collapses to a gather, which is then recognised as the identity
  EXPECT_EQ(stats.gathers_collapsed, 1u);
  EXPECT_EQ(stats.identities_removed, 1u);
  EXPECT_EQ(opt->kind, OpKind::kInput);
  Bindings b{{"x", sequential(shp)}};
  expect_equal(evaluate(opt, b), b.at("x"));
}

TEST(WlGraph, DeepGatherChainCollapsesFully) {
  const Shape shp{16};
  auto x = input("x", shp);
  auto g = take({3}, condense(2, shift({1}, condense(2, x))));
  RewriteStats stats;
  const NodeRef opt = optimise(g, &stats);
  EXPECT_EQ(opt->node_count(), 2u);  // one gather over the input
  Bindings b{{"x", sequential(shp)}};
  expect_equal(evaluate(opt, b), evaluate_naive(g, b));
}

TEST(WlGraph, ScatterOverGatherDoesNotCollapse) {
  // outer scatter has a division: collapsing would lose the gap condition
  const Shape shp{8};
  auto x = input("x", shp);
  auto g = scatter(2, condense(2, x));
  RewriteStats stats;
  const NodeRef opt = optimise(g, &stats);
  EXPECT_EQ(stats.gathers_collapsed, 0u);
  Bindings b{{"x", sequential(shp)}};
  expect_equal(evaluate(opt, b), evaluate_naive(g, b));
}

TEST(WlGraph, EmbedOverGatherRequiresUniformOffset) {
  // embed at (1, 2): non-uniform offset, the chain must NOT collapse (the
  // scalar pre-term cannot carry per-axis offsets through the division)
  const Shape shp{6, 6};
  auto x = input("x", shp);
  auto g = embed({8, 9}, {1, 2}, scatter(2, x));
  RewriteStats stats;
  const NodeRef opt = optimise(g, &stats);
  EXPECT_EQ(stats.gathers_collapsed, 0u);
  Bindings b{{"x", sequential(shp)}};
  expect_equal(evaluate(opt, b), evaluate_naive(g, b));
}

TEST(WlGraph, Fine2CoarseGraphMatchesMgComposition) {
  // the paper's Fine2Coarse: embed(shape+1, 0, condense(2, P(x)))
  const Shape shp{10, 10, 10};
  auto x = input("x", shp);
  const StencilCoeffs P{{0.5, 0.25, 0.125, 0.0625}};
  auto g = embed({6, 6, 6}, {0, 0, 0}, condense(2, stencil(x, P)));
  Bindings b{{"x", sequential(shp)}};
  check_graph(g, b, 1e-12);
  RewriteStats stats;
  (void)optimise(g, &stats);
  EXPECT_EQ(stats.gathers_collapsed, 1u);  // embed∘condense -> one gather
}

TEST(WlGraph, FusionSkipsIntermediateAllocations) {
  const Shape shp{32, 32};
  auto x = input("x", shp);
  auto g = condense(2, add(mul(x, x), x));
  const NodeRef opt = optimise(g);
  Bindings b{{"x", sequential(shp)}};
  reset_stats();
  auto fused = evaluate(opt, b);
  const auto fused_allocs = stats().allocations;
  reset_stats();
  auto naive = evaluate_naive(g, b);
  const auto naive_allocs = stats().allocations;
  expect_equal(fused, naive);
  EXPECT_EQ(fused_allocs, 1u);  // only the result
  EXPECT_GT(naive_allocs, fused_allocs);
}

TEST(WlGraph, SharedSubgraphMaterialisesOnce) {
  const Shape shp{16, 16};
  auto x = input("x", shp);
  auto shared = add(x, x);          // two parents below
  auto g = mul(shared, shift({1, 0}, shared));
  const NodeRef opt = optimise(g);
  Bindings b{{"x", sequential(shp)}};
  reset_stats();
  auto fused = evaluate(opt, b);
  // shared intermediate + result = 2 materialisations
  EXPECT_EQ(stats().allocations, 2u);
  expect_equal(fused, evaluate_naive(g, b));
}

TEST(WlGraph, StatsAccountBeforeAndAfter) {
  const Shape shp{8, 8};
  auto x = input("x", shp);
  auto g = take({3, 3}, condense(2, add(x, x)));
  RewriteStats stats;
  (void)optimise(g, &stats);
  EXPECT_EQ(stats.materialisations_before, 3u);  // take, condense, add
  EXPECT_EQ(stats.materialisations_after, 1u);   // one fused traversal
  EXPECT_EQ(stats.gathers_collapsed, 1u);
  EXPECT_EQ(stats.ewise_fused, 1u);  // the add fuses into the root gather
}

TEST(WlGraph, ToStringShowsStructure) {
  auto x = input("x", Shape{4});
  auto g = add(condense(2, scatter(2, x)), x);
  const std::string s = g->to_string();
  EXPECT_NE(s.find("add"), std::string::npos);
  EXPECT_NE(s.find("gather"), std::string::npos);
  EXPECT_NE(s.find("x"), std::string::npos);
}

// Randomised closure property: arbitrary gather chains collapse without
// changing any value.
class GatherChainFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GatherChainFuzz, RandomChainsPreserveSemantics) {
  std::mt19937_64 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> op_dist(0, 3);
  std::uniform_int_distribution<extent_t> stride_dist(2, 3);
  for (int trial = 0; trial < 40; ++trial) {
    const Shape shp{12};
    NodeRef g = input("x", shp);
    for (int depth = 0; depth < 4; ++depth) {
      switch (op_dist(rng)) {
        case 0:
          if (g->shape.extent(0) >= 2) g = condense(2, g);
          break;
        case 1:
          if (g->shape.extent(0) <= 8) g = scatter(stride_dist(rng), g);
          break;
        case 2:
          g = take({std::max<extent_t>(1, g->shape.extent(0) - 1)}, g);
          break;
        case 3:
          g = shift({1}, g);
          break;
      }
    }
    Bindings b{{"x", sequential(shp)}};
    check_graph(g, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatherChainFuzz, ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace sacpp::sac::wl
