// Cross-implementation agreement: the high-level SAC implementation, the
// Fortran-77 reference port and the C/OpenMP port must compute the same
// residual norms on the same input — the primary verification of DESIGN.md
// Sec. 3 (floating-point association differs between the kernels, so
// agreement is to tight relative tolerance, not bitwise).

#include <gtest/gtest.h>

#include <cmath>

#include "sacpp/mg/driver.hpp"
#include "sacpp/mg/mg_omp.hpp"
#include "sacpp/mg/mg_ref.hpp"
#include "sacpp/mg/mg_sac.hpp"
#include "sacpp/mg/problem.hpp"

namespace sacpp::mg {
namespace {

constexpr double kRelTol = 1e-12;

void expect_rel_near(double a, double b, double tol, const char* what) {
  const double denom = std::max({std::abs(a), std::abs(b), 1e-300});
  EXPECT_LE(std::abs(a - b) / denom, tol) << what << ": " << a << " vs " << b;
}

class CrossParam : public ::testing::TestWithParam<std::pair<extent_t, int>> {};

TEST_P(CrossParam, AllVariantsAgreeOnEveryIterationNorm) {
  const auto [nx, nit] = GetParam();
  const MgSpec spec = MgSpec::custom(nx, nit);
  RunOptions opts;
  opts.warmup = false;

  const MgResult sac = run_benchmark(Variant::kSac, spec, opts);
  const MgResult ref = run_benchmark(Variant::kFortran, spec, opts);
  const MgResult omp = run_benchmark(Variant::kOpenMp, spec, opts);

  ASSERT_EQ(sac.norms.size(), static_cast<std::size_t>(nit));
  ASSERT_EQ(ref.norms.size(), static_cast<std::size_t>(nit));
  ASSERT_EQ(omp.norms.size(), static_cast<std::size_t>(nit));
  for (int it = 0; it < nit; ++it) {
    const auto i = static_cast<std::size_t>(it);
    expect_rel_near(sac.norms[i], ref.norms[i], kRelTol, "SAC vs F77");
    expect_rel_near(omp.norms[i], ref.norms[i], kRelTol, "OMP vs F77");
  }
  expect_rel_near(sac.final_norm, ref.final_norm, kRelTol, "final SAC/F77");
  expect_rel_near(omp.final_norm, ref.final_norm, kRelTol, "final OMP/F77");
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossParam,
                         ::testing::Values(std::pair<extent_t, int>{8, 3},
                                           std::pair<extent_t, int>{16, 3},
                                           std::pair<extent_t, int>{32, 4}));

// The SAC implementation must produce identical values with folding on and
// off (D1 is a pure optimisation).
TEST(CrossFolding, FoldedAndUnfoldedSacAgree) {
  const MgSpec spec = MgSpec::custom(16, 3);
  RunOptions opts;
  opts.warmup = false;

  sac::SacConfig cfg = sac::config();
  cfg.folding = true;
  MgResult folded;
  {
    sac::ScopedConfig guard(cfg);
    folded = run_benchmark(Variant::kSac, spec, opts);
  }
  cfg.folding = false;
  MgResult unfolded;
  {
    sac::ScopedConfig guard(cfg);
    unfolded = run_benchmark(Variant::kSac, spec, opts);
  }
  ASSERT_EQ(folded.norms.size(), unfolded.norms.size());
  for (std::size_t i = 0; i < folded.norms.size(); ++i) {
    expect_rel_near(folded.norms[i], unfolded.norms[i], 1e-13, "fold on/off");
  }
}

// Class S end-to-end: the regenerated verification value must be stable
// across all implementations and match the recorded constant (computed by
// this reproduction, cross-checked between three independent kernels; see
// EXPERIMENTS.md).
TEST(CrossClassS, FinalNormMatchesRecordedValue) {
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  RunOptions opts;
  opts.warmup = false;
  const MgResult ref = run_benchmark(Variant::kFortran, spec, opts);
  const MgResult sac = run_benchmark(Variant::kSac, spec, opts);
  expect_rel_near(sac.final_norm, ref.final_norm, kRelTol, "class S");
  // Regenerated reference value for class S (see EXPERIMENTS.md).
  RecordProperty("class_s_rnm2", std::to_string(ref.final_norm));
  EXPECT_GT(ref.final_norm, 0.0);
  EXPECT_LT(ref.final_norm, 1e-2);
}

// Class W end-to-end: 40 iterations drive the residual to the round-off
// floor, where reordered arithmetic may differ by a small factor but every
// implementation must land at the same magnitude and verify.
TEST(CrossClassW, AllVariantsReachTheFloorAndVerify) {
  const MgSpec spec = MgSpec::for_class(MgClass::W);
  RunOptions opts;
  opts.warmup = false;
  opts.record_norms = false;
  double ref = 0.0;
  ASSERT_TRUE(reference_norm(spec, &ref));
  for (auto v : {Variant::kFortran, Variant::kOpenMp, Variant::kSac,
                 Variant::kSacDirect}) {
    const MgResult res = run_benchmark(v, spec, opts);
    EXPECT_GT(res.final_norm, ref * 0.2) << variant_name(v);
    EXPECT_LT(res.final_norm, ref * 5.0) << variant_name(v);
    bool known = false;
    EXPECT_TRUE(verify(res, spec, &known)) << variant_name(v);
  }
}

}  // namespace
}  // namespace sacpp::mg
