// Per-binary buffer leak guard, compiled into every test executable.
//
// The array runtime keeps an always-on gauge of live buffers
// (sac::check_detail::live_buffer_count()); the gtest environment below
// captures it before any test runs and asserts at teardown that every
// allocation has been matched by a release.  One unbalanced Buffer anywhere
// in a test binary fails that binary, which turns the uniqueness/refcount
// story (DESIGN.md, docs/static_analysis.md) into an enforced invariant
// rather than a convention.

#include <gtest/gtest.h>

#include "sacpp/sac/check_events.hpp"

namespace {

class BufferLeakGuard : public ::testing::Environment {
 public:
  void SetUp() override {
    baseline_ = sacpp::sac::check_detail::live_buffer_count();
  }
  void TearDown() override {
    const std::int64_t live = sacpp::sac::check_detail::live_buffer_count();
    EXPECT_EQ(live, baseline_)
        << "buffer allocation/release imbalance: " << (live - baseline_)
        << " buffer(s) still live after all tests (leak if positive, "
           "over-release if negative)";
  }

 private:
  std::int64_t baseline_ = 0;
};

// gtest owns and frees the environment.
const auto* const kLeakGuard =
    ::testing::AddGlobalTestEnvironment(new BufferLeakGuard);

}  // namespace
