// MG input generation (zran3 charges) and grid utilities: periodic border,
// interior norms.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

#include "sacpp/mg/problem.hpp"
#include "sacpp/nasrand/nasrand.hpp"

namespace sacpp::mg {
namespace {

TEST(RandomField, MatchesContiguousSequence) {
  // The row/plane jump structure must equal one contiguous deviate stream.
  const extent_t nx = 8;
  const auto field = random_field(nx);
  nasrand::NasRandom rng;
  for (std::size_t i = 0; i < field.size(); ++i) {
    ASSERT_DOUBLE_EQ(field[i], rng.next()) << "at " << i;
  }
}

TEST(RandomField, Deterministic) {
  EXPECT_EQ(random_field(4), random_field(4));
}

TEST(Charges, ExactlyTenEach) {
  const extent_t nx = 8;
  const Charges ch = find_charges(random_field(nx), nx);
  EXPECT_EQ(ch.plus.size(), 10u);
  EXPECT_EQ(ch.minus.size(), 10u);
}

TEST(Charges, PositionsAreDistinctAndInRange) {
  const extent_t nx = 8;
  const Charges ch = find_charges(random_field(nx), nx);
  std::set<std::array<extent_t, 3>> seen;
  auto check = [&](const IndexVec& p) {
    ASSERT_EQ(p.size(), 3u);
    for (std::size_t d = 0; d < 3; ++d) {
      ASSERT_GE(p[d], 0);
      ASSERT_LT(p[d], nx);
    }
    EXPECT_TRUE(seen.insert({p[0], p[1], p[2]}).second) << "duplicate charge";
  };
  for (const auto& p : ch.plus) check(p);
  for (const auto& m : ch.minus) check(m);
}

TEST(Charges, PlusAreLargestMinusAreSmallest) {
  const extent_t nx = 4;
  const auto field = random_field(nx);
  const Charges ch = find_charges(field, nx);
  auto value_at = [&](const IndexVec& p) {
    return field[static_cast<std::size_t>((p[0] * nx + p[1]) * nx + p[2])];
  };
  double min_plus = 1.0, max_minus = 0.0;
  for (const auto& p : ch.plus) min_plus = std::min(min_plus, value_at(p));
  for (const auto& m : ch.minus) max_minus = std::max(max_minus, value_at(m));
  // every non-charge value lies between the groups
  std::set<std::size_t> charged;
  for (const auto& p : ch.plus) {
    charged.insert(static_cast<std::size_t>((p[0] * nx + p[1]) * nx + p[2]));
  }
  for (const auto& m : ch.minus) {
    charged.insert(static_cast<std::size_t>((m[0] * nx + m[1]) * nx + m[2]));
  }
  for (std::size_t i = 0; i < field.size(); ++i) {
    if (charged.count(i)) continue;
    ASSERT_LT(field[i], min_plus);
    ASSERT_GT(field[i], max_minus);
  }
}

TEST(FillRhs, SumOfChargesIsZeroAndValuesAreSigns) {
  const extent_t nx = 8;
  const extent_t n = nx + 2;
  std::vector<double> v(static_cast<std::size_t>(n * n * n));
  fill_rhs(v, nx);
  int plus = 0, minus = 0;
  // interior census
  for (extent_t i = 1; i < n - 1; ++i) {
    for (extent_t j = 1; j < n - 1; ++j) {
      for (extent_t k = 1; k < n - 1; ++k) {
        const double x = v[static_cast<std::size_t>((i * n + j) * n + k)];
        ASSERT_TRUE(x == 0.0 || x == 1.0 || x == -1.0);
        plus += x == 1.0;
        minus += x == -1.0;
      }
    }
  }
  EXPECT_EQ(plus, 10);
  EXPECT_EQ(minus, 10);
}

TEST(FillRhs, GhostLayersArePeriodic) {
  const extent_t nx = 4;
  const extent_t n = nx + 2;
  std::vector<double> v(static_cast<std::size_t>(n * n * n));
  fill_rhs(v, nx);
  auto at = [&](extent_t i, extent_t j, extent_t k) {
    return v[static_cast<std::size_t>((i * n + j) * n + k)];
  };
  for (extent_t j = 0; j < n; ++j) {
    for (extent_t k = 0; k < n; ++k) {
      ASSERT_DOUBLE_EQ(at(0, j, k), at(n - 2, j, k));
      ASSERT_DOUBLE_EQ(at(n - 1, j, k), at(1, j, k));
    }
  }
}

TEST(PeriodicBorder, CopiesOppositeFacesInOrder) {
  const extent_t n = 4;
  std::vector<double> a(static_cast<std::size_t>(n * n * n));
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i);
  periodic_border_3d(a, n);
  auto at = [&](extent_t i, extent_t j, extent_t k) {
    return a[static_cast<std::size_t>((i * n + j) * n + k)];
  };
  // all three axes periodic, including edges and corners
  for (extent_t i = 0; i < n; ++i) {
    for (extent_t j = 0; j < n; ++j) {
      ASSERT_DOUBLE_EQ(at(i, j, 0), at(i, j, n - 2));
      ASSERT_DOUBLE_EQ(at(i, j, n - 1), at(i, j, 1));
      ASSERT_DOUBLE_EQ(at(i, 0, j), at(i, n - 2, j));
      ASSERT_DOUBLE_EQ(at(i, n - 1, j), at(i, 1, j));
      ASSERT_DOUBLE_EQ(at(0, i, j), at(n - 2, i, j));
      ASSERT_DOUBLE_EQ(at(n - 1, i, j), at(1, i, j));
    }
  }
}

TEST(PeriodicBorder, Idempotent) {
  const extent_t n = 6;
  std::vector<double> a(static_cast<std::size_t>(n * n * n));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = std::sin(static_cast<double>(i));
  }
  periodic_border_3d(a, n);
  std::vector<double> once = a;
  periodic_border_3d(a, n);
  EXPECT_EQ(a, once);
}

TEST(InteriorNorm, KnownValues) {
  const extent_t n = 4;  // nx = 2, 8 interior points
  std::vector<double> a(static_cast<std::size_t>(n * n * n), 0.0);
  // set all 8 interior points to 2.0
  for (extent_t i = 1; i < 3; ++i) {
    for (extent_t j = 1; j < 3; ++j) {
      for (extent_t k = 1; k < 3; ++k) {
        a[static_cast<std::size_t>((i * n + j) * n + k)] = 2.0;
      }
    }
  }
  // ghost values must not contribute
  a[0] = 100.0;
  EXPECT_DOUBLE_EQ(interior_l2_norm(a, n), 2.0);
  EXPECT_DOUBLE_EQ(interior_max_abs(a, n), 2.0);
}

TEST(InteriorNorm, ZeroField) {
  const extent_t n = 4;
  std::vector<double> a(static_cast<std::size_t>(n * n * n), 0.0);
  EXPECT_DOUBLE_EQ(interior_l2_norm(a, n), 0.0);
  EXPECT_DOUBLE_EQ(interior_max_abs(a, n), 0.0);
}

TEST(FillRhs, WrongBufferSizeThrows) {
  std::vector<double> v(10);
  EXPECT_THROW(fill_rhs(v, 8), ContractError);
}

}  // namespace
}  // namespace sacpp::mg
