// The telemetry exporters: Chrome trace-event JSON shape (golden substring
// round-trip), Prometheus text dump (collectors, histograms, per-level
// gauges), the top-spans summary aggregation, and the log histogram's
// bucketing arithmetic.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sacpp/obs/export.hpp"
#include "sacpp/obs/histogram.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/sac/config.hpp"

namespace sacpp::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// Rough structural validation: balanced braces/brackets outside strings.
bool json_balanced(const std::string& s) {
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

class ExportFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

// Deterministic spans (explicit timestamps bypass the clock) must round-trip
// into the exact Chrome trace-event lines Perfetto consumes.  This test
// records from the main thread first in the binary, so its track is tid 0.
TEST_F(ExportFixture, ChromeTraceGoldenRoundTrip) {
  set_thread_name("main");
  record_span(SpanKind::kKernel, "resid", 1000, 2500, 7);
  record_span(SpanKind::kWithLoop, "with_loop", 4000, 1500, 3, 42);

  std::ostringstream out;
  write_chrome_trace(out);
  const std::string json = out.str();

  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_TRUE(contains(json,
                       "{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                       "\"name\":\"process_name\",\"args\":{\"name\":\"sacpp\"}}"));
  EXPECT_TRUE(contains(json,
                       "\"name\":\"thread_name\",\"args\":{\"name\":\"main\"}}"));
  // ts/dur are microseconds with ns resolution (three decimals).
  EXPECT_TRUE(contains(json,
                       "\"ts\":1.000,\"dur\":2.500,\"cat\":\"kernel\","
                       "\"name\":\"resid\",\"args\":{\"arg\":7}}"));
  EXPECT_TRUE(contains(json,
                       "\"ts\":4.000,\"dur\":1.500,\"cat\":\"with_loop\","
                       "\"name\":\"with_loop\",\"args\":{\"arg\":3,"
                       "\"region\":42}}"));
}

TEST_F(ExportFixture, ChromeTraceEscapesNames) {
  record_span(SpanKind::kPhase, "quote\"back\\slash", 0, 1);
  std::ostringstream out;
  write_chrome_trace(out);
  EXPECT_TRUE(contains(out.str(), "quote\\\"back\\\\slash"));
  EXPECT_TRUE(json_balanced(out.str()));
}

TEST_F(ExportFixture, PrometheusDumpCarriesSpansHistogramsAndLevels) {
  (void)sac::config();  // registers the RuntimeStats collector
  record_span(SpanKind::kKernel, "resid", 0, 1000);
  record_span(SpanKind::kKernel, "psinv", 0, 3000);
  record_level_ns(2, 2000);
  RegionSample s;
  s.level = 2;
  s.participants = 2;
  s.region_ns = 1000;
  s.busy_total_ns = 1500;
  s.busy_max_ns = 1000;
  record_region_sample(s);

  std::ostringstream out;
  write_prometheus(out);
  const std::string text = out.str();

  // Collector counters from the sac layer.
  EXPECT_TRUE(contains(text, "# TYPE sacpp_allocations_total counter"));
  EXPECT_TRUE(contains(text, "# TYPE sacpp_pool_hits_total counter"));
  // Span bookkeeping.
  EXPECT_TRUE(contains(text, "sacpp_obs_spans_recorded_total"));
  EXPECT_TRUE(contains(text, "sacpp_obs_spans_dropped_total"));
  // The kernel duration histogram, with cumulative buckets and +Inf.
  EXPECT_TRUE(contains(text, "# TYPE sacpp_kernel_duration_ns histogram"));
  EXPECT_TRUE(contains(text, "sacpp_kernel_duration_ns_bucket{le=\"+Inf\"} 2"));
  EXPECT_TRUE(contains(text, "sacpp_kernel_duration_ns_sum 4000"));
  EXPECT_TRUE(contains(text, "sacpp_kernel_duration_ns_count 2"));
  // Per-level gauges.
  EXPECT_TRUE(contains(text, "sacpp_level_seconds{level=\"2\"}"));
  EXPECT_TRUE(contains(text, "sacpp_level_visits{level=\"2\"} 1"));
  EXPECT_TRUE(contains(text, "sacpp_level_parallel_regions{level=\"2\"} 1"));
  EXPECT_TRUE(contains(text, "sacpp_level_imbalance{level=\"2\"} 1.333"));
  EXPECT_TRUE(contains(text, "sacpp_level_busy_seconds{level=\"2\"}"));
  EXPECT_TRUE(contains(text, "sacpp_level_idle_seconds{level=\"2\"}"));
}

TEST_F(ExportFixture, TopSpansAggregatesByNameAndSortsByTotalTime) {
  record_span(SpanKind::kKernel, "resid", 0, 100);
  record_span(SpanKind::kKernel, "resid", 0, 100);
  record_span(SpanKind::kKernel, "psinv", 0, 500);
  record_span(SpanKind::kWithLoop, "with_loop", 0, 50);

  const auto top = top_spans(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_STREQ(top[0].name, "psinv");
  EXPECT_EQ(top[0].total_ns, 500);
  EXPECT_EQ(top[0].count, 1u);
  EXPECT_STREQ(top[1].name, "resid");
  EXPECT_EQ(top[1].total_ns, 200);
  EXPECT_EQ(top[1].count, 2u);
}

TEST_F(ExportFixture, FileWritersHandleEmptyAndBadPaths) {
  EXPECT_TRUE(write_chrome_trace_file(""));
  EXPECT_TRUE(write_prometheus_file(""));
  EXPECT_FALSE(write_chrome_trace_file("/nonexistent-dir/trace.json"));
  EXPECT_FALSE(write_prometheus_file("/nonexistent-dir/metrics.txt"));
}

TEST(LogHistogramTest, BucketArithmetic) {
  EXPECT_EQ(LogHistogram::bucket_of(0), 0);
  EXPECT_EQ(LogHistogram::bucket_of(1), 1);
  EXPECT_EQ(LogHistogram::bucket_of(2), 2);
  EXPECT_EQ(LogHistogram::bucket_of(3), 2);
  EXPECT_EQ(LogHistogram::bucket_of(4), 3);
  EXPECT_EQ(LogHistogram::bucket_of(1023), 10);
  EXPECT_EQ(LogHistogram::bucket_of(1024), 11);
  // bucket i covers values up to 2^i - 1
  EXPECT_EQ(LogHistogram::bucket_upper(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_upper(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_upper(10), 1023u);
}

TEST(LogHistogramTest, ObserveAccumulatesCountSumBuckets) {
  LogHistogram h;
  h.observe(0);
  h.observe(5);
  h.observe(5);
  h.observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(LogHistogram::bucket_of(5)), 2u);
  EXPECT_EQ(h.bucket(LogHistogram::bucket_of(1000)), 1u);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

}  // namespace
}  // namespace sacpp::obs
