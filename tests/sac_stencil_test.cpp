// Coefficient-class stencils: grouped, naive and shared-plane-sum (kPlanes)
// evaluation against a brute-force reference, across ranks, plus linearity
// and symmetry properties.

#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "sacpp/sac/periodic_stencil.hpp"
#include "sacpp/sac/sac.hpp"

namespace sacpp::sac {
namespace {

Array<double> random_array(const Shape& shp, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  return with_genarray<double>(shp,
                               [&](const IndexVec&) { return dist(rng); });
}

// Brute-force reference: sum over all offsets in {-1,0,1}^rank with the
// class coefficient; zero on the boundary ring.
Array<double> brute_force_relax(const Array<double>& a,
                                const StencilCoeffs& c) {
  const Shape& shp = a.shape();
  return with_genarray<double>(
      shp,
      [&](const IndexVec& iv) -> double {
        for (std::size_t d = 0; d < iv.size(); ++d) {
          if (iv[d] < 1 || iv[d] >= shp.extent(d) - 1) return 0.0;
        }
        double acc = 0.0;
        for (const auto& e : StencilTable::for_rank(shp.rank()).entries()) {
          acc += c[static_cast<std::size_t>(e.cls)] * a[iv + e.offset];
        }
        return acc;
      });
}

constexpr StencilCoeffs kTestCoeffs{{-0.5, 0.125, 0.0625, 0.03125}};

TEST(StencilTable, Rank3Has27EntriesWithCorrectClassCounts) {
  const auto& t = StencilTable::for_rank(3);
  ASSERT_EQ(t.entries().size(), 27u);
  int counts[4] = {0, 0, 0, 0};
  for (const auto& e : t.entries()) ++counts[e.cls];
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 6);
  EXPECT_EQ(counts[2], 12);
  EXPECT_EQ(counts[3], 8);
}

TEST(StencilTable, Rank1And2Sizes) {
  EXPECT_EQ(StencilTable::for_rank(1).entries().size(), 3u);
  EXPECT_EQ(StencilTable::for_rank(2).entries().size(), 9u);
}

class RelaxRank : public ::testing::TestWithParam<int> {};

TEST_P(RelaxRank, GroupedMatchesBruteForce) {
  const int rank = GetParam();
  const Shape shp = cube_shape(static_cast<std::size_t>(rank), 6);
  auto a = random_array(shp, 42);
  auto expect = brute_force_relax(a, kTestCoeffs);
  auto got = relax_kernel(a, kTestCoeffs, StencilMode::kGrouped);
  ASSERT_EQ(got.shape(), expect.shape());
  for (extent_t i = 0; i < got.elem_count(); ++i) {
    ASSERT_NEAR(got.at_linear(i), expect.at_linear(i), 1e-14) << i;
  }
}

TEST_P(RelaxRank, NaiveMatchesGrouped) {
  const int rank = GetParam();
  const Shape shp = cube_shape(static_cast<std::size_t>(rank), 5);
  auto a = random_array(shp, 7);
  auto grouped = relax_kernel(a, kTestCoeffs, StencilMode::kGrouped);
  auto naive = relax_kernel(a, kTestCoeffs, StencilMode::kNaive);
  for (extent_t i = 0; i < grouped.elem_count(); ++i) {
    ASSERT_NEAR(grouped.at_linear(i), naive.at_linear(i), 1e-14) << i;
  }
}

// kPlanes reassociates the class-2/3 sums (docs/stencil.md), so it matches
// kGrouped only up to rounding — hence NEAR at 1e-12, not bitwise equality.
TEST_P(RelaxRank, PlanesMatchesGroupedOnRandomInput) {
  const int rank = GetParam();
  const Shape shp = cube_shape(static_cast<std::size_t>(rank), 8);
  auto a = random_array(shp, 23);
  SacConfig cfg = config();
  cfg.stencil_planes_cutover = 0;  // row path active even on this small grid
  ScopedConfig guard(cfg);
  auto grouped = relax_kernel(a, kTestCoeffs, StencilMode::kGrouped);
  auto planes = relax_kernel(a, kTestCoeffs, StencilMode::kPlanes);
  for (extent_t i = 0; i < grouped.elem_count(); ++i) {
    ASSERT_NEAR(grouped.at_linear(i), planes.at_linear(i), 1e-12) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, RelaxRank, ::testing::Values(1, 2, 3));

TEST(Planes, BelowCutoverFallsBackToGroupedBitwise) {
  // Grids under the cutover evaluate kPlanes per point through the grouped
  // association tree, so the fallback is bit-identical, not just close.
  auto a = random_array(Shape{6, 6, 6}, 29);
  auto grouped = relax_kernel(a, kTestCoeffs, StencilMode::kGrouped);
  auto planes = relax_kernel(a, kTestCoeffs, StencilMode::kPlanes);
  for (extent_t i = 0; i < grouped.elem_count(); ++i) {
    ASSERT_DOUBLE_EQ(grouped.at_linear(i), planes.at_linear(i)) << i;
  }
}

TEST(Planes, RowPathCountsReusedRows) {
  const Shape shp{20, 20, 20};
  auto a = random_array(shp, 31);
  const std::uint64_t before = stats().stencil_rows_reused;
  auto r = relax_kernel(a, kTestCoeffs, StencilMode::kPlanes);  // cutover 18
  (void)r;
  // One row per interior (i, j) pair.
  EXPECT_EQ(stats().stencil_rows_reused - before, 18u * 18u);
}

TEST(Planes, MatchesBruteForceOnRandomInput) {
  const Shape shp{10, 9, 11};  // non-cube: catches stride mix-ups
  auto a = random_array(shp, 37);
  SacConfig cfg = config();
  cfg.stencil_planes_cutover = 0;
  ScopedConfig guard(cfg);
  auto expect = brute_force_relax(a, kTestCoeffs);
  auto got = relax_kernel(a, kTestCoeffs, StencilMode::kPlanes);
  for (extent_t i = 0; i < got.elem_count(); ++i) {
    ASSERT_NEAR(got.at_linear(i), expect.at_linear(i), 1e-12) << i;
  }
}

TEST(Planes, FusedEwiseLandsOnRowPathAndMatchesGrouped) {
  const Shape shp{12, 12, 12};
  auto a = random_array(shp, 41);
  auto v = random_array(shp, 43);
  SacConfig cfg = config();
  cfg.stencil_planes_cutover = 0;
  ScopedConfig guard(cfg);
  auto grouped = force(
      ewise(v, StencilExpr(a, kTestCoeffs, StencilMode::kGrouped),
            std::minus<>{}));
  const std::uint64_t before = stats().stencil_rows_reused;
  auto planes = force(
      ewise(v, StencilExpr(a, kTestCoeffs, StencilMode::kPlanes),
            std::minus<>{}));
  EXPECT_GT(stats().stencil_rows_reused, before);  // took the row path
  for (extent_t i = 0; i < grouped.elem_count(); ++i) {
    ASSERT_NEAR(grouped.at_linear(i), planes.at_linear(i), 1e-12) << i;
  }
}

TEST(Planes, MultithreadedSweepBitIdenticalToSerial) {
  // Rows are computed independently, so the planes sweep must not depend on
  // the chunking: MT and serial results are bitwise equal.
  const Shape shp{24, 24, 24};
  auto a = random_array(shp, 47);
  SacConfig cfg = config();
  cfg.stencil_planes_cutover = 0;
  Array<double> serial;
  {
    ScopedConfig guard(cfg);
    serial = relax_kernel(a, kTestCoeffs, StencilMode::kPlanes);
  }
  cfg.mt_enabled = true;
  cfg.mt_threads = 4;
  cfg.mt_threshold = 1;
  ScopedConfig guard(cfg);
  auto mt = relax_kernel(a, kTestCoeffs, StencilMode::kPlanes);
  for (extent_t i = 0; i < serial.elem_count(); ++i) {
    ASSERT_DOUBLE_EQ(serial.at_linear(i), mt.at_linear(i)) << i;
  }
}

TEST(PlanesPeriodic, MatchesGroupedEverywhereIncludingBoundary) {
  const Shape shp{8, 6, 10};
  auto a = random_array(shp, 53);
  SacConfig cfg = config();
  cfg.stencil_planes_cutover = 0;
  ScopedConfig guard(cfg);
  auto grouped = relax_kernel_periodic(a, kTestCoeffs, StencilMode::kGrouped);
  auto planes = relax_kernel_periodic(a, kTestCoeffs, StencilMode::kPlanes);
  for (extent_t i = 0; i < grouped.elem_count(); ++i) {
    ASSERT_NEAR(grouped.at_linear(i), planes.at_linear(i), 1e-12) << i;
  }
}

TEST(PlanesPeriodic, WrappedRowsMatchGenericReference) {
  // Cross-check the wrapped row pointers and the k-wrap peel against the
  // rank-generic modular evaluator on every point, boundary ring included.
  const Shape shp{6, 7, 9};
  auto a = random_array(shp, 59);
  SacConfig cfg = config();
  cfg.stencil_planes_cutover = 0;
  ScopedConfig guard(cfg);
  const PeriodicStencilExpr ref(a, kTestCoeffs, StencilMode::kGrouped);
  auto planes = relax_kernel_periodic(a, kTestCoeffs, StencilMode::kPlanes);
  for_each_index(shp, [&](const IndexVec& iv) {
    ASSERT_NEAR(planes[iv], ref(iv), 1e-12);
  });
}

TEST(Planes, ScratchComesFromThePoolWhenEnabled) {
  const Shape shp{20, 20, 20};
  auto a = random_array(shp, 61);
  SacConfig cfg = config();
  cfg.pool = true;
  ScopedConfig guard(cfg);
  relax_kernel(a, kTestCoeffs, StencilMode::kPlanes);  // warm the size class
  const std::uint64_t hits_before = stats().pool_hits;
  relax_kernel(a, kTestCoeffs, StencilMode::kPlanes);
  // The second run's scratch block recycles the first run's release.
  EXPECT_GT(stats().pool_hits, hits_before);
}

TEST(Relax, BoundaryRingIsZero) {
  auto a = random_array(Shape{5, 5, 5}, 3);
  auto r = relax_kernel(a, kTestCoeffs);
  for_each_index(r.shape(), [&](const IndexVec& iv) {
    bool interior = true;
    for (std::size_t d = 0; d < 3; ++d) {
      if (iv[d] < 1 || iv[d] > 3) interior = false;
    }
    if (!interior) {
      ASSERT_DOUBLE_EQ(r[iv], 0.0);
    }
  });
}

TEST(Relax, LinearInInput) {
  // relax(alpha * a + b) == alpha * relax(a) + relax(b)
  const Shape shp{6, 6, 6};
  auto a = random_array(shp, 1);
  auto b = random_array(shp, 2);
  const double alpha = 2.5;
  auto lhs = relax_kernel(a * alpha + b, kTestCoeffs);
  auto rhs = relax_kernel(a, kTestCoeffs) * alpha + relax_kernel(b, kTestCoeffs);
  for (extent_t i = 0; i < lhs.elem_count(); ++i) {
    ASSERT_NEAR(lhs.at_linear(i), rhs.at_linear(i), 1e-12) << i;
  }
}

TEST(Relax, ConstantFieldScalesBySumOfCoefficients) {
  // On a constant field every interior point sees the same value:
  // (c0 + 6 c1 + 12 c2 + 8 c3) * value for rank 3.
  const Shape shp{5, 5, 5};
  auto a = genarray_const(shp, 2.0);
  auto r = relax_kernel(a, kTestCoeffs);
  const double factor = kTestCoeffs[0] + 6.0 * kTestCoeffs[1] +
                        12.0 * kTestCoeffs[2] + 8.0 * kTestCoeffs[3];
  for_each_index(r.shape(), [&](const IndexVec& iv) {
    bool interior = true;
    for (std::size_t d = 0; d < 3; ++d) {
      if (iv[d] < 1 || iv[d] > 3) interior = false;
    }
    if (interior) {
      ASSERT_NEAR(r[iv], factor * 2.0, 1e-14);
    }
  });
}

TEST(Relax, TranslationEquivariantInInterior) {
  // Shifting the input shifts the output (away from boundaries).
  const Shape shp{8, 8, 8};
  auto a = random_array(shp, 11);
  auto ra = relax_kernel(a, kTestCoeffs);
  auto sa = shift({1, 0, 0}, a);
  auto rsa = relax_kernel(sa, kTestCoeffs);
  // compare rsa(i, j, k) with ra(i-1, j, k) on the deep interior
  for (extent_t i = 2; i < 7; ++i) {
    for (extent_t j = 1; j < 7; ++j) {
      for (extent_t k = 1; k < 7; ++k) {
        ASSERT_NEAR(rsa(i, j, k), ra(i - 1, j, k), 1e-14);
      }
    }
  }
}

TEST(Relax, PointSourceSpreadsByClassCoefficients) {
  const Shape shp{7, 7, 7};
  auto a = with_genarray<double>(shp, [](const IndexVec& iv) {
    return (iv[0] == 3 && iv[1] == 3 && iv[2] == 3) ? 1.0 : 0.0;
  });
  auto r = relax_kernel(a, kTestCoeffs);
  EXPECT_DOUBLE_EQ(r(3, 3, 3), kTestCoeffs[0]);
  EXPECT_DOUBLE_EQ(r(2, 3, 3), kTestCoeffs[1]);
  EXPECT_DOUBLE_EQ(r(3, 4, 3), kTestCoeffs[1]);
  EXPECT_DOUBLE_EQ(r(2, 4, 3), kTestCoeffs[2]);
  EXPECT_DOUBLE_EQ(r(2, 4, 4), kTestCoeffs[3]);
  EXPECT_DOUBLE_EQ(r(5, 3, 3), 0.0);
}

TEST(Relax, SpecializationOnOffAgree) {
  const Shape shp{6, 6, 6};
  auto a = random_array(shp, 5);
  SacConfig cfg = config();
  cfg.specialize = true;
  Array<double> fast;
  {
    ScopedConfig guard(cfg);
    fast = relax_kernel(a, kTestCoeffs);
  }
  cfg.specialize = false;
  Array<double> slow;
  {
    ScopedConfig guard(cfg);
    slow = relax_kernel(a, kTestCoeffs);
  }
  for (extent_t i = 0; i < fast.elem_count(); ++i) {
    ASSERT_DOUBLE_EQ(fast.at_linear(i), slow.at_linear(i)) << i;
  }
}

TEST(Relax, ExtentTooSmallThrows) {
  auto a = genarray_const(Shape{2, 5, 5}, 1.0);
  EXPECT_THROW(relax_kernel(a, kTestCoeffs), ContractError);
}

TEST(StencilExpr, InteriorPredicateAndZeroBoundary) {
  auto a = random_array(Shape{5, 5, 5}, 9);
  StencilExpr st(a, kTestCoeffs);
  EXPECT_TRUE(st.is_interior({1, 1, 1}));
  EXPECT_FALSE(st.is_interior({0, 1, 1}));
  EXPECT_FALSE(st.is_interior({1, 4, 1}));
  EXPECT_DOUBLE_EQ(st(0, 2, 2), 0.0);
  EXPECT_DOUBLE_EQ((st(IndexVec{0, 2, 2})), 0.0);
}

TEST(StencilExpr, IndexVectorAndUnpackedAccessAgree) {
  auto a = random_array(Shape{6, 6, 6}, 13);
  StencilExpr st(a, kTestCoeffs);
  for_each_index(a.shape(), [&](const IndexVec& iv) {
    ASSERT_DOUBLE_EQ(st(iv), st(iv[0], iv[1], iv[2]));
  });
}

}  // namespace
}  // namespace sacpp::sac
