// The SMP model: structural laws (monotonicity, Amdahl bounds, overhead
// limits) and the calibration against the paper's published end points.

#include <gtest/gtest.h>

#include <cmath>

#include "sacpp/machine/model.hpp"
#include "sacpp/machine/paper_data.hpp"

namespace sacpp::machine {
namespace {

const mg::MgSpec kW = mg::MgSpec::for_class(mg::MgClass::W);
const mg::MgSpec kA = mg::MgSpec::for_class(mg::MgClass::A);

Trace trace_of(mg::Variant v, const mg::MgSpec& spec) {
  return build_trace(v, spec);
}

TEST(Model, SpeedupStartsAtOne) {
  SmpModel m;
  for (auto v : {mg::Variant::kSac, mg::Variant::kFortran,
                 mg::Variant::kOpenMp}) {
    const auto s = m.speedups(trace_of(v, kW), 10);
    ASSERT_EQ(s.size(), 10u);
    EXPECT_DOUBLE_EQ(s[0], 1.0);
  }
}

TEST(Model, SpeedupsNeverExceedCpuCount) {
  SmpModel m;
  for (auto v : {mg::Variant::kSac, mg::Variant::kFortran,
                 mg::Variant::kOpenMp}) {
    for (const auto& spec : {kW, kA}) {
      const auto s = m.speedups(trace_of(v, spec), 10);
      for (std::size_t p = 0; p < s.size(); ++p) {
        EXPECT_LE(s[p], static_cast<double>(p + 1) + 1e-9);
        EXPECT_GE(s[p], 0.9);  // parallelism never makes it catastrophically worse
      }
    }
  }
}

TEST(Model, TimeDecreasesWithCpus) {
  SmpModel m;
  const Trace t = trace_of(mg::Variant::kOpenMp, kA);
  double prev = m.trace_time(t, 1);
  for (int p = 2; p <= 10; ++p) {
    const double now = m.trace_time(t, p);
    EXPECT_LE(now, prev * 1.001) << "P=" << p;
    prev = now;
  }
}

TEST(Model, ZeroOverheadFullyParallelTraceScalesLinearly) {
  MachineParams params;
  params.fork_join = 0.0;
  params.barrier_per_cpu = 0.0;
  params.alloc_cost = 0.0;
  params.core_bw = 1e18;  // memory never binds
  params.bus_bw = 1e18;
  SmpModel m(params);
  Trace t;
  t.variant = mg::Variant::kOpenMp;
  t.spec = kW;
  Region r;
  r.op = Op::kResid;
  r.flops = 1e9;
  r.bytes = 0.0;
  r.elems = 1e6;
  r.parallel = true;
  t.regions.push_back(r);
  const auto s = m.speedups(t, 10);
  EXPECT_NEAR(s[9], 10.0, 1e-9);
}

TEST(Model, SerialRegionObeysAmdahl) {
  MachineParams params;
  params.fork_join = 0.0;
  params.barrier_per_cpu = 0.0;
  params.core_bw = 1e18;
  params.bus_bw = 1e18;
  SmpModel m(params);
  Trace t;
  t.variant = mg::Variant::kFortran;
  t.spec = kW;
  Region par;
  par.flops = 0.9e9;
  par.parallel = true;
  Region ser;
  ser.flops = 0.1e9;
  ser.parallel = false;
  t.regions = {par, ser};
  const auto s = m.speedups(t, 10);
  const double amdahl = 1.0 / (0.1 + 0.9 / 10.0);
  EXPECT_NEAR(s[9], amdahl, 1e-6);
}

TEST(Model, BusSaturationCapsMemoryBoundScaling) {
  MachineParams params;
  params.fork_join = 0.0;
  params.barrier_per_cpu = 0.0;
  params.flop_rate = 1e18;  // compute never binds
  params.core_bw = 100.0;
  params.bus_bw = 300.0;  // saturates at three CPUs of streaming
  SmpModel m(params);
  Trace t;
  t.variant = mg::Variant::kOpenMp;
  t.spec = kW;
  Region r;
  r.bytes = 3000.0;
  r.parallel = true;
  t.regions = {r};
  const auto s = m.speedups(t, 10);
  EXPECT_NEAR(s[2], 3.0, 1e-9);   // scales to the bus limit
  EXPECT_NEAR(s[9], 3.0, 1e-9);   // then flat
}

TEST(Model, AllocationEventsAreSerialCost) {
  MachineParams params;
  params.alloc_cost = 1.0;
  SmpModel m(params);
  Region r;
  r.flops = 0.0;
  r.bytes = 0.0;
  r.alloc_events = 5;
  r.parallel = true;
  EXPECT_NEAR(m.region_time(r, 10, VariantProfile{}), 5.0,
              params.fork_join + params.barrier_per_cpu * 10 + 1e-9);
}

// -- calibration against the paper (DESIGN.md experiment index) --------------

double rel_err(double got, double want) {
  return std::abs(got - want) / want;
}

TEST(Calibration, SequentialRatiosNearFig11) {
  SmpModel m;
  const double sac_w = m.trace_time(trace_of(mg::Variant::kSac, kW), 1);
  const double f77_w = m.trace_time(trace_of(mg::Variant::kFortran, kW), 1);
  const double omp_w = m.trace_time(trace_of(mg::Variant::kOpenMp, kW), 1);
  const double sac_a = m.trace_time(trace_of(mg::Variant::kSac, kA), 1);
  const double f77_a = m.trace_time(trace_of(mg::Variant::kFortran, kA), 1);
  const double omp_a = m.trace_time(trace_of(mg::Variant::kOpenMp, kA), 1);

  EXPECT_LT(rel_err(sac_w / f77_w, paper::kF77OverSacW), 0.15)
      << "SAC/F77 class W: " << sac_w / f77_w;
  EXPECT_LT(rel_err(sac_a / f77_a, paper::kF77OverSacA), 0.15)
      << "SAC/F77 class A: " << sac_a / f77_a;
  EXPECT_LT(rel_err(omp_w / sac_w, paper::kSacOverCW), 0.15)
      << "C/SAC class W: " << omp_w / sac_w;
  EXPECT_LT(rel_err(omp_a / sac_a, paper::kSacOverCA), 0.15)
      << "C/SAC class A: " << omp_a / sac_a;
}

TEST(Calibration, TenCpuSpeedupsNearFig12) {
  SmpModel m;
  struct Case {
    mg::Variant v;
    const mg::MgSpec* spec;
    double target;
  };
  const Case cases[] = {
      {mg::Variant::kSac, &kW, paper::kSacSpeedupW10},
      {mg::Variant::kSac, &kA, paper::kSacSpeedupA10},
      {mg::Variant::kFortran, &kW, paper::kF77SpeedupW10},
      {mg::Variant::kFortran, &kA, paper::kF77SpeedupA10},
      {mg::Variant::kOpenMp, &kW, paper::kOmpSpeedupW10},
      {mg::Variant::kOpenMp, &kA, paper::kOmpSpeedupA10},
  };
  for (const auto& c : cases) {
    const auto s = m.speedups(trace_of(c.v, *c.spec), 10);
    EXPECT_LT(rel_err(s[9], c.target), 0.25)
        << mg::variant_name(c.v) << " class " << c.spec->name()
        << ": model " << s[9] << " vs paper " << c.target;
  }
}

TEST(Calibration, Fig12Ordering) {
  // OpenMP scales best, SAC second, auto-parallelised Fortran worst; class A
  // scales better than class W for every implementation.
  SmpModel m;
  for (const auto& spec : {kW, kA}) {
    const double sac = m.speedups(trace_of(mg::Variant::kSac, spec), 10)[9];
    const double f77 =
        m.speedups(trace_of(mg::Variant::kFortran, spec), 10)[9];
    const double omp = m.speedups(trace_of(mg::Variant::kOpenMp, spec), 10)[9];
    EXPECT_GT(omp, sac);
    EXPECT_GT(sac, f77);
  }
  for (auto v : {mg::Variant::kSac, mg::Variant::kFortran,
                 mg::Variant::kOpenMp}) {
    EXPECT_GT(m.speedups(trace_of(v, kA), 10)[9],
              m.speedups(trace_of(v, kW), 10)[9]);
  }
}

TEST(Calibration, Fig13SacOvertakesFortranByFourCpus) {
  // Speedups relative to the *sequential Fortran-77* time: SAC must pass
  // the auto-parallelised Fortran at four CPUs (paper Sec. 5).
  SmpModel m;
  for (const auto& spec : {kW, kA}) {
    const Trace sac = trace_of(mg::Variant::kSac, spec);
    const Trace f77 = trace_of(mg::Variant::kFortran, spec);
    const int p = paper::kSacBeatsF77AtCpus;
    EXPECT_LT(m.trace_time(sac, p), m.trace_time(f77, p))
        << "class " << spec.name();
    // and not before P=2 (F77 starts ahead on serial speed)
    EXPECT_GT(m.trace_time(sac, 1), m.trace_time(f77, 1));
  }
}

TEST(Calibration, Fig13SacStaysAheadOfOpenMpForClassA) {
  SmpModel m;
  const Trace sac = trace_of(mg::Variant::kSac, kA);
  const Trace omp = trace_of(mg::Variant::kOpenMp, kA);
  for (int p = 1; p <= 10; ++p) {
    EXPECT_LT(m.trace_time(sac, p), m.trace_time(omp, p)) << "P=" << p;
  }
}

TEST(Model, InvalidCpuCountThrows) {
  SmpModel m;
  EXPECT_THROW(m.trace_time(trace_of(mg::Variant::kSac, kW), 0),
               ContractError);
  EXPECT_THROW(m.speedups(trace_of(mg::Variant::kSac, kW), 0), ContractError);
}

}  // namespace
}  // namespace sacpp::machine
