// The extended array library: subarray selection, slicing, catenation,
// axis-wise reductions and scans, element-wise selection.

#include <gtest/gtest.h>

#include "sacpp/sac/sac.hpp"

namespace sacpp::sac {
namespace {

Array<double> sequential(const Shape& shp) {
  return with_genarray<double>(shp, [&shp](const IndexVec& iv) {
    return static_cast<double>(shp.linearize(iv)) + 1.0;
  });
}

void expect_equal(const Array<double>& a, const Array<double>& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (extent_t i = 0; i < a.elem_count(); ++i) {
    ASSERT_DOUBLE_EQ(a.at_linear(i), b.at_linear(i)) << "at " << i;
  }
}

TEST(Sel, RowOfMatrix) {
  auto m = sequential(Shape{3, 4});  // rows: 1..4, 5..8, 9..12
  auto row1 = sel({1}, m);
  ASSERT_EQ(row1.shape(), (Shape{4}));
  EXPECT_DOUBLE_EQ((row1[IndexVec{0}]), 5.0);
  EXPECT_DOUBLE_EQ((row1[IndexVec{3}]), 8.0);
}

TEST(Sel, FullPrefixYieldsScalarArray) {
  auto m = sequential(Shape{2, 2});
  auto s = sel({1, 0}, m);
  EXPECT_TRUE(s.is_scalar());
  EXPECT_DOUBLE_EQ(s.scalar(), 3.0);
}

TEST(Sel, EmptyPrefixIsIdentity) {
  auto m = sequential(Shape{2, 3});
  expect_equal(sel(IndexVec{}, m), m);
}

TEST(Sel, PlaneOfCube) {
  auto c = sequential(Shape{2, 3, 4});
  auto plane = sel({1}, c);
  ASSERT_EQ(plane.shape(), (Shape{3, 4}));
  EXPECT_DOUBLE_EQ((plane[IndexVec{0, 0}]), 13.0);
}

TEST(Sel, OutOfRangePrefixThrows) {
  auto m = sequential(Shape{2, 2});
  EXPECT_THROW(sel({2}, m), ContractError);
  EXPECT_THROW(sel({0, 0, 0}, m), ContractError);
}

TEST(Slice, BoxEqualsDropPlusTake) {
  auto m = sequential(Shape{6, 6});
  auto s = slice({1, 2}, {4, 5}, m);
  auto dt = take({3, 3}, drop({1, 2}, m));
  expect_equal(s, dt);
}

TEST(Slice, FullRangeIsIdentity) {
  auto m = sequential(Shape{3, 3});
  expect_equal(slice({0, 0}, {3, 3}, m), m);
}

TEST(Slice, EmptySliceAllowed) {
  auto m = sequential(Shape{3, 3});
  auto e = slice({1, 1}, {1, 3}, m);
  EXPECT_EQ(e.shape(), (Shape{0, 2}));
  EXPECT_EQ(e.elem_count(), 0);
}

TEST(Slice, InvalidBoundsThrow) {
  auto m = sequential(Shape{3, 3});
  EXPECT_THROW(slice({0, 0}, {4, 3}, m), ContractError);
  EXPECT_THROW(slice({2, 0}, {1, 3}, m), ContractError);
}

TEST(Catenate, VectorsAlongAxis0) {
  auto a = iota<double>(3);
  auto b = iota<double>(2) + 10.0;
  auto c = catenate(0, a, b);
  ASSERT_EQ(c.shape(), (Shape{5}));
  EXPECT_DOUBLE_EQ((c[IndexVec{2}]), 2.0);
  EXPECT_DOUBLE_EQ((c[IndexVec{3}]), 10.0);
}

TEST(Catenate, MatricesAlongBothAxes) {
  auto a = sequential(Shape{2, 2});
  auto b = sequential(Shape{2, 2}) * 10.0;
  auto rows = catenate(0, a, b);
  ASSERT_EQ(rows.shape(), (Shape{4, 2}));
  EXPECT_DOUBLE_EQ((rows[IndexVec{2, 0}]), 10.0);
  auto cols = catenate(1, a, b);
  ASSERT_EQ(cols.shape(), (Shape{2, 4}));
  EXPECT_DOUBLE_EQ((cols[IndexVec{0, 2}]), 10.0);
}

TEST(Catenate, SplitRoundTrip) {
  auto m = sequential(Shape{5, 3});
  auto top = slice({0, 0}, {2, 3}, m);
  auto bottom = slice({2, 0}, {5, 3}, m);
  expect_equal(catenate(0, top, bottom), m);
}

TEST(Catenate, MismatchedExtentsThrow) {
  auto a = sequential(Shape{2, 3});
  auto b = sequential(Shape{2, 4});
  EXPECT_THROW(catenate(0, a, b), ContractError);
  (void)catenate(1, a, b);  // axis-1 join of differing widths is fine
}

TEST(ReduceAxis, SumsMatchManual) {
  auto m = sequential(Shape{2, 3});  // 1 2 3 / 4 5 6
  auto col_sums = sum_axis(0, m);
  ASSERT_EQ(col_sums.shape(), (Shape{3}));
  EXPECT_DOUBLE_EQ((col_sums[IndexVec{0}]), 5.0);
  EXPECT_DOUBLE_EQ((col_sums[IndexVec{2}]), 9.0);
  auto row_sums = sum_axis(1, m);
  ASSERT_EQ(row_sums.shape(), (Shape{2}));
  EXPECT_DOUBLE_EQ((row_sums[IndexVec{0}]), 6.0);
  EXPECT_DOUBLE_EQ((row_sums[IndexVec{1}]), 15.0);
}

TEST(ReduceAxis, TotalEqualsNestedReduction) {
  auto m = sequential(Shape{4, 5});
  EXPECT_DOUBLE_EQ(sum(sum_axis(0, m)), sum(m));
  EXPECT_DOUBLE_EQ(sum(sum_axis(1, m)), sum(m));
}

TEST(ReduceAxis, MaxAxis) {
  auto m = sequential(Shape{2, 3});
  auto mx = max_axis(1, m);
  EXPECT_DOUBLE_EQ((mx[IndexVec{0}]), 3.0);
  EXPECT_DOUBLE_EQ((mx[IndexVec{1}]), 6.0);
}

TEST(ReduceAxis, VectorReductionYieldsScalarArray) {
  auto v = iota<double>(4) + 1.0;
  auto s = sum_axis(0, v);
  EXPECT_TRUE(s.is_scalar());
  EXPECT_DOUBLE_EQ(s.scalar(), 10.0);
}

TEST(ScanAxis, CumulativeSumOfVector) {
  auto v = iota<double>(5) + 1.0;  // 1 2 3 4 5
  auto c = cumsum_axis(0, v);
  const double expect[5] = {1, 3, 6, 10, 15};
  for (extent_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ((c[IndexVec{i}]), expect[i]);
  }
}

TEST(ScanAxis, LastElementEqualsAxisReduction) {
  auto m = sequential(Shape{3, 4});
  auto scanned = cumsum_axis(1, m);
  auto sums = sum_axis(1, m);
  for (extent_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ((scanned[IndexVec{i, 3}]), (sums[IndexVec{i}]));
  }
}

TEST(ScanAxis, DifferenceInvertsScan) {
  auto v = iota<double>(6) * 2.0 + 1.0;
  auto c = cumsum_axis(0, v);
  // c[i] - c[i-1] == v[i]
  for (extent_t i = 1; i < 6; ++i) {
    EXPECT_DOUBLE_EQ((c[IndexVec{i}]) - (c[IndexVec{i - 1}]),
                     (v[IndexVec{i}]));
  }
}

TEST(ScanAxis, ProductScan) {
  auto v = iota<double>(4) + 1.0;
  auto p = scan_axis(0, v, std::multiplies<>{}, 1.0);
  EXPECT_DOUBLE_EQ((p[IndexVec{3}]), 24.0);
}

TEST(Where, SelectsByMask) {
  auto mask = with_genarray<double>(Shape{4}, [](const IndexVec& iv) {
    return iv[0] % 2 == 0 ? 1.0 : 0.0;
  });
  auto a = genarray_const(Shape{4}, 10.0);
  auto b = genarray_const(Shape{4}, 20.0);
  auto w = where(mask, a, b);
  EXPECT_DOUBLE_EQ((w[IndexVec{0}]), 10.0);
  EXPECT_DOUBLE_EQ((w[IndexVec{1}]), 20.0);
}

TEST(Where, ShapeMismatchThrows) {
  auto a = genarray_const(Shape{4}, 1.0);
  auto b = genarray_const(Shape{5}, 1.0);
  EXPECT_THROW(where(a, a, b), ContractError);
}

TEST(CountWhere, CountsPredicateMatches) {
  auto v = iota<double>(10);
  EXPECT_EQ(count_where(v, [](double x) { return x >= 7.0; }), 3);
  EXPECT_EQ(count_where(v, [](double) { return false; }), 0);
}

TEST(Composition, MovingAverageViaScan) {
  // mean of a prefix window via scan: classic APL-style derivation
  auto v = iota<double>(8) + 1.0;
  auto c = cumsum_axis(0, v);
  // window [2, 5): (c[4] - c[1]) / 3 == (3+4+5)/3
  const double mean = ((c[IndexVec{4}]) - (c[IndexVec{1}])) / 3.0;
  EXPECT_DOUBLE_EQ(mean, 4.0);
}

}  // namespace
}  // namespace sacpp::sac
