// WITH-loop semantics: genarray / modarray / fold, generator resolution
// (dots, scalar replication, step/width), multi-partition loops, and the
// specialised rank-3 path's value-equivalence with the generic walker.

#include <gtest/gtest.h>

#include <numeric>

#include "sacpp/sac/array.hpp"
#include "sacpp/sac/with_loop.hpp"

namespace sacpp::sac {
namespace {

TEST(Genarray, FullShapeBodyOfIndexSum) {
  auto a = with_genarray<double>(Shape{2, 3}, [](const IndexVec& iv) {
    return static_cast<double>(iv[0] * 10 + iv[1]);
  });
  EXPECT_DOUBLE_EQ((a[IndexVec{0, 0}]), 0.0);
  EXPECT_DOUBLE_EQ((a[IndexVec{1, 2}]), 12.0);
}

TEST(Genarray, OutsideGeneratorGetsDefault) {
  auto a = with_genarray<double>(
      Shape{4}, gen_range({1}, {3}), [](const IndexVec&) { return 5.0; },
      -1.0);
  EXPECT_DOUBLE_EQ((a[IndexVec{0}]), -1.0);
  EXPECT_DOUBLE_EQ((a[IndexVec{1}]), 5.0);
  EXPECT_DOUBLE_EQ((a[IndexVec{2}]), 5.0);
  EXPECT_DOUBLE_EQ((a[IndexVec{3}]), -1.0);
}

TEST(Genarray, StepWidthGrid) {
  auto a = with_genarray<int>(
      Shape{10}, gen_range({0}, {10}).with_step(4).with_width(2),
      [](const IndexVec&) { return 1; }, 0);
  const int expect[10] = {1, 1, 0, 0, 1, 1, 0, 0, 1, 1};
  for (extent_t i = 0; i < 10; ++i) {
    EXPECT_EQ((a[IndexVec{i}]), expect[i]) << i;
  }
}

TEST(Genarray, ScalarReplicationOfBounds) {
  // A length-1 lower/upper bound replicates to the result rank (the paper's
  // scalar shorthand in generators).
  auto a = with_genarray<int>(
      Shape{4, 4}, gen_range({1}, {3}), [](const IndexVec&) { return 7; }, 0);
  int ones = 0;
  for (extent_t i = 0; i < a.elem_count(); ++i) ones += a.at_linear(i) == 7;
  EXPECT_EQ(ones, 4);  // the 2x2 interior box
}

TEST(Genarray, GenInteriorMargin) {
  auto a = with_genarray<int>(
      Shape{5, 5}, gen_interior(Shape{5, 5}, 2),
      [](const IndexVec&) { return 1; }, 0);
  int count = 0;
  for (extent_t i = 0; i < a.elem_count(); ++i) count += a.at_linear(i);
  EXPECT_EQ(count, 1);  // only the centre element
}

TEST(Genarray, GenInteriorDegenerateExtentThrows) {
  // An extent smaller than twice the margin would give upper < lower and a
  // negative-length axis; the generator must reject it, not wrap around.
  EXPECT_THROW(gen_interior(Shape{1, 5, 5}), ContractError);
  EXPECT_THROW(gen_interior(Shape{5, 5}, 3), ContractError);
  EXPECT_THROW(gen_interior(Shape{5, 5}, -1), ContractError);
  // Exactly 2 * margin is a legal empty interior: no elements, no throw.
  auto a = with_genarray<int>(Shape{4, 4}, gen_interior(Shape{4, 4}, 2),
                              [](const IndexVec&) { return 1; }, 0);
  for (extent_t i = 0; i < a.elem_count(); ++i) EXPECT_EQ(a.at_linear(i), 0);
}

TEST(Genarray, BoundsOutsideShapeThrow) {
  EXPECT_THROW(with_genarray<int>(Shape{3}, gen_range({0}, {4}),
                                  [](const IndexVec&) { return 0; }, 0),
               ContractError);
  EXPECT_THROW(with_genarray<int>(Shape{3}, gen_range({-1}, {2}),
                                  [](const IndexVec&) { return 0; }, 0),
               ContractError);
}

TEST(Genarray, WidthWithoutStepThrows) {
  Gen g = gen_range({0}, {3});
  g.width = IndexVec{1};
  EXPECT_THROW(with_genarray<int>(Shape{3}, g,
                                  [](const IndexVec&) { return 0; }, 0),
               ContractError);
}

TEST(Genarray, EmptyGeneratorYieldsAllDefault) {
  auto a = with_genarray<int>(
      Shape{3}, gen_range({2}, {2}), [](const IndexVec&) { return 1; }, 9);
  for (extent_t i = 0; i < 3; ++i) EXPECT_EQ((a[IndexVec{i}]), 9);
}

TEST(Genarray, Rank0ProducesScalar) {
  auto a = with_genarray<double>(Shape{}, [](const IndexVec& iv) {
    EXPECT_TRUE(iv.empty());
    return 3.0;
  });
  EXPECT_DOUBLE_EQ(a.scalar(), 3.0);
}

TEST(Modarray, OnlyGeneratorElementsChange) {
  Array<double> base(Shape{4}, 1.0);
  auto out = with_modarray(base, gen_range({1}, {3}),
                           [](const IndexVec&) { return 2.0; });
  EXPECT_DOUBLE_EQ((out[IndexVec{0}]), 1.0);
  EXPECT_DOUBLE_EQ((out[IndexVec{1}]), 2.0);
  EXPECT_DOUBLE_EQ((out[IndexVec{2}]), 2.0);
  EXPECT_DOUBLE_EQ((out[IndexVec{3}]), 1.0);
  // base was shared, so it must be unchanged
  EXPECT_DOUBLE_EQ((base[IndexVec{1}]), 1.0);
}

TEST(Modarray, LastUseReusesBufferInPlace) {
  Array<double> base(Shape{4}, 1.0);
  const double* p = base.data();
  auto out = with_modarray(std::move(base), gen_range({0}, {4}),
                           [](const IndexVec&) { return 2.0; });
  EXPECT_EQ(out.data(), p);  // SAC reference-counting reuse
}

TEST(Modarray, SharedBaseCopiesOnWrite) {
  Array<double> base(Shape{4}, 1.0);
  const double* p = base.data();
  auto out = with_modarray(base, gen_range({0}, {4}),
                           [](const IndexVec&) { return 2.0; });
  EXPECT_NE(out.data(), p);
  EXPECT_DOUBLE_EQ((base[IndexVec{0}]), 1.0);
}

TEST(Fold, SumOverFullSpace) {
  const Shape shp{4, 5};
  const double total = with_fold(
      std::plus<>{}, 0.0, shp, gen_all(),
      [&shp](const IndexVec& iv) {
        return static_cast<double>(shp.linearize(iv));
      });
  EXPECT_DOUBLE_EQ(total, 19.0 * 20.0 / 2.0);
}

TEST(Fold, MaxOverStridedGenerator) {
  const Shape shp{10};
  const double m = with_fold(
      [](double a, double b) { return a > b ? a : b; }, -1.0, shp,
      gen_range({0}, {10}).with_step(3),
      [](const IndexVec& iv) { return static_cast<double>(iv[0]); });
  EXPECT_DOUBLE_EQ(m, 9.0);
}

TEST(Fold, NeutralReturnedForEmptyGenerator) {
  const double r = with_fold(
      std::plus<>{}, 42.0, Shape{5}, gen_range({3}, {3}),
      [](const IndexVec&) { return 1.0; });
  EXPECT_DOUBLE_EQ(r, 42.0);
}

TEST(MultiPartition, DisjointPartitionsCompose) {
  std::vector<Partition<int>> parts;
  parts.push_back({gen_range({0}, {2}), [](const IndexVec&) { return 1; }});
  parts.push_back({gen_range({3}, {5}), [](const IndexVec&) { return 2; }});
  auto a = with_genarray_parts<int>(Shape{6}, parts, 0);
  const int expect[6] = {1, 1, 0, 2, 2, 0};
  for (extent_t i = 0; i < 6; ++i) EXPECT_EQ((a[IndexVec{i}]), expect[i]);
}

TEST(MultiPartition, LaterPartitionsSeeEarlierWrites) {
  // with_modarray_reading: second partition reads what the first wrote.
  Array<int> base(Shape{4}, 0);
  std::vector<ReadingPartition<int>> parts;
  parts.push_back(
      {gen_range({0}, {1}), [](const IndexVec&, const int*) { return 5; }});
  parts.push_back({gen_range({3}, {4}),
                   [](const IndexVec&, const int* p) { return p[0] + 1; }});
  auto out = with_modarray_reading(std::move(base), parts);
  EXPECT_EQ((out[IndexVec{0}]), 5);
  EXPECT_EQ((out[IndexVec{3}]), 6);
}

TEST(Rank3Specialization, MatchesGenericWalker) {
  const Shape shp{5, 6, 7};
  auto body = [](extent_t i, extent_t j, extent_t k) {
    return static_cast<double>(i * 100 + j * 10 + k);
  };
  SacConfig cfg = config();
  cfg.specialize = true;
  Array<double> fast;
  {
    ScopedConfig guard(cfg);
    fast = with_genarray<double>(shp, gen_all(), rank3_body(body));
  }
  cfg.specialize = false;
  Array<double> slow;
  {
    ScopedConfig guard(cfg);
    slow = with_genarray<double>(shp, gen_all(), rank3_body(body));
  }
  for (extent_t i = 0; i < shp.elem_count(); ++i) {
    ASSERT_DOUBLE_EQ(fast.at_linear(i), slow.at_linear(i));
  }
}

TEST(Rank3Specialization, InteriorGeneratorAlsoSpecialises) {
  const Shape shp{4, 4, 4};
  auto a = with_genarray<double>(
      shp, gen_interior(shp),
      rank3_body([](extent_t, extent_t, extent_t) { return 1.0; }), 0.0);
  double total = 0.0;
  for (extent_t i = 0; i < shp.elem_count(); ++i) total += a.at_linear(i);
  EXPECT_DOUBLE_EQ(total, 8.0);  // the 2^3 interior
}

TEST(Stats, WithLoopAndElementCounters) {
  reset_stats();
  (void)with_genarray<int>(Shape{4, 4}, gen_all(),
                           [](const IndexVec&) { return 1; });
  EXPECT_EQ(stats().with_loops, 1u);
  EXPECT_EQ(stats().elements, 16u);
  (void)with_fold(std::plus<>{}, 0, Shape{3}, gen_all(),
                  [](const IndexVec&) { return 1; });
  EXPECT_EQ(stats().with_loops, 2u);
  EXPECT_EQ(stats().elements, 19u);
}

}  // namespace
}  // namespace sacpp::sac
