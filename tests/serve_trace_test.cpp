// Serving-stack tracing integration: end-to-end stitched traces for real
// solves, shed traces from the queue settle path, the SLO watchdog's
// overload arithmetic, the admission queue's overload advisory, and a
// PCT schedule-explorer pass asserting every settled job yields exactly one
// well-formed span tree under shuffled queue/dispatch interleavings.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sacpp/check/schedule.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/obs/trace.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/serve/queue.hpp"
#include "sacpp/serve/server.hpp"
#include "sacpp/serve/slo.hpp"
#include "sacpp/serve/wire.hpp"

using namespace sacpp;
using namespace sacpp::serve;

namespace {

// Tracing tests need the obs layer live; sac::set_obs (not obs::set_enabled
// directly) so the lazy config() init cannot re-apply the SACPP_OBS default
// over the top of us.
struct ObsOn {
  ObsOn() {
    sac::set_obs(true);
    obs::reset();
    obs::clear_retained_traces();
  }
  ~ObsOn() {
    obs::clear_retained_traces();
    obs::reset();
    sac::set_obs(false);
  }
};

ServeConfig small_config(unsigned cores, unsigned executors) {
  ServeConfig cfg;
  cfg.total_cores = cores;
  cfg.executors = executors;
  cfg.queue_capacity = 64;
  return cfg;
}

SolveRequest traced_request(std::uint64_t id) {
  SolveRequest req;
  req.id = id;
  req.cls = mg::MgClass::S;
  req.variant = mg::Variant::kSacDirect;
  req.trace_id = obs::mint_trace_id();
  req.trace_flags = obs::kTraceForced;
  return req;
}

const obs::RetainedTrace* find_trace(const std::vector<obs::RetainedTrace>& ts,
                                     std::uint64_t trace_id) {
  for (const obs::RetainedTrace& t : ts) {
    if (t.meta.trace_id == trace_id) return &t;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// End-to-end stitching
// ---------------------------------------------------------------------------

TEST(ServeTrace, CompletedSolveYieldsOneStitchedTree) {
  ObsOn obs_on;
  const SolveRequest req = traced_request(7);
  SolveResult res;
  {
    SolverService service(small_config(2, 1));
    res = service.submit(req).get();
  }
  ASSERT_EQ(res.status, SolveStatus::kOk) << res.error;
  EXPECT_EQ(res.trace_id, req.trace_id) << "trace id must be echoed";

  const auto traces = obs::retained_traces();
  const obs::RetainedTrace* t = find_trace(traces, req.trace_id);
  ASSERT_NE(t, nullptr) << "forced trace was not retained";
  std::string why;
  EXPECT_TRUE(obs::validate_trace(*t, /*completed=*/true, &why)) << why;
  EXPECT_EQ(t->meta.status, "ok");
  EXPECT_EQ(t->meta.request_id, 7u);
  EXPECT_EQ(t->meta.reason, obs::RetainReason::kFlagged);
  EXPECT_GT(t->meta.e2e_ns, 0);
  // The tree holds more than the serve skeleton: the bound context must have
  // propagated into the solver (per-level V-cycle spans from pool workers).
  std::size_t solver_spans = 0;
  for (const obs::TraceSpan& s : t->spans) {
    const std::string_view name = s.span.name;
    if (name != obs::kSpanServeE2e && name != obs::kSpanServeQueue &&
        name != obs::kSpanServeExec && name != obs::kSpanClient) {
      ++solver_spans;
    }
  }
  EXPECT_GT(solver_spans, 0u)
      << "no solver-side spans carried the trace id — context did not "
         "propagate into the gang";
}

TEST(ServeTrace, UntracedRequestRetainsNothing) {
  ObsOn obs_on;
  SolveRequest req;
  req.id = 8;
  req.cls = mg::MgClass::S;
  req.variant = mg::Variant::kSacDirect;
  SolveResult res;
  {
    SolverService service(small_config(2, 1));  // trace_sample defaults to 0
    res = service.submit(req).get();
  }
  ASSERT_EQ(res.status, SolveStatus::kOk) << res.error;
  EXPECT_EQ(res.trace_id, 0u);
  EXPECT_EQ(obs::retained_trace_count(), 0u);
}

TEST(ServeTrace, HeadSamplingMintsServiceSideIds) {
  ObsOn obs_on;
  SolveRequest req;
  req.id = 9;
  req.cls = mg::MgClass::S;
  req.variant = mg::Variant::kSacDirect;
  ServeConfig cfg = small_config(2, 1);
  cfg.trace_sample = 1.0;  // service mints for every untraced request
  SolveResult res;
  {
    SolverService service(cfg);
    res = service.submit(req).get();
  }
  ASSERT_EQ(res.status, SolveStatus::kOk) << res.error;
  EXPECT_NE(res.trace_id, 0u) << "service should have minted a trace id";
}

TEST(ServeTrace, ExpiredDeadlineShedRetainsTraceWithoutExecSpan) {
  ObsOn obs_on;
  SolveRequest req = traced_request(11);
  req.deadline_ns = 1;  // budget expires effectively at submit
  SolveResult res;
  {
    SolverService service(small_config(2, 1));
    res = service.submit(req).get();
  }
  ASSERT_EQ(res.status, SolveStatus::kShedDeadline) << res.error;
  EXPECT_EQ(res.trace_id, req.trace_id);

  const auto traces = obs::retained_traces();
  const obs::RetainedTrace* t = find_trace(traces, req.trace_id);
  ASSERT_NE(t, nullptr) << "shed trace must be retained (always an anomaly)";
  std::string why;
  EXPECT_TRUE(obs::validate_trace(*t, /*completed=*/false, &why)) << why;
  EXPECT_EQ(t->meta.reason, obs::RetainReason::kShed);
  EXPECT_EQ(t->meta.status, "shed-deadline");
}

// ---------------------------------------------------------------------------
// SLO watchdog arithmetic
// ---------------------------------------------------------------------------

TEST(SloWatchdog, BurnRateTripsOverloadWhenP99ExceedsBudget) {
  SloConfig cfg;
  cfg.p99_budget_ns[static_cast<int>(Priority::kNormal)] = 1'000'000;  // 1ms
  SloWatchdog dog(cfg);
  EXPECT_FALSE(dog.overloaded());
  for (int i = 0; i < 200; ++i) {
    dog.observe(Priority::kNormal, SolveStatus::kOk, 10'000'000);  // 10ms
  }
  EXPECT_GT(dog.window_p99_ns(Priority::kNormal), 1'000'000);
  EXPECT_GT(dog.burn_rate(Priority::kNormal), 1.0);
  EXPECT_TRUE(dog.overloaded());
}

TEST(SloWatchdog, FastTrafficKeepsBurnRateUnderOne) {
  SloConfig cfg;
  cfg.p99_budget_ns[static_cast<int>(Priority::kNormal)] = 100'000'000;
  SloWatchdog dog(cfg);
  for (int i = 0; i < 200; ++i) {
    dog.observe(Priority::kNormal, SolveStatus::kOk, 1'000'000);
  }
  EXPECT_LT(dog.burn_rate(Priority::kNormal), 1.0);
  EXPECT_FALSE(dog.overloaded());
}

TEST(SloWatchdog, ShedRatioTripsOverload) {
  SloConfig cfg;  // no latency budgets: only the shed gate is armed
  cfg.max_shed_ratio = 0.10;
  SloWatchdog dog(cfg);
  for (int i = 0; i < 8; ++i) {
    dog.observe(Priority::kNormal, SolveStatus::kOk, 1000);
  }
  EXPECT_FALSE(dog.overloaded());
  dog.observe(Priority::kLow, SolveStatus::kShedCapacity, -1);
  dog.observe(Priority::kLow, SolveStatus::kShedDeadline, -1);
  EXPECT_DOUBLE_EQ(dog.shed_ratio(), 0.2);
  EXPECT_TRUE(dog.overloaded());
}

TEST(SloWatchdog, QueueSaturationTripsAndClears) {
  SloConfig cfg;
  cfg.max_queue_saturation = 0.90;
  SloWatchdog dog(cfg);
  dog.observe_queue(95, 100);
  EXPECT_TRUE(dog.overloaded());
  dog.observe_queue(10, 100);
  EXPECT_FALSE(dog.overloaded());
}

TEST(SloWatchdog, RotationExpiresTheWindow) {
  SloConfig cfg;
  cfg.max_shed_ratio = 0.10;
  SloWatchdog dog(cfg);
  for (int i = 0; i < 10; ++i) {
    dog.observe(Priority::kLow, SolveStatus::kShedCapacity, -1);
  }
  EXPECT_TRUE(dog.overloaded());
  // Two half-window rotations age the sheds fully out of the window.
  dog.rotate_now();
  dog.rotate_now();
  EXPECT_FALSE(dog.overloaded());
  EXPECT_DOUBLE_EQ(dog.shed_ratio(), 0.0);
}

TEST(SloWatchdog, CollectEmitsTheSloGauges) {
  struct Sink : obs::MetricSink {
    std::map<std::string, double> values;
    void counter(std::string_view name, double v, std::string_view) override {
      values[std::string(name)] = v;
    }
    void gauge(std::string_view name, double v, std::string_view) override {
      values[std::string(name)] = v;
    }
  };
  SloConfig cfg;
  cfg.p99_budget_ns[static_cast<int>(Priority::kHigh)] = 1'000'000;
  SloWatchdog dog(cfg);
  dog.observe(Priority::kHigh, SolveStatus::kOk, 10'000'000);
  Sink sink;
  dog.collect(sink);
  EXPECT_TRUE(sink.values.count("sacpp_slo_high_p99_window_ns"));
  EXPECT_TRUE(sink.values.count("sacpp_slo_high_burn_rate"));
  // Lanes without a budget export the p99 but no burn rate.
  EXPECT_TRUE(sink.values.count("sacpp_slo_normal_p99_window_ns"));
  EXPECT_FALSE(sink.values.count("sacpp_slo_normal_burn_rate"));
  EXPECT_TRUE(sink.values.count("sacpp_slo_shed_ratio"));
  EXPECT_TRUE(sink.values.count("sacpp_slo_queue_saturation"));
  EXPECT_EQ(sink.values["sacpp_slo_overloaded"], 1.0);
}

// ---------------------------------------------------------------------------
// Overload advisory on the admission path
// ---------------------------------------------------------------------------

QueuedJob make_job(std::uint64_t id, Priority priority) {
  QueuedJob job;
  job.request.id = id;
  job.request.priority = priority;
  job.gang = 1;
  job.submit_ns = obs::now_ns();
  job.enqueue_ns = job.submit_ns;
  return job;
}

TEST(OverloadAdvisor, ShedsOnlyLowPriorityWhileOverloaded) {
  AdmissionQueue queue(8);
  std::atomic<bool> overloaded{false};
  queue.set_overload_advisor(
      [&] { return overloaded.load(std::memory_order_relaxed); });

  // Not overloaded: low-priority work is admitted normally.
  EXPECT_EQ(queue.push(make_job(1, Priority::kLow)),
            AdmissionQueue::Admit::kAccepted);

  overloaded.store(true, std::memory_order_relaxed);
  QueuedJob low = make_job(2, Priority::kLow);
  std::future<SolveResult> low_future = low.promise.get_future();
  EXPECT_EQ(queue.push(std::move(low)),
            AdmissionQueue::Admit::kShedOverload);
  const SolveResult res = low_future.get();
  EXPECT_EQ(res.status, SolveStatus::kShedCapacity);
  EXPECT_NE(res.error.find("overload"), std::string::npos) << res.error;

  // The advisory never touches the higher lanes.
  EXPECT_EQ(queue.push(make_job(3, Priority::kNormal)),
            AdmissionQueue::Admit::kAccepted);
  EXPECT_EQ(queue.push(make_job(4, Priority::kHigh)),
            AdmissionQueue::Admit::kAccepted);
  EXPECT_EQ(queue.counters().shed_overload, 1u);
}

TEST(OverloadAdvisor, SettleObserverSeesQueueSettledJobs) {
  AdmissionQueue queue(8);
  std::vector<std::pair<Priority, SolveStatus>> seen;
  queue.set_settle_observer([&](Priority p, SolveStatus s) {
    seen.emplace_back(p, s);
  });
  queue.push(make_job(1, Priority::kLow));
  queue.push(make_job(2, Priority::kHigh));
  EXPECT_EQ(queue.shed_all(SolveStatus::kShedCapacity, "test teardown"), 2u);
  ASSERT_EQ(seen.size(), 2u);
  for (const auto& [priority, status] : seen) {
    EXPECT_EQ(status, SolveStatus::kShedCapacity);
  }
}

TEST(OverloadAdvisor, ServiceFeedsWatchdogBackIntoAdmission) {
  ObsOn obs_on;
  ServeConfig cfg = small_config(2, 1);
  cfg.slo.max_shed_ratio = 0.10;
  SolverService service(cfg);

  // Drive the shed ratio over budget: expired-deadline requests settle as
  // sheds and every settle feeds the watchdog.
  std::vector<std::future<SolveResult>> doomed;
  for (int i = 0; i < 10; ++i) {
    SolveRequest req;
    req.id = 100 + static_cast<std::uint64_t>(i);
    req.cls = mg::MgClass::S;
    req.deadline_ns = 1;
    doomed.push_back(service.submit(req));
  }
  for (auto& f : doomed) {
    EXPECT_EQ(f.get().status, SolveStatus::kShedDeadline);
  }
  EXPECT_TRUE(service.watchdog().overloaded());

  // The advisory now sheds incoming LOW work at admission, synchronously.
  SolveRequest low;
  low.id = 200;
  low.cls = mg::MgClass::S;
  low.priority = Priority::kLow;
  const SolveResult res = service.submit(low).get();
  EXPECT_EQ(res.status, SolveStatus::kShedCapacity);
  EXPECT_NE(res.error.find("overload"), std::string::npos) << res.error;
  EXPECT_GE(service.snapshot().counters.queue.shed_overload, 1u);
}

// ---------------------------------------------------------------------------
// PCT schedule exploration: stitching is interleaving-independent
// ---------------------------------------------------------------------------

// Satellite: under randomized queue/dispatch interleavings, every settled
// job must yield exactly one well-formed span tree.  The scenario drives a
// real AdmissionQueue (whose settle path records + retains shed traces) and
// a simulated executor that mirrors run_job's retroactive span recording.
TEST(ServeTracePct, EverySettledJobYieldsOneWellFormedTree) {
  ObsOn obs_on;

  struct PctJob {
    std::uint64_t id = 0;
    std::uint64_t trace_id = 0;
    std::future<SolveResult> future;
  };
  struct PctState {
    AdmissionQueue queue{4};
    std::vector<PctJob> jobs;
  };

  constexpr std::size_t kJobs = 4;

  const check::ScenarioBuilder build =
      [](std::uint64_t seed) -> check::ScheduleScenario {
    obs::clear_retained_traces();
    auto state = std::make_shared<PctState>();
    state->jobs.resize(kJobs);

    check::ScheduleScenario scenario;
    check::ScheduleRng rng(seed);

    // One client task per job: mint a context, push a traced QueuedJob.
    // The operation mix varies with the seed — priorities rotate and some
    // jobs carry an already-expired deadline so the deadline-shed settle
    // path runs under the explored interleavings too.
    for (std::size_t i = 0; i < kJobs; ++i) {
      const auto priority = static_cast<Priority>(rng.below(kPriorityLanes));
      const bool expired = rng.below(3) == 0;
      check::ScheduleTask task;
      task.name = "client-" + std::to_string(i);
      task.steps.push_back([state, i, priority, expired] {
        QueuedJob job;
        job.request.id = i + 1;
        job.request.priority = priority;
        job.request.trace_id = obs::mint_trace_id();
        job.request.trace_flags = obs::kTraceForced;
        job.gang = 1;
        job.submit_ns = obs::now_ns();
        job.enqueue_ns = job.submit_ns;
        if (expired) job.deadline_ns = job.submit_ns - 1;
        state->jobs[i].id = job.request.id;
        state->jobs[i].trace_id = job.request.trace_id;
        state->jobs[i].future = job.promise.get_future();
        state->queue.push(std::move(job));
      });
      scenario.tasks.push_back(std::move(task));
    }

    // The executor task: each step pops the best dispatchable job and
    // "executes" it, recording the serve_queue / serve_job / serve_e2e
    // skeleton retroactively with exact bounds, exactly like run_job.
    check::ScheduleTask executor;
    executor.name = "executor";
    for (std::size_t step = 0; step < kJobs; ++step) {
      executor.steps.push_back([state] {
        QueuedJob job;
        if (!state->queue.pop_best(8, obs::now_ns(), &job)) return;
        const obs::TraceContext ctx{job.request.trace_id,
                                    job.request.trace_parent,
                                    job.request.trace_flags};
        const obs::TraceBinding bind(ctx);
        const std::int64_t dispatch = obs::now_ns();
        obs::record_span(obs::SpanKind::kPhase, obs::kSpanServeQueue,
                         job.enqueue_ns, dispatch - job.enqueue_ns);
        obs::record_span(obs::SpanKind::kKernel, "pct_solve", dispatch, 0,
                         static_cast<std::int64_t>(job.request.id));
        const std::int64_t end = obs::now_ns();
        obs::record_span(obs::SpanKind::kPhase, obs::kSpanServeExec, dispatch,
                         end - dispatch,
                         static_cast<std::int64_t>(job.request.id));
        obs::record_span(obs::SpanKind::kPhase, obs::kSpanServeE2e,
                         job.submit_ns, end - job.submit_ns,
                         static_cast<std::int64_t>(job.request.id));
        obs::TraceMeta meta;
        meta.trace_id = job.request.trace_id;
        meta.request_id = job.request.id;
        meta.reason = obs::RetainReason::kFlagged;
        meta.status = "ok";
        meta.priority = static_cast<int>(job.request.priority);
        meta.submit_ns = job.submit_ns;
        meta.queue_ns = dispatch - job.enqueue_ns;
        meta.exec_ns = end - dispatch;
        meta.e2e_ns = end - job.submit_ns;
        obs::retain_trace(meta);
        SolveResult res;
        res.id = job.request.id;
        res.status = SolveStatus::kOk;
        res.trace_id = job.request.trace_id;
        res.queue_ns = dispatch - job.enqueue_ns;
        res.e2e_ns = end - job.submit_ns;
        job.promise.set_value(std::move(res));
      });
    }
    scenario.tasks.push_back(std::move(executor));

    // End-of-schedule invariant: settle whatever is still queued, then every
    // job's trace must validate against its outcome.
    scenario.finally = [state] {
      state->queue.shed_all(SolveStatus::kShedCapacity, "end of schedule");
      const auto traces = obs::retained_traces();
      for (PctJob& job : state->jobs) {
        const SolveResult res = job.future.get();
        const obs::RetainedTrace* t = nullptr;
        for (const obs::RetainedTrace& cand : traces) {
          if (cand.meta.trace_id == job.trace_id) t = &cand;
        }
        if (t == nullptr) {
          throw std::logic_error("job " + std::to_string(job.id) +
                                 " settled without a retained trace");
        }
        std::string why;
        if (!obs::validate_trace(*t, solve_completed(res.status), &why)) {
          throw std::logic_error("job " + std::to_string(job.id) + " (" +
                                 solve_status_name(res.status) +
                                 "): " + why);
        }
      }
    };
    return scenario;
  };

  check::ScheduleOptions opts;
  opts.schedules = 200;
  check::ScheduleExplorer explorer(opts);
  const check::ScheduleReport report = explorer.run(build);
  EXPECT_FALSE(report.failed)
      << "seed " << report.failing_seed << " in " << report.failing_task
      << ": " << report.failure;
  EXPECT_EQ(report.schedules_run, 200u);
}

}  // namespace
