// The distributed-memory model: its analytical message counts and byte
// volumes must match the real message-passing implementation's traffic
// counters exactly, and its times must obey the expected structural laws.

#include <gtest/gtest.h>

#include "sacpp/machine/dist_model.hpp"
#include "sacpp/mg/mg_mpi.hpp"

namespace sacpp::machine {
namespace {

class DistParity : public ::testing::TestWithParam<int> {};

TEST_P(DistParity, MessageAndByteCountsMatchRealImplementation) {
  const int ranks = GetParam();
  const mg::MgSpec spec = mg::MgSpec::custom(16, 2);
  // real traffic (2 iterations, no warm-up)
  mg::MgMpi mpi(spec, ranks);
  const auto real = mpi.run(2, /*warmup=*/false);
  // modelled traffic for the same two iterations
  DistModel model;
  const DistCost it = model.iteration_cost(spec, ranks);
  EXPECT_EQ(it.messages * 2, real.comm.messages) << "ranks=" << ranks;
  EXPECT_EQ(it.bytes * 2, real.comm.bytes) << "ranks=" << ranks;
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistParity, ::testing::Values(1, 2, 4, 8));

TEST(DistModel, SpeedupCurveStartsAtOneAndIsBounded) {
  DistModel model;
  const mg::MgSpec spec = mg::MgSpec::for_class(mg::MgClass::A);
  const auto s = model.speedups(spec, 16);
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.front().first, 1);
  EXPECT_DOUBLE_EQ(s.front().second, 1.0);
  for (const auto& [p, sp] : s) {
    EXPECT_LE(sp, static_cast<double>(p) + 1e-9);
    EXPECT_GT(sp, 0.5);
  }
}

TEST(DistModel, LargerClassScalesBetter) {
  DistModel model;
  const auto w = model.speedups(mg::MgSpec::for_class(mg::MgClass::W), 16);
  const auto a = model.speedups(mg::MgSpec::for_class(mg::MgClass::A), 16);
  // compare at the largest common rank count
  const std::size_t n = std::min(w.size(), a.size());
  EXPECT_GT(a[n - 1].second, w[n - 1].second);
}

TEST(DistModel, LatencyFreeNetworkApproachesCompute) {
  ClusterParams fast;
  fast.latency = 0.0;
  fast.link_bw = 1e18;
  DistModel model(fast);
  const mg::MgSpec spec = mg::MgSpec::for_class(mg::MgClass::A);
  const auto s = model.speedups(spec, 8);
  // with free communication, only the serial coarse tail limits scaling
  EXPECT_GT(s.back().second, 6.0);
}

TEST(DistModel, HighLatencyKillsSmallProblems) {
  ClusterParams slow;
  slow.latency = 5e-3;  // 5 ms per message
  DistModel model(slow);
  const mg::MgSpec spec = mg::MgSpec::custom(32, 4);
  const auto s = model.speedups(spec, 8);
  EXPECT_LT(s.back().second, 2.0);
}

TEST(DistModel, InvalidConfigurationsRejected) {
  DistModel model;
  const mg::MgSpec spec = mg::MgSpec::custom(8, 1);
  EXPECT_THROW(model.iteration_cost(spec, 3), ContractError);
  EXPECT_THROW(model.iteration_cost(spec, 8), ContractError);
}

TEST(DistModel, SpeedupsStopAtTheDecompositionLimit) {
  DistModel model;
  const auto s = model.speedups(mg::MgSpec::custom(16, 1), 64);
  // 2 * ranks <= 16 limits the curve to 8 ranks
  EXPECT_EQ(s.back().first, 8);
}

}  // namespace
}  // namespace sacpp::machine
