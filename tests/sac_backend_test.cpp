// Cross-backend differential battery for the pluggable row-primitive
// engines (docs/backends.md).
//
// The contract under test: every element-parallel primitive (fill, copy,
// plane sums, stencil combines, ewise merges, gather, scatter) is bitwise
// identical across kScalar, kSimd, kSimdPortable and kJit; the two folds
// (sum-of-squares, max-abs) may reassociate but agree to 1e-12 relative —
// and the AVX-512, AVX2, portable and JIT engines agree with EACH OTHER
// bit for bit, so kSimd/kJit results are host-independent and pinnable.
//
// Row lengths are drawn adversarially around the vector widths
// (1, 3, 4, 5, w-1, w, w+1, primes) with random sub-ranges including empty
// ones, hunting masked-tail and degenerate-extent bugs.
//
// The kJit battery runs with SACPP_JIT_SYNC=1 so every row call sees its
// compiled kernel immediately; lengths come from a small pool so the suite
// compiles a bounded kernel set while the row data still varies per round.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "sacpp/sac/backend.hpp"
#include "sacpp/sac/jit.hpp"
#include "sacpp/sac/periodic_stencil.hpp"
#include "sacpp/sac/sac.hpp"
#include "sacpp/sac/stats.hpp"

namespace sacpp::sac {
namespace {

Array<double> random_array(const Shape& shp, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  return with_genarray<double>(shp,
                               [&](const IndexVec&) { return dist(rng); });
}

constexpr StencilCoeffs kTestCoeffs{{-0.5, 0.125, 0.0625, 0.03125}};

// Engines under test: scalar is the reference; the portable 4-lane engine
// always exists; the AVX2/AVX-512 engines only on hosts with the ISA.
std::vector<const Backend*> all_engines() {
  std::vector<const Backend*> v{&detail::scalar_backend(),
                                &detail::portable_backend()};
  if (detail::avx2_backend() != nullptr) v.push_back(detail::avx2_backend());
  if (detail::avx512_backend() != nullptr) {
    v.push_back(detail::avx512_backend());
  }
  return v;
}

std::vector<double> random_row(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> dist(-8.0, 8.0);
  std::vector<double> r(n);
  for (double& x : r) x = dist(rng);
  return r;
}

// Adversarial row lengths around the vector width.
extent_t random_length(std::mt19937_64& rng) {
  static constexpr extent_t kPool[] = {1,  2,  3,  4,  5,  7,  8,  9,
                                       11, 13, 16, 17, 23, 31, 32, 33,
                                       37, 61, 64, 67, 97, 128};
  std::uniform_int_distribution<std::size_t> pick(
      0, std::size(kPool) - 1);
  return kPool[pick(rng)];
}

struct RowCase {
  extent_t n;       // row length
  extent_t lo, hi;  // sub-range, possibly empty
};

RowCase random_case(std::mt19937_64& rng) {
  RowCase c;
  c.n = random_length(rng);
  std::uniform_int_distribution<extent_t> bound(0, c.n);
  c.lo = bound(rng);
  c.hi = bound(rng);
  if (c.hi < c.lo) std::swap(c.lo, c.hi);
  return c;
}

constexpr int kRounds = 200;

TEST(BackendRegistry, KindsResolveAndReportLanes) {
  EXPECT_STREQ(backend_for(BackendKind::kScalar).name(), "scalar");
  EXPECT_EQ(backend_for(BackendKind::kScalar).lanes(), 1u);
  EXPECT_FALSE(backend_for(BackendKind::kScalar).vectorized());
  EXPECT_STREQ(backend_for(BackendKind::kSimdPortable).name(), "portable");
  EXPECT_EQ(backend_for(BackendKind::kSimdPortable).lanes(), 4u);
  EXPECT_TRUE(backend_for(BackendKind::kSimdPortable).vectorized());
  // kSimd resolves widest-first: AVX-512, then AVX2, then portable.
  const Backend& simd = backend_for(BackendKind::kSimd);
  EXPECT_TRUE(simd.vectorized());
  if (cpu_has_avx512()) {
    EXPECT_STREQ(simd.name(), "avx512");
    EXPECT_EQ(simd.lanes(), 8u);
  } else if (cpu_has_avx2()) {
    EXPECT_STREQ(simd.name(), "avx2");
    EXPECT_EQ(simd.lanes(), 4u);
  } else {
    EXPECT_STREQ(simd.name(), "portable");
    EXPECT_EQ(simd.lanes(), 4u);
  }
  // kJit wraps the resolved kSimd engine as its fallback.
  const Backend& jit = backend_for(BackendKind::kJit);
  EXPECT_STREQ(jit.name(), "jit");
  EXPECT_TRUE(jit.vectorized());
  EXPECT_TRUE(jit.jit());
  EXPECT_FALSE(simd.jit());
  EXPECT_EQ(jit.lanes(), simd.lanes());
}

TEST(BackendRegistry, KindNamesRoundTripThroughParser) {
  for (const BackendKind k : kAllBackendKinds) {
    BackendKind parsed{};
    ASSERT_TRUE(parse_backend(backend_name(k), &parsed)) << backend_name(k);
    EXPECT_EQ(parsed, k);
  }
  BackendKind parsed{};
  EXPECT_FALSE(parse_backend("sse9", &parsed));
  // The registry-driven name list is what --backend help/errors print.
  EXPECT_EQ(backend_names(), "scalar | simd | simd-portable | jit");
}

// -- per-primitive differential sweeps --------------------------------------

TEST(BackendRows, FillCopyBitIdenticalAcrossEngines) {
  std::mt19937_64 rng(101);
  const auto engines = all_engines();
  for (int round = 0; round < kRounds; ++round) {
    const RowCase c = random_case(rng);
    const auto src = random_row(rng, static_cast<std::size_t>(c.n));
    const double v = static_cast<double>(round) * 0.37 - 3.0;
    std::vector<std::vector<double>> fills, copies;
    for (const Backend* be : engines) {
      std::vector<double> f(static_cast<std::size_t>(c.n), -99.0);
      be->fill_row(f.data(), c.lo, c.hi, v);
      fills.push_back(std::move(f));
      std::vector<double> cp(static_cast<std::size_t>(c.n), -99.0);
      be->copy_row(cp.data(), src.data(), c.lo, c.hi);
      copies.push_back(std::move(cp));
    }
    for (std::size_t e = 1; e < engines.size(); ++e) {
      ASSERT_EQ(fills[e], fills[0]) << engines[e]->name() << " n=" << c.n
                                    << " [" << c.lo << "," << c.hi << ")";
      ASSERT_EQ(copies[e], copies[0]) << engines[e]->name() << " n=" << c.n;
    }
  }
}

TEST(BackendRows, PlaneSumsBitIdenticalAcrossEngines) {
  std::mt19937_64 rng(102);
  const auto engines = all_engines();
  for (int round = 0; round < kRounds; ++round) {
    const extent_t n = random_length(rng);
    std::vector<std::vector<double>> in;
    in.reserve(8);
    for (int r = 0; r < 8; ++r) {
      in.push_back(random_row(rng, static_cast<std::size_t>(n)));
    }
    std::vector<std::vector<double>> u1s, u2s;
    for (const Backend* be : engines) {
      std::vector<double> u1(static_cast<std::size_t>(n), -99.0);
      std::vector<double> u2(static_cast<std::size_t>(n), -99.0);
      be->plane_sums(in[0].data(), in[1].data(), in[2].data(), in[3].data(),
                     in[4].data(), in[5].data(), in[6].data(), in[7].data(),
                     u1.data(), u2.data(), n);
      u1s.push_back(std::move(u1));
      u2s.push_back(std::move(u2));
    }
    for (std::size_t e = 1; e < engines.size(); ++e) {
      ASSERT_EQ(u1s[e], u1s[0]) << engines[e]->name() << " n=" << n;
      ASSERT_EQ(u2s[e], u2s[0]) << engines[e]->name() << " n=" << n;
    }
  }
}

TEST(BackendRows, CombineAndAccumulateBitIdenticalAcrossEngines) {
  std::mt19937_64 rng(103);
  const auto engines = all_engines();
  for (int round = 0; round < kRounds; ++round) {
    const extent_t n = random_length(rng) + 2;  // room for the [lo-1, hi+1) reads
    const auto uc = random_row(rng, static_cast<std::size_t>(n));
    const auto u1 = random_row(rng, static_cast<std::size_t>(n));
    const auto u2 = random_row(rng, static_cast<std::size_t>(n));
    // Interior sub-range: the combine contract needs lo-1 / hi readable.
    std::uniform_int_distribution<extent_t> bound(1, n - 1);
    extent_t lo = bound(rng), hi = bound(rng);
    if (hi < lo) std::swap(lo, hi);
    std::vector<std::vector<double>> outs, accs;
    for (const Backend* be : engines) {
      std::vector<double> o(static_cast<std::size_t>(n), -99.0);
      be->combine_row(kTestCoeffs.c.data(), uc.data(), u1.data(), u2.data(),
                      o.data(), lo, hi);
      outs.push_back(std::move(o));
      std::vector<double> a(static_cast<std::size_t>(n), 0.5);
      be->accumulate_row(kTestCoeffs.c.data(), uc.data(), u1.data(),
                         u2.data(), a.data(), lo, hi);
      accs.push_back(std::move(a));
    }
    for (std::size_t e = 1; e < engines.size(); ++e) {
      ASSERT_EQ(outs[e], outs[0]) << engines[e]->name() << " n=" << n
                                  << " [" << lo << "," << hi << ")";
      ASSERT_EQ(accs[e], accs[0]) << engines[e]->name() << " n=" << n;
    }
  }
}

TEST(BackendRows, EwiseMergesBitIdenticalAcrossEngines) {
  std::mt19937_64 rng(104);
  const auto engines = all_engines();
  for (int round = 0; round < kRounds; ++round) {
    const RowCase c = random_case(rng);
    const auto a = random_row(rng, static_cast<std::size_t>(c.n));
    const auto base = random_row(rng, static_cast<std::size_t>(c.n));
    for (int op = 0; op < 3; ++op) {
      std::vector<std::vector<double>> outs;
      for (const Backend* be : engines) {
        std::vector<double> o = base;
        if (op == 0) be->add_into_row(a.data(), o.data(), c.lo, c.hi);
        if (op == 1) be->sub_into_row(a.data(), o.data(), c.lo, c.hi);
        if (op == 2) be->mul_into_row(a.data(), o.data(), c.lo, c.hi);
        outs.push_back(std::move(o));
      }
      for (std::size_t e = 1; e < engines.size(); ++e) {
        ASSERT_EQ(outs[e], outs[0])
            << engines[e]->name() << " op=" << op << " n=" << c.n;
      }
    }
  }
}

TEST(BackendRows, GatherScatterBitIdenticalAcrossEngines) {
  std::mt19937_64 rng(105);
  const auto engines = all_engines();
  for (int round = 0; round < kRounds; ++round) {
    const extent_t count = random_length(rng);
    std::uniform_int_distribution<extent_t> stride_pick(1, 5);
    const extent_t stride = stride_pick(rng);
    const auto src =
        random_row(rng, static_cast<std::size_t>(count * stride));
    std::vector<std::vector<double>> gathers, scatters;
    for (const Backend* be : engines) {
      std::vector<double> g(static_cast<std::size_t>(count), -99.0);
      be->gather_row(g.data(), src.data(), stride, count);
      gathers.push_back(std::move(g));
      std::vector<double> s(static_cast<std::size_t>(count * stride), -99.0);
      be->scatter_row(s.data(), stride, src.data(), count);
      scatters.push_back(std::move(s));
    }
    for (std::size_t e = 1; e < engines.size(); ++e) {
      ASSERT_EQ(gathers[e], gathers[0])
          << engines[e]->name() << " stride=" << stride;
      ASSERT_EQ(scatters[e], scatters[0])
          << engines[e]->name() << " stride=" << stride;
    }
  }
}

TEST(BackendFolds, AgreeWithScalarToTolAndAcrossSimdEnginesExactly) {
  std::mt19937_64 rng(106);
  const Backend& sc = detail::scalar_backend();
  const Backend& po = detail::portable_backend();
  const Backend* avx = detail::avx2_backend();
  for (int round = 0; round < kRounds; ++round) {
    const RowCase c = random_case(rng);
    const auto p = random_row(rng, static_cast<std::size_t>(c.n));
    const double acc0 = round * 0.013;

    const double ss_sc = sc.sum_sq_row(acc0, p.data(), c.lo, c.hi);
    const double ss_po = po.sum_sq_row(acc0, p.data(), c.lo, c.hi);
    ASSERT_NEAR(ss_po, ss_sc, 1e-12 * std::max(1.0, std::fabs(ss_sc)))
        << "n=" << c.n << " [" << c.lo << "," << c.hi << ")";

    // max is association-insensitive: exact across every engine.
    const double ma_sc = sc.max_abs_row(acc0, p.data(), c.lo, c.hi);
    const double ma_po = po.max_abs_row(acc0, p.data(), c.lo, c.hi);
    ASSERT_EQ(ma_po, ma_sc) << "n=" << c.n;

    if (avx != nullptr) {
      // AVX2 mirrors the portable lane structure bit for bit.
      ASSERT_EQ(avx->sum_sq_row(acc0, p.data(), c.lo, c.hi), ss_po)
          << "n=" << c.n << " [" << c.lo << "," << c.hi << ")";
      ASSERT_EQ(avx->max_abs_row(acc0, p.data(), c.lo, c.hi), ma_po)
          << "n=" << c.n;
    }
    if (const Backend* a512 = detail::avx512_backend()) {
      // The AVX-512 engine keeps the 4-lane fold contract, not 8 lanes.
      ASSERT_EQ(a512->sum_sq_row(acc0, p.data(), c.lo, c.hi), ss_po)
          << "n=" << c.n << " [" << c.lo << "," << c.hi << ")";
      ASSERT_EQ(a512->max_abs_row(acc0, p.data(), c.lo, c.hi), ma_po)
          << "n=" << c.n;
    }
  }
}

// -- whole-kernel differential sweeps ---------------------------------------

Array<double> run_relax(const Array<double>& a, BackendKind backend,
                        bool periodic, int threads = 0) {
  SacConfig cfg = config();
  cfg.stencil_mode = StencilMode::kPlanes;
  cfg.stencil_planes_cutover = 0;
  cfg.backend = backend;
  if (threads > 0) {
    cfg.mt_enabled = true;
    cfg.mt_threads = threads;
    cfg.mt_threshold = 1;
  }
  ScopedConfig guard(cfg);
  return periodic
             ? relax_kernel_periodic(a, kTestCoeffs, StencilMode::kPlanes)
             : relax_kernel(a, kTestCoeffs, StencilMode::kPlanes);
}

TEST(BackendKernels, PlanesRelaxBitIdenticalAcrossBackends) {
  // Stencil rows are element-parallel in every backend, so whole sweeps are
  // bitwise equal — fixed and periodic boundaries, odd extents included.
  for (const Shape& shp :
       {Shape{6, 7, 9}, Shape{5, 5, 4}, Shape{8, 6, 19}, Shape{4, 9, 33}}) {
    auto a = random_array(shp, 71);
    for (const bool periodic : {false, true}) {
      auto scalar = run_relax(a, BackendKind::kScalar, periodic);
      auto simd = run_relax(a, BackendKind::kSimd, periodic);
      auto portable = run_relax(a, BackendKind::kSimdPortable, periodic);
      for (extent_t i = 0; i < scalar.elem_count(); ++i) {
        ASSERT_EQ(simd.at_linear(i), scalar.at_linear(i))
            << (periodic ? "periodic " : "fixed ") << i;
        ASSERT_EQ(portable.at_linear(i), scalar.at_linear(i))
            << (periodic ? "periodic " : "fixed ") << i;
      }
    }
  }
}

TEST(BackendKernels, MultithreadedRunsAreBitwiseDeterministicPerBackend) {
  const Shape shp{24, 24, 24};
  auto a = random_array(shp, 73);
  for (const BackendKind kind :
       {BackendKind::kScalar, BackendKind::kSimd,
        BackendKind::kSimdPortable}) {
    auto serial = run_relax(a, kind, /*periodic=*/false);
    auto mt1 = run_relax(a, kind, /*periodic=*/false, /*threads=*/4);
    auto mt2 = run_relax(a, kind, /*periodic=*/false, /*threads=*/4);
    for (extent_t i = 0; i < serial.elem_count(); ++i) {
      ASSERT_EQ(mt1.at_linear(i), serial.at_linear(i))
          << backend_name(kind) << " " << i;
      ASSERT_EQ(mt2.at_linear(i), mt1.at_linear(i))
          << backend_name(kind) << " " << i;
    }
  }
}

TEST(BackendKernels, GatherRowPathsMatchPerPointEvaluation) {
  // Structural ops over concrete arrays ride the backend gather/scatter row
  // primitives; pure data movement must be bit-identical in every backend
  // and equal to the scalar per-point reference.
  std::mt19937_64 rng(75);
  for (int round = 0; round < 24; ++round) {
    const extent_t n0 = 2 + static_cast<extent_t>(round % 5);
    const Shape shp{n0 * 2, 6, random_length(rng) + 2};
    auto a = random_array(shp, 77 + static_cast<unsigned>(round));
    Array<double> ref_c, ref_s, ref_t, ref_e;
    {
      SacConfig cfg = config();
      cfg.backend = BackendKind::kScalar;
      ScopedConfig guard(cfg);
      ref_c = condense(2, a);
      ref_s = scatter(3, condense(2, a));
      ref_t = take({shp[0] / 2, 3, shp[2] / 2}, a);
      ref_e = embed(IndexVec{shp[0] + 3, shp[1] + 1, shp[2] + 5},
                    IndexVec{2, 1, 3}, a);
    }
    for (const BackendKind kind :
         {BackendKind::kSimd, BackendKind::kSimdPortable}) {
      SacConfig cfg = config();
      cfg.backend = kind;
      ScopedConfig guard(cfg);
      auto c = condense(2, a);
      auto s = scatter(3, condense(2, a));
      auto t = take({shp[0] / 2, 3, shp[2] / 2}, a);
      auto e = embed(IndexVec{shp[0] + 3, shp[1] + 1, shp[2] + 5},
                     IndexVec{2, 1, 3}, a);
      for (extent_t i = 0; i < ref_c.elem_count(); ++i) {
        ASSERT_EQ(c.at_linear(i), ref_c.at_linear(i)) << backend_name(kind);
      }
      for (extent_t i = 0; i < ref_s.elem_count(); ++i) {
        ASSERT_EQ(s.at_linear(i), ref_s.at_linear(i)) << backend_name(kind);
      }
      for (extent_t i = 0; i < ref_t.elem_count(); ++i) {
        ASSERT_EQ(t.at_linear(i), ref_t.at_linear(i)) << backend_name(kind);
      }
      for (extent_t i = 0; i < ref_e.elem_count(); ++i) {
        ASSERT_EQ(e.at_linear(i), ref_e.at_linear(i)) << backend_name(kind);
      }
    }
  }
}

TEST(BackendKernels, FusedRestrictionRowPathMatchesPerPointToTol) {
  // condense(2, stencil) under a vectorized backend runs the stencil's ROW
  // evaluator (planes association) where per-point evaluation groups by
  // class — equal to 1e-12, and bit-identical between the simd engines.
  const Shape shp{10, 10, 18};
  auto a = random_array(shp, 79);
  SacConfig cfg = config();
  cfg.stencil_mode = StencilMode::kPlanes;
  cfg.stencil_planes_cutover = 0;
  auto run = [&](BackendKind kind) {
    SacConfig c = cfg;
    c.backend = kind;
    ScopedConfig guard(c);
    return force(
        lazy_condense(2, StencilExpr(a, kTestCoeffs, StencilMode::kPlanes)));
  };
  auto scalar = run(BackendKind::kScalar);
  auto simd = run(BackendKind::kSimd);
  auto portable = run(BackendKind::kSimdPortable);
  for (extent_t i = 0; i < scalar.elem_count(); ++i) {
    ASSERT_NEAR(simd.at_linear(i), scalar.at_linear(i), 1e-12) << i;
    ASSERT_EQ(portable.at_linear(i), simd.at_linear(i)) << i;
  }
}

TEST(BackendFolds, WholeArrayFoldsAgreeAndSimdEnginesMatchExactly) {
  const Shape shp{12, 13, 21};
  auto r = random_array(shp, 83);
  auto run_ss = [&](BackendKind kind) {
    SacConfig cfg = config();
    cfg.backend = kind;
    ScopedConfig guard(cfg);
    return with_fold(std::plus<>{}, 0.0, r.shape(), gen_interior(r.shape()),
                     sum_sq_rows(r));
  };
  auto run_ma = [&](BackendKind kind) {
    SacConfig cfg = config();
    cfg.backend = kind;
    ScopedConfig guard(cfg);
    return max_abs(r);
  };
  const double ss_scalar = run_ss(BackendKind::kScalar);
  const double ss_simd = run_ss(BackendKind::kSimd);
  EXPECT_NEAR(ss_simd / ss_scalar, 1.0, 1e-12);
  EXPECT_EQ(run_ss(BackendKind::kSimdPortable), ss_simd);
  const double ma_scalar = run_ma(BackendKind::kScalar);
  EXPECT_EQ(run_ma(BackendKind::kSimd), ma_scalar);
  EXPECT_EQ(run_ma(BackendKind::kSimdPortable), ma_scalar);
}

// -- kJit differential battery ----------------------------------------------
//
// Sync-compile battery: SACPP_JIT_SYNC=1 makes jit::request compile on the
// calling thread, so the first row call already runs generated code.  Row
// lengths come from a bounded pool (all >= the dispatch cutoff) so the
// suite compiles a fixed set of kernels while the data varies per round.

constexpr extent_t kJitLengths[] = {16, 17, 33, 64, 128};
constexpr int kJitRounds = 8;  // data rounds per length; kernels compile once

class BackendJit : public ::testing::Test {
 protected:
  void SetUp() override {
    ::setenv("SACPP_JIT_SYNC", "1", 1);
    ::unsetenv("SACPP_JIT_CC");
    ::unsetenv("SACPP_JIT_CACHE_DIR");
    jit::testing::reset();
    // Probe: one eligible row proves the host toolchain works; without one
    // the engine degrades (by design) and this battery has nothing to test.
    double a[16] = {0}, o[16] = {0};
    backend_for(BackendKind::kJit).add_into_row(a, o, 0, 16);
    if (!jit::available()) {
      GTEST_SKIP() << "host toolchain unavailable; jit degraded to simd";
    }
  }
  void TearDown() override {
    ::unsetenv("SACPP_JIT_SYNC");
    ::unsetenv("SACPP_JIT_CACHE_DIR");
    jit::testing::reset();
  }
};

TEST_F(BackendJit, ElementParallelRowsBitIdenticalToScalar) {
  std::mt19937_64 rng(301);
  const Backend& sc = detail::scalar_backend();
  const Backend& be = backend_for(BackendKind::kJit);
  reset_stats();
  for (const extent_t n : kJitLengths) {
    for (int round = 0; round < kJitRounds; ++round) {
      const auto uc = random_row(rng, static_cast<std::size_t>(n));
      const auto u1 = random_row(rng, static_cast<std::size_t>(n));
      const auto u2 = random_row(rng, static_cast<std::size_t>(n));
      const extent_t lo = 1, hi = n - 1;

      std::vector<double> o_sc(static_cast<std::size_t>(n), -99.0);
      std::vector<double> o_jit = o_sc;
      sc.combine_row(kTestCoeffs.c.data(), uc.data(), u1.data(), u2.data(),
                     o_sc.data(), lo, hi);
      be.combine_row(kTestCoeffs.c.data(), uc.data(), u1.data(), u2.data(),
                     o_jit.data(), lo, hi);
      ASSERT_EQ(o_jit, o_sc) << "combine n=" << n;

      std::vector<double> a_sc(static_cast<std::size_t>(n), 0.5);
      std::vector<double> a_jit = a_sc;
      sc.accumulate_row(kTestCoeffs.c.data(), uc.data(), u1.data(),
                        u2.data(), a_sc.data(), lo, hi);
      be.accumulate_row(kTestCoeffs.c.data(), uc.data(), u1.data(),
                        u2.data(), a_jit.data(), lo, hi);
      ASSERT_EQ(a_jit, a_sc) << "accumulate n=" << n;

      std::vector<std::vector<double>> in;
      for (int r = 0; r < 8; ++r) {
        in.push_back(random_row(rng, static_cast<std::size_t>(n)));
      }
      std::vector<double> p1_sc(static_cast<std::size_t>(n)),
          p2_sc(static_cast<std::size_t>(n));
      auto p1_jit = p1_sc, p2_jit = p2_sc;
      sc.plane_sums(in[0].data(), in[1].data(), in[2].data(), in[3].data(),
                    in[4].data(), in[5].data(), in[6].data(), in[7].data(),
                    p1_sc.data(), p2_sc.data(), n);
      be.plane_sums(in[0].data(), in[1].data(), in[2].data(), in[3].data(),
                    in[4].data(), in[5].data(), in[6].data(), in[7].data(),
                    p1_jit.data(), p2_jit.data(), n);
      ASSERT_EQ(p1_jit, p1_sc) << "plane_sums n=" << n;
      ASSERT_EQ(p2_jit, p2_sc) << "plane_sums n=" << n;

      for (const bool accumulate : {false, true}) {
        std::vector<double> s_sc(static_cast<std::size_t>(n), 0.25);
        std::vector<double> s_jit = s_sc;
        std::vector<double> w1(static_cast<std::size_t>(n)),
            w2(static_cast<std::size_t>(n));
        sc.stencil_row(kTestCoeffs.c.data(), uc.data(), in[0].data(),
                       in[1].data(), in[2].data(), in[3].data(),
                       in[4].data(), in[5].data(), in[6].data(),
                       in[7].data(), w1.data(), w2.data(), s_sc.data(), lo,
                       hi, n, accumulate);
        be.stencil_row(kTestCoeffs.c.data(), uc.data(), in[0].data(),
                       in[1].data(), in[2].data(), in[3].data(),
                       in[4].data(), in[5].data(), in[6].data(),
                       in[7].data(), w1.data(), w2.data(), s_jit.data(), lo,
                       hi, n, accumulate);
        ASSERT_EQ(s_jit, s_sc) << "stencil_row acc=" << accumulate
                               << " n=" << n;
      }

      const auto av = random_row(rng, static_cast<std::size_t>(n));
      const auto base = random_row(rng, static_cast<std::size_t>(n));
      for (int op = 0; op < 3; ++op) {
        std::vector<double> e_sc = base, e_jit = base;
        if (op == 0) {
          sc.add_into_row(av.data(), e_sc.data(), 0, n);
          be.add_into_row(av.data(), e_jit.data(), 0, n);
        } else if (op == 1) {
          sc.sub_into_row(av.data(), e_sc.data(), 0, n);
          be.sub_into_row(av.data(), e_jit.data(), 0, n);
        } else {
          sc.mul_into_row(av.data(), e_sc.data(), 0, n);
          be.mul_into_row(av.data(), e_jit.data(), 0, n);
        }
        ASSERT_EQ(e_jit, e_sc) << "ewise op=" << op << " n=" << n;
      }

      const extent_t stride = 3;
      const auto src = random_row(rng, static_cast<std::size_t>(n * stride));
      std::vector<double> g_sc(static_cast<std::size_t>(n), -99.0);
      std::vector<double> g_jit = g_sc;
      sc.gather_row(g_sc.data(), src.data(), stride, n);
      be.gather_row(g_jit.data(), src.data(), stride, n);
      ASSERT_EQ(g_jit, g_sc) << "gather n=" << n;
      std::vector<double> t_sc(static_cast<std::size_t>(n * stride), -99.0);
      std::vector<double> t_jit = t_sc;
      sc.scatter_row(t_sc.data(), stride, src.data(), n);
      be.scatter_row(t_jit.data(), stride, src.data(), n);
      ASSERT_EQ(t_jit, t_sc) << "scatter n=" << n;
    }
  }
  // The battery must have exercised generated code, not just the fallback.
  // (Some combine calls DO fall back: their sub-range n-2 sits below the
  // dispatch cutoff for the two shortest pool lengths — by design.)
  EXPECT_GT(stats().jit_kernel_calls, 0u);
}

TEST_F(BackendJit, StencilRowElidesZeroCoeffTermsExactly) {
  // The MG operators carry one exactly-zero coefficient each (resid c1,
  // psinv c3); codegen drops those terms.  On the nonzero data below the
  // elision is exact, so outputs stay bitwise equal to scalar.
  const double kResid[4] = {-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0};
  const double kPsinv[4] = {-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0};
  std::mt19937_64 rng(303);
  const Backend& sc = detail::scalar_backend();
  const Backend& be = backend_for(BackendKind::kJit);
  const extent_t n = 67, lo = 1, hi = n - 1;
  const auto uc = random_row(rng, static_cast<std::size_t>(n));
  std::vector<std::vector<double>> in;
  for (int r = 0; r < 8; ++r) {
    in.push_back(random_row(rng, static_cast<std::size_t>(n)));
  }
  std::vector<double> w1(static_cast<std::size_t>(n)),
      w2(static_cast<std::size_t>(n));
  for (const double* c : {kResid, kPsinv}) {
    for (const bool accumulate : {false, true}) {
      std::vector<double> o_sc(static_cast<std::size_t>(n), 0.125);
      std::vector<double> o_jit = o_sc;
      sc.stencil_row(c, uc.data(), in[0].data(), in[1].data(), in[2].data(),
                     in[3].data(), in[4].data(), in[5].data(), in[6].data(),
                     in[7].data(), w1.data(), w2.data(), o_sc.data(), lo, hi,
                     n, accumulate);
      be.stencil_row(c, uc.data(), in[0].data(), in[1].data(), in[2].data(),
                     in[3].data(), in[4].data(), in[5].data(), in[6].data(),
                     in[7].data(), w1.data(), w2.data(), o_jit.data(), lo,
                     hi, n, accumulate);
      ASSERT_EQ(o_jit, o_sc) << (c == kResid ? "resid" : "psinv")
                             << " acc=" << accumulate;
    }
  }
}

TEST_F(BackendJit, FoldsMatchPortableExactlyAndScalarToTol) {
  std::mt19937_64 rng(305);
  const Backend& sc = detail::scalar_backend();
  const Backend& po = detail::portable_backend();
  const Backend& be = backend_for(BackendKind::kJit);
  for (const extent_t n : kJitLengths) {
    for (int round = 0; round < kJitRounds; ++round) {
      const auto p = random_row(rng, static_cast<std::size_t>(n));
      const double acc0 = round * 0.013;
      const double ss = be.sum_sq_row(acc0, p.data(), 0, n);
      // Generated folds replicate the portable 4-lane shape bit for bit.
      ASSERT_EQ(ss, po.sum_sq_row(acc0, p.data(), 0, n)) << "n=" << n;
      const double ss_sc = sc.sum_sq_row(acc0, p.data(), 0, n);
      ASSERT_NEAR(ss, ss_sc, 1e-12 * std::max(1.0, std::fabs(ss_sc)))
          << "n=" << n;
      ASSERT_EQ(be.max_abs_row(acc0, p.data(), 0, n),
                sc.max_abs_row(acc0, p.data(), 0, n))
          << "n=" << n;
    }
  }
}

TEST_F(BackendJit, ShortRowsFallBackToSimdAndTally) {
  const Backend& be = backend_for(BackendKind::kJit);
  const Backend& sc = detail::scalar_backend();
  std::mt19937_64 rng(307);
  const extent_t n = 8;  // below the dispatch cutoff
  const auto a = random_row(rng, static_cast<std::size_t>(n));
  std::vector<double> o_sc = a, o_jit = a;
  reset_stats();
  sc.add_into_row(a.data(), o_sc.data(), 0, n);
  be.add_into_row(a.data(), o_jit.data(), 0, n);
  EXPECT_EQ(o_jit, o_sc);
  EXPECT_EQ(stats().jit_kernel_calls, 0u);
  EXPECT_GT(stats().jit_fallback_calls, 0u);
}

TEST_F(BackendJit, DiskCachePersistsAndRehydratesWithoutRecompiling) {
  char tmpl[] = "/tmp/sacpp_jit_cache_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  ::setenv("SACPP_JIT_CACHE_DIR", dir, 1);
  jit::testing::reset();

  std::mt19937_64 rng(309);
  const extent_t n = 64;
  const auto a = random_row(rng, static_cast<std::size_t>(n));
  std::vector<double> o(static_cast<std::size_t>(n), 1.0);
  const Backend& be = backend_for(BackendKind::kJit);

  reset_stats();
  be.add_into_row(a.data(), o.data(), 0, n);
  EXPECT_GT(stats().jit_compiles, 0u);
  EXPECT_GT(stats().jit_kernel_calls, 0u);

  // The kernel must have landed on disk under its deterministic name.
  std::string found;
  {
    const std::string cmd =
        std::string("ls ") + dir + "/sacpp_jit_v1_*.so 2>/dev/null";
    FILE* ls = ::popen(cmd.c_str(), "r");
    ASSERT_NE(ls, nullptr);
    char buf[512];
    if (std::fgets(buf, sizeof buf, ls) != nullptr) found = buf;
    ::pclose(ls);
  }
  EXPECT_FALSE(found.empty()) << "no cached .so in " << dir;

  // Drop the in-memory table: the same key must rehydrate from disk —
  // counted as a disk hit, with no fresh compile.
  jit::testing::reset();
  reset_stats();
  be.add_into_row(a.data(), o.data(), 0, n);
  EXPECT_EQ(stats().jit_compiles, 0u);
  EXPECT_GT(stats().jit_disk_hits, 0u);
  EXPECT_GT(stats().jit_kernel_calls, 0u);
}

TEST_F(BackendJit, MissingCompilerDegradesToSimdWithIdenticalResults) {
  ::setenv("SACPP_JIT_CC", "/nonexistent/compiler", 1);
  jit::testing::reset();

  std::mt19937_64 rng(311);
  const extent_t n = 64;
  const auto a = random_row(rng, static_cast<std::size_t>(n));
  const auto base = random_row(rng, static_cast<std::size_t>(n));
  std::vector<double> o_jit = base, o_sc = base;
  const Backend& be = backend_for(BackendKind::kJit);
  const Backend& sc = detail::scalar_backend();

  reset_stats();
  be.add_into_row(a.data(), o_jit.data(), 0, n);
  sc.add_into_row(a.data(), o_sc.data(), 0, n);
  EXPECT_EQ(o_jit, o_sc);  // fallback keeps the bitwise contract
  EXPECT_GT(stats().jit_compile_fails, 0u);
  EXPECT_EQ(stats().jit_kernel_calls, 0u);
  EXPECT_GT(stats().jit_fallback_calls, 0u);
  EXPECT_FALSE(jit::available());

  // Degradation is per-process state, re-armed by reset: with the override
  // gone the same key compiles and serves.
  ::unsetenv("SACPP_JIT_CC");
  jit::testing::reset();
  reset_stats();
  std::vector<double> o2 = base;
  be.add_into_row(a.data(), o2.data(), 0, n);
  EXPECT_EQ(o2, o_sc);
  EXPECT_GT(stats().jit_kernel_calls, 0u);
  EXPECT_TRUE(jit::available());
}

TEST(BackendStats, SimdRowTallyCountsVectorizedRowsOnly) {
  const Shape shp{20, 20, 20};
  auto a = random_array(shp, 89);
  {
    SacConfig cfg = config();
    cfg.stencil_mode = StencilMode::kPlanes;
    cfg.stencil_planes_cutover = 0;
    cfg.backend = BackendKind::kScalar;
    ScopedConfig guard(cfg);
    reset_stats();
    (void)relax_kernel(a, kTestCoeffs, StencilMode::kPlanes);
    EXPECT_EQ(stats().backend_simd_rows, 0u);
  }
  {
    SacConfig cfg = config();
    cfg.stencil_mode = StencilMode::kPlanes;
    cfg.stencil_planes_cutover = 0;
    cfg.backend = BackendKind::kSimd;
    ScopedConfig guard(cfg);
    reset_stats();
    (void)relax_kernel(a, kTestCoeffs, StencilMode::kPlanes);
    EXPECT_GT(stats().backend_simd_rows, 0u);
  }
}

}  // namespace
}  // namespace sacpp::sac
