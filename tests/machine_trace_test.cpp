// Trace construction: the per-iteration region sequences must reflect the
// V-cycle geometry and the per-implementation execution properties.

#include <gtest/gtest.h>

#include <cmath>

#include "sacpp/machine/trace.hpp"

namespace sacpp::machine {
namespace {

const mg::MgSpec kSpecS = mg::MgSpec::for_class(mg::MgClass::S);

TEST(Trace, LowLevelRegionCountMatchesSchedule) {
  const Trace t = build_trace(mg::Variant::kFortran, kSpecS);
  // 5 levels: 4 rprj3+comm3 down, bottom zero+psinv+comm3, 4 up-legs
  // (3 with zero), final resid+comm3.
  int rprj3 = 0, resid = 0, psinv = 0, interp = 0;
  for (const auto& r : t.regions) {
    rprj3 += r.op == Op::kRprj3;
    resid += r.op == Op::kResid;
    psinv += r.op == Op::kPsinv;
    interp += r.op == Op::kInterp;
  }
  EXPECT_EQ(rprj3, 4);
  EXPECT_EQ(interp, 4);
  EXPECT_EQ(resid, 5);  // 4 up-leg + 1 final
  EXPECT_EQ(psinv, 5);  // bottom + 4 up-leg
}

TEST(Trace, FlopsDominatedByFinestLevel) {
  const Trace t = build_trace(mg::Variant::kFortran, kSpecS);
  double finest = 0.0;
  for (const auto& r : t.regions) {
    if (r.level == kSpecS.levels()) finest += r.flops;
  }
  EXPECT_GT(finest / t.total_flops(), 0.75);
}

TEST(Trace, OpenMpParallelisesEverySweep) {
  const Trace t = build_trace(mg::Variant::kOpenMp, kSpecS);
  for (const auto& r : t.regions) {
    if (r.op == Op::kComm3) continue;  // ghost exchange stays serial
    EXPECT_TRUE(r.parallel) << op_name(r.op) << " level " << r.level;
  }
  EXPECT_GT(t.parallel_flop_fraction(), 0.95);
}

TEST(Trace, AutoParallelisedFortranHasPartialCoverage) {
  const Trace t = build_trace(mg::Variant::kFortran, kSpecS);
  const double f = t.parallel_flop_fraction();
  EXPECT_GT(f, 0.5);
  EXPECT_LT(f, 0.95);  // rprj3/interp are not auto-parallelised
  for (const auto& r : t.regions) {
    if (r.op == Op::kRprj3 || r.op == Op::kInterp) {
      EXPECT_FALSE(r.parallel);
    }
  }
}

TEST(Trace, LowLevelImplementationsHaveNoAllocations) {
  for (auto v : {mg::Variant::kFortran, mg::Variant::kOpenMp}) {
    EXPECT_EQ(build_trace(v, kSpecS).total_alloc_events(), 0)
        << "static memory layout must not allocate";
  }
}

TEST(Trace, SacHasAllocationsOnEveryLevel) {
  const Trace t = build_trace(mg::Variant::kSac, kSpecS);
  EXPECT_GT(t.total_alloc_events(), 0);
  for (int k = 1; k <= kSpecS.levels(); ++k) {
    int allocs = 0;
    for (const auto& r : t.regions) {
      if (r.level == k) allocs += r.alloc_events;
    }
    EXPECT_GT(allocs, 0) << "level " << k;
  }
}

TEST(Trace, SacThresholdSerialisesSmallGrids) {
  TraceOptions opts;
  opts.sac_seq_threshold_elems = 4096.0;  // 16^3
  const Trace t = build_trace(mg::Variant::kSac, kSpecS, opts);
  for (const auto& r : t.regions) {
    if (r.elems < opts.sac_seq_threshold_elems) {
      EXPECT_FALSE(r.parallel)
          << op_name(r.op) << " with " << r.elems << " elems";
    } else {
      EXPECT_TRUE(r.parallel);
    }
  }
}

TEST(Trace, UnfoldedSacDoesMoreWorkThanFolded) {
  TraceOptions folded, unfolded;
  folded.sac_folding = true;
  unfolded.sac_folding = false;
  const Trace tf = build_trace(mg::Variant::kSac, kSpecS, folded);
  const Trace tu = build_trace(mg::Variant::kSac, kSpecS, unfolded);
  EXPECT_LT(tf.total_bytes(), tu.total_bytes());
  EXPECT_LE(tf.regions.size(), tu.regions.size());
  EXPECT_LT(tf.total_alloc_events(), tu.total_alloc_events());
}

TEST(Trace, SacMovesMoreMemoryThanFortran) {
  const Trace sac = build_trace(mg::Variant::kSac, kSpecS);
  const Trace f77 = build_trace(mg::Variant::kFortran, kSpecS);
  EXPECT_GT(sac.total_bytes(), f77.total_bytes());
}

TEST(Trace, WorkScalesWithGridVolume) {
  const Trace small = build_trace(mg::Variant::kFortran,
                                  mg::MgSpec::custom(32, 1));
  const Trace large = build_trace(mg::Variant::kFortran,
                                  mg::MgSpec::custom(64, 1));
  const double ratio = large.total_flops() / small.total_flops();
  EXPECT_NEAR(ratio, 8.0, 0.8);  // one refinement octuples the volume
}

TEST(Trace, PlanesOptionScalesOnlyLargeRelaxationSweeps) {
  TraceOptions opts;
  const Trace base = build_trace(mg::Variant::kSac, kSpecS, opts);
  opts.sac_planes = true;
  opts.sac_planes_cutover = 18.0;
  const Trace planes = build_trace(mg::Variant::kSac, kSpecS, opts);
  ASSERT_EQ(base.regions.size(), planes.regions.size());
  const double scale = opts.sac_planes_flop_scale;
  const double ghost = 2.0;  // kSac carries the artificial boundary layer
  for (std::size_t i = 0; i < base.regions.size(); ++i) {
    const Region& b = base.regions[i];
    const Region& p = planes.regions[i];
    const bool relax = b.op == Op::kResid || b.op == Op::kPsinv;
    const bool above =
        std::pow(2.0, b.level) + ghost >= opts.sac_planes_cutover;
    if (relax && above) {
      EXPECT_NEAR(p.flops, b.flops * scale, 1e-9) << op_name(b.op);
    } else {
      EXPECT_EQ(p.flops, b.flops) << op_name(b.op) << " level " << b.level;
    }
  }
  // The option genuinely engages somewhere and leaves the bottom alone.
  EXPECT_LT(planes.total_flops(), base.total_flops());
}

TEST(Trace, PlanesOptionOffByDefaultKeepsCalibratedTrace) {
  const Trace a = build_trace(mg::Variant::kSac, kSpecS);
  TraceOptions opts;  // defaults: sac_planes = false
  const Trace b = build_trace(mg::Variant::kSac, kSpecS, opts);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(a.regions[i].flops, b.regions[i].flops);
  }
}

TEST(Trace, OpNamesComplete) {
  EXPECT_STREQ(op_name(Op::kResid), "resid");
  EXPECT_STREQ(op_name(Op::kPsinv), "psinv");
  EXPECT_STREQ(op_name(Op::kRprj3), "rprj3");
  EXPECT_STREQ(op_name(Op::kInterp), "interp");
  EXPECT_STREQ(op_name(Op::kComm3), "comm3");
  EXPECT_STREQ(op_name(Op::kVecOp), "vecop");
  EXPECT_STREQ(op_name(Op::kZero), "zero");
}

}  // namespace
}  // namespace sacpp::machine
