// The ghost-free direct-periodic MG (the paper's future-work item): the
// periodic stencil must equal border-setup + fixed-boundary relaxation, and
// the whole direct V-cycle must reproduce the ghost-layer implementations'
// norms on the benchmark input.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "sacpp/mg/mg_ref.hpp"
#include "sacpp/mg/mg_sac.hpp"
#include "sacpp/mg/mg_sac_direct.hpp"
#include "sacpp/mg/problem.hpp"
#include "sacpp/sac/periodic_stencil.hpp"

namespace sacpp::mg {
namespace {

using sac::Array;

Array<double> random_pure(const Shape& shp, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  return sac::with_genarray<double>(shp,
                                    [&](const IndexVec&) { return dist(rng); });
}

// Extend a pure 2^k cube with ghost layers (inverse of strip_ghosts).
Array<double> add_ghosts(const Array<double>& pure) {
  IndexVec ext(pure.rank());
  for (std::size_t d = 0; d < pure.rank(); ++d) {
    ext[d] = pure.shape().extent(d) + 2;
  }
  auto e = sac::embed(ext, uniform_vec(pure.rank(), 1), pure);
  return MgSac::setup_periodic_border(std::move(e));
}

constexpr sac::StencilCoeffs kC{{-0.5, 0.125, 0.0625, 0.03125}};

class PeriodicRank : public ::testing::TestWithParam<int> {};

TEST_P(PeriodicRank, PeriodicRelaxEqualsBorderSetupPlusFixedRelax) {
  const int rank = GetParam();
  const Shape shp = cube_shape(static_cast<std::size_t>(rank), 8);
  auto pure = random_pure(shp, 1);
  // ghost-free path
  auto direct = sac::relax_kernel_periodic(pure, kC);
  // ghost-layer path: extend, border-setup, fixed relax, strip
  auto viaGhosts =
      MgSacDirect::strip_ghosts(sac::relax_kernel(add_ghosts(pure), kC));
  ASSERT_EQ(direct.shape(), viaGhosts.shape());
  for (extent_t i = 0; i < direct.elem_count(); ++i) {
    ASSERT_NEAR(direct.at_linear(i), viaGhosts.at_linear(i), 1e-14) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, PeriodicRank, ::testing::Values(1, 2, 3));

TEST(PeriodicStencil, InteriorIsBitwiseEqualToFixedStencil) {
  const Shape shp{8, 8, 8};
  auto pure = random_pure(shp, 2);
  sac::PeriodicStencilExpr per(pure, kC);
  sac::StencilExpr fixed(pure, kC);
  for (extent_t i = 1; i < 7; ++i) {
    for (extent_t j = 1; j < 7; ++j) {
      for (extent_t k = 1; k < 7; ++k) {
        ASSERT_EQ(per(i, j, k), fixed(i, j, k));
      }
    }
  }
}

TEST(PeriodicStencil, WrapsAtAllBoundaries) {
  // A point source at the origin must leak to the opposite corners.
  const Shape shp{4, 4, 4};
  auto src = sac::with_genarray<double>(shp, [](const IndexVec& iv) {
    return (iv[0] == 0 && iv[1] == 0 && iv[2] == 0) ? 1.0 : 0.0;
  });
  auto r = sac::relax_kernel_periodic(src, kC);
  EXPECT_DOUBLE_EQ(r(0, 0, 0), kC[0]);
  EXPECT_DOUBLE_EQ(r(3, 0, 0), kC[1]);  // face via wrap
  EXPECT_DOUBLE_EQ(r(3, 3, 0), kC[2]);  // edge via wrap
  EXPECT_DOUBLE_EQ(r(3, 3, 3), kC[3]);  // corner via wrap
  EXPECT_DOUBLE_EQ(r(2, 0, 0), 0.0);
}

TEST(PeriodicStencil, ConstantFieldStaysUniform) {
  const Shape shp{4, 4, 4};
  auto c = sac::genarray_const(shp, 2.0);
  auto r = sac::relax_kernel_periodic(c, kC);
  const double factor =
      kC[0] + 6.0 * kC[1] + 12.0 * kC[2] + 8.0 * kC[3];
  for (extent_t i = 0; i < r.elem_count(); ++i) {
    ASSERT_NEAR(r.at_linear(i), factor * 2.0, 1e-14);
  }
}

TEST(PeriodicStencil, MinimumExtentEnforced) {
  auto tiny = sac::genarray_const(Shape{1, 4, 4}, 1.0);
  EXPECT_THROW(sac::relax_kernel_periodic(tiny, kC), ContractError);
}

// -- the direct V-cycle against the ghost-layer implementations --------------

class DirectVsGhost : public ::testing::TestWithParam<std::pair<extent_t, int>> {
};

TEST_P(DirectVsGhost, IterationNormsAgreeWithReference) {
  const auto [nx, nit] = GetParam();
  const MgSpec spec = MgSpec::custom(nx, nit);

  // reference: the Fortran-77 port on the standard extended input
  MgRef ref(spec);
  ref.setup_default_rhs();
  ref.zero_u();
  ref.initial_resid();

  // direct: the same physical input without ghosts
  const extent_t n = nx + 2;
  std::vector<double> v_ext(static_cast<std::size_t>(n * n * n));
  fill_rhs(v_ext, nx);
  const Shape ext_shape{n, n, n};
  auto v_extended = sac::with_genarray<double>(
      ext_shape, [&](const IndexVec& iv) {
        return v_ext[static_cast<std::size_t>(ext_shape.linearize(iv))];
      });
  auto v = MgSacDirect::strip_ghosts(v_extended);

  MgSacDirect direct(spec);
  auto u = sac::genarray_const(v.shape(), 0.0);
  for (int it = 0; it < nit; ++it) {
    ref.iterate(1);
    auto r = direct.residual(v, u);
    u = std::move(u) + direct.vcycle(r);
    const double dn = direct.residual_norm(v, u);
    const double rn = ref.residual_norm();
    ASSERT_NEAR(dn, rn, rn * 1e-11 + 1e-18) << "iteration " << it;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DirectVsGhost,
                         ::testing::Values(std::pair<extent_t, int>{8, 2},
                                           std::pair<extent_t, int>{16, 3},
                                           std::pair<extent_t, int>{32, 4}));

TEST(Direct, ClassSVerificationValue) {
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  const extent_t n = spec.nx + 2;
  std::vector<double> v_ext(static_cast<std::size_t>(n * n * n));
  fill_rhs(v_ext, spec.nx);
  const Shape ext_shape{n, n, n};
  auto v = MgSacDirect::strip_ghosts(sac::with_genarray<double>(
      ext_shape, [&](const IndexVec& iv) {
        return v_ext[static_cast<std::size_t>(ext_shape.linearize(iv))];
      }));
  MgSacDirect direct(spec);
  auto u = direct.mgrid(v, spec.nit);
  EXPECT_NEAR(direct.residual_norm(v, u), 0.530770700573e-04, 1e-14);
}

TEST(Direct, FoldingOnOffAgree) {
  const MgSpec spec = MgSpec::custom(16, 2);
  const Shape shp = cube_shape(3, 16);
  auto v = random_pure(shp, 7);
  MgSacDirect direct(spec);
  double norms[2];
  int i = 0;
  for (bool folding : {false, true}) {
    sac::SacConfig cfg = sac::config();
    cfg.folding = folding;
    sac::ScopedConfig guard(cfg);
    auto u = direct.mgrid(v, 2);
    norms[i++] = direct.residual_norm(v, u);
  }
  EXPECT_NEAR(norms[0], norms[1], std::abs(norms[0]) * 1e-12);
}

TEST(Direct, RankGenericResidualReduction) {
  for (int rank : {1, 2}) {
    const MgSpec spec = MgSpec::custom(16, 2);
    MgSacDirect direct(spec);
    const Shape shp = cube_shape(static_cast<std::size_t>(rank), 16);
    auto v = sac::with_genarray<double>(shp, [](const IndexVec& iv) -> double {
      if (iv[0] == 2) return 1.0;
      if (iv[0] == 9) return -1.0;
      return 0.0;
    });
    auto u0 = sac::genarray_const(shp, 0.0);
    const double n0 = direct.residual_norm(v, u0);
    auto u = direct.mgrid(v, 2);
    EXPECT_LT(direct.residual_norm(v, u), n0 * 0.25) << "rank " << rank;
  }
}

TEST(Direct, NonPowerOfTwoRejected) {
  MgSacDirect direct(MgSpec::custom(8, 1));
  auto v = sac::genarray_const(Shape{9, 9, 9}, 0.0);
  EXPECT_THROW(direct.mgrid(v, 1), ContractError);
}

// -- the red-black (multi-colour) Gauss-Seidel extension ---------------------

TEST(RbGs, SweepReducesResidualOfPoissonEquation) {
  const MgSpec spec = MgSpec::custom(16, 1);
  MgSacDirect direct(spec);
  const Shape shp = cube_shape(3, 16);
  auto v = random_pure(shp, 21);
  // remove the mean so the periodic problem is consistent
  const double mean = sac::sum(v) / static_cast<double>(v.elem_count());
  v = v - mean;
  auto u = sac::genarray_const(shp, 0.0);
  double prev = direct.residual_norm(v, u);
  for (int sweep = 0; sweep < 5; ++sweep) {
    u = direct.smooth_rbgs(std::move(u), v);
    const double now = direct.residual_norm(v, u);
    ASSERT_LT(now, prev) << "sweep " << sweep;
    prev = now;
  }
}

TEST(RbGs, DeterministicUnderMultithreading) {
  const MgSpec spec = MgSpec::custom(16, 1);
  MgSacDirect direct(spec);
  const Shape shp = cube_shape(3, 16);
  auto v = random_pure(shp, 22);
  auto seq = direct.smooth_rbgs(sac::genarray_const(shp, 0.0), v);
  sac::SacConfig cfg = sac::config();
  cfg.mt_enabled = true;
  cfg.mt_threads = 4;
  cfg.mt_threshold = 1;
  sac::ScopedConfig guard(cfg);
  auto par = direct.smooth_rbgs(sac::genarray_const(shp, 0.0), v);
  sac::shutdown_runtime();
  for (extent_t i = 0; i < seq.elem_count(); ++i) {
    // per-axis-parity colours are mutually non-adjacent, so parallel
    // execution within a colour is exact
    ASSERT_DOUBLE_EQ(par.at_linear(i), seq.at_linear(i)) << i;
  }
}

TEST(RbGs, InPlaceWhenUnique) {
  MgSacDirect direct(MgSpec::custom(8, 1));
  auto v = random_pure(cube_shape(3, 8), 23);
  auto u = sac::genarray_const(cube_shape(3, 8), 0.0);
  const double* p = u.data();
  u = direct.smooth_rbgs(std::move(u), v);
  EXPECT_EQ(u.data(), p);
}

TEST(RbGs, VCycleContractsAtLeastAsFastAsBenchmarkSmoother) {
  const MgSpec spec = MgSpec::custom(32, 1);
  MgSacDirect direct(spec);
  const extent_t n = spec.nx + 2;
  std::vector<double> v_ext(static_cast<std::size_t>(n * n * n));
  fill_rhs(v_ext, spec.nx);
  const Shape ext_shape{n, n, n};
  auto v = MgSacDirect::strip_ghosts(sac::with_genarray<double>(
      ext_shape, [&](const IndexVec& iv) {
        return v_ext[static_cast<std::size_t>(ext_shape.linearize(iv))];
      }));
  auto u0 = sac::genarray_const(v.shape(), 0.0);
  const double norm0 = direct.residual_norm(v, u0);

  auto u_npb = direct.mgrid(v, 2);
  auto u_rb = direct.mgrid_rbgs(v, 2);
  const double c_npb = norm0 / direct.residual_norm(v, u_npb);
  const double c_rb = norm0 / direct.residual_norm(v, u_rb);
  EXPECT_GT(c_rb, c_npb * 0.8)
      << "RB-GS V-cycle should contract comparably: " << c_rb << " vs "
      << c_npb;
  EXPECT_GT(c_rb, 10.0);
}

TEST(RbGs, WorksInRank2) {
  const MgSpec spec = MgSpec::custom(16, 1);
  MgSacDirect direct(spec);
  const Shape shp = cube_shape(2, 16);
  auto v = random_pure(shp, 24);
  v = v - sac::sum(v) / static_cast<double>(v.elem_count());
  auto u = direct.smooth_rbgs(sac::genarray_const(shp, 0.0), v);
  EXPECT_LT(direct.residual_norm(v, u),
            direct.residual_norm(v, sac::genarray_const(shp, 0.0)));
}

TEST(Direct, StripGhostsInverseOfAddGhosts) {
  auto pure = random_pure(Shape{6, 6, 6}, 9);
  auto round = MgSacDirect::strip_ghosts(add_ghosts(pure));
  for (extent_t i = 0; i < pure.elem_count(); ++i) {
    ASSERT_DOUBLE_EQ(round.at_linear(i), pure.at_linear(i));
  }
}

}  // namespace
}  // namespace sacpp::mg
