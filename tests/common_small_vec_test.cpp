// SmallVec: inline storage, heap spill, value semantics.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sacpp/common/small_vec.hpp"

namespace sacpp {
namespace {

TEST(SmallVec, DefaultIsEmpty) {
  SmallVec<int> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(SmallVec, InitializerList) {
  SmallVec<int> v{1, 2, 3};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 3);
}

TEST(SmallVec, FillConstructor) {
  SmallVec<int> v(5, 7);
  ASSERT_EQ(v.size(), 5u);
  for (int x : v) EXPECT_EQ(x, 7);
}

TEST(SmallVec, IteratorRangeConstructor) {
  std::vector<int> src{4, 5, 6, 7, 8, 9};
  SmallVec<int> v(src.begin(), src.end());
  ASSERT_EQ(v.size(), src.size());
  EXPECT_TRUE(std::equal(v.begin(), v.end(), src.begin()));
}

TEST(SmallVec, PushBackSpillsToHeapBeyondInlineCapacity) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVec, CopyIsDeep) {
  SmallVec<int> a{1, 2, 3, 4, 5, 6};  // spilled
  SmallVec<int> b = a;
  b[0] = 99;
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 99);
}

TEST(SmallVec, CopyAssignReplacesContents) {
  SmallVec<int> a{1, 2, 3};
  SmallVec<int> b{9, 9, 9, 9, 9, 9, 9};
  b = a;
  EXPECT_EQ(b, a);
}

TEST(SmallVec, SelfAssignmentIsNoop) {
  SmallVec<int> a{1, 2, 3, 4, 5};
  auto* p = &a;
  a = *p;
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a[4], 5);
}

TEST(SmallVec, MoveStealsHeapBuffer) {
  SmallVec<int, 2> a;
  for (int i = 0; i < 10; ++i) a.push_back(i);
  const int* data = a.data();
  SmallVec<int, 2> b = std::move(a);
  EXPECT_EQ(b.data(), data);  // heap buffer moved, not copied
  EXPECT_EQ(b.size(), 10u);
  EXPECT_TRUE(a.empty());
}

TEST(SmallVec, MoveOfInlineCopiesElements) {
  SmallVec<int, 4> a{1, 2};
  SmallVec<int, 4> b = std::move(a);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[1], 2);
}

TEST(SmallVec, ResizeGrowsWithFill) {
  SmallVec<int> v{1};
  v.resize(4, 9);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[3], 9);
}

TEST(SmallVec, ResizeShrinkKeepsPrefix) {
  SmallVec<int> v{1, 2, 3, 4};
  v.resize(2);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], 2);
}

TEST(SmallVec, PopBack) {
  SmallVec<int> v{1, 2};
  v.pop_back();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.back(), 1);
}

TEST(SmallVec, EqualityComparesElements) {
  SmallVec<int> a{1, 2, 3};
  SmallVec<int> b{1, 2, 3};
  SmallVec<int> c{1, 2, 4};
  SmallVec<int> d{1, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(SmallVec, OutOfRangeIndexThrowsInDebug) {
#ifndef NDEBUG
  SmallVec<int> v{1};
  EXPECT_THROW((void)v[1], ContractError);
#else
  GTEST_SKIP() << "bounds assertions compiled out in release";
#endif
}

TEST(SmallVec, ReserveKeepsSizeAndContents) {
  SmallVec<int> v{1, 2, 3};
  v.reserve(100);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_GE(v.capacity(), 100u);
  EXPECT_EQ(v[2], 3);
}

}  // namespace
}  // namespace sacpp
