// The SAC array library (paper Fig. 10 and friends): structural and
// element-wise operations with their algebraic identities, property-swept
// across ranks, shapes and strides.

#include <gtest/gtest.h>

#include <numeric>

#include "sacpp/sac/sac.hpp"

namespace sacpp::sac {
namespace {

Array<double> sequential(const Shape& shp) {
  return with_genarray<double>(shp, [&shp](const IndexVec& iv) {
    return static_cast<double>(shp.linearize(iv)) + 1.0;
  });
}

void expect_equal(const Array<double>& a, const Array<double>& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (extent_t i = 0; i < a.elem_count(); ++i) {
    ASSERT_DOUBLE_EQ(a.at_linear(i), b.at_linear(i)) << "at " << i;
  }
}

TEST(GenarrayConst, FillsEveryElement) {
  auto a = genarray_const(Shape{3, 3}, 2.5);
  for (extent_t i = 0; i < 9; ++i) EXPECT_DOUBLE_EQ(a.at_linear(i), 2.5);
}

TEST(Iota, ZeroBasedVector) {
  auto v = iota(5);
  for (extent_t i = 0; i < 5; ++i) EXPECT_EQ((v[IndexVec{i}]), i);
}

TEST(ElementWise, AddSubMulDiv) {
  auto a = sequential(Shape{2, 3});
  auto b = genarray_const(Shape{2, 3}, 2.0);
  expect_equal((a + b) - b, a);
  expect_equal((a * b) / b, a);
}

TEST(ElementWise, ScalarForms) {
  auto a = sequential(Shape{4});
  expect_equal(a + 0.0, a);
  expect_equal(a * 1.0, a);
  expect_equal((2.0 * a) / 2.0, a);
  expect_equal(-(-a), a);
  expect_equal((a + 3.0) - 3.0, a);
}

TEST(ElementWise, MoveFormReusesLeftBufferInPlace) {
  auto a = sequential(Shape{4, 4, 4});
  auto b = genarray_const(Shape{4, 4, 4}, 2.0);
  auto expect = a + b;
  const double* p = a.data();
  auto r = std::move(a) + b;
  EXPECT_EQ(r.data(), p);  // buffer stolen, no allocation
  expect_equal(r, expect);
}

TEST(ElementWise, MoveFormOnSharedBufferCopiesFirst) {
  auto a = sequential(Shape{8});
  Array<double> keep = a;  // second owner
  const double* p = a.data();
  auto r = std::move(a) - genarray_const(Shape{8}, 1.0);
  EXPECT_NE(r.data(), p);                 // copy-on-write protected `keep`
  expect_equal(keep, sequential(Shape{8}));  // original value intact
  expect_equal(r, sequential(Shape{8}) - genarray_const(Shape{8}, 1.0));
}

TEST(ElementWise, MoveFormMatchesCopyFormForAllOps) {
  auto a = sequential(Shape{3, 5});
  auto b = sequential(Shape{3, 5}) + 1.0;
  {
    auto copy = a;
    expect_equal(std::move(copy) + b, a + b);
  }
  {
    auto copy = a;
    expect_equal(std::move(copy) - b, a - b);
  }
  {
    auto copy = a;
    expect_equal(std::move(copy) * b, a * b);
  }
}

TEST(ElementWise, MoveFormCountsReuse) {
  reset_stats();
  auto a = genarray_const(Shape{16}, 1.0);
  auto b = genarray_const(Shape{16}, 2.0);
  const auto allocs_before = stats().allocations;
  auto r = std::move(a) + b;
  EXPECT_EQ(stats().allocations, allocs_before);  // no new buffer
  EXPECT_GE(stats().reuses, 1u);
  (void)r;
}

TEST(ElementWise, ShapeMismatchThrows) {
  auto a = genarray_const(Shape{2}, 1.0);
  auto b = genarray_const(Shape{3}, 1.0);
  EXPECT_THROW(a + b, ContractError);
}

TEST(ElementWise, AbsOfNegatedIsIdentityForPositives) {
  auto a = sequential(Shape{5});
  expect_equal(abs(-a), a);
}

TEST(Reductions, SumProdMinMax) {
  auto a = sequential(Shape{4});  // 1 2 3 4
  EXPECT_DOUBLE_EQ(sum(a), 10.0);
  EXPECT_DOUBLE_EQ(prod(a), 24.0);
  EXPECT_DOUBLE_EQ(min_elem(a), 1.0);
  EXPECT_DOUBLE_EQ(max_elem(a), 4.0);
  EXPECT_DOUBLE_EQ(max_abs(-a), 4.0);
  EXPECT_DOUBLE_EQ(dot(a, a), 30.0);
}

TEST(Reductions, SumOfScalarArray) {
  Array<double> s(7.0);
  EXPECT_DOUBLE_EQ(sum(s), 7.0);
}

// -- structural ops: the paper's condense / scatter / embed / take -----------

class StructuralProperty
    : public ::testing::TestWithParam<std::tuple<int, extent_t, extent_t>> {
 protected:
  Shape make_shape() const {
    const auto [rank, base, str] = GetParam();
    IndexVec e;
    for (int d = 0; d < rank; ++d) e.push_back(base * str);
    return Shape(e);
  }
};

TEST_P(StructuralProperty, CondenseAfterScatterIsIdentity) {
  const auto [rank, base, str] = GetParam();
  (void)base;
  const Shape shp = make_shape();
  auto a = sequential(shp);
  expect_equal(condense(str, scatter(str, a)), a);
}

TEST_P(StructuralProperty, ScatterPlacesAndZeroes) {
  const auto [rank, base, str] = GetParam();
  (void)base;
  const Shape shp = make_shape();
  auto a = sequential(shp);
  auto s = scatter(str, a);
  ASSERT_EQ(s.shape().extents(), str * shp.extents());
  double placed = 0.0, total = 0.0;
  for_each_index(s.shape(), [&](const IndexVec& iv) {
    bool on_grid = true;
    for (std::size_t d = 0; d < iv.size(); ++d) {
      if (iv[d] % str != 0) on_grid = false;
    }
    const double v = s[iv];
    total += v;
    if (on_grid) {
      placed += v;
      ASSERT_DOUBLE_EQ(v, a[iv / str]);
    } else {
      ASSERT_DOUBLE_EQ(v, 0.0);
    }
  });
  EXPECT_DOUBLE_EQ(total, placed);
  (void)rank;
}

TEST_P(StructuralProperty, TakeAfterEmbedIsIdentity) {
  const auto [rank, base, str] = GetParam();
  (void)str;
  (void)base;
  const Shape shp = make_shape();
  auto a = sequential(shp);
  auto e = embed(shp.extents() + 2, uniform_vec(shp.rank(), 0), a);
  expect_equal(take(shp.extents(), e), a);
}

TEST_P(StructuralProperty, DropAfterEmbedAtOffsetIsIdentity) {
  const auto [rank, base, str] = GetParam();
  (void)str;
  (void)base;
  const Shape shp = make_shape();
  auto a = sequential(shp);
  const IndexVec pos = uniform_vec(shp.rank(), 2);
  auto e = embed(shp.extents() + 2, pos, a);
  expect_equal(drop(pos, e), a);
}

INSTANTIATE_TEST_SUITE_P(RankShapeStride, StructuralProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values<extent_t>(2, 3),
                                            ::testing::Values<extent_t>(2,
                                                                        3)));

TEST(Condense, SamplesStridedElements) {
  auto a = iota<double>(8);  // 0..7
  auto c = condense(2, a);
  ASSERT_EQ(c.shape(), (Shape{4}));
  for (extent_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ((c[IndexVec{i}]), 2.0 * i);
}

TEST(Embed, ZeroesOutsideAndValidatesFit) {
  auto a = genarray_const(Shape{2}, 5.0);
  auto e = embed({5}, {1}, a);
  EXPECT_DOUBLE_EQ((e[IndexVec{0}]), 0.0);
  EXPECT_DOUBLE_EQ((e[IndexVec{1}]), 5.0);
  EXPECT_DOUBLE_EQ((e[IndexVec{2}]), 5.0);
  EXPECT_DOUBLE_EQ((e[IndexVec{3}]), 0.0);
  EXPECT_THROW(embed({2}, {1}, a), ContractError);
}

TEST(Take, ValidatesExtent) {
  auto a = genarray_const(Shape{3}, 1.0);
  EXPECT_THROW(take({4}, a), ContractError);
}

TEST(ShiftRotate, ShiftFillsWithZero) {
  auto a = iota<double>(4);  // 0 1 2 3
  auto s = shift({1}, a);
  EXPECT_DOUBLE_EQ((s[IndexVec{0}]), 0.0);
  EXPECT_DOUBLE_EQ((s[IndexVec{1}]), 0.0);
  EXPECT_DOUBLE_EQ((s[IndexVec{3}]), 2.0);
}

TEST(ShiftRotate, RotateIsCyclic) {
  auto a = iota<double>(5);
  auto r = rotate({2}, a);
  EXPECT_DOUBLE_EQ((r[IndexVec{0}]), 3.0);
  EXPECT_DOUBLE_EQ((r[IndexVec{1}]), 4.0);
  EXPECT_DOUBLE_EQ((r[IndexVec{2}]), 0.0);
  // rotating by the extent is the identity
  expect_equal(rotate({5}, a), a);
  // rotate composes additively
  expect_equal(rotate({2}, rotate({3}, a)), a);
}

TEST(ShiftRotate, NegativeRotation) {
  auto a = iota<double>(4);
  expect_equal(rotate({-1}, rotate({1}, a)), a);
}

TEST(ReverseTranspose, ReverseIsInvolution) {
  auto a = sequential(Shape{3, 4});
  expect_equal(reverse(0, reverse(0, a)), a);
  expect_equal(reverse(1, reverse(1, a)), a);
}

TEST(ReverseTranspose, TransposeSwapsAxes) {
  auto a = sequential(Shape{2, 3});
  auto t = transpose(a);
  ASSERT_EQ(t.shape(), (Shape{3, 2}));
  for_each_index(a.shape(), [&](const IndexVec& iv) {
    ASSERT_DOUBLE_EQ((t[IndexVec{iv[1], iv[0]}]), a[iv]);
  });
  expect_equal(transpose(t), a);
}

TEST(Reshape, PreservesRowMajorSequence) {
  auto a = sequential(Shape{2, 6});
  auto b = reshape(Shape{3, 4}, a);
  for (extent_t i = 0; i < 12; ++i) {
    ASSERT_DOUBLE_EQ(b.at_linear(i), a.at_linear(i));
  }
  EXPECT_THROW(reshape(Shape{5}, a), ContractError);
}

TEST(Tile, PeriodicReplication) {
  auto a = iota<double>(3);
  auto t = tile(a, 2);
  ASSERT_EQ(t.shape(), (Shape{6}));
  for (extent_t i = 0; i < 6; ++i) {
    ASSERT_DOUBLE_EQ((t[IndexVec{i}]), static_cast<double>(i % 3));
  }
}

TEST(MapZip, CustomFunctions) {
  auto a = sequential(Shape{4});
  auto sq = map(a, [](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(sum(sq), 1.0 + 4.0 + 9.0 + 16.0);
  auto m = zip(a, a, [](double x, double y) { return x > y ? x : y; });
  expect_equal(m, a);
}

}  // namespace
}  // namespace sacpp::sac
