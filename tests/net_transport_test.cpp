// Tests for the TCP transport (src/net/tcp_transport.hpp): rendezvous,
// tagged FIFO matching, async buffered sends under backpressure, wire stats,
// peer-death diagnostics, handshake negatives, and the frame-layer session
// monitoring (docs/net.md).
//
// Each test plays several ranks of one world inside this process: one
// TcpTransport per rank, each on its own thread, talking over loopback
// exactly as separate OS processes would (the transport holds no process
// globals beyond the metrics registry).

#include "sacpp/net/tcp_transport.hpp"

#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sacpp/check/session.hpp"
#include "sacpp/common/error.hpp"
#include "sacpp/net/session.hpp"
#include "sacpp/sac/config.hpp"

namespace sacpp::net {
namespace {

// std::span has no initializer_list constructor in C++20; tests mostly send
// tiny literal payloads, so route them through a vector.
void send(TcpTransport& t, int dest, int tag,
          std::initializer_list<double> vals) {
  const std::vector<double> v(vals);
  t.send(dest, tag, v);
}

// Pre-bind one loopback listener per rank (the mg_cluster trick: the OS
// picks the ports, nobody races) and hand each rank its fd.
struct World {
  std::vector<int> fds;
  std::vector<std::string> hosts;

  explicit World(int ranks) {
    for (int r = 0; r < ranks; ++r) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      EXPECT_GE(fd, 0);
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = 0;
      EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
                0);
      EXPECT_EQ(::listen(fd, 16), 0);
      socklen_t len = sizeof addr;
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
      fds.push_back(fd);
      hosts.push_back("127.0.0.1:" + std::to_string(ntohs(addr.sin_port)));
    }
  }

  TcpOptions options(int rank) const {
    TcpOptions opt;
    opt.rank = rank;
    opt.hosts = hosts;
    opt.listen_fd = fds[static_cast<std::size_t>(rank)];
    return opt;
  }

  // Run `fn(rank, transport)` on one thread per rank, with every rank's
  // transport constructed concurrently (the rendezvous requires it).
  template <typename Fn>
  void run(Fn fn) {
    const int ranks = static_cast<int>(hosts.size());
    std::vector<std::thread> threads;
    for (int r = 0; r < ranks; ++r) {
      threads.emplace_back([this, r, &fn] {
        TcpTransport transport(options(r));
        fn(r, transport);
      });
    }
    for (std::thread& t : threads) t.join();
  }
};

TEST(NetTransport, TwoRankRoundTrip) {
  World w(2);
  w.run([](int rank, TcpTransport& t) {
    if (rank == 0) {
      const std::vector<double> out = {1.5, -2.25, 1e300};
      t.send(1, 7, out);
      std::vector<double> back(3);
      t.recv(1, 8, back);
      EXPECT_EQ(back, std::vector<double>({3.0, 2.0, 1.0}));
    } else {
      std::vector<double> in(3);
      t.recv(0, 7, in);
      EXPECT_EQ(in, std::vector<double>({1.5, -2.25, 1e300}));
      send(t, 0, 8, {3.0, 2.0, 1.0});
    }
  });
}

TEST(NetTransport, SameTagIsFifoDifferentTagsMatchOutOfOrder) {
  World w(2);
  w.run([](int rank, TcpTransport& t) {
    if (rank == 0) {
      send(t, 1, 5, {1.0});
      send(t, 1, 5, {2.0});
      send(t, 1, 6, {3.0});
    } else {
      std::vector<double> v(1);
      t.recv(0, 6, v);  // posted last, matched first
      EXPECT_EQ(v[0], 3.0);
      t.recv(0, 5, v);
      EXPECT_EQ(v[0], 1.0) << "same (source, tag) must stay FIFO";
      t.recv(0, 5, v);
      EXPECT_EQ(v[0], 2.0);
    }
  });
}

TEST(NetTransport, TryRecvPollsWithoutBlocking) {
  World w(2);
  w.run([](int rank, TcpTransport& t) {
    if (rank == 0) {
      std::vector<double> sync(1);
      t.recv(1, 1, sync);  // rank 1 is ready and polling
      send(t, 1, 2, {42.0});
      t.recv(1, 3, sync);  // hold the world open until rank 1 is done
    } else {
      std::vector<double> v(1);
      EXPECT_FALSE(t.try_recv(0, 2, v)) << "nothing sent yet";
      send(t, 0, 1, {0.0});
      int spins = 0;
      while (!t.try_recv(0, 2, v)) {
        ++spins;
        ASSERT_LT(spins, 1000000) << "try_recv never saw the frame";
        std::this_thread::yield();
      }
      EXPECT_EQ(v[0], 42.0);
      send(t, 0, 3, {0.0});
    }
  });
}

TEST(NetTransport, FourRankRingExchange) {
  World w(4);
  w.run([](int rank, TcpTransport& t) {
    const int ranks = 4;
    const int next = (rank + 1) % ranks;
    const int prev = (rank + ranks - 1) % ranks;
    // Everyone sends before anyone receives: only a genuinely buffered
    // (asynchronous) send lets the ring avoid deadlock.
    send(t, next, 11, {static_cast<double>(rank)});
    send(t, prev, 12, {static_cast<double>(rank) + 0.5});
    std::vector<double> lo(1), hi(1);
    t.recv(prev, 11, lo);
    t.recv(next, 12, hi);
    EXPECT_EQ(lo[0], static_cast<double>(prev));
    EXPECT_EQ(hi[0], static_cast<double>(next) + 0.5);
  });
}

TEST(NetTransport, ManyFramesUnderTinySendQueueStillAllArrive) {
  // A send queue capped below one frame forces the blocking-backpressure
  // path on every second send; correctness (delivery, order) must not
  // depend on queue headroom.
  World w(2);
  constexpr int kFrames = 200;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> blocked{0};
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&w, r, &blocked] {
      TcpOptions opt = w.options(r);
      opt.send_queue_cap = 1;  // every queued byte is over cap
      TcpTransport t(opt);
      if (r == 0) {
        for (int i = 0; i < kFrames; ++i) {
          send(t, 1, 3, {static_cast<double>(i)});
        }
        std::vector<double> done(1);
        t.recv(1, 4, done);
        blocked = t.stats().blocked_sends;
      } else {
        std::vector<double> v(1);
        for (int i = 0; i < kFrames; ++i) {
          t.recv(0, 3, v);
          ASSERT_EQ(v[0], static_cast<double>(i));
        }
        send(t, 0, 4, {1.0});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // With cap 1 the sender can only ever admit into an empty queue, so any
  // time the loop has not yet drained the previous frame the send blocks.
  // The exact count is timing-dependent; the counter existing and the test
  // not deadlocking are the contract.
  SUCCEED() << "blocked sends observed: " << blocked.load();
}

TEST(NetTransport, StatsCountFramesAndBytesOnBothSides) {
  World w(2);
  w.run([](int rank, TcpTransport& t) {
    const std::vector<double> payload(100, 3.14);
    if (rank == 0) {
      t.send(1, 9, payload);
      std::vector<double> ack(1);
      t.recv(1, 10, ack);
      const msg::TransportStats s = t.stats();
      EXPECT_EQ(s.frames_sent, 1u);
      EXPECT_EQ(s.frames_received, 1u);
      EXPECT_GE(s.bytes_sent, 100 * sizeof(double));
      EXPECT_GE(s.bytes_received, sizeof(double));
    } else {
      std::vector<double> in(100);
      t.recv(0, 9, in);
      send(t, 0, 10, {1.0});
      const msg::TransportStats s = t.stats();
      EXPECT_EQ(s.frames_received, 1u);
      EXPECT_GE(s.bytes_received, 100 * sizeof(double));
    }
  });
}

TEST(NetTransport, PeerDeathFailsBlockedRecvWithDiagnostic) {
  World w(2);
  w.run([](int rank, TcpTransport& t) {
    if (rank == 0) {
      std::vector<double> sync(1);
      t.recv(1, 1, sync);   // rank 1 is up and about to die
      t.close_abruptly();   // no bye frame, exactly like a crash
    } else {
      send(t, 0, 1, {1.0});
      std::vector<double> v(1);
      try {
        t.recv(0, 99, v);  // rank 0 will never send this
        FAIL() << "recv from a dead peer must throw, not hang";
      } catch (const ContractError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
        EXPECT_NE(what.find(t.endpoint_of(0)), std::string::npos) << what;
      }
      // Later operations fail fast too.
      EXPECT_THROW(send(t, 0, 1, {2.0}), ContractError);
      EXPECT_THROW(t.try_recv(0, 1, v), ContractError);
    }
  });
}

TEST(NetTransport, RendezvousRejectsWorldSizeMismatch) {
  // Rank 0 of a 2-rank world accepts a dialer whose hello claims a 3-rank
  // world: the handshake must fail the construction with a diagnostic
  // instead of letting two differently-shaped worlds exchange data.
  World w(2);
  std::thread victim([&w] {
    try {
      TcpTransport t(w.options(0));
      FAIL() << "rendezvous accepted a world-size mismatch";
    } catch (const ContractError& e) {
      EXPECT_NE(std::string(e.what()).find("world"), std::string::npos)
          << e.what();
    }
  });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const std::string& ep = w.hosts[0];
  addr.sin_port =
      htons(static_cast<std::uint16_t>(std::stoi(ep.substr(ep.find(':') + 1))));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  std::vector<std::uint8_t> hello;
  put_u32(hello, kMsgMagic);
  hello.push_back(static_cast<std::uint8_t>(FrameType::kHello));
  hello.push_back(kNetWireVersion);
  put_u32(hello, 3);  // lying world size
  put_u32(hello, 1);  // sender rank
  ASSERT_TRUE(write_all(fd, encode_frame(hello)));
  victim.join();
  ::close(fd);
  ::close(w.fds[1]);  // rank 1's listener was never adopted by a transport
  w.fds[1] = -1;
}

TEST(NetTransport, ConstructorRejectsBadConfigurations) {
  EXPECT_THROW(TcpTransport(TcpOptions{}), ContractError)
      << "empty host list";
  TcpOptions bad_rank;
  bad_rank.hosts = {"127.0.0.1:1", "127.0.0.1:2"};
  bad_rank.rank = 2;
  EXPECT_THROW(TcpTransport{bad_rank}, ContractError);
  TcpOptions bad_endpoint;
  bad_endpoint.hosts = {"no-port-here"};
  bad_endpoint.rank = 0;
  EXPECT_THROW(TcpTransport{bad_endpoint}, ContractError);
}

// ---------------------------------------------------------------------------
// Frame-layer session monitoring
// ---------------------------------------------------------------------------

TEST(NetSession, ClassifyTagCoversTheAlphabet) {
  EXPECT_EQ(classify_tag(0), kEvData);
  EXPECT_EQ(classify_tag(42), kEvData);
  EXPECT_EQ(classify_tag(-1003), kEvBarrier);
  EXPECT_EQ(classify_tag(-1004), kEvBarrier);
  EXPECT_EQ(classify_tag(-1005), kEvReduce);
  EXPECT_EQ(classify_tag(-1006), kEvReduce);
  EXPECT_EQ(classify_tag(-1000), kEvBcast);
  EXPECT_EQ(classify_tag(-1001), kEvGather);
  EXPECT_EQ(classify_tag(-1002), kEvGather);
  EXPECT_EQ(classify_tag(-1999), kEvOther);
}

TEST(NetSession, HaloExchangePatternSatisfiesItsSpec) {
  // Both ranks run one halo exchange (send both planes, then match both)
  // under a bound monitor with checking on: every frame feeds the monitor
  // and the session ends in its accepting state.
  World w(2);
  w.run([](int rank, TcpTransport& t) {
    sac::SacConfig cfg = sac::active_config();
    cfg.check = true;
    sac::ConfigBinding config_binding(&cfg);
    const check::SessionSpec spec = halo_exchange_session_spec();
    check::SessionMonitor monitor(&spec, "rank" + std::to_string(rank));
    check::MonitorBinding binding(&monitor);

    const int peer = 1 - rank;
    send(t, peer, 100, {1.0});
    send(t, peer, 101, {2.0});
    std::vector<double> v(1);
    t.recv(peer, 100, v);
    t.recv(peer, 101, v);

    EXPECT_EQ(monitor.events(), 4u);
    EXPECT_EQ(monitor.state(), 0) << "exchange should close the loop";
    monitor.finish(/*report_dead=*/false);
    EXPECT_TRUE(monitor.clean()) << monitor.engine().to_ascii();
  });
}

TEST(NetSession, OutOfProtocolTrafficIsFlagged) {
  // Three sends in a row violate the send/send/recv/recv halo session; the
  // monitor reports it while the wire happily carries the frames.
  World w(2);
  w.run([](int rank, TcpTransport& t) {
    sac::SacConfig cfg = sac::active_config();
    cfg.check = true;
    sac::ConfigBinding config_binding(&cfg);
    if (rank == 0) {
      const check::SessionSpec spec = halo_exchange_session_spec();
      check::SessionMonitor monitor(&spec, "rank0");
      check::MonitorBinding binding(&monitor);
      send(t, 1, 100, {1.0});
      send(t, 1, 101, {2.0});
      send(t, 1, 102, {3.0});  // illegal third send
      EXPECT_FALSE(monitor.clean());
      std::vector<double> sync(1);
      t.recv(1, 1, sync);
    } else {
      std::vector<double> v(1);
      t.recv(0, 100, v);
      t.recv(0, 101, v);
      t.recv(0, 102, v);
      send(t, 0, 1, {0.0});
    }
  });
}

TEST(NetSession, MonitorSeesNothingWithoutCheckMode) {
  World w(2);
  w.run([](int rank, TcpTransport& t) {
    const check::SessionSpec spec = halo_exchange_session_spec();
    check::SessionMonitor monitor(&spec, "rank" + std::to_string(rank));
    check::MonitorBinding binding(&monitor);
    const int peer = 1 - rank;
    send(t, peer, 100, {1.0});
    std::vector<double> v(1);
    t.recv(peer, 100, v);
    EXPECT_EQ(monitor.events(), 0u)
        << "the probe must be dormant without SacConfig::check";
  });
}

}  // namespace
}  // namespace sacpp::net
