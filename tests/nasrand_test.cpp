// The NAS pseudo-random generator: the double-precision randlc port is
// validated against an exact 128-bit integer implementation, and the
// sequence-jumping (ipow46) against step-by-step generation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sacpp/common/error.hpp"
#include "sacpp/nasrand/nasrand.hpp"

namespace sacpp::nasrand {
namespace {

constexpr double kTwoPow46 = 70368744177664.0;  // 2^46

TEST(Randlc, MatchesExactIntegerImplementation) {
  double x = kDefaultSeed;
  std::uint64_t xi = static_cast<std::uint64_t>(kDefaultSeed);
  const auto ai = static_cast<std::uint64_t>(kDefaultMultiplier);
  for (int i = 0; i < 20000; ++i) {
    const double r = randlc(&x, kDefaultMultiplier);
    const std::uint64_t e = randlc_exact(&xi, ai);
    ASSERT_EQ(static_cast<std::uint64_t>(x), e) << "diverged at step " << i;
    ASSERT_DOUBLE_EQ(r, static_cast<double>(e) / kTwoPow46);
  }
}

TEST(Randlc, DeviatesAreInOpenUnitInterval) {
  double x = kDefaultSeed;
  for (int i = 0; i < 10000; ++i) {
    const double r = randlc(&x, kDefaultMultiplier);
    ASSERT_GT(r, 0.0);
    ASSERT_LT(r, 1.0);
  }
}

TEST(Randlc, StateIsA46BitInteger) {
  double x = kDefaultSeed;
  for (int i = 0; i < 1000; ++i) {
    randlc(&x, kDefaultMultiplier);
    ASSERT_EQ(x, std::floor(x));
    ASSERT_LT(x, kTwoPow46);
    ASSERT_GE(x, 0.0);
  }
}

TEST(Randlc, SequenceIsDeterministic) {
  double x1 = kDefaultSeed, x2 = kDefaultSeed;
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(randlc(&x1, kDefaultMultiplier),
                     randlc(&x2, kDefaultMultiplier));
  }
}

TEST(Vranlc, EqualsRepeatedRandlc) {
  double xs = kDefaultSeed;
  std::vector<double> scalar(257);
  for (double& v : scalar) v = randlc(&xs, kDefaultMultiplier);

  double xv = kDefaultSeed;
  std::vector<double> vec(257);
  vranlc(&xv, kDefaultMultiplier, vec);

  EXPECT_EQ(xs, xv);  // identical final state
  for (std::size_t i = 0; i < vec.size(); ++i) {
    ASSERT_DOUBLE_EQ(vec[i], scalar[i]);
  }
}

TEST(Vranlc, EmptySpanLeavesStateUntouched) {
  double x = kDefaultSeed;
  vranlc(&x, kDefaultMultiplier, {});
  EXPECT_DOUBLE_EQ(x, kDefaultSeed);
}

TEST(Ipow46, PowerZeroIsOne) {
  EXPECT_DOUBLE_EQ(ipow46(kDefaultMultiplier, 0), 1.0);
}

TEST(Ipow46, PowerOneIsMultiplier) {
  EXPECT_DOUBLE_EQ(ipow46(kDefaultMultiplier, 1), kDefaultMultiplier);
}

class IpowJump : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(IpowJump, JumpEqualsStepwiseAdvance) {
  const std::int64_t steps = GetParam();
  // stepwise
  double xs = kDefaultSeed;
  for (std::int64_t i = 0; i < steps; ++i) randlc(&xs, kDefaultMultiplier);
  // jump
  NasRandom rng;
  rng.jump(steps);
  EXPECT_DOUBLE_EQ(rng.state(), xs);
}

INSTANTIATE_TEST_SUITE_P(Jumps, IpowJump,
                         ::testing::Values<std::int64_t>(1, 2, 3, 7, 64, 100,
                                                         1000, 4097, 65536));

TEST(Ipow46, CompositionOfJumps) {
  // a^(m+n) applied once == a^m then a^n.
  NasRandom once;
  once.jump(300);
  NasRandom twice;
  twice.jump(113);
  twice.jump(187);
  EXPECT_DOUBLE_EQ(once.state(), twice.state());
}

TEST(NasRandom, FillMatchesNext) {
  NasRandom a, b;
  std::vector<double> buf(64);
  a.fill(buf);
  for (double v : buf) ASSERT_DOUBLE_EQ(v, b.next());
}

TEST(NasRandom, MeanOfDeviatesIsNearHalf) {
  NasRandom rng;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next();
  EXPECT_NEAR(sum / n, 0.5, 5e-3);
}

TEST(NasRandom, NoShortCycle) {
  // The generator has period 2^44; the state must not repeat quickly.
  NasRandom rng;
  const double first = rng.next();
  for (int i = 0; i < 10000; ++i) {
    ASSERT_NE(rng.next(), first);
  }
}

TEST(Ipow46, NegativeExponentRejected) {
  EXPECT_THROW(ipow46(kDefaultMultiplier, -1), sacpp::ContractError);
}

}  // namespace
}  // namespace sacpp::nasrand
