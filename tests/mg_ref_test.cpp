// The Fortran-77 reference port: each hand-optimised kernel is checked
// against the independent SAC implementation on random grids (the
// plane-sharing buffers must not change any value), plus arena/static-layout
// properties.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "sacpp/mg/mg_ref.hpp"
#include "sacpp/mg/mg_sac.hpp"
#include "sacpp/mg/problem.hpp"

namespace sacpp::mg {
namespace {

using sac::Array;

std::vector<double> random_cube(extent_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(n * n * n));
  for (double& x : a) x = dist(rng);
  periodic_border_3d(a, n);
  return a;
}

Array<double> wrap(const std::vector<double>& flat, extent_t n) {
  const Shape shp{n, n, n};
  return sac::with_genarray<double>(shp, [&](const IndexVec& iv) {
    return flat[static_cast<std::size_t>(shp.linearize(iv))];
  });
}

class RefKernels : public ::testing::TestWithParam<extent_t> {
 protected:
  MgSpec spec_ = MgSpec::for_class(MgClass::S);
  MgRef ref_{spec_};
  MgSac sacmg_{spec_};
};

TEST_P(RefKernels, ResidMatchesSacComposition) {
  const extent_t n = GetParam();
  auto u = random_cube(n, 1);
  auto v = random_cube(n, 2);
  std::vector<double> r(u.size(), 0.0);
  ref_.kernel_resid(u.data(), v.data(), r.data(), n);

  // SAC composition: border-setup already applied to u; r = v - A u, then
  // comm3 on the result (the ref kernel exchanges its output).
  auto r_sac = wrap(v, n) - sacmg_.resid(wrap(u, n));
  std::vector<double> expect(r_sac.data(), r_sac.data() + r_sac.elem_count());
  periodic_border_3d(expect, n);
  for (std::size_t i = 0; i < r.size(); ++i) {
    ASSERT_NEAR(r[i], expect[i], 1e-13) << "at " << i;
  }
}

TEST_P(RefKernels, PsinvMatchesSacSmooth) {
  const extent_t n = GetParam();
  auto r = random_cube(n, 3);
  auto u = random_cube(n, 4);
  std::vector<double> u_ref = u;
  ref_.kernel_psinv(r.data(), u_ref.data(), n);

  auto u_sac = wrap(u, n) + sacmg_.smooth(wrap(r, n));
  std::vector<double> expect(u_sac.data(), u_sac.data() + u_sac.elem_count());
  periodic_border_3d(expect, n);
  for (std::size_t i = 0; i < u_ref.size(); ++i) {
    ASSERT_NEAR(u_ref[i], expect[i], 1e-13) << "at " << i;
  }
}

TEST_P(RefKernels, Rprj3MatchesSacFine2Coarse) {
  const extent_t nf = GetParam();
  const extent_t nc = (nf - 2) / 2 + 2;
  auto rf = random_cube(nf, 5);
  std::vector<double> rc(static_cast<std::size_t>(nc * nc * nc), 0.0);
  ref_.kernel_rprj3(rf.data(), nf, rc.data(), nc);

  auto rn = sacmg_.fine2coarse(wrap(rf, nf));
  std::vector<double> expect(rn.data(), rn.data() + rn.elem_count());
  periodic_border_3d(expect, nc);
  for (std::size_t i = 0; i < rc.size(); ++i) {
    ASSERT_NEAR(rc[i], expect[i], 1e-13) << "at " << i;
  }
}

TEST_P(RefKernels, InterpMatchesSacCoarse2Fine) {
  const extent_t nf = GetParam();
  const extent_t nc = (nf - 2) / 2 + 2;
  auto zc = random_cube(nc, 6);
  std::vector<double> uf(static_cast<std::size_t>(nf * nf * nf), 0.0);
  ref_.kernel_interp(zc.data(), nc, uf.data(), nf);

  auto z = sacmg_.coarse2fine(wrap(zc, nc));
  // The SAC Coarse2Fine leaves the result's ghost ring zero (genarray
  // default); the additive NPB interp writes ghosts too.  Interior values
  // must agree exactly.
  for (extent_t i = 1; i < nf - 1; ++i) {
    for (extent_t j = 1; j < nf - 1; ++j) {
      for (extent_t k = 1; k < nf - 1; ++k) {
        const auto idx = static_cast<std::size_t>((i * nf + j) * nf + k);
        ASSERT_NEAR(uf[idx], z(i, j, k), 1e-13)
            << "at (" << i << "," << j << "," << k << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GridSizes, RefKernels,
                         ::testing::Values<extent_t>(6, 10, 18));

TEST(RefKernelAliasing, ResidSupportsVAliasingR) {
  // mg3P calls resid with v == r (in-place residual update).
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  MgRef ref(spec);
  const extent_t n = 10;
  auto u = random_cube(n, 7);
  auto v = random_cube(n, 8);
  std::vector<double> separate(v.size(), 0.0);
  ref.kernel_resid(u.data(), v.data(), separate.data(), n);
  std::vector<double> aliased = v;
  ref.kernel_resid(u.data(), aliased.data(), aliased.data(), n);
  for (std::size_t i = 0; i < aliased.size(); ++i) {
    ASSERT_DOUBLE_EQ(aliased[i], separate[i]) << i;
  }
}

TEST(RefState, StaticLayoutSingleArena) {
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  MgRef ref(spec);
  // all level views live inside one contiguous allocation
  const double* base = ref.u().data();
  EXPECT_LE(base, ref.r().data());
  EXPECT_LE(base, ref.v().data());
}

TEST(RefState, InitialResidualEqualsRhsForZeroSolution) {
  const MgSpec spec = MgSpec::custom(8, 1);
  MgRef ref(spec);
  ref.setup_default_rhs();
  ref.zero_u();
  ref.initial_resid();
  // A 0 == 0, so r == v on the interior
  const auto v = ref.v();
  const auto r = ref.r();
  const extent_t n = spec.nx + 2;
  for (extent_t i = 1; i < n - 1; ++i) {
    for (extent_t j = 1; j < n - 1; ++j) {
      for (extent_t k = 1; k < n - 1; ++k) {
        const auto idx = static_cast<std::size_t>((i * n + j) * n + k);
        ASSERT_DOUBLE_EQ(r[idx], v[idx]);
      }
    }
  }
}

TEST(RefState, IterationReducesResidual) {
  const MgSpec spec = MgSpec::custom(16, 1);
  MgRef ref(spec);
  ref.setup_default_rhs();
  ref.zero_u();
  ref.initial_resid();
  const double before = ref.residual_norm();
  ref.iterate(1);
  EXPECT_LT(ref.residual_norm(), before * 0.5);
}

TEST(RefState, SetRhsValidatesSize) {
  MgRef ref(MgSpec::custom(8, 1));
  std::vector<double> tiny(8);
  EXPECT_THROW(ref.set_rhs(tiny), ContractError);
}

}  // namespace
}  // namespace sacpp::mg
