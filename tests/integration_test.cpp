// End-to-end integration: the full benchmark protocol through the public
// driver for every implementation, plus ablation settings end-to-end.

#include <gtest/gtest.h>

#include <cmath>

#include "sacpp/machine/model.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/sac/sac.hpp"

namespace sacpp::mg {
namespace {

TEST(Integration, FullClassSThroughDriverAllVariants) {
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  RunOptions opts;
  opts.warmup = true;  // the full NPB protocol, warm-up included
  double norms[3];
  int i = 0;
  for (auto v : {Variant::kSac, Variant::kFortran, Variant::kOpenMp}) {
    const MgResult res = run_benchmark(v, spec, opts);
    EXPECT_EQ(res.nx, 32);
    EXPECT_EQ(res.nit, 4);
    EXPECT_EQ(res.cls, "S");
    EXPECT_GT(res.seconds, 0.0);
    EXPECT_GT(res.mflops, 0.0);
    ASSERT_EQ(res.norms.size(), 4u);
    norms[i++] = res.final_norm;
  }
  EXPECT_NEAR(norms[0], norms[1], 1e-15);
  EXPECT_NEAR(norms[2], norms[1], 1e-15);
  EXPECT_NEAR(norms[1], 0.530770700573e-04, 1e-14);
}

TEST(Integration, SacDirectVariantThroughDriverMatchesReference) {
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  RunOptions opts;
  opts.warmup = false;
  const MgResult direct = run_benchmark(Variant::kSacDirect, spec, opts);
  const MgResult ref = run_benchmark(Variant::kFortran, spec, opts);
  ASSERT_EQ(direct.norms.size(), ref.norms.size());
  for (std::size_t i = 0; i < ref.norms.size(); ++i) {
    EXPECT_NEAR(direct.norms[i], ref.norms[i], ref.norms[i] * 1e-11)
        << "iteration " << i;
  }
  EXPECT_EQ(parse_variant("direct"), Variant::kSacDirect);
  EXPECT_STREQ(variant_name(Variant::kSacDirect), "SAC-direct");
}

TEST(Integration, WarmupDoesNotChangeResults) {
  const MgSpec spec = MgSpec::custom(16, 2);
  RunOptions with, without;
  with.warmup = true;
  without.warmup = false;
  const MgResult a = run_benchmark(Variant::kFortran, spec, with);
  const MgResult b = run_benchmark(Variant::kFortran, spec, without);
  EXPECT_DOUBLE_EQ(a.final_norm, b.final_norm);
}

TEST(Integration, AblationSettingsAllProduceIdenticalNorms) {
  // Every combination of the optimisation switches must leave the computed
  // values unchanged — they are performance knobs, not semantics knobs.
  const MgSpec spec = MgSpec::custom(16, 2);
  RunOptions opts;
  opts.warmup = false;
  double reference = 0.0;
  bool first = true;
  for (bool folding : {false, true}) {
    for (bool reuse : {false, true}) {
      for (bool specialize : {false, true}) {
        sac::SacConfig cfg = sac::config();
        cfg.folding = folding;
        cfg.reuse = reuse;
        cfg.specialize = specialize;
        sac::ScopedConfig guard(cfg);
        const MgResult res = run_benchmark(Variant::kSac, spec, opts);
        if (first) {
          reference = res.final_norm;
          first = false;
        } else {
          EXPECT_NEAR(res.final_norm, reference, 1e-15)
              << "folding=" << folding << " reuse=" << reuse
              << " specialize=" << specialize;
        }
      }
    }
  }
}

TEST(Integration, MultithreadedSacRunMatchesSequential) {
  const MgSpec spec = MgSpec::custom(16, 2);
  RunOptions opts;
  opts.warmup = false;
  const MgResult seq = run_benchmark(Variant::kSac, spec, opts);

  sac::SacConfig cfg = sac::config();
  cfg.mt_enabled = true;
  cfg.mt_threads = 4;
  cfg.mt_threshold = 256;
  sac::ScopedConfig guard(cfg);
  const MgResult par = run_benchmark(Variant::kSac, spec, opts);
  sac::shutdown_runtime();

  ASSERT_EQ(par.norms.size(), seq.norms.size());
  for (std::size_t i = 0; i < par.norms.size(); ++i) {
    // per-chunk reduction order may differ in the norm itself; values of
    // the grids are bitwise equal, so norms agree to roundoff
    EXPECT_NEAR(par.norms[i], seq.norms[i], 1e-15 + seq.norms[i] * 1e-12);
  }
}

TEST(Integration, TraceModelAndRealRunCoverSameWork) {
  // The machine model's trace must carry the same nominal flop volume that
  // NPB attributes to the benchmark, within a factor accounting for the
  // V-cycle's extra sweeps (the 58 flops/point figure counts top-level
  // passes only).
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  const machine::Trace t =
      machine::build_trace(Variant::kFortran, spec);
  const double per_iter_flops = t.total_flops();
  const double nominal_per_iter = nominal_flops(spec) / spec.nit;
  EXPECT_GT(per_iter_flops, nominal_per_iter * 0.8);
  EXPECT_LT(per_iter_flops, nominal_per_iter * 4.0);
}

TEST(Integration, RuntimeStatsAccumulateDuringSacRun) {
  sac::reset_stats();
  const MgSpec spec = MgSpec::custom(8, 1);
  RunOptions opts;
  opts.warmup = false;
  (void)run_benchmark(Variant::kSac, spec, opts);
  EXPECT_GT(sac::stats().with_loops, 0u);
  EXPECT_GT(sac::stats().allocations, 0u);
  EXPECT_GT(sac::stats().elements, 0u);
}

TEST(Integration, RecordNormsOffSkipsPerIterationNorms) {
  const MgSpec spec = MgSpec::custom(8, 2);
  RunOptions opts;
  opts.warmup = false;
  opts.record_norms = false;
  const MgResult res = run_benchmark(Variant::kFortran, spec, opts);
  EXPECT_TRUE(res.norms.empty());
  EXPECT_GT(res.final_norm, 0.0);
}

}  // namespace
}  // namespace sacpp::mg
