// The C/OpenMP port: kernels must equal the Fortran reference port
// bit-for-bit (identical arithmetic, different parallel decoration), under
// any team size.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sacpp/mg/mg_omp.hpp"
#include "sacpp/mg/mg_ref.hpp"
#include "sacpp/mg/problem.hpp"

namespace sacpp::mg {
namespace {

std::vector<double> random_cube(extent_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(n * n * n));
  for (double& x : a) x = dist(rng);
  periodic_border_3d(a, n);
  return a;
}

class OmpKernels : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { MgOmp::omp_threads(GetParam()); }
  void TearDown() override { MgOmp::omp_threads(1); }
  MgSpec spec_ = MgSpec::for_class(MgClass::S);
  MgRef ref_{spec_};
  MgOmp omp_{spec_};
};

TEST_P(OmpKernels, ResidBitwiseEqualsReference) {
  const extent_t n = 18;
  auto u = random_cube(n, 1);
  auto v = random_cube(n, 2);
  std::vector<double> r_ref(u.size(), 0.0), r_omp(u.size(), 0.0);
  ref_.kernel_resid(u.data(), v.data(), r_ref.data(), n);
  omp_.kernel_resid(u.data(), v.data(), r_omp.data(), n);
  for (std::size_t i = 0; i < r_ref.size(); ++i) {
    ASSERT_EQ(r_omp[i], r_ref[i]) << i;
  }
}

TEST_P(OmpKernels, PsinvBitwiseEqualsReference) {
  const extent_t n = 18;
  auto r = random_cube(n, 3);
  auto u = random_cube(n, 4);
  std::vector<double> u_ref = u, u_omp = u;
  ref_.kernel_psinv(r.data(), u_ref.data(), n);
  omp_.kernel_psinv(r.data(), u_omp.data(), n);
  for (std::size_t i = 0; i < u_ref.size(); ++i) {
    ASSERT_EQ(u_omp[i], u_ref[i]) << i;
  }
}

TEST_P(OmpKernels, Rprj3BitwiseEqualsReference) {
  const extent_t nf = 18, nc = 10;
  auto rf = random_cube(nf, 5);
  std::vector<double> c_ref(static_cast<std::size_t>(nc * nc * nc), 0.0);
  std::vector<double> c_omp = c_ref;
  ref_.kernel_rprj3(rf.data(), nf, c_ref.data(), nc);
  omp_.kernel_rprj3(rf.data(), nf, c_omp.data(), nc);
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    ASSERT_EQ(c_omp[i], c_ref[i]) << i;
  }
}

TEST_P(OmpKernels, InterpBitwiseEqualsReference) {
  const extent_t nf = 18, nc = 10;
  auto zc = random_cube(nc, 6);
  std::vector<double> f_ref(static_cast<std::size_t>(nf * nf * nf), 0.25);
  std::vector<double> f_omp = f_ref;
  ref_.kernel_interp(zc.data(), nc, f_ref.data(), nf);
  omp_.kernel_interp(zc.data(), nc, f_omp.data(), nf);
  for (std::size_t i = 0; i < f_ref.size(); ++i) {
    ASSERT_EQ(f_omp[i], f_ref[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Teams, OmpKernels, ::testing::Values(1, 2, 4));

TEST(OmpEndToEnd, FullRunEqualsReferenceRun) {
  const MgSpec spec = MgSpec::custom(16, 3);
  MgRef ref(spec);
  MgOmp omp(spec);
  ref.setup_default_rhs();
  omp.setup_default_rhs();
  ref.zero_u();
  omp.zero_u();
  ref.initial_resid();
  omp.initial_resid();
  for (int it = 0; it < 3; ++it) {
    ref.iterate(1);
    omp.iterate(1);
    ASSERT_DOUBLE_EQ(omp.residual_norm(), ref.residual_norm())
        << "iteration " << it;
  }
}

TEST(OmpEndToEnd, TeamSizeDoesNotChangeResults) {
  const MgSpec spec = MgSpec::custom(16, 2);
  auto run_with = [&](int threads) {
    MgOmp::omp_threads(threads);
    MgOmp solver(spec);
    solver.setup_default_rhs();
    solver.zero_u();
    solver.initial_resid();
    solver.iterate(2);
    MgOmp::omp_threads(1);
    return solver.residual_norm();
  };
  const double t1 = run_with(1);
  const double t4 = run_with(4);
  EXPECT_DOUBLE_EQ(t1, t4);
}

TEST(OmpEndToEnd, ReportsOpenMpAvailability) {
  // informational: the container toolchain decides this; both values legal
  const bool avail = MgOmp::openmp_available();
  SUCCEED() << "OpenMP available: " << avail;
}

}  // namespace
}  // namespace sacpp::mg
