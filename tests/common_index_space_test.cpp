// Index-space walkers: dense and strided (step/width) odometers.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sacpp/common/index_space.hpp"

namespace sacpp {
namespace {

std::vector<IndexVec> collect_dense(const IndexVec& lo, const IndexVec& up) {
  std::vector<IndexVec> out;
  for_each_index(lo, up, [&](const IndexVec& iv) { out.push_back(iv); });
  return out;
}

std::vector<IndexVec> collect_grid(const IndexVec& lo, const IndexVec& up,
                                   const IndexVec& st, const IndexVec& wi) {
  std::vector<IndexVec> out;
  for_each_index_grid(lo, up, st, wi,
                      [&](const IndexVec& iv) { out.push_back(iv); });
  return out;
}

TEST(DenseWalk, RowMajorOrder) {
  auto got = collect_dense({0, 0}, {2, 3});
  std::vector<IndexVec> expect{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}};
  EXPECT_EQ(got, expect);
}

TEST(DenseWalk, NonZeroLowerBound) {
  auto got = collect_dense({1, 2}, {3, 4});
  std::vector<IndexVec> expect{{1, 2}, {1, 3}, {2, 2}, {2, 3}};
  EXPECT_EQ(got, expect);
}

TEST(DenseWalk, EmptyWhenUpperNotAboveLower) {
  EXPECT_TRUE(collect_dense({2, 0}, {2, 5}).empty());
  EXPECT_TRUE(collect_dense({3, 0}, {2, 5}).empty());
}

TEST(DenseWalk, RankZeroVisitsExactlyTheEmptyIndex) {
  auto got = collect_dense({}, {});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].empty());
}

TEST(DenseWalk, ShapeOverload) {
  std::size_t count = 0;
  for_each_index(Shape{3, 4, 5}, [&](const IndexVec&) { ++count; });
  EXPECT_EQ(count, 60u);
}

TEST(DenseWalk, Rank1) {
  auto got = collect_dense({5}, {8});
  std::vector<IndexVec> expect{{5}, {6}, {7}};
  EXPECT_EQ(got, expect);
}

TEST(GridWalk, StepSelectsEveryNth) {
  auto got = collect_grid({0}, {10}, {3}, {1});
  std::vector<IndexVec> expect{{0}, {3}, {6}, {9}};
  EXPECT_EQ(got, expect);
}

TEST(GridWalk, WidthSelectsBands) {
  auto got = collect_grid({0}, {10}, {4}, {2});
  std::vector<IndexVec> expect{{0}, {1}, {4}, {5}, {8}, {9}};
  EXPECT_EQ(got, expect);
}

TEST(GridWalk, PhaseAnchorsAtLowerBound) {
  auto got = collect_grid({1}, {8}, {3}, {1});
  std::vector<IndexVec> expect{{1}, {4}, {7}};
  EXPECT_EQ(got, expect);
}

TEST(GridWalk, MultiDimensionalGrid) {
  auto got = collect_grid({0, 0}, {4, 4}, {2, 2}, {1, 1});
  std::vector<IndexVec> expect{{0, 0}, {0, 2}, {2, 0}, {2, 2}};
  EXPECT_EQ(got, expect);
}

TEST(GridWalk, StepOneWidthOneIsDense) {
  auto dense = collect_dense({1, 1}, {4, 5});
  auto grid = collect_grid({1, 1}, {4, 5}, {1, 1}, {1, 1});
  EXPECT_EQ(dense, grid);
}

TEST(GridWalk, InvalidStepOrWidthThrows) {
  EXPECT_THROW(collect_grid({0}, {4}, {0}, {1}), ContractError);
  EXPECT_THROW(collect_grid({0}, {4}, {2}, {0}), ContractError);
  EXPECT_THROW(collect_grid({0}, {4}, {2}, {3}), ContractError);
}

// Property: the walker enumerates exactly the generator's defining set.
class GridProperty
    : public ::testing::TestWithParam<std::tuple<extent_t, extent_t, extent_t>> {
};

TEST_P(GridProperty, MatchesDefiningSetAndCount) {
  const auto [upper, step, width] = GetParam();
  const IndexVec lo{1, 0};
  const IndexVec up{upper, upper + 1};
  const IndexVec st{step, step};
  const IndexVec wi{width, width};
  if (width > step) GTEST_SKIP();

  std::set<std::pair<extent_t, extent_t>> got;
  for_each_index_grid(lo, up, st, wi, [&](const IndexVec& iv) {
    got.insert({iv[0], iv[1]});
  });

  std::set<std::pair<extent_t, extent_t>> expect;
  for (extent_t i = lo[0]; i < up[0]; ++i) {
    for (extent_t j = lo[1]; j < up[1]; ++j) {
      if ((i - lo[0]) % step < width && (j - lo[1]) % step < width) {
        expect.insert({i, j});
      }
    }
  }
  EXPECT_EQ(got, expect);
  EXPECT_EQ(static_cast<extent_t>(got.size()), grid_count(lo, up, st, wi));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GridProperty,
                         ::testing::Combine(::testing::Values<extent_t>(1, 2,
                                                                        5, 9),
                                            ::testing::Values<extent_t>(1, 2,
                                                                        3),
                                            ::testing::Values<extent_t>(1, 2,
                                                                        3)));

TEST(GridCount, AxisCountFormula) {
  EXPECT_EQ(grid_axis_count(0, 10, 3, 1), 4);
  EXPECT_EQ(grid_axis_count(0, 10, 4, 2), 6);
  EXPECT_EQ(grid_axis_count(0, 0, 1, 1), 0);
  EXPECT_EQ(grid_axis_count(5, 5, 2, 1), 0);
  EXPECT_EQ(grid_axis_count(0, 1, 8, 8), 1);
}

}  // namespace
}  // namespace sacpp
