// Shape algebra, row-major layout, and index-vector arithmetic.

#include <gtest/gtest.h>

#include "sacpp/common/shape.hpp"

namespace sacpp {
namespace {

TEST(Shape, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_TRUE(s.is_scalar());
  EXPECT_EQ(s.elem_count(), 1);
}

TEST(Shape, RankAndExtents) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.elem_count(), 24);
}

TEST(Shape, ZeroExtentMeansEmptyArray) {
  Shape s{3, 0, 4};
  EXPECT_EQ(s.elem_count(), 0);
}

TEST(Shape, NegativeExtentRejected) {
  EXPECT_THROW(Shape({-1, 2}), ContractError);
}

TEST(Shape, RowMajorStrides) {
  Shape s{2, 3, 4};
  IndexVec expect{12, 4, 1};
  EXPECT_EQ(s.strides(), expect);
}

TEST(Shape, LinearizeMatchesStrides) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.linearize({0, 0, 0}), 0);
  EXPECT_EQ(s.linearize({0, 0, 3}), 3);
  EXPECT_EQ(s.linearize({0, 1, 0}), 4);
  EXPECT_EQ(s.linearize({1, 2, 3}), 23);
}

TEST(Shape, DelinearizeIsInverseOfLinearize) {
  Shape s{3, 5, 7};
  for (extent_t off = 0; off < s.elem_count(); ++off) {
    EXPECT_EQ(s.linearize(s.delinearize(off)), off);
  }
}

TEST(Shape, LinearizeWrongRankThrows) {
  Shape s{2, 2};
  EXPECT_THROW(s.linearize({1}), ContractError);
}

TEST(Shape, Contains) {
  Shape s{2, 3};
  EXPECT_TRUE(s.contains({0, 0}));
  EXPECT_TRUE(s.contains({1, 2}));
  EXPECT_FALSE(s.contains({2, 0}));
  EXPECT_FALSE(s.contains({0, -1}));
  EXPECT_FALSE(s.contains({0}));  // rank mismatch
}

TEST(Shape, EqualityAndToString) {
  Shape a{2, 3};
  Shape b{2, 3};
  Shape c{3, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.to_string(), "[2, 3]");
}

TEST(Shape, CubeShapeHelper) {
  const Shape s = cube_shape(3, 5);
  EXPECT_EQ(s, (Shape{5, 5, 5}));
}

// -- index-vector arithmetic (the SAC shape algebra: shape(a)/2 etc.) --------

TEST(IndexVecArithmetic, ElementWiseAddSub) {
  IndexVec a{1, 2, 3};
  IndexVec b{10, 20, 30};
  EXPECT_EQ(a + b, (IndexVec{11, 22, 33}));
  EXPECT_EQ(b - a, (IndexVec{9, 18, 27}));
}

TEST(IndexVecArithmetic, LengthMismatchThrows) {
  IndexVec a{1, 2};
  IndexVec b{1, 2, 3};
  EXPECT_THROW(a + b, ContractError);
}

TEST(IndexVecArithmetic, ScalarOps) {
  IndexVec a{2, 4, 6};
  EXPECT_EQ(a + 1, (IndexVec{3, 5, 7}));
  EXPECT_EQ(a - 2, (IndexVec{0, 2, 4}));
  EXPECT_EQ(2 * a, (IndexVec{4, 8, 12}));
  EXPECT_EQ(a / 2, (IndexVec{1, 2, 3}));
  EXPECT_EQ(0 * a, (IndexVec{0, 0, 0}));
}

TEST(IndexVecArithmetic, DivisionByZeroThrows) {
  IndexVec a{2};
  EXPECT_THROW(a / 0, ContractError);
}

TEST(IndexVecArithmetic, UniformVec) {
  EXPECT_EQ(uniform_vec(3, 7), (IndexVec{7, 7, 7}));
  EXPECT_EQ(uniform_vec(0, 7), IndexVec{});
}

}  // namespace
}  // namespace sacpp
