// SolverService tests: end-to-end verified solves, per-job config isolation
// under concurrency, overlapping solves racing runtime housekeeping (the
// TSan target), deadline/capacity shedding, shutdown semantics, and the
// process-metrics collector.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sacpp/mg/driver.hpp"
#include "sacpp/obs/export.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/sac/pool.hpp"
#include "sacpp/sac/stats.hpp"
#include "sacpp/serve/server.hpp"

using namespace sacpp;
using namespace sacpp::serve;

namespace {

ServeConfig small_config(unsigned cores, unsigned executors,
                         std::size_t queue_capacity = 64) {
  ServeConfig cfg;
  cfg.total_cores = cores;
  cfg.executors = executors;
  cfg.queue_capacity = queue_capacity;
  return cfg;
}

SolveRequest class_s_request(std::uint64_t id,
                             Priority priority = Priority::kNormal) {
  SolveRequest req;
  req.id = id;
  req.cls = mg::MgClass::S;
  req.variant = mg::Variant::kSacDirect;
  req.priority = priority;
  return req;
}

// Reference norm for one stencil engine, computed serially outside any
// service (the ground truth the concurrent runs must reproduce bit-exactly).
double serial_norm(sac::StencilMode mode) {
  sac::SacConfig cfg = sac::config();
  cfg.stencil_mode = mode;
  cfg.mt_enabled = false;
  sac::ConfigBinding binding(&cfg);
  const mg::MgSpec spec = mg::MgSpec::for_class(mg::MgClass::S);
  mg::RunOptions opts;
  opts.warmup = false;
  opts.record_norms = false;
  return mg::run_benchmark(mg::Variant::kSacDirect, spec, opts).final_norm;
}

TEST(ServeServer, SolvesAndVerifiesClassS) {
  SolverService service(small_config(2, 2));
  std::future<SolveResult> future = service.submit(class_s_request(7));
  const SolveResult res = future.get();
  EXPECT_EQ(res.id, 7u);
  EXPECT_EQ(res.status, SolveStatus::kOk) << res.error;
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_GE(res.e2e_ns, res.queue_ns);
  EXPECT_GE(res.gang, 1u);
}

// Satellite (b) regression: two concurrent jobs with different stencil
// engines must each get the result their own config produces — bit-exact
// against serial references — with no bleed through the process config.
TEST(ServeServer, ConcurrentJobsWithDifferentStencilModesStayIsolated) {
  const double grouped_ref = serial_norm(sac::StencilMode::kGrouped);
  const double planes_ref = serial_norm(sac::StencilMode::kPlanes);

  SolverService service(small_config(2, 2));
  constexpr int kRounds = 3;
  std::vector<std::future<SolveResult>> grouped, planes;
  for (int i = 0; i < kRounds; ++i) {
    SolveRequest g = class_s_request(1000 + i);
    g.stencil_mode = sac::StencilMode::kGrouped;
    SolveRequest p = class_s_request(2000 + i);
    p.stencil_mode = sac::StencilMode::kPlanes;
    grouped.push_back(service.submit(g));
    planes.push_back(service.submit(p));
  }
  for (int i = 0; i < kRounds; ++i) {
    const SolveResult g = grouped[i].get();
    const SolveResult p = planes[i].get();
    ASSERT_EQ(g.status, SolveStatus::kOk) << g.error;
    ASSERT_EQ(p.status, SolveStatus::kOk) << p.error;
    // Bit-correct, not approximately-equal: a config bleed mid-solve would
    // perturb the floating-point schedule even if the answer still verified.
    EXPECT_EQ(g.final_norm, grouped_ref) << "grouped round " << i;
    EXPECT_EQ(p.final_norm, planes_ref) << "planes round " << i;
  }
}

// Satellite (a): repeated in-process solves must be safe while other threads
// hammer the shared runtime surfaces (stats snapshot/reset, pool trim).
// Primarily a TSan target; the functional assertion is that every overlapped
// solve still verifies.
TEST(ServeServer, OverlappingSolvesSurviveStatsAndPoolHousekeeping) {
  SolverService service(small_config(2, 2));
  std::atomic<bool> done{false};
  std::thread chaos([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)sac::stats_snapshot();
      sac::BufferPool::instance().trim();
      sac::reset_stats();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  auto client = [&](std::uint64_t base) {
    for (int i = 0; i < 3; ++i) {
      const SolveResult res =
          service.submit(class_s_request(base + i)).get();
      ASSERT_EQ(res.status, SolveStatus::kOk) << res.error;
      ASSERT_TRUE(res.verified);
    }
  };
  std::thread a(client, 100), b(client, 200);
  a.join();
  b.join();
  done.store(true, std::memory_order_release);
  chaos.join();
}

TEST(ServeServer, ExpiredDeadlineIsShedNotSolved) {
  SolverService service(small_config(1, 1));
  SolveRequest req = class_s_request(1);
  req.deadline_ns = 1;  // expires effectively at submit
  const SolveResult res = service.submit(req).get();
  EXPECT_EQ(res.status, SolveStatus::kShedDeadline) << res.error;
  EXPECT_FALSE(res.verified);
}

TEST(ServeServer, TinyQueueRejectsTheOverflow) {
  SolverService service(small_config(1, 1, /*queue_capacity=*/1));
  std::vector<std::future<SolveResult>> futures;
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    futures.push_back(service.submit(class_s_request(i)));
  }
  int ok = 0, shed = 0;
  for (auto& f : futures) {
    const SolveResult res = f.get();  // every future resolves, no hangs
    if (res.status == SolveStatus::kOk) {
      ++ok;
    } else {
      EXPECT_EQ(res.status, SolveStatus::kShedCapacity);
      ++shed;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(shed, 1) << "a burst of " << kBurst
                     << " into a depth-1 queue must overflow";
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(service.snapshot().counters.queue.rejected, 1u);
}

TEST(ServeServer, StopShedsQueuedFinishesRunning) {
  SolverService service(small_config(1, 1));
  std::vector<std::future<SolveResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.submit(class_s_request(i)));
  }
  service.stop();
  service.stop();  // idempotent
  int solved = 0, shed = 0;
  for (auto& f : futures) {
    const SolveResult res = f.get();
    if (solve_completed(res.status)) {
      ++solved;
    } else {
      EXPECT_EQ(res.status, SolveStatus::kShedCapacity);
      ++shed;
    }
  }
  EXPECT_EQ(solved + shed, 6);
  EXPECT_GE(shed, 1) << "stop() must shed the backlog, not run it down";
  // Post-stop submissions resolve immediately as shed.
  const SolveResult late = service.submit(class_s_request(99)).get();
  EXPECT_EQ(late.status, SolveStatus::kShedCapacity);
}

TEST(ServeServer, DrainWaitsForQuiescence) {
  SolverService service(small_config(2, 2));
  std::vector<std::future<SolveResult>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service.submit(class_s_request(i)));
  }
  service.drain();
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.active_jobs(), 0u);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ServeServer, SnapshotTracksOutcomes) {
  SolverService service(small_config(2, 2));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(service.submit(class_s_request(i)).get().status,
              SolveStatus::kOk);
  }
  const ServerSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.counters.submitted, 3u);
  EXPECT_EQ(snap.counters.completed_ok, 3u);
  EXPECT_EQ(snap.counters.wrong_answer, 0u);
  EXPECT_EQ(snap.counters.errors, 0u);
  EXPECT_EQ(snap.counters.queue.dispatched, 3u);
  EXPECT_GT(snap.uptime_seconds, 0.0);
  EXPECT_EQ(snap.total_cores, 2u);
  EXPECT_EQ(snap.exec.count, 3u);
  EXPECT_GT(snap.exec.mean_ms, 0.0);
  EXPECT_GE(snap.exec.p99_ms, snap.exec.p50_ms);
  const std::size_t lane =
      static_cast<std::size_t>(Priority::kNormal);
  EXPECT_EQ(snap.e2e[lane].count, 3u);
}

#ifdef __linux__
TEST(ServeServer, RssGaugeIsPositiveOnLinux) {
  EXPECT_GT(SolverService::rss_bytes(), 0);
}
#endif

// Satellite (f): the live service exports process gauges through the
// Prometheus text endpoint.
TEST(ServeServer, PrometheusExportCarriesProcessGauges) {
  SolverService service(small_config(2, 2));
  EXPECT_EQ(service.submit(class_s_request(1)).get().status,
            SolveStatus::kOk);
  std::ostringstream out;
  obs::write_prometheus(out);
  const std::string text = out.str();
  for (const char* metric :
       {"sacpp_serve_uptime_seconds", "sacpp_serve_active_jobs",
        "sacpp_serve_queue_depth", "sacpp_serve_cores_total",
        "sacpp_serve_requests_total", "sacpp_serve_dispatched_total"}) {
    EXPECT_NE(text.find(metric), std::string::npos)
        << metric << " missing from:\n"
        << text;
  }
#ifdef __linux__
  EXPECT_NE(text.find("sacpp_serve_rss_bytes"), std::string::npos);
#endif
}

// The collector indirects through a process-lifetime slot: once the first
// service is gone, exporting must not touch freed memory, and a second
// service takes the slot over.
TEST(ServeServer, CollectorSurvivesServiceTeardown) {
  {
    SolverService first(small_config(1, 1));
    (void)first.submit(class_s_request(1)).get();
  }
  std::ostringstream between;
  obs::write_prometheus(between);  // no live service: must not crash
  EXPECT_EQ(between.str().find("sacpp_serve_uptime_seconds"),
            std::string::npos);

  SolverService second(small_config(1, 1));
  (void)second.submit(class_s_request(2)).get();
  std::ostringstream after;
  obs::write_prometheus(after);
  EXPECT_NE(after.str().find("sacpp_serve_uptime_seconds"),
            std::string::npos);
}

}  // namespace
