// Array<T>: value semantics, O(1) sharing, copy-on-write, uniqueness reuse.

#include <gtest/gtest.h>

#include "sacpp/sac/array.hpp"
#include "sacpp/sac/config.hpp"

namespace sacpp::sac {
namespace {

TEST(Array, DefaultIsScalarZero) {
  Array<double> a;
  EXPECT_TRUE(a.is_scalar());
  EXPECT_DOUBLE_EQ(a.scalar(), 0.0);
}

TEST(Array, ScalarConstruction) {
  Array<double> a(3.5);
  EXPECT_EQ(a.rank(), 0u);
  EXPECT_DOUBLE_EQ(a.scalar(), 3.5);
  EXPECT_EQ(a.elem_count(), 1);
}

TEST(Array, ConstantFill) {
  Array<double> a(Shape{2, 3}, 7.0);
  EXPECT_EQ(a.shape(), (Shape{2, 3}));
  for (extent_t i = 0; i < a.elem_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.at_linear(i), 7.0);
  }
}

TEST(Array, VectorFromInitializerList) {
  auto v = Array<int>::vector({1, 2, 3});
  EXPECT_EQ(v.shape(), (Shape{3}));
  EXPECT_EQ(v[{1}], 2);
}

TEST(Array, ElementSelectionByIndexVector) {
  Array<double> a(Shape{2, 2}, 0.0);
  double* p = a.mutable_data();
  p[3] = 9.0;
  EXPECT_DOUBLE_EQ((a[IndexVec{1, 1}]), 9.0);
  EXPECT_DOUBLE_EQ((a[IndexVec{0, 0}]), 0.0);
}

TEST(Array, ScalarOnNonScalarThrows) {
  Array<double> a(Shape{2}, 0.0);
  EXPECT_THROW(a.scalar(), ContractError);
}

TEST(Array, CopyIsSharedBuffer) {
  Array<double> a(Shape{4}, 1.0);
  Array<double> b = a;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_FALSE(a.unique());
}

TEST(Array, CopyOnWriteDetachesSharedBuffer) {
  Array<double> a(Shape{4}, 1.0);
  Array<double> b = a;
  b.mutable_data()[0] = 99.0;
  EXPECT_NE(a.data(), b.data());
  EXPECT_DOUBLE_EQ(a.at_linear(0), 1.0);
  EXPECT_DOUBLE_EQ(b.at_linear(0), 99.0);
  EXPECT_TRUE(a.unique());
  EXPECT_TRUE(b.unique());
}

TEST(Array, UniqueMutationReusesBufferInPlace) {
  Array<double> a(Shape{4}, 1.0);
  const double* before = a.data();
  a.mutable_data()[0] = 2.0;
  EXPECT_EQ(a.data(), before);  // no copy: reference count was one
}

TEST(Array, ReuseDisabledForcesFreshBuffer) {
  SacConfig cfg = config();
  cfg.reuse = false;
  ScopedConfig guard(cfg);
  Array<double> a(Shape{4}, 1.0);
  const double* before = a.data();
  a.mutable_data()[0] = 2.0;
  EXPECT_NE(a.data(), before);
  EXPECT_DOUBLE_EQ(a.at_linear(0), 2.0);
  EXPECT_DOUBLE_EQ(a.at_linear(1), 1.0);  // contents preserved by the copy
}

TEST(Array, StatsCountAllocationsAndReuse) {
  reset_stats();
  Array<double> a(Shape{8}, 0.0);
  EXPECT_EQ(stats().allocations, 1u);
  EXPECT_EQ(stats().bytes_allocated, 8u * sizeof(double));
  a.mutable_data()[0] = 1.0;
  EXPECT_EQ(stats().reuses, 1u);
  Array<double> b = a;
  b.mutable_data()[0] = 2.0;  // shared -> copy-on-write
  EXPECT_EQ(stats().copies_on_write, 1u);
  EXPECT_EQ(stats().allocations, 2u);
}

TEST(Array, Rank0HasOneElement) {
  Array<double> a(Shape{}, 5.0);
  EXPECT_EQ(a.elem_count(), 1);
  EXPECT_DOUBLE_EQ(a.scalar(), 5.0);
}

TEST(Array, Rank3UnpackedAccess) {
  Array<double> a(Shape{2, 3, 4}, 0.0);
  a.mutable_data()[a.shape().linearize({1, 2, 3})] = 42.0;
  EXPECT_DOUBLE_EQ(a(1, 2, 3), 42.0);
}

TEST(Array, MoveLeavesSourceReusable) {
  Array<double> a(Shape{4}, 3.0);
  Array<double> b = std::move(a);
  EXPECT_EQ(b.shape(), (Shape{4}));
  EXPECT_TRUE(b.unique());
}

TEST(Array, DimAndShapeFreeFunctions) {
  Array<double> a(Shape{2, 3}, 0.0);
  EXPECT_EQ(dim(a), 2u);
  EXPECT_EQ(shape_of(a), (Shape{2, 3}));
}

TEST(Array, EmptyShapeArrayHasZeroElements) {
  Array<double> a(Shape{0, 5}, 0.0);
  EXPECT_EQ(a.elem_count(), 0);
}

}  // namespace
}  // namespace sacpp::sac
