// AdmissionQueue tests: priority ordering, bounded capacity with eviction,
// deadline shedding, gang-fit scheduling with bounded head-of-line bypass,
// and shutdown settling.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "sacpp/serve/queue.hpp"

using namespace sacpp::serve;

namespace {

struct Handle {
  std::future<SolveResult> future;
};

QueuedJob make_job(std::uint64_t id, Priority priority, Handle* handle,
                   std::uint32_t gang = 1, std::int64_t deadline_ns = 0) {
  QueuedJob job;
  job.request.id = id;
  job.request.priority = priority;
  job.gang = gang;
  job.deadline_ns = deadline_ns;
  handle->future = job.promise.get_future();
  return job;
}

bool settled(Handle& handle) {
  return handle.future.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

TEST(ServeQueue, PriorityThenFifoOrder) {
  AdmissionQueue queue(8);
  Handle h[5];
  queue.push(make_job(1, Priority::kLow, &h[0]));
  queue.push(make_job(2, Priority::kNormal, &h[1]));
  queue.push(make_job(3, Priority::kHigh, &h[2]));
  queue.push(make_job(4, Priority::kHigh, &h[3]));
  queue.push(make_job(5, Priority::kNormal, &h[4]));

  std::vector<std::uint64_t> order;
  QueuedJob job;
  while (queue.pop_best(/*free_cores=*/8, /*now_ns=*/0, &job)) {
    order.push_back(job.request.id);
    job.promise.set_value({});  // settle so the promise is not abandoned
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 4, 2, 5, 1}));
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(ServeQueue, RejectsWhenFullOfEqualPriority) {
  AdmissionQueue queue(2);
  Handle h[3];
  EXPECT_EQ(queue.push(make_job(1, Priority::kNormal, &h[0])),
            AdmissionQueue::Admit::kAccepted);
  EXPECT_EQ(queue.push(make_job(2, Priority::kNormal, &h[1])),
            AdmissionQueue::Admit::kAccepted);
  EXPECT_EQ(queue.push(make_job(3, Priority::kNormal, &h[2])),
            AdmissionQueue::Admit::kRejected);
  // The rejected job's future resolves immediately with a shed status.
  ASSERT_TRUE(settled(h[2]));
  const SolveResult res = h[2].future.get();
  EXPECT_EQ(res.status, SolveStatus::kShedCapacity);
  EXPECT_EQ(res.id, 3u);
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.counters().rejected, 1u);
}

TEST(ServeQueue, HighPriorityEvictsNewestLowest) {
  AdmissionQueue queue(3);
  Handle h[4];
  queue.push(make_job(1, Priority::kLow, &h[0]));
  queue.push(make_job(2, Priority::kLow, &h[1]));
  queue.push(make_job(3, Priority::kNormal, &h[2]));
  EXPECT_EQ(queue.push(make_job(4, Priority::kHigh, &h[3])),
            AdmissionQueue::Admit::kAcceptedEvicted);
  // The NEWEST low job (id 2) is the victim; the older one keeps its slot.
  ASSERT_TRUE(settled(h[1]));
  EXPECT_EQ(h[1].future.get().status, SolveStatus::kShedCapacity);
  EXPECT_FALSE(settled(h[0]));
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.counters().evicted, 1u);

  QueuedJob job;
  ASSERT_TRUE(queue.pop_best(1, 0, &job));
  EXPECT_EQ(job.request.id, 4u);  // the high job went to the front
  job.promise.set_value({});
  ASSERT_TRUE(queue.pop_best(1, 0, &job));
  job.promise.set_value({});
  ASSERT_TRUE(queue.pop_best(1, 0, &job));
  EXPECT_EQ(job.request.id, 1u);
  job.promise.set_value({});
}

TEST(ServeQueue, LowestPriorityPushIntoFullQueueIsRejected) {
  AdmissionQueue queue(1);
  Handle h[2];
  queue.push(make_job(1, Priority::kHigh, &h[0]));
  // A low push cannot evict the high occupant.
  EXPECT_EQ(queue.push(make_job(2, Priority::kLow, &h[1])),
            AdmissionQueue::Admit::kRejected);
  EXPECT_FALSE(settled(h[0]));
}

TEST(ServeQueue, DeadlineShedAtPop) {
  AdmissionQueue queue(8);
  Handle expired, alive;
  queue.push(make_job(1, Priority::kNormal, &expired, 1, /*deadline=*/100));
  queue.push(make_job(2, Priority::kNormal, &alive, 1, /*deadline=*/1000));

  QueuedJob job;
  // At now=500 job 1 is past its deadline: shed, never dispatched.
  ASSERT_TRUE(queue.pop_best(8, /*now_ns=*/500, &job));
  EXPECT_EQ(job.request.id, 2u);
  job.promise.set_value({});
  ASSERT_TRUE(settled(expired));
  EXPECT_EQ(expired.future.get().status, SolveStatus::kShedDeadline);
  EXPECT_EQ(queue.counters().shed_deadline, 1u);
}

TEST(ServeQueue, GangTooWideIsHeldNotDropped) {
  AdmissionQueue queue(8);
  Handle wide;
  queue.push(make_job(1, Priority::kNormal, &wide, /*gang=*/4));
  QueuedJob job;
  EXPECT_FALSE(queue.pop_best(/*free_cores=*/2, 0, &job));
  EXPECT_EQ(queue.depth(), 1u);  // still queued, waiting for cores
  EXPECT_TRUE(queue.pop_best(/*free_cores=*/4, 0, &job));
  job.promise.set_value({});
}

TEST(ServeQueue, SmallJobsBypassWideHeadOnlyBoundedly) {
  AdmissionQueue queue(64);
  Handle wide;
  queue.push(make_job(1, Priority::kHigh, &wide, /*gang=*/8));
  std::vector<Handle> small(AdmissionQueue::kMaxHeadBypass + 2);
  for (std::size_t i = 0; i < small.size(); ++i) {
    queue.push(
        make_job(100 + i, Priority::kNormal, &small[i], /*gang=*/1));
  }
  // With only 2 free cores the wide head never fits; small jobs may jump it
  // at most kMaxHeadBypass consecutive times, then dispatch stalls.
  QueuedJob job;
  for (std::uint32_t i = 0; i < AdmissionQueue::kMaxHeadBypass; ++i) {
    ASSERT_TRUE(queue.pop_best(2, 0, &job)) << "bypass " << i;
    EXPECT_GE(job.request.id, 100u);
    job.promise.set_value({});
  }
  EXPECT_FALSE(queue.pop_best(2, 0, &job))
      << "bypass budget exhausted: the queue must hold for the head job";
  // Once the wide job fits, it dispatches and the bypass budget resets.
  ASSERT_TRUE(queue.pop_best(8, 0, &job));
  EXPECT_EQ(job.request.id, 1u);
  job.promise.set_value({});
  ASSERT_TRUE(queue.pop_best(2, 0, &job));
  job.promise.set_value({});
}

TEST(ServeQueue, CloseSettlesSubsequentPushes) {
  AdmissionQueue queue(4);
  Handle before, after;
  queue.push(make_job(1, Priority::kNormal, &before));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.push(make_job(2, Priority::kNormal, &after)),
            AdmissionQueue::Admit::kClosed);
  ASSERT_TRUE(settled(after));
  EXPECT_EQ(after.future.get().status, SolveStatus::kShedCapacity);
  // Jobs queued before the close stay poppable (draining shutdown)...
  QueuedJob job;
  ASSERT_TRUE(queue.pop_best(4, 0, &job));
  job.promise.set_value({});
}

TEST(ServeQueue, ShedAllSettlesEverything) {
  AdmissionQueue queue(8);
  std::vector<Handle> handles(5);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    queue.push(make_job(i + 1, Priority::kLow, &handles[i]));
  }
  EXPECT_EQ(queue.shed_all(SolveStatus::kShedCapacity, "stopping"), 5u);
  EXPECT_EQ(queue.depth(), 0u);
  for (Handle& h : handles) {
    ASSERT_TRUE(settled(h));
    const SolveResult res = h.future.get();
    EXPECT_EQ(res.status, SolveStatus::kShedCapacity);
    EXPECT_EQ(res.error, "stopping");
  }
}

TEST(ServeQueue, DestructionSettlesQueuedJobs) {
  // Regression (found by the schedule explorer's drain invariant): a queue
  // destroyed with jobs still waiting used to abandon their promises, so
  // callers saw std::future_error{broken_promise} instead of a shed result.
  std::vector<Handle> handles(3);
  {
    AdmissionQueue queue(8);
    for (std::size_t i = 0; i < handles.size(); ++i) {
      queue.push(make_job(i + 1, Priority::kNormal, &handles[i]));
    }
  }
  for (Handle& h : handles) {
    ASSERT_TRUE(settled(h));
    SolveResult res;
    ASSERT_NO_THROW(res = h.future.get()) << "broken promise on destruction";
    EXPECT_EQ(res.status, SolveStatus::kShedCapacity);
  }
}

TEST(ServeQueue, CountersAndPeakDepth) {
  AdmissionQueue queue(4);
  Handle h[4];
  for (int i = 0; i < 4; ++i) {
    queue.push(make_job(static_cast<std::uint64_t>(i), Priority::kNormal,
                        &h[i]));
  }
  QueuedJob job;
  while (queue.pop_best(4, 0, &job)) job.promise.set_value({});
  const QueueCounters counters = queue.counters();
  EXPECT_EQ(counters.accepted, 4u);
  EXPECT_EQ(counters.dispatched, 4u);
  EXPECT_EQ(counters.peak_depth, 4u);
}

}  // namespace
