// The per-level profiler: accumulation, enable/disable cost gating, and
// the exclusive-per-level accounting inside the recursive V-cycle.

#include <gtest/gtest.h>

#include "sacpp/mg/driver.hpp"
#include "sacpp/mg/mg_ref.hpp"
#include "sacpp/mg/profiler.hpp"

namespace sacpp::mg {
namespace {

class ProfilerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    LevelProfiler::instance().reset();
    LevelProfiler::instance().enable(false);
  }
  void TearDown() override {
    LevelProfiler::instance().reset();
    LevelProfiler::instance().enable(false);
  }
};

TEST_F(ProfilerFixture, DisabledRecordsNothing) {
  {
    LevelScope scope(3);
  }
  EXPECT_TRUE(LevelProfiler::instance().entries().empty());
  EXPECT_DOUBLE_EQ(LevelProfiler::instance().total_seconds(), 0.0);
}

TEST_F(ProfilerFixture, EnabledAccumulatesPerLevel) {
  LevelProfiler::instance().enable(true);
  { LevelScope scope(2); }
  { LevelScope scope(2); }
  { LevelScope scope(5); }
  const auto entries = LevelProfiler::instance().entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].level, 2);
  EXPECT_EQ(entries[0].count, 2u);
  EXPECT_EQ(entries[1].level, 5);
  EXPECT_EQ(entries[1].count, 1u);
  EXPECT_GE(LevelProfiler::instance().total_seconds(), 0.0);
}

TEST_F(ProfilerFixture, RecordAddsTime) {
  LevelProfiler::instance().record(4, 1.5);
  LevelProfiler::instance().record(4, 0.5);
  EXPECT_DOUBLE_EQ(LevelProfiler::instance().total_seconds(), 2.0);
  const auto entries = LevelProfiler::instance().entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_DOUBLE_EQ(entries[0].seconds, 2.0);
}

TEST_F(ProfilerFixture, MgRunVisitsEveryLevelTheRightNumberOfTimes) {
  LevelProfiler::instance().enable(true);
  const MgSpec spec = MgSpec::custom(16, 2);  // 4 levels
  MgRef solver(spec);
  solver.setup_default_rhs();
  solver.zero_u();
  solver.initial_resid();
  solver.iterate(2);
  const auto entries = LevelProfiler::instance().entries();
  ASSERT_EQ(entries.size(), 4u);
  for (const auto& e : entries) {
    // each mg3p touches every level twice (restriction down-leg plus the
    // up-leg / top block) except the coarsest (bottom smooth only); the
    // iteration-ending residual lies outside the profiled mg3p scopes.
    // With 2 iterations: coarsest 2 visits, every other level 4.
    if (e.level == 1) {
      EXPECT_EQ(e.count, 2u) << "level " << e.level;
    } else {
      EXPECT_EQ(e.count, 4u) << "level " << e.level;
    }
  }
}

TEST_F(ProfilerFixture, SacVCycleExcludesRecursionFromEachLevel) {
  LevelProfiler::instance().enable(true);
  const MgSpec spec = MgSpec::custom(16, 1);
  RunOptions opts;
  opts.warmup = false;
  opts.record_norms = false;
  (void)run_benchmark(Variant::kSac, spec, opts);
  const auto entries = LevelProfiler::instance().entries();
  ASSERT_FALSE(entries.empty());
  // exclusive accounting: the finest level's time must NOT contain the
  // whole run (it would if the recursive call were inside its scope);
  // with exclusive scopes the finest level is large but not everything.
  double total = 0.0, finest = 0.0;
  for (const auto& e : entries) {
    total += e.seconds;
    if (e.level == spec.levels()) finest = e.seconds;
  }
  EXPECT_GT(finest, 0.0);
  EXPECT_LT(finest, total);
  EXPECT_GT(finest / total, 0.5);  // but it still dominates (64x the work)
}

}  // namespace
}  // namespace sacpp::mg
