// Request-scoped tracing (sacpp_obs v2): thread-local context binding and
// span stamping, tail-based retention (store FIFO + re-retain semantics),
// the TailSampler's decision table, the stitching validator's rules, and the
// JSON export shape.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>

#include "sacpp/obs/obs.hpp"
#include "sacpp/obs/sampler.hpp"
#include "sacpp/obs/trace.hpp"

namespace sacpp::obs {
namespace {

// Fresh global state per test: the rings and the retained store are both
// process-wide.
void scrub() {
  set_enabled(false);
  reset();
  clear_retained_traces();
  set_retained_trace_capacity(64);
}

// ---------------------------------------------------------------------------
// Context binding
// ---------------------------------------------------------------------------

TEST(TraceContext, DefaultIsInactive) {
  EXPECT_FALSE(current_trace().active());
  EXPECT_EQ(current_trace().trace_id, 0u);
}

TEST(TraceContext, MintedIdsAreUniqueAndNonzero) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t id = mint_trace_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate trace id " << id;
  }
}

TEST(TraceContext, BindingNestsAndRestoresLikeAStack) {
  const std::uint64_t outer_id = mint_trace_id();
  const std::uint64_t inner_id = mint_trace_id();
  {
    TraceBinding outer({outer_id, 0, kTraceSampled});
    EXPECT_EQ(current_trace().trace_id, outer_id);
    EXPECT_EQ(current_trace().flags, kTraceSampled);
    {
      TraceBinding inner({inner_id, 7, kTraceForced});
      EXPECT_EQ(current_trace().trace_id, inner_id);
      EXPECT_EQ(current_trace().parent_span, 7u);
    }
    EXPECT_EQ(current_trace().trace_id, outer_id);
  }
  EXPECT_FALSE(current_trace().active());
}

TEST(TraceContext, BindingIsPerThread) {
  const std::uint64_t id = mint_trace_id();
  TraceBinding bind({id, 0, 0});
  std::uint64_t seen_on_other_thread = 99;
  std::thread([&] { seen_on_other_thread = current_trace().trace_id; }).join();
  EXPECT_EQ(seen_on_other_thread, 0u) << "context leaked across threads";
  EXPECT_EQ(current_trace().trace_id, id);
}

TEST(TraceContext, BoundContextStampsRecordedSpans) {
  scrub();
  set_enabled(true);
  const std::uint64_t id = mint_trace_id();
  {
    TraceBinding bind({id, 0, 0});
    record_span(SpanKind::kPhase, "stamped", 10, 5, 1);
  }
  record_span(SpanKind::kPhase, "unstamped", 20, 5, 2);
  set_enabled(false);

  std::uint64_t stamped_trace = 99;
  std::uint64_t unstamped_trace = 99;
  for (const ThreadSpans& t : snapshot_spans()) {
    for (const SpanRecord& r : t.spans) {
      if (std::string_view(r.name) == "stamped") stamped_trace = r.trace;
      if (std::string_view(r.name) == "unstamped") unstamped_trace = r.trace;
    }
  }
  EXPECT_EQ(stamped_trace, id);
  EXPECT_EQ(unstamped_trace, 0u);
  scrub();
}

// ---------------------------------------------------------------------------
// Retained store
// ---------------------------------------------------------------------------

TraceMeta meta_for(std::uint64_t id) {
  TraceMeta m;
  m.trace_id = id;
  m.request_id = id;
  m.reason = RetainReason::kFlagged;
  m.status = "ok";
  m.e2e_ns = 100;
  return m;
}

TEST(TraceRetention, RejectsZeroId) {
  EXPECT_FALSE(retain_trace(TraceMeta{}));
}

TEST(TraceRetention, HarvestsOnlySpansStampedWithTheTraceId) {
  scrub();
  set_enabled(true);
  const std::uint64_t mine = mint_trace_id();
  const std::uint64_t other = mint_trace_id();
  {
    TraceBinding bind({mine, 0, 0});
    record_span(SpanKind::kPhase, "b_second", 50, 5);
    record_span(SpanKind::kPhase, "a_first", 10, 5);
  }
  {
    TraceBinding bind({other, 0, 0});
    record_span(SpanKind::kPhase, "foreign", 30, 5);
  }
  set_enabled(false);

  ASSERT_TRUE(retain_trace(meta_for(mine)));
  const auto traces = retained_traces();
  ASSERT_EQ(traces.size(), 1u);
  const RetainedTrace& t = traces[0];
  EXPECT_EQ(t.meta.trace_id, mine);
  ASSERT_EQ(t.spans.size(), 2u);
  // Harvest sorts by start time regardless of recording order.
  EXPECT_STREQ(t.spans[0].span.name, "a_first");
  EXPECT_STREQ(t.spans[1].span.name, "b_second");
  scrub();
}

TEST(TraceRetention, ReRetainRefreshesInsteadOfDuplicating) {
  scrub();
  set_enabled(true);
  const std::uint64_t id = mint_trace_id();
  {
    TraceBinding bind({id, 0, 0});
    record_span(SpanKind::kPhase, "early", 10, 5);
    ASSERT_TRUE(retain_trace(meta_for(id)));
    record_span(SpanKind::kPhase, "late", 20, 5);
    ASSERT_TRUE(retain_trace(meta_for(id)));
  }
  set_enabled(false);
  const auto traces = retained_traces();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].spans.size(), 2u);
  scrub();
}

TEST(TraceRetention, FifoEvictionAtCapacity) {
  scrub();
  set_retained_trace_capacity(2);
  const std::uint64_t a = mint_trace_id();
  const std::uint64_t b = mint_trace_id();
  const std::uint64_t c = mint_trace_id();
  ASSERT_TRUE(retain_trace(meta_for(a)));
  ASSERT_TRUE(retain_trace(meta_for(b)));
  ASSERT_TRUE(retain_trace(meta_for(c)));
  EXPECT_EQ(retained_trace_count(), 2u);
  EXPECT_EQ(evicted_trace_count(), 1u);
  const auto traces = retained_traces();
  EXPECT_EQ(traces[0].meta.trace_id, b);  // a (oldest) was evicted
  EXPECT_EQ(traces[1].meta.trace_id, c);
  scrub();
}

TEST(TraceRetention, AddTraceSpanAppendsToRetainedOnly) {
  scrub();
  const std::uint64_t kept = mint_trace_id();
  const std::uint64_t unknown = mint_trace_id();
  ASSERT_TRUE(retain_trace(meta_for(kept)));

  SpanRecord client;
  client.start_ns = 5;
  client.dur_ns = 50;
  client.name = kSpanClient;
  client.kind = SpanKind::kPhase;
  add_trace_span(kept, client, "client-thread");
  add_trace_span(unknown, client, "client-thread");  // silent no-op

  const auto traces = retained_traces();
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].spans.size(), 1u);
  EXPECT_STREQ(traces[0].spans[0].span.name, kSpanClient);
  EXPECT_EQ(traces[0].spans[0].span.trace, kept);  // stamped on append
  EXPECT_EQ(traces[0].spans[0].thread, "client-thread");
  scrub();
}

// ---------------------------------------------------------------------------
// Stitching validation
// ---------------------------------------------------------------------------

// One millisecond units keep the numbers readable; the validator's slop is
// max(root/20, 1ms) so a 100ms root tolerates 5ms.
constexpr std::int64_t kMs = 1'000'000;

TraceSpan make_span(const char* name, std::int64_t start_ms,
                    std::int64_t dur_ms) {
  TraceSpan s;
  s.span.name = name;
  s.span.kind = SpanKind::kPhase;
  s.span.start_ns = start_ms * kMs;
  s.span.dur_ns = dur_ms * kMs;
  s.thread = "test";
  return s;
}

RetainedTrace completed_trace() {
  RetainedTrace t;
  t.meta = meta_for(1234);
  t.spans.push_back(make_span(kSpanServeE2e, 0, 100));
  t.spans.push_back(make_span(kSpanServeQueue, 0, 30));
  t.spans.push_back(make_span(kSpanServeExec, 30, 70));
  t.spans.push_back(make_span("mg_level", 40, 10));  // solver detail span
  return t;
}

TEST(ValidateTrace, AcceptsWellFormedCompletedTrace) {
  std::string why;
  EXPECT_TRUE(validate_trace(completed_trace(), /*completed=*/true, &why))
      << why;
}

TEST(ValidateTrace, AcceptsShedTraceWithoutExecSpan) {
  RetainedTrace t;
  t.meta = meta_for(99);
  t.spans.push_back(make_span(kSpanServeE2e, 0, 100));
  t.spans.push_back(make_span(kSpanServeQueue, 0, 100));
  std::string why;
  EXPECT_TRUE(validate_trace(t, /*completed=*/false, &why)) << why;
}

TEST(ValidateTrace, RejectsMissingRoot) {
  RetainedTrace t = completed_trace();
  t.spans.erase(t.spans.begin());  // drop serve_e2e
  std::string why;
  EXPECT_FALSE(validate_trace(t, true, &why));
  EXPECT_NE(why.find("serve_e2e"), std::string::npos) << why;
}

TEST(ValidateTrace, RejectsDuplicateRoot) {
  RetainedTrace t = completed_trace();
  t.spans.push_back(make_span(kSpanServeE2e, 0, 100));
  std::string why;
  EXPECT_FALSE(validate_trace(t, true, &why));
  EXPECT_NE(why.find("duplicate"), std::string::npos) << why;
}

TEST(ValidateTrace, RejectsCompletedWithoutExecSpan) {
  RetainedTrace t = completed_trace();
  t.spans.erase(t.spans.begin() + 2);  // drop serve_job
  std::string why;
  EXPECT_FALSE(validate_trace(t, true, &why));
  EXPECT_NE(why.find("serve_job"), std::string::npos) << why;
}

TEST(ValidateTrace, RejectsShedCarryingAnExecSpan) {
  const RetainedTrace t = completed_trace();
  std::string why;
  EXPECT_FALSE(validate_trace(t, /*completed=*/false, &why));
  EXPECT_NE(why.find("shed"), std::string::npos) << why;
}

TEST(ValidateTrace, RejectsOrphanSpanOutsideTheRootWindow) {
  RetainedTrace t = completed_trace();
  t.spans.push_back(make_span("stray", 200, 10));  // far past root end
  std::string why;
  EXPECT_FALSE(validate_trace(t, true, &why));
  EXPECT_NE(why.find("orphan"), std::string::npos) << why;
}

TEST(ValidateTrace, ClientAndRespondSpansAreExemptFromContainment) {
  RetainedTrace t = completed_trace();
  // The client span brackets the server window from the minting side.
  t.spans.push_back(make_span(kSpanClient, -50, 200));
  t.spans.push_back(make_span(kSpanRespond, 101, 10));
  std::string why;
  EXPECT_TRUE(validate_trace(t, true, &why)) << why;
}

TEST(ValidateTrace, RejectsDecompositionOutsideFivePercent) {
  RetainedTrace t = completed_trace();
  t.spans[2] = make_span(kSpanServeExec, 30, 50);  // queue 30 + exec 50 = 80%
  std::string why;
  EXPECT_FALSE(validate_trace(t, true, &why));
  EXPECT_NE(why.find("5%"), std::string::npos) << why;
}

// ---------------------------------------------------------------------------
// Tail sampler
// ---------------------------------------------------------------------------

TEST(TailSampler, AnomaliesAlwaysRetainWithErrorDefault) {
  TailSampler s;
  RetainReason reason = RetainReason::kSampled;
  EXPECT_TRUE(s.should_retain(10, /*anomalous=*/true, 0, 1, &reason));
  EXPECT_EQ(reason, RetainReason::kError);
}

TEST(TailSampler, ForcedFlagRetainsAsFlagged) {
  TailSampler s;
  RetainReason reason = RetainReason::kSampled;
  EXPECT_TRUE(s.should_retain(10, false, kTraceForced, 1, &reason));
  EXPECT_EQ(reason, RetainReason::kFlagged);
}

TEST(TailSampler, NothingRetainsDuringWarmup) {
  TailSampler s;  // head rate 0
  for (std::uint64_t i = 0; i < TailSampler::kWarmupCount - 1; ++i) {
    s.observe(1000);
  }
  EXPECT_EQ(s.slow_threshold_ns(), 0u);
  RetainReason reason;
  EXPECT_FALSE(s.should_retain(1'000'000'000, false, 0, 42, &reason));
}

TEST(TailSampler, SlowTailRetainsAfterWarmup) {
  TailSampler s;
  for (int i = 0; i < 1000; ++i) s.observe(1000);
  const std::uint64_t slow = s.slow_threshold_ns();
  ASSERT_GT(slow, 0u);
  ASSERT_LE(slow, 1024u);  // log-bucket lower bound of the 1000ns population
  RetainReason reason = RetainReason::kError;
  EXPECT_TRUE(s.should_retain(1'000'000, false, 0, 7, &reason));
  EXPECT_EQ(reason, RetainReason::kSlow);
  EXPECT_FALSE(s.should_retain(1, false, 0, 7, &reason));
}

TEST(TailSampler, HeadRateOneRetainsEverything) {
  TailSampler s(1.0);
  RetainReason reason = RetainReason::kError;
  for (std::uint64_t id = 1; id <= 50; ++id) {
    EXPECT_TRUE(s.should_retain(10, false, 0, id, &reason)) << id;
    EXPECT_EQ(reason, RetainReason::kSampled);
  }
}

TEST(TailSampler, HeadRateIsDeterministicPerTraceId) {
  TailSampler s(0.5);
  for (std::uint64_t id = 1; id <= 20; ++id) {
    const bool first = s.should_retain(10, false, 0, id, nullptr);
    EXPECT_EQ(first, s.should_retain(10, false, 0, id, nullptr)) << id;
  }
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

TEST(TraceExport, JsonCarriesSchemaKeys) {
  scrub();
  set_enabled(true);
  const std::uint64_t id = mint_trace_id();
  {
    TraceBinding bind({id, 0, kTraceForced});
    record_span(SpanKind::kPhase, kSpanServeQueue, 10, 20);
  }
  set_enabled(false);
  TraceMeta m = meta_for(id);
  m.queue_ns = 20;
  m.exec_ns = 75;
  m.e2e_ns = 100;
  ASSERT_TRUE(retain_trace(m));

  std::ostringstream out;
  write_traces_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"retained\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\":\"" + std::to_string(id) + "\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"decomposition\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"flagged\""), std::string::npos);
  EXPECT_NE(json.find(kSpanServeQueue), std::string::npos);
  scrub();
}

TEST(TraceExport, ReasonNamesAreStable) {
  EXPECT_STREQ(retain_reason_name(RetainReason::kSlow), "slow");
  EXPECT_STREQ(retain_reason_name(RetainReason::kShed), "shed");
  EXPECT_STREQ(retain_reason_name(RetainReason::kDeadline), "deadline");
  EXPECT_STREQ(retain_reason_name(RetainReason::kError), "error");
  EXPECT_STREQ(retain_reason_name(RetainReason::kFlagged), "flagged");
  EXPECT_STREQ(retain_reason_name(RetainReason::kSampled), "sampled");
}

}  // namespace
}  // namespace sacpp::obs
