// Oracle property tests: the WITH-loop engine against a direct evaluation
// of the paper's set definition,
//
//   { iv | forall j: a_j <= iv_j < b_j  and  (iv_j - a_j) mod s_j < w_j }
//
// on randomised generators, across every execution-strategy combination
// (specialised/generic, sequential/multithreaded).  The oracle enumerates
// ALL index positions and tests membership with the formula verbatim — no
// shared code with the engine.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sacpp/sac/sac.hpp"

namespace sacpp::sac {
namespace {

struct RandomGen {
  Shape shape;
  IndexVec lower, upper, step, width;
};

RandomGen make_random_generator(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> rank_dist(1, 3);
  std::uniform_int_distribution<extent_t> extent_dist(1, 7);
  std::uniform_int_distribution<extent_t> step_dist(1, 3);
  const int rank = rank_dist(rng);
  IndexVec ext, lo, up, st, wi;
  for (int d = 0; d < rank; ++d) {
    const extent_t n = extent_dist(rng);
    ext.push_back(n);
    std::uniform_int_distribution<extent_t> bound(0, n);
    extent_t a = bound(rng), b = bound(rng);
    if (a > b) std::swap(a, b);
    lo.push_back(a);
    up.push_back(b);
    const extent_t s = step_dist(rng);
    st.push_back(s);
    std::uniform_int_distribution<extent_t> width_dist(1, s);
    wi.push_back(width_dist(rng));
  }
  return RandomGen{Shape(ext), lo, up, st, wi};
}

bool member(const RandomGen& g, const IndexVec& iv) {
  for (std::size_t j = 0; j < iv.size(); ++j) {
    if (!(g.lower[j] <= iv[j] && iv[j] < g.upper[j])) return false;
    if ((iv[j] - g.lower[j]) % g.step[j] >= g.width[j]) return false;
  }
  return true;
}

double body_value(const Shape& shp, const IndexVec& iv) {
  return static_cast<double>(shp.linearize(iv)) * 1.25 + 3.0;
}

std::vector<double> oracle_genarray(const RandomGen& g, double dflt) {
  std::vector<double> out(static_cast<std::size_t>(g.shape.elem_count()));
  for (extent_t off = 0; off < g.shape.elem_count(); ++off) {
    const IndexVec iv = g.shape.delinearize(off);
    out[static_cast<std::size_t>(off)] =
        member(g, iv) ? body_value(g.shape, iv) : dflt;
  }
  return out;
}

double oracle_fold(const RandomGen& g) {
  double acc = 0.0;
  for (extent_t off = 0; off < g.shape.elem_count(); ++off) {
    const IndexVec iv = g.shape.delinearize(off);
    if (member(g, iv)) acc += body_value(g.shape, iv);
  }
  return acc;
}

Gen to_gen(const RandomGen& g) {
  Gen gen;
  gen.lower = g.lower;
  gen.upper = g.upper;
  gen.step = g.step;
  gen.width = g.width;
  return gen;
}

struct Strategy {
  bool specialize;
  bool mt;
};

class OracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(OracleSweep, GenarrayMatchesSetDefinition) {
  std::mt19937_64 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 60; ++trial) {
    const RandomGen g = make_random_generator(rng);
    const auto expect = oracle_genarray(g, -7.0);
    for (const Strategy& s :
         {Strategy{true, false}, Strategy{false, false}, Strategy{true, true}}) {
      SacConfig cfg = config();
      cfg.specialize = s.specialize;
      cfg.mt_enabled = s.mt;
      cfg.mt_threads = 3;
      cfg.mt_threshold = 1;
      ScopedConfig guard(cfg);
      const Shape shp = g.shape;
      auto got = with_genarray<double>(
          shp, to_gen(g),
          [&shp](const IndexVec& iv) { return body_value(shp, iv); }, -7.0);
      ASSERT_EQ(got.elem_count(),
                static_cast<extent_t>(expect.size()));
      for (extent_t i = 0; i < got.elem_count(); ++i) {
        ASSERT_DOUBLE_EQ(got.at_linear(i),
                         expect[static_cast<std::size_t>(i)])
            << "trial " << trial << " spec=" << s.specialize
            << " mt=" << s.mt << " shape " << g.shape.to_string();
      }
    }
  }
  shutdown_runtime();
}

TEST_P(OracleSweep, ModarrayKeepsNonMembers) {
  std::mt19937_64 rng(static_cast<unsigned>(GetParam()) + 1000);
  for (int trial = 0; trial < 60; ++trial) {
    const RandomGen g = make_random_generator(rng);
    const Shape shp = g.shape;
    Array<double> base = with_genarray<double>(
        shp, [&shp](const IndexVec& iv) {
          return -static_cast<double>(shp.linearize(iv));
        });
    auto got = with_modarray(base, to_gen(g), [&shp](const IndexVec& iv) {
      return body_value(shp, iv);
    });
    for (extent_t off = 0; off < shp.elem_count(); ++off) {
      const IndexVec iv = shp.delinearize(off);
      const double expect =
          member(g, iv) ? body_value(shp, iv) : base.at_linear(off);
      ASSERT_DOUBLE_EQ(got.at_linear(off), expect) << "trial " << trial;
    }
  }
}

TEST_P(OracleSweep, FoldMatchesSetDefinition) {
  std::mt19937_64 rng(static_cast<unsigned>(GetParam()) + 2000);
  for (int trial = 0; trial < 60; ++trial) {
    const RandomGen g = make_random_generator(rng);
    const Shape shp = g.shape;
    const double expect = oracle_fold(g);
    const double got = with_fold(
        std::plus<>{}, 0.0, shp, to_gen(g),
        [&shp](const IndexVec& iv) { return body_value(shp, iv); });
    ASSERT_DOUBLE_EQ(got, expect) << "trial " << trial;
  }
}

TEST_P(OracleSweep, GridCountMatchesMemberCensus) {
  std::mt19937_64 rng(static_cast<unsigned>(GetParam()) + 3000);
  for (int trial = 0; trial < 100; ++trial) {
    const RandomGen g = make_random_generator(rng);
    extent_t census = 0;
    for (extent_t off = 0; off < g.shape.elem_count(); ++off) {
      census += member(g, g.shape.delinearize(off)) ? 1 : 0;
    }
    ASSERT_EQ(grid_count(g.lower, g.upper, g.step, g.width), census)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace sacpp::sac
