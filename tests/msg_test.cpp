// The in-process message-passing world: point-to-point matching and
// ordering, collectives, stats, and stress under contention.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "sacpp/msg/msg.hpp"

namespace sacpp::msg {
namespace {

TEST(MsgWorld, SingleRankRoundTripToSelf) {
  World w(1);
  w.run([](Comm& c) {
    double out[3] = {1.0, 2.0, 3.0};
    double in[3] = {};
    c.send(0, 7, out);
    c.recv(0, 7, in);
    EXPECT_DOUBLE_EQ(in[2], 3.0);
  });
}

TEST(MsgWorld, PingPong) {
  World w(2);
  w.run([](Comm& c) {
    double buf[1];
    if (c.rank() == 0) {
      buf[0] = 42.0;
      c.send(1, 1, buf);
      c.recv(1, 2, buf);
      EXPECT_DOUBLE_EQ(buf[0], 43.0);
    } else {
      c.recv(0, 1, buf);
      buf[0] += 1.0;
      c.send(0, 2, buf);
    }
  });
}

TEST(MsgWorld, TagMatchingSelectsCorrectMessage) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      double a[1] = {1.0}, b[1] = {2.0};
      c.send(1, 10, a);
      c.send(1, 20, b);
    } else {
      double got[1];
      c.recv(0, 20, got);  // out of order: tag 20 first
      EXPECT_DOUBLE_EQ(got[0], 2.0);
      c.recv(0, 10, got);
      EXPECT_DOUBLE_EQ(got[0], 1.0);
    }
  });
}

TEST(MsgWorld, SameTagPreservesOrder) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      for (double v = 0.0; v < 10.0; v += 1.0) {
        double m[1] = {v};
        c.send(1, 5, m);
      }
    } else {
      for (double v = 0.0; v < 10.0; v += 1.0) {
        double got[1];
        c.recv(0, 5, got);
        ASSERT_DOUBLE_EQ(got[0], v);
      }
    }
  });
}

TEST(MsgWorld, SendrecvRingDoesNotDeadlock) {
  World w(4);
  w.run([](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    double out[1] = {static_cast<double>(c.rank())};
    double in[1];
    c.sendrecv(next, out, prev, in, 3);
    EXPECT_DOUBLE_EQ(in[0], static_cast<double>(prev));
  });
}

TEST(MsgWorld, LengthMismatchThrows) {
  World w(1);
  EXPECT_THROW(w.run([](Comm& c) {
    double out[2] = {1.0, 2.0};
    double in[3];
    c.send(0, 1, out);
    c.recv(0, 1, in);
  }),
               ContractError);
}

TEST(MsgWorld, AllreduceSumAndMax) {
  World w(4);
  w.run([](Comm& c) {
    const double mine = static_cast<double>(c.rank() + 1);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(mine), 10.0);
    EXPECT_DOUBLE_EQ(c.allreduce_max(mine), 4.0);
    // repeated reductions must not interfere
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), 4.0);
  });
}

TEST(MsgWorld, BroadcastFromNonzeroRoot) {
  World w(3);
  w.run([](Comm& c) {
    double data[2] = {0.0, 0.0};
    if (c.rank() == 2) {
      data[0] = 5.0;
      data[1] = 6.0;
    }
    c.broadcast(2, data);
    EXPECT_DOUBLE_EQ(data[0], 5.0);
    EXPECT_DOUBLE_EQ(data[1], 6.0);
  });
}

TEST(MsgWorld, GatherScatterRoundTrip) {
  World w(4);
  w.run([](Comm& c) {
    double block[2] = {static_cast<double>(c.rank()),
                       static_cast<double>(c.rank() * 10)};
    std::vector<double> all(c.rank() == 0 ? 8 : 0);
    c.gather(0, block, all);
    if (c.rank() == 0) {
      for (int r = 0; r < 4; ++r) {
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r)], r);
      }
      for (double& v : all) v += 1.0;
    }
    double back[2];
    c.scatter(0, all, back);
    EXPECT_DOUBLE_EQ(back[0], static_cast<double>(c.rank()) + 1.0);
  });
}

TEST(MsgWorld, IrecvCompletesOnWait) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      double in[2];
      auto req = c.irecv(1, 9, in);
      req.wait();
      EXPECT_DOUBLE_EQ(in[0], 7.0);
      EXPECT_DOUBLE_EQ(in[1], 8.0);
    } else {
      double out[2] = {7.0, 8.0};
      c.send(0, 9, out);
    }
  });
}

TEST(MsgWorld, IrecvTestPollsWithoutBlocking) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      double in[1];
      auto req = c.irecv(1, 3, in);
      EXPECT_FALSE(req.test());  // nothing sent yet (sender waits for us)
      double go[1] = {1.0};
      c.send(1, 1, go);
      req.wait();
      EXPECT_DOUBLE_EQ(in[0], 5.0);
      EXPECT_TRUE(req.test());  // idempotent after completion
    } else {
      double go[1];
      c.recv(0, 1, go);  // released only after rank 0's failed test()
      double out[1] = {5.0};
      c.send(0, 3, out);
    }
  });
}

TEST(MsgWorld, PostedReceivesOverlapBothDirections) {
  World w(4);
  w.run([](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    double from_next[1], from_prev[1];
    auto r1 = c.irecv(next, 1, from_next);
    auto r2 = c.irecv(prev, 2, from_prev);
    double mine[1] = {static_cast<double>(c.rank())};
    c.send(prev, 1, mine);
    c.send(next, 2, mine);
    r1.wait();
    r2.wait();
    EXPECT_DOUBLE_EQ(from_next[0], static_cast<double>(next));
    EXPECT_DOUBLE_EQ(from_prev[0], static_cast<double>(prev));
  });
}

TEST(MsgWorld, BarrierSeparatesPhases) {
  World w(4);
  std::atomic<int> phase1{0};
  w.run([&](Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    EXPECT_EQ(phase1.load(), 4);  // nobody passes before everyone arrived
    c.barrier();
  });
}

TEST(MsgWorld, StatsCountTraffic) {
  World w(2);
  w.reset_stats();
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> m(100, 1.0);
      c.send(1, 1, m);
    } else {
      std::vector<double> m(100);
      c.recv(0, 1, m);
    }
    c.barrier();
  });
  EXPECT_EQ(w.stats().messages, 1u);
  EXPECT_EQ(w.stats().bytes, 100u * sizeof(double));
  EXPECT_GE(w.stats().barriers, 1u);
}

TEST(MsgWorld, ManyConcurrentExchangesStress) {
  World w(4);
  w.run([](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    for (int round = 0; round < 200; ++round) {
      double out[4] = {static_cast<double>(round), 0, 0,
                       static_cast<double>(c.rank())};
      double in[4];
      c.sendrecv(next, out, prev, in, round);
      ASSERT_DOUBLE_EQ(in[0], static_cast<double>(round));
      ASSERT_DOUBLE_EQ(in[3], static_cast<double>(prev));
    }
  });
}

TEST(MsgWorld, RankFailurePropagates) {
  World w(2);
  EXPECT_THROW(w.run([](Comm& c) {
    c.barrier();
    if (c.rank() == 1) throw ContractError("rank 1 exploded");
  }),
               ContractError);
}

TEST(MsgWorld, InvalidRankCountRejected) {
  EXPECT_THROW(World(0), ContractError);
}

// -- service-load coverage: bounded mailboxes and shutdown diagnostics ------

TEST(MsgWorldLoad, SlowConsumerMailboxGrowthStaysBounded) {
  constexpr std::size_t kCap = 8;
  constexpr int kMessages = 200;
  World w(2, /*max_mailbox_messages=*/kCap);
  std::atomic<std::size_t> max_depth{0};
  w.run([&](Comm& c) {
    double buf[1] = {0.0};
    if (c.rank() == 0) {
      // Fast producer: fires messages as quickly as the cap lets it.
      for (int i = 0; i < kMessages; ++i) {
        buf[0] = static_cast<double>(i);
        c.send(1, 5, buf);
      }
    } else {
      // Slow consumer: samples its own mailbox depth between receives.
      for (int i = 0; i < kMessages; ++i) {
        const std::size_t depth = w.mailbox_depth(1);
        std::size_t seen = max_depth.load();
        while (depth > seen && !max_depth.compare_exchange_weak(seen, depth)) {
        }
        c.recv(0, 5, buf);
        EXPECT_DOUBLE_EQ(buf[0], static_cast<double>(i));  // order preserved
      }
    }
  });
  EXPECT_LE(max_depth.load(), kCap);
  EXPECT_GT(w.stats().send_blocked, 0u);  // backpressure actually engaged
  EXPECT_EQ(w.stats().messages, static_cast<std::uint64_t>(kMessages));
}

TEST(MsgWorldLoad, BoundedMailboxCollectivesExemptFromCap) {
  // Collectives must not deadlock against a full point-to-point mailbox:
  // the broadcast payloads ride reserved tags outside the cap accounting.
  World w(3, /*max_mailbox_messages=*/1);
  w.run([](Comm& c) {
    double v[2] = {0.0, 0.0};
    if (c.rank() == 0) {
      v[0] = 1.5;
      v[1] = 2.5;
    }
    c.broadcast(0, v);
    EXPECT_DOUBLE_EQ(v[0], 1.5);
    EXPECT_DOUBLE_EQ(v[1], 2.5);
    c.barrier();
  });
}

TEST(MsgWorldLoad, RecvAfterWorldShutdownThrowsCleanDiagnostic) {
  World w(2);
  w.run([](Comm&) {});  // program over; world is shut down
  double buf[1];
  try {
    w.receive(0, 1, 3, buf);
    FAIL() << "recv after shutdown must throw, not hang";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("world shutdown"), std::string::npos)
        << e.what();
  }
}

TEST(MsgWorldLoad, RecvFromFinishedRankThrowsInsteadOfHanging) {
  World w(2);
  EXPECT_THROW(w.run([](Comm& c) {
    if (c.rank() == 0) {
      // Rank 1 returns immediately and will never send: this recv must
      // fail with a diagnostic naming the finished rank, not block forever.
      double buf[1];
      c.recv(1, 9, buf);
    }
  }),
               ContractError);
}

TEST(MsgWorldLoad, MessageSentBeforeFinishIsStillReceivable) {
  // A rank may legitimately send and then finish; the consumer must still
  // be able to collect the buffered message afterwards.
  World w(2);
  w.run([](Comm& c) {
    double buf[1] = {7.0};
    if (c.rank() == 1) {
      c.send(0, 4, buf);  // fire and exit
    } else {
      c.recv(1, 4, buf);
      EXPECT_DOUBLE_EQ(buf[0], 7.0);
    }
  });
}

TEST(MsgWorldLoad, BackpressureTowardFinishedRankThrows) {
  // Producer keeps sending into a bounded mailbox whose consumer has
  // finished: once the mailbox is full the send must diagnose the dead
  // consumer rather than wait for a drain that cannot happen.
  World w(2, /*max_mailbox_messages=*/2);
  EXPECT_THROW(w.run([](Comm& c) {
                 if (c.rank() == 0) {
                   double buf[1] = {0.0};
                   for (int i = 0; i < 50; ++i) c.send(1, 6, buf);
                 }
                 // rank 1 receives nothing and returns
               }),
               ContractError);
}

}  // namespace
}  // namespace sacpp::msg
