// Array formatting and binary serialisation: round trips, format
// validation, corruption detection.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>

#include "sacpp/sac/io.hpp"
#include "sacpp/sac/sac.hpp"

namespace sacpp::sac {
namespace {

class TempFile {
 public:
  TempFile() {
    char buf[] = "/tmp/sacpp_io_test_XXXXXX";
    const int fd = mkstemp(buf);
    if (fd >= 0) close(fd);
    path_ = buf;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Array<double> random_array(const Shape& shp, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  return with_genarray<double>(shp,
                               [&](const IndexVec&) { return dist(rng); });
}

TEST(ArrayIo, RoundTripPreservesBitsAcrossRanks) {
  TempFile f;
  for (const Shape& shp :
       {Shape{}, Shape{7}, Shape{3, 5}, Shape{2, 3, 4}, Shape{2, 2, 2, 2}}) {
    auto a = random_array(shp, 42 + static_cast<unsigned>(shp.rank()));
    save(f.path(), a);
    auto b = load(f.path());
    ASSERT_EQ(b.shape(), a.shape());
    for (extent_t i = 0; i < a.elem_count(); ++i) {
      ASSERT_EQ(b.at_linear(i), a.at_linear(i)) << i;  // bitwise
    }
  }
}

TEST(ArrayIo, SpecialValuesSurvive) {
  TempFile f;
  auto a = Array<double>::vector(
      {0.0, -0.0, 1e-308, 1e308, -3.5, 1.0 / 3.0});
  save(f.path(), a);
  auto b = load(f.path());
  for (extent_t i = 0; i < a.elem_count(); ++i) {
    ASSERT_EQ(b.at_linear(i), a.at_linear(i));
  }
}

TEST(ArrayIo, MissingFileThrows) {
  EXPECT_THROW(load("/tmp/sacpp_definitely_missing_file"), ContractError);
}

TEST(ArrayIo, WrongMagicRejected) {
  TempFile f;
  std::ofstream(f.path()) << "this is not an array";
  EXPECT_THROW(load(f.path()), ContractError);
}

TEST(ArrayIo, TruncatedPayloadRejected) {
  TempFile f;
  save(f.path(), random_array(Shape{10, 10}, 1));
  // chop the file
  std::ifstream in(f.path(), std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(f.path(), std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size() / 2));
  out.close();
  EXPECT_THROW(load(f.path()), ContractError);
}

TEST(ArrayIo, TruncatedHeaderRejected) {
  TempFile f;
  std::ofstream(f.path(), std::ios::binary) << "SACPPAR";  // 7 of 8 bytes
  EXPECT_THROW(load(f.path()), ContractError);
}

TEST(ToText, ScalarVectorMatrix) {
  EXPECT_EQ(to_text(Array<double>(2.5)), "2.5");
  EXPECT_EQ(to_text(iota<double>(3)), "[0 1 2]");
  auto m = with_genarray<double>(Shape{2, 2}, [](const IndexVec& iv) {
    return static_cast<double>(iv[0] * 2 + iv[1]);
  });
  EXPECT_EQ(to_text(m), "[0 1]\n[2 3]");
}

TEST(ToText, RankThreeRendersBlocks) {
  auto c = genarray_const(cube_shape(3, 2), 1.0);
  const std::string s = to_text(c);
  EXPECT_NE(s.find("[0, ...]"), std::string::npos);
  EXPECT_NE(s.find("[1, ...]"), std::string::npos);
}

TEST(ToText, LargeArraysElided) {
  auto big = genarray_const(Shape{100, 100}, 0.0);
  const std::string s = to_text(big, 4, /*max_elems=*/64);
  EXPECT_NE(s.find("elided"), std::string::npos);
  EXPECT_NE(s.find("[100, 100]"), std::string::npos);
}

TEST(ToText, PrecisionControl) {
  Array<double> pi(3.14159265);
  EXPECT_EQ(to_text(pi, 3), "3.14");
  EXPECT_EQ(to_text(pi, 6), "3.14159");
}

TEST(ArrayIo, MgGridCheckpointRoundTrip) {
  // realistic use: checkpoint an extended MG grid and continue
  TempFile f;
  auto grid = random_array(cube_shape(3, 18), 7);
  save(f.path(), grid);
  auto restored = load(f.path());
  const StencilCoeffs c{{-0.5, 0.1, 0.05, 0.02}};
  auto r1 = relax_kernel(grid, c);
  auto r2 = relax_kernel(restored, c);
  for (extent_t i = 0; i < r1.elem_count(); ++i) {
    ASSERT_EQ(r1.at_linear(i), r2.at_linear(i));
  }
}

}  // namespace
}  // namespace sacpp::sac
