// Mathematical structure of the multigrid components: linearity of the
// V-cycle operator, symmetry preservation, operator identities on Fourier
// modes — properties the paper's Fig. 2 specification implies and any
// correct implementation must satisfy.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "sacpp/mg/mg_sac.hpp"
#include "sacpp/mg/mg_sac_direct.hpp"

namespace sacpp::mg {
namespace {

using sac::Array;

Array<double> random_extended(const Shape& shp, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  return sac::with_genarray<double>(shp,
                                    [&](const IndexVec&) { return dist(rng); });
}

double max_abs_diff(const Array<double>& a, const Array<double>& b) {
  double m = 0.0;
  for (extent_t i = 0; i < a.elem_count(); ++i) {
    m = std::max(m, std::abs(a.at_linear(i) - b.at_linear(i)));
  }
  return m;
}

class VCycleLinearity : public ::testing::TestWithParam<extent_t> {};

TEST_P(VCycleLinearity, VCycleIsALinearOperator) {
  // M(alpha r1 + beta r2) == alpha M r1 + beta M r2 — Fig. 2's M^k is a
  // composition of linear maps, and so must the implementation be.
  const extent_t nx = GetParam();
  MgSac mg(MgSpec::custom(nx, 1));
  const Shape shp = cube_shape(3, nx + 2);
  auto r1 = random_extended(shp, 1);
  auto r2 = random_extended(shp, 2);
  const double alpha = 2.5, beta = -0.75;

  auto lhs = mg.vcycle(r1 * alpha + r2 * beta);
  auto rhs = mg.vcycle(r1) * alpha + mg.vcycle(r2) * beta;
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-12);
}

TEST_P(VCycleLinearity, VCycleOfZeroIsZero) {
  const extent_t nx = GetParam();
  MgSac mg(MgSpec::custom(nx, 1));
  auto z = mg.vcycle(sac::genarray_const(cube_shape(3, nx + 2), 0.0));
  EXPECT_DOUBLE_EQ(sac::max_abs(z), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, VCycleLinearity,
                         ::testing::Values<extent_t>(8, 16));

TEST(Symmetry, AxisPermutationCommutesWithTheSolver) {
  // The operator stencils are isotropic, so transposing the input axes
  // must transpose the solution.
  const extent_t nx = 8;
  const MgSpec spec = MgSpec::custom(nx, 2);
  MgSacDirect mg(spec);
  const Shape shp = cube_shape(3, nx);
  auto v = sac::with_genarray<double>(shp, [](const IndexVec& iv) {
    return (iv[0] == 2 && iv[1] == 3 && iv[2] == 5)    ? 1.0
           : (iv[0] == 6 && iv[1] == 1 && iv[2] == 4) ? -1.0
                                                       : 0.0;
  });
  // permute axes (i j k) -> (k i j)
  auto vp = sac::with_genarray<double>(shp, [&](const IndexVec& iv) {
    return v[IndexVec{iv[1], iv[2], iv[0]}];
  });
  auto u = mg.mgrid(v, 2);
  auto up = mg.mgrid(vp, 2);
  for_each_index(shp, [&](const IndexVec& iv) {
    ASSERT_NEAR((up[IndexVec{iv[2], iv[0], iv[1]}]), u[iv], 1e-13);
  });
}

TEST(Symmetry, TranslationCommutesWithTheSolver) {
  // Periodic boundaries make the whole solver translation-equivariant.
  const extent_t nx = 16;
  const MgSpec spec = MgSpec::custom(nx, 1);
  MgSacDirect mg(spec);
  const Shape shp = cube_shape(3, nx);
  auto v = sac::with_genarray<double>(shp, [](const IndexVec& iv) {
    return (iv[0] == 3 && iv[1] == 3 && iv[2] == 3)    ? 1.0
           : (iv[0] == 9 && iv[1] == 9 && iv[2] == 9) ? -1.0
                                                       : 0.0;
  });
  // The transfer operators sample even points, so the solver commutes with
  // translations by multiples of the coarsest-grid period.
  const IndexVec shift_by{8, 8, 8};
  auto vs = sac::rotate(shift_by, v);
  auto u = mg.mgrid(v, 1);
  auto us = mg.mgrid(vs, 1);
  auto u_shifted = sac::rotate(shift_by, u);
  EXPECT_LT(max_abs_diff(us, u_shifted), 1e-13);
}

TEST(Symmetry, SignFlipNegatesTheSolution) {
  const extent_t nx = 16;
  MgSacDirect mg(MgSpec::custom(nx, 2));
  const Shape shp = cube_shape(3, nx);
  auto v = random_extended(shp, 5);
  v = v - sac::sum(v) / static_cast<double>(v.elem_count());
  auto u = mg.mgrid(v, 2);
  auto un = mg.mgrid(-v, 2);
  EXPECT_LT(max_abs_diff(un, -u), 1e-12);
}

TEST(Operator, ConstantFieldsAreInTheKernelOfA) {
  // A has zero row sum (−8/3 + 6·0 + 12/6 + 8/12 = 0): constants map to 0,
  // the discrete analogue of del^2 c == 0.
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  const double row_sum =
      spec.a[0] + 6.0 * spec.a[1] + 12.0 * spec.a[2] + 8.0 * spec.a[3];
  EXPECT_NEAR(row_sum, 0.0, 1e-15);
  auto c = sac::genarray_const(cube_shape(3, 8), 3.25);
  auto r = sac::relax_kernel_periodic(c, spec.a);
  EXPECT_LT(sac::max_abs(r), 1e-13);
}

TEST(Operator, FourierModeIsAnEigenvector) {
  // On a periodic grid, e^{2 pi i m.x/n} is an eigenvector of any
  // convolution; for the real operator, cos modes map to scaled cos modes.
  const extent_t n = 16;
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  const Shape shp = cube_shape(3, n);
  const double w = 2.0 * std::numbers::pi / static_cast<double>(n);
  auto mode = sac::with_genarray<double>(shp, [&](const IndexVec& iv) {
    return std::cos(w * static_cast<double>(iv[0] + 2 * iv[1] + iv[2]));
  });
  auto out = sac::relax_kernel_periodic(mode, spec.a);
  // eigenvalue of the class-coefficient stencil for mode (1, 2, 1):
  const double c1 = std::cos(w), c2 = std::cos(2.0 * w);
  // sum over offsets o of a[cls(o)] * cos(w*(o0 + 2 o1 + o2)) factorises:
  const double f0 = 2.0 * c1;   // offsets ±1 on axis 0 (weight per axis)
  const double f1 = 2.0 * c2;   // offsets ±1 on axis 1 (frequency 2)
  const double f2 = 2.0 * c1;   // offsets ±1 on axis 2
  // (1 + f0)(1 + f1)(1 + f2) expands into the 27 points; regroup per class:
  const double lam =
      spec.a[0] + spec.a[1] * (f0 + f1 + f2) +
      spec.a[2] * (f0 * f1 + f0 * f2 + f1 * f2) + spec.a[3] * f0 * f1 * f2;
  for (extent_t i = 0; i < out.elem_count(); ++i) {
    ASSERT_NEAR(out.at_linear(i), lam * mode.at_linear(i), 1e-12) << i;
  }
}

TEST(Operator, EigenvalueDampingExplainsSmoothing) {
  // The smoother must damp high-frequency modes strongly: the contraction
  // factor |1 + lam_S(m) * lam_A(m)/...| — here we check directly that one
  // smoothing step shrinks the residual of a high-frequency error much
  // more than a low-frequency one (the premise of multigrid).
  const extent_t n = 32;
  const MgSpec spec = MgSpec::for_class(MgClass::S);
  MgSacDirect mg(spec);
  const Shape shp = cube_shape(3, n);
  const double w = 2.0 * std::numbers::pi / static_cast<double>(n);

  auto damping = [&](extent_t freq) {
    auto err = sac::with_genarray<double>(shp, [&](const IndexVec& iv) {
      return std::cos(w * static_cast<double>(freq * (iv[0] + iv[1] + iv[2])));
    });
    // residual equation for error e: r = -A e; one smoothing step
    // e' = e + S r; report |e'| / |e|
    auto r = -sac::relax_kernel_periodic(err, spec.a);
    auto e2 = err + sac::relax_kernel_periodic(r, spec.s);
    return sac::max_abs(e2) / sac::max_abs(err);
  };
  const double low = damping(1);
  const double high = damping(n / 2 - 1);
  EXPECT_LT(high, 0.6);        // high frequencies damped hard
  EXPECT_GT(low, high * 1.5);  // low frequencies survive (coarse grid's job)
}

}  // namespace
}  // namespace sacpp::mg
