// SVG chart rendering: structure, scaling, escaping, file output.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sacpp/common/error.hpp"
#include "sacpp/common/svg_plot.hpp"

namespace sacpp {
namespace {

TEST(SvgChart, RenderContainsStructure) {
  SvgChart c("Speedups", "processors", "speedup");
  c.add_series("SAC", {{1, 1.0}, {2, 1.9}, {4, 3.4}});
  c.add_series("Fortran-77", {{1, 1.0}, {2, 1.5}, {4, 2.2}});
  c.add_diagonal("linear");
  const std::string svg = c.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Speedups"), std::string::npos);
  EXPECT_NE(svg.find("SAC"), std::string::npos);
  EXPECT_NE(svg.find("Fortran-77"), std::string::npos);
  EXPECT_NE(svg.find("linear"), std::string::npos);
  EXPECT_NE(svg.find("processors"), std::string::npos);
  // two polylines (one per series)
  std::size_t count = 0, pos = 0;
  while ((pos = svg.find("<polyline", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

TEST(SvgChart, EscapesMarkupInLabels) {
  SvgChart c("a < b & c", "x", "y");
  c.add_series("s<1>", {{0, 0}, {1, 1}});
  const std::string svg = c.render();
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_NE(svg.find("s&lt;1&gt;"), std::string::npos);
  EXPECT_EQ(svg.find("a < b"), std::string::npos);
}

TEST(SvgChart, EmptyChartRejected) {
  SvgChart c("t", "x", "y");
  EXPECT_THROW(c.render(), ContractError);
  EXPECT_THROW(c.add_series("s", {}), ContractError);
}

TEST(SvgChart, DegenerateRangesStillRender) {
  SvgChart c("flat", "x", "y");
  c.add_series("s", {{1, 5.0}, {2, 5.0}, {3, 5.0}});  // zero y-span
  const std::string svg = c.render();
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  SvgChart p("point", "x", "y");
  p.add_series("s", {{2, 3}});  // single point
  EXPECT_NE(p.render().find("<circle"), std::string::npos);
}

TEST(SvgChart, WritesFile) {
  char buf[] = "/tmp/sacpp_svg_XXXXXX";
  const int fd = mkstemp(buf);
  if (fd >= 0) close(fd);
  SvgChart c("t", "x", "y");
  c.add_series("s", {{0, 0}, {1, 1}});
  c.write(buf);
  std::ifstream in(buf);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("</svg>"), std::string::npos);
  std::remove(buf);
}

TEST(SvgChart, EmptyPathIsNoop) {
  SvgChart c("t", "x", "y");
  c.add_series("s", {{0, 0}});
  c.write("");  // must not throw
}

}  // namespace
}  // namespace sacpp
