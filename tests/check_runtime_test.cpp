// Runtime checkers: the alias/uniqueness pass flags raw writes to shared
// buffers and allocation imbalance, the race detector flags overlapping or
// gapped worker intervals and foreign ownership traffic — and both stay
// silent on correct runs, including real multi-threaded with-loops.

#include <gtest/gtest.h>

#include <thread>

#include "sacpp/check/check.hpp"
#include "sacpp/sac/check_events.hpp"
#include "sacpp/sac/sac.hpp"

namespace sacpp::check {
namespace {

namespace cd = sac::check_detail;

using sac::Array;

// -- alias / uniqueness -------------------------------------------------------

TEST(AliasCheck, SharedInPlaceWriteFires) {
  Session s;
  {
    Array<double> a(Shape{8}, 1.0);
    Array<double> b = a;  // refcount 2: a raw write is visible through b
    a.raw_data_unchecked()[0] = 5.0;
    EXPECT_DOUBLE_EQ(b.at_linear(0), 5.0);  // the aliasing really happened
  }
  DiagnosticEngine& e = s.finish();
  ASSERT_GE(e.count(Pass::kAlias), 1u);
  EXPECT_NE(e.diagnostics()[0].message.find("use-after-steal"),
            std::string::npos);
}

TEST(AliasCheck, CopyOnWritePathIsSilent) {
  Session s;
  {
    Array<double> a(Shape{8}, 1.0);
    Array<double> b = a;
    b.mutable_data()[0] = 5.0;  // COW: unshares first
    EXPECT_DOUBLE_EQ(a.at_linear(0), 1.0);
    a.raw_data_unchecked()[2] = 3.0;  // now unique again: legitimate
  }
  EXPECT_TRUE(s.finish().empty()) << s.engine().to_ascii();
}

TEST(AliasCheck, SelfAssignAndMovesStayBalanced) {
  Session s;
  {
    Array<double> a(Shape{16}, 2.0);
    Array<double>& alias = a;
    a = alias;  // self-assignment must not double-release
    Array<double> b = std::move(a);
    Array<double> c(Shape{4}, 0.0);
    c = std::move(b);
    EXPECT_DOUBLE_EQ(c.at_linear(0), 2.0);
  }
  EXPECT_TRUE(s.finish().empty()) << s.engine().to_ascii();
}

TEST(AliasCheck, LeakedBufferFires) {
  auto* leaked = new Array<double>(Shape{4}, 0.0);
  {
    Session s;
    DiagnosticEngine& e = s.finish();
    // Session balance is delta-based: the pre-existing allocation does not
    // count, so the engine is clean...
    EXPECT_TRUE(e.empty());
  }
  Session s2;
  auto* second = new Array<double>(Shape{4}, 0.0);
  DiagnosticEngine& e2 = s2.finish();
  // ... but one allocated inside the session without a release does.
  ASSERT_EQ(e2.count(Pass::kAlias), 1u);
  EXPECT_NE(e2.diagnostics()[0].message.find("never released"),
            std::string::npos);
  delete second;
  delete leaked;
}

TEST(AliasCheck, BalanceAnalysisDirections) {
  // Direct unit check of the analysis itself, both signs.
  EXPECT_TRUE(analyze_allocation_balance(cd::live_buffer_count()).empty());
  const auto leak = analyze_allocation_balance(cd::live_buffer_count() - 2);
  ASSERT_EQ(leak.size(), 1u);
  EXPECT_NE(leak[0].message.find("never released"), std::string::npos);
  const auto over = analyze_allocation_balance(cd::live_buffer_count() + 1);
  ASSERT_EQ(over.size(), 1u);
  EXPECT_NE(over[0].message.find("freed twice"), std::string::npos);
}

// -- parallel-region race detection ------------------------------------------

TEST(RaceCheck, DisjointChunksAreSilent) {
  Session s;
  const std::uint64_t r = cd::begin_parallel_region(0, 100, 1);
  cd::record_chunk(r, 0, 0, 50, /*write=*/true);
  cd::record_chunk(r, 1, 50, 100, /*write=*/true);
  cd::end_parallel_region();
  EXPECT_TRUE(s.finish().empty()) << s.engine().to_ascii();
}

TEST(RaceCheck, WriteWriteOverlapFires) {
  Session s;
  const std::uint64_t r = cd::begin_parallel_region(0, 100, 1);
  cd::record_chunk(r, 0, 0, 60, /*write=*/true);
  cd::record_chunk(r, 1, 50, 100, /*write=*/true);
  cd::end_parallel_region();
  DiagnosticEngine& e = s.finish();
  ASSERT_GE(e.count(Pass::kRace), 1u);
  EXPECT_NE(e.diagnostics()[0].message.find("write/write overlap"),
            std::string::npos);
}

TEST(RaceCheck, ReadWriteOverlapFiresButSharedReadsDoNot) {
  Session s;
  const std::uint64_t r = cd::begin_parallel_region(0, 100, 1);
  cd::record_chunk(r, 0, 0, 100, /*write=*/false);   // shared read
  cd::record_chunk(r, 1, 0, 100, /*write=*/false);   // shared read: fine
  cd::record_chunk(r, 2, 0, 50, /*write=*/true);     // writes under a read
  cd::record_chunk(r, 2, 50, 100, /*write=*/true);   // same worker: fine
  cd::end_parallel_region();
  DiagnosticEngine& e = s.finish();
  std::size_t read_write = 0;
  for (const Diagnostic& d : e.diagnostics()) {
    if (d.message.find("read/write overlap") != std::string::npos) {
      ++read_write;
    }
    EXPECT_EQ(d.message.find("write/write"), std::string::npos) << d.message;
  }
  // Each of the two readers collides with each of the writer's two chunks.
  EXPECT_EQ(read_write, 4u);
}

TEST(RaceCheck, CoverageGapFires) {
  Session s;
  const std::uint64_t r = cd::begin_parallel_region(0, 100, 1);
  cd::record_chunk(r, 0, 0, 40, /*write=*/true);
  cd::record_chunk(r, 1, 60, 100, /*write=*/true);
  cd::end_parallel_region();
  DiagnosticEngine& e = s.finish();
  ASSERT_GE(e.count(Pass::kRace), 1u);
  EXPECT_NE(e.to_ascii().find("[40, 60) is assigned to no worker"),
            std::string::npos);
}

TEST(RaceCheck, MisalignedChunkStartFires) {
  Session s;
  const std::uint64_t r = cd::begin_parallel_region(0, 96, /*align=*/4);
  cd::record_chunk(r, 0, 0, 50, /*write=*/true);   // 50 is not a multiple of 4
  cd::record_chunk(r, 1, 50, 96, /*write=*/true);
  cd::end_parallel_region();
  DiagnosticEngine& e = s.finish();
  ASSERT_GE(e.count(Pass::kRace), 1u);
  EXPECT_NE(e.to_ascii().find("not aligned"), std::string::npos);
}

TEST(RaceCheck, RealParallelWithLoopIsSilent) {
  Session s;
  {
    sac::SacConfig cfg = sac::config();
    cfg.mt_threads = 4;
    cfg.mt_threshold = 1;  // force the MT path even for small arrays
    sac::ScopedConfig scoped(cfg);
    const Shape shp{64, 8};
    Array<double> a = sac::with_genarray<double>(shp, [&](const IndexVec& iv) {
      return static_cast<double>(shp.linearize(iv));
    });
    Array<double> b = sac::with_genarray<double>(shp, [&](const IndexVec& iv) {
      return 2.0 * static_cast<double>(shp.linearize(iv));
    });
    EXPECT_DOUBLE_EQ(b.at_linear(100), 2.0 * a.at_linear(100));
  }
  DiagnosticEngine& e = s.finish();
  EXPECT_TRUE(e.empty()) << e.to_ascii();
  EXPECT_FALSE(cd::ownership_watch());  // disarmed after the regions ended
}

TEST(RaceCheck, ForeignOwnershipMutationFires) {
  Session s;
  {
    Array<double> a(Shape{64}, 1.0);
    const std::uint64_t r = cd::begin_parallel_region(0, 64, 1);
    cd::record_chunk(r, 0, 0, 64, /*write=*/true);
    // A worker thread copying the array retains/releases its buffer while
    // the region is active — ownership traffic off the coordinator.
    std::thread t([&a] { Array<double> copy = a; (void)copy; });
    t.join();
    cd::end_parallel_region();
  }
  DiagnosticEngine& e = s.finish();
  ASSERT_GE(e.count(Pass::kRace), 1u);
  EXPECT_NE(e.to_ascii().find("non-coordinating thread"), std::string::npos);
}

TEST(RaceCheck, CoordinatorOwnershipOpsAreSilent) {
  Session s;
  {
    Array<double> a(Shape{64}, 1.0);
    const std::uint64_t r = cd::begin_parallel_region(0, 64, 1);
    cd::record_chunk(r, 0, 0, 64, /*write=*/true);
    Array<double> copy = a;  // same thread as the coordinator: fine
    (void)copy;
    cd::end_parallel_region();
  }
  EXPECT_TRUE(s.finish().empty()) << s.engine().to_ascii();
}

// -- session mechanics --------------------------------------------------------

TEST(Session, RestoresCheckFlagAndClearsEvents) {
  const bool before = sac::config().check;
  {
    Session s;
    EXPECT_TRUE(sac::config().check);
    cd::record_buffer_event(cd::BufferEventKind::kSharedInPlaceWrite, 3);
    EXPECT_FALSE(s.finish().empty());
  }
  EXPECT_EQ(sac::config().check, before);
  // finish() cleared the log: a fresh session starts clean.
  Session s2;
  EXPECT_TRUE(s2.finish().empty());
}

TEST(Session, FinishIsIdempotent) {
  Session s;
  cd::record_buffer_event(cd::BufferEventKind::kSharedInPlaceWrite, 2);
  const std::size_t n = s.finish().size();
  EXPECT_EQ(s.finish().size(), n);  // second call must not re-analyse
}

}  // namespace
}  // namespace sacpp::check
