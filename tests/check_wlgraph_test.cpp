// With-loop graph verifier: silent on every builder-produced graph, loud on
// each crafted invariant violation, and exact on generator partitions
// (step/width grids included).  The fuzzer cross-checks the verifier against
// randomly composed legal and illegal graphs.

#include <gtest/gtest.h>

#include <memory>

#include "sacpp/check/check.hpp"
#include "sacpp/sac/sac.hpp"
#include "sacpp/sac/wlgraph.hpp"

namespace sacpp::check {
namespace {

using sac::Gen;
using sac::wl::Node;
using sac::wl::NodeRef;
using sac::wl::OpKind;

constexpr sac::StencilCoeffs kC{{-0.5, 0.125, 0.0625, 0.03125}};

bool has_error(const std::vector<Diagnostic>& ds) {
  for (const Diagnostic& d : ds) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

// -- legal graphs stay silent -------------------------------------------------

TEST(WlGraphVerify, MgLikeGraphIsClean) {
  // The shape of one MG relaxation step: r = v - A(u), u' = u + S(r).
  const Shape shp{6, 6, 6};
  auto u = sac::wl::input("u", shp);
  auto v = sac::wl::input("v", shp);
  auto r = sac::wl::sub(v, sac::wl::stencil(u, kC));
  auto u2 = sac::wl::add(u, sac::wl::stencil(r, kC));
  EXPECT_TRUE(verify_graph(u2).empty());
}

TEST(WlGraphVerify, AffineChainIsClean) {
  auto x = sac::wl::input("x", Shape{8, 8});
  auto g = sac::wl::shift(IndexVec{1, -1},
                          sac::wl::embed(IndexVec{10, 10}, IndexVec{1, 1},
                                         sac::wl::take(IndexVec{8, 8}, x)));
  EXPECT_TRUE(verify_graph(g).empty());
  // ... and stays clean after the optimiser collapses the chain.
  EXPECT_TRUE(verify_graph(sac::wl::optimise(g)).empty());
}

TEST(WlGraphVerify, SharedSubgraphReportedOnce) {
  // A broken node reached through two paths must be diagnosed exactly once.
  Node bad;
  bad.kind = OpKind::kInput;
  bad.shape = Shape{4};
  NodeRef shared = std::make_shared<const Node>(std::move(bad));  // unnamed
  auto root = sac::wl::add(sac::wl::neg(shared), sac::wl::abs(shared));
  const auto ds = verify_graph(root);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_NE(ds[0].message.find("no name"), std::string::npos);
}

TEST(WlGraphVerify, EngineOverloadCountsAndLocates) {
  DiagnosticEngine e;
  EXPECT_EQ(verify_graph(sac::wl::input("x", Shape{4}), e), 0u);
  Node bad;
  bad.kind = OpKind::kInput;
  bad.shape = Shape{4};
  auto root = sac::wl::neg(std::make_shared<const Node>(std::move(bad)));
  EXPECT_EQ(verify_graph(root, e), 1u);
  EXPECT_EQ(e.diagnostics()[0].location, "root/arg0");
}

// -- crafted violations fire --------------------------------------------------

TEST(WlGraphVerify, NullGraphFires) {
  EXPECT_TRUE(has_error(verify_graph(nullptr)));
}

TEST(WlGraphVerify, EwiseShapeMismatchFires) {
  Node n;
  n.kind = OpKind::kEwise;
  n.fn = sac::wl::EwiseFn::kAdd;
  n.shape = Shape{4};
  n.args = {sac::wl::input("a", Shape{4}), sac::wl::input("b", Shape{5})};
  const auto ds = verify_graph(std::make_shared<const Node>(std::move(n)));
  ASSERT_TRUE(has_error(ds));
  EXPECT_NE(ds[0].message.find("shape"), std::string::npos);
}

TEST(WlGraphVerify, WrongArityFires) {
  Node n;
  n.kind = OpKind::kEwise;
  n.fn = sac::wl::EwiseFn::kMul;  // binary
  n.shape = Shape{4};
  n.args = {sac::wl::input("a", Shape{4})};
  EXPECT_TRUE(has_error(verify_graph(std::make_shared<const Node>(std::move(n)))));
}

TEST(WlGraphVerify, NullChildFires) {
  Node n;
  n.kind = OpKind::kEwise;
  n.fn = sac::wl::EwiseFn::kNeg;
  n.shape = Shape{4};
  n.args = {nullptr};
  EXPECT_TRUE(has_error(verify_graph(std::make_shared<const Node>(std::move(n)))));
}

TEST(WlGraphVerify, ThinStencilGhostRingFires) {
  Node n;
  n.kind = OpKind::kStencil;
  n.shape = Shape{4, 2};
  n.args = {sac::wl::input("u", Shape{4, 2})};
  const auto ds = verify_graph(std::make_shared<const Node>(std::move(n)));
  ASSERT_TRUE(has_error(ds));
  EXPECT_NE(ds[0].message.find("ghost ring"), std::string::npos);
}

TEST(WlGraphVerify, GatherOffsetRankMismatchFires) {
  Node n;
  n.kind = OpKind::kGather;
  n.shape = Shape{4, 4};
  n.map.offset = IndexVec{0};  // rank 1 offset for a rank 2 node
  n.args = {sac::wl::input("x", Shape{4, 4})};
  EXPECT_TRUE(has_error(verify_graph(std::make_shared<const Node>(std::move(n)))));
}

TEST(WlGraphVerify, GatherZeroDivisorFires) {
  Node n;
  n.kind = OpKind::kGather;
  n.shape = Shape{4};
  n.map.den = 0;
  n.map.offset = IndexVec{0};
  n.args = {sac::wl::input("x", Shape{4})};
  const auto ds = verify_graph(std::make_shared<const Node>(std::move(n)));
  ASSERT_TRUE(has_error(ds));
  EXPECT_NE(ds[0].message.find("division by zero"), std::string::npos);
}

TEST(WlGraphVerify, DeadSourceGatherWarns) {
  // Shifting an 8-vector by 100 moves every read outside the source: the
  // whole result is the default value.  Legal (the evaluator's contract
  // covers it) but almost certainly a bug, hence a warning.
  auto g = sac::wl::shift(IndexVec{100}, sac::wl::input("x", Shape{8}));
  const auto ds = verify_graph(g);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].severity, Severity::kWarning);
  EXPECT_NE(ds[0].message.find("dead source"), std::string::npos);
}

// -- generator partitions -----------------------------------------------------

TEST(WlGraphVerify, DisjointTilingIsClean) {
  const Shape shp{8, 4};
  std::vector<Gen> gens;
  gens.push_back(Gen{IndexVec{0, 0}, IndexVec{4, 4}, {}, {}});
  gens.push_back(Gen{IndexVec{4, 0}, IndexVec{8, 4}, {}, {}});
  EXPECT_TRUE(verify_partitions(shp, gens, PartitionMode::kTiling).empty());
}

TEST(WlGraphVerify, StridedPhasesTileExactly) {
  // Even and odd phases of a step-2 grid partition a vector exactly — the
  // red/black decomposition every strided with-loop relies on.
  const Shape shp{8};
  std::vector<Gen> gens;
  gens.push_back(Gen{IndexVec{0}, IndexVec{8}, IndexVec{2}, IndexVec{1}});
  gens.push_back(Gen{IndexVec{1}, IndexVec{8}, IndexVec{2}, IndexVec{1}});
  EXPECT_TRUE(verify_partitions(shp, gens, PartitionMode::kTiling).empty());
}

TEST(WlGraphVerify, OverlapFires) {
  const Shape shp{8};
  std::vector<Gen> gens;
  gens.push_back(Gen{IndexVec{0}, IndexVec{5}, {}, {}});
  gens.push_back(Gen{IndexVec{4}, IndexVec{8}, {}, {}});
  const auto ds = verify_partitions(shp, gens, PartitionMode::kDisjoint);
  ASSERT_TRUE(has_error(ds));
  EXPECT_NE(ds[0].message.find("overlaps partition 0"), std::string::npos);
}

TEST(WlGraphVerify, StridedOverlapFires) {
  // Width 2 on step 2 covers everything; the second phase collides.
  const Shape shp{8};
  std::vector<Gen> gens;
  gens.push_back(Gen{IndexVec{0}, IndexVec{8}, IndexVec{2}, IndexVec{2}});
  gens.push_back(Gen{IndexVec{1}, IndexVec{8}, IndexVec{2}, IndexVec{1}});
  EXPECT_TRUE(has_error(verify_partitions(shp, gens, PartitionMode::kDisjoint)));
}

TEST(WlGraphVerify, CoverageGapFiresOnlyInTilingMode) {
  const Shape shp{8};
  std::vector<Gen> gens;
  gens.push_back(Gen{IndexVec{0}, IndexVec{3}, {}, {}});
  gens.push_back(Gen{IndexVec{5}, IndexVec{8}, {}, {}});
  EXPECT_TRUE(verify_partitions(shp, gens, PartitionMode::kDisjoint).empty());
  const auto ds = verify_partitions(shp, gens, PartitionMode::kTiling);
  ASSERT_TRUE(has_error(ds));
  EXPECT_NE(ds[0].message.find("not covered"), std::string::npos);
}

TEST(WlGraphVerify, InvalidGeneratorFires) {
  const Shape shp{8};
  std::vector<Gen> gens;
  gens.push_back(Gen{IndexVec{0}, IndexVec{9}, {}, {}});  // beyond the shape
  const auto ds = verify_partitions(shp, gens, PartitionMode::kDisjoint);
  ASSERT_TRUE(has_error(ds));
  EXPECT_NE(ds[0].message.find("invalid generator"), std::string::npos);
}

TEST(WlGraphVerify, HugeIndexSpaceSkipsWithWarning) {
  const Shape shp{4096, 4096, 4096};
  const auto ds = verify_partitions(shp, {}, PartitionMode::kTiling);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].severity, Severity::kWarning);
}

// -- fuzzer -------------------------------------------------------------------

TEST(WlGraphFuzz, VerifierSurvivesRandomGraphs) {
  const FuzzStats stats = fuzz_wlgraph_verifier(/*seed=*/1u, /*rounds=*/40);
  EXPECT_EQ(stats.legal_graphs, 40);
  EXPECT_GT(stats.illegal_graphs, 0);
  EXPECT_EQ(stats.legal_flagged, 0);
  EXPECT_EQ(stats.illegal_missed, 0);
  EXPECT_EQ(stats.eval_mismatches, 0);
  EXPECT_TRUE(stats.clean());
}

TEST(WlGraphFuzz, DifferentSeedsStayClean) {
  for (std::uint64_t seed : {7u, 1234u, 987654321u}) {
    EXPECT_TRUE(fuzz_wlgraph_verifier(seed, 15).clean()) << "seed " << seed;
  }
}

// -- backend row fuzzer -------------------------------------------------------

TEST(BackendFuzz, RowPrimitivesAndGatherRowsSurviveAdversarialShapes) {
  const BackendFuzzStats stats = fuzz_backend_rows(/*seed=*/1u, /*rounds=*/60);
  EXPECT_GT(stats.rows_checked, 0);
  EXPECT_GT(stats.exprs_checked, 0);
  EXPECT_EQ(stats.mismatches, 0);
  EXPECT_EQ(stats.fold_mismatches, 0);
  EXPECT_TRUE(stats.clean());
}

TEST(BackendFuzz, DifferentSeedsStayClean) {
  for (std::uint64_t seed : {3u, 555u, 271828182u}) {
    EXPECT_TRUE(fuzz_backend_rows(seed, 25).clean()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sacpp::check
