// Session-typed channel tests: spec matching (branch precedence), the
// runtime conformance monitor's violation taxonomy (duplicate /
// out-of-order / premature termination / dead branches), the collective
// spec, the compile-time TypedChannel (including negative-compile checks),
// and the serve wire hook that feeds frames to a bound monitor.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sacpp/check/session.hpp"
#include "sacpp/msg/msg.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/serve/selfcheck.hpp"
#include "sacpp/serve/wire.hpp"

using namespace sacpp;
using namespace sacpp::check;

namespace {

// A two-state request/response spec with two explicit response branches and
// a wildcard, mirroring the serve wire shape at unit-test size.
constexpr std::uint32_t kReq = 0x51;
constexpr std::uint32_t kRsp = 0x52;

SessionSpec tiny_spec() {
  SessionSpec spec;
  spec.name = "test.tiny";
  spec.start = 0;
  spec.accepting = {0};
  spec.transitions.push_back({0, Dir::kSend, kReq, kAnyBranch, 1, "REQ"});
  spec.transitions.push_back({1, Dir::kRecv, kRsp, 0, 0, "RSP:ok"});
  spec.transitions.push_back({1, Dir::kRecv, kRsp, 1, 0, "RSP:err"});
  return spec;
}

TEST(CheckSession, MatchFindsLegalTransitions) {
  const SessionSpec spec = tiny_spec();
  EXPECT_EQ(spec.match(0, Dir::kSend, kReq), 0);
  EXPECT_EQ(spec.match(1, Dir::kRecv, kRsp, 0), 1);
  EXPECT_EQ(spec.match(1, Dir::kRecv, kRsp, 1), 2);
  // Illegal: wrong state, wrong direction, wrong kind, unknown branch.
  EXPECT_EQ(spec.match(1, Dir::kSend, kReq), -1);
  EXPECT_EQ(spec.match(0, Dir::kRecv, kReq), -1);
  EXPECT_EQ(spec.match(0, Dir::kSend, kRsp), -1);
  EXPECT_EQ(spec.match(1, Dir::kRecv, kRsp, 7), -1);
}

TEST(CheckSession, ExactBranchBeatsWildcard) {
  SessionSpec spec = tiny_spec();
  // Add a wildcard response alongside the exact branches; an observed
  // branch 1 must still resolve to the exact RSP:err transition.
  spec.transitions.push_back({1, Dir::kRecv, kRsp, kAnyBranch, 0, "RSP:any"});
  EXPECT_EQ(spec.match(1, Dir::kRecv, kRsp, 1), 2);
  // An unknown branch now falls through to the wildcard instead of -1.
  EXPECT_EQ(spec.match(1, Dir::kRecv, kRsp, 7), 3);
}

TEST(CheckSession, MonitorAcceptsConformingSession) {
  const SessionSpec spec = tiny_spec();
  SessionMonitor monitor(&spec, "client");
  monitor.on_event(Dir::kSend, kReq);
  monitor.on_event(Dir::kRecv, kRsp, 0);
  monitor.on_event(Dir::kSend, kReq);
  monitor.on_event(Dir::kRecv, kRsp, 1);
  monitor.finish();
  EXPECT_TRUE(monitor.clean()) << monitor.engine().to_ascii();
  EXPECT_EQ(monitor.events(), 4u);
  EXPECT_EQ(monitor.state(), 0);
}

TEST(CheckSession, MonitorReportsDuplicateSend) {
  const SessionSpec spec = tiny_spec();
  SessionMonitor monitor(&spec, "client");
  monitor.on_event(Dir::kSend, kReq);
  monitor.on_event(Dir::kSend, kReq);  // retransmit: the spec moved on
  ASSERT_EQ(monitor.engine().size(), 1u);
  const Diagnostic& d = monitor.engine().diagnostics()[0];
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.pass, Pass::kSession);
  EXPECT_NE(d.message.find("duplicate"), std::string::npos) << d.to_string();
  EXPECT_NE(d.location.find("client"), std::string::npos);
  // The slip does not corrupt tracking: the session can still complete.
  monitor.on_event(Dir::kRecv, kRsp, 0);
  monitor.finish(/*report_dead=*/false);
  EXPECT_EQ(monitor.engine().size(), 1u);
}

TEST(CheckSession, MonitorReportsOutOfOrderRecv) {
  const SessionSpec spec = tiny_spec();
  SessionMonitor monitor(&spec, "client");
  monitor.on_event(Dir::kRecv, kRsp, 0);  // response before any request
  ASSERT_EQ(monitor.engine().size(), 1u);
  const Diagnostic& d = monitor.engine().diagnostics()[0];
  EXPECT_NE(d.message.find("out-of-order"), std::string::npos)
      << d.to_string();
  // The diagnostic teaches: it names what the spec allowed instead.
  EXPECT_NE(d.message.find("REQ"), std::string::npos) << d.to_string();
}

TEST(CheckSession, MonitorReportsPrematureTermination) {
  const SessionSpec spec = tiny_spec();
  SessionMonitor monitor(&spec, "client");
  monitor.on_event(Dir::kSend, kReq);
  monitor.finish(/*report_dead=*/false);  // ended mid-exchange
  ASSERT_EQ(monitor.engine().size(), 1u);
  EXPECT_NE(monitor.engine().diagnostics()[0].message.find("non-accepting"),
            std::string::npos);
}

TEST(CheckSession, MonitorReportsDeadBranchesAsWarnings) {
  const SessionSpec spec = tiny_spec();
  SessionMonitor monitor(&spec, "client");
  monitor.on_event(Dir::kSend, kReq);
  monitor.on_event(Dir::kRecv, kRsp, 0);  // only the ok branch is exercised
  monitor.finish(/*report_dead=*/true);
  ASSERT_EQ(monitor.engine().size(), 1u);
  const Diagnostic& d = monitor.engine().diagnostics()[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.message.find("dead transition"), std::string::npos);
  EXPECT_NE(d.message.find("RSP:err"), std::string::npos) << d.to_string();
}

TEST(CheckSession, MonitorSilentOnEmptySession) {
  // A spec bound but never exercised (e.g. a server that saw no traffic)
  // must not drown the report in dead-transition warnings.
  const SessionSpec spec = tiny_spec();
  SessionMonitor monitor(&spec, "idle");
  monitor.finish();
  EXPECT_TRUE(monitor.clean()) << monitor.engine().to_ascii();
}

TEST(CheckSession, CollectiveSpecAcceptsRepeatsRejectsWrongDirection) {
  const SessionSpec root = collective_session_spec("broadcast", 1000,
                                                   Dir::kSend);
  SessionMonitor monitor(&root, "root");
  monitor.on_event(Dir::kSend, 1000);
  monitor.on_event(Dir::kSend, 1000);  // loop: repeated collectives conform
  EXPECT_TRUE(monitor.clean());
  monitor.on_event(Dir::kRecv, 1000);  // the root of a bcast never receives
  EXPECT_EQ(monitor.engine().size(), 1u);
  monitor.finish();
  EXPECT_EQ(monitor.engine().count(Severity::kError), 1u);
}

// ---------------------------------------------------------------------------
// TypedChannel: the compile-time layer
// ---------------------------------------------------------------------------

// Scripted transport: records the op sequence and feeds canned payloads.
struct FakeTransport {
  std::vector<std::pair<char, std::uint32_t>> ops;
  int payload = 0;

  void send(std::uint32_t kind, const std::vector<std::uint8_t>&) {
    ops.emplace_back('s', kind);
  }
  int recv(std::uint32_t kind) {
    ops.emplace_back('r', kind);
    return ++payload;
  }
};

using TestProto = proto::Seq<proto::Send<kReq>, proto::Recv<kRsp>,
                             proto::Recv<kRsp>>;

TEST(CheckSession, TypedChannelDrivesTransportInProtocolOrder) {
  FakeTransport transport;
  auto c0 = make_typed_channel<TestProto>(transport);
  static_assert(!decltype(c0)::kDone);
  auto c1 = std::move(c0).send(std::vector<std::uint8_t>{1, 2, 3});
  int first = 0;
  int second = 0;
  auto c2 = std::move(c1).recv(&first);
  auto c3 = std::move(c2).recv(&second);
  static_assert(decltype(c3)::kDone);
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
  const std::vector<std::pair<char, std::uint32_t>> expected = {
      {'s', kReq}, {'r', kRsp}, {'r', kRsp}};
  EXPECT_EQ(transport.ops, expected);
}

// Negative-compile checks, phrased as detection traits so the "misuse does
// not compile" property is itself a test rather than a commented-out file.
template <typename Channel, typename = void>
struct can_send : std::false_type {};
template <typename Channel>
struct can_send<Channel,
                std::void_t<decltype(std::declval<Channel&&>().send(
                    std::declval<const std::vector<std::uint8_t>&>()))>>
    : std::true_type {};

template <typename Channel, typename = void>
struct can_recv : std::false_type {};
template <typename Channel>
struct can_recv<Channel, std::void_t<decltype(std::declval<Channel&&>().recv(
                             std::declval<int*>()))>> : std::true_type {};

using SendHead = TypedChannel<FakeTransport, TestProto>;
using RecvHead =
    TypedChannel<FakeTransport, proto::Seq<proto::Recv<kRsp>>>;
using Done = TypedChannel<FakeTransport, proto::Seq<>>;

// In the send state only send compiles; in the recv state only recv; a
// completed channel offers neither.
static_assert(can_send<SendHead>::value);
static_assert(!can_recv<SendHead>::value, "recv before send must not compile");
static_assert(can_recv<RecvHead>::value);
static_assert(!can_send<RecvHead>::value, "send in a recv state must not compile");
static_assert(!can_send<Done>::value && !can_recv<Done>::value,
              "a completed session has no operations left");
// Ops consume the channel: they are rvalue-qualified, so an lvalue channel
// cannot be (re)used without std::move.
static_assert(!can_send<SendHead&>::value,
              "send on an lvalue channel must not compile");

// ---------------------------------------------------------------------------
// The serve wire hook: frames feed the thread-bound monitor
// ---------------------------------------------------------------------------

serve::SolveRequest wire_request(std::uint64_t id) {
  serve::SolveRequest req;
  req.id = id;
  return req;
}

TEST(CheckSession, WireFramesFeedBoundMonitor) {
  // A conforming exchange over msg::World with checking enabled on both
  // endpoints: the monitors see every frame and stay clean.
  msg::World world(2);
  world.run([](msg::Comm& comm) {
    sac::SacConfig cfg = sac::active_config();
    cfg.check = true;
    sac::ConfigBinding config_binding(&cfg);
    constexpr int kTag = 9;
    if (comm.rank() == 0) {
      const check::SessionSpec spec = serve::client_session_spec();
      SessionMonitor monitor(&spec, "client");
      MonitorBinding binding(&monitor);
      serve::send_frame(comm, 1, kTag, encode_request(wire_request(7)));
      (void)serve::recv_frame(comm, 1, kTag);
      EXPECT_EQ(monitor.events(), 2u);
      EXPECT_EQ(monitor.state(), 0) << "exchange should close the loop";
      monitor.finish(/*report_dead=*/false);
      EXPECT_TRUE(monitor.clean()) << monitor.engine().to_ascii();
    } else {
      const check::SessionSpec spec = serve::server_session_spec();
      SessionMonitor monitor(&spec, "server");
      MonitorBinding binding(&monitor);
      const std::vector<std::uint8_t> frame = serve::recv_frame(comm, 0, kTag);
      serve::SolveRequest req;
      std::string error;
      ASSERT_TRUE(decode_request(frame, &req, &error)) << error;
      serve::SolveResult res;
      res.id = req.id;
      res.status = serve::SolveStatus::kOk;
      serve::send_frame(comm, 0, kTag, encode_result(res));
      monitor.finish(/*report_dead=*/false);
      EXPECT_TRUE(monitor.clean()) << monitor.engine().to_ascii();
    }
  });
}

TEST(CheckSession, WireHookCatchesProtocolViolationAtRuntime) {
  // A client that fires two requests back-to-back without awaiting the
  // response violates the session spec; the monitor flags the second frame
  // even though the wire itself would happily carry it.
  msg::World world(2);
  world.run([](msg::Comm& comm) {
    sac::SacConfig cfg = sac::active_config();
    cfg.check = true;
    sac::ConfigBinding config_binding(&cfg);
    constexpr int kTag = 9;
    if (comm.rank() == 0) {
      const check::SessionSpec spec = serve::client_session_spec();
      SessionMonitor monitor(&spec, "client");
      MonitorBinding binding(&monitor);
      serve::send_frame(comm, 1, kTag, encode_request(wire_request(1)));
      serve::send_frame(comm, 1, kTag, encode_request(wire_request(2)));
      ASSERT_EQ(monitor.engine().size(), 1u);
      const Diagnostic& d = monitor.engine().diagnostics()[0];
      EXPECT_EQ(d.pass, Pass::kSession);
      EXPECT_NE(d.message.find("duplicate"), std::string::npos)
          << d.to_string();
    } else {
      // Drain both frames unmonitored so rank 0 is not left blocking.
      (void)serve::recv_frame(comm, 0, kTag);
      (void)serve::recv_frame(comm, 0, kTag);
    }
  });
}

TEST(CheckSession, WireHookIsInertWithoutCheckMode) {
  // With SacConfig::check off the bound monitor must see nothing: the
  // probe's cost model promises a dormant hook, not a quiet reporter.
  msg::World world(2);
  world.run([](msg::Comm& comm) {
    constexpr int kTag = 9;
    if (comm.rank() == 0) {
      const check::SessionSpec spec = serve::client_session_spec();
      SessionMonitor monitor(&spec, "client");
      MonitorBinding binding(&monitor);
      serve::send_frame(comm, 1, kTag, encode_request(wire_request(3)));
      (void)serve::recv_frame(comm, 1, kTag);
      EXPECT_EQ(monitor.events(), 0u);
    } else {
      const std::vector<std::uint8_t> frame = serve::recv_frame(comm, 0, kTag);
      serve::SolveRequest req;
      std::string error;
      ASSERT_TRUE(decode_request(frame, &req, &error)) << error;
      serve::SolveResult res;
      res.id = req.id;
      serve::send_frame(comm, 0, kTag, encode_result(res));
    }
  });
}

}  // namespace
