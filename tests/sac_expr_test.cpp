// Lazy expressions (with-loop folding): fused pipelines must compute the
// same values as their materialised counterparts, without materialising
// intermediates.

#include <gtest/gtest.h>

#include "sacpp/sac/sac.hpp"

namespace sacpp::sac {
namespace {

Array<double> sequential(const Shape& shp) {
  return with_genarray<double>(shp, [&shp](const IndexVec& iv) {
    return static_cast<double>(shp.linearize(iv)) + 1.0;
  });
}

void expect_equal(const Array<double>& a, const Array<double>& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (extent_t i = 0; i < a.elem_count(); ++i) {
    ASSERT_DOUBLE_EQ(a.at_linear(i), b.at_linear(i)) << "at " << i;
  }
}

TEST(Ewise, FusedBinaryEqualsEager) {
  auto a = sequential(Shape{3, 4});
  auto b = sequential(Shape{3, 4});
  expect_equal(force(ewise(a, b, std::plus<>{})), a + b);
}

TEST(Ewise, ShapeMismatchThrowsAtBuild) {
  auto a = sequential(Shape{3});
  auto b = sequential(Shape{4});
  EXPECT_THROW(ewise(a, b, std::plus<>{}), ContractError);
}

TEST(Ewise, UnaryAndScalarNodes) {
  auto a = sequential(Shape{4});
  expect_equal(force(ewise1(a, [](double v) { return 2.0 * v; })), a * 2.0);
  expect_equal(force(scalar_expr(Shape{4}, 3.0)),
               genarray_const(Shape{4}, 3.0));
}

TEST(Ewise, NestedCompositionFusesArbitrarilyDeep) {
  auto a = sequential(Shape{2, 5});
  auto b = sequential(Shape{2, 5});
  // (a + b) * a - b, fully fused
  auto fused = force(ewise(ewise(ewise(a, b, std::plus<>{}), a,
                                 std::multiplies<>{}),
                           b, std::minus<>{}));
  expect_equal(fused, (a + b) * a - b);
}

TEST(Lazy, CondenseEqualsEager) {
  auto a = sequential(Shape{6, 6});
  expect_equal(force(lazy_condense(2, a)), condense(2, a));
  expect_equal(force(lazy_condense(3, a)), condense(3, a));
}

TEST(Lazy, ScatterEqualsEager) {
  auto a = sequential(Shape{3, 3});
  expect_equal(force(lazy_scatter(2, a)), scatter(2, a));
}

TEST(Lazy, TakeEmbedEqualEager) {
  auto a = sequential(Shape{4, 4});
  expect_equal(force(lazy_take({2, 3}, a)), take({2, 3}, a));
  expect_equal(force(lazy_embed({6, 6}, {1, 2}, a)), embed({6, 6}, {1, 2}, a));
}

TEST(Lazy, ComposedGatherPipeline) {
  // take(shape-2, scatter(2, a)) — the paper's Coarse2Fine mapping — fused
  // as one traversal.
  auto a = sequential(Shape{4});
  auto eager = take(IndexVec{6}, scatter(2, a));
  auto fused = force(lazy_take(IndexVec{6}, lazy_scatter(2, a)));
  expect_equal(fused, eager);
}

TEST(Lazy, CondenseOverEwise) {
  auto a = sequential(Shape{6});
  auto b = sequential(Shape{6});
  expect_equal(force(lazy_condense(2, ewise(a, b, std::plus<>{}))),
               condense(2, a + b));
}

TEST(Lazy, FusionAvoidsIntermediateAllocations) {
  auto a = sequential(Shape{8, 8});
  auto b = sequential(Shape{8, 8});
  reset_stats();
  auto eager = condense(2, a + b);
  const auto eager_allocs = stats().allocations;
  reset_stats();
  auto fused = force(lazy_condense(2, ewise(a, b, std::plus<>{})));
  const auto fused_allocs = stats().allocations;
  expect_equal(fused, eager);
  EXPECT_EQ(fused_allocs, 1u);   // only the result
  EXPECT_EQ(eager_allocs, 2u);   // intermediate sum + result
}

TEST(Lazy, StencilExprFusesWithSubtraction) {
  // v - A(u): one traversal, equal to the materialised relax + subtract.
  const Shape shp{6, 6, 6};
  auto u = sequential(shp);
  auto v = sequential(shp);
  const StencilCoeffs A{{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}};
  auto eager = v - relax_kernel(u, A);
  auto fused = force(ewise(v, StencilExpr(u, A), std::minus<>{}));
  ASSERT_EQ(fused.shape(), eager.shape());
  for (extent_t i = 0; i < fused.elem_count(); ++i) {
    ASSERT_NEAR(fused.at_linear(i), eager.at_linear(i), 1e-15) << i;
  }
}

TEST(Lazy, CondenseOverStencilEvaluatesOnlyCondensedPoints) {
  // The Fine2Coarse fusion: stencil work drops by the condensation factor.
  const Shape shp{10, 10, 10};
  auto r = sequential(shp);
  const StencilCoeffs P{{0.5, 0.25, 0.125, 0.0625}};
  auto eager = condense(2, relax_kernel(r, P));
  auto fused = force(lazy_condense(2, StencilExpr(r, P)));
  ASSERT_EQ(fused.shape(), eager.shape());
  for (extent_t i = 0; i < fused.elem_count(); ++i) {
    ASSERT_NEAR(fused.at_linear(i), eager.at_linear(i), 1e-15) << i;
  }
}

TEST(Lazy, ExprNodesSurviveSourceRebinding) {
  // Nodes hold children by value (ref-counted), so rebinding the source
  // name must not change an already-built expression.
  auto a = sequential(Shape{4});
  auto e = ewise1(a, [](double v) { return v + 1.0; });
  a = genarray_const(Shape{4}, 0.0);  // rebind
  auto r = force(e);
  EXPECT_DOUBLE_EQ((r[IndexVec{0}]), 2.0);  // old a[0] == 1.0, +1
}

TEST(Lazy, ForceOfArrayIsIdentity) {
  auto a = sequential(Shape{3});
  expect_equal(force(a), a);
}

TEST(Lazy, GatherDefaultValueOutsideSource) {
  auto a = sequential(Shape{2});
  auto e = lazy_embed({5}, {2}, a);
  auto r = force(e);
  EXPECT_DOUBLE_EQ((r[IndexVec{0}]), 0.0);
  EXPECT_DOUBLE_EQ((r[IndexVec{2}]), 1.0);
  EXPECT_DOUBLE_EQ((r[IndexVec{3}]), 2.0);
  EXPECT_DOUBLE_EQ((r[IndexVec{4}]), 0.0);
}

}  // namespace
}  // namespace sacpp::sac
