// Golden-value regression battery: every MG variant, classes S and W, with
// the pooled allocator on and off, against checked-in reference residuals.
//
// The golden values are this reproduction's regenerated norms (all variants
// agree with the official NPB 2.3 class-S verification constant to the NPB
// tolerance; at class W the 40 iterations converge to the rounding floor,
// where each kernel ordering has its own reproducible round-off signature,
// hence per-variant values).  The assertions are far tighter than NPB's
// 1e-8 verification: 1e-12 relative, so any allocator change that corrupts
// or reorders numerics — a recycled buffer handed out dirty, an aliased
// block, a dropped write — fails loudly.  On top of that, pool-on runs must
// be bit-identical to pool-off runs: recycling memory must not change
// arithmetic at all.

#include <gtest/gtest.h>

#include <cmath>

#include <cstdlib>

#include "sacpp/mg/driver.hpp"
#include "sacpp/mg/mg_mpi.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/sac/jit.hpp"
#include "sacpp/sac/stats.hpp"

namespace sacpp::mg {
namespace {

// The official NPB 2.3 class-S verification constant (NPB's own tolerance
// is 1e-8 relative; our regenerated values sit within ~1e-13 of it).
constexpr double kNpbClassS = 0.5307707005734e-04;

struct GoldenCase {
  Variant variant;
  MgClass cls;
  double norm;  // regenerated on the reference host; see docs/memory.md
};

// clang-format off
constexpr GoldenCase kGolden[] = {
    {Variant::kSac,       MgClass::S, 5.30770700573490823e-05},
    {Variant::kFortran,   MgClass::S, 5.30770700573490891e-05},
    {Variant::kOpenMp,    MgClass::S, 5.30770700573490891e-05},
    {Variant::kSacDirect, MgClass::S, 5.30770700573490823e-05},
    {Variant::kSac,       MgClass::W, 3.20727265776402994e-18},
    {Variant::kFortran,   MgClass::W, 2.43573159008149673e-18},
    {Variant::kOpenMp,    MgClass::W, 2.43573159008149673e-18},
    {Variant::kSacDirect, MgClass::W, 3.20727265776402994e-18},
};
constexpr double kMpiGolden[] = {
    /*S=*/5.30770700573490552e-05,
    /*W=*/2.43573159008149673e-18,
};
// clang-format on

constexpr double kTol = 1e-12;  // relative

double run_final_norm(Variant variant, MgClass cls, bool pool) {
  sac::SacConfig cfg = sac::config();
  cfg.pool = pool;
  // Pin the stencil engine AND the backend: these goldens are the grouped
  // scalar signature, and a SACPP_STENCIL_MODE=planes or SACPP_BACKEND=simd
  // environment (the sanitizer CI jobs) must not silently retarget them.
  // Planes and simd have their own goldens below.
  cfg.stencil_mode = sac::StencilMode::kGrouped;
  cfg.backend = sac::BackendKind::kScalar;
  sac::ScopedConfig guard(cfg);
  RunOptions opts;
  opts.warmup = false;
  opts.record_norms = false;
  return run_benchmark(variant, MgSpec::for_class(cls), opts).final_norm;
}

double run_mpi_final_norm(MgClass cls, bool pool) {
  sac::SacConfig cfg = sac::config();
  cfg.pool = pool;
  sac::ScopedConfig guard(cfg);
  const MgSpec spec = MgSpec::for_class(cls);
  return MgMpi(spec, /*ranks=*/2).run(spec.nit, /*warmup=*/false).final_norm;
}

class GoldenNorm : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenNorm, MatchesWithPoolOffAndOn) {
  const GoldenCase& c = GetParam();
  const double off = run_final_norm(c.variant, c.cls, /*pool=*/false);
  EXPECT_NEAR(off / c.norm, 1.0, kTol)
      << variant_name(c.variant) << " pool=off norm " << off
      << " vs golden " << c.norm;

  // Recycled buffers must not change a single bit of the result.
  const double on = run_final_norm(c.variant, c.cls, /*pool=*/true);
  EXPECT_EQ(on, off) << variant_name(c.variant)
                     << ": pool on/off results diverged";
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, GoldenNorm, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string name = variant_name(info.param.variant);
      for (char& ch : name) {
        if (ch == '-' || ch == '/') ch = '_';
      }
      return name + (info.param.cls == MgClass::S ? "_S" : "_W");
    });

// kPlanes goldens.  The shared plane-sum engine (docs/stencil.md)
// reassociates each point's additions — class-1/2 rows are summed once and
// reused across the k loop — so unlike the pool toggle (which performs no
// arithmetic and must be bit-exact) planes results match the grouped goldens
// only to rounding: 1e-12 relative.  At class S that is well inside the
// tolerance, so the S rows below are the grouped constants.  At class W the
// 40 iterations converge to the rounding floor (~1e-18), where every
// summation order has its own reproducible signature, so the W rows are
// regenerated planes-specific constants.
// clang-format off
constexpr GoldenCase kPlanesGolden[] = {
    {Variant::kSac,       MgClass::S, 5.30770700573490823e-05},  // = grouped
    {Variant::kSacDirect, MgClass::S, 5.30770700573490823e-05},  // = grouped
    {Variant::kSac,       MgClass::W, 2.74493052790239970e-18},
    {Variant::kSacDirect, MgClass::W, 2.85476196186829163e-18},
};
// clang-format on

double run_planes_final_norm(Variant variant, MgClass cls, bool pool,
                             int threads = 0) {
  sac::SacConfig cfg = sac::config();
  cfg.pool = pool;
  cfg.stencil_mode = sac::StencilMode::kPlanes;
  cfg.backend = sac::BackendKind::kScalar;  // simd has its own goldens below
  if (threads > 0) {
    cfg.mt_enabled = true;
    cfg.mt_threads = threads;
  }
  sac::ScopedConfig guard(cfg);
  RunOptions opts;
  opts.warmup = false;
  opts.record_norms = false;
  return run_benchmark(variant, MgSpec::for_class(cls), opts).final_norm;
}

class PlanesGoldenNorm : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(PlanesGoldenNorm, MatchesWithPoolOffAndOn) {
  const GoldenCase& c = GetParam();
  const double off = run_planes_final_norm(c.variant, c.cls, /*pool=*/false);
  EXPECT_NEAR(off / c.norm, 1.0, kTol)
      << variant_name(c.variant) << " planes pool=off norm " << off
      << " vs golden " << c.norm;

  // Scratch rows come from the pool, but recycling still must not change
  // a single bit of the result.
  const double on = run_planes_final_norm(c.variant, c.cls, /*pool=*/true);
  EXPECT_EQ(on, off) << variant_name(c.variant)
                     << ": planes pool on/off results diverged";
}

INSTANTIATE_TEST_SUITE_P(
    SacVariants, PlanesGoldenNorm, ::testing::ValuesIn(kPlanesGolden),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string name = variant_name(info.param.variant);
      for (char& ch : name) {
        if (ch == '-' || ch == '/') ch = '_';
      }
      return name + (info.param.cls == MgClass::S ? "_S" : "_W");
    });

// Rows are computed independently, so the planes sweeps themselves are
// bitwise thread-invariant (sac_stencil_test proves that on relax_kernel);
// the full-benchmark norm is not, because the MT L2 reduction folds per-chunk
// partial sums — grouped mode drifts identically.  Hence golden tolerance
// here, not bitwise equality.
TEST(PlanesGoldenNorm, ClassSMatchesGoldenAcrossThreadCounts) {
  for (int threads = 1; threads <= 8; ++threads) {
    const double norm = run_planes_final_norm(Variant::kSac, MgClass::S,
                                              /*pool=*/false, threads);
    EXPECT_NEAR(norm / kGolden[0].norm, 1.0, kTol) << "threads=" << threads;
  }
}

// Backend goldens (docs/backends.md).  The vectorized backends keep every
// element-parallel primitive bit-identical to scalar and reassociate ONLY
// the L2 fold (four lanes, fixed combine order), so:
//   * f77 / omp never touch backend row primitives — under kSimd they must
//     equal the scalar constants bit for bit;
//   * sac / sac-direct match the scalar goldens to rounding at class S and
//     carry their own pinned constants at the class-W rounding floor;
//   * the AVX2 and portable engines are bit-identical by construction, so
//     one constant covers kSimd on any host (the differential battery in
//     sac_backend_test proves the engine equivalence).
struct BackendGoldenCase {
  Variant variant;
  MgClass cls;
  sac::StencilMode mode;
  double norm;
};

// clang-format off
constexpr BackendGoldenCase kSimdGolden[] = {
    {Variant::kSac,       MgClass::S, sac::StencilMode::kGrouped, 5.30770700573490823e-05},
    {Variant::kFortran,   MgClass::S, sac::StencilMode::kGrouped, 5.30770700573490891e-05},
    {Variant::kOpenMp,    MgClass::S, sac::StencilMode::kGrouped, 5.30770700573490891e-05},
    {Variant::kSacDirect, MgClass::S, sac::StencilMode::kGrouped, 5.30770700573490823e-05},
    {Variant::kSac,       MgClass::S, sac::StencilMode::kPlanes,  5.30770700573490823e-05},
    {Variant::kSacDirect, MgClass::S, sac::StencilMode::kPlanes,  5.30770700573490823e-05},
    {Variant::kFortran,   MgClass::W, sac::StencilMode::kGrouped, 2.43573159008149673e-18},
    {Variant::kOpenMp,    MgClass::W, sac::StencilMode::kGrouped, 2.43573159008149673e-18},
    {Variant::kSac,       MgClass::W, sac::StencilMode::kGrouped, 3.20727265776402994e-18},
    {Variant::kSacDirect, MgClass::W, sac::StencilMode::kGrouped, 3.20727265776402994e-18},
    {Variant::kSac,       MgClass::W, sac::StencilMode::kPlanes,  2.77739287704745898e-18},
    {Variant::kSacDirect, MgClass::W, sac::StencilMode::kPlanes,  2.71711919120625163e-18},
};
// clang-format on

double run_backend_final_norm(Variant variant, MgClass cls,
                              sac::BackendKind backend, sac::StencilMode mode,
                              bool pool = false) {
  sac::SacConfig cfg = sac::config();
  cfg.pool = pool;
  cfg.stencil_mode = mode;
  cfg.backend = backend;
  sac::ScopedConfig guard(cfg);
  RunOptions opts;
  opts.warmup = false;
  opts.record_norms = false;
  return run_benchmark(variant, MgSpec::for_class(cls), opts).final_norm;
}

class SimdGoldenNorm : public ::testing::TestWithParam<BackendGoldenCase> {};

TEST_P(SimdGoldenNorm, MatchesPinnedConstant) {
  const BackendGoldenCase& c = GetParam();
  const double simd = run_backend_final_norm(c.variant, c.cls,
                                             sac::BackendKind::kSimd, c.mode);
  EXPECT_NEAR(simd / c.norm, 1.0, kTol)
      << variant_name(c.variant) << " simd norm " << simd << " vs golden "
      << c.norm;

  // The portable 4-lane engine mirrors the AVX2 lane structure exactly, so
  // forcing it must not change a single bit of the result.
  const double portable = run_backend_final_norm(
      c.variant, c.cls, sac::BackendKind::kSimdPortable, c.mode);
  EXPECT_EQ(portable, simd)
      << variant_name(c.variant) << ": simd vs simd-portable diverged";
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SimdGoldenNorm, ::testing::ValuesIn(kSimdGolden),
    [](const ::testing::TestParamInfo<BackendGoldenCase>& info) {
      std::string name = variant_name(info.param.variant);
      for (char& ch : name) {
        if (ch == '-' || ch == '/') ch = '_';
      }
      name += info.param.mode == sac::StencilMode::kPlanes ? "_planes" : "_grouped";
      return name + (info.param.cls == MgClass::S ? "_S" : "_W");
    });

// The reference kernels bypass the array runtime entirely, so the backend
// knob must be invisible to them: bit-equal results, not just within
// tolerance.
TEST(SimdGoldenNorm, ReferenceVariantsAreBackendInvariant) {
  for (const Variant v : {Variant::kFortran, Variant::kOpenMp}) {
    const double scalar = run_backend_final_norm(
        v, MgClass::W, sac::BackendKind::kScalar, sac::StencilMode::kGrouped);
    const double simd = run_backend_final_norm(
        v, MgClass::W, sac::BackendKind::kSimd, sac::StencilMode::kGrouped);
    EXPECT_EQ(simd, scalar) << variant_name(v);
  }
}

// Pool recycling must stay arithmetic-neutral under the simd backend too.
TEST(SimdGoldenNorm, PoolOnOffBitIdenticalUnderSimd) {
  const double off = run_backend_final_norm(Variant::kSac, MgClass::S,
                                            sac::BackendKind::kSimd,
                                            sac::StencilMode::kPlanes,
                                            /*pool=*/false);
  const double on = run_backend_final_norm(Variant::kSac, MgClass::S,
                                           sac::BackendKind::kSimd,
                                           sac::StencilMode::kPlanes,
                                           /*pool=*/true);
  EXPECT_EQ(on, off);
}

// kJit goldens (docs/jit.md).  The JIT engine is bit-identical to the
// resolved kSimd engine for every element-parallel primitive and keeps the
// fixed 4-lane fold contract, so a --backend jit run must reproduce the
// kSimd norm EXACTLY — on the warm path (SACPP_JIT_SYNC=1: every row runs a
// generated kernel) and on the cold path (async compiles still in flight,
// rows served by the simd fallback mid-swap).  Anything else means a
// generated kernel reassociated, contracted into FMA, or mis-indexed.
TEST(JitGoldenNorm, WarmRunsMatchSimdBitForBit) {
  for (const sac::StencilMode mode :
       {sac::StencilMode::kGrouped, sac::StencilMode::kPlanes}) {
    const double simd = run_backend_final_norm(
        Variant::kSac, MgClass::S, sac::BackendKind::kSimd, mode);
    EXPECT_NEAR(simd / kGolden[0].norm, 1.0, kTol);

    ::setenv("SACPP_JIT_SYNC", "1", 1);
    sac::jit::testing::reset();
    const double warm = run_backend_final_norm(
        Variant::kSac, MgClass::S, sac::BackendKind::kJit, mode);
    ::unsetenv("SACPP_JIT_SYNC");
    EXPECT_EQ(warm, simd)
        << "jit (warm) vs simd diverged, mode "
        << sac::stencil_mode_name(mode);
  }
}

TEST(JitGoldenNorm, ColdAsyncRunsMatchSimdBitForBit) {
  // No sync flag: the first rows run on the fallback while the compile
  // thread races, and kernels hot-swap in mid-run — still bit-exact.
  const double simd =
      run_backend_final_norm(Variant::kSac, MgClass::S,
                             sac::BackendKind::kSimd,
                             sac::StencilMode::kPlanes);
  sac::jit::testing::reset();
  const double cold =
      run_backend_final_norm(Variant::kSac, MgClass::S,
                             sac::BackendKind::kJit,
                             sac::StencilMode::kPlanes);
  sac::jit::drain();  // don't leak queued compiles into later tests
  EXPECT_EQ(cold, simd) << "jit (cold/async) vs simd diverged";
}

TEST(JitGoldenNorm, ClassWMatchesPinnedPlanesConstant) {
  ::setenv("SACPP_JIT_SYNC", "1", 1);
  sac::jit::testing::reset();
  const double jit =
      run_backend_final_norm(Variant::kSac, MgClass::W,
                             sac::BackendKind::kJit,
                             sac::StencilMode::kPlanes);
  ::unsetenv("SACPP_JIT_SYNC");
  // Same constant as the kSimd planes row above: kJit is pinnable because
  // it is bitwise simd, which is bitwise avx2/avx512/portable.
  EXPECT_NEAR(jit / 2.77739287704745898e-18, 1.0, kTol);
  const double simd =
      run_backend_final_norm(Variant::kSac, MgClass::W,
                             sac::BackendKind::kSimd,
                             sac::StencilMode::kPlanes);
  EXPECT_EQ(jit, simd);
}

TEST(GoldenNormMpi, ClassSMatchesWithPoolOffAndOn) {
  const double off = run_mpi_final_norm(MgClass::S, false);
  EXPECT_NEAR(off / kMpiGolden[0], 1.0, kTol);
  EXPECT_EQ(run_mpi_final_norm(MgClass::S, true), off);
}

TEST(GoldenNormMpi, ClassWMatchesWithPoolOffAndOn) {
  const double off = run_mpi_final_norm(MgClass::W, false);
  EXPECT_NEAR(off / kMpiGolden[1], 1.0, kTol);
  EXPECT_EQ(run_mpi_final_norm(MgClass::W, true), off);
}

// The class-S goldens themselves must agree with the official NPB
// verification constant (guards against regenerating them from a broken
// solver and blessing the breakage).
TEST(GoldenNorm, ClassSGoldensMatchOfficialNpbConstant) {
  for (const GoldenCase& c : kGolden) {
    if (c.cls != MgClass::S) continue;
    EXPECT_NEAR(c.norm / kNpbClassS, 1.0, 1e-8);
  }
  EXPECT_NEAR(kMpiGolden[0] / kNpbClassS, 1.0, 1e-8);
}

// Sanity on the integration: a pooled class-S run actually exercises the
// pool (hits dominate after the first V-cycle).
TEST(GoldenNorm, PooledRunRecyclesBuffers) {
  sac::SacConfig cfg = sac::config();
  cfg.pool = true;
  // The hits + misses == allocations invariant only holds when every pool
  // request flows through Buffer: the planes engine's scratch rows hit the
  // pool directly (stencil.hpp PlaneScratch), so pin the grouped mode.
  cfg.stencil_mode = sac::StencilMode::kGrouped;
  sac::ScopedConfig guard(cfg);
  sac::reset_stats();
  RunOptions opts;
  opts.warmup = false;
  opts.record_norms = false;
  run_benchmark(Variant::kSac, MgSpec::for_class(MgClass::S), opts);
  const auto& st = sac::stats();
  EXPECT_GT(st.pool_hits, st.pool_misses);
  EXPECT_EQ(st.pool_hits + st.pool_misses, st.allocations);
}

}  // namespace
}  // namespace sacpp::mg
