// Tests for the shared length-prefixed frame codec (src/net/codec.hpp):
// round-trips, arbitrary fragmentation, and the strict malformed-header
// policy (a lying length prefix poisons the stream — docs/net.md#wire-format).

#include "sacpp/net/codec.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace sacpp::net {
namespace {

std::vector<std::uint8_t> payload_of(std::initializer_list<int> bytes) {
  std::vector<std::uint8_t> out;
  for (int b : bytes) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

TEST(NetCodec, U32RoundTripIsLittleEndian) {
  std::vector<std::uint8_t> buf;
  put_u32(buf, 0x01020304u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04u);
  EXPECT_EQ(buf[1], 0x03u);
  EXPECT_EQ(buf[2], 0x02u);
  EXPECT_EQ(buf[3], 0x01u);
  EXPECT_EQ(get_u32(buf), 0x01020304u);
}

TEST(NetCodec, EncodePrependsBodyLength) {
  const std::vector<std::uint8_t> body = payload_of({10, 20, 30});
  const std::vector<std::uint8_t> frame = encode_frame(body);
  ASSERT_EQ(frame.size(), 4u + body.size());
  EXPECT_EQ(get_u32(frame), body.size());
  EXPECT_TRUE(std::equal(body.begin(), body.end(), frame.begin() + 4));
}

TEST(NetCodec, AssemblerRoundTripsOneFrame) {
  FrameAssembler a(1024);
  const std::vector<std::uint8_t> frame = encode_frame(payload_of({1, 2, 3}));
  a.feed(frame);
  std::vector<std::uint8_t> got;
  ASSERT_EQ(a.next(&got), FrameResult::kFrame);
  EXPECT_EQ(got, frame) << "frames are peeled prefix-included";
  EXPECT_EQ(a.next(&got), FrameResult::kNeedMore);
  EXPECT_EQ(a.buffered(), 0u);
}

TEST(NetCodec, AssemblerHandlesByteAtATimeFragmentation) {
  // The TCP stream owes the reader nothing about boundaries: reassembly
  // must work when every chunk is a single byte, including mid-prefix.
  FrameAssembler a(1024);
  const std::vector<std::uint8_t> f1 = encode_frame(payload_of({9, 8}));
  const std::vector<std::uint8_t> f2 =
      encode_frame(payload_of({7, 6, 5, 4, 3}));
  std::vector<std::uint8_t> stream = f1;
  stream.insert(stream.end(), f2.begin(), f2.end());

  std::vector<std::vector<std::uint8_t>> got;
  std::vector<std::uint8_t> frame;
  for (std::uint8_t b : stream) {
    a.feed({&b, 1});
    while (a.next(&frame) == FrameResult::kFrame) got.push_back(frame);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], f1);
  EXPECT_EQ(got[1], f2);
}

TEST(NetCodec, AssemblerPeelsMultipleFramesFromOneChunk) {
  FrameAssembler a(1024);
  std::vector<std::uint8_t> stream;
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < 5; ++i) {
    frames.push_back(encode_frame(payload_of({i, i + 1})));
    stream.insert(stream.end(), frames.back().begin(), frames.back().end());
  }
  a.feed(stream);
  std::vector<std::uint8_t> got;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(a.next(&got), FrameResult::kFrame) << "frame " << i;
    EXPECT_EQ(got, frames[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(a.next(&got), FrameResult::kNeedMore);
}

TEST(NetCodec, EmptyPayloadFrameIsLegal) {
  FrameAssembler a(16);
  a.feed(encode_frame({}));
  std::vector<std::uint8_t> got;
  ASSERT_EQ(a.next(&got), FrameResult::kFrame);
  EXPECT_EQ(got.size(), 4u);
  EXPECT_EQ(get_u32(got), 0u);
}

TEST(NetCodec, LyingLengthHeaderPoisonsTheAssembler) {
  // A prefix claiming more than the permitted body is a protocol violation
  // with no resync point: the assembler reports kMalformed forever after,
  // even for bytes that would otherwise parse.
  FrameAssembler a(64);
  std::vector<std::uint8_t> evil;
  put_u32(evil, 65);  // one past the cap
  evil.resize(evil.size() + 8, 0);
  a.feed(evil);
  std::vector<std::uint8_t> got;
  std::string error;
  ASSERT_EQ(a.next(&got, &error), FrameResult::kMalformed);
  EXPECT_NE(error.find("65"), std::string::npos) << error;
  EXPECT_NE(error.find("64"), std::string::npos) << error;

  a.feed(encode_frame(payload_of({1})));
  error.clear();
  EXPECT_EQ(a.next(&got, &error), FrameResult::kMalformed)
      << "poisoned assemblers never recover";
  EXPECT_FALSE(error.empty());
}

TEST(NetCodec, MaximumSizedBodyIsAccepted) {
  FrameAssembler a(8);
  const std::vector<std::uint8_t> body(8, 0xab);
  a.feed(encode_frame(body));
  std::vector<std::uint8_t> got;
  EXPECT_EQ(a.next(&got), FrameResult::kFrame);
}

// ---------------------------------------------------------------------------
// fd-level plumbing over a socketpair
// ---------------------------------------------------------------------------

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  void close_writer() {
    ::close(fds[0]);
    fds[0] = -1;
  }
};

TEST(NetCodec, WriteAllAndFdReaderRoundTrip) {
  SocketPair sp;
  const std::vector<std::uint8_t> f1 = encode_frame(payload_of({1, 2, 3}));
  const std::vector<std::uint8_t> f2 = encode_frame(payload_of({4}));
  ASSERT_TRUE(write_all(sp.fds[0], f1));
  ASSERT_TRUE(write_all(sp.fds[0], f2));
  sp.close_writer();

  FdFrameReader reader(sp.fds[1], 1024);
  std::vector<std::uint8_t> frame;
  std::string error;
  ASSERT_TRUE(reader.next(&frame, &error)) << error;
  EXPECT_EQ(frame, f1);
  ASSERT_TRUE(reader.next(&frame, &error)) << error;
  EXPECT_EQ(frame, f2);
  EXPECT_FALSE(reader.next(&frame, &error));
  EXPECT_TRUE(error.empty()) << "EOF at a frame boundary is clean: " << error;
}

TEST(NetCodec, FdReaderSurvivesDribbledWrites) {
  SocketPair sp;
  const std::vector<std::uint8_t> frame =
      encode_frame(std::vector<std::uint8_t>(300, 0x5a));
  std::thread writer([&] {
    for (std::uint8_t b : frame) {
      ASSERT_TRUE(write_all(sp.fds[0], {&b, 1}));
      if ((b & 7) == 0) std::this_thread::yield();
    }
    sp.close_writer();
  });
  FdFrameReader reader(sp.fds[1], 1024);
  std::vector<std::uint8_t> got;
  std::string error;
  ASSERT_TRUE(reader.next(&got, &error)) << error;
  EXPECT_EQ(got, frame);
  writer.join();
}

TEST(NetCodec, FdReaderReportsEofMidFrame) {
  SocketPair sp;
  std::vector<std::uint8_t> partial = encode_frame(payload_of({1, 2, 3, 4}));
  partial.resize(partial.size() - 2);  // truncate inside the body
  ASSERT_TRUE(write_all(sp.fds[0], partial));
  sp.close_writer();

  FdFrameReader reader(sp.fds[1], 1024);
  std::vector<std::uint8_t> frame;
  std::string error;
  EXPECT_FALSE(reader.next(&frame, &error));
  EXPECT_FALSE(error.empty()) << "a mid-frame EOF is not a clean close";
}

TEST(NetCodec, FdReaderReportsLyingHeader) {
  SocketPair sp;
  std::vector<std::uint8_t> evil;
  put_u32(evil, 1u << 20);  // far past the reader's cap
  ASSERT_TRUE(write_all(sp.fds[0], evil));
  sp.close_writer();

  FdFrameReader reader(sp.fds[1], 256);
  std::vector<std::uint8_t> frame;
  std::string error;
  EXPECT_FALSE(reader.next(&frame, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find("256"), std::string::npos) << error;
}

TEST(NetCodec, WriteAllFailsWhenPeerIsGone) {
  SocketPair sp;
  ::close(sp.fds[1]);
  sp.fds[1] = -1;
  // A couple of kilobytes so the kernel cannot just buffer it all before
  // noticing the peer is gone; MSG_NOSIGNAL means we get `false`, not
  // SIGPIPE.
  const std::vector<std::uint8_t> big(64 * 1024, 0x11);
  EXPECT_FALSE(write_all(sp.fds[0], encode_frame(big)));
}

}  // namespace
}  // namespace sacpp::net
