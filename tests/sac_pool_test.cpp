// BufferPool property and stress battery.
//
// The pool hands out raw memory that the whole array system builds on, so
// the tests here are adversarial about the failure modes that matter for an
// allocator: two live allocations aliasing the same block, misaligned
// blocks, counters that drift from reality, cached memory that trim/drain
// fail to release, and cross-thread recycling races (the multi-threaded
// tests are run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "sacpp/sac/buffer.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/sac/pool.hpp"
#include "sacpp/sac/stats.hpp"

namespace sacpp::sac {
namespace {

TEST(PoolBlockBytes, RoundsUpToWholeCacheLines) {
  EXPECT_EQ(pool_block_bytes(0), kBufferAlignment);  // rank-0 arrays
  EXPECT_EQ(pool_block_bytes(1), kBufferAlignment);
  EXPECT_EQ(pool_block_bytes(kBufferAlignment), kBufferAlignment);
  EXPECT_EQ(pool_block_bytes(kBufferAlignment + 1), 2 * kBufferAlignment);
  EXPECT_EQ(pool_block_bytes(1000), 1024u);
  for (std::size_t payload : {1u, 63u, 64u, 65u, 4095u, 4096u, 1u << 20}) {
    const std::size_t b = pool_block_bytes(payload);
    EXPECT_GE(b, payload);
    EXPECT_EQ(b % kBufferAlignment, 0u);
    EXPECT_LT(b - (payload == 0 ? 1 : payload), kBufferAlignment);
  }
}

// A live pooled block with the pattern it was stamped with.
struct LiveBlock {
  std::size_t bytes = 0;
  unsigned char stamp = 0;
};

void stamp(void* p, std::size_t bytes, unsigned char value) {
  std::memset(p, value, bytes);
}

bool stamp_intact(const void* p, std::size_t bytes, unsigned char value) {
  const auto* c = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < bytes; ++i) {
    if (c[i] != value) return false;
  }
  return true;
}

// Randomized differential test against a reference map of live intervals:
// a few thousand allocate/release operations over a mix of size classes,
// checking after every step that
//  * every block is cache-line aligned,
//  * no two live blocks overlap (the reference map would catch the pool
//    handing one free-list entry to two callers),
//  * every block still holds the byte pattern stamped at allocation when it
//    is released (catches writes through an aliased recycled block),
//  * the pool's monotonic totals balance the operations performed.
TEST(BufferPool, RandomizedAllocFreeKeepsBlocksDisjointAndIntact) {
  BufferPool& pool = BufferPool::instance();
  pool.flush_thread_cache();
  pool.drain();

  std::mt19937 rng(0xB0FFE7u);  // fixed seed: deterministic CI failure
  // Size mix: the MG shape ladder lives in the small classes, with a tail
  // of medium and page-plus payloads.
  auto random_payload = [&rng]() -> std::size_t {
    switch (rng() % 8) {
      case 0: return rng() % 2;                     // empty / rank-0
      case 1: return 1 + rng() % 63;                // sub-line
      case 2: case 3: case 4: return 1 + rng() % 4096;
      case 5: case 6: return 1 + rng() % (1u << 16);
      default: return 1 + rng() % (1u << 20);
    }
  };

  const BufferPool::Totals before = pool.totals();
  std::map<std::uintptr_t, LiveBlock> live;  // start address -> block
  std::uint64_t allocs = 0, frees = 0;
  unsigned char next_stamp = 1;

  for (int step = 0; step < 20000; ++step) {
    const bool do_alloc = live.empty() || (live.size() < 64 && rng() % 2 == 0);
    if (do_alloc) {
      const std::size_t bytes = pool_block_bytes(random_payload());
      void* p = pool.allocate(bytes);
      ASSERT_NE(p, nullptr);
      ++allocs;
      const auto addr = reinterpret_cast<std::uintptr_t>(p);
      ASSERT_EQ(addr % kBufferAlignment, 0u) << "misaligned block";

      // Disjointness against every live interval: the predecessor must end
      // at or before addr, and the successor must start at or after the end.
      auto next = live.lower_bound(addr);
      if (next != live.begin()) {
        auto prev = std::prev(next);
        ASSERT_LE(prev->first + prev->second.bytes, addr)
            << "new block overlaps a live block below it";
      }
      if (next != live.end()) {
        ASSERT_GE(next->first, addr + bytes)
            << "new block overlaps a live block above it";
      }

      const unsigned char s = next_stamp++;
      if (next_stamp == 0) next_stamp = 1;
      stamp(p, bytes, s);
      live.emplace(addr, LiveBlock{bytes, s});
    } else {
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      void* p = reinterpret_cast<void*>(it->first);
      ASSERT_TRUE(stamp_intact(p, it->second.bytes, it->second.stamp))
          << "live block was clobbered while another block was recycled";
      pool.deallocate(p, it->second.bytes);
      ++frees;
      live.erase(it);
    }
  }
  for (const auto& [addr, block] : live) {
    void* p = reinterpret_cast<void*>(addr);
    ASSERT_TRUE(stamp_intact(p, block.bytes, block.stamp));
    pool.deallocate(p, block.bytes);
    ++frees;
  }

  const BufferPool::Totals after = pool.totals();
  EXPECT_EQ((after.hits - before.hits) + (after.misses - before.misses),
            allocs);
  EXPECT_EQ(after.returns - before.returns, frees);
}

TEST(BufferPool, RecyclesReleasedBlockAsHit) {
  BufferPool& pool = BufferPool::instance();
  const std::size_t bytes = pool_block_bytes(17 * sizeof(double));
  void* p = pool.allocate(bytes);
  ASSERT_NE(p, nullptr);
  pool.deallocate(p, bytes);

  bool hit = false;
  void* q = pool.allocate(bytes, &hit);
  EXPECT_TRUE(hit) << "released block of the same size class was not reused";
  EXPECT_EQ(q, p) << "magazine should hand back the most recent release";
  pool.deallocate(q, bytes);

  // A different size class cannot be served by that block.
  hit = true;
  void* r = pool.allocate(bytes + kBufferAlignment, &hit);
  ASSERT_NE(r, nullptr);
  EXPECT_NE(r, q);
  pool.deallocate(r, bytes + kBufferAlignment);
}

TEST(BufferPool, TrimFreesBlocksIdleForTwoEpochs) {
  BufferPool& pool = BufferPool::instance();
  pool.flush_thread_cache();
  pool.drain();
  ASSERT_EQ(pool.depot_cached_bytes(), 0u);

  constexpr int kBlocks = 32;
  const std::size_t bytes = pool_block_bytes(8192);
  std::vector<void*> blocks;
  for (int i = 0; i < kBlocks; ++i) blocks.push_back(pool.allocate(bytes));
  for (void* p : blocks) pool.deallocate(p, bytes);
  pool.flush_thread_cache();  // make the magazine contents trimmable
  ASSERT_GE(pool.depot_cached_bytes(), kBlocks * bytes);

  const std::uint64_t epoch = pool.epoch();
  pool.trim();  // blocks are one epoch old: still cached
  EXPECT_EQ(pool.epoch(), epoch + 1);
  EXPECT_GE(pool.depot_cached_bytes(), kBlocks * bytes)
      << "trim freed blocks before they were two epochs idle";
  pool.trim();  // two epochs idle: released to the system
  EXPECT_EQ(pool.depot_cached_bytes(), 0u);
}

TEST(BufferPool, DrainReleasesEverythingCached) {
  BufferPool& pool = BufferPool::instance();
  const std::size_t bytes = pool_block_bytes(4096);
  std::vector<void*> blocks;
  for (int i = 0; i < 16; ++i) blocks.push_back(pool.allocate(bytes));
  for (void* p : blocks) pool.deallocate(p, bytes);

  const BufferPool::Totals before = pool.totals();
  pool.drain();
  EXPECT_EQ(pool.depot_cached_bytes(), 0u);
  const BufferPool::Totals after = pool.totals();
  EXPECT_GE(after.drained - before.drained, 16u);

  // The pool still works after a drain (fresh misses).
  bool hit = true;
  void* p = pool.allocate(bytes, &hit);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(hit);
  pool.deallocate(p, bytes);
}

// The per-run RuntimeStats gauges maintained by Buffer<T> must balance: every
// pooled allocation is either a hit or a miss, and every destruction returns
// its block.
TEST(BufferPool, RuntimeStatsBalanceOverBufferLifecycles) {
  SacConfig cfg = config();
  cfg.pool = true;
  ScopedConfig guard(cfg);
  reset_stats();
  {
    std::vector<Buffer<double>> buffers;
    for (int i = 0; i < 100; ++i) {
      buffers.emplace_back(static_cast<std::size_t>(1 + (i * 37) % 5000));
    }
  }
  const RuntimeStats& st = stats();
  EXPECT_EQ(st.allocations, 100u);
  EXPECT_EQ(st.pool_hits + st.pool_misses, 100u);
  EXPECT_EQ(st.pool_returns, 100u);
}

// Multi-threaded hammer: every thread churns through its own randomized
// alloc/stamp/verify/release loop over a shared set of size classes while
// one thread periodically trims.  Any cross-thread recycling bug (a block
// handed to two threads, a free-list race) shows up as a clobbered stamp or
// as a TSan report in the sanitizer CI job.
TEST(BufferPool, ConcurrentChurnKeepsBlocksPrivate) {
  BufferPool& pool = BufferPool::instance();
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<bool> failed{false};

  auto worker = [&pool, &failed](int tid) {
    std::mt19937 rng(0xC0FFEEu + static_cast<unsigned>(tid));
    std::vector<std::pair<void*, std::size_t>> mine;
    const auto my_stamp = static_cast<unsigned char>(0x40 + tid);
    for (int i = 0; i < kIters && !failed.load(std::memory_order_relaxed);
         ++i) {
      if (mine.size() < 16 && rng() % 2 == 0) {
        const std::size_t bytes = pool_block_bytes(1 + rng() % 20000);
        void* p = pool.allocate(bytes);
        if (p == nullptr ||
            reinterpret_cast<std::uintptr_t>(p) % kBufferAlignment != 0) {
          failed.store(true);
          return;
        }
        stamp(p, bytes, my_stamp);
        mine.emplace_back(p, bytes);
      } else if (!mine.empty()) {
        const std::size_t idx = rng() % mine.size();
        auto [p, bytes] = mine[idx];
        if (!stamp_intact(p, bytes, my_stamp)) {
          failed.store(true);  // another thread wrote into our live block
          return;
        }
        pool.deallocate(p, bytes);
        mine[idx] = mine.back();
        mine.pop_back();
      }
      // Push blocks through the depot so other threads can steal them.
      if (i % 256 == 255) pool.flush_thread_cache();
    }
    for (auto [p, bytes] : mine) pool.deallocate(p, bytes);
    pool.flush_thread_cache();
  };

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  threads.emplace_back([&pool, &failed] {
    for (int i = 0; i < 50 && !failed.load(std::memory_order_relaxed); ++i) {
      pool.trim();
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load()) << "cross-thread aliasing or misalignment";
}

// Cross-thread release: blocks allocated on one thread are verified and
// released on another (the MgMpi message-passing pattern), then recycled.
TEST(BufferPool, BlocksMigrateBetweenThreads) {
  BufferPool& pool = BufferPool::instance();
  constexpr int kBlocks = 64;
  const std::size_t bytes = pool_block_bytes(3000);

  std::mutex mu;
  std::vector<void*> handoff;
  std::atomic<bool> bad{false};

  std::thread producer([&] {
    for (int i = 0; i < kBlocks; ++i) {
      void* p = pool.allocate(bytes);
      if (p == nullptr) {
        bad.store(true);
        return;
      }
      stamp(p, bytes, 0xAB);
      std::lock_guard<std::mutex> lock(mu);
      handoff.push_back(p);
    }
    pool.flush_thread_cache();
  });
  std::thread consumer([&] {
    int consumed = 0;
    while (consumed < kBlocks && !bad.load()) {
      void* p = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!handoff.empty()) {
          p = handoff.back();
          handoff.pop_back();
        }
      }
      if (p == nullptr) {
        std::this_thread::yield();
        continue;
      }
      if (!stamp_intact(p, bytes, 0xAB)) bad.store(true);
      pool.deallocate(p, bytes);
      ++consumed;
    }
    pool.flush_thread_cache();
  });
  producer.join();
  consumer.join();
  EXPECT_FALSE(bad.load());
}

}  // namespace
}  // namespace sacpp::sac
