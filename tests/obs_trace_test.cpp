// The telemetry span rings: capacity rounding, overflow/wrap semantics with
// the overwrite counter, seqlock consistency under a concurrent writer, and
// the enable-flag gating of the recording API.

#include <gtest/gtest.h>

#include <atomic>
#include <string_view>
#include <thread>
#include <vector>

#include "sacpp/obs/obs.hpp"
#include "sacpp/obs/ring.hpp"

namespace sacpp::obs {
namespace {

SpanRecord make_record(std::int64_t i) {
  SpanRecord r;
  r.start_ns = i;
  r.dur_ns = 2 * i;
  r.arg = 3 * i;
  r.id = static_cast<std::uint64_t>(i);
  r.name = "probe";
  r.kind = SpanKind::kPhase;
  return r;
}

TEST(SpanRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpanRing(1).capacity(), 8u);
  EXPECT_EQ(SpanRing(8).capacity(), 8u);
  EXPECT_EQ(SpanRing(10).capacity(), 16u);
  EXPECT_EQ(SpanRing(1024).capacity(), 1024u);
  EXPECT_EQ(SpanRing(1025).capacity(), 2048u);
}

TEST(SpanRing, SnapshotReturnsPushedRecordsOldestFirst) {
  SpanRing ring(8);
  for (std::int64_t i = 0; i < 5; ++i) ring.push(make_record(i));
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.overwritten(), 0u);
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 5u);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].start_ns, i);
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].arg, 3 * i);
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].kind, SpanKind::kPhase);
  }
}

TEST(SpanRing, OverflowEvictsOldestAndCountsDropped) {
  SpanRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::int64_t i = 0; i < 20; ++i) ring.push(make_record(i));
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.overwritten(), 12u);  // 20 pushes into 8 slots
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // The survivors are the 8 newest, still oldest-first.
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(spans[k].start_ns, static_cast<std::int64_t>(12 + k));
  }
}

TEST(SpanRing, ClearForgetsEverything) {
  SpanRing ring(8);
  for (std::int64_t i = 0; i < 20; ++i) ring.push(make_record(i));
  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.overwritten(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

// The seqlock contract: a snapshot taken while the owner thread keeps
// pushing never returns a torn record.  Records are self-checking
// (dur = 2*start, arg = 3*start), so any mixed-generation read is caught.
// Run under TSan this also proves the ring is data-race-free.
TEST(SpanRing, ConcurrentSnapshotSeesNoTornRecords) {
  SpanRing ring(64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.push(make_record(i++));
    }
  });
  // The snapshot rounds are only meaningful once the writer is going; an
  // empty ring snapshots in nanoseconds and 2000 rounds could otherwise
  // complete before the writer thread is even scheduled.
  while (ring.recorded() == 0) {
    std::this_thread::yield();
  }
  std::uint64_t checked = 0;
  for (int round = 0; round < 2000; ++round) {
    for (const SpanRecord& r : ring.snapshot()) {
      EXPECT_EQ(r.dur_ns, 2 * r.start_ns);
      EXPECT_EQ(r.arg, 3 * r.start_ns);
      EXPECT_STREQ(r.name, "probe");
      ++checked;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(checked, 0u);
}

// Multiple threads recording through the public API (each on its own ring)
// while the main thread keeps exporting snapshots — the TSan regression for
// the registry and the per-thread rings together.
TEST(ObsRecording, ConcurrentWritersAndSnapshots) {
  reset();
  set_enabled(true);
  constexpr int kThreads = 4;
  constexpr std::int64_t kSpansPerThread = 5000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::int64_t i = 0; i < kSpansPerThread; ++i) {
        record_span(SpanKind::kPhase, "mt_probe", i, 1, t);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int round = 0; round < 50; ++round) {
    (void)snapshot_spans();
    (void)total_dropped_spans();
  }
  for (auto& t : threads) t.join();
  set_enabled(false);

  std::uint64_t recorded = 0;
  for (const ThreadSpans& t : snapshot_spans()) {
    if (t.name.rfind("thread-", 0) == 0) recorded += t.recorded;
  }
  EXPECT_GE(recorded, static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  reset();
}

TEST(ObsRecording, ScopedSpanIsInertWhileDisabled) {
  reset();
  set_enabled(false);
  std::uint64_t before = 0;
  for (const ThreadSpans& t : snapshot_spans()) before += t.recorded;
  {
    ScopedSpan span(SpanKind::kKernel, "should_not_appear");
  }
  std::uint64_t after = 0;
  for (const ThreadSpans& t : snapshot_spans()) after += t.recorded;
  EXPECT_EQ(before, after);
}

TEST(ObsRecording, ScopedSpanRecordsWhileEnabled) {
  reset();
  set_enabled(true);
  {
    ScopedSpan span(SpanKind::kKernel, "visible", 11);
  }
  set_enabled(false);
  bool found = false;
  for (const ThreadSpans& t : snapshot_spans()) {
    for (const SpanRecord& r : t.spans) {
      if (std::string_view(r.name) == "visible") {
        found = true;
        EXPECT_EQ(r.kind, SpanKind::kKernel);
        EXPECT_EQ(r.arg, 11);
        EXPECT_GE(r.dur_ns, 0);
      }
    }
  }
  EXPECT_TRUE(found);
  reset();
}

TEST(ObsLevels, LevelContextNestsAndRestores) {
  EXPECT_EQ(current_level(), -1);
  const int prev = set_current_level(5);
  EXPECT_EQ(prev, -1);
  EXPECT_EQ(current_level(), 5);
  const int prev2 = set_current_level(3);
  EXPECT_EQ(prev2, 5);
  set_current_level(prev2);
  set_current_level(prev);
  EXPECT_EQ(current_level(), -1);
}

TEST(ObsLevels, RegionSamplesAggregatePerLevel) {
  reset_levels();
  RegionSample s;
  s.level = 4;
  s.participants = 2;
  s.region_ns = 1000;
  s.busy_total_ns = 1600;  // two workers: 1000 + 600
  s.busy_max_ns = 1000;
  s.fork_latency_ns = 50;
  record_region_sample(s);
  record_region_sample(s);
  record_level_ns(4, 2500);

  const auto levels = level_metrics();
  ASSERT_EQ(levels.size(), 1u);
  const LevelMetrics& m = levels[0];
  EXPECT_EQ(m.level, 4);
  EXPECT_EQ(m.visits, 1u);
  EXPECT_EQ(m.regions, 2u);
  EXPECT_DOUBLE_EQ(m.seconds, 2.5e-6);
  EXPECT_DOUBLE_EQ(m.busy_seconds, 3.2e-6);
  // idle = participants * wall - busy = 2000 - 1600 = 400 per region
  EXPECT_DOUBLE_EQ(m.idle_seconds, 8e-7);
  // imbalance = max / mean = 1000 / 800
  EXPECT_DOUBLE_EQ(m.imbalance, 1.25);
  EXPECT_DOUBLE_EQ(m.fork_latency_seconds, 5e-8);
  reset_levels();
}

}  // namespace
}  // namespace sacpp::obs
