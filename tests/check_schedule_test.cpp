// Schedule-explorer tests: deterministic seed replay (same seed => same
// interleaving, the property regression pinning relies on), bug finding on
// a planted ordering bug with replay reproducing the exact failure, the
// PCT knobs, and the serve self-check batteries built on the explorer.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sacpp/check/schedule.hpp"
#include "sacpp/serve/selfcheck.hpp"

using namespace sacpp::check;

namespace {

TEST(CheckSchedule, RngIsStableAcrossInstances) {
  // Schedules must replay bit-identically from a seed; the RNG is the root
  // of that promise.
  ScheduleRng a(42);
  ScheduleRng b(42);
  ScheduleRng c(43);
  bool all_equal_differ = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) all_equal_differ = true;
  }
  EXPECT_TRUE(all_equal_differ) << "seeds 42 and 43 produced equal streams";
}

// A scenario that records which task ran each step, with no invariants: the
// vehicle for interleaving-determinism tests.
ScenarioBuilder recording_scenario(std::vector<std::string>* trace) {
  return [trace](std::uint64_t) {
    ScheduleScenario scenario;
    for (const char* name : {"a", "b", "c"}) {
      ScheduleTask task;
      task.name = name;
      for (int s = 0; s < 4; ++s) {
        task.steps.push_back(
            [trace, name, s] { trace->push_back(name + std::to_string(s)); });
      }
      scenario.tasks.push_back(std::move(task));
    }
    return scenario;
  };
}

TEST(CheckSchedule, SameSeedReplaysIdenticalInterleaving) {
  ScheduleExplorer explorer;
  std::vector<std::string> first, second;
  const ScheduleReport r1 = explorer.replay(7, recording_scenario(&first));
  const ScheduleReport r2 = explorer.replay(7, recording_scenario(&second));
  EXPECT_FALSE(r1.failed);
  EXPECT_EQ(first, second);
  EXPECT_EQ(r1.last_interleaving, r2.last_interleaving);
  EXPECT_EQ(r1.steps_run, 12u);
  // Steps run serialized and completely: each task contributes its steps in
  // program order even though tasks interleave.
  std::vector<std::string> a_only;
  for (const std::string& s : first) {
    if (s[0] == 'a') a_only.push_back(s);
  }
  EXPECT_EQ(a_only, (std::vector<std::string>{"a0", "a1", "a2", "a3"}));
}

TEST(CheckSchedule, DifferentSeedsExploreDifferentInterleavings) {
  ScheduleExplorer explorer;
  std::vector<std::string> trace;
  std::vector<std::vector<std::size_t>> interleavings;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    trace.clear();
    interleavings.push_back(
        explorer.replay(seed, recording_scenario(&trace)).last_interleaving);
  }
  bool any_differ = false;
  for (const auto& i : interleavings) {
    if (i != interleavings.front()) any_differ = true;
  }
  EXPECT_TRUE(any_differ)
      << "20 seeds produced one schedule: the explorer is not exploring";
}

// The planted bug: a publish/consume race of depth 1.  The consumer's step
// throws iff it runs before the publisher's — only some interleavings fail,
// which is exactly what the explorer must find and replay must reproduce.
ScenarioBuilder racy_scenario() {
  return [](std::uint64_t) {
    auto published = std::make_shared<bool>(false);
    ScheduleScenario scenario;
    ScheduleTask publisher;
    publisher.name = "publisher";
    publisher.steps.push_back([published] { *published = true; });
    ScheduleTask consumer;
    consumer.name = "consumer";
    consumer.steps.push_back([published] {
      if (!*published) throw std::logic_error("consumed before publish");
    });
    scenario.tasks.push_back(std::move(publisher));
    scenario.tasks.push_back(std::move(consumer));
    return scenario;
  };
}

TEST(CheckSchedule, FindsPlantedOrderingBugAndReplayReproducesIt) {
  ScheduleOptions opts;
  opts.schedules = 64;  // two tasks, one step each: half the seeds fail
  ScheduleExplorer explorer(opts);
  DiagnosticEngine engine;
  const ScheduleReport found = explorer.run(racy_scenario(), &engine);
  ASSERT_TRUE(found.failed) << "64 schedules never ran consumer first";
  EXPECT_EQ(found.failing_task, "consumer");
  EXPECT_EQ(found.failure, "consumed before publish");
  ASSERT_EQ(engine.size(), 1u);
  // The diagnostic carries the replay recipe.
  const std::string msg = engine.diagnostics()[0].message;
  EXPECT_NE(msg.find("schedule seed " + std::to_string(found.failing_seed)),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("--schedule-seed="), std::string::npos) << msg;

  // Replay pins the regression: the same seed fails the same way, on the
  // same interleaving, every time.
  const ScheduleReport again = explorer.replay(found.failing_seed,
                                               racy_scenario());
  EXPECT_TRUE(again.failed);
  EXPECT_EQ(again.failing_seed, found.failing_seed);
  EXPECT_EQ(again.failure, found.failure);
  EXPECT_EQ(again.last_interleaving, found.last_interleaving);
  // And the first interleaving entry is indeed the consumer (task index 1).
  ASSERT_FALSE(again.last_interleaving.empty());
  EXPECT_EQ(again.last_interleaving[0], 1u);
}

TEST(CheckSchedule, StopOnFailureControlsExploration) {
  ScheduleOptions opts;
  opts.schedules = 64;
  opts.stop_on_failure = false;
  DiagnosticEngine engine;
  const ScheduleReport report =
      ScheduleExplorer(opts).run(racy_scenario(), &engine);
  EXPECT_EQ(report.schedules_run, 64u);  // kept going past failures
  EXPECT_TRUE(report.failed);
  EXPECT_GT(engine.size(), 1u) << "each failing seed reports separately";
}

TEST(CheckSchedule, FinallyHookFailuresAreAttributed) {
  ScenarioBuilder builder = [](std::uint64_t) {
    ScheduleScenario scenario;
    ScheduleTask noop;
    noop.name = "noop";
    noop.steps.push_back([] {});
    scenario.tasks.push_back(std::move(noop));
    scenario.finally = [] {
      throw std::logic_error("end-of-schedule invariant violated");
    };
    return scenario;
  };
  const ScheduleReport report = ScheduleExplorer().replay(5, builder);
  EXPECT_TRUE(report.failed);
  EXPECT_EQ(report.failing_task, "finally");
  EXPECT_EQ(report.failure, "end-of-schedule invariant violated");
}

// ---------------------------------------------------------------------------
// The serve batteries built on the explorer
// ---------------------------------------------------------------------------

TEST(CheckSchedule, ServeQueueBatteryRunsCleanAtReducedScale) {
  // The full 1000-schedule battery runs via `npb_mg --check=schedule`; here
  // a reduced sweep keeps the unit-test binary fast while still covering
  // the model-mirror invariants.
  sacpp::serve::SelfCheckOptions opts;
  opts.schedules = 100;
  opts.service_lifecycles = 1;
  DiagnosticEngine engine;
  EXPECT_TRUE(sacpp::serve::run_schedule_check(opts, &engine))
      << engine.to_ascii();
}

TEST(CheckSchedule, ServeQueueBatteryReplaysASingleSeed) {
  // Regression mode: schedule_seed pins one interleaving of the queue
  // battery; a clean replay exits clean (and a failure would name the seed).
  sacpp::serve::SelfCheckOptions opts;
  opts.schedule_seed = 17;
  DiagnosticEngine engine;
  EXPECT_TRUE(sacpp::serve::run_schedule_check(opts, &engine))
      << engine.to_ascii();
}

}  // namespace
