// Diagnostics engine: structured records, severity/pass accounting, table
// and CSV reporting, and the SACPP_CHECK environment switch.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sacpp/check/diagnostics.hpp"
#include "sacpp/sac/config.hpp"

namespace sacpp::check {
namespace {

Diagnostic sample(Severity sev = Severity::kError, Pass pass = Pass::kAlias) {
  return Diagnostic{sev, pass, "root/arg0", "something is off"};
}

TEST(Diagnostics, NamesAreStable) {
  EXPECT_STREQ(severity_name(Severity::kWarning), "warning");
  EXPECT_STREQ(severity_name(Severity::kError), "error");
  EXPECT_STREQ(pass_name(Pass::kWlGraph), "wlgraph");
  EXPECT_STREQ(pass_name(Pass::kAlias), "alias");
  EXPECT_STREQ(pass_name(Pass::kRace), "race");
}

TEST(Diagnostics, ToStringCarriesAllFields) {
  const std::string s = sample().to_string();
  EXPECT_NE(s.find("error"), std::string::npos);
  EXPECT_NE(s.find("alias"), std::string::npos);
  EXPECT_NE(s.find("root/arg0"), std::string::npos);
  EXPECT_NE(s.find("something is off"), std::string::npos);
}

TEST(Diagnostics, EngineCountsBySeverityAndPass) {
  DiagnosticEngine e;
  EXPECT_TRUE(e.empty());
  e.report(sample(Severity::kError, Pass::kAlias));
  e.report(sample(Severity::kWarning, Pass::kWlGraph));
  e.report(Severity::kError, Pass::kRace, "region 1", "overlap");
  EXPECT_FALSE(e.empty());
  EXPECT_EQ(e.size(), 3u);
  EXPECT_EQ(e.count(Severity::kError), 2u);
  EXPECT_EQ(e.count(Severity::kWarning), 1u);
  EXPECT_EQ(e.count(Pass::kAlias), 1u);
  EXPECT_EQ(e.count(Pass::kWlGraph), 1u);
  EXPECT_EQ(e.count(Pass::kRace), 1u);
  e.clear();
  EXPECT_TRUE(e.empty());
}

TEST(Diagnostics, ReportAllAppends) {
  DiagnosticEngine e;
  e.report_all({sample(), sample(Severity::kWarning, Pass::kRace)});
  EXPECT_EQ(e.size(), 2u);
}

TEST(Diagnostics, AsciiReportListsEveryDiagnostic) {
  DiagnosticEngine e;
  EXPECT_NE(e.to_ascii("probe").find("no diagnostics"), std::string::npos);
  e.report(sample());
  const std::string out = e.to_ascii("probe");
  EXPECT_NE(out.find("root/arg0"), std::string::npos);
  EXPECT_NE(out.find("something is off"), std::string::npos);
}

TEST(Diagnostics, CsvRoundTrip) {
  DiagnosticEngine e;
  e.report(sample());
  const std::string path = "check_diagnostics_test.csv";
  e.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream all;
  all << in.rdbuf();
  const std::string csv = all.str();
  EXPECT_NE(csv.find("severity"), std::string::npos);
  EXPECT_NE(csv.find("message"), std::string::npos);
  EXPECT_NE(csv.find("error"), std::string::npos);
  EXPECT_NE(csv.find("something is off"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Diagnostics, CheckModeComesFromEnvironment) {
  ASSERT_EQ(setenv("SACPP_CHECK", "1", 1), 0);
  EXPECT_TRUE(sac::config_from_env().check);
  ASSERT_EQ(setenv("SACPP_CHECK", "0", 1), 0);
  EXPECT_FALSE(sac::config_from_env().check);
  ASSERT_EQ(unsetenv("SACPP_CHECK"), 0);
  EXPECT_FALSE(sac::config_from_env().check);
}

}  // namespace
}  // namespace sacpp::check
