// CLI parser and table/CSV rendering used by the bench harness.

#include <gtest/gtest.h>

#include "sacpp/common/cli.hpp"
#include "sacpp/common/stats.hpp"
#include "sacpp/common/table.hpp"

namespace sacpp {
namespace {

TEST(Cli, DefaultsApplyWithoutArguments) {
  Cli cli;
  cli.add_option("size", "32", "grid size");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("size"), 32);
}

TEST(Cli, SpaceSeparatedValue) {
  Cli cli;
  cli.add_option("size", "32", "grid size");
  const char* argv[] = {"prog", "--size", "64"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("size"), 64);
}

TEST(Cli, EqualsSeparatedValue) {
  Cli cli;
  cli.add_option("class", "S", "benchmark class");
  const char* argv[] = {"prog", "--class=A"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get("class"), "A");
}

TEST(Cli, FlagDefaultsFalseSetsTrue) {
  Cli cli;
  cli.add_flag("verbose", "talk more");
  const char* argv0[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv0));
  EXPECT_FALSE(cli.get_flag("verbose"));
  const char* argv1[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv1));
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, UnknownOptionFailsParse) {
  Cli cli;
  cli.add_option("size", "32", "grid size");
  const char* argv[] = {"prog", "--oops", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(Cli, MissingValueFailsParse) {
  Cli cli;
  cli.add_option("size", "32", "grid size");
  const char* argv[] = {"prog", "--size"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpRequestsReturnFalse) {
  Cli cli;
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, DoubleValues) {
  Cli cli;
  cli.add_option("tol", "0.5", "tolerance");
  const char* argv[] = {"prog", "--tol", "1.25"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("tol"), 1.25);
}

TEST(Cli, UndeclaredGetThrows) {
  Cli cli;
  EXPECT_THROW(cli.get("nope"), ContractError);
}

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.to_ascii("Title");
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ContractError);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(AsciiBar, ProportionalAndClamped) {
  EXPECT_EQ(ascii_bar(5.0, 10.0, 10), "#####     ");
  EXPECT_EQ(ascii_bar(20.0, 10.0, 10), "##########");
  EXPECT_EQ(ascii_bar(0.0, 10.0, 10), "          ");
}

TEST(Stats, SummaryOfKnownSamples) {
  const Summary s = summarize({3.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Stats, SingleSample) {
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, EmptyThrows) { EXPECT_THROW(summarize({}), ContractError); }

}  // namespace
}  // namespace sacpp
