// Full-pipeline checked runs: every MG variant executes a complete class-S
// benchmark under the sacpp_check runtime analyses and must come out with
// zero diagnostics — the end-to-end guarantee that the production code
// respects the uniqueness, region-disjointness, and allocation-balance
// invariants the checkers enforce.

#include <gtest/gtest.h>

#include "sacpp/check/check.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/mg/mg_mpi.hpp"
#include "sacpp/sac/config.hpp"

namespace sacpp::check {
namespace {

using mg::MgResult;
using mg::MgSpec;
using mg::RunOptions;
using mg::Variant;

MgResult run_checked(Variant variant, Session& session) {
  (void)session;  // constructed by the caller before the run
  RunOptions opts;
  opts.warmup = false;
  opts.record_norms = false;
  return mg::run_benchmark(variant, MgSpec::for_class(mg::MgClass::S), opts);
}

void expect_clean_and_verified(const MgResult& result, Session& session) {
  DiagnosticEngine& engine = session.finish();
  EXPECT_TRUE(engine.empty()) << engine.to_ascii();
  bool known = false;
  EXPECT_TRUE(mg::verify(result, MgSpec::for_class(mg::MgClass::S), &known));
  EXPECT_TRUE(known);
}

TEST(CheckPipeline, SacClassSIsClean) {
  Session session;
  const MgResult r = run_checked(Variant::kSac, session);
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, SacMultiThreadedClassSIsClean) {
  // The interesting case: real parallel regions with the race detector and
  // ownership watch armed.
  Session session;
  sac::SacConfig cfg = sac::config();
  cfg.mt_threads = 4;
  cfg.mt_threshold = 256;
  MgResult r;
  {
    sac::ScopedConfig scoped(cfg);
    r = run_checked(Variant::kSac, session);
  }
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, FortranRefClassSIsClean) {
  Session session;
  const MgResult r = run_checked(Variant::kFortran, session);
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, OpenMpClassSIsClean) {
  Session session;
  const MgResult r = run_checked(Variant::kOpenMp, session);
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, SacDirectClassSIsClean) {
  Session session;
  const MgResult r = run_checked(Variant::kSacDirect, session);
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, MpiStyleClassSIsClean) {
  const MgSpec spec = MgSpec::for_class(mg::MgClass::S);
  Session session;
  const mg::MgMpi::Result r = mg::MgMpi(spec, /*ranks=*/2).run(spec.nit,
                                                               /*warmup=*/false);
  DiagnosticEngine& engine = session.finish();
  EXPECT_TRUE(engine.empty()) << engine.to_ascii();
  EXPECT_GT(r.final_norm, 0.0);
  EXPECT_EQ(r.norms.size(), static_cast<std::size_t>(spec.nit));
}

}  // namespace
}  // namespace sacpp::check
