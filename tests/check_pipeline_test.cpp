// Full-pipeline checked runs: every MG variant executes a complete class-S
// benchmark under the sacpp_check runtime analyses and must come out with
// zero diagnostics — the end-to-end guarantee that the production code
// respects the uniqueness, region-disjointness, and allocation-balance
// invariants the checkers enforce.

#include <gtest/gtest.h>

#include <string>

#include "sacpp/check/check.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/mg/mg_mpi.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/sac/pool.hpp"

namespace sacpp::check {
namespace {

using mg::MgResult;
using mg::MgSpec;
using mg::RunOptions;
using mg::Variant;

MgResult run_checked(Variant variant, Session& session) {
  (void)session;  // constructed by the caller before the run
  RunOptions opts;
  opts.warmup = false;
  opts.record_norms = false;
  return mg::run_benchmark(variant, MgSpec::for_class(mg::MgClass::S), opts);
}

void expect_clean_and_verified(const MgResult& result, Session& session) {
  DiagnosticEngine& engine = session.finish();
  EXPECT_TRUE(engine.empty()) << engine.to_ascii();
  bool known = false;
  EXPECT_TRUE(mg::verify(result, MgSpec::for_class(mg::MgClass::S), &known));
  EXPECT_TRUE(known);
}

TEST(CheckPipeline, SacClassSIsClean) {
  Session session;
  const MgResult r = run_checked(Variant::kSac, session);
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, SacMultiThreadedClassSIsClean) {
  // The interesting case: real parallel regions with the race detector and
  // ownership watch armed.
  Session session;
  sac::SacConfig cfg = sac::config();
  cfg.mt_threads = 4;
  cfg.mt_threshold = 256;
  MgResult r;
  {
    sac::ScopedConfig scoped(cfg);
    r = run_checked(Variant::kSac, session);
  }
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, SacSimdPlanesClassSIsClean) {
  // Vectorized backend under the planes row engine: the checked runtime's
  // aliasing and allocation-balance analyses must stay silent when rows are
  // dispatched through the SIMD primitives (masked tail stores included).
  Session session;
  sac::SacConfig cfg = sac::config();
  cfg.stencil_mode = sac::StencilMode::kPlanes;
  cfg.backend = sac::BackendKind::kSimd;
  MgResult r;
  {
    sac::ScopedConfig scoped(cfg);
    r = run_checked(Variant::kSac, session);
  }
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, SacPortableSimdClassSIsClean) {
  // Same battery through the portable 4-wide engine — the path the no-AVX2
  // CI job exercises.
  Session session;
  sac::SacConfig cfg = sac::config();
  cfg.stencil_mode = sac::StencilMode::kPlanes;
  cfg.backend = sac::BackendKind::kSimdPortable;
  MgResult r;
  {
    sac::ScopedConfig scoped(cfg);
    r = run_checked(Variant::kSacDirect, session);
  }
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, FortranRefClassSIsClean) {
  Session session;
  const MgResult r = run_checked(Variant::kFortran, session);
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, OpenMpClassSIsClean) {
  Session session;
  const MgResult r = run_checked(Variant::kOpenMp, session);
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, SacDirectClassSIsClean) {
  Session session;
  const MgResult r = run_checked(Variant::kSacDirect, session);
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, SacClassSWithPoolIsClean) {
  // Pooled allocation must be invisible to the runtime checkers: a full
  // class-S run with the alias/uniqueness analyses armed and every buffer
  // cycled through the BufferPool free lists still produces zero
  // diagnostics — recycling a block is not a uniqueness violation.
  Session session;
  sac::SacConfig cfg = sac::config();
  cfg.pool = true;
  MgResult r;
  {
    sac::ScopedConfig scoped(cfg);
    r = run_checked(Variant::kSac, session);
  }
  expect_clean_and_verified(r, session);
}

TEST(CheckPipeline, PoolDoubleReleaseIsReported) {
  // Negative test: the checkers must also *fire*.  Releasing the same block
  // into the pool twice is the allocator-level equivalent of a double free —
  // the second release would let two future allocations alias one block —
  // and checked mode must report it instead of corrupting the free list.
  Session session;
  sac::BufferPool& pool = sac::BufferPool::instance();
  const std::size_t bytes = sac::pool_block_bytes(512);
  void* p = pool.allocate(bytes);
  ASSERT_NE(p, nullptr);
  pool.deallocate(p, bytes);
  pool.deallocate(p, bytes);  // deliberate double release

  DiagnosticEngine& engine = session.finish();
  ASSERT_EQ(engine.size(), 1u) << engine.to_ascii();
  const Diagnostic& d = engine.diagnostics().front();
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.pass, Pass::kAlias);
  EXPECT_EQ(d.location, "pool");
  EXPECT_NE(d.message.find("released twice"), std::string::npos)
      << d.message;
  EXPECT_NE(d.message.find(std::to_string(bytes)), std::string::npos)
      << "diagnostic should name the size class: " << d.message;

  // The drop kept the free list consistent: the block is still cached
  // exactly once, so the next same-class allocation reuses it and the one
  // after that is a fresh miss, not the same pointer again.
  bool hit = false;
  void* q = pool.allocate(bytes, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(q, p);
  void* r = pool.allocate(bytes);
  EXPECT_NE(r, q) << "double release put the block on the free list twice";
  pool.deallocate(q, bytes);
  pool.deallocate(r, bytes);
}

TEST(CheckPipeline, MpiStyleClassSIsClean) {
  const MgSpec spec = MgSpec::for_class(mg::MgClass::S);
  Session session;
  const mg::MgMpi::Result r = mg::MgMpi(spec, /*ranks=*/2).run(spec.nit,
                                                               /*warmup=*/false);
  DiagnosticEngine& engine = session.finish();
  EXPECT_TRUE(engine.empty()) << engine.to_ascii();
  EXPECT_GT(r.final_norm, 0.0);
  EXPECT_EQ(r.norms.size(), static_cast<std::size_t>(spec.nit));
}

}  // namespace
}  // namespace sacpp::check
