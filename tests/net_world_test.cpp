// msg::World bound to the TCP transport (docs/net.md): the same collectives
// and the same MG program as the in-process world, with OS-process semantics
// — each World holds ONE local rank and its wire traffic really crosses a
// socket.  These tests play all ranks inside this process (one transport +
// one World per thread) so the cross-world comparisons stay hermetic; the
// true multi-process path is exercised by the example_mg_cluster_* ctests.
//
// The acceptance bar is bit-exactness for collectives (reduce fills its
// slots in rank order with the identical accumulation formula on both
// worlds) and 1e-12 relative agreement for full class-S MG norms.

#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sacpp/mg/mg_mpi.hpp"
#include "sacpp/msg/msg.hpp"
#include "sacpp/net/tcp_transport.hpp"
#include "sacpp/obs/export.hpp"

namespace sacpp {
namespace {

struct Listeners {
  std::vector<int> fds;
  std::vector<std::string> hosts;

  explicit Listeners(int ranks) {
    for (int r = 0; r < ranks; ++r) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      EXPECT_GE(fd, 0);
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = 0;
      EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
                0);
      EXPECT_EQ(::listen(fd, 16), 0);
      socklen_t len = sizeof addr;
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
      fds.push_back(fd);
      hosts.push_back("127.0.0.1:" + std::to_string(ntohs(addr.sin_port)));
    }
  }

  net::TcpOptions options(int rank) const {
    net::TcpOptions opt;
    opt.rank = rank;
    opt.hosts = hosts;
    opt.listen_fd = fds[static_cast<std::size_t>(rank)];
    return opt;
  }
};

// Run `fn(comm)` on every rank of a socket-backed world: one transport and
// one single-local-rank World per thread.
template <typename Fn>
void run_socket_world(int ranks, Fn fn) {
  Listeners listeners(ranks);
  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&listeners, r, &fn] {
      net::TcpTransport transport(listeners.options(r));
      msg::World world(transport);
      world.run([&](msg::Comm& comm) { fn(comm); });
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(NetWorld, WorldAdoptsTransportIdentity) {
  run_socket_world(2, [](msg::Comm& comm) {
    EXPECT_EQ(comm.size(), 2);
    std::vector<double> v(1);
    if (comm.rank() == 0) {
      v[0] = 17.0;
      comm.send(1, 1, v);
    } else {
      comm.recv(0, 1, v);
      EXPECT_EQ(v[0], 17.0);
    }
  });
}

TEST(NetWorld, SelfSendsStayLocal) {
  // Rank-local traffic (mg_mpi's 1-rank periodic halos are self-sends)
  // never touches the wire: it goes through the World's own mailbox.
  run_socket_world(2, [](msg::Comm& comm) {
    std::vector<double> out = {1.0, 2.0}, in(2);
    comm.send(comm.rank(), 5, out);
    comm.recv(comm.rank(), 5, in);
    EXPECT_EQ(in, out);
    comm.barrier();
  });
}

TEST(NetWorld, AllreduceMatchesInProcessBitwise) {
  // Values chosen so a different accumulation order changes the bits: the
  // transport reduce must fill rank-ordered slots and fold them with the
  // exact in-process formula.
  constexpr int kRanks = 4;
  auto contribution = [](int rank) {
    return 0.1 * static_cast<double>(rank + 1) + 1e-13 * rank;
  };

  std::vector<double> expected_sum(1), expected_max(1);
  msg::World reference(kRanks);
  reference.run([&](msg::Comm& comm) {
    const double sum = comm.allreduce_sum(contribution(comm.rank()));
    const double mx = comm.allreduce_max(-contribution(comm.rank()));
    if (comm.rank() == 0) {
      expected_sum[0] = sum;
      expected_max[0] = mx;
    }
  });

  run_socket_world(kRanks, [&](msg::Comm& comm) {
    const double sum = comm.allreduce_sum(contribution(comm.rank()));
    const double mx = comm.allreduce_max(-contribution(comm.rank()));
    EXPECT_EQ(sum, expected_sum[0]) << "sum must be bit-identical";
    EXPECT_EQ(mx, expected_max[0]) << "max must be bit-identical";
  });
}

TEST(NetWorld, BarrierSynchronisesAcrossTransports) {
  constexpr int kRanks = 3;
  std::atomic<int> phase{0};
  run_socket_world(kRanks, [&](msg::Comm& comm) {
    phase.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(phase.load(), kRanks)
        << "no rank may pass the barrier before every rank arrived";
    comm.barrier();
  });
}

TEST(NetWorld, BroadcastAndGatherCrossTheWire) {
  constexpr int kRanks = 2;
  run_socket_world(kRanks, [](msg::Comm& comm) {
    std::vector<double> b(3);
    if (comm.rank() == 0) b = {5.0, 6.0, 7.0};
    comm.broadcast(0, b);
    EXPECT_EQ(b, std::vector<double>({5.0, 6.0, 7.0}));

    std::vector<double> mine = {static_cast<double>(comm.rank())};
    std::vector<double> all(kRanks);
    comm.gather(0, mine, all);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, std::vector<double>({0.0, 1.0}));
    }
    comm.barrier();
  });
}

TEST(NetWorld, MgClassSNormsMatchInProcessWorld) {
  const mg::MgSpec spec = mg::MgSpec::for_class(mg::MgClass::S);
  constexpr int kRanks = 2;
  const mg::MgMpi solver(spec, kRanks);
  const mg::MgMpi::Result reference = solver.run(spec.nit);

  std::vector<double> socket_norms;
  run_socket_world(kRanks, [&](msg::Comm& comm) {
    const mg::MgMpi::Result r = solver.run_rank(comm, spec.nit);
    if (comm.rank() == 0) socket_norms = r.norms;
  });

  ASSERT_EQ(socket_norms.size(), reference.norms.size());
  for (std::size_t i = 0; i < socket_norms.size(); ++i) {
    const double a = reference.norms[i], b = socket_norms[i];
    const double rel = std::abs(a - b) / std::max(std::abs(a), 1e-300);
    EXPECT_LE(rel, 1e-12) << "iteration " << i << ": " << a << " vs " << b;
  }
}

TEST(NetWorld, MgNoOverlapAndOverlapAgreeOverSockets) {
  // The overlapped halo schedule must be arithmetic-neutral on the socket
  // path too (plane updates are independent; docs/net.md#overlap).
  const mg::MgSpec spec = mg::MgSpec::for_class(mg::MgClass::S);
  constexpr int kRanks = 2;
  std::vector<double> with_overlap, without_overlap;
  for (const bool overlap : {true, false}) {
    const mg::MgMpi solver(spec, kRanks, overlap);
    run_socket_world(kRanks, [&](msg::Comm& comm) {
      const mg::MgMpi::Result r = solver.run_rank(comm, spec.nit);
      if (comm.rank() == 0) {
        (overlap ? with_overlap : without_overlap) = r.norms;
      }
    });
  }
  ASSERT_EQ(with_overlap.size(), without_overlap.size());
  for (std::size_t i = 0; i < with_overlap.size(); ++i) {
    EXPECT_EQ(with_overlap[i], without_overlap[i])
        << "overlap changed the bits at iteration " << i;
  }
}

TEST(NetWorld, StatsReportWireTraffic) {
  constexpr int kRanks = 2;
  Listeners listeners(kRanks);
  std::vector<msg::WorldStats> stats(kRanks);
  // World::stats() reports wire traffic SINCE the World was constructed
  // (its base snapshot); hold every thread until all Worlds exist so no
  // frame lands before a peer's baseline and vanishes from its delta.
  std::atomic<int> worlds_ready{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&listeners, &stats, &worlds_ready, r] {
      net::TcpTransport transport(listeners.options(r));
      msg::World world(transport);
      worlds_ready.fetch_add(1);
      while (worlds_ready.load() < kRanks) std::this_thread::yield();
      world.run([&](msg::Comm& comm) {
        std::vector<double> v(64, 1.0);
        comm.send(1 - comm.rank(), 2, v);
        comm.recv(1 - comm.rank(), 2, v);
        comm.barrier();
      });
      stats[static_cast<std::size_t>(r)] = world.stats();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int r = 0; r < kRanks; ++r) {
    const msg::WorldStats& s = stats[static_cast<std::size_t>(r)];
    EXPECT_GE(s.messages, 1u) << "rank " << r;
    EXPECT_GE(s.bytes_sent, 64 * sizeof(double)) << "rank " << r;
    EXPECT_GE(s.bytes_received, 64 * sizeof(double)) << "rank " << r;
  }
}

TEST(NetWorld, PrometheusCarriesMsgAndNetCounters) {
  // The collector bridges are registered by the first World / transport in
  // the process; ctest runs each case in its own process, so make both
  // exist here rather than leaning on sibling tests.
  run_socket_world(2, [](msg::Comm& comm) {
    std::vector<double> v(1, 1.0);
    comm.send(1 - comm.rank(), 3, v);
    comm.recv(1 - comm.rank(), 3, v);
    comm.barrier();
  });
  std::ostringstream out;
  obs::write_prometheus(out);
  const std::string text = out.str();
  for (const char* counter :
       {"sacpp_msg_messages_total", "sacpp_msg_bytes_sent_total",
        "sacpp_msg_bytes_received_total", "sacpp_msg_reconnects_total",
        "sacpp_net_frames_sent_total", "sacpp_net_frames_received_total",
        "sacpp_net_bytes_sent_total", "sacpp_net_blocked_sends_total"}) {
    EXPECT_NE(text.find(counter), std::string::npos)
        << counter << " missing from the export:\n"
        << text.substr(0, 2000);
  }
}

}  // namespace
}  // namespace sacpp
