// The high-level SAC MG implementation: border setup, grid-transfer shapes
// and values, rank genericity (the paper's double[+] claim), and V-cycle
// structure.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "sacpp/mg/mg_sac.hpp"
#include "sacpp/mg/problem.hpp"

namespace sacpp::mg {
namespace {

using sac::Array;

Array<double> random_extended(const Shape& shp, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  return sac::with_genarray<double>(shp,
                                    [&](const IndexVec&) { return dist(rng); });
}

TEST(Border, GhostsEqualOppositeInterior) {
  const Shape shp{6, 6, 6};
  auto a = MgSac::setup_periodic_border(random_extended(shp, 1));
  for_each_index(shp, [&](const IndexVec& iv) {
    // map each ghost coordinate to its interior source
    IndexVec src(iv.begin(), iv.end());
    for (std::size_t d = 0; d < 3; ++d) {
      if (src[d] == 0) src[d] = 4;
      if (src[d] == 5) src[d] = 1;
    }
    ASSERT_DOUBLE_EQ(a[iv], a[src]);
  });
}

TEST(Border, MatchesLowLevelComm3) {
  const extent_t n = 6;
  const Shape shp{n, n, n};
  auto a = random_extended(shp, 2);
  // low-level reference
  std::vector<double> flat(a.data(), a.data() + a.elem_count());
  periodic_border_3d(flat, n);
  auto b = MgSac::setup_periodic_border(a);
  for (extent_t i = 0; i < b.elem_count(); ++i) {
    ASSERT_DOUBLE_EQ(b.at_linear(i), flat[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(Border, InPlaceWhenUnique) {
  auto a = random_extended(Shape{6, 6, 6}, 3);
  const double* p = a.data();
  auto b = MgSac::setup_periodic_border(std::move(a));
  EXPECT_EQ(b.data(), p);
}

TEST(Border, CopiesWhenShared) {
  auto a = random_extended(Shape{6, 6, 6}, 4);
  const double* p = a.data();
  auto b = MgSac::setup_periodic_border(a);
  EXPECT_NE(b.data(), p);
  EXPECT_EQ(a.data(), p);  // original untouched
}

TEST(Border, WorksForRank1And2) {
  auto v = MgSac::setup_periodic_border(sac::with_genarray<double>(
      Shape{6}, [](const IndexVec& iv) { return static_cast<double>(iv[0]); }));
  EXPECT_DOUBLE_EQ((v[IndexVec{0}]), 4.0);
  EXPECT_DOUBLE_EQ((v[IndexVec{5}]), 1.0);

  auto m = MgSac::setup_periodic_border(random_extended(Shape{4, 4}, 5));
  EXPECT_DOUBLE_EQ((m[IndexVec{0, 0}]), (m[IndexVec{2, 2}]));  // corner
}

class MgSacOps : public ::testing::Test {
 protected:
  MgSpec spec_ = MgSpec::custom(8, 1);
  MgSac mg_{spec_};
};

TEST_F(MgSacOps, ResidOfZeroIsZero) {
  auto u = sac::genarray_const(cube_shape(3, 10), 0.0);
  auto r = mg_.resid(u);
  EXPECT_DOUBLE_EQ(sac::max_abs(r), 0.0);
}

TEST_F(MgSacOps, Fine2CoarseHalvesTheGrid) {
  auto r = random_extended(cube_shape(3, 10), 6);  // 8^3 interior
  auto rn = mg_.fine2coarse(r);
  EXPECT_EQ(rn.shape(), cube_shape(3, 6));  // 4^3 interior + ghosts
}

TEST_F(MgSacOps, Coarse2FineDoublesTheGrid) {
  auto rn = random_extended(cube_shape(3, 6), 7);
  auto z = mg_.coarse2fine(rn);
  EXPECT_EQ(z.shape(), cube_shape(3, 10));
}

TEST_F(MgSacOps, TransferRoundTripPreservesConstantFields) {
  // Restriction of a constant periodic field is constant (sum of P weights
  // is 1: 1/2 + 6/4/6... the 27 weighted coefficients sum to
  // p0 + 6 p1 + 12 p2 + 8 p3 = 0.5 + 1.5 + 1.5 + 0.5 = 4... here we verify
  // the coarse interior is uniform, which only holds if the stencil and the
  // grid transfer respect periodicity.
  auto c = sac::genarray_const(cube_shape(3, 10), 3.0);
  auto rn = mg_.fine2coarse(c);
  const double v0 = rn(1, 1, 1);
  for (extent_t i = 1; i < 5; ++i) {
    for (extent_t j = 1; j < 5; ++j) {
      for (extent_t k = 1; k < 5; ++k) {
        ASSERT_NEAR(rn(i, j, k), v0, 1e-13);
      }
    }
  }
}

TEST_F(MgSacOps, FusedAndUnfusedOperationsAgree) {
  auto r = random_extended(cube_shape(3, 10), 8);
  sac::SacConfig cfg = sac::config();

  cfg.folding = false;
  Array<double> vc_unfused;
  {
    sac::ScopedConfig guard(cfg);
    vc_unfused = mg_.vcycle(r);
  }
  cfg.folding = true;
  Array<double> vc_fused;
  {
    sac::ScopedConfig guard(cfg);
    vc_fused = mg_.vcycle(r);
  }
  ASSERT_EQ(vc_fused.shape(), vc_unfused.shape());
  for (extent_t i = 0; i < vc_fused.elem_count(); ++i) {
    ASSERT_NEAR(vc_fused.at_linear(i), vc_unfused.at_linear(i), 1e-13) << i;
  }
}

TEST_F(MgSacOps, VCycleTerminationAtCoarsestGrid) {
  // On the 2+2 grid VCycle must be a single smoothing step.
  auto r = random_extended(cube_shape(3, 4), 9);
  auto direct = mg_.smooth(r);
  auto vc = mg_.vcycle(r);
  for (extent_t i = 0; i < vc.elem_count(); ++i) {
    ASSERT_DOUBLE_EQ(vc.at_linear(i), direct.at_linear(i)) << i;
  }
}

TEST_F(MgSacOps, ResidualEqualsVMinusResid) {
  auto u = random_extended(cube_shape(3, 10), 10);
  auto v = random_extended(cube_shape(3, 10), 11);
  auto direct = v - mg_.resid(u);
  auto fused = mg_.residual(v, u);
  for (extent_t i = 0; i < fused.elem_count(); ++i) {
    ASSERT_NEAR(fused.at_linear(i), direct.at_linear(i), 1e-14) << i;
  }
}

// The paper's genericity claim: the identical MGrid code runs on 1-D and
// 2-D problems without alteration.
class RankGeneric : public ::testing::TestWithParam<int> {};

TEST_P(RankGeneric, MGridReducesResidualInAnyRank) {
  const int rank = GetParam();
  const MgSpec spec = MgSpec::custom(16, 1);
  MgSac mg(spec);
  const Shape shp = cube_shape(static_cast<std::size_t>(rank), 18);
  // a +-1 charge pair as RHS
  auto v = sac::with_genarray<double>(shp, [&](const IndexVec& iv) -> double {
    if (iv[0] == 3) return 1.0;
    if (iv[0] == 9) return -1.0;
    return 0.0;
  });
  v = MgSac::setup_periodic_border(std::move(v));

  auto u0 = sac::genarray_const(shp, 0.0);
  const double norm0 = mg.residual_norm(v, u0);
  auto u2 = mg.mgrid(v, 2);
  const double norm2 = mg.residual_norm(v, u2);
  EXPECT_LT(norm2, norm0 * 0.25)
      << "V-cycle failed to reduce the residual in rank " << rank;
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankGeneric, ::testing::Values(1, 2, 3));

TEST(MgSacValidation, NonPowerOfTwoGridRejected) {
  MgSac mg(MgSpec::custom(8, 1));
  auto v = sac::genarray_const(Shape{9, 9, 9}, 0.0);
  EXPECT_THROW(mg.mgrid(v, 1), ContractError);
}

TEST(MgSacValidation, CustomSpecRejectsBadSizes) {
  EXPECT_THROW(MgSpec::custom(10, 1), ContractError);
  EXPECT_THROW(MgSpec::custom(0, 1), ContractError);
  EXPECT_THROW(MgSpec::custom(8, -1), ContractError);
}

}  // namespace
}  // namespace sacpp::mg
