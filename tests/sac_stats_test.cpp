// RuntimeStats counter semantics: the pool counters are touched from worker
// threads (Buffer construction inside instrumented regions), so they are
// relaxed atomics behind a plain-uint64 facade.  The concurrent test is the
// TSan regression for that contract; the facade tests pin the drop-in
// compatibility (copy, assignment, arithmetic) existing call sites rely on.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sacpp/sac/config.hpp"
#include "sacpp/sac/stats.hpp"

namespace sacpp::sac {
namespace {

TEST(RelaxedCounterTest, ActsLikeAPlainCounter) {
  RelaxedCounter c;
  EXPECT_EQ(c, 0u);
  c += 5;
  c += 3;
  EXPECT_EQ(c.load(), 8u);
  EXPECT_EQ(static_cast<std::uint64_t>(c), 8u);

  RelaxedCounter copy = c;  // copyable (RuntimeStats assignment)
  EXPECT_EQ(copy.load(), 8u);
  copy += 1;
  EXPECT_EQ(copy.load(), 9u);
  EXPECT_EQ(c.load(), 8u);  // value copy, not aliasing

  c = RelaxedCounter{};
  EXPECT_EQ(c.load(), 0u);
}

TEST(RelaxedCounterTest, StatsStructCopiesAndResets) {
  reset_stats();
  stats().pool_hits += 2;
  stats().pool_misses += 3;
  stats().pool_returns += 4;
  const RuntimeStats snapshot = stats();  // copy of atomics via facade
  EXPECT_EQ(snapshot.pool_hits + snapshot.pool_misses, 5u);
  EXPECT_EQ(snapshot.pool_returns, 4u);
  reset_stats();
  EXPECT_EQ(stats().pool_hits, 0u);
  EXPECT_EQ(stats().pool_misses, 0u);
  EXPECT_EQ(stats().pool_returns, 0u);
}

// Concurrent increments from many threads must be exact (no lost updates)
// and data-race-free under TSan — the scenario the old plain uint64 counters
// could not survive once pool traffic moved onto worker threads.
TEST(RelaxedCounterTest, ConcurrentIncrementsAreExact) {
  reset_stats();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIncrements; ++i) {
        stats().pool_hits += 1;
        stats().pool_misses += 1;
        stats().pool_returns += 1;
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::uint64_t expect =
      static_cast<std::uint64_t>(kThreads) * kIncrements;
  EXPECT_EQ(stats().pool_hits.load(), expect);
  EXPECT_EQ(stats().pool_misses.load(), expect);
  EXPECT_EQ(stats().pool_returns.load(), expect);
  reset_stats();
}

}  // namespace
}  // namespace sacpp::sac
