// Lock-order analysis tests: the registry's happens-before graph, cycle
// detection on a seeded ABBA inversion (the acceptance case: the analyzer
// must flag the inversion without any deadlock firing), clean nesting, the
// Graphviz dump, and the obs gauges.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sacpp/check/lockorder.hpp"
#include "sacpp/common/lockorder.hpp"
#include "sacpp/obs/export.hpp"

using namespace sacpp;
using namespace sacpp::check;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CheckLockOrder, RegistryDeduplicatesLockClassesByName) {
  // Instances sharing a constructor name share one graph node: the depot
  // shards are all one class.
  TrackedMutex a("test.dedup");
  TrackedMutex b("test.dedup");
  TrackedMutex c("test.dedup.other");
  EXPECT_EQ(a.id(), b.id());
  EXPECT_NE(a.id(), c.id());
  EXPECT_EQ(LockRegistry::instance().lock_name(a.id()), "test.dedup");
}

TEST(CheckLockOrder, NoEdgesRecordedWhileTracingDisabled) {
  LockRegistry& reg = LockRegistry::instance();
  reg.set_enabled(false);
  reg.reset_edges();
  TrackedMutex outer("test.off.outer");
  TrackedMutex inner("test.off.inner");
  {
    std::lock_guard<TrackedMutex> g1(outer);
    std::lock_guard<TrackedMutex> g2(inner);
  }
  EXPECT_EQ(reg.edge_count(), 0u);
}

TEST(CheckLockOrder, CleanNestingYieldsNoDiagnostics) {
  TrackedMutex outer("test.clean.outer");
  TrackedMutex inner("test.clean.inner");
  LockOrderSession session;
  for (int i = 0; i < 3; ++i) {
    std::lock_guard<TrackedMutex> g1(outer);
    std::lock_guard<TrackedMutex> g2(inner);
  }
  DiagnosticEngine& engine = session.finish();
  EXPECT_TRUE(engine.empty()) << engine.to_ascii();
  // The edge itself was recorded — the graph is not empty, just acyclic.
  EXPECT_GE(LockRegistry::instance().edge_count(), 1u);
}

TEST(CheckLockOrder, DetectsSeededAbbaInversion) {
  // The canonical deadlock seed: one thread locks A then B, another locks B
  // then A.  Neither run wedges here (the threads are joined sequentially),
  // which is exactly the point — the cycle is found from the recorded
  // orders, not from an actual deadlock.
  TrackedMutex a("test.abba.a");
  TrackedMutex b("test.abba.b");
  LockOrderSession session;
  std::thread t1([&] {
    std::lock_guard<TrackedMutex> g1(a);
    std::lock_guard<TrackedMutex> g2(b);
  });
  t1.join();
  std::thread t2([&] {
    std::lock_guard<TrackedMutex> g1(b);
    std::lock_guard<TrackedMutex> g2(a);
  });
  t2.join();

  DiagnosticEngine& engine = session.finish();
  ASSERT_EQ(engine.count(Severity::kError), 1u) << engine.to_ascii();
  const Diagnostic& d = engine.diagnostics()[0];
  EXPECT_EQ(d.pass, Pass::kLockOrder);
  EXPECT_NE(d.message.find("lock-order cycle"), std::string::npos);
  // The diagnostic names the full inversion path.
  EXPECT_NE(d.message.find("test.abba.a"), std::string::npos)
      << d.to_string();
  EXPECT_NE(d.message.find("test.abba.b"), std::string::npos)
      << d.to_string();
}

TEST(CheckLockOrder, SameClassNestingIsReentryNotACycle) {
  // Instances of one class share a graph node, so nesting two of them
  // (depot shard A inside depot shard B) is re-entry on that node and
  // records no edge: the graph orders classes, and classes that nest
  // internally must impose their own instance order.
  TrackedMutex first("test.selfedge");
  TrackedMutex second("test.selfedge");
  LockOrderSession session;
  {
    std::lock_guard<TrackedMutex> g1(first);
    std::lock_guard<TrackedMutex> g2(second);
  }
  EXPECT_EQ(LockRegistry::instance().edge_count(), 0u);
  DiagnosticEngine& engine = session.finish();
  EXPECT_TRUE(engine.empty()) << engine.to_ascii();
}

TEST(CheckLockOrder, SessionResetsEdgesBetweenWindows) {
  TrackedMutex a("test.window.a");
  TrackedMutex b("test.window.b");
  {
    LockOrderSession inverted;
    std::lock_guard<TrackedMutex> g1(a);
    std::lock_guard<TrackedMutex> g2(b);
  }
  {
    std::lock_guard<TrackedMutex> g1(b);  // would complete the cycle...
    std::lock_guard<TrackedMutex> g2(a);
    // ...but the first window is over: no session is tracing here.
  }
  LockOrderSession fresh;
  {
    std::lock_guard<TrackedMutex> g1(b);
    std::lock_guard<TrackedMutex> g2(a);
  }
  // Only the second window's (acyclic) order is on the books.
  DiagnosticEngine& engine = fresh.finish();
  EXPECT_TRUE(engine.empty()) << engine.to_ascii();
}

TEST(CheckLockOrder, DotDumpNamesTheRecordedGraph) {
  TrackedMutex outer("test.dot.outer");
  TrackedMutex inner("test.dot.inner");
  LockOrderSession session;
  {
    std::lock_guard<TrackedMutex> g1(outer);
    std::lock_guard<TrackedMutex> g2(inner);
  }
  const std::string dot = LockRegistry::instance().to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("test.dot.outer"), std::string::npos);
  EXPECT_NE(dot.find("test.dot.inner"), std::string::npos);

  const std::string path = "check_lockorder_test_graph.dot";
  ASSERT_TRUE(write_lock_graph(path));
  EXPECT_EQ(read_file(path), dot);
  std::remove(path.c_str());
  // The empty path is the documented no-op.
  EXPECT_TRUE(write_lock_graph(""));
  session.finish();
}

TEST(CheckLockOrder, ObsGaugesExportGraphSize) {
  TrackedMutex outer("test.gauge.outer");
  TrackedMutex inner("test.gauge.inner");
  LockOrderSession session;  // registers the collector (idempotent)
  {
    std::lock_guard<TrackedMutex> g1(outer);
    std::lock_guard<TrackedMutex> g2(inner);
  }
  std::ostringstream out;
  obs::write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("sacpp_check_lock_classes"), std::string::npos);
  EXPECT_NE(text.find("sacpp_check_lock_edges"), std::string::npos);
  EXPECT_NE(text.find("sacpp_check_lock_cycles"), std::string::npos);
  session.finish();
}

}  // namespace
