// Quickstart: the SAC-style array system in five minutes.
//
//   $ quickstart
//
// Walks through arrays as values, WITH-loops, the array library, lazy
// fusion, and runs the NAS MG benchmark (class S) through all three
// implementations.

#include <cstdio>

#include "sacpp/mg/driver.hpp"
#include "sacpp/sac/sac.hpp"

using namespace sacpp;
using sac::Array;

int main() {
  std::printf("== 1. Arrays are values ==\n");
  // O(1) copies, implicit memory management, copy-on-write mutation.
  Array<double> a(Shape{2, 3}, 1.5);
  Array<double> b = a;  // shares the buffer
  std::printf("a%s shares its buffer with b: %s\n",
              a.shape().to_string().c_str(),
              a.data() == b.data() ? "yes" : "no");

  std::printf("\n== 2. WITH-loops: one construct for everything ==\n");
  // genarray: build an array from an index function.
  auto table = sac::with_genarray<double>(Shape{4, 4}, [](const IndexVec& iv) {
    return static_cast<double>((iv[0] + 1) * (iv[1] + 1));
  });
  std::printf("multiplication table row 3: ");
  for (extent_t j = 0; j < 4; ++j) {
    std::printf("%.0f ", table[IndexVec{3, j}]);
  }
  std::printf("\n");

  // fold: reductions.
  const double total = sac::sum(table);
  std::printf("sum of the table: %.0f\n", total);

  // strided generator: every other element.
  auto stripes = sac::with_genarray<int>(
      Shape{8}, sac::gen_range({0}, {8}).with_step(2),
      [](const IndexVec&) { return 1; }, 0);
  std::printf("stripes: ");
  for (extent_t i = 0; i < 8; ++i) std::printf("%d", stripes[IndexVec{i}]);
  std::printf("\n");

  std::printf("\n== 3. The array library is written IN the library ==\n");
  // Everything below is defined with WITH-loops (src/sac/array_lib.hpp),
  // exactly like the paper's Fig. 10 — nothing is a built-in.
  auto v = sac::iota<double>(6);                    // 0 1 2 3 4 5
  auto w = sac::rotate({2}, v);                     // 4 5 0 1 2 3
  auto s = sac::scatter(2, v);                      // 0 _ 1 _ 2 _ ...
  auto c = sac::condense(2, s);                     // back to v
  std::printf("rotate({2}, iota(6))[0] = %.0f\n", w[IndexVec{0}]);
  std::printf("condense(2, scatter(2, v)) == v: %s\n",
              sac::sum(sac::abs(c - v)) == 0.0 ? "yes" : "no");

  std::printf("\n== 4. Lazy fusion (with-loop folding) ==\n");
  auto x = sac::iota<double>(1 << 16);
  sac::reset_stats();
  auto fused =
      sac::force(sac::lazy_condense(4, sac::ewise(x, x, std::plus<>{})));
  std::printf("condense(4, x + x) fused: %llu allocation(s), %lld elements\n",
              static_cast<unsigned long long>(sac::stats().allocations),
              static_cast<long long>(fused.elem_count()));

  std::printf("\n== 5. NAS MG, class S, three implementations ==\n");
  const mg::MgSpec spec = mg::MgSpec::for_class(mg::MgClass::S);
  for (auto variant : {mg::Variant::kSac, mg::Variant::kFortran,
                       mg::Variant::kOpenMp}) {
    const mg::MgResult res = mg::run_benchmark(variant, spec);
    std::printf("  %-11s %.3fs  final residual norm %.12e\n",
                mg::variant_name(variant), res.seconds, res.final_norm);
  }
  std::printf("(the three norms agree to 1e-12 — see tests/mg_cross_test)\n");
  return 0;
}
