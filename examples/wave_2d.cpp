// 2-D wave equation on a periodic domain — leapfrog time stepping with the
// ghost-free periodic stencil, checkpoint/restore through the binary array
// format, and ASCII rendering.
//
//   $ wave_2d [--size 96] [--steps 240] [--courant 0.4]
//
// The update  u' = 2 u - u_prev + c^2 (L u)  uses the coefficient-class
// Laplacian (centre -4, faces 1) with periodicity inside the kernel — the
// paper's Sec. 7 "direct" style on a non-MG problem.  Half way through,
// the state is checkpointed with sac::save and reloaded, and the run
// asserts the restored trajectory is bitwise identical.

#include <cmath>
#include <cstdio>
#include <string>

#include "sacpp/common/cli.hpp"
#include "sacpp/sac/periodic_stencil.hpp"
#include "sacpp/sac/sac.hpp"

using namespace sacpp;
using sac::Array;

namespace {

// 5-point periodic Laplacian as a coefficient-class stencil (rank 2:
// classes are centre/edge/corner; corners get weight 0).
const sac::StencilCoeffs kLaplace{{-4.0, 1.0, 0.0, 0.0}};

Array<double> step(const Array<double>& u, const Array<double>& u_prev,
                   double c2) {
  // u' = 2u - u_prev + c2 * L u, fused into one traversal
  auto lap = sac::PeriodicStencilExpr(u, kLaplace);
  return sac::force(sac::ewise(
      sac::ewise(u, u_prev,
                 [](double a, double b) { return 2.0 * a - b; }),
      std::move(lap), [c2](double lhs, double l) { return lhs + c2 * l; }));
}

void render(const Array<double>& u, extent_t cells) {
  const extent_t n = u.shape().extent(0);
  const char shades[] = " .:-=+*#%@";
  for (extent_t r = 0; r < cells; ++r) {
    for (extent_t c = 0; c < cells; ++c) {
      const double v = u[IndexVec{r * n / cells, c * n / cells}];
      const int s =
          std::min(9, std::max(0, static_cast<int>((v + 1.0) * 5.0)));
      std::putchar(shades[s]);
    }
    std::putchar('\n');
  }
}

double energy(const Array<double>& u, const Array<double>& u_prev) {
  // kinetic + potential proxy: sum((u - u_prev)^2) + sum(|grad u|^2)/2
  auto vel = u - u_prev;
  const double kinetic = sac::dot(vel, vel);
  auto lap = sac::relax_kernel_periodic(u, kLaplace);
  return kinetic - 0.5 * sac::dot(u, lap);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("size", "96", "grid points per side (power of two)");
  cli.add_option("steps", "240", "leapfrog steps");
  cli.add_option("courant", "0.4", "Courant number c*dt/dx (stable < 0.5)");
  cli.add_option("checkpoint", "/tmp/wave_checkpoint",
                 "checkpoint file prefix");
  if (!cli.parse(argc, argv)) return 1;

  const extent_t n = cli.get_int("size");
  const int steps = static_cast<int>(cli.get_int("steps"));
  const double c2 = cli.get_double("courant") * cli.get_double("courant");
  const Shape shp{n, n};

  // initial condition: a Gaussian bump, at rest
  Array<double> u = sac::with_genarray<double>(shp, [&](const IndexVec& iv) {
    const double dy = static_cast<double>(iv[0]) - 0.5 * static_cast<double>(n);
    const double dx = static_cast<double>(iv[1]) - 0.5 * static_cast<double>(n);
    return std::exp(-(dx * dx + dy * dy) / (0.01 * static_cast<double>(n * n)));
  });
  Array<double> u_prev = u;

  std::printf("2-D periodic wave equation, %lldx%lld, %d steps\n\n",
              static_cast<long long>(n), static_cast<long long>(n), steps);
  std::printf("t = 0:\n");
  render(u, 24);
  const double e0 = energy(u, u_prev);

  const std::string ck = cli.get("checkpoint");
  const int half = steps / 2;
  for (int t = 0; t < half; ++t) {
    Array<double> next = step(u, u_prev, c2);
    u_prev = std::move(u);
    u = std::move(next);
  }

  // checkpoint, keep going, then restore and replay to verify determinism
  sac::save(ck + "_u.arr", u);
  sac::save(ck + "_prev.arr", u_prev);
  Array<double> u_cont = u, prev_cont = u_prev;
  for (int t = half; t < steps; ++t) {
    Array<double> next = step(u_cont, prev_cont, c2);
    prev_cont = std::move(u_cont);
    u_cont = std::move(next);
  }
  Array<double> u_re = sac::load(ck + "_u.arr");
  Array<double> prev_re = sac::load(ck + "_prev.arr");
  for (int t = half; t < steps; ++t) {
    Array<double> next = step(u_re, prev_re, c2);
    prev_re = std::move(u_re);
    u_re = std::move(next);
  }
  double max_dev = 0.0;
  for (extent_t i = 0; i < u_cont.elem_count(); ++i) {
    max_dev = std::max(max_dev,
                       std::abs(u_cont.at_linear(i) - u_re.at_linear(i)));
  }

  std::printf("\nt = %d:\n", steps);
  render(u_cont, 24);
  // crude diagnostic: the bump disperses but the (unstaggered) energy
  // proxy must stay bounded — an exploding scheme would blow it up
  const double drift = std::abs(energy(u_cont, prev_cont) - e0) / e0;
  std::printf("\nenergy-proxy change: %.3f (stable run: O(1); unstable: "
              "explodes)\n",
              drift);
  std::printf("checkpoint replay deviation: %.1e (must be 0)\n", max_dev);
  std::remove((ck + "_u.arr").c_str());
  std::remove((ck + "_prev.arr").c_str());
  return max_dev == 0.0 ? 0 : 1;
}
