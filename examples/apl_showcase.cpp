// APL-style generic array programming: small classics built from the array
// library's shape-generic building blocks (the paper's Sec. 1-2 programming
// style), each in a couple of lines.
//
//   $ apl_showcase

#include <cstdio>

#include "sacpp/sac/sac.hpp"

using namespace sacpp;
using sac::Array;

namespace {

void print_vec(const char* label, const Array<double>& v) {
  std::printf("%-28s", label);
  for (extent_t i = 0; i < v.elem_count(); ++i) {
    std::printf("%6.1f", v.at_linear(i));
  }
  std::printf("\n");
}

// Moving average of width w: mean of w rotated copies — a rank-generic
// one-liner in the APL spirit.
Array<double> moving_average(const Array<double>& v, extent_t w) {
  Array<double> acc = v;
  for (extent_t k = 1; k < w; ++k) acc = acc + sac::rotate({-k}, v);
  return acc / static_cast<double>(w);
}

// Outer product via with-loop.
Array<double> outer(const Array<double>& a, const Array<double>& b) {
  return sac::with_genarray<double>(
      Shape{a.elem_count(), b.elem_count()}, [&](const IndexVec& iv) {
        return a.at_linear(iv[0]) * b.at_linear(iv[1]);
      });
}

// Matrix multiply from with-loops and folds only.
Array<double> matmul(const Array<double>& a, const Array<double>& b) {
  const extent_t m = a.shape()[0], kk = a.shape()[1], n = b.shape()[1];
  return sac::with_genarray<double>(Shape{m, n}, [&](const IndexVec& iv) {
    return sac::with_fold(
        std::plus<>{}, 0.0, Shape{kk}, sac::gen_all(),
        [&](const IndexVec& t) {
          return a[IndexVec{iv[0], t[0]}] * b[IndexVec{t[0], iv[1]}];
        });
  });
}

// Conway's Game of Life: one generation with rotate-based neighbour counts
// on a torus — periodic boundaries exactly like MG's.
Array<double> life_step(const Array<double>& world) {
  Array<double> n = sac::genarray_const(world.shape(), 0.0);
  for (extent_t di = -1; di <= 1; ++di) {
    for (extent_t dj = -1; dj <= 1; ++dj) {
      if (di == 0 && dj == 0) continue;
      n = n + sac::rotate({di, dj}, world);
    }
  }
  return sac::with_genarray<double>(world.shape(), [&](const IndexVec& iv) {
    const double alive = world[iv], nb = n[iv];
    return (nb == 3.0 || (alive == 1.0 && nb == 2.0)) ? 1.0 : 0.0;
  });
}

void print_world(const Array<double>& w) {
  for (extent_t i = 0; i < w.shape()[0]; ++i) {
    for (extent_t j = 0; j < w.shape()[1]; ++j) {
      std::putchar(w[IndexVec{i, j}] == 1.0 ? '#' : '.');
    }
    std::putchar('\n');
  }
}

}  // namespace

int main() {
  std::printf("== vectors ==\n");
  auto v = sac::iota<double>(8);
  print_vec("iota 8:", v);
  print_vec("rotate 3:", sac::rotate({3}, v));
  print_vec("reverse:", sac::reverse(0, v));
  print_vec("moving average (3):", moving_average(v, 3));
  print_vec("cumulative shift sum:", v + sac::shift({1}, v));

  std::printf("\n== reductions ==\n");
  std::printf("sum %.0f, product of 1..5 %.0f, max %.0f, dot(v,v) %.0f\n",
              sac::sum(v), sac::prod(sac::iota<double>(5) + 1.0),
              sac::max_elem(v), sac::dot(v, v));

  std::printf("\n== outer product and matmul ==\n");
  auto o = outer(sac::iota<double>(3) + 1.0, sac::iota<double>(3) + 1.0);
  std::printf("outer(1 2 3, 1 2 3) diag: %.0f %.0f %.0f\n",
              o[IndexVec{0, 0}], o[IndexVec{1, 1}], o[IndexVec{2, 2}]);
  auto eye = sac::with_genarray<double>(Shape{3, 3}, [](const IndexVec& iv) {
    return iv[0] == iv[1] ? 1.0 : 0.0;
  });
  auto p = matmul(o, eye);
  std::printf("o x I == o: %s\n",
              sac::sum(sac::abs(p - o)) == 0.0 ? "yes" : "no");

  std::printf("\n== Game of Life on a torus (glider, 8 generations) ==\n");
  Array<double> world = sac::with_genarray<double>(
      Shape{10, 10}, [](const IndexVec& iv) {
        const extent_t i = iv[0], j = iv[1];
        const bool glider = (i == 1 && j == 2) || (i == 2 && j == 3) ||
                            (i == 3 && (j >= 1 && j <= 3));
        return glider ? 1.0 : 0.0;
      });
  for (int gen = 0; gen < 8; ++gen) world = life_step(world);
  print_world(world);
  std::printf("population: %.0f (a glider keeps 5 cells forever)\n",
              sac::sum(world));
  return 0;
}
