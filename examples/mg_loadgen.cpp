// mg_loadgen: open-loop load generator for the MG solver service.
//
//   $ mg_loadgen --requests 32 --rate 8 --arrival poisson
//   $ mg_loadgen --arrival burst --burst-size 8 --high-frac 0.25
//   $ mg_loadgen --connect 127.0.0.1:7733 --requests 64
//
// Open-loop means arrivals follow a precomputed schedule (Poisson, uniform,
// or bursts) regardless of completions — the generator keeps offering load
// when the server falls behind, which is exactly what exercises admission
// control, priority eviction, and deadline shedding.  By default it drives
// an in-process SolverService; --connect sends the same wire frames to a
// running mg_server instead.
//
// The exit summary reports offered vs. achieved throughput, per-status
// counts, and e2e latency percentiles split by priority lane.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "sacpp/common/cli.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/net/codec.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/obs/trace.hpp"
#include "sacpp/serve/server.hpp"
#include "sacpp/serve/wire.hpp"

using namespace sacpp;

namespace {

// Arrival offsets (ns from start) for `n` requests at `rate` req/s.
std::vector<std::int64_t> make_schedule(const std::string& arrival,
                                        std::size_t n, double rate,
                                        std::size_t burst_size,
                                        std::uint64_t seed) {
  std::vector<std::int64_t> at(n, 0);
  std::mt19937_64 rng(seed);
  if (arrival == "poisson") {
    std::exponential_distribution<double> gap(rate);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      at[i] = static_cast<std::int64_t>(t * 1e9);
      t += gap(rng);
    }
  } else if (arrival == "burst") {
    // Bursts of `burst_size` back-to-back requests; gaps keep the long-run
    // rate at `rate`.
    const double gap_s = static_cast<double>(burst_size) / rate;
    for (std::size_t i = 0; i < n; ++i) {
      at[i] = static_cast<std::int64_t>(
          static_cast<double>(i / burst_size) * gap_s * 1e9);
    }
  } else {  // uniform
    for (std::size_t i = 0; i < n; ++i) {
      at[i] = static_cast<std::int64_t>(static_cast<double>(i) / rate * 1e9);
    }
  }
  return at;
}

serve::Priority sample_priority(double high_frac, double low_frac,
                                std::mt19937_64& rng) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const double r = uni(rng);
  if (r < high_frac) return serve::Priority::kHigh;
  if (r < high_frac + low_frac) return serve::Priority::kLow;
  return serve::Priority::kNormal;
}

struct Tally {
  std::vector<serve::SolveResult> results;
  double wall_seconds = 0.0;
};

void print_tally(const Tally& tally, double offered_rate) {
  std::size_t per_status[6] = {};
  std::vector<double> e2e_ms[serve::kPriorityLanes];
  std::size_t completed = 0;
  for (const serve::SolveResult& r : tally.results) {
    per_status[static_cast<std::size_t>(r.status)] += 1;
    if (serve::solve_completed(r.status)) {
      completed += 1;
      e2e_ms[0].push_back(static_cast<double>(r.e2e_ns) * 1e-6);
    }
  }
  std::printf("mg_loadgen: offered %.2f req/s, achieved %.2f solves/s "
              "(%zu/%zu completed in %.2fs)\n",
              offered_rate,
              tally.wall_seconds > 0.0
                  ? static_cast<double>(completed) / tally.wall_seconds
                  : 0.0,
              completed, tally.results.size(), tally.wall_seconds);
  Table statuses({"status", "count"});
  for (std::size_t s = 0; s < 6; ++s) {
    if (per_status[s] == 0) continue;
    statuses.add_row(
        {serve::solve_status_name(static_cast<serve::SolveStatus>(s)),
         std::to_string(per_status[s])});
  }
  std::printf("%s", statuses.to_ascii("outcomes").c_str());
  std::vector<double>& lat = e2e_ms[0];
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    const auto pick = [&](double q) {
      const std::size_t idx = std::min(
          lat.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(lat.size())));
      return lat[idx];
    };
    std::printf("mg_loadgen: e2e p50 %.2fms p95 %.2fms p99 %.2fms "
                "max %.2fms\n",
                pick(0.50), pick(0.95), pick(0.99), lat.back());
  }
}

// Connect-mode plumbing (writes and frame reassembly) comes from the shared
// codec in sacpp/net/codec.hpp — the same one mg_server and the socket
// transport use.

// Stitching report over the retained traces: how many validate into one
// well-formed tree, and how much of each completed request's e2e the
// queue + exec spans explain (the bench gate wants >= 95%).
void print_trace_summary() {
  const std::vector<obs::RetainedTrace> traces = obs::retained_traces();
  if (traces.empty()) return;
  std::size_t stitched = 0;
  std::size_t completed = 0;
  double coverage_sum = 0.0;
  std::string first_failure;
  for (const obs::RetainedTrace& t : traces) {
    // Sheds (queue or dispatch) never execute, so they legitimately have no
    // serve_job span; everything else must decompose.
    const bool done =
        t.meta.status != "shed-deadline" && t.meta.status != "shed-capacity";
    std::string why;
    if (obs::validate_trace(t, done, &why)) {
      stitched += 1;
    } else if (first_failure.empty()) {
      first_failure = why;
    }
    if (done && t.meta.e2e_ns > 0) {
      completed += 1;
      coverage_sum +=
          static_cast<double>(t.meta.queue_ns + t.meta.exec_ns) /
          static_cast<double>(t.meta.e2e_ns);
    }
  }
  std::printf("mg_loadgen: retained %zu trace(s), %zu stitched, "
              "mean queue+exec coverage %.1f%% over %zu completed\n",
              traces.size(), stitched,
              completed > 0 ? 100.0 * coverage_sum /
                                  static_cast<double>(completed)
                            : 0.0,
              completed);
  if (!first_failure.empty()) {
    std::printf("mg_loadgen: first stitch failure: %s\n",
                first_failure.c_str());
  }
}

int connect_to(const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) return -1;
  const std::string host = endpoint.substr(0, colon);
  const int port = std::stoi(endpoint.substr(colon + 1));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("requests", "16", "number of requests to offer");
  cli.add_option("rate", "8", "offered arrival rate, requests/second");
  cli.add_option("arrival", "poisson", "arrival process: poisson|uniform|burst");
  cli.add_option("burst-size", "8", "requests per burst (--arrival burst)");
  cli.add_option("class", "S", "benchmark class for every request");
  cli.add_option("variant", "direct", "solver variant (sac|f77|omp|direct)");
  cli.add_option("nit", "0", "iteration override (0 = class default)");
  cli.add_option("gang", "0", "worker threads per job (0 = server policy)");
  cli.add_option("deadline-ms", "0", "per-request deadline (0 = none)");
  cli.add_option("high-frac", "0.1", "fraction of requests at high priority");
  cli.add_option("low-frac", "0.2", "fraction of requests at low priority");
  cli.add_option("seed", "42", "RNG seed for arrivals and priorities");
  cli.add_option("connect", "",
                 "host:port of a running mg_server (default: in-process)");
  cli.add_option("cores", "0", "in-process core budget (0 = hardware)");
  cli.add_option("queue-cap", "64", "in-process admission queue capacity");
  cli.add_option("trace-sample", "0",
                 "fraction of requests minted with a client trace context "
                 "(kTraceForced, so each is retained server-side)");
  cli.add_option("traces-out", "",
                 "write retained traces as JSON at exit (in-process mode; "
                 "with --connect the server holds the trace store)");
  cli.add_option("slo-ms", "0",
                 "p99 budget per lane in ms for the in-process SLO watchdog");
  cli.add_option("flight-out", "",
                 "flight-recorder dump path for the in-process service");
  cli.add_flag("obs", "enable telemetry in the in-process service");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::size_t>(cli.get_int("requests"));
  const double rate = cli.get_double("rate");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double high_frac = cli.get_double("high-frac");
  const double low_frac = cli.get_double("low-frac");
  const double trace_sample = cli.get_double("trace-sample");
  // sac::set_obs, not obs::set_enabled: the first sac::config() access
  // (inside ServeConfig's constructor) applies the SACPP_OBS env default,
  // which would silently undo a bare obs::set_enabled done before it.
  if (cli.get_flag("obs") || trace_sample > 0.0) sac::set_obs(true);

  const std::vector<std::int64_t> schedule =
      make_schedule(cli.get("arrival"), n, rate,
                    static_cast<std::size_t>(cli.get_int("burst-size")),
                    seed);
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<serve::SolveRequest> requests(n);
  for (std::size_t i = 0; i < n; ++i) {
    serve::SolveRequest& req = requests[i];
    req.id = i + 1;
    req.cls = mg::parse_class(cli.get("class"));
    req.variant = mg::parse_variant(cli.get("variant"));
    req.nit = static_cast<std::uint32_t>(cli.get_int("nit"));
    req.gang = static_cast<std::uint32_t>(cli.get_int("gang"));
    req.deadline_ns = cli.get_int("deadline-ms") * 1'000'000;
    req.priority = sample_priority(high_frac, low_frac, rng);
    if (trace_sample > 0.0) {
      std::uniform_real_distribution<double> uni(0.0, 1.0);
      if (uni(rng) < trace_sample) {
        // Client-minted context, forced retention: these are the stitched
        // exemplars the exit decomposition summary and CI validate.
        req.trace_id = obs::mint_trace_id();
        req.trace_flags = obs::kTraceSampled | obs::kTraceForced;
      }
    }
  }

  Tally tally;
  tally.results.reserve(n);
  const auto start = std::chrono::steady_clock::now();
  const auto at = [&](std::size_t i) {
    return start + std::chrono::nanoseconds(schedule[i]);
  };

  const std::string endpoint = cli.get("connect");
  if (endpoint.empty()) {
    serve::ServeConfig cfg;
    cfg.total_cores = static_cast<unsigned>(cli.get_int("cores"));
    cfg.queue_capacity = static_cast<std::size_t>(cli.get_int("queue-cap"));
    // Contexts are minted client-side above (forced), so the service's own
    // head sampler stays off; budgets and the flight recorder pass through.
    const std::int64_t slo_ns = cli.get_int("slo-ms") * 1'000'000;
    if (slo_ns > 0) {
      for (auto& budget : cfg.slo.p99_budget_ns) budget = slo_ns;
    }
    cfg.flight_path = cli.get("flight-out");
    serve::SolverService service(cfg);
    std::vector<std::future<serve::SolveResult>> futures;
    std::vector<std::int64_t> sent_ns(n, 0);
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::this_thread::sleep_until(at(i));  // open loop: never waits on results
      sent_ns[i] = obs::now_ns();
      futures.push_back(service.submit(requests[i]));
    }
    for (std::size_t i = 0; i < n; ++i) {
      serve::SolveResult res = futures[i].get();
      if (res.trace_id != 0) {
        // Attach the client-observed span to the trace the server retained
        // at job end.  Futures drain in submission order, so this measures
        // send -> drained-here (client-perceived latency in an open loop),
        // not the server's e2e.
        obs::SpanRecord span;
        span.start_ns = sent_ns[i];
        span.dur_ns = obs::now_ns() - sent_ns[i];
        span.arg = static_cast<std::int64_t>(res.id);
        span.trace = res.trace_id;
        span.name = obs::kSpanClient;
        span.kind = obs::SpanKind::kPhase;
        obs::add_trace_span(res.trace_id, span, "loadgen-client");
      }
      tally.results.push_back(std::move(res));
    }
    tally.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    print_tally(tally, rate);
    const serve::ServerSnapshot snap = service.snapshot();
    std::printf("mg_loadgen: service peak queue depth %zu, shed %llu, "
                "evicted %llu, rejected %llu, shed-overload %llu\n",
                snap.counters.queue.peak_depth,
                static_cast<unsigned long long>(
                    snap.counters.queue.shed_deadline),
                static_cast<unsigned long long>(snap.counters.queue.evicted),
                static_cast<unsigned long long>(
                    snap.counters.queue.rejected),
                static_cast<unsigned long long>(
                    snap.counters.queue.shed_overload));
    print_trace_summary();
    const std::string traces_out = cli.get("traces-out");
    if (!traces_out.empty()) {
      if (obs::write_traces_file(traces_out)) {
        std::printf("mg_loadgen: %zu retained trace(s) written to %s\n",
                    obs::retained_trace_count(), traces_out.c_str());
      } else {
        std::fprintf(stderr, "mg_loadgen: cannot write traces to %s\n",
                     traces_out.c_str());
      }
    }
  } else {
    const int fd = connect_to(endpoint);
    if (fd < 0) {
      std::fprintf(stderr, "mg_loadgen: cannot connect to %s\n",
                   endpoint.c_str());
      return 1;
    }
    std::vector<serve::SolveResult> results;
    results.reserve(n);
    std::thread reader([fd, n, &results] {
      net::FdFrameReader frames(fd, serve::kMaxFrameBytes);
      std::vector<std::uint8_t> frame;
      std::string stream_error;
      while (results.size() < n) {
        if (!frames.next(&frame, &stream_error)) {
          if (!stream_error.empty()) {
            std::fprintf(stderr, "mg_loadgen: %s\n", stream_error.c_str());
          }
          return;
        }
        serve::SolveResult res;
        std::string error;
        if (!serve::decode_result(frame, &res, &error)) {
          std::fprintf(stderr, "mg_loadgen: %s\n", error.c_str());
          return;
        }
        results.push_back(std::move(res));
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      std::this_thread::sleep_until(at(i));
      if (!net::write_all(fd, serve::encode_request(requests[i]))) {
        std::fprintf(stderr, "mg_loadgen: server went away mid-send\n");
        break;
      }
    }
    reader.join();
    ::close(fd);
    tally.results = std::move(results);
    tally.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    print_tally(tally, rate);
    if (!cli.get("traces-out").empty()) {
      std::fprintf(stderr,
                   "mg_loadgen: --traces-out ignored with --connect; the "
                   "server's trace store has the spans (mg_server "
                   "--traces-out)\n");
    }
  }
  return 0;
}
