// mg_server: the MG solver service behind a TCP socket.
//
//   $ mg_server --port 7733 --cores 4 --queue-cap 64
//   $ mg_server --selftest          # loopback round trip, then exit
//
// Clients speak the sacpp_serve wire protocol (length-prefixed binary
// frames, see sacpp/serve/wire.hpp): each connection streams SolveRequest
// frames and receives one SolveResult frame per request, in request order.
// Requests from all connections funnel into one in-process SolverService,
// which schedules them across the core budget by priority and deadline
// (docs/serve.md).  examples/mg_loadgen.cpp is the matching client.
//
// With --obs the run records spans/histograms and the exit summary includes
// a Prometheus metrics dump with the sacpp_serve_* gauges.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sacpp/check/diagnostics.hpp"
#include "sacpp/common/cli.hpp"
#include "sacpp/net/codec.hpp"
#include "sacpp/obs/export.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/obs/trace.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/serve/selfcheck.hpp"
#include "sacpp/serve/server.hpp"
#include "sacpp/serve/wire.hpp"

using namespace sacpp;

namespace {

std::atomic<bool> g_stop{false};
std::atomic<int> g_listen_fd{-1};

void on_signal(int) {
  g_stop.store(true);
  // Closing the listener breaks the blocking accept() so the main loop can
  // wind down.
  const int fd = g_listen_fd.exchange(-1);
  if (fd >= 0) ::close(fd);
}

// Frame reassembly and blocking writes come from the shared codec
// (sacpp/net/codec.hpp) — the same implementation the socket transport
// uses.  The strict policy means a lying length prefix ends the stream with
// a diagnostic instead of a clamped frame that fails to decode.

// One connection: a reader streaming requests into the service and a writer
// sending results back in request order (responses pipeline behind slower
// requests, but ordering keeps the protocol trivial for clients).
void serve_connection(int fd, serve::SolverService& service) {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::future<serve::SolveResult>> pending;
  bool reader_done = false;

  std::thread writer([&] {
    obs::set_thread_name("serve-writer");
    bool client_alive = true;
    for (;;) {
      std::future<serve::SolveResult> next;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return reader_done || !pending.empty(); });
        if (pending.empty()) return;
        next = std::move(pending.front());
        pending.pop_front();
      }
      // Always drain the future (the job may still be running); only write
      // while the client is reachable.
      serve::SolveResult result = next.get();
      if (client_alive) {
        client_alive = net::write_all(fd, serve::encode_result(result));
      }
    }
  });

  net::FdFrameReader reader(fd, serve::kMaxFrameBytes);
  std::vector<std::uint8_t> frame;
  std::string stream_error;
  while (!g_stop.load() && reader.next(&frame, &stream_error)) {
    serve::SolveRequest request;
    std::string error;
    if (!serve::decode_request(frame, &request, &error)) {
      // One malformed frame poisons the rest of the byte stream, so report
      // it in-band and drop the connection (frames are length-prefixed; we
      // cannot resynchronise reliably).
      std::fprintf(stderr, "mg_server: dropping connection: %s\n",
                   error.c_str());
      serve::SolveResult bad;
      bad.status = serve::SolveStatus::kError;
      bad.error = error;
      std::promise<serve::SolveResult> ready;
      ready.set_value(std::move(bad));
      std::lock_guard<std::mutex> lock(mutex);
      pending.push_back(ready.get_future());
      break;
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      pending.push_back(service.submit(request));
    }
    cv.notify_all();
  }
  if (!stream_error.empty()) {
    // A lying length prefix (or EOF mid-frame) has no trustworthy resync
    // point; answer with an in-band error and drop the connection.
    std::fprintf(stderr, "mg_server: dropping connection: %s\n",
                 stream_error.c_str());
    serve::SolveResult bad;
    bad.status = serve::SolveStatus::kError;
    bad.error = stream_error;
    std::promise<serve::SolveResult> ready;
    ready.set_value(std::move(bad));
    std::lock_guard<std::mutex> lock(mutex);
    pending.push_back(ready.get_future());
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    reader_done = true;
  }
  cv.notify_all();
  writer.join();
  ::close(fd);
}

int make_listener(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

void print_summary(const serve::SolverService& service) {
  const serve::ServerSnapshot snap = service.snapshot();
  std::printf(
      "mg_server: uptime %.1fs  submitted %llu  ok %llu  wrong %llu  "
      "errors %llu  shed(deadline %llu, capacity %llu+%llu)  late %llu\n",
      snap.uptime_seconds,
      static_cast<unsigned long long>(snap.counters.submitted),
      static_cast<unsigned long long>(snap.counters.completed_ok),
      static_cast<unsigned long long>(snap.counters.wrong_answer),
      static_cast<unsigned long long>(snap.counters.errors),
      static_cast<unsigned long long>(snap.counters.queue.shed_deadline),
      static_cast<unsigned long long>(snap.counters.queue.rejected),
      static_cast<unsigned long long>(snap.counters.queue.evicted),
      static_cast<unsigned long long>(snap.counters.deadline_miss));
  if (snap.exec.count > 0) {
    std::printf(
        "mg_server: exec mean %.2fms p50 %.2fms p95 %.2fms p99 %.2fms "
        "(%llu solves)\n",
        snap.exec.mean_ms, snap.exec.p50_ms, snap.exec.p95_ms,
        snap.exec.p99_ms, static_cast<unsigned long long>(snap.exec.count));
  }
}

// Loopback round trip: spawn a client that sends three requests over TCP and
// checks the answers come back verified and in order.
int run_selftest(serve::SolverService& service, int listen_fd, int port) {
  std::thread client([port] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      std::fprintf(stderr, "mg_server selftest: connect failed\n");
      std::exit(1);
    }
    constexpr int kRequests = 3;
    for (int i = 0; i < kRequests; ++i) {
      serve::SolveRequest req;
      req.id = static_cast<std::uint64_t>(100 + i);
      req.priority =
          i == 0 ? serve::Priority::kHigh : serve::Priority::kNormal;
      if (!net::write_all(fd, serve::encode_request(req))) std::exit(1);
    }
    net::FdFrameReader reader(fd, serve::kMaxFrameBytes);
    std::vector<std::uint8_t> frame;
    for (int i = 0; i < kRequests; ++i) {
      if (!reader.next(&frame)) {
        std::fprintf(stderr, "mg_server selftest: connection died\n");
        std::exit(1);
      }
      serve::SolveResult res;
      std::string error;
      if (!serve::decode_result(frame, &res, &error)) {
        std::fprintf(stderr, "mg_server selftest: %s\n", error.c_str());
        std::exit(1);
      }
      if (res.id != static_cast<std::uint64_t>(100 + i) || !res.verified) {
        std::fprintf(stderr,
                     "mg_server selftest: request %d came back id=%llu "
                     "status=%s verified=%d\n",
                     i, static_cast<unsigned long long>(res.id),
                     serve::solve_status_name(res.status), res.verified);
        std::exit(1);
      }
      std::printf("mg_server selftest: id %llu ok (norm %.15e, %.1fms)\n",
                  static_cast<unsigned long long>(res.id), res.final_norm,
                  static_cast<double>(res.e2e_ns) * 1e-6);
    }
    ::close(fd);
  });

  const int conn = ::accept(listen_fd, nullptr, nullptr);
  if (conn < 0) {
    std::fprintf(stderr, "mg_server selftest: accept failed\n");
    return 1;
  }
  serve_connection(conn, service);
  client.join();
  print_summary(service);
  std::printf("mg_server selftest: PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("port", "7733", "TCP port to listen on (0 = ephemeral)");
  cli.add_option("cores", "0", "core budget shared by jobs (0 = hardware)");
  cli.add_option("executors", "0", "executor threads (0 = cores)");
  cli.add_option("queue-cap", "64", "admission queue capacity");
  cli.add_option("max-gang", "0", "largest per-job gang (0 = cores)");
  cli.add_option("deadline-ms", "0",
                 "default deadline for requests without one (0 = none)");
  cli.add_option("max-conns", "0", "exit after N connections (0 = forever)");
  cli.add_option("backend", "",
                 "default row-primitive engine for requests that do not "
                 "pick one: " +
                     sac::backend_names() +
                     " (default: config / SACPP_BACKEND)");
  cli.add_option("trace-sample", "0",
                 "request-trace head-sampling rate 0..1 (>0 mints a trace "
                 "context per request and implies --obs)");
  cli.add_option("traces-out", "",
                 "write retained request traces as JSON at exit");
  cli.add_option("flight-out", "",
                 "flight-recorder dump path (configures crash/deadline/"
                 "drain-timeout black-box dumps)");
  cli.add_option("slo-ms", "0",
                 "p99 end-to-end budget per lane in ms for the SLO "
                 "watchdog (0 = no latency SLO)");
  cli.add_flag("obs", "enable telemetry; dump metrics at exit");
  cli.add_flag("selftest", "loopback round trip over TCP, then exit");
  cli.add_flag("check",
               "--check=<protocol|locks|schedule|all>: run the serve "
               "protocol/concurrency verifier before the selftest");
  cli.add_option("lock-graph-out", "",
                 "write the recorded lock graph as Graphviz "
                 "(--check=locks)");
  if (!cli.parse(argc, argv)) return 1;

  const double trace_sample = cli.get_double("trace-sample");
  // Tracing records spans; it needs the obs layer on.  sac::set_obs, not
  // obs::set_enabled: the first sac::config() access (inside ServeConfig's
  // constructor) applies the SACPP_OBS env default, which would silently
  // undo a bare obs::set_enabled done before it.
  if (cli.get_flag("obs") || trace_sample > 0.0) sac::set_obs(true);

  const std::string backend_arg = cli.get("backend");
  if (!backend_arg.empty() &&
      !sac::parse_backend(backend_arg.c_str(), &sac::config().backend)) {
    std::fprintf(stderr, "mg_server: unknown --backend '%s' (%s)\n",
                 backend_arg.c_str(), sac::backend_names().c_str());
    return 1;
  }

  // Verifier passes run stand-alone (docs/static_analysis.md): each is
  // independently CI-failable with exit status 2.
  const std::string check_arg = cli.get("check");
  if (!check_arg.empty() && check_arg != "0" && !cli.get_flag("check")) {
    serve::CheckPass pass;
    if (!serve::parse_check_pass(check_arg, &pass)) {
      std::fprintf(stderr,
                   "mg_server: unknown --check pass '%s' "
                   "(protocol | locks | schedule | all)\n",
                   check_arg.c_str());
      return 1;
    }
    serve::SelfCheckOptions sopts;
    sopts.lock_graph_path = cli.get("lock-graph-out");
    check::DiagnosticEngine engine;
    const bool ok = serve::run_self_checks(pass, sopts, &engine);
    std::printf("%s", engine.to_ascii(std::string("sacpp_check --check=") +
                                      serve::check_pass_name(pass))
                          .c_str());
    std::printf("mg_server: --check=%s %s\n", serve::check_pass_name(pass),
                ok ? "PASS" : "FAIL");
    if (!ok || !cli.get_flag("selftest")) return ok ? 0 : 2;
    // A clean verifier run with --selftest falls through to the loopback
    // round trip so CI can chain both in one invocation.
  }

  serve::ServeConfig cfg;
  cfg.total_cores = static_cast<unsigned>(cli.get_int("cores"));
  cfg.executors = static_cast<unsigned>(cli.get_int("executors"));
  cfg.queue_capacity = static_cast<std::size_t>(cli.get_int("queue-cap"));
  cfg.max_gang = static_cast<unsigned>(cli.get_int("max-gang"));
  cfg.default_deadline_ns = cli.get_int("deadline-ms") * 1'000'000;
  cfg.trace_sample = trace_sample;
  cfg.flight_path = cli.get("flight-out");
  const std::int64_t slo_ns = cli.get_int("slo-ms") * 1'000'000;
  if (slo_ns > 0) {
    for (auto& budget : cfg.slo.p99_budget_ns) budget = slo_ns;
  }
  serve::SolverService service(cfg);

  int port = static_cast<int>(cli.get_int("port"));
  if (cli.get_flag("selftest")) port = 0;  // never collide in CI
  int bound_port = 0;
  const int listen_fd = make_listener(port, &bound_port);
  if (listen_fd < 0) {
    std::fprintf(stderr, "mg_server: cannot listen on port %d\n", port);
    return 1;
  }
  g_listen_fd.store(listen_fd);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  const auto write_traces = [&cli, &service] {
    const std::string path = cli.get("traces-out");
    if (path.empty()) return;
    if (obs::write_traces_file(path)) {
      std::printf("mg_server: %zu retained trace(s) written to %s "
                  "(slo overloaded=%d)\n",
                  obs::retained_trace_count(), path.c_str(),
                  service.watchdog().overloaded() ? 1 : 0);
    } else {
      std::fprintf(stderr, "mg_server: cannot write traces to %s\n",
                   path.c_str());
    }
  };

  if (cli.get_flag("selftest")) {
    const int rc = run_selftest(service, listen_fd, bound_port);
    write_traces();
    if (cli.get_flag("obs")) {
      obs::write_prometheus_file("mg_server_metrics.txt");
      std::printf("mg_server: metrics written to mg_server_metrics.txt\n");
    }
    const int fd = g_listen_fd.exchange(-1);
    if (fd >= 0) ::close(fd);
    return rc;
  }

  std::printf("mg_server: listening on 127.0.0.1:%d (cores %u, queue %zu)\n",
              bound_port, service.config().total_cores,
              service.config().queue_capacity);
  const long long max_conns = cli.get_int("max-conns");
  long long accepted = 0;
  std::vector<std::thread> connections;
  while (!g_stop.load()) {
    const int fd = g_listen_fd.load();
    if (fd < 0) break;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) break;  // listener closed by signal
    connections.emplace_back(
        [conn, &service] { serve_connection(conn, service); });
    accepted += 1;
    if (max_conns > 0 && accepted >= max_conns) break;
  }
  for (auto& t : connections) t.join();
  service.drain();
  print_summary(service);
  write_traces();
  if (cli.get_flag("obs")) {
    obs::write_prometheus_file("mg_server_metrics.txt");
    std::printf("mg_server: metrics written to mg_server_metrics.txt\n");
  }
  const int fd = g_listen_fd.exchange(-1);
  if (fd >= 0) ::close(fd);
  return 0;
}
