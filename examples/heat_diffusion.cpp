// Heat diffusion: a different stencil application written directly against
// the WITH-loop API (not the MG machinery) — explicit Euler time stepping
// of the heat equation on a 2-D plate with fixed boundary temperatures.
//
//   $ heat_diffusion [--size 128] [--steps 400] [--alpha 0.2]
//
// Demonstrates: modarray with an interior generator, multi-partition border
// handling, lazy fusion of the update expression, reductions for
// diagnostics, and the implicit-MT runtime on multi-core hosts.

#include <cmath>
#include <cstdio>
#include <thread>

#include "sacpp/common/cli.hpp"
#include "sacpp/common/timer.hpp"
#include "sacpp/sac/sac.hpp"

using namespace sacpp;
using sac::Array;

namespace {

// ASCII rendering of the temperature field.
void render(const Array<double>& u, extent_t cells) {
  const Shape& shp = u.shape();
  const extent_t n = shp.extent(0);
  const char shades[] = " .:-=+*#%@";
  for (extent_t r = 0; r < cells; ++r) {
    for (extent_t c = 0; c < cells; ++c) {
      const IndexVec iv{r * n / cells, c * n / cells};
      const double t = u[iv];
      const int s = std::min(9, std::max(0, static_cast<int>(t * 10.0)));
      std::putchar(shades[s]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("size", "128", "plate points per side");
  cli.add_option("steps", "400", "Euler time steps");
  cli.add_option("alpha", "0.2", "diffusion number (stable < 0.25)");
  cli.add_flag("mt", "use the implicit multithreading runtime");
  if (!cli.parse(argc, argv)) return 1;

  const extent_t n = cli.get_int("size");
  const int steps = static_cast<int>(cli.get_int("steps"));
  const double alpha = cli.get_double("alpha");

  sac::SacConfig cfg = sac::config();
  cfg.mt_enabled = cli.get_flag("mt");
  cfg.mt_threads = std::thread::hardware_concurrency();
  sac::ScopedConfig guard(cfg);

  const Shape shp{n, n};
  // cold plate, hot top edge and a hot circular spot
  Array<double> u = sac::with_genarray<double>(shp, [&](const IndexVec& iv) {
    if (iv[0] == 0) return 1.0;  // hot boundary row
    const double dy = static_cast<double>(iv[0]) - 0.7 * static_cast<double>(n);
    const double dx = static_cast<double>(iv[1]) - 0.5 * static_cast<double>(n);
    return dx * dx + dy * dy < static_cast<double>(n) ? 1.0 : 0.0;
  });

  std::printf("heat diffusion on a %lldx%lld plate, %d steps, alpha=%.2f%s\n\n",
              static_cast<long long>(n), static_cast<long long>(n), steps,
              alpha, cfg.mt_enabled ? " (multithreaded)" : "");
  std::printf("t = 0:\n");
  render(u, 24);

  Timer timer;
  for (int t = 0; t < steps; ++t) {
    // one with-loop per step, borders untouched (modarray); `prev` keeps a
    // shared handle on the old state, so the update reads consistent values
    // while copy-on-write gives the new state its own buffer
    Array<double> prev = u;
    u = sac::with_modarray(
        std::move(u), sac::gen_interior(shp),
        [uc = std::move(prev), alpha](const IndexVec& iv) {
          const IndexVec north{iv[0] - 1, iv[1]};
          const IndexVec south{iv[0] + 1, iv[1]};
          const IndexVec west{iv[0], iv[1] - 1};
          const IndexVec east{iv[0], iv[1] + 1};
          return uc[iv] + alpha * (uc[north] + uc[south] + uc[west] +
                                   uc[east] - 4.0 * uc[iv]);
        });
  }
  const double elapsed = timer.elapsed_seconds();

  std::printf("\nt = %d:\n", steps);
  render(u, 24);
  std::printf("\ntotal heat: %.2f   max temperature: %.3f\n", sac::sum(u),
              sac::max_elem(u));
  std::printf("%d steps in %.3fs (%.1f Mcell-updates/s)\n", steps, elapsed,
              static_cast<double>(n * n) * steps / elapsed / 1e6);
  sac::shutdown_runtime();
  return 0;
}
