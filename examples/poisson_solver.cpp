// Poisson solver: use the rank-generic multigrid as a library component.
//
//   $ poisson_solver [--size 64] [--rank 3] [--iterations 6]
//
// Solves del^2 u = v with periodic boundaries for a user-chosen right-hand
// side (a dipole pair of smooth Gaussian charges rather than the NAS +-1
// point charges), in any rank — the paper's "reusable for grids of any
// dimension without alteration" claim exercised as an application.

#include <cmath>
#include <cstdio>

#include "sacpp/common/cli.hpp"
#include "sacpp/mg/mg_sac.hpp"
#include "sacpp/sac/sac.hpp"

using namespace sacpp;
using sac::Array;

namespace {

// Smooth dipole: a positive and a negative Gaussian blob, with the mean
// removed so the periodic Poisson problem is solvable.
Array<double> make_rhs(const Shape& shp) {
  const double n = static_cast<double>(shp.extent(0) - 2);
  auto v = sac::with_genarray<double>(shp, [&](const IndexVec& iv) {
    double d_plus = 0.0, d_minus = 0.0;
    for (std::size_t d = 0; d < iv.size(); ++d) {
      const double x = static_cast<double>(iv[d] - 1) / n;  // in [0, 1)
      const double p = x - 0.3, m = x - 0.7;
      d_plus += p * p;
      d_minus += m * m;
    }
    const double sigma2 = 0.01;
    return std::exp(-d_plus / sigma2) - std::exp(-d_minus / sigma2);
  });
  // remove the mean over the interior so a periodic solution exists
  const Shape& s = v.shape();
  double interior = 1.0;
  for (std::size_t d = 0; d < s.rank(); ++d) {
    interior *= static_cast<double>(s.extent(d) - 2);
  }
  const double mean =
      sac::with_fold(std::plus<>{}, 0.0, s, sac::gen_interior(s),
                     [&](const IndexVec& iv) { return v[iv]; }) /
      interior;
  Array<double> prev = v;  // shared handle: the body reads the old values
  v = sac::with_modarray(std::move(v), sac::gen_interior(s),
                         [uc = std::move(prev), mean](const IndexVec& iv) {
                           return uc[iv] - mean;
                         });
  return mg::MgSac::setup_periodic_border(std::move(v));
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("size", "64", "interior grid points per dimension (2^k)");
  cli.add_option("rank", "3", "problem dimensionality (1, 2 or 3)");
  cli.add_option("iterations", "6", "V-cycle iterations");
  if (!cli.parse(argc, argv)) return 1;

  const extent_t nx = cli.get_int("size");
  const auto rank = static_cast<std::size_t>(cli.get_int("rank"));
  const int iters = static_cast<int>(cli.get_int("iterations"));

  const mg::MgSpec spec = mg::MgSpec::custom(nx, iters);
  mg::MgSac solver(spec);
  const Shape shp = cube_shape(rank, nx + 2);

  std::printf("Poisson del^2 u = v on a %lld^%zu periodic grid, %d V-cycles\n",
              static_cast<long long>(nx), rank, iters);

  const Array<double> v = make_rhs(shp);
  Array<double> u = sac::genarray_const(shp, 0.0);
  std::printf("  %-10s %-14s %s\n", "iteration", "residual norm",
              "contraction");
  double prev = solver.residual_norm(v, u);
  std::printf("  %-10d %-14.6e %s\n", 0, prev, "-");
  for (int it = 1; it <= iters; ++it) {
    Array<double> r = solver.residual(v, u);
    u = u + solver.vcycle(r);
    const double norm = solver.residual_norm(v, u);
    std::printf("  %-10d %-14.6e %.1fx\n", it, norm, prev / norm);
    prev = norm;
  }

  // physical sanity: the solution is anti-symmetric under swapping the two
  // charge centres, so its interior mean is ~0
  const Shape& s = u.shape();
  double interior = 1.0;
  for (std::size_t d = 0; d < s.rank(); ++d) {
    interior *= static_cast<double>(s.extent(d) - 2);
  }
  const double mean =
      sac::with_fold(std::plus<>{}, 0.0, s, sac::gen_interior(s),
                     [&](const IndexVec& iv) { return u[iv]; }) /
      interior;
  std::printf("solution interior mean: %.3e (should be ~0)\n", mean);
  std::printf("solution max |u|:        %.6e\n", sac::max_abs(u));
  return 0;
}
