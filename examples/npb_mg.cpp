// npb_mg: a drop-in style NAS-MG benchmark executable.
//
//   $ npb_mg --class S --impl sac
//   $ npb_mg --class A --impl f77 --no-warmup
//   $ npb_mg --class S --impl sac --check
//   $ npb_mg --class W --impl sac --pool off
//
// Runs one implementation on one benchmark class following the official
// measurement protocol and prints the NPB result block, including the
// verification verdict against the regenerated reference norms (classes
// S/A/B equal the official NPB 2.3 constants).
//
// With --check (or SACPP_CHECK=1 in the environment) the run executes in
// checked mode: the array runtime records aliasing and parallel-region
// events and the sacpp_check analyses report on them after the run
// (docs/static_analysis.md).  Diagnostics set exit status 2.

#include <cstdio>
#include <memory>

#include "sacpp/check/check.hpp"
#include "sacpp/common/cli.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/sac/stats.hpp"

using namespace sacpp;
using namespace sacpp::mg;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("class", "S", "benchmark class (S, W, A, B, C)");
  cli.add_option("impl", "sac",
                 "implementation: sac | f77 | omp | direct");
  cli.add_flag("no-warmup", "skip the untimed warm-up iteration");
  cli.add_flag("norms", "print the residual norm after every iteration");
  cli.add_flag("check", "run under the sacpp_check runtime analyses");
  cli.add_option("pool", "",
                 "buffer pool: on | off (default: config / SACPP_POOL)");
  if (!cli.parse(argc, argv)) return 1;

  const MgSpec spec = MgSpec::for_class(parse_class(cli.get("class")));
  const Variant variant = parse_variant(cli.get("impl"));
  const bool checked = cli.get_flag("check") || sac::config().check;
  const std::string pool_arg = cli.get("pool");
  if (!pool_arg.empty()) {
    sac::config().pool = pool_arg == "on" || pool_arg == "1";
  }

  std::printf(" NAS Parallel Benchmarks (sacpp reproduction) - MG Benchmark\n");
  std::printf(" Size: %lld x %lld x %lld  Iterations: %d\n\n",
              static_cast<long long>(spec.nx),
              static_cast<long long>(spec.nx),
              static_cast<long long>(spec.nx), spec.nit);

  RunOptions opts;
  opts.warmup = !cli.get_flag("no-warmup");
  opts.record_norms = cli.get_flag("norms");

  // The Session must outlive the run but finish() only after the benchmark's
  // arrays are released, which run_benchmark guarantees (MgResult holds no
  // arrays).
  std::unique_ptr<check::Session> session;
  if (checked) session = std::make_unique<check::Session>();

  const MgResult result = run_benchmark(variant, spec, opts);

  if (opts.record_norms) {
    for (std::size_t it = 0; it < result.norms.size(); ++it) {
      std::printf("  iter %2zu  L2 norm = %.13e\n", it + 1, result.norms[it]);
    }
    std::printf("\n");
  }

  std::printf("%s", npb_report(result, spec).c_str());
  if (sac::config().pool) {
    const auto& st = sac::stats();
    std::printf(" Buffer pool         = on (%llu hits, %llu misses)\n",
                static_cast<unsigned long long>(st.pool_hits),
                static_cast<unsigned long long>(st.pool_misses));
  }

  bool check_failed = false;
  if (session != nullptr) {
    check::DiagnosticEngine& engine = session->finish();
    std::printf("\n%s", engine.to_ascii("sacpp_check").c_str());
    check_failed = !engine.empty();
  }

  bool known = false;
  const bool ok = verify(result, spec, &known);
  if (check_failed) return 2;
  return known && !ok ? 1 : 0;
}
