// npb_mg: a drop-in style NAS-MG benchmark executable.
//
//   $ npb_mg --class S --impl sac
//   $ npb_mg --class A --impl f77 --no-warmup
//
// Runs one implementation on one benchmark class following the official
// measurement protocol and prints the NPB result block, including the
// verification verdict against the regenerated reference norms (classes
// S/A/B equal the official NPB 2.3 constants).

#include <cstdio>

#include "sacpp/common/cli.hpp"
#include "sacpp/mg/driver.hpp"

using namespace sacpp;
using namespace sacpp::mg;

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("class", "S", "benchmark class (S, W, A, B, C)");
  cli.add_option("impl", "sac",
                 "implementation: sac | f77 | omp | direct");
  cli.add_flag("no-warmup", "skip the untimed warm-up iteration");
  cli.add_flag("norms", "print the residual norm after every iteration");
  if (!cli.parse(argc, argv)) return 1;

  const MgSpec spec = MgSpec::for_class(parse_class(cli.get("class")));
  const Variant variant = parse_variant(cli.get("impl"));

  std::printf(" NAS Parallel Benchmarks (sacpp reproduction) - MG Benchmark\n");
  std::printf(" Size: %lld x %lld x %lld  Iterations: %d\n\n",
              static_cast<long long>(spec.nx),
              static_cast<long long>(spec.nx),
              static_cast<long long>(spec.nx), spec.nit);

  RunOptions opts;
  opts.warmup = !cli.get_flag("no-warmup");
  opts.record_norms = cli.get_flag("norms");
  const MgResult result = run_benchmark(variant, spec, opts);

  if (opts.record_norms) {
    for (std::size_t it = 0; it < result.norms.size(); ++it) {
      std::printf("  iter %2zu  L2 norm = %.13e\n", it + 1, result.norms[it]);
    }
    std::printf("\n");
  }

  std::printf("%s", npb_report(result, spec).c_str());

  bool known = false;
  const bool ok = verify(result, spec, &known);
  return known && !ok ? 1 : 0;
}
