// npb_mg: a drop-in style NAS-MG benchmark executable.
//
//   $ npb_mg --class S --impl sac
//   $ npb_mg --class A --impl f77 --no-warmup
//   $ npb_mg --class S --impl sac --check
//   $ npb_mg --class W --impl sac --pool off
//   $ npb_mg --class W --impl sac --obs --trace-out=t.json --metrics-out=m.txt
//
// Runs one implementation on one benchmark class following the official
// measurement protocol and prints the NPB result block, including the
// verification verdict against the regenerated reference norms (classes
// S/A/B equal the official NPB 2.3 constants).
//
// With --check (or SACPP_CHECK=1 in the environment) the run executes in
// checked mode: the array runtime records aliasing and parallel-region
// events and the sacpp_check analyses report on them after the run
// (docs/static_analysis.md).  Diagnostics set exit status 2.
//
// --check=<protocol|locks|schedule|all> instead runs the protocol &
// concurrency verifier over the serving stack — session-typed wire
// conformance, lock-order cycle analysis, and the schedule-exploring
// checker — without the benchmark run; each pass is independently
// CI-failable (exit status 2 on findings).

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "sacpp/check/check.hpp"
#include "sacpp/common/cli.hpp"
#include "sacpp/common/table.hpp"
#include "sacpp/mg/driver.hpp"
#include "sacpp/obs/export.hpp"
#include "sacpp/obs/flight.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/obs/trace.hpp"
#include "sacpp/sac/backend.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/sac/stats.hpp"
#include "sacpp/serve/selfcheck.hpp"

using namespace sacpp;
using namespace sacpp::mg;

namespace {

// One-screen end-of-run telemetry: where the time went (top spans) and how
// it distributes across V-cycle levels — the paper's Sec. 5 view of the run.
void print_obs_summary() {
  const auto spans = obs::top_spans(5);
  if (!spans.empty()) {
    Table top({"span", "kind", "count", "total_ms", "mean_us"});
    for (const obs::SpanTotal& s : spans) {
      const double total_ms = static_cast<double>(s.total_ns) * 1e-6;
      const double mean_us =
          s.count > 0 ? static_cast<double>(s.total_ns) * 1e-3 /
                            static_cast<double>(s.count)
                      : 0.0;
      top.add_row({s.name, obs::span_kind_name(s.kind),
                   std::to_string(s.count), Table::fmt(total_ms),
                   Table::fmt(mean_us)});
    }
    std::printf("\n%s", top.to_ascii("telemetry: top spans by total time").c_str());
  }

  const auto levels = obs::level_metrics();
  double total = 0.0;
  for (const obs::LevelMetrics& m : levels) total += m.seconds;
  if (total > 0.0) {
    Table tbl({"level", "share_%", "seconds", "busy_s", "idle_s", "imbalance",
               "fork_us"});
    for (const obs::LevelMetrics& m : levels) {
      if (m.level < 0) continue;
      tbl.add_row({std::to_string(m.level),
                   Table::fmt(100.0 * m.seconds / total, 1),
                   Table::fmt(m.seconds, 4), Table::fmt(m.busy_seconds, 4),
                   Table::fmt(m.idle_seconds, 4), Table::fmt(m.imbalance, 2),
                   Table::fmt(m.fork_latency_seconds * 1e6, 1)});
    }
    std::printf("\n%s", tbl.to_ascii("telemetry: per-level share").c_str());
  }
  const std::uint64_t dropped = obs::total_dropped_spans();
  if (dropped > 0) {
    std::printf(" (%llu spans dropped; raise SACPP_OBS_RING)\n",
                static_cast<unsigned long long>(dropped));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("class", "S", "benchmark class (S, W, A, B, C)");
  cli.add_option("impl", "sac",
                 "implementation: sac | f77 | omp | direct");
  cli.add_flag("no-warmup", "skip the untimed warm-up iteration");
  cli.add_flag("norms", "print the residual norm after every iteration");
  cli.add_flag("check",
               "run under the sacpp_check runtime analyses; "
               "--check=<protocol|locks|schedule|all> runs the serve "
               "protocol/concurrency verifier instead");
  cli.add_option("schedules", "1000",
                 "interleavings explored by --check=schedule");
  cli.add_option("schedule-seed", "0",
                 "replay exactly this schedule seed (--check=schedule)");
  cli.add_option("lock-graph-out", "",
                 "write the recorded lock graph as Graphviz "
                 "(--check=locks)");
  cli.add_option("pool", "",
                 "buffer pool: on | off (default: config / SACPP_POOL)");
  cli.add_option("stencil-mode", "",
                 "stencil evaluation: grouped | naive | planes "
                 "(default: config / SACPP_STENCIL_MODE)");
  cli.add_option("backend", "",
                 "row-primitive engine: " + sac::backend_names() +
                     " (default: config / SACPP_BACKEND)");
  cli.add_flag("obs", "record telemetry and print the end-of-run summary");
  cli.add_option("threads", "",
                 "run multithreaded with N workers (0 = hardware)");
  cli.add_option("trace-out", "",
                 "write a Chrome trace-event JSON (Perfetto-loadable)");
  cli.add_option("metrics-out", "",
                 "write a Prometheus-style text metrics dump");
  cli.add_option("trace-sample", "0",
                 "> 0 traces the benchmark run as one request "
                 "(stamps every span; retains the trace at exit)");
  cli.add_option("flight-out", "",
                 "flight-recorder dump path; installs crash handlers");
  if (!cli.parse(argc, argv)) return 1;

  // --check with a pass selector short-circuits into the serve verifier;
  // the bare flag (or any truthy spelling) keeps its historical meaning of
  // a checked benchmark run.
  const std::string check_arg = cli.get("check");
  if (!check_arg.empty() && check_arg != "0" && !cli.get_flag("check")) {
    serve::CheckPass pass;
    if (!serve::parse_check_pass(check_arg, &pass)) {
      std::fprintf(stderr,
                   "npb_mg: unknown --check pass '%s' "
                   "(protocol | locks | schedule | all)\n",
                   check_arg.c_str());
      return 1;
    }
    serve::SelfCheckOptions sopts;
    sopts.schedules = static_cast<std::uint64_t>(cli.get_int("schedules"));
    sopts.schedule_seed =
        static_cast<std::uint64_t>(cli.get_int("schedule-seed"));
    sopts.lock_graph_path = cli.get("lock-graph-out");
    check::DiagnosticEngine engine;
    const bool ok = serve::run_self_checks(pass, sopts, &engine);
    std::printf("%s", engine.to_ascii(std::string("sacpp_check --check=") +
                                      serve::check_pass_name(pass))
                          .c_str());
    std::printf("npb_mg: --check=%s %s\n", serve::check_pass_name(pass),
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 2;
  }

  const MgSpec spec = MgSpec::for_class(parse_class(cli.get("class")));
  const Variant variant = parse_variant(cli.get("impl"));
  const bool checked = cli.get_flag("check") || sac::config().check;
  const std::string pool_arg = cli.get("pool");
  if (!pool_arg.empty()) {
    sac::config().pool = pool_arg == "on" || pool_arg == "1";
  }
  const std::string stencil_arg = cli.get("stencil-mode");
  if (!stencil_arg.empty() &&
      !sac::parse_stencil_mode(stencil_arg.c_str(),
                               &sac::config().stencil_mode)) {
    std::fprintf(stderr,
                 "npb_mg: unknown --stencil-mode '%s' "
                 "(grouped | naive | planes)\n",
                 stencil_arg.c_str());
    return 1;
  }
  const std::string backend_arg = cli.get("backend");
  if (!backend_arg.empty() &&
      !sac::parse_backend(backend_arg.c_str(), &sac::config().backend)) {
    std::fprintf(stderr, "npb_mg: unknown --backend '%s' (%s)\n",
                 backend_arg.c_str(), sac::backend_names().c_str());
    return 1;
  }
  const std::string threads_arg = cli.get("threads");
  if (!threads_arg.empty()) {
    sac::config().mt_enabled = true;
    sac::config().mt_threads = std::stoi(threads_arg);
  }
  const std::string trace_out = cli.get("trace-out");
  const std::string metrics_out = cli.get("metrics-out");
  const bool obs_summary = cli.get_flag("obs");
  const bool run_traced = cli.get_double("trace-sample") > 0.0;
  // Any telemetry consumer turns recording on; SACPP_OBS=1 also works.
  if (obs_summary || run_traced || !trace_out.empty() ||
      !metrics_out.empty()) {
    sac::set_obs(true);
  }
  obs::set_thread_name("main");
  const std::string flight_out = cli.get("flight-out");
  if (!flight_out.empty()) {
    obs::flight_configure(flight_out);
    obs::flight_install_signal_handlers();
  }

  std::printf(" NAS Parallel Benchmarks (sacpp reproduction) - MG Benchmark\n");
  std::printf(" Size: %lld x %lld x %lld  Iterations: %d\n\n",
              static_cast<long long>(spec.nx),
              static_cast<long long>(spec.nx),
              static_cast<long long>(spec.nx), spec.nit);

  RunOptions opts;
  opts.warmup = !cli.get_flag("no-warmup");
  opts.record_norms = cli.get_flag("norms");

  // The Session must outlive the run but finish() only after the benchmark's
  // arrays are released, which run_benchmark guarantees (MgResult holds no
  // arrays).
  std::unique_ptr<check::Session> session;
  if (checked) session = std::make_unique<check::Session>();

  // --trace-sample: the whole benchmark is one traced "request" — every
  // span it records (with-loops, levels, kernels, worker chunks) carries
  // the minted id, and the stitched trace is retained at exit.
  std::uint64_t run_trace_id = 0;
  std::int64_t run_trace_start = 0;
  std::optional<obs::TraceBinding> run_trace_binding;
  if (run_traced) {
    run_trace_id = obs::mint_trace_id();
    run_trace_start = obs::now_ns();
    run_trace_binding.emplace(
        obs::TraceContext{run_trace_id, 0, obs::kTraceForced});
  }

  const MgResult result = run_benchmark(variant, spec, opts);

  if (run_trace_id != 0) {
    run_trace_binding.reset();
    obs::TraceMeta meta;
    meta.trace_id = run_trace_id;
    meta.reason = obs::RetainReason::kFlagged;
    meta.status = "benchmark";
    meta.e2e_ns = obs::now_ns() - run_trace_start;
    meta.submit_ns = run_trace_start;
    obs::retain_trace(meta);
    std::printf(" Trace               = %llu (%zu retained)\n",
                static_cast<unsigned long long>(run_trace_id),
                obs::retained_trace_count());
  }

  if (opts.record_norms) {
    for (std::size_t it = 0; it < result.norms.size(); ++it) {
      std::printf("  iter %2zu  L2 norm = %.13e\n", it + 1, result.norms[it]);
    }
    std::printf("\n");
  }

  std::printf("%s", npb_report(result, spec).c_str());
  if (sac::config().pool) {
    const auto& st = sac::stats();
    std::printf(" Buffer pool         = on (%llu hits, %llu misses)\n",
                static_cast<unsigned long long>(st.pool_hits),
                static_cast<unsigned long long>(st.pool_misses));
  }
  if (variant == Variant::kSac || variant == Variant::kSacDirect) {
    std::printf(" Stencil mode        = %s\n",
                sac::stencil_mode_name(sac::config().stencil_mode));
    std::printf(" Backend             = %s [%s]\n",
                sac::backend_name(sac::config().backend),
                sac::backend_for(sac::config().backend).name());
    if (sac::config().stencil_mode == sac::StencilMode::kPlanes) {
      std::printf(" Rows reused         = %llu\n",
                  static_cast<unsigned long long>(
                      sac::stats().stencil_rows_reused));
    }
  }

  if (obs_summary) print_obs_summary();
  if (!obs::write_chrome_trace_file(trace_out)) {
    std::fprintf(stderr, "npb_mg: cannot write trace to %s\n",
                 trace_out.c_str());
    return 1;
  }
  if (!obs::write_prometheus_file(metrics_out)) {
    std::fprintf(stderr, "npb_mg: cannot write metrics to %s\n",
                 metrics_out.c_str());
    return 1;
  }

  bool check_failed = false;
  if (session != nullptr) {
    check::DiagnosticEngine& engine = session->finish();
    std::printf("\n%s", engine.to_ascii("sacpp_check").c_str());
    check_failed = !engine.empty();
  }

  bool known = false;
  const bool ok = verify(result, spec, &known);
  if (check_failed) return 2;
  return known && !ok ? 1 : 0;
}
