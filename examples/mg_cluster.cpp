// mg_cluster: the NAS MG benchmark spread across OS processes over TCP.
//
//   $ mg_cluster --ranks 2 --class S --verify     # norms vs in-process run
//   $ mg_cluster --ranks 4 --class A --json out.json
//   $ mg_cluster --ranks 2 --class S --chaos-exit # one rank dies mid-solve
//
// The launcher binds one loopback listener per rank on port 0 (so the OS
// picks free ports and children cannot race each other for them), forks one
// worker per rank, and re-executes itself (/proc/self/exe) in worker mode
// with the inherited listener.  Each worker builds a net::TcpTransport over
// the host list, binds it to a msg::World, and runs its rank of the exact
// same MgMpi program the in-process tests run — the kernels, collectives,
// and halo schedule never see which transport is underneath (docs/net.md).
//
// --verify re-runs the solve in-process (threads) in the parent and demands
// the distributed per-iteration norms agree to 1e-12 relative.
//
// --chaos-exit makes the highest rank _exit(7) mid-solve with no farewell,
// exactly like a crashed node; the launcher then requires every survivor to
// exit 9 after surfacing the peer-death ContractError diagnostic — a hang
// is a launcher timeout and a test failure.

#include <sys/socket.h>
#include <sys/wait.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sacpp/common/cli.hpp"
#include "sacpp/common/error.hpp"
#include "sacpp/mg/mg_mpi.hpp"
#include "sacpp/mg/spec.hpp"
#include "sacpp/msg/msg.hpp"
#include "sacpp/net/tcp_transport.hpp"

using namespace sacpp;

namespace {

constexpr int kSurvivorExit = 9;  // worker caught the peer-death diagnostic
constexpr int kChaosExit = 7;     // the deliberately crashed worker

std::vector<std::string> split_hosts(const std::string& csv) {
  std::vector<std::string> hosts;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) hosts.push_back(item);
  return hosts;
}

// ---------------------------------------------------------------------------
// Worker mode: one rank of the distributed solve.
// ---------------------------------------------------------------------------

int run_worker(const Cli& cli) {
  const int rank = static_cast<int>(cli.get_int("worker-rank"));
  net::TcpOptions opt;
  opt.rank = rank;
  opt.hosts = split_hosts(cli.get("hosts"));
  opt.listen_fd = static_cast<int>(cli.get_int("listen-fd"));

  const mg::MgSpec spec = mg::MgSpec::for_class(mg::parse_class(
      cli.get("class")));
  const int nit = cli.get_int("nit") > 0 ? static_cast<int>(cli.get_int("nit"))
                                         : spec.nit;
  const int ranks = static_cast<int>(opt.hosts.size());

  try {
    net::TcpTransport transport(opt);

    if (cli.get_flag("chaos") && rank == ranks - 1) {
      // Die the way a crashed node dies: after rendezvous, once the others
      // are inside the solve, vanish without a bye frame.  The kernel's
      // FIN/RST is all the survivors get.
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      std::_Exit(kChaosExit);
    }

    msg::World world(transport);
    mg::MgMpi solver(spec, ranks, !cli.get_flag("no-overlap"));
    mg::MgMpi::Result result;
    world.run([&](msg::Comm& comm) { result = solver.run_rank(comm, nit); });
    result.comm = world.stats();

    const std::string out = cli.get("result-out");
    if (rank == 0 && !out.empty()) {
      std::ofstream f(out, std::ios::trunc);
      f.precision(17);
      f << "final_norm " << result.final_norm << "\n";
      f << "seconds " << result.seconds << "\n";
      f << "norms";
      for (double n : result.norms) f << " " << n;
      f << "\n";
      f << "bytes_sent " << result.comm.bytes_sent << "\n";
      f << "bytes_received " << result.comm.bytes_received << "\n";
      f << "messages " << result.comm.messages << "\n";
      f << "reconnects " << result.comm.reconnects << "\n";
      if (!f.good()) {
        std::fprintf(stderr, "mg_cluster[%d]: cannot write %s\n", rank,
                     out.c_str());
        return 1;
      }
    }
    return 0;
  } catch (const ContractError& e) {
    // Peer death must surface as a diagnostic, never a hang; the launcher
    // checks for this exit code in --chaos-exit runs.
    std::fprintf(stderr, "mg_cluster[%d]: %s\n", rank, e.what());
    return kSurvivorExit;
  }
}

// ---------------------------------------------------------------------------
// Launcher mode.
// ---------------------------------------------------------------------------

int make_loopback_listener(int* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *port = ntohs(addr.sin_port);
  return fd;
}

struct Rank0Report {
  double final_norm = 0.0;
  double seconds = 0.0;
  std::vector<double> norms;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages = 0;
  std::uint64_t reconnects = 0;
};

bool read_report(const std::string& path, Rank0Report* rep) {
  std::ifstream f(path);
  if (!f) return false;
  std::string key;
  while (f >> key) {
    if (key == "final_norm") {
      f >> rep->final_norm;
    } else if (key == "seconds") {
      f >> rep->seconds;
    } else if (key == "norms") {
      std::string rest;
      std::getline(f, rest);
      std::stringstream ss(rest);
      double v;
      while (ss >> v) rep->norms.push_back(v);
    } else if (key == "bytes_sent") {
      f >> rep->bytes_sent;
    } else if (key == "bytes_received") {
      f >> rep->bytes_received;
    } else if (key == "messages") {
      f >> rep->messages;
    } else if (key == "reconnects") {
      f >> rep->reconnects;
    } else {
      return false;
    }
  }
  return !rep->norms.empty();
}

int run_launcher(const Cli& cli, const char* self) {
  const int ranks = static_cast<int>(cli.get_int("ranks"));
  if (ranks < 1 || ranks > 64) {
    std::fprintf(stderr, "mg_cluster: --ranks must be in [1, 64]\n");
    return 1;
  }
  const std::string cls = cli.get("class");
  const mg::MgSpec spec = mg::MgSpec::for_class(mg::parse_class(cls));
  const int nit = cli.get_int("nit") > 0 ? static_cast<int>(cli.get_int("nit"))
                                         : spec.nit;
  const bool chaos = cli.get_flag("chaos-exit");
  const bool overlap = !cli.get_flag("no-overlap");

  std::vector<int> fds(static_cast<std::size_t>(ranks));
  std::string hosts;
  for (int r = 0; r < ranks; ++r) {
    int port = 0;
    fds[static_cast<std::size_t>(r)] = make_loopback_listener(&port);
    if (fds[static_cast<std::size_t>(r)] < 0) {
      std::fprintf(stderr, "mg_cluster: cannot bind listener for rank %d\n",
                   r);
      return 1;
    }
    if (r > 0) hosts += ',';
    hosts += "127.0.0.1:" + std::to_string(port);
  }

  const std::string result_path =
      "/tmp/mg_cluster_result_" + std::to_string(::getpid()) + ".txt";

  std::vector<pid_t> pids;
  for (int r = 0; r < ranks; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "mg_cluster: fork failed: %s\n",
                   std::strerror(errno));
      return 1;
    }
    if (pid == 0) {
      // Child: keep only this rank's listener, then become a worker.
      for (int j = 0; j < ranks; ++j) {
        if (j != r) ::close(fds[static_cast<std::size_t>(j)]);
      }
      std::vector<std::string> args = {
          self,
          "--worker-rank=" + std::to_string(r),
          "--hosts=" + hosts,
          "--listen-fd=" + std::to_string(fds[static_cast<std::size_t>(r)]),
          "--class=" + cls,
          "--nit=" + std::to_string(nit),
          "--result-out=" + (r == 0 ? result_path : std::string()),
      };
      if (chaos) args.push_back("--chaos");
      if (!overlap) args.push_back("--no-overlap");
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv("/proc/self/exe", argv.data());
      std::fprintf(stderr, "mg_cluster: execv failed: %s\n",
                   std::strerror(errno));
      std::_Exit(127);
    }
    pids.push_back(pid);
  }
  for (int fd : fds) ::close(fd);

  bool ok = true;
  for (int r = 0; r < ranks; ++r) {
    int status = 0;
    if (::waitpid(pids[static_cast<std::size_t>(r)], &status, 0) < 0) {
      std::fprintf(stderr, "mg_cluster: waitpid rank %d failed\n", r);
      ok = false;
      continue;
    }
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    const int want = !chaos          ? 0
                     : r == ranks - 1 ? kChaosExit
                                      : kSurvivorExit;
    if (code != want) {
      std::fprintf(stderr,
                   "mg_cluster: rank %d exited %d (expected %d)%s\n", r, code,
                   want, WIFSIGNALED(status) ? " [signalled]" : "");
      ok = false;
    }
  }
  if (chaos) {
    std::remove(result_path.c_str());
    if (ok) {
      std::printf(
          "mg_cluster: chaos run ok — crashed rank exited %d, every "
          "survivor surfaced the peer-death diagnostic (exit %d)\n",
          kChaosExit, kSurvivorExit);
    }
    return ok ? 0 : 1;
  }
  if (!ok) return 1;

  Rank0Report rep;
  if (!read_report(result_path, &rep)) {
    std::fprintf(stderr, "mg_cluster: rank 0 left no result at %s\n",
                 result_path.c_str());
    return 1;
  }
  std::remove(result_path.c_str());

  std::printf(
      "mg_cluster: class %s ranks %d overlap %s  %.3fs  final norm %.15e\n",
      cls.c_str(), ranks, overlap ? "on" : "off", rep.seconds,
      rep.final_norm);
  std::printf(
      "mg_cluster: rank 0 wire traffic: %llu msgs, %llu B out, %llu B in, "
      "%llu reconnect(s)\n",
      static_cast<unsigned long long>(rep.messages),
      static_cast<unsigned long long>(rep.bytes_sent),
      static_cast<unsigned long long>(rep.bytes_received),
      static_cast<unsigned long long>(rep.reconnects));

  if (cli.get_flag("verify")) {
    // The distributed run must reproduce the in-process (thread) world's
    // norms: same kernels, same rank-ordered reductions, different bytes on
    // the wire.  1e-12 relative is the repo-wide cross-world tolerance.
    const mg::MgMpi reference(spec, ranks, overlap);
    const mg::MgMpi::Result local = reference.run(nit);
    if (local.norms.size() != rep.norms.size()) {
      std::fprintf(stderr,
                   "mg_cluster: verify FAILED — %zu iterations in-process "
                   "vs %zu distributed\n",
                   local.norms.size(), rep.norms.size());
      return 1;
    }
    for (std::size_t i = 0; i < local.norms.size(); ++i) {
      const double a = local.norms[i], b = rep.norms[i];
      const double rel = std::abs(a - b) / std::max(std::abs(a), 1e-300);
      if (!(rel <= 1e-12)) {
        std::fprintf(stderr,
                     "mg_cluster: verify FAILED at iteration %zu: "
                     "in-process %.17e vs sockets %.17e (rel %.3e)\n",
                     i, a, b, rel);
        return 1;
      }
    }
    std::printf(
        "mg_cluster: verify ok — %zu iteration norms match the in-process "
        "world to 1e-12\n",
        rep.norms.size());
  }

  const std::string json = cli.get("json");
  if (!json.empty()) {
    std::ofstream f(json, std::ios::trunc);
    f.precision(17);
    f << "{\n"
      << "  \"class\": \"" << cls << "\",\n"
      << "  \"ranks\": " << ranks << ",\n"
      << "  \"nit\": " << nit << ",\n"
      << "  \"overlap\": " << (overlap ? "true" : "false") << ",\n"
      << "  \"seconds\": " << rep.seconds << ",\n"
      << "  \"final_norm\": " << rep.final_norm << ",\n"
      << "  \"bytes_sent\": " << rep.bytes_sent << ",\n"
      << "  \"bytes_received\": " << rep.bytes_received << ",\n"
      << "  \"messages\": " << rep.messages << "\n"
      << "}\n";
    if (!f.good()) {
      std::fprintf(stderr, "mg_cluster: cannot write %s\n", json.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("ranks", "2", "number of OS processes (power of two)");
  cli.add_option("class", "S", "NAS problem class (S, W, A, B, C)");
  cli.add_option("nit", "0", "iteration override (0 = class default)");
  cli.add_flag("no-overlap", "post halos after each sweep instead of "
                             "overlapping them with interior compute");
  cli.add_flag("verify", "compare norms against an in-process run (1e-12)");
  cli.add_flag("chaos-exit", "crash the highest rank mid-solve and require "
                             "survivors to surface the diagnostic");
  cli.add_option("json", "", "write a result summary JSON to this path");
  // Worker-mode internals (set by the launcher, not by hand).
  cli.add_option("worker-rank", "-1", "internal: run as this rank");
  cli.add_option("hosts", "", "internal: comma-separated host:port per rank");
  cli.add_option("listen-fd", "-1", "internal: inherited listener fd");
  cli.add_option("result-out", "", "internal: rank 0 result file");
  cli.add_flag("chaos", "internal: this process is the crash rank");
  if (!cli.parse(argc, argv)) return 2;

  if (cli.get_int("worker-rank") >= 0) return run_worker(cli);
  return run_launcher(cli, argv[0]);
}
