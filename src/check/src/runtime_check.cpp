#include "sacpp/check/runtime_check.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "sacpp/sac/check_events.hpp"
#include "sacpp/sac/config.hpp"
#include "sacpp/sac/stats.hpp"

namespace sacpp::check {

namespace cd = sac::check_detail;

std::vector<Diagnostic> analyze_buffer_events() {
  std::vector<Diagnostic> diags;
  for (const cd::BufferEvent& e : cd::snapshot_buffer_events()) {
    std::ostringstream loc;
    std::ostringstream msg;
    switch (e.kind) {
      case cd::BufferEventKind::kSharedInPlaceWrite:
        loc << "buffer";
        msg << "in-place write to a buffer with reference count " << e.refs
            << " (use-after-steal: the write is visible through every alias)";
        diags.push_back(Diagnostic{Severity::kError, Pass::kAlias, loc.str(),
                                   msg.str()});
        break;
      case cd::BufferEventKind::kForeignOwnershipOp:
        loc << "region " << e.region;
        msg << "buffer ownership mutated from a non-coordinating thread "
               "inside a parallel region (refcount "
            << e.refs << "); ownership changes are coordinator-only";
        diags.push_back(
            Diagnostic{Severity::kError, Pass::kRace, loc.str(), msg.str()});
        break;
      case cd::BufferEventKind::kPoolDoubleRelease:
        loc << "pool";
        msg << "pooled buffer released twice (size class " << e.refs
            << " bytes): the block was already on a free list, so a second "
               "release would let two future allocations alias it";
        diags.push_back(Diagnostic{Severity::kError, Pass::kAlias, loc.str(),
                                   msg.str()});
        break;
    }
  }
  return diags;
}

std::vector<Diagnostic> analyze_parallel_regions() {
  std::vector<Diagnostic> diags;
  std::map<std::uint64_t, cd::RegionRecord> regions;
  for (const cd::RegionRecord& r : cd::snapshot_region_records()) {
    regions.emplace(r.region, r);
  }
  std::map<std::uint64_t, std::vector<cd::ChunkRecord>> by_region;
  for (const cd::ChunkRecord& c : cd::snapshot_chunk_records()) {
    by_region[c.region].push_back(c);
  }

  for (auto& [id, chunks] : by_region) {
    std::ostringstream loc;
    loc << "region " << id;

    // Pairwise interval overlap between different workers.  Reads may share
    // freely; a write overlapping anything is a race.
    for (std::size_t a = 0; a < chunks.size(); ++a) {
      for (std::size_t b = a + 1; b < chunks.size(); ++b) {
        const cd::ChunkRecord& x = chunks[a];
        const cd::ChunkRecord& y = chunks[b];
        if (x.worker == y.worker) continue;
        if (!x.write && !y.write) continue;
        if (x.lo < y.hi && y.lo < x.hi) {
          std::ostringstream msg;
          msg << (x.write && y.write ? "write/write" : "read/write")
              << " overlap: worker " << x.worker << " owns [" << x.lo << ", "
              << x.hi << ") and worker " << y.worker << " owns [" << y.lo
              << ", " << y.hi << ")";
          diags.push_back(Diagnostic{Severity::kError, Pass::kRace, loc.str(),
                                     msg.str()});
        }
      }
    }

    auto it = regions.find(id);
    if (it == regions.end()) continue;
    const cd::RegionRecord& r = it->second;

    // Chunk starts must stay aligned to the generator step so strided
    // generators keep their phase inside each chunk.
    for (const cd::ChunkRecord& c : chunks) {
      if (c.lo > c.hi) {
        std::ostringstream msg;
        msg << "worker " << c.worker << " has inverted interval [" << c.lo
            << ", " << c.hi << ")";
        diags.push_back(
            Diagnostic{Severity::kError, Pass::kRace, loc.str(), msg.str()});
      }
      if (r.align > 1 && c.lo < c.hi && (c.lo - r.begin) % r.align != 0) {
        std::ostringstream msg;
        msg << "worker " << c.worker << " chunk start " << c.lo
            << " is not aligned to step " << r.align << " relative to "
            << r.begin << " (strided generators lose their phase)";
        diags.push_back(
            Diagnostic{Severity::kError, Pass::kRace, loc.str(), msg.str()});
      }
    }

    // Written chunks must jointly cover [begin, end): a gap is not a race
    // but means silently unwritten elements.
    std::vector<std::pair<extent_t, extent_t>> written;
    for (const cd::ChunkRecord& c : chunks) {
      if (c.write && c.lo < c.hi) written.emplace_back(c.lo, c.hi);
    }
    if (!written.empty()) {
      std::sort(written.begin(), written.end());
      extent_t cursor = r.begin;
      for (const auto& [lo, hi] : written) {
        if (lo > cursor) {
          std::ostringstream msg;
          msg << "outer-axis interval [" << cursor << ", " << lo
              << ") is assigned to no worker";
          diags.push_back(Diagnostic{Severity::kError, Pass::kRace, loc.str(),
                                     msg.str()});
        }
        cursor = std::max(cursor, hi);
      }
      if (cursor < r.end) {
        std::ostringstream msg;
        msg << "outer-axis interval [" << cursor << ", " << r.end
            << ") is assigned to no worker";
        diags.push_back(
            Diagnostic{Severity::kError, Pass::kRace, loc.str(), msg.str()});
      }
    }
  }
  return diags;
}

std::vector<Diagnostic> analyze_allocation_balance(
    std::int64_t expected_live) {
  std::vector<Diagnostic> diags;
  const std::int64_t live = cd::live_buffer_count();
  if (live == expected_live) return diags;
  std::ostringstream msg;
  if (live > expected_live) {
    msg << (live - expected_live)
        << " buffer(s) allocated but never released (allocations "
        << sac::stats().allocations << ", releases " << sac::stats().releases
        << ")";
  } else {
    msg << (expected_live - live)
        << " more release(s) than allocation(s) — a buffer was freed twice "
           "or a foreign buffer was adopted";
  }
  diags.push_back(
      Diagnostic{Severity::kError, Pass::kAlias, "buffers", msg.str()});
  return diags;
}

Session::Session()
    : live_at_start_(cd::live_buffer_count()),
      saved_check_(sac::config().check) {
  cd::clear_check_events();
  sac::config().check = true;
}

Session::~Session() { sac::config().check = saved_check_; }

DiagnosticEngine& Session::finish() {
  if (!finished_) {
    finished_ = true;
    engine_.report_all(analyze_buffer_events());
    engine_.report_all(analyze_parallel_regions());
    engine_.report_all(analyze_allocation_balance(live_at_start_));
    cd::clear_check_events();
  }
  return engine_;
}

}  // namespace sacpp::check
