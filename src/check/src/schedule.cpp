#include "sacpp/check/schedule.hpp"

#include <algorithm>
#include <exception>

namespace sacpp::check {

ScheduleExplorer::ScheduleExplorer(ScheduleOptions opts) : opts_(opts) {}

// One schedule: PCT over the scenario's steps.  Each task gets a distinct
// random priority; the runnable task with the highest priority executes its
// next step.  At `preemptions` randomly chosen global step indices the
// running task's priority drops below everyone else's, forcing a context
// switch there — exactly the "d preemption points" of PCT, which bounds the
// schedules needed to expose any depth-d ordering bug.
bool ScheduleExplorer::run_one(std::uint64_t seed, const ScenarioBuilder& build,
                               ScheduleReport* report,
                               DiagnosticEngine* engine) {
  ScheduleScenario scenario = build(seed);
  ScheduleRng rng(seed);

  const std::size_t n_tasks = scenario.tasks.size();
  std::vector<std::size_t> next_step(n_tasks, 0);
  std::size_t total_steps = 0;
  for (const ScheduleTask& t : scenario.tasks) total_steps += t.steps.size();

  // Distinct priorities via a seeded shuffle (higher value = runs first).
  std::vector<std::uint64_t> priority(n_tasks);
  for (std::size_t i = 0; i < n_tasks; ++i) priority[i] = i + n_tasks;
  for (std::size_t i = n_tasks; i > 1; --i) {
    std::swap(priority[i - 1], priority[rng.below(i)]);
  }

  // Preemption points over the whole step sequence.
  std::vector<std::size_t> preempt_at;
  if (total_steps > 0) {
    for (int i = 0; i < opts_.preemptions; ++i) {
      preempt_at.push_back(static_cast<std::size_t>(rng.below(total_steps)));
    }
  }

  report->last_interleaving.clear();
  std::uint64_t demote_counter = 0;  // keeps demoted priorities distinct

  auto fail = [&](const std::string& what, const std::string& where) {
    report->failed = true;
    report->failing_seed = seed;
    report->failure = what;
    report->failing_task = where;
    if (engine != nullptr) {
      engine->report(Severity::kError, Pass::kSchedule, where,
                     what + " [schedule seed " + std::to_string(seed) +
                         "; replay with --schedule-seed=" +
                         std::to_string(seed) + " --schedules=1]");
    }
    return false;
  };

  for (std::size_t step = 0; step < total_steps; ++step) {
    // Highest-priority task with steps remaining.
    std::size_t chosen = n_tasks;
    for (std::size_t t = 0; t < n_tasks; ++t) {
      if (next_step[t] >= scenario.tasks[t].steps.size()) continue;
      if (chosen == n_tasks || priority[t] > priority[chosen]) chosen = t;
    }
    if (chosen == n_tasks) break;  // defensive; total_steps bounds the loop

    report->last_interleaving.push_back(chosen);
    try {
      scenario.tasks[chosen].steps[next_step[chosen]]();
    } catch (const std::exception& e) {
      return fail(e.what(), scenario.tasks[chosen].name);
    } catch (...) {
      return fail("non-standard exception", scenario.tasks[chosen].name);
    }
    next_step[chosen] += 1;
    report->steps_run += 1;

    if (std::find(preempt_at.begin(), preempt_at.end(), step) !=
        preempt_at.end()) {
      // Demote the task that just ran below every initial priority.
      priority[chosen] = demote_counter++;
    }
  }

  if (scenario.finally) {
    try {
      scenario.finally();
    } catch (const std::exception& e) {
      return fail(e.what(), "finally");
    } catch (...) {
      return fail("non-standard exception", "finally");
    }
  }
  return true;
}

ScheduleReport ScheduleExplorer::run(const ScenarioBuilder& build,
                                     DiagnosticEngine* engine) {
  ScheduleReport report;
  for (std::uint64_t i = 0; i < opts_.schedules; ++i) {
    const std::uint64_t seed = opts_.first_seed + i;
    const bool ok = run_one(seed, build, &report, engine);
    report.schedules_run += 1;
    if (!ok && opts_.stop_on_failure) break;
  }
  return report;
}

ScheduleReport ScheduleExplorer::replay(std::uint64_t seed,
                                        const ScenarioBuilder& build,
                                        DiagnosticEngine* engine) {
  ScheduleReport report;
  run_one(seed, build, &report, engine);
  report.schedules_run = 1;
  return report;
}

}  // namespace sacpp::check
