#include "sacpp/check/diagnostics.hpp"

#include <utility>

namespace sacpp::check {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

const char* pass_name(Pass p) {
  switch (p) {
    case Pass::kWlGraph:
      return "wlgraph";
    case Pass::kAlias:
      return "alias";
    case Pass::kRace:
      return "race";
    case Pass::kSession:
      return "session";
    case Pass::kLockOrder:
      return "lockorder";
    case Pass::kSchedule:
      return "schedule";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::string s = severity_name(severity);
  s += " [";
  s += pass_name(pass);
  s += "] ";
  s += location;
  s += ": ";
  s += message;
  return s;
}

void DiagnosticEngine::report(Diagnostic d) { diags_.push_back(std::move(d)); }

void DiagnosticEngine::report(Severity severity, Pass pass,
                              std::string location, std::string message) {
  diags_.push_back(
      Diagnostic{severity, pass, std::move(location), std::move(message)});
}

void DiagnosticEngine::report_all(std::vector<Diagnostic> ds) {
  for (auto& d : ds) diags_.push_back(std::move(d));
}

std::size_t DiagnosticEngine::count(Severity s) const {
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::size_t DiagnosticEngine::count(Pass p) const {
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (d.pass == p) ++n;
  }
  return n;
}

Table DiagnosticEngine::to_table() const {
  Table t({"severity", "pass", "location", "message"});
  for (const auto& d : diags_) {
    t.add_row({severity_name(d.severity), pass_name(d.pass), d.location,
               d.message});
  }
  return t;
}

std::string DiagnosticEngine::to_ascii(const std::string& title) const {
  if (diags_.empty()) {
    return title + ": no diagnostics\n";
  }
  return to_table().to_ascii(title);
}

void DiagnosticEngine::write_csv(const std::string& path) const {
  to_table().write_csv(path);
}

}  // namespace sacpp::check
