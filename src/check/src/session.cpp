#include "sacpp/check/session.hpp"

#include <cstdio>

namespace sacpp::check {

const char* dir_name(Dir d) noexcept {
  return d == Dir::kSend ? "send" : "recv";
}

// ---------------------------------------------------------------------------
// SessionSpec
// ---------------------------------------------------------------------------

int SessionSpec::match(int state, Dir dir, std::uint32_t kind,
                       std::uint32_t branch) const {
  int wildcard = -1;
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    const Transition& t = transitions[i];
    if (t.from != state || t.dir != dir || t.kind != kind) continue;
    if (t.branch == branch) return static_cast<int>(i);
    if (t.branch == kAnyBranch) wildcard = static_cast<int>(i);
  }
  return wildcard;
}

bool SessionSpec::accepts(int state) const {
  for (int s : accepting) {
    if (s == state) return true;
  }
  return false;
}

std::string SessionSpec::describe_state(int state) const {
  std::string out;
  for (const Transition& t : transitions) {
    if (t.from != state) continue;
    if (!out.empty()) out += " | ";
    out += dir_name(t.dir);
    out += '(';
    out += t.label;
    out += ')';
  }
  if (out.empty()) out = "<no transition: session must end here>";
  if (accepts(state)) out += " | end";
  return out;
}

SessionSpec collective_session_spec(const std::string& collective,
                                    std::uint32_t kind, Dir root_dir) {
  // Per peer session with the root, from the ROOT's perspective; the leaf
  // runs the dual (every Dir flipped).  One exchange per round; the loop
  // transition returns to start so repeated collectives conform.
  SessionSpec spec;
  spec.name = "msg." + collective;
  spec.start = 0;
  spec.accepting = {0};
  spec.transitions.push_back(
      {0, root_dir, kind, kAnyBranch, 0, collective});
  return spec;
}

// ---------------------------------------------------------------------------
// SessionMonitor
// ---------------------------------------------------------------------------

SessionMonitor::SessionMonitor(const SessionSpec* spec, std::string endpoint)
    : spec_(spec),
      endpoint_(std::move(endpoint)),
      state_(spec->start),
      taken_(spec->transitions.size(), 0) {}

void SessionMonitor::on_event(Dir dir, std::uint32_t kind,
                              std::uint32_t branch) {
  events_ += 1;
  const int idx = spec_->match(state_, dir, kind, branch);
  if (idx >= 0) {
    taken_[static_cast<std::size_t>(idx)] += 1;
    state_ = spec_->transitions[static_cast<std::size_t>(idx)].to;
    have_last_ = true;
    last_dir_ = dir;
    last_kind_ = kind;
    return;
  }
  // Classify the violation: the same event repeated back-to-back when the
  // spec has moved on is a duplicate; anything else is out-of-order.
  const bool duplicate = have_last_ && dir == last_dir_ && kind == last_kind_;
  std::string msg = std::string(duplicate ? "duplicate " : "out-of-order ") +
                    dir_name(dir) + " of kind 0x";
  char hex[16];
  std::snprintf(hex, sizeof hex, "%x", kind);
  msg += hex;
  if (branch != kAnyBranch) {
    msg += " (branch " + std::to_string(branch) + ")";
  }
  msg += " in state " + std::to_string(state_) + "; expected " +
         spec_->describe_state(state_);
  engine_.report(Severity::kError, Pass::kSession,
                 spec_->name + "/" + endpoint_, std::move(msg));
  // State intentionally unchanged: one slip should not cascade.
}

void SessionMonitor::finish(bool report_dead) {
  if (!spec_->accepts(state_)) {
    engine_.report(Severity::kError, Pass::kSession,
                   spec_->name + "/" + endpoint_,
                   "session ended in non-accepting state " +
                       std::to_string(state_) + "; expected " +
                       spec_->describe_state(state_));
  }
  if (report_dead && events_ > 0) {
    for (std::size_t i = 0; i < taken_.size(); ++i) {
      if (taken_[i] != 0) continue;
      const SessionSpec::Transition& t = spec_->transitions[i];
      engine_.report(Severity::kWarning, Pass::kSession,
                     spec_->name + "/" + endpoint_,
                     "dead transition: " + std::string(dir_name(t.dir)) +
                         "(" + t.label + ") from state " +
                         std::to_string(t.from) +
                         " was never exercised by this session");
    }
  }
}

// ---------------------------------------------------------------------------
// Thread-bound monitor hook
// ---------------------------------------------------------------------------

namespace {
thread_local SessionMonitor* tl_monitor = nullptr;
}  // namespace

MonitorBinding::MonitorBinding(SessionMonitor* monitor) noexcept
    : prev_(tl_monitor) {
  tl_monitor = monitor;
}

MonitorBinding::~MonitorBinding() { tl_monitor = prev_; }

SessionMonitor* bound_monitor() noexcept { return tl_monitor; }

void note_channel_event(Dir dir, std::uint32_t kind,
                        std::uint32_t branch) noexcept {
  if (tl_monitor != nullptr) tl_monitor->on_event(dir, kind, branch);
}

}  // namespace sacpp::check
