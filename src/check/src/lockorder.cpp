#include "sacpp/check/lockorder.hpp"

#include <atomic>
#include <fstream>

#include "sacpp/common/lockorder.hpp"
#include "sacpp/obs/export.hpp"

namespace sacpp::check {

std::vector<Diagnostic> analyze_lock_order() {
  LockRegistry& reg = LockRegistry::instance();
  std::vector<Diagnostic> out;
  for (const std::vector<int>& cycle : reg.find_cycles()) {
    std::string path;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i != 0) path += " -> ";
      path += reg.lock_name(cycle[i]);
    }
    Diagnostic d;
    d.severity = Severity::kError;
    d.pass = Pass::kLockOrder;
    d.location = reg.lock_name(cycle.front());
    d.message = "lock-order cycle (potential deadlock): " + path +
                "; threads taking these locks in the recorded orders "
                "concurrently can wedge";
    out.push_back(std::move(d));
  }
  return out;
}

bool write_lock_graph(const std::string& path) {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (!out) return false;
  out << LockRegistry::instance().to_dot();
  return static_cast<bool>(out);
}

void register_lock_collector() {
  static std::atomic<bool> registered{false};
  if (registered.exchange(true)) return;
  obs::register_collector([](obs::MetricSink& sink) {
    LockRegistry& reg = LockRegistry::instance();
    sink.gauge("sacpp_check_lock_classes",
               static_cast<double>(reg.lock_count()),
               "distinct instrumented lock classes registered");
    sink.gauge("sacpp_check_lock_edges",
               static_cast<double>(reg.edge_count()),
               "recorded lock-order edges (acquired-while-holding pairs)");
    sink.gauge("sacpp_check_lock_cycles",
               static_cast<double>(reg.find_cycles().size()),
               "lock-order cycles in the recorded graph (potential "
               "deadlocks)");
  });
}

LockOrderSession::LockOrderSession()
    : prev_enabled_(LockRegistry::instance().enabled()) {
  register_lock_collector();
  LockRegistry::instance().reset_edges();
  LockRegistry::instance().set_enabled(true);
}

LockOrderSession::~LockOrderSession() {
  LockRegistry::instance().set_enabled(prev_enabled_);
}

DiagnosticEngine& LockOrderSession::finish() {
  if (!finished_) {
    finished_ = true;
    LockRegistry::instance().set_enabled(prev_enabled_);
    engine_.report_all(analyze_lock_order());
  }
  return engine_;
}

}  // namespace sacpp::check
