#include "sacpp/check/fuzz.hpp"

#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "sacpp/common/shape.hpp"
#include "sacpp/check/wlgraph_verify.hpp"
#include "sacpp/sac/array_lib.hpp"
#include "sacpp/sac/wlgraph.hpp"

namespace sacpp::check {

namespace {

using sac::wl::AffineMap;
using sac::wl::Bindings;
using sac::wl::EwiseFn;
using sac::wl::Node;
using sac::wl::NodeRef;
using sac::wl::OpKind;

// xorshift64* — deterministic, no global state, good enough for structural
// fuzzing (we need variety, not statistical quality).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
  std::size_t pick(std::size_t n) { return static_cast<std::size_t>(next() % n); }
  extent_t range(extent_t lo, extent_t hi) {  // inclusive
    return lo + static_cast<extent_t>(next() % static_cast<std::uint64_t>(
                                                   hi - lo + 1));
  }
  double coeff() {  // small non-zero scale factor
    return 0.25 + 0.125 * static_cast<double>(pick(8));
  }
};

bool stencil_legal(const Shape& s) {
  if (s.rank() < 1) return false;
  for (std::size_t d = 0; d < s.rank(); ++d) {
    if (s.extent(d) < 3) return false;
  }
  return true;
}

// One randomly composed legal graph plus the bindings for its inputs.
// Built exclusively through the public builders, which enforce legality by
// construction; the verifier must therefore stay silent.
struct LegalGraph {
  NodeRef root;
  Bindings bindings;
};

LegalGraph make_legal_graph(Rng& rng) {
  const std::size_t rank = 1 + rng.pick(3);
  IndexVec ext(rank);
  for (std::size_t d = 0; d < rank; ++d) ext[d] = rng.range(3, 6);
  const Shape base{ext};

  LegalGraph g;
  std::vector<NodeRef> pool;
  const std::size_t num_inputs = 1 + rng.pick(2);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    const std::string name = "in" + std::to_string(i);
    pool.push_back(sac::wl::input(name, base));
    const std::uint64_t salt = rng.next();
    g.bindings.emplace(name,
                       sac::with_genarray<double>(base, [&](const IndexVec& iv) {
                         const auto lin =
                             static_cast<std::uint64_t>(base.linearize(iv));
                         return static_cast<double>(
                                    (lin * 2654435761ULL + salt) % 1000) /
                                997.0;
                       }));
  }
  pool.push_back(sac::wl::constant(base, rng.coeff()));

  const int steps = 3 + static_cast<int>(rng.pick(6));
  for (int s = 0; s < steps; ++s) {
    NodeRef a = pool[rng.pick(pool.size())];
    const Shape& shp = a->shape;
    NodeRef made;
    switch (rng.pick(10)) {
      case 0:
        made = sac::wl::neg(a);
        break;
      case 1:
        made = sac::wl::abs(a);
        break;
      case 2:
        made = sac::wl::scale(a, rng.coeff());
        break;
      case 3:
      case 4: {
        // binary ewise needs a same-shape partner; synthesise one if the
        // pool has none.
        NodeRef b;
        for (std::size_t tries = 0; tries < pool.size(); ++tries) {
          NodeRef cand = pool[rng.pick(pool.size())];
          if (cand->shape == shp) {
            b = std::move(cand);
            break;
          }
        }
        if (b == nullptr) b = sac::wl::constant(shp, rng.coeff());
        switch (rng.pick(3)) {
          case 0:
            made = sac::wl::add(a, b);
            break;
          case 1:
            made = sac::wl::sub(a, b);
            break;
          default:
            made = sac::wl::mul(a, b);
            break;
        }
        break;
      }
      case 5:
        if (stencil_legal(shp)) {
          sac::StencilCoeffs c{};
          for (std::size_t k = 0; k < c.c.size(); ++k) {
            c.c[k] = 0.0625 * static_cast<double>(rng.pick(5));
          }
          made = sac::wl::stencil(a, c);
        }
        break;
      case 6: {
        IndexVec off(shp.rank());
        for (std::size_t d = 0; d < shp.rank(); ++d) off[d] = rng.range(-2, 2);
        made = sac::wl::shift(off, a);
        break;
      }
      case 7: {
        // scatter multiplies every extent by the stride; keep the graph
        // small enough for the naive evaluator.
        if (rng.pick(2) == 0 && shp.elem_count() < 2000) {
          made = sac::wl::scatter(2, a, rng.range(0, 1));
        } else {
          bool ok = true;
          for (std::size_t d = 0; d < shp.rank(); ++d) {
            if (shp.extent(d) < 2) ok = false;
          }
          if (ok) made = sac::wl::condense(2, a, rng.range(0, 1));
        }
        break;
      }
      case 8: {
        IndexVec shp2(shp.rank());
        for (std::size_t d = 0; d < shp.rank(); ++d) {
          shp2[d] = rng.range(1, shp.extent(d));
        }
        made = sac::wl::take(shp2, a);
        break;
      }
      default: {
        IndexVec shp2(shp.rank());
        IndexVec pos(shp.rank());
        for (std::size_t d = 0; d < shp.rank(); ++d) {
          shp2[d] = shp.extent(d) + rng.range(0, 2);
          pos[d] = rng.range(0, shp2[d] - shp.extent(d));
        }
        made = sac::wl::embed(shp2, pos, a);
        break;
      }
    }
    if (made != nullptr) pool.push_back(std::move(made));
  }
  g.root = pool.back();
  return g;
}

// Hand-assembled nodes that each violate exactly one invariant the builders
// enforce.  `base` is a legal subgraph to hang the broken node off.
std::vector<std::pair<const char*, NodeRef>> make_illegal_graphs(
    const NodeRef& base, Rng& rng) {
  std::vector<std::pair<const char*, NodeRef>> out;
  const Shape& shp = base->shape;
  const std::size_t rank = shp.rank();

  {  // ewise operand shape differs from the node shape
    Node n;
    n.kind = OpKind::kEwise;
    n.fn = EwiseFn::kAdd;
    IndexVec grown = shp.extents();
    grown[rng.pick(rank)] += 1;
    n.shape = Shape{grown};
    n.args = {base, sac::wl::constant(n.shape, 1.0)};
    out.emplace_back("ewise shape mismatch",
                     std::make_shared<const Node>(std::move(n)));
  }
  {  // binary ewise fn with a single argument
    Node n;
    n.kind = OpKind::kEwise;
    n.fn = EwiseFn::kMul;
    n.shape = shp;
    n.args = {base};
    out.emplace_back("ewise arity", std::make_shared<const Node>(std::move(n)));
  }
  {  // ewise with a null child
    Node n;
    n.kind = OpKind::kEwise;
    n.fn = EwiseFn::kNeg;
    n.shape = shp;
    n.args = {nullptr};
    out.emplace_back("null child", std::make_shared<const Node>(std::move(n)));
  }
  {  // stencil over an extent below the ghost ring minimum
    IndexVec thin = shp.extents();
    thin[rng.pick(rank)] = 2;
    NodeRef small = sac::wl::input("thin", Shape{thin});
    Node n;
    n.kind = OpKind::kStencil;
    n.shape = small->shape;
    n.args = {std::move(small)};
    out.emplace_back("stencil ghost ring",
                     std::make_shared<const Node>(std::move(n)));
  }
  {  // affine offset rank differs from the node rank
    Node n;
    n.kind = OpKind::kGather;
    n.shape = shp;
    n.map.offset = IndexVec(rank + 1);
    n.args = {base};
    out.emplace_back("gather offset rank",
                     std::make_shared<const Node>(std::move(n)));
  }
  {  // zero divisor
    Node n;
    n.kind = OpKind::kGather;
    n.shape = shp;
    n.map.den = 0;
    n.map.offset = IndexVec(rank);
    n.args = {base};
    out.emplace_back("gather zero divisor",
                     std::make_shared<const Node>(std::move(n)));
  }
  {  // unnamed input leaf
    Node n;
    n.kind = OpKind::kInput;
    n.shape = shp;
    out.emplace_back("unnamed input",
                     std::make_shared<const Node>(std::move(n)));
  }
  return out;
}

bool values_match(const sac::Array<double>& a, const sac::Array<double>& b) {
  if (a.shape() != b.shape()) return false;
  for (extent_t i = 0; i < a.elem_count(); ++i) {
    const double x = a.at_linear(i);
    const double y = b.at_linear(i);
    const double tol = 1e-12 * std::max(1.0, std::max(std::abs(x), std::abs(y)));
    if (std::abs(x - y) > tol) return false;
  }
  return true;
}

}  // namespace

FuzzStats fuzz_wlgraph_verifier(std::uint64_t seed, int rounds) {
  Rng rng{seed | 1};  // xorshift state must be non-zero
  FuzzStats stats;
  for (int r = 0; r < rounds; ++r) {
    LegalGraph legal = make_legal_graph(rng);
    stats.legal_graphs += 1;
    std::vector<Diagnostic> ds = verify_graph(legal.root);
    // Dead-source warnings are legitimate on random structural chains (a
    // take after a large shift really can read only default values); only
    // *errors* on a builder-produced graph are false positives.
    for (const Diagnostic& d : ds) {
      if (d.severity == Severity::kError) {
        stats.legal_flagged += 1;
        break;
      }
    }
    // The optimised evaluator must agree with the naive one on every legal
    // graph — a second, independent oracle for graph legality.
    const sac::Array<double> naive =
        sac::wl::evaluate_naive(legal.root, legal.bindings);
    const sac::Array<double> opt =
        sac::wl::evaluate(sac::wl::optimise(legal.root), legal.bindings);
    if (!values_match(naive, opt)) stats.eval_mismatches += 1;

    for (auto& [what, bad] : make_illegal_graphs(legal.root, rng)) {
      stats.illegal_graphs += 1;
      bool flagged = false;
      for (const Diagnostic& d : verify_graph(bad)) {
        if (d.severity == Severity::kError) {
          flagged = true;
          break;
        }
      }
      if (!flagged) stats.illegal_missed += 1;
      (void)what;
    }
  }
  return stats;
}

}  // namespace sacpp::check
