#include "sacpp/check/fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "sacpp/common/shape.hpp"
#include "sacpp/check/wlgraph_verify.hpp"
#include "sacpp/sac/array_lib.hpp"
#include "sacpp/sac/backend.hpp"
#include "sacpp/sac/stencil.hpp"
#include "sacpp/sac/wlgraph.hpp"

namespace sacpp::check {

namespace {

using sac::wl::AffineMap;
using sac::wl::Bindings;
using sac::wl::EwiseFn;
using sac::wl::Node;
using sac::wl::NodeRef;
using sac::wl::OpKind;

// xorshift64* — deterministic, no global state, good enough for structural
// fuzzing (we need variety, not statistical quality).
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
  std::size_t pick(std::size_t n) { return static_cast<std::size_t>(next() % n); }
  extent_t range(extent_t lo, extent_t hi) {  // inclusive
    return lo + static_cast<extent_t>(next() % static_cast<std::uint64_t>(
                                                   hi - lo + 1));
  }
  double coeff() {  // small non-zero scale factor
    return 0.25 + 0.125 * static_cast<double>(pick(8));
  }
};

bool stencil_legal(const Shape& s) {
  if (s.rank() < 1) return false;
  for (std::size_t d = 0; d < s.rank(); ++d) {
    if (s.extent(d) < 3) return false;
  }
  return true;
}

// One randomly composed legal graph plus the bindings for its inputs.
// Built exclusively through the public builders, which enforce legality by
// construction; the verifier must therefore stay silent.
struct LegalGraph {
  NodeRef root;
  Bindings bindings;
};

LegalGraph make_legal_graph(Rng& rng) {
  const std::size_t rank = 1 + rng.pick(3);
  IndexVec ext(rank);
  for (std::size_t d = 0; d < rank; ++d) ext[d] = rng.range(3, 6);
  const Shape base{ext};

  LegalGraph g;
  std::vector<NodeRef> pool;
  const std::size_t num_inputs = 1 + rng.pick(2);
  for (std::size_t i = 0; i < num_inputs; ++i) {
    const std::string name = "in" + std::to_string(i);
    pool.push_back(sac::wl::input(name, base));
    const std::uint64_t salt = rng.next();
    g.bindings.emplace(name,
                       sac::with_genarray<double>(base, [&](const IndexVec& iv) {
                         const auto lin =
                             static_cast<std::uint64_t>(base.linearize(iv));
                         return static_cast<double>(
                                    (lin * 2654435761ULL + salt) % 1000) /
                                997.0;
                       }));
  }
  pool.push_back(sac::wl::constant(base, rng.coeff()));

  const int steps = 3 + static_cast<int>(rng.pick(6));
  for (int s = 0; s < steps; ++s) {
    NodeRef a = pool[rng.pick(pool.size())];
    const Shape& shp = a->shape;
    NodeRef made;
    switch (rng.pick(10)) {
      case 0:
        made = sac::wl::neg(a);
        break;
      case 1:
        made = sac::wl::abs(a);
        break;
      case 2:
        made = sac::wl::scale(a, rng.coeff());
        break;
      case 3:
      case 4: {
        // binary ewise needs a same-shape partner; synthesise one if the
        // pool has none.
        NodeRef b;
        for (std::size_t tries = 0; tries < pool.size(); ++tries) {
          NodeRef cand = pool[rng.pick(pool.size())];
          if (cand->shape == shp) {
            b = std::move(cand);
            break;
          }
        }
        if (b == nullptr) b = sac::wl::constant(shp, rng.coeff());
        switch (rng.pick(3)) {
          case 0:
            made = sac::wl::add(a, b);
            break;
          case 1:
            made = sac::wl::sub(a, b);
            break;
          default:
            made = sac::wl::mul(a, b);
            break;
        }
        break;
      }
      case 5:
        if (stencil_legal(shp)) {
          sac::StencilCoeffs c{};
          for (std::size_t k = 0; k < c.c.size(); ++k) {
            c.c[k] = 0.0625 * static_cast<double>(rng.pick(5));
          }
          made = sac::wl::stencil(a, c);
        }
        break;
      case 6: {
        IndexVec off(shp.rank());
        for (std::size_t d = 0; d < shp.rank(); ++d) off[d] = rng.range(-2, 2);
        made = sac::wl::shift(off, a);
        break;
      }
      case 7: {
        // scatter multiplies every extent by the stride; keep the graph
        // small enough for the naive evaluator.
        if (rng.pick(2) == 0 && shp.elem_count() < 2000) {
          made = sac::wl::scatter(2, a, rng.range(0, 1));
        } else {
          bool ok = true;
          for (std::size_t d = 0; d < shp.rank(); ++d) {
            if (shp.extent(d) < 2) ok = false;
          }
          if (ok) made = sac::wl::condense(2, a, rng.range(0, 1));
        }
        break;
      }
      case 8: {
        IndexVec shp2(shp.rank());
        for (std::size_t d = 0; d < shp.rank(); ++d) {
          shp2[d] = rng.range(1, shp.extent(d));
        }
        made = sac::wl::take(shp2, a);
        break;
      }
      default: {
        IndexVec shp2(shp.rank());
        IndexVec pos(shp.rank());
        for (std::size_t d = 0; d < shp.rank(); ++d) {
          shp2[d] = shp.extent(d) + rng.range(0, 2);
          pos[d] = rng.range(0, shp2[d] - shp.extent(d));
        }
        made = sac::wl::embed(shp2, pos, a);
        break;
      }
    }
    if (made != nullptr) pool.push_back(std::move(made));
  }
  g.root = pool.back();
  return g;
}

// Hand-assembled nodes that each violate exactly one invariant the builders
// enforce.  `base` is a legal subgraph to hang the broken node off.
std::vector<std::pair<const char*, NodeRef>> make_illegal_graphs(
    const NodeRef& base, Rng& rng) {
  std::vector<std::pair<const char*, NodeRef>> out;
  const Shape& shp = base->shape;
  const std::size_t rank = shp.rank();

  {  // ewise operand shape differs from the node shape
    Node n;
    n.kind = OpKind::kEwise;
    n.fn = EwiseFn::kAdd;
    IndexVec grown = shp.extents();
    grown[rng.pick(rank)] += 1;
    n.shape = Shape{grown};
    n.args = {base, sac::wl::constant(n.shape, 1.0)};
    out.emplace_back("ewise shape mismatch",
                     std::make_shared<const Node>(std::move(n)));
  }
  {  // binary ewise fn with a single argument
    Node n;
    n.kind = OpKind::kEwise;
    n.fn = EwiseFn::kMul;
    n.shape = shp;
    n.args = {base};
    out.emplace_back("ewise arity", std::make_shared<const Node>(std::move(n)));
  }
  {  // ewise with a null child
    Node n;
    n.kind = OpKind::kEwise;
    n.fn = EwiseFn::kNeg;
    n.shape = shp;
    n.args = {nullptr};
    out.emplace_back("null child", std::make_shared<const Node>(std::move(n)));
  }
  {  // stencil over an extent below the ghost ring minimum
    IndexVec thin = shp.extents();
    thin[rng.pick(rank)] = 2;
    NodeRef small = sac::wl::input("thin", Shape{thin});
    Node n;
    n.kind = OpKind::kStencil;
    n.shape = small->shape;
    n.args = {std::move(small)};
    out.emplace_back("stencil ghost ring",
                     std::make_shared<const Node>(std::move(n)));
  }
  {  // affine offset rank differs from the node rank
    Node n;
    n.kind = OpKind::kGather;
    n.shape = shp;
    n.map.offset = IndexVec(rank + 1);
    n.args = {base};
    out.emplace_back("gather offset rank",
                     std::make_shared<const Node>(std::move(n)));
  }
  {  // zero divisor
    Node n;
    n.kind = OpKind::kGather;
    n.shape = shp;
    n.map.den = 0;
    n.map.offset = IndexVec(rank);
    n.args = {base};
    out.emplace_back("gather zero divisor",
                     std::make_shared<const Node>(std::move(n)));
  }
  {  // unnamed input leaf
    Node n;
    n.kind = OpKind::kInput;
    n.shape = shp;
    out.emplace_back("unnamed input",
                     std::make_shared<const Node>(std::move(n)));
  }
  return out;
}

bool values_match(const sac::Array<double>& a, const sac::Array<double>& b) {
  if (a.shape() != b.shape()) return false;
  for (extent_t i = 0; i < a.elem_count(); ++i) {
    const double x = a.at_linear(i);
    const double y = b.at_linear(i);
    const double tol = 1e-12 * std::max(1.0, std::max(std::abs(x), std::abs(y)));
    if (std::abs(x - y) > tol) return false;
  }
  return true;
}

}  // namespace

FuzzStats fuzz_wlgraph_verifier(std::uint64_t seed, int rounds) {
  Rng rng{seed | 1};  // xorshift state must be non-zero
  FuzzStats stats;
  for (int r = 0; r < rounds; ++r) {
    LegalGraph legal = make_legal_graph(rng);
    stats.legal_graphs += 1;
    std::vector<Diagnostic> ds = verify_graph(legal.root);
    // Dead-source warnings are legitimate on random structural chains (a
    // take after a large shift really can read only default values); only
    // *errors* on a builder-produced graph are false positives.
    for (const Diagnostic& d : ds) {
      if (d.severity == Severity::kError) {
        stats.legal_flagged += 1;
        break;
      }
    }
    // The optimised evaluator must agree with the naive one on every legal
    // graph — a second, independent oracle for graph legality.
    const sac::Array<double> naive =
        sac::wl::evaluate_naive(legal.root, legal.bindings);
    const sac::Array<double> opt =
        sac::wl::evaluate(sac::wl::optimise(legal.root), legal.bindings);
    if (!values_match(naive, opt)) stats.eval_mismatches += 1;

    for (auto& [what, bad] : make_illegal_graphs(legal.root, rng)) {
      stats.illegal_graphs += 1;
      bool flagged = false;
      for (const Diagnostic& d : verify_graph(bad)) {
        if (d.severity == Severity::kError) {
          flagged = true;
          break;
        }
      }
      if (!flagged) stats.illegal_missed += 1;
      (void)what;
    }
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Backend row fuzzer
// ---------------------------------------------------------------------------

namespace {

// Row lengths biased to the masked-tail danger zone around the 4-lane width.
extent_t fuzz_row_length(Rng& rng) {
  static constexpr extent_t kPool[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,
                                       11, 13, 15, 16, 17, 23, 31, 32, 33,
                                       61, 64, 67, 97};
  if (rng.pick(4) == 0) return rng.range(0, 130);
  return kPool[rng.pick(std::size(kPool))];
}

std::vector<double> fuzz_row(Rng& rng, std::size_t n) {
  std::vector<double> r(n);
  for (double& x : r) {
    x = static_cast<double>(rng.range(-4000, 4000)) / 997.0;
  }
  return r;
}

bool rows_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise: memcmp semantics without tripping on -0.0 vs +0.0 being ==.
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) return false;
  }
  return true;
}

// The JIT engine joins the differential set only under SACPP_JIT_SYNC=1
// (exported by the jit-backend CI job): in async mode its rows answer from
// the fallback engine while compiles race in the background, so diffing it
// would not exercise generated code — and the fuzzer's randomized key
// stream would leave the compile queue churning long after the rounds end.
bool fuzz_jit() {
  const char* sync = std::getenv("SACPP_JIT_SYNC");
  return sync != nullptr && sync[0] == '1' && sync[1] == '\0';
}

// Every engine present on this host, scalar first (the reference).
std::vector<const sac::Backend*> fuzz_engines() {
  std::vector<const sac::Backend*> v{&sac::detail::scalar_backend(),
                                     &sac::detail::portable_backend()};
  if (sac::detail::avx2_backend() != nullptr) {
    v.push_back(sac::detail::avx2_backend());
  }
  if (sac::detail::avx512_backend() != nullptr) {
    v.push_back(sac::detail::avx512_backend());
  }
  if (fuzz_jit()) v.push_back(&sac::detail::jit_backend());
  return v;
}

// One round of raw-primitive differential checks on a random row config.
void fuzz_primitives(Rng& rng, const std::vector<const sac::Backend*>& engines,
                     BackendFuzzStats* stats) {
  const extent_t n = fuzz_row_length(rng);
  extent_t lo = n == 0 ? 0 : rng.range(0, n);
  extent_t hi = n == 0 ? 0 : rng.range(0, n);
  if (hi < lo) std::swap(lo, hi);
  const auto nz = static_cast<std::size_t>(n);
  const auto a = fuzz_row(rng, nz);
  const auto b = fuzz_row(rng, nz);
  const double v = static_cast<double>(rng.range(-9, 9)) * 0.625;

  std::vector<std::vector<double>> fill(engines.size()), copy(engines.size()),
      add(engines.size()), sub(engines.size()), mul(engines.size());
  std::vector<double> ss(engines.size()), ma(engines.size());
  for (std::size_t e = 0; e < engines.size(); ++e) {
    const sac::Backend* be = engines[e];
    fill[e].assign(nz, -77.0);
    be->fill_row(fill[e].data(), lo, hi, v);
    copy[e].assign(nz, -77.0);
    be->copy_row(copy[e].data(), a.data(), lo, hi);
    add[e] = b;
    be->add_into_row(a.data(), add[e].data(), lo, hi);
    sub[e] = b;
    be->sub_into_row(a.data(), sub[e].data(), lo, hi);
    mul[e] = b;
    be->mul_into_row(a.data(), mul[e].data(), lo, hi);
    ss[e] = be->sum_sq_row(0.125, a.data(), lo, hi);
    ma[e] = be->max_abs_row(0.0, a.data(), lo, hi);
    stats->rows_checked += 1;
    if (e == 0) continue;
    if (!rows_equal(fill[e], fill[0]) || !rows_equal(copy[e], copy[0]) ||
        !rows_equal(add[e], add[0]) || !rows_equal(sub[e], sub[0]) ||
        !rows_equal(mul[e], mul[0])) {
      stats->mismatches += 1;
    }
    const double tol = 1e-12 * std::max(1.0, std::abs(ss[0]));
    if (std::abs(ss[e] - ss[0]) > tol || ma[e] != ma[0]) {
      stats->fold_mismatches += 1;
    }
    // The vectorized engines must agree with each other exactly.
    if (e >= 2 && (ss[e] != ss[1] || ma[e] != ma[1])) {
      stats->fold_mismatches += 1;
    }
  }

  // Stencil row combine: needs lo-1 / hi readable, so pad the range in.
  if (n >= 3) {
    const auto uc = fuzz_row(rng, nz);
    const auto u1 = fuzz_row(rng, nz);
    const auto u2 = fuzz_row(rng, nz);
    const double c[4] = {-0.5, 0.125, 0.0625, 0.03125};
    extent_t clo = rng.range(1, n - 1), chi = rng.range(1, n - 1);
    if (chi < clo) std::swap(clo, chi);
    std::vector<std::vector<double>> comb(engines.size()),
        accr(engines.size());
    for (std::size_t e = 0; e < engines.size(); ++e) {
      comb[e].assign(nz, -77.0);
      engines[e]->combine_row(c, uc.data(), u1.data(), u2.data(),
                              comb[e].data(), clo, chi);
      accr[e] = b;
      engines[e]->accumulate_row(c, uc.data(), u1.data(), u2.data(),
                                 accr[e].data(), clo, chi);
      stats->rows_checked += 1;
      if (e > 0 && (!rows_equal(comb[e], comb[0]) ||
                    !rows_equal(accr[e], accr[0]))) {
        stats->mismatches += 1;
      }
    }
  }

  // Strided gather / scatter.
  if (n >= 1) {
    const extent_t stride = rng.range(1, 4);
    const auto src = fuzz_row(rng, static_cast<std::size_t>(n * stride));
    std::vector<std::vector<double>> g(engines.size()), s(engines.size());
    for (std::size_t e = 0; e < engines.size(); ++e) {
      g[e].assign(nz, -77.0);
      engines[e]->gather_row(g[e].data(), src.data(), stride, n);
      s[e].assign(static_cast<std::size_t>(n * stride), -77.0);
      engines[e]->scatter_row(s[e].data(), stride, src.data(), n);
      stats->rows_checked += 1;
      if (e > 0 &&
          (!rows_equal(g[e], g[0]) || !rows_equal(s[e], s[0]))) {
        stats->mismatches += 1;
      }
    }
  }
}

// Whole-expression check: force `expr` under every backend kind and compare
// bitwise against its per-point evaluation.
template <typename Expr>
void fuzz_expr_backends(const Expr& expr, BackendFuzzStats* stats) {
  const Shape shp = expr.shape();
  sac::Array<double> ref = sac::with_genarray<double>(
      shp, [&](const IndexVec& iv) { return expr(iv); });
  std::vector<sac::BackendKind> kinds{sac::BackendKind::kScalar,
                                      sac::BackendKind::kSimd,
                                      sac::BackendKind::kSimdPortable};
  if (fuzz_jit()) kinds.push_back(sac::BackendKind::kJit);
  for (const sac::BackendKind kind : kinds) {
    sac::SacConfig cfg = sac::config();
    cfg.backend = kind;
    sac::ScopedConfig guard(cfg);
    const sac::Array<double> got = sac::force(expr);
    stats->exprs_checked += 1;
    bool ok = got.shape() == ref.shape();
    for (extent_t i = 0; ok && i < got.elem_count(); ++i) {
      const double x = got.at_linear(i), y = ref.at_linear(i);
      ok = std::memcmp(&x, &y, sizeof(double)) == 0;
    }
    if (!ok) stats->mismatches += 1;
  }
}

void fuzz_gather_rows(Rng& rng, BackendFuzzStats* stats) {
  IndexVec ext{rng.range(1, 6), rng.range(1, 6), fuzz_row_length(rng) + 1};
  const Shape base{ext};
  std::uint64_t salt = rng.next();
  sac::Array<double> a =
      sac::with_genarray<double>(base, [&](const IndexVec& iv) {
        const auto lin = static_cast<std::uint64_t>(base.linearize(iv));
        return static_cast<double>((lin * 2654435761ULL + salt) % 1000) /
               997.0;
      });
  switch (rng.pick(5)) {
    case 0: {
      bool ok = true;
      for (std::size_t d = 0; d < 3; ++d) {
        if (base.extent(d) < 2) ok = false;
      }
      if (ok) {
        fuzz_expr_backends(sac::lazy_condense(2, a, rng.range(0, 1)), stats);
      }
      break;
    }
    case 1:
      if (base.elem_count() < 2000) {
        fuzz_expr_backends(sac::lazy_scatter(2, a, rng.range(0, 1)), stats);
      }
      break;
    case 2: {
      IndexVec shp2(3);
      for (std::size_t d = 0; d < 3; ++d) {
        shp2[d] = rng.range(1, base.extent(d));
      }
      fuzz_expr_backends(sac::lazy_take(shp2, a), stats);
      break;
    }
    case 3: {
      IndexVec shp2(3), pos(3);
      for (std::size_t d = 0; d < 3; ++d) {
        shp2[d] = base.extent(d) + rng.range(0, 5);
        pos[d] = rng.range(0, shp2[d] - base.extent(d));
      }
      fuzz_expr_backends(sac::lazy_embed(shp2, pos, a), stats);
      break;
    }
    default: {
      // Composition: embed(condense(.)) — nested GatherExpr row protocols.
      bool ok = true;
      for (std::size_t d = 0; d < 3; ++d) {
        if (base.extent(d) < 2) ok = false;
      }
      if (ok) {
        auto inner = sac::lazy_condense(2, a, rng.range(0, 1));
        const Shape cs = inner.shape();
        IndexVec shp2(3), pos(3);
        for (std::size_t d = 0; d < 3; ++d) {
          shp2[d] = cs.extent(d) + rng.range(0, 3);
          pos[d] = rng.range(0, shp2[d] - cs.extent(d));
        }
        fuzz_expr_backends(sac::lazy_embed(shp2, pos, std::move(inner)),
                           stats);
      }
      break;
    }
  }
}

// Degenerate stencil grids under the planes row path: extents 3..5 give
// interiors that are empty along some axes or a single point (the
// gen_interior regression class from the planes engine work).
void fuzz_degenerate_stencils(Rng& rng, BackendFuzzStats* stats) {
  const Shape shp{rng.range(3, 5), rng.range(3, 5), rng.range(3, 5)};
  std::uint64_t salt = rng.next();
  sac::Array<double> a =
      sac::with_genarray<double>(shp, [&](const IndexVec& iv) {
        const auto lin = static_cast<std::uint64_t>(shp.linearize(iv));
        return static_cast<double>((lin * 2654435761ULL + salt) % 1000) /
               997.0;
      });
  sac::StencilCoeffs c{{-0.5, 0.125, 0.0625, 0.03125}};
  sac::SacConfig cfg = sac::config();
  cfg.stencil_planes_cutover = 0;
  cfg.stencil_mode = sac::StencilMode::kPlanes;
  sac::ScopedConfig guard(cfg);
  sac::Array<double> ref;
  {
    sac::SacConfig scalar_cfg = sac::config();
    scalar_cfg.backend = sac::BackendKind::kScalar;
    sac::ScopedConfig scalar_guard(scalar_cfg);
    ref = sac::relax_kernel(a, c, sac::StencilMode::kPlanes);
  }
  for (const sac::BackendKind kind :
       {sac::BackendKind::kSimd, sac::BackendKind::kSimdPortable}) {
    sac::SacConfig k_cfg = sac::config();
    k_cfg.backend = kind;
    sac::ScopedConfig k_guard(k_cfg);
    const sac::Array<double> got =
        sac::relax_kernel(a, c, sac::StencilMode::kPlanes);
    stats->exprs_checked += 1;
    bool ok = true;
    for (extent_t i = 0; ok && i < got.elem_count(); ++i) {
      const double x = got.at_linear(i), y = ref.at_linear(i);
      ok = std::memcmp(&x, &y, sizeof(double)) == 0;
    }
    if (!ok) stats->mismatches += 1;
  }
}

}  // namespace

BackendFuzzStats fuzz_backend_rows(std::uint64_t seed, int rounds) {
  Rng rng{seed | 1};
  BackendFuzzStats stats;
  const auto engines = fuzz_engines();
  for (int r = 0; r < rounds; ++r) {
    fuzz_primitives(rng, engines, &stats);
    fuzz_gather_rows(rng, &stats);
    fuzz_degenerate_stencils(rng, &stats);
  }
  return stats;
}

}  // namespace sacpp::check
