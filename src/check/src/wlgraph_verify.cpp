#include "sacpp/check/wlgraph_verify.hpp"

#include <set>
#include <sstream>
#include <string>

#include "sacpp/common/error.hpp"
#include "sacpp/common/index_space.hpp"

namespace sacpp::check {

namespace {

using sac::wl::AffineMap;
using sac::wl::EwiseFn;
using sac::wl::Node;
using sac::wl::NodeRef;
using sac::wl::OpKind;

const char* kind_name(OpKind k) {
  switch (k) {
    case OpKind::kInput:
      return "input";
    case OpKind::kConst:
      return "const";
    case OpKind::kEwise:
      return "ewise";
    case OpKind::kStencil:
      return "stencil";
    case OpKind::kGather:
      return "gather";
  }
  return "?";
}

std::size_t expected_arity(const Node& n) {
  switch (n.kind) {
    case OpKind::kInput:
    case OpKind::kConst:
      return 0;
    case OpKind::kStencil:
    case OpKind::kGather:
      return 1;
    case OpKind::kEwise:
      switch (n.fn) {
        case EwiseFn::kAdd:
        case EwiseFn::kSub:
        case EwiseFn::kMul:
          return 2;
        case EwiseFn::kNeg:
        case EwiseFn::kAbs:
        case EwiseFn::kScale:
          return 1;
      }
      return 1;
  }
  return 0;
}

// Does any source index along one axis survive the affine map?  The map is
// monotone in iv (num >= 1), so scanning the axis extent suffices; the scan
// is capped for pathological extents (then we stay silent rather than
// guess).
constexpr extent_t kAxisScanCap = 1 << 16;

enum class AxisReach { kSome, kNone, kUnknown };

AxisReach axis_reaches_source(const AffineMap& m, std::size_t axis,
                              extent_t out_extent, extent_t src_extent) {
  if (out_extent <= 0) return AxisReach::kNone;
  const extent_t scan = out_extent < kAxisScanCap ? out_extent : kAxisScanCap;
  for (extent_t iv = 0; iv < scan; ++iv) {
    const extent_t scaled = iv * m.num + m.pre;
    if (m.den != 1 && (scaled % m.den != 0 || scaled < 0)) continue;
    const extent_t src = scaled / m.den + m.offset[axis];
    if (src >= 0 && src < src_extent) return AxisReach::kSome;
    if (src >= src_extent && m.den == 1) break;  // monotone: only grows
  }
  return scan < out_extent ? AxisReach::kUnknown : AxisReach::kNone;
}

struct Verifier {
  std::vector<Diagnostic> diags;
  std::set<const Node*> visited;

  void error(const std::string& path, std::string msg) {
    diags.push_back(Diagnostic{Severity::kError, Pass::kWlGraph, path,
                               std::move(msg)});
  }
  void warning(const std::string& path, std::string msg) {
    diags.push_back(Diagnostic{Severity::kWarning, Pass::kWlGraph, path,
                               std::move(msg)});
  }

  void visit(const Node* n, const std::string& path) {
    if (!visited.insert(n).second) return;  // shared subgraph: checked once

    // arity and child presence first; a wrong arity makes the remaining
    // checks meaningless for this node.
    for (std::size_t i = 0; i < n->args.size(); ++i) {
      if (n->args[i] == nullptr) {
        error(path, std::string(kind_name(n->kind)) + " node has null child " +
                        std::to_string(i));
        return;
      }
    }
    const std::size_t want = expected_arity(*n);
    if (n->args.size() != want) {
      std::ostringstream os;
      os << kind_name(n->kind) << " node expects " << want << " argument"
         << (want == 1 ? "" : "s") << ", has " << n->args.size();
      error(path, os.str());
      return;
    }

    switch (n->kind) {
      case OpKind::kInput:
        if (n->name.empty()) error(path, "input node has no name");
        break;
      case OpKind::kConst:
        break;
      case OpKind::kEwise:
        for (std::size_t i = 0; i < n->args.size(); ++i) {
          if (n->args[i]->shape != n->shape) {
            error(path, "element-wise operand " + std::to_string(i) +
                            " shape " + n->args[i]->shape.to_string() +
                            " differs from node shape " +
                            n->shape.to_string());
          }
        }
        break;
      case OpKind::kStencil: {
        const Shape& arg = n->args[0]->shape;
        if (arg != n->shape) {
          error(path, "stencil must preserve shape: argument " +
                          arg.to_string() + " vs node " + n->shape.to_string());
        }
        if (arg.rank() < 1) {
          error(path, "stencil needs rank >= 1");
        }
        for (std::size_t d = 0; d < arg.rank(); ++d) {
          if (arg.extent(d) < 3) {
            std::ostringstream os;
            os << "stencil ghost ring insufficient: axis " << d << " extent "
               << arg.extent(d) << " < 3 (interior +-1 reads leave the array)";
            error(path, os.str());
          }
        }
        break;
      }
      case OpKind::kGather:
        check_gather(n, path);
        break;
    }

    for (std::size_t i = 0; i < n->args.size(); ++i) {
      visit(n->args[i].get(), path + "/arg" + std::to_string(i));
    }
  }

  void check_gather(const Node* n, const std::string& path) {
    const AffineMap& m = n->map;
    const Shape& src = n->args[0]->shape;
    const std::size_t rank = n->shape.rank();
    bool well_formed = true;
    if (src.rank() != rank) {
      std::ostringstream os;
      os << "gather changes rank: source " << src.rank() << " vs result "
         << rank << " (affine maps are per-axis)";
      error(path, os.str());
      well_formed = false;
    }
    if (m.offset.size() != rank) {
      std::ostringstream os;
      os << "affine map offset has rank " << m.offset.size()
         << ", result has rank " << rank
         << " (the evaluator would index past the offset vector)";
      error(path, os.str());
      well_formed = false;
    }
    if (m.den < 1) {
      error(path, "affine map divisor must be >= 1, is " +
                      std::to_string(m.den) + " (division by zero)");
      well_formed = false;
    }
    if (m.num < 1) {
      error(path, "affine map scale must be >= 1, is " + std::to_string(m.num));
      well_formed = false;
    }
    if (!well_formed) return;

    // Out-of-shape source indices provably hit the default branch (the
    // evaluator's contract), so they are safe; but a gather whose whole
    // result is the default value never reads its source at all.
    if (n->shape.elem_count() == 0) return;
    bool all_axes_reach = true;
    for (std::size_t d = 0; d < rank; ++d) {
      const AxisReach r =
          axis_reaches_source(m, d, n->shape.extent(d), src.extent(d));
      if (r == AxisReach::kUnknown) return;  // extent too large to decide
      if (r == AxisReach::kNone) {
        all_axes_reach = false;
        break;
      }
    }
    if (!all_axes_reach) {
      warning(path,
              "dead source: no result index maps into the source shape, the "
              "entire gather evaluates to the default value " +
                  std::to_string(n->dflt));
    }
  }
};

}  // namespace

std::vector<Diagnostic> verify_graph(const sac::wl::NodeRef& root) {
  Verifier v;
  if (root == nullptr) {
    v.error("root", "null graph");
    return std::move(v.diags);
  }
  v.visit(root.get(), "root");
  return std::move(v.diags);
}

std::size_t verify_graph(const sac::wl::NodeRef& root,
                         DiagnosticEngine& engine) {
  std::vector<Diagnostic> ds = verify_graph(root);
  const std::size_t n = ds.size();
  engine.report_all(std::move(ds));
  return n;
}

// ---------------------------------------------------------------------------
// Generator partitions
// ---------------------------------------------------------------------------

namespace {
constexpr extent_t kPartitionCheckLimit = extent_t{1} << 24;
}

std::vector<Diagnostic> verify_partitions(const Shape& shape,
                                          const std::vector<sac::Gen>& gens,
                                          PartitionMode mode) {
  std::vector<Diagnostic> diags;
  const extent_t total = shape.elem_count();
  if (total > kPartitionCheckLimit) {
    diags.push_back(Diagnostic{
        Severity::kWarning, Pass::kWlGraph, "partitions",
        "index space " + shape.to_string() +
            " too large for the exact partition check; skipped"});
    return diags;
  }

  // Exact coverage map: owner partition + 1 per cell (0 = uncovered).  The
  // generator walk is the same odometer the with-loop engine uses, so
  // step/width grids are handled exactly.
  std::vector<std::uint32_t> owner(static_cast<std::size_t>(total), 0);
  extent_t covered = 0;
  for (std::size_t p = 0; p < gens.size(); ++p) {
    sac::detail::ResolvedGen g;
    try {
      g = sac::detail::resolve(gens[p], shape);
    } catch (const ContractError& e) {
      diags.push_back(Diagnostic{Severity::kError, Pass::kWlGraph,
                                 "partition " + std::to_string(p),
                                 std::string("invalid generator: ") +
                                     e.what()});
      continue;
    }
    bool overlap_reported = false;
    extent_t overlap_count = 0;
    for_each_index_grid(
        g.lower, g.upper, g.step, g.width, [&](const IndexVec& iv) {
          const auto cell = static_cast<std::size_t>(shape.linearize(iv));
          if (owner[cell] != 0) {
            ++overlap_count;
            if (!overlap_reported) {
              overlap_reported = true;
              diags.push_back(Diagnostic{
                  Severity::kError, Pass::kWlGraph,
                  "partition " + std::to_string(p),
                  "overlaps partition " + std::to_string(owner[cell] - 1) +
                      ", first at index " + Shape(iv).to_string()});
            }
          } else {
            owner[cell] = static_cast<std::uint32_t>(p) + 1;
            ++covered;
          }
        });
    if (overlap_count > 1) {
      diags.back().message +=
          " (" + std::to_string(overlap_count) + " cells total)";
    }
  }

  if (mode == PartitionMode::kTiling && covered != total) {
    diags.push_back(Diagnostic{
        Severity::kError, Pass::kWlGraph, "partitions",
        std::to_string(total - covered) + " of " + std::to_string(total) +
            " cells of " + shape.to_string() +
            " are not covered by any partition"});
  }
  return diags;
}

}  // namespace sacpp::check
