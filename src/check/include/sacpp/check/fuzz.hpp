#pragma once
// Fuzzing harness for the with-loop graph verifier.
//
// Each round composes a random *legal* graph through the public builders
// (which enforce the invariants by construction), then derives *illegal*
// graphs from it by hand-assembling nodes that violate exactly one
// invariant.  The verifier must stay silent on every legal graph and flag
// every illegal one; legal graphs are additionally evaluated both naively
// and optimised and the values compared, so a verifier bug and an optimiser
// bug cannot mask each other.
//
// Deterministic in `seed` (tests pin seeds; no global RNG state).

#include <cstdint>

namespace sacpp::check {

struct FuzzStats {
  int legal_graphs = 0;
  int legal_flagged = 0;    // verifier false positives — must stay 0
  int illegal_graphs = 0;
  int illegal_missed = 0;   // verifier false negatives — must stay 0
  int eval_mismatches = 0;  // optimised vs naive disagreements — must stay 0

  bool clean() const {
    return legal_flagged == 0 && illegal_missed == 0 && eval_mismatches == 0;
  }
};

FuzzStats fuzz_wlgraph_verifier(std::uint64_t seed, int rounds);

// Backend row-primitive fuzzer (docs/backends.md).  Each round draws
// adversarial row lengths and sub-ranges around the 4-lane vector width
// (0, 1, width-1, width, width+1, primes, empty ranges) and
//  * runs every row primitive on every available engine (scalar, portable,
//    AVX2 where the host has it), comparing element-parallel results
//    bitwise and fold results to tolerance — masked-tail bugs show up as
//    `mismatches`;
//  * forces random gather/scatter/take/embed compositions and degenerate
//    stencil grids (the gen_interior regression class: interiors that are
//    empty or a single point) under every backend, comparing against
//    per-point evaluation — row-range algebra bugs show up here too.
struct BackendFuzzStats {
  int rows_checked = 0;     // primitive (engine, row) comparisons performed
  int exprs_checked = 0;    // whole-expression backend comparisons performed
  int mismatches = 0;       // bitwise divergences — must stay 0
  int fold_mismatches = 0;  // fold drift beyond 1e-12 — must stay 0

  bool clean() const { return mismatches == 0 && fold_mismatches == 0; }
};

BackendFuzzStats fuzz_backend_rows(std::uint64_t seed, int rounds);

}  // namespace sacpp::check
