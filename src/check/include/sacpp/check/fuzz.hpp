#pragma once
// Fuzzing harness for the with-loop graph verifier.
//
// Each round composes a random *legal* graph through the public builders
// (which enforce the invariants by construction), then derives *illegal*
// graphs from it by hand-assembling nodes that violate exactly one
// invariant.  The verifier must stay silent on every legal graph and flag
// every illegal one; legal graphs are additionally evaluated both naively
// and optimised and the values compared, so a verifier bug and an optimiser
// bug cannot mask each other.
//
// Deterministic in `seed` (tests pin seeds; no global RNG state).

#include <cstdint>

namespace sacpp::check {

struct FuzzStats {
  int legal_graphs = 0;
  int legal_flagged = 0;    // verifier false positives — must stay 0
  int illegal_graphs = 0;
  int illegal_missed = 0;   // verifier false negatives — must stay 0
  int eval_mismatches = 0;  // optimised vs naive disagreements — must stay 0

  bool clean() const {
    return legal_flagged == 0 && illegal_missed == 0 && eval_mismatches == 0;
  }
};

FuzzStats fuzz_wlgraph_verifier(std::uint64_t seed, int rounds);

}  // namespace sacpp::check
