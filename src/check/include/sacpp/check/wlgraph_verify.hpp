#pragma once
// Static verification of with-loop graphs and generator partitions.
//
// The with-loop DAG (sac/wlgraph.hpp) is rewritten aggressively by the
// folding optimiser; one bad rewrite would silently corrupt results.  This
// pass re-derives the structural invariants every legal graph must satisfy
// and reports violations as diagnostics with a node-path location
// ("root/arg0/arg1"), without evaluating anything:
//
//  * arity and operand kinds per OpKind (ewise fn arity, single-child
//    stencil/gather, leaf inputs/consts);
//  * shape consistency: element-wise children share the node's shape,
//    stencils preserve shape, gathers keep rank;
//  * affine-map well-formedness: positive scale and divisor, per-axis
//    offset of matching rank (a mismatch would crash the evaluator);
//  * stencil ghost ring: every argument extent >= 3, so the +-1 neighbour
//    reads of interior points stay in bounds;
//  * gather reachability: an index that leaves the source shape provably
//    hits the default branch (that is the evaluator's contract); a gather
//    whose *entire* result is the default value never reads its source and
//    is flagged as a dead-source warning.
//
// verify_partitions checks that a set of with-loop generator partitions
// (step/width grids included) is pairwise disjoint over a result shape and,
// in tiling mode, covers it exactly — the invariant multi-partition
// with-loops (border setup) and the MT runtime's chunking both rely on.

#include <vector>

#include "sacpp/check/diagnostics.hpp"
#include "sacpp/common/shape.hpp"
#include "sacpp/sac/wlgraph.hpp"
#include "sacpp/sac/with_loop.hpp"

namespace sacpp::check {

// Verify one with-loop graph; returns all diagnostics found (empty = clean).
// Shared subgraphs are verified once, under the first path that reaches them.
std::vector<Diagnostic> verify_graph(const sac::wl::NodeRef& root);

// Same, reporting into an engine; returns the number of diagnostics added.
std::size_t verify_graph(const sac::wl::NodeRef& root,
                         DiagnosticEngine& engine);

enum class PartitionMode {
  kDisjoint,  // partitions must not overlap
  kTiling,    // disjoint and jointly covering the whole index space
};

// Verify that `gens` partitions the index space of `shape` (exact, walks the
// generators; index spaces above ~16M elements are skipped with a warning).
std::vector<Diagnostic> verify_partitions(const Shape& shape,
                                          const std::vector<sac::Gen>& gens,
                                          PartitionMode mode);

}  // namespace sacpp::check
