#pragma once
// Schedule-exploring checker: a PCT-style randomized-preemption harness
// (docs/static_analysis.md).
//
// Concurrency bugs in admission/dispatch state machines hide in specific
// interleavings a handful of TSan runs never produce.  This harness makes
// the interleaving itself the fuzzed input: a scenario is a set of tasks,
// each an ordered list of atomic steps (operations on the object under
// test); the explorer runs the scenario under thousands of schedules, each
// derived deterministically from a seed using the probabilistic concurrency
// testing discipline (Burckhardt et al.): random task priorities plus d
// random preemption points, which provably hits any depth-d ordering bug
// with good probability.  Steps execute serialized (one at a time), so the
// explorer controls exactly which operation-order the object observes and a
// failure is a pure function of the seed.
//
// Invariants are asserted inside steps or in the scenario's `finally` hook;
// any exception (SACPP_REQUIRE's ContractError, a gtest-independent
// std::logic_error, std::future_error from a double-settled promise) fails
// the schedule.  A failure reports the seed; replay(seed) re-runs that
// exact interleaving, which is what the regression tests pin.
//
// serve::run_schedule_check builds the AdmissionQueue / SolverService
// scenarios on top of this harness.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sacpp/check/diagnostics.hpp"

namespace sacpp::check {

// SplitMix64: tiny, seedable, and stable across platforms — schedules must
// replay bit-identically from a seed on any machine.
class ScheduleRng {
 public:
  explicit ScheduleRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n); n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

struct ScheduleOptions {
  std::uint64_t schedules = 1000;  // seeds explored per run()
  std::uint64_t first_seed = 1;    // schedule i uses seed first_seed + i
  int preemptions = 3;             // PCT depth (priority-change points)
  bool stop_on_failure = true;
};

struct ScheduleTask {
  std::string name;
  std::vector<std::function<void()>> steps;
};

// A fresh scenario is built per schedule so state never leaks between
// seeds.  The builder receives the schedule's seed: scenarios may use it to
// diversify their *operation mix* (priorities, deadlines) on top of the
// interleaving diversity the explorer provides.
struct ScheduleScenario {
  std::vector<ScheduleTask> tasks;
  std::function<void()> finally;  // end-of-schedule invariants (may be null)
};

using ScenarioBuilder = std::function<ScheduleScenario(std::uint64_t seed)>;

struct ScheduleReport {
  std::uint64_t schedules_run = 0;
  std::uint64_t steps_run = 0;
  bool failed = false;
  std::uint64_t failing_seed = 0;
  std::string failure;         // first failure's what()
  std::string failing_task;    // task (or "finally") that threw

  // The exact interleaving of the LAST schedule executed, as task indices in
  // execution order — replay asserts on this to pin a schedule.
  std::vector<std::size_t> last_interleaving;
};

class ScheduleExplorer {
 public:
  explicit ScheduleExplorer(ScheduleOptions opts = {});

  // Explore opts.schedules seeds.  Failures are reported into `engine`
  // (Pass::kSchedule) with the seed required to replay them.
  ScheduleReport run(const ScenarioBuilder& build,
                     DiagnosticEngine* engine = nullptr);

  // Re-run exactly one seed's interleaving (deterministic: same seed + same
  // builder => same step order, recorded in last_interleaving).
  ScheduleReport replay(std::uint64_t seed, const ScenarioBuilder& build,
                        DiagnosticEngine* engine = nullptr);

  const ScheduleOptions& options() const noexcept { return opts_; }

 private:
  bool run_one(std::uint64_t seed, const ScenarioBuilder& build,
               ScheduleReport* report, DiagnosticEngine* engine);

  ScheduleOptions opts_;
};

}  // namespace sacpp::check
