#pragma once
// Session-typed channels: a protocol-spec IR plus two enforcement layers
// (docs/static_analysis.md).
//
// Grounded in the session-types programme of Bejleri/Hu/Yoshida
// (Session-Based Programming for Parallel Algorithms, PAPERS.md): a channel's
// legal send/recv sequence is a first-class specification, and an endpoint
// that deviates is rejected — at compile time where the call structure is
// static, at run time where frames arrive from a peer.
//
//  1. SessionSpec — a small state machine over typed events: each transition
//     says "in state S, this endpoint may send/recv a frame of kind K
//     (optionally a specific choice branch), moving to state T".  Loops are
//     transitions back to an earlier state; choices are multiple transitions
//     from one state distinguished by branch.  The serve wire protocol
//     (SRQ1 request -> SRS1 response with ok/shed/reject branches) and the
//     msg::World collectives are expressed as specs in serve::selfcheck and
//     collective_session_spec below.
//
//  2. TypedChannel<Transport, Proto> — the static layer.  The remaining
//     protocol is carried in the *type*: send()/recv() exist only when the
//     protocol's head step permits them, and each op consumes the channel
//     (rvalue-qualified) and returns one typed with the tail.  Sending out
//     of order is a compile error, not a runtime finding.
//
//  3. SessionMonitor — the dynamic layer, behind SacConfig::check.  A
//     monitor bound to the current thread (MonitorBinding) observes every
//     serve::send_frame / recv_frame and validates it against the spec,
//     reporting duplicate, out-of-order, and premature-termination events —
//     plus, on finish(), transitions the traffic never exercised (dead
//     branches) — through the DiagnosticEngine.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sacpp/check/diagnostics.hpp"

namespace sacpp::check {

// ---------------------------------------------------------------------------
// Protocol-spec IR
// ---------------------------------------------------------------------------

enum class Dir : std::uint8_t { kSend, kRecv };

const char* dir_name(Dir d) noexcept;

// Branch discriminator for choice transitions; kAnyBranch matches every
// observed branch (used by requests, which carry no choice).
inline constexpr std::uint32_t kAnyBranch = 0xffffffffu;

struct SessionSpec {
  struct Transition {
    int from = 0;
    Dir dir = Dir::kSend;
    std::uint32_t kind = 0;          // frame kind (e.g. the wire magic)
    std::uint32_t branch = kAnyBranch;  // choice label, kAnyBranch = all
    int to = 0;
    std::string label;               // human name for diagnostics
  };

  std::string name;
  int start = 0;
  std::vector<Transition> transitions;
  std::vector<int> accepting;  // states in which the session may end

  // Index into `transitions` of the transition matching (dir, kind, branch)
  // from `state`; -1 when the event is illegal there.  A transition with
  // branch == kAnyBranch matches any observed branch; an exact branch match
  // wins over a wildcard.
  int match(int state, Dir dir, std::uint32_t kind,
            std::uint32_t branch = kAnyBranch) const;

  bool accepts(int state) const;

  // "send(SRQ1) -> 1 | ..." — what the spec allows from `state`, for
  // diagnostics.
  std::string describe_state(int state) const;
};

// Session spec of one msg::World collective, per peer session with the root:
// a broadcast is root:send(bcast) / leaf:recv(bcast), optionally repeated.
// `kind` is the collective's reserved-tag magnitude (1000 for broadcast,
// 1001 gather, 1002 scatter — msg.cpp's reserved tags, negated).
SessionSpec collective_session_spec(const std::string& collective,
                                    std::uint32_t kind, Dir root_dir);

// ---------------------------------------------------------------------------
// Runtime conformance monitor
// ---------------------------------------------------------------------------

class SessionMonitor {
 public:
  // `endpoint` names the monitored side in diagnostics ("client", "rank0").
  // The spec must outlive the monitor.
  SessionMonitor(const SessionSpec* spec, std::string endpoint);

  // Observe one channel event; illegal events are reported and the state is
  // left unchanged (so one slip does not cascade into noise).
  void on_event(Dir dir, std::uint32_t kind,
                std::uint32_t branch = kAnyBranch);

  // End of session: report a non-accepting final state (premature
  // termination) and, when `report_dead` (default), spec transitions the
  // session never took — dead protocol branches the traffic cannot reach.
  void finish(bool report_dead = true);

  int state() const noexcept { return state_; }
  std::uint64_t events() const noexcept { return events_; }
  bool clean() const { return engine_.empty(); }

  DiagnosticEngine& engine() { return engine_; }
  const DiagnosticEngine& engine() const { return engine_; }

 private:
  const SessionSpec* spec_;
  std::string endpoint_;
  int state_;
  std::uint64_t events_ = 0;
  std::vector<std::uint64_t> taken_;  // per-transition exercise counts
  Dir last_dir_ = Dir::kSend;
  std::uint32_t last_kind_ = 0;
  bool have_last_ = false;
  DiagnosticEngine engine_;
};

// Binds a monitor to the calling thread for the duration of a scope; while
// bound (and SacConfig::check is on) serve::send_frame / recv_frame feed it
// through note_channel_event.  Bindings nest, innermost wins.
class MonitorBinding {
 public:
  explicit MonitorBinding(SessionMonitor* monitor) noexcept;
  ~MonitorBinding();
  MonitorBinding(const MonitorBinding&) = delete;
  MonitorBinding& operator=(const MonitorBinding&) = delete;

 private:
  SessionMonitor* prev_;
};

// The monitor bound to the calling thread (nullptr when none).  Transport
// layers call note_channel_event at every frame boundary; it is a no-op
// without a binding, so the probe costs one thread-local read.
SessionMonitor* bound_monitor() noexcept;
void note_channel_event(Dir dir, std::uint32_t kind,
                        std::uint32_t branch = kAnyBranch) noexcept;

// ---------------------------------------------------------------------------
// Compile-time typed channels
// ---------------------------------------------------------------------------
//
// The protocol is a type-level sequence of steps.  A TypedChannel owns a
// transport (anything with `void send(u32 kind, span-like)` and
// `Payload recv(u32 kind)`) and exposes only the operation the head step
// permits; every op is rvalue-qualified and returns the channel retyped with
// the protocol tail, so a stale (already-advanced) channel state cannot be
// reused and an out-of-order op does not compile.
//
//   using Proto = proto::Seq<proto::Send<kRequestMagic>,
//                            proto::Recv<kResultMagic>>;
//   auto c0 = make_typed_channel<Proto>(transport);
//   auto c1 = std::move(c0).send(frame);   // only send compiles here
//   auto c2 = std::move(c1).recv(&reply);  // only recv compiles here
//   static_assert(decltype(c2)::kDone);

namespace proto {

template <std::uint32_t Kind>
struct Send {};

template <std::uint32_t Kind>
struct Recv {};

template <typename... Steps>
struct Seq {};

}  // namespace proto

template <typename Transport, typename Proto>
class TypedChannel;

// Completed protocol: no operations left.
template <typename Transport>
class TypedChannel<Transport, proto::Seq<>> {
 public:
  static constexpr bool kDone = true;
  explicit TypedChannel(Transport* t) noexcept : transport_(t) {}
  Transport* transport() const noexcept { return transport_; }

 private:
  Transport* transport_;
};

// Head step is a send.
template <typename Transport, std::uint32_t Kind, typename... Rest>
class TypedChannel<Transport, proto::Seq<proto::Send<Kind>, Rest...>> {
 public:
  static constexpr bool kDone = false;
  explicit TypedChannel(Transport* t) noexcept : transport_(t) {}

  template <typename Frame>
  TypedChannel<Transport, proto::Seq<Rest...>> send(const Frame& frame) && {
    transport_->send(Kind, frame);
    return TypedChannel<Transport, proto::Seq<Rest...>>(transport_);
  }

  Transport* transport() const noexcept { return transport_; }

 private:
  Transport* transport_;
};

// Head step is a recv.
template <typename Transport, std::uint32_t Kind, typename... Rest>
class TypedChannel<Transport, proto::Seq<proto::Recv<Kind>, Rest...>> {
 public:
  static constexpr bool kDone = false;
  explicit TypedChannel(Transport* t) noexcept : transport_(t) {}

  template <typename Out>
  TypedChannel<Transport, proto::Seq<Rest...>> recv(Out* out) && {
    *out = transport_->recv(Kind);
    return TypedChannel<Transport, proto::Seq<Rest...>>(transport_);
  }

  Transport* transport() const noexcept { return transport_; }

 private:
  Transport* transport_;
};

template <typename Proto, typename Transport>
TypedChannel<Transport, Proto> make_typed_channel(Transport& transport) {
  return TypedChannel<Transport, Proto>(&transport);
}

}  // namespace sacpp::check
