#pragma once
// Structured diagnostics for the sacpp_check verification passes.
//
// Every checker — the with-loop graph verifier, the uniqueness/alias
// checker, and the parallel-region race detector — reports findings as
// Diagnostic values: severity, originating pass, a location (node path,
// buffer, or region/worker), and a message.  A DiagnosticEngine collects
// them and renders the table/CSV reports printed by the `--check` flag of
// the MG driver and asserted on by the checker tests.

#include <cstddef>
#include <string>
#include <vector>

#include "sacpp/common/table.hpp"

namespace sacpp::check {

enum class Severity { kWarning, kError };

enum class Pass {
  kWlGraph,    // static with-loop graph / generator-partition verification
  kAlias,      // uniqueness / alias checking of buffer reuse
  kRace,       // parallel-region write-interval and ownership checking
  kSession,    // session-typed channel conformance (protocol monitor)
  kLockOrder,  // lock-acquisition-order cycle analysis
  kSchedule,   // schedule-exploring state-machine checker
};

const char* severity_name(Severity s);
const char* pass_name(Pass p);

struct Diagnostic {
  Severity severity = Severity::kError;
  Pass pass = Pass::kWlGraph;
  std::string location;
  std::string message;

  // "error [wlgraph] root/arg0: ..." — one line, for logs and gtest output.
  std::string to_string() const;
};

class DiagnosticEngine {
 public:
  void report(Diagnostic d);
  void report(Severity severity, Pass pass, std::string location,
              std::string message);
  void report_all(std::vector<Diagnostic> ds);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }
  std::size_t size() const { return diags_.size(); }
  std::size_t count(Severity s) const;
  std::size_t count(Pass p) const;
  void clear() { diags_.clear(); }

  // Reporting through sacpp_common's table machinery: an aligned ASCII
  // table for humans, CSV for tooling.
  Table to_table() const;
  std::string to_ascii(const std::string& title = "sacpp_check") const;
  void write_csv(const std::string& path) const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace sacpp::check
