#pragma once
// Runtime verification passes: uniqueness/alias checking and the
// parallel-region race detector.
//
// Both passes analyse the raw event records the array system accumulates in
// checked mode (sac/check_events.hpp):
//
//  * analyze_buffer_events — in-place writes that bypassed copy-on-write
//    while the buffer was aliased (SAC's use-after-steal: the write is
//    visible through every alias);
//  * analyze_parallel_regions — per region, each worker's written
//    outer-axis interval (intervals, not per-element shadow memory: the MT
//    runtime hands out contiguous chunks).  Write/write overlap between
//    workers, uncovered gaps, misaligned chunk starts (which break strided
//    generators' phase), and buffer ownership mutations performed off the
//    coordinating thread are all reported;
//  * analyze_allocation_balance — end-of-run allocation/release imbalance
//    against the always-on live-buffer gauge: a positive delta is a leak, a
//    negative one an over-release.
//
// Session is the RAII driver: it clears the event log, switches checked
// mode on, and on finish() runs every runtime pass into its engine.  The MG
// driver's --check flag and the checker tests both use it.

#include <cstdint>
#include <vector>

#include "sacpp/check/diagnostics.hpp"

namespace sacpp::check {

std::vector<Diagnostic> analyze_buffer_events();
std::vector<Diagnostic> analyze_parallel_regions();

// Compare the live-buffer gauge against `expected_live` (typically the
// gauge value captured before the run under test).
std::vector<Diagnostic> analyze_allocation_balance(std::int64_t expected_live);

class Session {
 public:
  // Clears the event log and enables SacConfig::check; the previous value is
  // restored on destruction.
  Session();
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Run all runtime passes over the events recorded since construction and
  // collect the results; clears the event log.  Call after the arrays under
  // test have been released so the allocation balance is meaningful.
  DiagnosticEngine& finish();

  DiagnosticEngine& engine() { return engine_; }

 private:
  DiagnosticEngine engine_;
  std::int64_t live_at_start_;
  bool saved_check_;
  bool finished_ = false;
};

}  // namespace sacpp::check
