#pragma once
// Umbrella header for sacpp_check: static and runtime verification of the
// array subsystem (docs/static_analysis.md).
//
//   diagnostics.hpp     structured Diagnostic + DiagnosticEngine reporter
//   wlgraph_verify.hpp  with-loop graph and generator-partition verifier
//   runtime_check.hpp   alias/uniqueness checker, race detector, Session
//   fuzz.hpp            verifier fuzzing harness
//
// Checked mode is off by default; enable per-run with SACPP_CHECK=1 (or the
// MG driver's --check flag), or programmatically with check::Session.

#include "sacpp/check/diagnostics.hpp"
#include "sacpp/check/fuzz.hpp"
#include "sacpp/check/runtime_check.hpp"
#include "sacpp/check/wlgraph_verify.hpp"
