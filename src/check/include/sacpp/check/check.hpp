#pragma once
// Umbrella header for sacpp_check: static and runtime verification of the
// array subsystem (docs/static_analysis.md).
//
//   diagnostics.hpp     structured Diagnostic + DiagnosticEngine reporter
//   wlgraph_verify.hpp  with-loop graph and generator-partition verifier
//   runtime_check.hpp   alias/uniqueness checker, race detector, Session
//   fuzz.hpp            verifier fuzzing harness
//   session.hpp         session-typed channels: spec IR, TypedChannel,
//                       runtime conformance monitor
//   lockorder.hpp       lock-acquisition-order cycle analysis
//   schedule.hpp        PCT-style schedule-exploring checker
//
// Checked mode is off by default; enable per-run with SACPP_CHECK=1 (or the
// MG driver's --check flag / --check=<pass> selector), or programmatically
// with check::Session / check::LockOrderSession.

#include "sacpp/check/diagnostics.hpp"
#include "sacpp/check/fuzz.hpp"
#include "sacpp/check/lockorder.hpp"
#include "sacpp/check/runtime_check.hpp"
#include "sacpp/check/schedule.hpp"
#include "sacpp/check/session.hpp"
#include "sacpp/check/wlgraph_verify.hpp"
