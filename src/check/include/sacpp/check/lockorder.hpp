#pragma once
// Lock-order analysis pass: turns the happens-before lock graph recorded by
// sacpp::LockRegistry (common/lockorder.hpp) into structured diagnostics,
// and exports the graph through the obs exporters
// (docs/static_analysis.md).
//
// The instrumented locks — the serve dispatch lock, the AdmissionQueue
// mutex, the pool depot shards, the msg mailbox/barrier/stats locks — record
// an edge A -> B whenever a thread acquires B while holding A.  A cycle in
// the recorded graph is a potential deadlock even if no deadlock fired
// during the run: two threads need only take the participating locks in the
// recorded (opposing) orders at the same time.

#include <string>
#include <vector>

#include "sacpp/check/diagnostics.hpp"

namespace sacpp::check {

// One diagnostic per lock-order cycle found in the registry's recorded
// graph, naming the full lock path ("serve.dispatch -> serve.queue ->
// serve.dispatch").  Empty result == the recorded orders admit a total
// order.
std::vector<Diagnostic> analyze_lock_order();

// Graphviz dump of the recorded lock graph; returns false when the file
// cannot be opened (no-op on an empty path, returning true).
bool write_lock_graph(const std::string& path);

// Register the lock-graph gauges (sacpp_check_lock_classes / _edges /
// _cycles) with the obs metric collectors; idempotent.
void register_lock_collector();

// RAII analysis window: clears previously recorded edges, enables tracing
// (restoring the prior state on destruction), and registers the obs
// collector.  finish() runs analyze_lock_order into the engine.
class LockOrderSession {
 public:
  LockOrderSession();
  ~LockOrderSession();
  LockOrderSession(const LockOrderSession&) = delete;
  LockOrderSession& operator=(const LockOrderSession&) = delete;

  DiagnosticEngine& finish();
  DiagnosticEngine& engine() { return engine_; }

 private:
  DiagnosticEngine engine_;
  bool prev_enabled_;
  bool finished_ = false;
};

}  // namespace sacpp::check
