#include "sacpp/obs/obs.hpp"

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "sacpp/obs/trace.hpp"

namespace sacpp::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<std::uint32_t> g_probe_mask{kAllProbes};
thread_local TraceContext tl_trace;
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

namespace {

std::chrono::steady_clock::time_point epoch() noexcept {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

}  // namespace

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch())
      .count();
}

void set_enabled(bool on) noexcept {
  (void)epoch();  // prime the epoch before the first span
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_probe_mask(std::uint32_t mask) noexcept {
  detail::g_probe_mask.store(mask, std::memory_order_relaxed);
}

std::uint32_t probe_mask() noexcept {
  return detail::g_probe_mask.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Names
// ---------------------------------------------------------------------------

const char* span_kind_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kWithLoop: return "with_loop";
    case SpanKind::kFold: return "fold";
    case SpanKind::kParallelRegion: return "parallel_region";
    case SpanKind::kWorkerChunk: return "worker_chunk";
    case SpanKind::kPoolAlloc: return "pool_alloc";
    case SpanKind::kPoolRelease: return "pool_release";
    case SpanKind::kLevel: return "level";
    case SpanKind::kKernel: return "kernel";
    case SpanKind::kMsgSend: return "msg_send";
    case SpanKind::kCollective: return "collective";
    case SpanKind::kPhase: return "phase";
    case SpanKind::kNetFrame: return "net_frame";
  }
  return "?";
}

const char* hist_name(Hist h) noexcept {
  switch (h) {
    case Hist::kWithLoopNs: return "sacpp_with_loop_duration_ns";
    case Hist::kFoldNs: return "sacpp_fold_duration_ns";
    case Hist::kRegionNs: return "sacpp_parallel_region_duration_ns";
    case Hist::kChunkNs: return "sacpp_worker_chunk_duration_ns";
    case Hist::kPoolAllocNs: return "sacpp_pool_alloc_duration_ns";
    case Hist::kPoolReleaseNs: return "sacpp_pool_release_duration_ns";
    case Hist::kLevelNs: return "sacpp_level_duration_ns";
    case Hist::kKernelNs: return "sacpp_kernel_duration_ns";
    case Hist::kMsgSendNs: return "sacpp_msg_send_duration_ns";
    case Hist::kCollectiveNs: return "sacpp_collective_duration_ns";
    case Hist::kAllocBytes: return "sacpp_alloc_bytes";
    case Hist::kMsgBytes: return "sacpp_msg_bytes";
    case Hist::kServeQueueNs: return "sacpp_serve_queue_wait_ns";
    case Hist::kServeJobNs: return "sacpp_serve_job_duration_ns";
    case Hist::kServeE2eNs: return "sacpp_serve_e2e_latency_ns";
    case Hist::kJitCompileNs: return "sacpp_jit_compile_ns";
    case Hist::kNetFrameNs: return "sacpp_net_frame_duration_ns";
    case Hist::kCount: break;
  }
  return "?";
}

const char* hist_help(Hist h) noexcept {
  switch (h) {
    case Hist::kWithLoopNs: return "with-loop execution time";
    case Hist::kFoldNs: return "with-loop fold execution time";
    case Hist::kRegionNs: return "parallel region fork..join wall time";
    case Hist::kChunkNs: return "per-worker chunk execution time";
    case Hist::kPoolAllocNs: return "BufferPool::allocate time";
    case Hist::kPoolReleaseNs: return "BufferPool::deallocate time";
    case Hist::kLevelNs: return "V-cycle level visit time";
    case Hist::kKernelNs: return "MG kernel execution time";
    case Hist::kMsgSendNs: return "point-to-point delivery time";
    case Hist::kCollectiveNs: return "msg collective time";
    case Hist::kAllocBytes: return "buffer allocation payload bytes";
    case Hist::kMsgBytes: return "point-to-point payload bytes";
    case Hist::kServeQueueNs: return "solve request time in admission queue";
    case Hist::kServeJobNs: return "solve job execution time";
    case Hist::kServeE2eNs: return "solve request submit-to-done latency";
    case Hist::kJitCompileNs: return "JIT kernel source-to-dlopen latency";
    case Hist::kNetFrameNs: return "socket transport per-frame send/recv time";
    case Hist::kCount: break;
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

namespace {

LogHistogram g_histograms[static_cast<int>(Hist::kCount)];

Hist duration_hist(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kWithLoop: return Hist::kWithLoopNs;
    case SpanKind::kFold: return Hist::kFoldNs;
    case SpanKind::kParallelRegion: return Hist::kRegionNs;
    case SpanKind::kWorkerChunk: return Hist::kChunkNs;
    case SpanKind::kPoolAlloc: return Hist::kPoolAllocNs;
    case SpanKind::kPoolRelease: return Hist::kPoolReleaseNs;
    case SpanKind::kLevel: return Hist::kLevelNs;
    case SpanKind::kKernel: return Hist::kKernelNs;
    case SpanKind::kMsgSend: return Hist::kMsgSendNs;
    case SpanKind::kCollective: return Hist::kCollectiveNs;
    case SpanKind::kPhase: return Hist::kCount;  // no histogram
    case SpanKind::kNetFrame: return Hist::kNetFrameNs;
  }
  return Hist::kCount;
}

}  // namespace

LogHistogram& histogram(Hist h) noexcept {
  return g_histograms[static_cast<int>(h)];
}

// ---------------------------------------------------------------------------
// Thread registry and rings
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 15;

struct ThreadRec {
  std::uint32_t tid = 0;
  std::string name;
  // Spans suppressed by a masked probe (satellite of the overwrite/skip
  // accounting split): counted here because they never reach the ring.
  std::atomic<std::uint64_t> skipped{0};
  std::unique_ptr<SpanRing> ring;  // created on first record
};

struct Registry {
  std::mutex mutex;
  // Owned and never erased: rings must outlive their threads so exports can
  // read them after joins; a registration is a few bytes until the first
  // recorded span allocates the ring.
  std::vector<std::unique_ptr<ThreadRec>> threads;
  std::size_t ring_capacity = kDefaultRingCapacity;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;  // immortal, like the BufferPool
    if (const char* env = std::getenv("SACPP_OBS_RING");
        env != nullptr && env[0] != '\0') {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) reg->ring_capacity = static_cast<std::size_t>(v);
    }
    return reg;
  }();
  return *r;
}

ThreadRec& thread_rec() {
  thread_local ThreadRec* rec = [] {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto owned = std::make_unique<ThreadRec>();
    owned->tid = static_cast<std::uint32_t>(reg.threads.size());
    owned->name = "thread-" + std::to_string(owned->tid);
    reg.threads.push_back(std::move(owned));
    return reg.threads.back().get();
  }();
  return *rec;
}

SpanRing& thread_ring() {
  ThreadRec& rec = thread_rec();
  if (rec.ring == nullptr) {
    Registry& reg = registry();
    std::size_t cap;
    {
      std::lock_guard<std::mutex> lock(reg.mutex);
      cap = reg.ring_capacity;
    }
    rec.ring = std::make_unique<SpanRing>(cap);
  }
  return *rec.ring;
}

}  // namespace

void record_span(SpanKind kind, const char* name, std::int64_t start_ns,
                 std::int64_t dur_ns, std::int64_t arg,
                 std::uint64_t id) noexcept {
  if (!probe_enabled(kind)) {
    detail::note_probe_skip();
    return;
  }
  SpanRecord r;
  r.start_ns = start_ns;
  r.dur_ns = dur_ns;
  r.arg = arg;
  r.id = id;
  r.trace = detail::tl_trace.trace_id;
  r.name = name;
  r.kind = kind;
  thread_ring().push(r);
  const Hist h = duration_hist(kind);
  if (h != Hist::kCount) {
    histogram(h).observe(dur_ns > 0 ? static_cast<std::uint64_t>(dur_ns) : 0);
  }
}

namespace detail {
void note_probe_skip() noexcept {
  thread_rec().skipped.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

void set_thread_name(std::string name) {
  ThreadRec& rec = thread_rec();
  Registry& reg = registry();
  // The registry lock also guards names: snapshot readers copy them under it.
  std::lock_guard<std::mutex> lock(reg.mutex);
  rec.name = std::move(name);
}

std::uint64_t next_region_id() noexcept {
  static std::atomic<std::uint64_t> id{0};
  return id.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::vector<ThreadSpans> snapshot_spans() {
  Registry& reg = registry();
  // Collect the rec pointers under the lock, then read rings lock-free (the
  // vector is append-only and recs are never destroyed).
  std::vector<ThreadRec*> recs;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    recs.reserve(reg.threads.size());
    for (auto& t : reg.threads) recs.push_back(t.get());
  }
  std::vector<ThreadSpans> out;
  out.reserve(recs.size());
  for (ThreadRec* rec : recs) {
    ThreadSpans ts;
    ts.tid = rec->tid;
    {
      std::lock_guard<std::mutex> lock(reg.mutex);
      ts.name = rec->name;
    }
    ts.skipped = rec->skipped.load(std::memory_order_relaxed);
    if (rec->ring != nullptr) {
      ts.recorded = rec->ring->recorded();
      ts.overwritten = rec->ring->overwritten();
      ts.spans = rec->ring->snapshot();
    }
    out.push_back(std::move(ts));
  }
  return out;
}

std::uint64_t total_dropped_spans() {
  std::uint64_t total = 0;
  for (const ThreadSpans& t : snapshot_spans()) total += t.overwritten;
  return total;
}

std::uint64_t total_skipped_spans() {
  std::uint64_t total = 0;
  for (const ThreadSpans& t : snapshot_spans()) total += t.skipped;
  return total;
}

void set_default_ring_capacity(std::size_t capacity) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (capacity > 0) reg.ring_capacity = capacity;
}

// ---------------------------------------------------------------------------
// Level context and per-level region aggregates
// ---------------------------------------------------------------------------

namespace {

thread_local int tl_level = -1;

struct LevelAgg {
  double seconds = 0.0;
  std::uint64_t visits = 0;
  std::uint64_t regions = 0;
  std::int64_t busy_ns = 0;
  std::int64_t idle_ns = 0;
  double imbalance_sum = 0.0;
  std::int64_t fork_latency_ns = 0;
};

struct LevelTable {
  std::mutex mutex;
  std::map<int, LevelAgg> levels;
};

LevelTable& level_table() {
  static LevelTable* t = new LevelTable;  // immortal
  return *t;
}

}  // namespace

int current_level() noexcept { return tl_level; }

int set_current_level(int level) noexcept {
  const int prev = tl_level;
  tl_level = level;
  return prev;
}

void record_level_ns(int level, std::int64_t ns) noexcept {
  LevelTable& t = level_table();
  std::lock_guard<std::mutex> lock(t.mutex);
  LevelAgg& agg = t.levels[level];
  agg.seconds += static_cast<double>(ns) * 1e-9;
  agg.visits += 1;
}

void record_region_sample(const RegionSample& s) noexcept {
  LevelTable& t = level_table();
  std::lock_guard<std::mutex> lock(t.mutex);
  LevelAgg& agg = t.levels[s.level];
  agg.regions += 1;
  agg.busy_ns += s.busy_total_ns;
  const std::int64_t wall_all =
      static_cast<std::int64_t>(s.participants) * s.region_ns;
  agg.idle_ns += wall_all > s.busy_total_ns ? wall_all - s.busy_total_ns : 0;
  if (s.busy_total_ns > 0 && s.participants > 0) {
    const double mean = static_cast<double>(s.busy_total_ns) /
                        static_cast<double>(s.participants);
    agg.imbalance_sum += static_cast<double>(s.busy_max_ns) / mean;
  } else {
    agg.imbalance_sum += 1.0;
  }
  agg.fork_latency_ns += s.fork_latency_ns;
}

std::vector<LevelMetrics> level_metrics() {
  LevelTable& t = level_table();
  std::lock_guard<std::mutex> lock(t.mutex);
  std::vector<LevelMetrics> out;
  out.reserve(t.levels.size());
  for (const auto& [level, agg] : t.levels) {
    LevelMetrics m;
    m.level = level;
    m.seconds = agg.seconds;
    m.visits = agg.visits;
    m.regions = agg.regions;
    m.busy_seconds = static_cast<double>(agg.busy_ns) * 1e-9;
    m.idle_seconds = static_cast<double>(agg.idle_ns) * 1e-9;
    if (agg.regions > 0) {
      m.imbalance = agg.imbalance_sum / static_cast<double>(agg.regions);
      m.fork_latency_seconds = static_cast<double>(agg.fork_latency_ns) *
                               1e-9 / static_cast<double>(agg.regions);
    }
    out.push_back(m);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reset
// ---------------------------------------------------------------------------

void reset() {
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& t : reg.threads) {
      t->skipped.store(0, std::memory_order_relaxed);
      if (t->ring != nullptr) t->ring->clear();
    }
  }
  for (auto& h : g_histograms) h.clear();
  reset_levels();
  clear_retained_traces();
}

void reset_levels() {
  LevelTable& t = level_table();
  std::lock_guard<std::mutex> lock(t.mutex);
  t.levels.clear();
}

}  // namespace sacpp::obs
