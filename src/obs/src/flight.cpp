#include "sacpp/obs/flight.hpp"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "sacpp/obs/obs.hpp"
#include "sacpp/obs/trace.hpp"

namespace sacpp::obs {

namespace {

// Spans per thread included in a dump; the tail of each ring is the flight
// recorder's "last N seconds" window.
constexpr std::size_t kDumpSpansPerThread = 128;

constexpr std::int64_t kMinDumpIntervalNs = 1'000'000'000;  // 1 s

struct FlightState {
  std::mutex mutex;
  std::string path;
  std::vector<std::pair<std::string, std::function<std::string()>>> providers;
  std::int64_t last_dump_ns = -kMinDumpIntervalNs;
  std::uint64_t dumps = 0;
};

FlightState& flight_state() {
  static FlightState* s = new FlightState;  // immortal
  return *s;
}

std::string flight_json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_dump(std::ostream& out, const char* reason, std::uint64_t seq) {
  out << "{\"reason\":\"" << flight_json_escape(reason == nullptr ? "" : reason)
      << "\",\"dump_seq\":" << seq << ",\"uptime_ns\":" << now_ns();

  out << ",\"threads\":[";
  bool first_thread = true;
  for (const ThreadSpans& t : snapshot_spans()) {
    if (!first_thread) out << ",";
    first_thread = false;
    out << "{\"name\":\"" << flight_json_escape(t.name)
        << "\",\"recorded\":" << t.recorded
        << ",\"overwritten\":" << t.overwritten
        << ",\"skipped\":" << t.skipped << ",\"recent_spans\":[";
    const std::size_t n = t.spans.size();
    const std::size_t from =
        n > kDumpSpansPerThread ? n - kDumpSpansPerThread : 0;
    bool first_span = true;
    for (std::size_t i = from; i < n; ++i) {
      const SpanRecord& s = t.spans[i];
      if (!first_span) out << ",";
      first_span = false;
      out << "{\"name\":\"" << flight_json_escape(s.name) << "\",\"kind\":\""
          << span_kind_name(s.kind) << "\",\"start_ns\":" << s.start_ns
          << ",\"dur_ns\":" << s.dur_ns << ",\"arg\":" << s.arg;
      if (s.trace != 0) out << ",\"trace_id\":\"" << s.trace << "\"";
      out << "}";
    }
    out << "]}";
  }
  out << "]";

  // The retained-trace store, in the trace_schema.json shape.
  out << ",\"traces\":";
  write_traces_json(out);

  // Provider state (queue depths, pool occupancy, lock graph, ...).
  std::vector<std::pair<std::string, std::function<std::string()>>> providers;
  {
    FlightState& st = flight_state();
    std::lock_guard<std::mutex> lock(st.mutex);
    providers = st.providers;
  }
  out << ",\"state\":{";
  bool first_provider = true;
  for (const auto& [name, fn] : providers) {
    if (!first_provider) out << ",";
    first_provider = false;
    std::string value;
    try {
      value = fn();
    } catch (...) {
      value = "\"<provider threw>\"";
    }
    out << "\"" << flight_json_escape(name)
        << "\":" << (value.empty() ? "null" : value);
  }
  out << "}}\n";
}

extern "C" void flight_signal_handler(int sig) {
  flight_dump(sig == SIGSEGV   ? "signal-segv"
              : sig == SIGABRT ? "signal-abrt"
              : sig == SIGFPE  ? "signal-fpe"
                               : "signal",
              /*force=*/true);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void flight_configure(const std::string& path) {
  FlightState& st = flight_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.path = path;
}

std::string flight_path() {
  FlightState& st = flight_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.path;
}

void flight_register_provider(const std::string& name,
                              std::function<std::string()> fn) {
  FlightState& st = flight_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  st.providers.emplace_back(name, std::move(fn));
}

bool flight_dump(const char* reason, bool force) {
  std::string path;
  std::uint64_t seq = 0;
  {
    FlightState& st = flight_state();
    std::lock_guard<std::mutex> lock(st.mutex);
    if (st.path.empty()) return false;
    const std::int64_t now = now_ns();
    if (!force && now - st.last_dump_ns < kMinDumpIntervalNs) return false;
    st.last_dump_ns = now;
    st.dumps += 1;
    seq = st.dumps;
    path = st.path;
  }
  // Write outside the state lock: write_dump snapshots rings and retained
  // traces, each with their own locks.
  std::ofstream f(path);
  if (!f) return false;
  write_dump(f, reason, seq);
  return static_cast<bool>(f);
}

void flight_install_signal_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::signal(SIGSEGV, flight_signal_handler);
    std::signal(SIGABRT, flight_signal_handler);
    std::signal(SIGFPE, flight_signal_handler);
  });
}

std::uint64_t flight_dump_count() {
  FlightState& st = flight_state();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.dumps;
}

}  // namespace sacpp::obs
