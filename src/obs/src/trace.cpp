#include "sacpp/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string_view>

#include "sacpp/obs/obs.hpp"

namespace sacpp::obs {

// ---------------------------------------------------------------------------
// Ids
// ---------------------------------------------------------------------------

std::uint64_t mint_trace_id() noexcept {
  static std::atomic<std::uint64_t> id{0};
  return id.fetch_add(1, std::memory_order_relaxed) + 1;
}

const char* retain_reason_name(RetainReason r) noexcept {
  switch (r) {
    case RetainReason::kSlow: return "slow";
    case RetainReason::kShed: return "shed";
    case RetainReason::kDeadline: return "deadline";
    case RetainReason::kError: return "error";
    case RetainReason::kFlagged: return "flagged";
    case RetainReason::kSampled: return "sampled";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Retained store
// ---------------------------------------------------------------------------

namespace {

struct TraceStore {
  std::mutex mutex;
  std::deque<RetainedTrace> traces;  // FIFO, oldest at front
  std::size_t capacity = 64;
  std::uint64_t evicted = 0;
};

TraceStore& trace_store() {
  static TraceStore* s = new TraceStore;  // immortal, like the span registry
  return *s;
}

}  // namespace

bool retain_trace(const TraceMeta& meta) {
  if (meta.trace_id == 0) return false;
  RetainedTrace t;
  t.meta = meta;
  // Harvest outside the store lock: snapshot_spans takes the registry lock
  // and copies rings, which must not nest under the store mutex.
  for (const ThreadSpans& ts : snapshot_spans()) {
    for (const SpanRecord& s : ts.spans) {
      if (s.trace == meta.trace_id) t.spans.push_back({s, ts.name});
    }
  }
  std::sort(t.spans.begin(), t.spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return a.span.start_ns < b.span.start_ns;
            });
  TraceStore& store = trace_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  for (RetainedTrace& existing : store.traces) {
    if (existing.meta.trace_id == meta.trace_id) {
      existing = std::move(t);  // re-retain: refresh with the fuller harvest
      return true;
    }
  }
  store.traces.push_back(std::move(t));
  while (store.traces.size() > store.capacity) {
    store.traces.pop_front();
    store.evicted += 1;
  }
  return true;
}

void add_trace_span(std::uint64_t trace_id, const SpanRecord& span,
                    const std::string& thread) {
  if (trace_id == 0) return;
  TraceStore& store = trace_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  for (RetainedTrace& t : store.traces) {
    if (t.meta.trace_id != trace_id) continue;
    SpanRecord stamped = span;
    stamped.trace = trace_id;
    t.spans.push_back({stamped, thread});
    return;
  }
}

std::vector<RetainedTrace> retained_traces() {
  TraceStore& store = trace_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  return {store.traces.begin(), store.traces.end()};
}

std::size_t retained_trace_count() {
  TraceStore& store = trace_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  return store.traces.size();
}

std::uint64_t evicted_trace_count() {
  TraceStore& store = trace_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  return store.evicted;
}

void set_retained_trace_capacity(std::size_t capacity) {
  TraceStore& store = trace_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  if (capacity > 0) store.capacity = capacity;
  while (store.traces.size() > store.capacity) {
    store.traces.pop_front();
    store.evicted += 1;
  }
}

void clear_retained_traces() {
  TraceStore& store = trace_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  store.traces.clear();
  store.evicted = 0;
}

// ---------------------------------------------------------------------------
// Stitching validation
// ---------------------------------------------------------------------------

namespace {

bool fail(std::string* why, const char* msg) {
  if (why != nullptr) *why = msg;
  return false;
}

}  // namespace

bool validate_trace(const RetainedTrace& t, bool completed, std::string* why) {
  if (t.meta.trace_id == 0) return fail(why, "trace id is zero");
  const TraceSpan* root = nullptr;
  const TraceSpan* queue = nullptr;
  const TraceSpan* exec = nullptr;
  for (const TraceSpan& s : t.spans) {
    const std::string_view name = s.span.name;
    if (name == kSpanServeE2e) {
      if (root != nullptr) return fail(why, "duplicate serve_e2e root span");
      root = &s;
    } else if (name == kSpanServeQueue) {
      if (queue != nullptr) return fail(why, "duplicate serve_queue span");
      queue = &s;
    } else if (name == kSpanServeExec) {
      if (exec != nullptr) return fail(why, "duplicate serve_job span");
      exec = &s;
    }
  }
  if (root == nullptr) return fail(why, "no serve_e2e root span");
  if (queue == nullptr) return fail(why, "no serve_queue span");
  if (completed && exec == nullptr) return fail(why, "no serve_job span");
  if (!completed && exec != nullptr) {
    return fail(why, "shed trace carries a serve_job span");
  }
  // Containment: every server-side span lives inside the root window.  The
  // client_request / respond spans bracket the server window from the
  // minting side, so they are exempt.
  const std::int64_t slop =
      std::max<std::int64_t>(root->span.dur_ns / 20, 1'000'000);
  const std::int64_t lo = root->span.start_ns - slop;
  const std::int64_t hi = root->span.start_ns + root->span.dur_ns + slop;
  for (const TraceSpan& s : t.spans) {
    const std::string_view name = s.span.name;
    if (name == kSpanClient || name == kSpanRespond) continue;
    if (s.span.start_ns < lo || s.span.start_ns + s.span.dur_ns > hi) {
      return fail(why, "orphan span outside the root window");
    }
  }
  if (completed) {
    const double parts = static_cast<double>(queue->span.dur_ns) +
                         static_cast<double>(exec->span.dur_ns);
    const double whole = static_cast<double>(root->span.dur_ns);
    if (whole > 0 && (parts < 0.95 * whole || parts > 1.05 * whole)) {
      return fail(why, "queue + exec spans do not sum to the root within 5%");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

namespace {

std::string trace_json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_traces_json(std::ostream& out) {
  const std::vector<RetainedTrace> traces = retained_traces();
  out << "{\"retained\":" << traces.size()
      << ",\"evicted\":" << evicted_trace_count() << ",\"traces\":[";
  bool first_trace = true;
  for (const RetainedTrace& t : traces) {
    if (!first_trace) out << ",";
    first_trace = false;
    const TraceMeta& m = t.meta;
    // Trace ids are 64-bit; emit as strings so JSON consumers keep precision.
    out << "{\"trace_id\":\"" << m.trace_id << "\""
        << ",\"request_id\":" << m.request_id
        << ",\"reason\":\"" << retain_reason_name(m.reason) << "\""
        << ",\"status\":\"" << trace_json_escape(m.status) << "\""
        << ",\"priority\":" << m.priority
        << ",\"gang\":" << m.gang
        << ",\"flags\":" << static_cast<int>(m.flags)
        << ",\"submit_ns\":" << m.submit_ns
        << ",\"queue_ns\":" << m.queue_ns
        << ",\"exec_ns\":" << m.exec_ns
        << ",\"e2e_ns\":" << m.e2e_ns;
    const double e2e = static_cast<double>(m.e2e_ns);
    const double parts =
        static_cast<double>(m.queue_ns) + static_cast<double>(m.exec_ns);
    out << ",\"decomposition\":{\"queue_ns\":" << m.queue_ns
        << ",\"exec_ns\":" << m.exec_ns
        << ",\"other_ns\":" << (m.e2e_ns - m.queue_ns - m.exec_ns)
        << ",\"coverage\":" << (e2e > 0 ? parts / e2e : 1.0) << "}";
    out << ",\"spans\":[";
    bool first_span = true;
    for (const TraceSpan& s : t.spans) {
      if (!first_span) out << ",";
      first_span = false;
      out << "{\"name\":\"" << trace_json_escape(s.span.name) << "\""
          << ",\"kind\":\"" << span_kind_name(s.span.kind) << "\""
          << ",\"thread\":\"" << trace_json_escape(s.thread) << "\""
          << ",\"start_ns\":" << s.span.start_ns
          << ",\"dur_ns\":" << s.span.dur_ns
          << ",\"arg\":" << s.span.arg;
      if (s.span.id != 0) out << ",\"region\":" << s.span.id;
      out << "}";
    }
    out << "]}";
  }
  out << "]}\n";
}

bool write_traces_file(const std::string& path) {
  if (path.empty()) return true;
  std::ofstream f(path);
  if (!f) return false;
  write_traces_json(f);
  return static_cast<bool>(f);
}

}  // namespace sacpp::obs
