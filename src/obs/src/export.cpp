#include "sacpp/obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <string>

#include "sacpp/obs/trace.hpp"

namespace sacpp::obs {

// ---------------------------------------------------------------------------
// Collectors
// ---------------------------------------------------------------------------

namespace {

struct CollectorList {
  std::mutex mutex;
  std::vector<Collector> collectors;
};

CollectorList& collector_list() {
  static CollectorList* l = new CollectorList;  // immortal
  return *l;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void register_collector(Collector collector) {
  CollectorList& l = collector_list();
  std::lock_guard<std::mutex> lock(l.mutex);
  l.collectors.push_back(std::move(collector));
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON
// ---------------------------------------------------------------------------

void write_chrome_trace(std::ostream& out) {
  const std::vector<ThreadSpans> threads = snapshot_spans();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
  };

  sep();
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"sacpp\"}}";
  for (const ThreadSpans& t : threads) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t.tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(t.name) << "\"}}";
  }

  char buf[96];
  for (const ThreadSpans& t : threads) {
    for (const SpanRecord& s : t.spans) {
      sep();
      // Timestamps are microseconds (Chrome's unit); keep ns resolution with
      // three decimals.
      std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(s.start_ns) / 1e3);
      out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << t.tid << ",\"ts\":" << buf;
      std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(s.dur_ns) / 1e3);
      out << ",\"dur\":" << buf << ",\"cat\":\"" << span_kind_name(s.kind)
          << "\",\"name\":\"" << json_escape(s.name) << "\",\"args\":{\"arg\":"
          << s.arg;
      if (s.id != 0) out << ",\"region\":" << s.id;
      if (s.trace != 0) out << ",\"trace_id\":\"" << s.trace << "\"";
      out << "}}";
    }
  }
  out << "]}\n";
}

// ---------------------------------------------------------------------------
// Prometheus text format
// ---------------------------------------------------------------------------

namespace {

class TextSink final : public MetricSink {
 public:
  explicit TextSink(std::ostream& out) : out_(out) {}
  void counter(std::string_view name, double value,
               std::string_view help) override {
    emit(name, value, help, "counter");
  }
  void gauge(std::string_view name, double value,
             std::string_view help) override {
    emit(name, value, help, "gauge");
  }

 private:
  void emit(std::string_view name, double value, std::string_view help,
            const char* type) {
    out_ << "# HELP " << name << " " << help << "\n";
    out_ << "# TYPE " << name << " " << type << "\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ << name << " " << buf << "\n";
  }
  std::ostream& out_;
};

void write_histogram(std::ostream& out, Hist h) {
  const LogHistogram& hist = histogram(h);
  if (hist.count() == 0) return;
  const char* name = hist_name(h);
  out << "# HELP " << name << " " << hist_help(h) << "\n";
  out << "# TYPE " << name << " histogram\n";
  std::uint64_t cumulative = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t n = hist.bucket(i);
    if (n == 0) continue;
    cumulative += n;
    out << name << "_bucket{le=\"" << LogHistogram::bucket_upper(i) << "\"} "
        << cumulative;
    // OpenMetrics exemplar: the bucket's most recent traced sample, linking
    // a latency bucket back to a retained trace id.
    const std::uint64_t ex = hist.exemplar_trace(i);
    if (ex != 0) {
      out << " # {trace_id=\"" << ex << "\"} " << hist.exemplar_value(i);
    }
    out << "\n";
  }
  out << name << "_bucket{le=\"+Inf\"} " << hist.count() << "\n";
  out << name << "_sum " << hist.sum() << "\n";
  out << name << "_count " << hist.count() << "\n";
}

void write_level_metric(std::ostream& out, const char* name, const char* help,
                        const std::vector<LevelMetrics>& levels,
                        double (*get)(const LevelMetrics&)) {
  out << "# HELP " << name << " " << help << "\n";
  out << "# TYPE " << name << " gauge\n";
  char buf[64];
  for (const LevelMetrics& m : levels) {
    std::snprintf(buf, sizeof(buf), "%.17g", get(m));
    out << name << "{level=\"" << m.level << "\"} " << buf << "\n";
  }
}

}  // namespace

void write_prometheus(std::ostream& out) {
  // Registered counter collectors (RuntimeStats, pool totals, ...).
  {
    TextSink sink(out);
    CollectorList& l = collector_list();
    std::vector<Collector> collectors;
    {
      std::lock_guard<std::mutex> lock(l.mutex);
      collectors = l.collectors;
    }
    for (const Collector& c : collectors) c(sink);
  }

  // Span bookkeeping.  Overwrite-drops (ring overflow) and disabled-probe
  // skips used to alias under the "dropped" counter; they are distinct
  // losses — an overwrite lost a span that was recorded, a skip never
  // recorded one — so both get their own counter.  The historical dropped
  // name stays as an alias of overwrites for obs_consolidate.py.
  {
    std::uint64_t recorded = 0;
    std::uint64_t overwritten = 0;
    std::uint64_t skipped = 0;
    const auto threads = snapshot_spans();
    for (const ThreadSpans& t : threads) {
      recorded += t.recorded;
      overwritten += t.overwritten;
      skipped += t.skipped;
    }
    TextSink sink(out);
    sink.counter("sacpp_obs_spans_recorded_total",
                 static_cast<double>(recorded), "spans recorded (all threads)");
    sink.counter("sacpp_obs_spans_dropped_total",
                 static_cast<double>(overwritten),
                 "spans evicted by ring overflow (alias of overwritten)");
    sink.counter("sacpp_obs_spans_overwritten_total",
                 static_cast<double>(overwritten),
                 "spans evicted by ring overflow");
    sink.counter("sacpp_obs_spans_skipped_total",
                 static_cast<double>(skipped),
                 "spans suppressed by a disabled probe (probe mask)");
    sink.gauge("sacpp_obs_threads", static_cast<double>(threads.size()),
               "threads registered with the telemetry layer");
    sink.counter("sacpp_obs_traces_retained_total",
                 static_cast<double>(retained_trace_count()),
                 "request traces currently promoted to the retained store");
    sink.counter("sacpp_obs_traces_evicted_total",
                 static_cast<double>(evicted_trace_count()),
                 "retained traces evicted by the store's FIFO bound");
  }

  // Histograms.
  for (int i = 0; i < static_cast<int>(Hist::kCount); ++i) {
    write_histogram(out, static_cast<Hist>(i));
  }

  // Per-level parallel metrics (the Figs. 12-13 attribution).
  const std::vector<LevelMetrics> levels = level_metrics();
  if (!levels.empty()) {
    write_level_metric(out, "sacpp_level_seconds",
                       "wall time attributed to this V-cycle level", levels,
                       [](const LevelMetrics& m) { return m.seconds; });
    write_level_metric(out, "sacpp_level_visits",
                       "level span count", levels, [](const LevelMetrics& m) {
                         return static_cast<double>(m.visits);
                       });
    write_level_metric(out, "sacpp_level_parallel_regions",
                       "parallel regions attributed to this level", levels,
                       [](const LevelMetrics& m) {
                         return static_cast<double>(m.regions);
                       });
    write_level_metric(out, "sacpp_level_busy_seconds",
                       "sum of per-worker busy time", levels,
                       [](const LevelMetrics& m) { return m.busy_seconds; });
    write_level_metric(out, "sacpp_level_idle_seconds",
                       "participants * region wall time minus busy time",
                       levels,
                       [](const LevelMetrics& m) { return m.idle_seconds; });
    write_level_metric(
        out, "sacpp_level_imbalance",
        "mean per-region load imbalance (max worker busy / mean worker busy)",
        levels, [](const LevelMetrics& m) { return m.imbalance; });
    write_level_metric(out, "sacpp_level_fork_latency_seconds",
                       "mean fork-to-first-work latency", levels,
                       [](const LevelMetrics& m) {
                         return m.fork_latency_seconds;
                       });
  }
}

bool write_chrome_trace_file(const std::string& path) {
  if (path.empty()) return true;
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f);
  return static_cast<bool>(f);
}

bool write_prometheus_file(const std::string& path) {
  if (path.empty()) return true;
  std::ofstream f(path);
  if (!f) return false;
  write_prometheus(f);
  return static_cast<bool>(f);
}

// ---------------------------------------------------------------------------
// Summary aggregation
// ---------------------------------------------------------------------------

std::vector<SpanTotal> top_spans(std::size_t limit) {
  // Span names are static strings, so pointer identity keys the aggregation
  // except across identical literals in different TUs; aggregate by content.
  std::map<std::string_view, SpanTotal> byname;
  for (const ThreadSpans& t : snapshot_spans()) {
    for (const SpanRecord& s : t.spans) {
      SpanTotal& tot = byname[s.name];
      tot.name = s.name;
      tot.kind = s.kind;
      tot.count += 1;
      tot.total_ns += s.dur_ns;
    }
  }
  std::vector<SpanTotal> out;
  out.reserve(byname.size());
  for (const auto& [name, tot] : byname) out.push_back(tot);
  std::sort(out.begin(), out.end(), [](const SpanTotal& a, const SpanTotal& b) {
    return a.total_ns > b.total_ns;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace sacpp::obs
