#pragma once
// Request-scoped tracing over the sacpp_obs span layer (sacpp_obs v2).
//
// A TraceContext is minted by a client (mg_loadgen, npb_mg, or any caller of
// sacpp_serve), carried across the wire in a v3 frame extension
// (serve/wire.hpp), and bound thread-locally wherever work for that request
// runs: the submitting thread, the executor that dispatches it, every
// gang-scheduled pool worker (sac::parallel_for re-binds it alongside the
// config snapshot), and msg::World rank threads.  While a context is bound,
// every span recorded through obs::record_span is stamped with its trace id,
// so one solve yields one stitched tree: client -> queue wait -> dispatch ->
// per-level V-cycle spans -> response write.
//
// Retention is tail-based: the always-on rings stay cheap and lossy; a trace
// is promoted into the bounded retained store only when the request turned
// out interesting — slow (streaming p99, sampler.hpp), shed, deadline-missed,
// errored, or explicitly flagged.  write_traces_json emits the retained set
// in the bench/trace_schema.json format.
//
// Overhead contract: with no context bound the stamp is one thread-local read
// folded into the existing record_span path; with tracing compiled in but
// disabled (trace_id == 0 everywhere) class-W wall time moves <= 1%
// (gated in bench/run_all.sh).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sacpp/obs/ring.hpp"

namespace sacpp::obs {

// ---------------------------------------------------------------------------
// Context and thread binding
// ---------------------------------------------------------------------------

// Sampling flags carried end-to-end in TraceContext::flags / wire v3.
inline constexpr std::uint8_t kTraceSampled = 0x1;  // head-sampled at mint
inline constexpr std::uint8_t kTraceForced = 0x2;   // client demands retention

struct TraceContext {
  std::uint64_t trace_id = 0;     // 0 = not traced
  std::uint64_t parent_span = 0;  // minting side's root span id, 0 = root
  std::uint8_t flags = 0;
  bool active() const noexcept { return trace_id != 0; }
};

namespace detail {
extern thread_local TraceContext tl_trace;
}

inline const TraceContext& current_trace() noexcept {
  return detail::tl_trace;
}

// Fresh process-unique nonzero trace id.
std::uint64_t mint_trace_id() noexcept;

// Bind `ctx` to the calling thread for the binding's lifetime (executor
// dispatch, pool worker chunks, rank threads).  Restores the previous
// context on destruction, so nested bindings behave like a stack.
class TraceBinding {
 public:
  explicit TraceBinding(const TraceContext& ctx) noexcept
      : prev_(detail::tl_trace) {
    detail::tl_trace = ctx;
  }
  ~TraceBinding() { detail::tl_trace = prev_; }
  TraceBinding(const TraceBinding&) = delete;
  TraceBinding& operator=(const TraceBinding&) = delete;

 private:
  TraceContext prev_;
};

// Canonical span names of the serve decomposition (trace_schema.json keys;
// validate_trace and trace_consolidate.py match on them).
inline constexpr const char* kSpanClient = "client_request";
inline constexpr const char* kSpanServeE2e = "serve_e2e";
inline constexpr const char* kSpanServeQueue = "serve_queue";
inline constexpr const char* kSpanServeExec = "serve_job";
inline constexpr const char* kSpanRespond = "respond";

// ---------------------------------------------------------------------------
// Retained traces (tail-based promotion)
// ---------------------------------------------------------------------------

// Why a trace was promoted out of the rings (stable export strings).
enum class RetainReason : std::uint8_t {
  kSlow,     // above the streaming p99 estimate
  kShed,     // rejected/evicted/deadline-shed before execution
  kDeadline, // executed but finished after its deadline
  kError,    // solver raised, or the answer failed verification
  kFlagged,  // kTraceForced, or a sacpp_check finding during the solve
  kSampled,  // head-sampling rate
};
const char* retain_reason_name(RetainReason r) noexcept;

struct TraceMeta {
  std::uint64_t trace_id = 0;
  std::uint64_t request_id = 0;
  RetainReason reason = RetainReason::kSampled;
  std::string status;          // serve status name ("ok", "shed-capacity", ..)
  int priority = -1;           // serve lane, -1 outside serve
  std::int64_t submit_ns = 0;  // obs clock
  std::int64_t queue_ns = 0;
  std::int64_t exec_ns = 0;
  std::int64_t e2e_ns = 0;
  int gang = 0;
  std::uint8_t flags = 0;
};

// A span harvested from a ring into a retained trace, plus its track name.
struct TraceSpan {
  SpanRecord span;
  std::string thread;
};

struct RetainedTrace {
  TraceMeta meta;
  std::vector<TraceSpan> spans;
};

// Promote the trace: harvest every span currently in any ring stamped with
// meta.trace_id into the bounded retained store (FIFO eviction).  Returns
// false when trace_id is 0.  Retaining the same id again replaces the
// earlier copy (re-harvest after more spans landed).
bool retain_trace(const TraceMeta& meta);

// Append one more span to an already-retained trace — e.g. the client-side
// request span, which completes only after the server retained at job end.
// No-op when the trace is not retained.
void add_trace_span(std::uint64_t trace_id, const SpanRecord& span,
                    const std::string& thread);

std::vector<RetainedTrace> retained_traces();
std::size_t retained_trace_count();
std::uint64_t evicted_trace_count();  // retained then FIFO-evicted
void set_retained_trace_capacity(std::size_t capacity);  // default 64
void clear_retained_traces();

// ---------------------------------------------------------------------------
// Stitching validation
// ---------------------------------------------------------------------------

// A retained serve trace is well-formed when it stitches into exactly one
// tree: exactly one serve_e2e root, exactly one serve_queue child, exactly
// one serve_job child for completed requests (none for sheds), every other
// stamped span inside the root's window, and queue + exec within 5% of the
// root duration for completed requests.  The PCT stitching tests and
// trace_consolidate.py enforce the same rules.
bool validate_trace(const RetainedTrace& t, bool completed, std::string* why);

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

// JSON dump of the retained traces (schema: bench/trace_schema.json).
void write_traces_json(std::ostream& out);
bool write_traces_file(const std::string& path);  // no-op (true) when empty

}  // namespace sacpp::obs
