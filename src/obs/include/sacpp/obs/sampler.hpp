#pragma once
// Tail-based trace sampler: decide *after* a request finished whether its
// trace deserves promotion into the retained store (trace.hpp).
//
// The decision combines:
//  * anomalies — shed, deadline-missed, errored, or check-flagged requests
//    are always retained (they are the post-mortems the flight recorder and
//    dashboards exist for);
//  * a streaming p99 latency estimate — a LogHistogram of observed e2e
//    latencies; once enough samples accumulated, anything at or above the
//    p99 bucket is "slow" and retained;
//  * a head-sampling rate — a deterministic hash of the trace id keeps
//    `rate` of ordinary requests so dashboards always have fresh exemplars.
//
// Lock-free: observe() is three relaxed increments, should_retain() reads
// the bucket array.  One sampler per service; tests may construct their own.

#include <atomic>
#include <cstdint>

#include "sacpp/obs/histogram.hpp"
#include "sacpp/obs/trace.hpp"

namespace sacpp::obs {

class TailSampler {
 public:
  // Latency samples required before the p99 estimate is trusted; below this
  // only anomalies, forced flags, and head samples retain.
  static constexpr std::uint64_t kWarmupCount = 64;

  explicit TailSampler(double head_rate = 0.0) noexcept
      : head_permille_(rate_to_permille(head_rate)) {}

  void set_head_rate(double rate) noexcept {
    head_permille_.store(rate_to_permille(rate), std::memory_order_relaxed);
  }

  // Feed one completed request's end-to-end latency.
  void observe(std::uint64_t e2e_ns) noexcept { hist_.observe(e2e_ns); }

  // Streaming p99 threshold: the lower bound of the histogram bucket holding
  // the 99th percentile (conservative — only values at least one full log
  // bucket into the tail count as slow).  0 while warming up.
  std::uint64_t slow_threshold_ns() const noexcept {
    const std::uint64_t total = hist_.count();
    if (total < kWarmupCount) return 0;
    const std::uint64_t target =
        total - total / 100;  // rank of the p99 sample
    std::uint64_t seen = 0;
    for (int i = 0; i < LogHistogram::kBuckets; ++i) {
      seen += hist_.bucket(i);
      if (seen >= target) {
        return i <= 1 ? 1 : (std::uint64_t{1} << (i - 1));
      }
    }
    return 0;
  }

  // The tail decision.  `anomalous` covers shed / deadline-miss / error /
  // wrong-answer / check-flagged outcomes.  Fills `reason` with why the
  // trace should be kept when returning true.
  bool should_retain(std::uint64_t e2e_ns, bool anomalous, std::uint8_t flags,
                     std::uint64_t trace_id, RetainReason* reason) const noexcept {
    if (anomalous) {
      // Caller already knows the precise anomaly; default to kError when it
      // does not overwrite.
      if (reason != nullptr) *reason = RetainReason::kError;
      return true;
    }
    if ((flags & kTraceForced) != 0) {
      if (reason != nullptr) *reason = RetainReason::kFlagged;
      return true;
    }
    const std::uint64_t slow = slow_threshold_ns();
    if (slow != 0 && e2e_ns >= slow) {
      if (reason != nullptr) *reason = RetainReason::kSlow;
      return true;
    }
    const std::uint32_t permille =
        head_permille_.load(std::memory_order_relaxed);
    if (permille != 0 && hash_permille(trace_id) < permille) {
      if (reason != nullptr) *reason = RetainReason::kSampled;
      return true;
    }
    return false;
  }

  std::uint64_t observed() const noexcept { return hist_.count(); }

  void reset() noexcept { hist_.clear(); }

 private:
  static std::uint32_t rate_to_permille(double rate) noexcept {
    if (rate <= 0.0) return 0;
    if (rate >= 1.0) return 1000;
    return static_cast<std::uint32_t>(rate * 1000.0 + 0.5);
  }

  // SplitMix64 finalizer: deterministic per-trace sampling, uniform in the
  // low bits even for sequential ids.
  static std::uint32_t hash_permille(std::uint64_t id) noexcept {
    std::uint64_t z = id + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<std::uint32_t>(z % 1000);
  }

  LogHistogram hist_;
  std::atomic<std::uint32_t> head_permille_;
};

}  // namespace sacpp::obs
