#pragma once
// sacpp_obs: unified runtime telemetry for the whole V-cycle stack.
//
// The paper's Sec. 5-6 analysis is an observability argument — SAC's scaling
// limit is *where time goes*: fixed memory-management and fork/join overheads
// dominating the small grids at the bottom of the MG V-cycle.  This layer
// makes that attribution a first-class run artifact:
//
//  * scoped spans recorded into lock-free per-thread ring buffers
//    (with-loops, parallel-region fork/join, pool alloc/release, V-cycle
//    levels, MG kernels, msg sends) — ring.hpp;
//  * log-bucketed histograms for span durations and allocation sizes —
//    histogram.hpp;
//  * derived parallel metrics per region, aggregated per V-cycle level:
//    per-worker busy/idle time, fork-to-first-work latency, load-imbalance
//    ratio — the numbers behind the paper's Figs. 12-13;
//  * exporters (export.hpp): Chrome trace-event JSON (open in Perfetto, one
//    track per thread) and a Prometheus-style text metrics dump.
//
// Always compiled in, off by default.  The contract with the hot path: every
// instrumentation point costs exactly one relaxed atomic load and one
// predictable branch while disabled (verified by bench/abl_* deltas; see
// docs/observability.md for the overhead budget).  Layering: sacpp_obs
// depends only on sacpp_common; sac/mg/msg record into it, and higher layers
// register counter collectors for the metrics dump (one-way links only).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sacpp/obs/histogram.hpp"
#include "sacpp/obs/ring.hpp"

namespace sacpp::obs {

// ---------------------------------------------------------------------------
// Enable flag and clock
// ---------------------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<std::uint32_t> g_probe_mask;
// Count a span suppressed by a disabled probe on the calling thread (the
// ring never sees it; ThreadSpans::skipped reports these separately from
// ring overwrites).
void note_probe_skip() noexcept;
}

// The one guard every instrumentation point tests (relaxed: a toggle only
// needs to become visible eventually; instrumentation sites tolerate either
// value).
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// Turn recording on/off (SacConfig::obs / SACPP_OBS route through this).
// Enabling also primes the clock epoch so the first span is not skewed.
void set_enabled(bool on) noexcept;

// Per-kind probe mask: bit `1 << kind` on means spans of that kind are
// recorded.  Only consulted when enabled() is already true, preserving the
// one-load-one-branch disabled-path contract.  A span arriving at a masked
// probe is counted as a skip (ThreadSpans::skipped), never as a ring drop.
inline constexpr std::uint32_t kAllProbes = 0xffffffffu;

inline constexpr std::uint32_t probe_bit(SpanKind kind) noexcept {
  return std::uint32_t{1} << static_cast<unsigned>(kind);
}

inline bool probe_enabled(SpanKind kind) noexcept {
  return (detail::g_probe_mask.load(std::memory_order_relaxed) &
          probe_bit(kind)) != 0;
}

void set_probe_mask(std::uint32_t mask) noexcept;
std::uint32_t probe_mask() noexcept;

// Nanoseconds since the process obs epoch (steady clock).
std::int64_t now_ns() noexcept;

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

// Record a completed span on the calling thread's ring and route its
// duration into the kind's histogram.  `name` must have static storage
// duration.  Callers guard with enabled().
void record_span(SpanKind kind, const char* name, std::int64_t start_ns,
                 std::int64_t dur_ns, std::int64_t arg = 0,
                 std::uint64_t id = 0) noexcept;

// Feed a value into one of the byte-valued histograms (callers guard with
// enabled()).
inline void observe(Hist h, std::uint64_t value) noexcept {
  histogram(h).observe(value);
}

// Same, with an exemplar: remember trace_id as the bucket's most recent
// traced sample so the Prometheus dump can link a latency bucket to a
// retained trace (trace_id 0 records no exemplar).
inline void observe(Hist h, std::uint64_t value,
                    std::uint64_t trace_id) noexcept {
  histogram(h).observe(value, trace_id);
}

// Fresh correlation id for a parallel region (links the region span on the
// coordinator to the chunk spans on the workers).
std::uint64_t next_region_id() noexcept;

// RAII span: one relaxed load + branch when disabled, two clock reads and a
// ring push when enabled.
class ScopedSpan {
 public:
  ScopedSpan(SpanKind kind, const char* name, std::int64_t arg = 0,
             std::uint64_t id = 0) noexcept {
    if (enabled()) [[unlikely]] {
      active_ = true;
      kind_ = kind;
      name_ = name;
      arg_ = arg;
      id_ = id;
      start_ = now_ns();
    }
  }
  ~ScopedSpan() {
    if (active_) [[unlikely]] {
      record_span(kind_, name_, start_, now_ns() - start_, arg_, id_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
  SpanKind kind_ = SpanKind::kPhase;
  const char* name_ = "";
  std::int64_t arg_ = 0;
  std::uint64_t id_ = 0;
  std::int64_t start_ = 0;
};

// Name the calling thread's track in trace exports ("main", "sac-worker-3",
// "rank-0").  Cheap; safe to call with recording disabled.
void set_thread_name(std::string name);

// ---------------------------------------------------------------------------
// V-cycle level context and derived parallel metrics
// ---------------------------------------------------------------------------
//
// The MT runtime does not know which MG level its parallel regions serve;
// the level scopes in src/mg publish it here (thread-local), and
// parallel_for attributes each region's fork/join metrics to the current
// level.  Level -1 means "outside any level".

int current_level() noexcept;
int set_current_level(int level) noexcept;  // returns the previous level

// One level visit's wall time (LevelScope; feeds the per-level share table
// that replaced the standalone LevelProfiler storage).
void record_level_ns(int level, std::int64_t ns) noexcept;

// One parallel region's fork/join measurement, attributed to `level`.
struct RegionSample {
  int level = -1;
  unsigned participants = 0;
  std::int64_t region_ns = 0;        // fork..join wall time
  std::int64_t busy_total_ns = 0;    // sum of per-worker chunk times
  std::int64_t busy_max_ns = 0;      // slowest worker
  std::int64_t fork_latency_ns = 0;  // fork -> first worker chunk start
};
void record_region_sample(const RegionSample& s) noexcept;

// Per-level aggregate view (sorted by level ascending).
struct LevelMetrics {
  int level = -1;
  double seconds = 0.0;        // attributed wall time (level spans)
  std::uint64_t visits = 0;    // level span count
  std::uint64_t regions = 0;   // parallel regions attributed to this level
  double busy_seconds = 0.0;   // sum of worker busy time
  double idle_seconds = 0.0;   // participants * region wall - busy
  double imbalance = 1.0;      // mean over regions of max_busy / mean_busy
  double fork_latency_seconds = 0.0;  // mean fork-to-first-work latency
};
std::vector<LevelMetrics> level_metrics();

// ---------------------------------------------------------------------------
// Snapshots and reset
// ---------------------------------------------------------------------------

// All spans currently held in one thread's ring.
struct ThreadSpans {
  std::uint32_t tid = 0;     // registration order, stable for the process
  std::string name;          // set_thread_name value or "thread-N"
  std::uint64_t recorded = 0;
  std::uint64_t overwritten = 0;  // oldest-span evictions (ring overflow)
  std::uint64_t skipped = 0;      // suppressed by a disabled probe (mask)
  std::vector<SpanRecord> spans;
};
std::vector<ThreadSpans> snapshot_spans();

// Overwrite-drops (ring overflow) summed across threads.  Kept under the
// historical "dropped" name because obs_consolidate.py and the dashboards
// read sacpp_obs_spans_dropped_total; probe skips are a separate total.
std::uint64_t total_dropped_spans();
std::uint64_t total_skipped_spans();

// Default capacity for rings created after this call (power of two; the
// SACPP_OBS_RING environment variable sets the startup value).
void set_default_ring_capacity(std::size_t capacity);

// Drop all recorded telemetry: rings, histograms, level aggregates.  Call at
// a quiescent point (between benchmark phases), not under concurrent
// recording.
void reset();

// Drop only the per-level aggregates (LevelProfiler::reset routes here so a
// benchmark can restart its per-level shares without discarding span rings).
void reset_levels();

}  // namespace sacpp::obs
