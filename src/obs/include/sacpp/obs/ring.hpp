#pragma once
// Lock-free per-thread span ring buffer (the storage half of sacpp_obs).
//
// One SpanRing belongs to exactly one writer thread; readers (the exporters)
// may snapshot concurrently.  Each slot is a seqlock made of relaxed atomics:
// the writer brackets its field stores with an odd/even sequence number, the
// reader re-checks the sequence after loading and skips slots that changed
// under it.  Because every field is a std::atomic, a concurrent snapshot is
// data-race-free (TSan-clean) without the writer ever taking a lock.
//
// Capacity is fixed at construction (a power of two).  When the ring is full
// the oldest span is overwritten; `overwritten()` reports how many were lost
// that way, so exports can state their own completeness.  Spans suppressed by
// a disabled probe never reach the ring — that skip count lives in the obs
// thread registry, not here (the two used to alias; see docs/observability.md).

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sacpp::obs {

// What a span measured.  Values are stable export identifiers (the Chrome
// trace `cat` field and the histogram routing key).
enum class SpanKind : std::uint8_t {
  kWithLoop,        // one with-loop execution (genarray/modarray)
  kFold,            // one with-loop fold
  kParallelRegion,  // fork..join of one multithreaded with-loop
  kWorkerChunk,     // one worker's chunk inside a parallel region
  kPoolAlloc,       // BufferPool::allocate
  kPoolRelease,     // BufferPool::deallocate
  kLevel,           // one V-cycle level visit (recursion excluded)
  kKernel,          // one MG kernel (resid / psinv / rprj3 / interp)
  kMsgSend,         // one point-to-point message delivery
  kCollective,      // one msg collective (barrier / allreduce / ...)
  kPhase,           // free-form application phase
  kNetFrame,        // one wire frame crossing the socket transport
};

const char* span_kind_name(SpanKind kind) noexcept;

// A completed span, as read back from a ring.  `name` must point to a string
// with static storage duration (exporters read it after the recording scope
// is gone).
struct SpanRecord {
  std::int64_t start_ns = 0;  // relative to the process obs epoch
  std::int64_t dur_ns = 0;
  std::int64_t arg = 0;       // kind-specific: level, worker id, bytes, ...
  std::uint64_t id = 0;       // correlation id (parallel region), 0 = none
  std::uint64_t trace = 0;    // request trace id (trace.hpp), 0 = untraced
  const char* name = "";
  SpanKind kind = SpanKind::kPhase;
};

class SpanRing {
 public:
  // Capacity is rounded up to a power of two (minimum 8).
  explicit SpanRing(std::size_t capacity)
      : cap_(std::bit_ceil(capacity < 8 ? std::size_t{8} : capacity)),
        slots_(std::make_unique<Slot[]>(cap_)) {}

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  std::size_t capacity() const noexcept { return cap_; }

  // Owner-thread only.  Overwrites the oldest record when full.
  void push(const SpanRecord& r) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h & (cap_ - 1)];
    const std::uint32_t q = s.seq.load(std::memory_order_relaxed);
    s.seq.store(q + 1, std::memory_order_release);  // odd: write in progress
    s.start_ns.store(r.start_ns, std::memory_order_relaxed);
    s.dur_ns.store(r.dur_ns, std::memory_order_relaxed);
    s.arg.store(r.arg, std::memory_order_relaxed);
    s.id.store(r.id, std::memory_order_relaxed);
    s.trace.store(r.trace, std::memory_order_relaxed);
    s.name.store(r.name, std::memory_order_relaxed);
    s.kind.store(static_cast<std::uint8_t>(r.kind),
                 std::memory_order_relaxed);
    s.seq.store(q + 2, std::memory_order_release);  // even: stable
    head_.store(h + 1, std::memory_order_release);
  }

  // Total spans ever pushed (monotonic).
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  // Oldest-span evictions: pushes beyond capacity overwrite.
  std::uint64_t overwritten() const noexcept {
    const std::uint64_t h = recorded();
    return h > cap_ ? h - cap_ : 0;
  }

  // Copy the live records, oldest first.  Safe against a concurrent writer:
  // slots that change mid-read are skipped (they will appear in the next
  // snapshot).
  std::vector<SpanRecord> snapshot() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t n = h < cap_ ? h : cap_;
    std::vector<SpanRecord> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = h - n; i < h; ++i) {
      const Slot& s = slots_[i & (cap_ - 1)];
      const std::uint32_t q1 = s.seq.load(std::memory_order_acquire);
      if (q1 & 1u) continue;  // write in progress
      SpanRecord r;
      r.start_ns = s.start_ns.load(std::memory_order_relaxed);
      r.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      r.arg = s.arg.load(std::memory_order_relaxed);
      r.id = s.id.load(std::memory_order_relaxed);
      r.trace = s.trace.load(std::memory_order_relaxed);
      r.name = s.name.load(std::memory_order_relaxed);
      r.kind = static_cast<SpanKind>(s.kind.load(std::memory_order_relaxed));
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != q1) continue;  // torn
      if (r.name == nullptr) continue;  // slot never completed a write
      out.push_back(r);
    }
    return out;
  }

  // Owner-thread or quiescent only: forget all records.
  void clear() noexcept { head_.store(0, std::memory_order_release); }

 private:
  struct Slot {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::int64_t> start_ns{0};
    std::atomic<std::int64_t> dur_ns{0};
    std::atomic<std::int64_t> arg{0};
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> trace{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint8_t> kind{0};
  };

  std::size_t cap_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace sacpp::obs
