#pragma once
// Exporters for sacpp_obs telemetry.
//
//  * write_chrome_trace: Chrome trace-event JSON ("traceEvents" array of
//    complete "X" events plus thread-name metadata), loadable in Perfetto /
//    chrome://tracing with one track per recorded thread.
//  * write_prometheus: text-format metrics dump — counter collectors,
//    histograms with cumulative log buckets, and the per-level parallel
//    metrics (busy/idle/imbalance) behind the paper's Figs. 12-13 analysis.
//  * top_spans / per-level rows: the aggregation behind npb_mg's end-of-run
//    telemetry summary.

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sacpp/obs/obs.hpp"

namespace sacpp::obs {

// -- counter collectors -------------------------------------------------------
//
// Higher layers (sac's RuntimeStats, the pool totals) expose their counters
// to the metrics dump by registering a collector; obs never links upward.

class MetricSink {
 public:
  virtual ~MetricSink() = default;
  // `name` must be a valid Prometheus metric name (snake_case, no braces).
  virtual void counter(std::string_view name, double value,
                       std::string_view help) = 0;
  virtual void gauge(std::string_view name, double value,
                     std::string_view help) = 0;
};

using Collector = std::function<void(MetricSink&)>;

// Register a collector for the lifetime of the process (idempotence is the
// caller's job; sac registers exactly once from config()).
void register_collector(Collector collector);

// -- exporters ---------------------------------------------------------------

// Chrome trace-event JSON of every span currently held in the rings.
void write_chrome_trace(std::ostream& out);

// Prometheus-style text dump: collectors, histograms, per-level metrics,
// dropped-span counter.
void write_prometheus(std::ostream& out);

// Convenience: write either artifact to a file path (no-op when empty).
// Returns false (with no file left behind half-written guarantees) when the
// file cannot be opened.
bool write_chrome_trace_file(const std::string& path);
bool write_prometheus_file(const std::string& path);

// -- summary aggregation ------------------------------------------------------

// Spans aggregated by name across all rings, sorted by total time
// descending, truncated to `limit`.
struct SpanTotal {
  const char* name = "";
  SpanKind kind = SpanKind::kPhase;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
};
std::vector<SpanTotal> top_spans(std::size_t limit);

}  // namespace sacpp::obs
