#pragma once
// Log-bucketed histograms for span durations and allocation sizes.
//
// Buckets are powers of two: value v lands in bucket bit_width(v) (bucket 0
// holds exactly v == 0), so recording is one bit-scan plus three relaxed
// atomic increments — cheap enough for the pool allocation path.  Exports
// render the buckets Prometheus-style with cumulative `le` upper bounds.

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>

namespace sacpp::obs {

class LogHistogram {
 public:
  // Bucket i holds values with bit_width == i; 0..64 inclusive.
  static constexpr int kBuckets = 65;

  static int bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0 : std::bit_width(v);
  }

  // Inclusive upper bound of bucket i (2^i - 1; the last bucket is open).
  static std::uint64_t bucket_upper(int i) noexcept {
    if (i <= 0) return 0;
    if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
  }

  void observe(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  // Observe with an exemplar: remember (trace_id, v) as the bucket's most
  // recent traced sample, so the Prometheus dump can point from a latency
  // bucket (e.g. the p99 spike) to an exact retained trace.  Last-writer-
  // wins per bucket; a torn pair is tolerable (both fields are recent
  // samples of the same bucket).
  void observe(std::uint64_t v, std::uint64_t trace_id) noexcept {
    const int b = bucket_of(v);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    if (trace_id != 0) {
      exemplar_trace_[b].store(trace_id, std::memory_order_relaxed);
      exemplar_value_[b].store(v, std::memory_order_relaxed);
    }
  }

  std::uint64_t bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t exemplar_trace(int i) const noexcept {
    return exemplar_trace_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t exemplar_value(int i) const noexcept {
    return exemplar_value_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  void clear() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    for (auto& e : exemplar_trace_) e.store(0, std::memory_order_relaxed);
    for (auto& e : exemplar_value_) e.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> exemplar_trace_[kBuckets]{};
  std::atomic<std::uint64_t> exemplar_value_[kBuckets]{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

// The fixed histogram set sacpp_obs maintains.  Span-ending routes the
// duration into the kind's histogram automatically; byte-valued ones are fed
// explicitly (obs::observe).
enum class Hist : int {
  kWithLoopNs,
  kFoldNs,
  kRegionNs,
  kChunkNs,
  kPoolAllocNs,
  kPoolReleaseNs,
  kLevelNs,
  kKernelNs,
  kMsgSendNs,
  kCollectiveNs,
  kAllocBytes,  // buffer allocation payload sizes
  kMsgBytes,    // point-to-point message payload bytes
  // Serving subsystem (docs/serve.md): fed explicitly by sacpp_serve.
  kServeQueueNs,  // admission-to-dispatch time in queue
  kServeJobNs,    // dispatch-to-completion execution time
  kServeE2eNs,    // submit-to-completion end-to-end latency
  // JIT backend (docs/jit.md): fed by the kernel cache per compile.
  kJitCompileNs,  // source-to-dlopen latency of one JIT kernel
  // Socket transport (docs/net.md): one frame's send or blocking-recv time.
  kNetFrameNs,
  kCount,
};

const char* hist_name(Hist h) noexcept;  // Prometheus metric stem
const char* hist_help(Hist h) noexcept;

LogHistogram& histogram(Hist h) noexcept;

}  // namespace sacpp::obs
