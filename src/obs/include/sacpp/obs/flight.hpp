#pragma once
// Black-box flight recorder: snapshot the recent telemetry state to a
// post-mortem file when something goes wrong — a crash (signal handler), a
// deadline miss, or a drain timeout.
//
// The always-on per-thread span rings double as the black box: they hold the
// last N spans per thread whether or not anything is exporting, so a dump
// taken at failure time shows what the process was doing just before.  The
// dump also embeds the retained-trace store (trace.hpp) and the state of any
// registered providers (admission-queue depths, gang-pool occupancy, the
// lock-registry graph, ... — higher layers register these; obs never links
// upward, mirroring the metric-collector pattern).
//
// Signal-handler dumps are best-effort: the writer allocates and takes
// registry locks, which is not async-signal-safe in the strict sense.  For a
// crash that corrupted those structures the dump may be lost — acceptable
// for a post-mortem aid, and the common failure modes (stuck drain, missed
// deadline, assertion abort) dump from healthy contexts.

#include <cstdint>
#include <functional>
#include <string>

namespace sacpp::obs {

// Set (or clear, with "") the dump file path.  Thread-safe; the path is read
// at each dump.
void flight_configure(const std::string& path);
std::string flight_path();

// Register a named state provider.  The returned string is embedded verbatim
// as a JSON value under "state", so providers emit their own JSON (object,
// array, or quoted string).  Process-lifetime, like metric collectors.
void flight_register_provider(const std::string& name,
                              std::function<std::string()> fn);

// Write a snapshot (reason, per-thread recent spans, retained traces,
// provider state) to the configured path, overwriting any previous dump.
// Returns false when no path is configured or the write failed.  Dumps are
// rate-limited to one per second unless `force`, so a storm of deadline
// misses keeps the newest snapshot instead of thrashing the disk.
bool flight_dump(const char* reason, bool force = false);

// Install best-effort SIGSEGV / SIGABRT / SIGFPE handlers that dump and then
// re-raise the default disposition.  Idempotent.
void flight_install_signal_handlers();

std::uint64_t flight_dump_count();

}  // namespace sacpp::obs
