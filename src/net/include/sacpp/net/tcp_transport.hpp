#pragma once
// TCP implementation of the msg::Transport seam (docs/net.md).
//
// One TcpTransport per OS process plays one rank of a world described by a
// host list.  Construction is the rendezvous: rank r listens on its own
// endpoint (hosts[r], or a pre-bound inherited listener for launcher use),
// dials every lower rank with retry/backoff, accepts every higher rank, and
// exchanges a hello/ack handshake that pins the wire version, world size,
// and peer identity before any data flows.  After rendezvous all sockets go
// non-blocking behind one epoll event loop thread.
//
// Wire format — every frame is the shared length-prefixed codec
// (codec.hpp), payload layout (all integers little-endian):
//
//   u32 magic  "MSG1"
//   u8  type   kHello / kHelloAck / kData / kBye
//   hello|ack: u8 version, u32 world_size, u32 sender_rank
//   data:      u32 source_rank, i32 tag, u64 count, count f64 payload
//   bye:       u32 sender_rank
//
// Semantics (the msg::Transport contract):
//   * send is buffered-asynchronous: the frame is committed to the peer's
//     outbound queue and the event loop drains it concurrently — this is
//     what makes Comm::isend/irecv genuinely overlap communication with
//     compute.  A queue past `send_queue_cap` bytes blocks the sender
//     (counted in blocked_sends) until the loop drains it.
//   * recv matches the inbox by (source, tag), FIFO per pair.
//   * A dead peer (EOF, reset, protocol violation, bye) fails every
//     present and future send/recv toward it with a ContractError naming
//     the peer, its endpoint, and the cause — never a hang.
//
// Frame-layer session events: every data frame committed (send) or matched
// (recv) is reported to a bound check::SessionMonitor with the tag's
// protocol class (session.hpp), on the rank thread that owns the call.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "sacpp/common/lockorder.hpp"
#include "sacpp/msg/transport.hpp"
#include "sacpp/net/codec.hpp"

namespace sacpp::net {

inline constexpr std::uint32_t kMsgMagic = 0x3147534d;  // "MSG1"
inline constexpr std::uint8_t kNetWireVersion = 1;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kData = 3,
  kBye = 4,
};

struct TcpOptions {
  int rank = 0;
  // One "host:port" endpoint per rank; the vector's size is the world size.
  // A port of 0 is only usable together with `listen_fd` (the launcher bound
  // the port and the peers were told the real one).
  std::vector<std::string> hosts;
  // Pre-bound listening socket for this rank (e.g. inherited from
  // mg_cluster, which binds every port before forking so children cannot
  // race); -1 = bind hosts[rank] here.
  int listen_fd = -1;
  int connect_timeout_ms = 10000;  // total rendezvous budget per peer
  int connect_retry_ms = 25;       // backoff between dial attempts
  std::size_t max_frame_bytes = std::size_t{16} << 20;  // frame body cap
  std::size_t send_queue_cap = std::size_t{64} << 20;   // per-peer queued bytes
};

class TcpTransport final : public msg::Transport {
 public:
  explicit TcpTransport(TcpOptions options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  int rank() const noexcept override { return options_.rank; }
  int size() const noexcept override {
    return static_cast<int>(options_.hosts.size());
  }

  void send(int dest, int tag, std::span<const double> data) override;
  void recv(int source, int tag, std::span<double> out) override;
  bool try_recv(int source, int tag, std::span<double> out) override;
  msg::TransportStats stats() const override;

  // Fault injection (tests, mg_cluster --chaos-exit): hard-close every
  // socket with no bye, exactly as a crashed process would.  Every later
  // operation throws the peer-death diagnostic.
  void close_abruptly();

  const std::string& endpoint_of(int rank) const {
    return options_.hosts[static_cast<std::size_t>(rank)];
  }

 private:
  struct Peer {
    int fd = -1;
    std::string death_reason;        // guarded by peer_mutex_
    bool want_write = false;         // EPOLLOUT armed (event loop only)
    std::size_t front_offset = 0;    // partially written head frame bytes
    std::deque<std::vector<std::uint8_t>> outbound;  // guarded by peer_mutex_
    std::size_t outbound_bytes = 0;                  // guarded by peer_mutex_
    std::unique_ptr<FrameAssembler> assembler;       // event loop only
  };

  struct Message {
    int source = 0;
    int tag = 0;
    std::vector<double> payload;
  };

  void rendezvous_();
  void event_loop_();
  void handle_readable_(int peer);
  bool ingest_frame_(int peer, std::span<const std::uint8_t> frame);
  bool flush_outbound_(int peer);  // false once the peer is dead
  void mark_dead_(int peer, const std::string& reason);
  void kick_() const;
  [[noreturn]] void throw_peer_gone_(int peer, const char* op, int tag) const;
  bool peer_dead_(int peer) const noexcept {
    return dead_[static_cast<std::size_t>(peer)].load(
        std::memory_order_acquire);
  }

  TcpOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::vector<Peer> peers_;  // indexed by rank; the self slot stays empty
  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::thread loop_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> closed_{false};  // close_abruptly happened

  // Lock order: inbox and peer locks are never nested inside each other in
  // the same direction twice — senders take only net.peer, receivers only
  // net.inbox, the event loop takes them one at a time.
  mutable TrackedMutex peer_mutex_{"net.peer"};
  std::condition_variable_any drained_;

  mutable TrackedMutex inbox_mutex_{"net.inbox"};
  std::condition_variable_any inbox_cv_;
  std::list<Message> inbox_;

  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> blocked_sends_{0};
};

}  // namespace sacpp::net
