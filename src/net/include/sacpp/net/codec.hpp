#pragma once
// Shared length-prefixed frame codec (docs/net.md#wire-format).
//
// Every byte stream in this repo frames its traffic the same way: a u32
// little-endian length prefix counting the bytes AFTER the field, then the
// payload.  serve's SRQ1/SRS1 frames (src/serve/wire.hpp) follow it, the
// socket transport's tagged message frames (tcp_transport.hpp) follow it,
// and mg_server / mg_loadgen used to carry private copies of the same
// reassembly loop — this header is the one implementation all of them share.
//
// Two reassembly policies exist for a lying length prefix:
//   * serve::frame_size CLAMPS an oversized length so the stream reader
//     surfaces the corruption through decode_* (legacy behaviour, kept).
//   * FrameAssembler REJECTS it: the assembler poisons itself and reports
//     kMalformed from then on, because a stream that has lied about a frame
//     boundary has no trustworthy resync point.  The transport and the
//     examples use this strict policy; the malformed-frame and
//     lying-length-header negatives live in tests/net_codec_test.cpp.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sacpp::net {

enum class FrameResult : std::uint8_t {
  kFrame,      // a complete frame was peeled off
  kNeedMore,   // buffered bytes do not yet hold a full frame
  kMalformed,  // length prefix exceeds the cap; assembler is poisoned
};

// Incremental reassembler: feed() stream chunks in, next() peels complete
// frames (length prefix INCLUDED, matching serve::frame_size delimiting so
// serve::decode_* consume the result unchanged) off the front.
class FrameAssembler {
 public:
  // `max_frame_bytes` caps the frame BODY (bytes after the prefix), the
  // same convention as serve::kMaxFrameBytes.
  explicit FrameAssembler(std::size_t max_frame_bytes);

  void feed(std::span<const std::uint8_t> chunk);

  // On kFrame, *frame holds the next complete frame and the internal buffer
  // advances past it.  On kMalformed (if `error` is non-null) *error names
  // the claimed and permitted sizes; every later call also reports
  // kMalformed — drop the connection.
  FrameResult next(std::vector<std::uint8_t>* frame,
                   std::string* error = nullptr);

  std::size_t buffered() const noexcept { return buffer_.size(); }
  std::size_t max_frame_bytes() const noexcept { return max_frame_bytes_; }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buffer_;
  bool poisoned_ = false;
  std::string poison_;
};

// Prepend the u32 LE length prefix to `payload`.
std::vector<std::uint8_t> encode_frame(std::span<const std::uint8_t> payload);

// Append `v` little-endian (shared by frame builders on both sides of the
// transport and by tests forging malformed headers).
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
std::uint32_t get_u32(std::span<const std::uint8_t> in) noexcept;

// Blocking write of the whole buffer to a (blocking) socket/pipe fd; short
// writes are resumed, SIGPIPE suppressed.  False when the peer went away.
bool write_all(int fd, std::span<const std::uint8_t> bytes);

// Blocking frame reader over an fd — the shared replacement for the
// reader loops mg_server and mg_loadgen each grew.  Returns true with a
// frame, false when the connection is done: a clean EOF at a frame boundary
// leaves `error` (if non-null) empty; a malformed frame or an EOF mid-frame
// sets it.
class FdFrameReader {
 public:
  FdFrameReader(int fd, std::size_t max_frame_bytes);

  bool next(std::vector<std::uint8_t>* frame, std::string* error = nullptr);

 private:
  int fd_;
  FrameAssembler assembler_;
};

}  // namespace sacpp::net
