#pragma once
// Session specs for the socket transport's message sequences
// (docs/net.md#session-specs).
//
// The session-types reading of MG (Bejleri/Hu/Yoshida, PAPERS.md) treats a
// rank's legal message sequence as a protocol: the cyclic halo exchange is
// send/send/recv/recv with both neighbours, an allreduce is a
// contribute/result pair with the root.  The transport turns every frame it
// sends or matches into a check::note_channel_event — the event kind is the
// tag's protocol class below — so a check::SessionMonitor bound to a rank
// thread (MonitorBinding) validates its traffic against these specs while
// the solve runs, exactly as serve's wire layer validates SRQ1/SRS1.
//
// Events are noted on the rank thread at the frame *boundary it controls*:
// sends when the frame is committed to a peer's outbound queue, receives
// when the frame is matched out of the inbox (the epoll thread that drained
// the socket holds no monitor binding).

#include <cstdint>

#include "sacpp/check/session.hpp"

namespace sacpp::net {

// Protocol alphabet: what a tag means at the frame layer.
inline constexpr std::uint32_t kEvData = 1;     // application point-to-point
inline constexpr std::uint32_t kEvBarrier = 2;  // msg barrier token/release
inline constexpr std::uint32_t kEvReduce = 3;   // msg allreduce leg
inline constexpr std::uint32_t kEvBcast = 4;    // msg broadcast
inline constexpr std::uint32_t kEvGather = 5;   // msg gather/scatter block
inline constexpr std::uint32_t kEvOther = 6;    // unknown reserved tag

// Collapse a msg tag into the protocol alphabet (reserved collective tags
// are <= -1000; everything >= 0 is application data — mg_mpi's halo planes,
// coarse-tail gathers, serve's packed frames).
std::uint32_t classify_tag(int tag) noexcept;

// One halo exchange with both neighbours, repeatable: the rank posts its two
// plane sends, then matches its two plane receives (order within each pair
// is immaterial to the spec — both legs carry kEvData).
//   0 -send(data)-> 1 -send(data)-> 2 -recv(data)-> 3 -recv(data)-> 0
check::SessionSpec halo_exchange_session_spec();

// A leaf rank's allreduce, repeatable: contribute to the root, read the
// result back.  The same shape with barrier events covers the barrier.
//   0 -send(reduce)-> 1 -recv(reduce)-> 0
check::SessionSpec reduction_session_spec();
check::SessionSpec barrier_session_spec();

}  // namespace sacpp::net
