#include "sacpp/net/codec.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "sacpp/common/error.hpp"

namespace sacpp::net {

FrameAssembler::FrameAssembler(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {
  SACPP_REQUIRE(max_frame_bytes >= 1, "frame assembler needs a positive cap");
}

void FrameAssembler::feed(std::span<const std::uint8_t> chunk) {
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
}

FrameResult FrameAssembler::next(std::vector<std::uint8_t>* frame,
                                 std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = poison_;
    return FrameResult::kMalformed;
  }
  if (buffer_.size() < sizeof(std::uint32_t)) return FrameResult::kNeedMore;
  const std::uint32_t body = get_u32(buffer_);
  if (body > max_frame_bytes_) {
    // A lying length header: there is no honest way to find the next frame
    // boundary in this stream, so stay malformed forever.
    poisoned_ = true;
    poison_ = "net: frame length " + std::to_string(body) +
              " exceeds the " + std::to_string(max_frame_bytes_) +
              "-byte cap (lying length header or corrupt stream)";
    if (error != nullptr) *error = poison_;
    return FrameResult::kMalformed;
  }
  const std::size_t total = sizeof(std::uint32_t) + body;
  if (buffer_.size() < total) return FrameResult::kNeedMore;
  frame->assign(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  return FrameResult::kFrame;
}

std::vector<std::uint8_t> encode_frame(
    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(sizeof(std::uint32_t) + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in) noexcept {
  std::uint32_t v = 0;
  const std::size_t n = std::min(in.size(), sizeof(std::uint32_t));
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return v;
}

bool write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

FdFrameReader::FdFrameReader(int fd, std::size_t max_frame_bytes)
    : fd_(fd), assembler_(max_frame_bytes) {}

bool FdFrameReader::next(std::vector<std::uint8_t>* frame,
                         std::string* error) {
  if (error != nullptr) error->clear();
  for (;;) {
    switch (assembler_.next(frame, error)) {
      case FrameResult::kFrame:
        return true;
      case FrameResult::kMalformed:
        return false;
      case FrameResult::kNeedMore:
        break;
    }
    std::uint8_t chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      if (assembler_.buffered() != 0 && error != nullptr) {
        *error = "net: connection closed mid-frame (" +
                 std::to_string(assembler_.buffered()) +
                 " bytes of an incomplete frame buffered)";
      }
      return false;
    }
    assembler_.feed(
        std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(got)));
  }
}

}  // namespace sacpp::net
