#include "sacpp/net/tcp_transport.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "sacpp/check/session.hpp"
#include "sacpp/common/error.hpp"
#include "sacpp/net/session.hpp"
#include "sacpp/obs/export.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/sac/config.hpp"

namespace sacpp::net {

// Payload doubles are memcpy'd onto the wire, so the host must store them
// little-endian IEEE 754 — true of every target this repo builds for.
static_assert(std::endian::native == std::endian::little,
              "net wire format assumes a little-endian host");

namespace {

constexpr std::uint32_t kEventFdSlot = 0xffffffffu;
constexpr std::size_t kDataHeaderBytes = 21;  // magic+type+src+tag+count
constexpr std::size_t kHandshakeMaxBytes = 256;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(std::span<const std::uint8_t> in) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8 && i < in.size(); ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

// Session-monitor probe, mirroring serve's note_frame: a no-op unless
// checked mode is on AND a monitor is bound to this thread.
void note_event(check::Dir dir, int tag) {
  if (!sac::active_config().check) [[likely]] {
    return;
  }
  if (check::bound_monitor() == nullptr) return;
  check::note_channel_event(dir, classify_tag(tag));
}

std::vector<std::uint8_t> build_data_frame(int source, int tag,
                                           std::span<const double> data) {
  const std::size_t body = kDataHeaderBytes + data.size() * sizeof(double);
  std::vector<std::uint8_t> frame;
  frame.reserve(sizeof(std::uint32_t) + body);
  put_u32(frame, static_cast<std::uint32_t>(body));
  put_u32(frame, kMsgMagic);
  put_u8(frame, static_cast<std::uint8_t>(FrameType::kData));
  put_u32(frame, static_cast<std::uint32_t>(source));
  put_u32(frame, static_cast<std::uint32_t>(static_cast<std::int32_t>(tag)));
  put_u64(frame, data.size());
  const std::size_t at = frame.size();
  frame.resize(at + data.size_bytes());
  std::memcpy(frame.data() + at, data.data(), data.size_bytes());
  return frame;
}

std::vector<std::uint8_t> build_handshake_frame(FrameType type,
                                                std::uint32_t world,
                                                std::uint32_t sender) {
  std::vector<std::uint8_t> frame;
  put_u32(frame, 4 + 1 + 1 + 4 + 4);
  put_u32(frame, kMsgMagic);
  put_u8(frame, static_cast<std::uint8_t>(type));
  put_u8(frame, kNetWireVersion);
  put_u32(frame, world);
  put_u32(frame, sender);
  return frame;
}

std::vector<std::uint8_t> build_bye_frame(std::uint32_t sender) {
  std::vector<std::uint8_t> frame;
  put_u32(frame, 4 + 1 + 4);
  put_u32(frame, kMsgMagic);
  put_u8(frame, static_cast<std::uint8_t>(FrameType::kBye));
  put_u32(frame, sender);
  return frame;
}

void parse_endpoint(const std::string& endpoint, std::string* host,
                    std::uint16_t* port) {
  const std::size_t colon = endpoint.rfind(':');
  SACPP_REQUIRE(colon != std::string::npos && colon > 0 &&
                    colon + 1 < endpoint.size(),
                "net: endpoint must be host:port, got '" + endpoint + "'");
  *host = endpoint.substr(0, colon);
  char* end = nullptr;
  const long p = std::strtol(endpoint.c_str() + colon + 1, &end, 10);
  SACPP_REQUIRE(end != nullptr && *end == '\0' && p >= 0 && p <= 65535,
                "net: bad port in endpoint '" + endpoint + "'");
  *port = static_cast<std::uint16_t>(p);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  SACPP_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "net: cannot make socket non-blocking");
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void set_recv_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

int create_listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SACPP_REQUIRE(fd >= 0, "net: cannot create listening socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 64) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    SACPP_REQUIRE(false, "net: cannot listen on port " +
                             std::to_string(port) + ": " + why);
  }
  return fd;
}

// One dial attempt; -1 when the peer is not accepting yet.
int try_connect(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

struct Handshake {
  FrameType type = FrameType::kHello;
  std::uint8_t version = 0;
  std::uint32_t world = 0;
  std::uint32_t sender = 0;
};

// Read exactly `n` bytes from a blocking fd; false on EOF/error.
bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::recv(fd, buf + done, n - done, 0);
    if (got == 0) return false;
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(got);
  }
  return true;
}

// Handshake frames are read with EXACT-length reads, never a buffered
// reader: the instant the acceptor's ack hits the wire it may be followed
// by data frames, and a chunked reader would slurp (and silently drop)
// those bytes before the event loop ever owns the socket.
Handshake read_handshake(int fd, const std::string& who) {
  std::uint8_t prefix[sizeof(std::uint32_t)];
  SACPP_REQUIRE(read_exact(fd, prefix, sizeof prefix),
                "net: handshake with " + who +
                    " failed: connection closed");
  const std::uint32_t body_len = get_u32(prefix);
  SACPP_REQUIRE(body_len <= kHandshakeMaxBytes,
                "net: handshake with " + who + ": frame claims " +
                    std::to_string(body_len) + " bytes, cap is " +
                    std::to_string(kHandshakeMaxBytes));
  std::vector<std::uint8_t> payload(body_len);
  SACPP_REQUIRE(body_len == 0 || read_exact(fd, payload.data(), body_len),
                "net: handshake with " + who +
                    " failed: connection closed mid-frame");
  SACPP_REQUIRE(payload.size() == 14 && get_u32(payload) == kMsgMagic,
                "net: handshake with " + who + ": not a MSG1 hello frame");
  Handshake h;
  h.type = static_cast<FrameType>(payload[4]);
  h.version = payload[5];
  h.world = get_u32(std::span<const std::uint8_t>(payload).subspan(6));
  h.sender = get_u32(std::span<const std::uint8_t>(payload).subspan(10));
  SACPP_REQUIRE(
      h.type == FrameType::kHello || h.type == FrameType::kHelloAck,
      "net: handshake with " + who + ": unexpected frame type " +
          std::to_string(static_cast<int>(h.type)));
  SACPP_REQUIRE(h.version == kNetWireVersion,
                "net: handshake with " + who + ": wire version " +
                    std::to_string(h.version) + ", this build speaks " +
                    std::to_string(kNetWireVersion));
  return h;
}

// ---------------------------------------------------------------------------
// Prometheus bridge: sacpp_net_* totals across every transport this process
// ever opened (live polled, destroyed folded into `retired`).
// ---------------------------------------------------------------------------

void accumulate(msg::TransportStats& into, const msg::TransportStats& s) {
  into.frames_sent += s.frames_sent;
  into.frames_received += s.frames_received;
  into.bytes_sent += s.bytes_sent;
  into.bytes_received += s.bytes_received;
  into.reconnects += s.reconnects;
  into.blocked_sends += s.blocked_sends;
}

struct NetRegistry {
  TrackedMutex mutex{"net.registry"};
  std::vector<const TcpTransport*> live;
  msg::TransportStats retired;
};

NetRegistry& net_registry() {
  static auto* r = new NetRegistry();
  return *r;
}

void register_transport(const TcpTransport* t) {
  auto& reg = net_registry();
  {
    std::lock_guard<TrackedMutex> lock(reg.mutex);
    reg.live.push_back(t);
  }
  static std::once_flag collector_once;
  std::call_once(collector_once, [] {
    obs::register_collector([](obs::MetricSink& sink) {
      msg::TransportStats total;
      {
        auto& r = net_registry();
        std::lock_guard<TrackedMutex> lock(r.mutex);
        total = r.retired;
        for (const TcpTransport* live : r.live) {
          accumulate(total, live->stats());
        }
      }
      sink.counter("sacpp_net_frames_sent_total",
                   static_cast<double>(total.frames_sent),
                   "net: frames committed to peer outbound queues");
      sink.counter("sacpp_net_frames_received_total",
                   static_cast<double>(total.frames_received),
                   "net: data frames reassembled off the wire");
      sink.counter("sacpp_net_bytes_sent_total",
                   static_cast<double>(total.bytes_sent),
                   "net: wire bytes sent, length prefixes included");
      sink.counter("sacpp_net_bytes_received_total",
                   static_cast<double>(total.bytes_received),
                   "net: wire bytes received");
      sink.counter("sacpp_net_reconnects_total",
                   static_cast<double>(total.reconnects),
                   "net: rendezvous dial retries");
      sink.counter("sacpp_net_blocked_sends_total",
                   static_cast<double>(total.blocked_sends),
                   "net: sends that waited on the per-peer queue cap");
    });
  });
}

void unregister_transport(const TcpTransport* t) {
  auto& reg = net_registry();
  std::lock_guard<TrackedMutex> lock(reg.mutex);
  accumulate(reg.retired, t->stats());
  reg.live.erase(std::remove(reg.live.begin(), reg.live.end(), t),
                 reg.live.end());
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / rendezvous
// ---------------------------------------------------------------------------

TcpTransport::TcpTransport(TcpOptions options) : options_(std::move(options)) {
  const int world = size();
  SACPP_REQUIRE(world >= 1, "net: host list is empty");
  SACPP_REQUIRE(options_.rank >= 0 && options_.rank < world,
                "net: rank " + std::to_string(options_.rank) +
                    " out of range for a " + std::to_string(world) +
                    "-host world");
  SACPP_REQUIRE(options_.max_frame_bytes >= kDataHeaderBytes + sizeof(double),
                "net: max_frame_bytes too small for one double");
  peers_.resize(static_cast<std::size_t>(world));
  dead_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    dead_[static_cast<std::size_t>(r)].store(false,
                                             std::memory_order_relaxed);
  }
  try {
    rendezvous_();
  } catch (...) {
    for (Peer& p : peers_) {
      if (p.fd >= 0) ::close(p.fd);
      p.fd = -1;
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    throw;
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  SACPP_REQUIRE(epoll_fd_ >= 0, "net: epoll_create1 failed");
  event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  SACPP_REQUIRE(event_fd_ >= 0, "net: eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u32 = kEventFdSlot;
  SACPP_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) == 0,
                "net: cannot register eventfd");
  for (int r = 0; r < world; ++r) {
    Peer& p = peers_[static_cast<std::size_t>(r)];
    if (p.fd < 0) continue;
    set_nonblocking(p.fd);
    set_nodelay(p.fd);
    p.assembler = std::make_unique<FrameAssembler>(options_.max_frame_bytes);
    epoll_event pe{};
    pe.events = EPOLLIN;
    pe.data.u32 = static_cast<std::uint32_t>(r);
    SACPP_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, p.fd, &pe) == 0,
                  "net: cannot register peer socket");
  }
  loop_ = std::thread([this] {
    obs::set_thread_name("net-loop");
    event_loop_();
  });
  register_transport(this);
}

void TcpTransport::rendezvous_() {
  const int world = size();
  const int self = options_.rank;
  std::string host;
  std::uint16_t port = 0;
  parse_endpoint(options_.hosts[static_cast<std::size_t>(self)], &host,
                 &port);
  if (options_.listen_fd >= 0) {
    listen_fd_ = options_.listen_fd;
  } else if (world > 1) {
    SACPP_REQUIRE(port != 0,
                  "net: rank " + std::to_string(self) +
                      " has port 0 and no pre-bound listener — a peer "
                      "could never find it");
    listen_fd_ = create_listener(port);
  }

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.connect_timeout_ms);

  // Dial every lower rank (they may not be up yet: retry with backoff,
  // counting attempts as reconnects), then prove who we are.
  for (int peer = 0; peer < self; ++peer) {
    std::string peer_host;
    std::uint16_t peer_port = 0;
    parse_endpoint(options_.hosts[static_cast<std::size_t>(peer)],
                   &peer_host, &peer_port);
    int fd = -1;
    for (;;) {
      fd = try_connect(peer_host, peer_port);
      if (fd >= 0) break;
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      SACPP_REQUIRE(std::chrono::steady_clock::now() < deadline,
                    "net: rank " + std::to_string(self) +
                        " cannot reach rank " + std::to_string(peer) +
                        " at " +
                        options_.hosts[static_cast<std::size_t>(peer)] +
                        " within " +
                        std::to_string(options_.connect_timeout_ms) + "ms");
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.connect_retry_ms));
    }
    set_recv_timeout(fd, options_.connect_timeout_ms);
    const auto hello = build_handshake_frame(
        FrameType::kHello, static_cast<std::uint32_t>(world),
        static_cast<std::uint32_t>(self));
    if (!write_all(fd, hello)) {
      ::close(fd);
      SACPP_REQUIRE(false, "net: rank " + std::to_string(peer) +
                               " hung up during the hello");
    }
    bytes_sent_.fetch_add(hello.size(), std::memory_order_relaxed);
    const Handshake ack =
        read_handshake(fd, "rank " + std::to_string(peer));
    SACPP_REQUIRE(ack.type == FrameType::kHelloAck,
                  "net: rank " + std::to_string(peer) +
                      " answered the hello with frame type " +
                      std::to_string(static_cast<int>(ack.type)));
    SACPP_REQUIRE(ack.world == static_cast<std::uint32_t>(world),
                  "net: rank " + std::to_string(peer) + " believes in a " +
                      std::to_string(ack.world) + "-rank world, not " +
                      std::to_string(world));
    SACPP_REQUIRE(ack.sender == static_cast<std::uint32_t>(peer),
                  "net: endpoint " +
                      options_.hosts[static_cast<std::size_t>(peer)] +
                      " identifies as rank " + std::to_string(ack.sender) +
                      ", expected rank " + std::to_string(peer));
    peers_[static_cast<std::size_t>(peer)].fd = fd;
  }

  // Accept every higher rank; the hello tells us who arrived.
  int expected = world - 1 - self;
  while (expected > 0) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    SACPP_REQUIRE(left.count() > 0,
                  "net: rank " + std::to_string(self) + " timed out with " +
                      std::to_string(expected) +
                      " higher rank(s) still unconnected");
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready <= 0) continue;  // timeout re-checked above, EINTR retried
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    set_recv_timeout(fd, options_.connect_timeout_ms);
    const Handshake hello = read_handshake(fd, "an accepting peer");
    const int sender = static_cast<int>(hello.sender);
    SACPP_REQUIRE(hello.type == FrameType::kHello,
                  "net: accepted connection opened with frame type " +
                      std::to_string(static_cast<int>(hello.type)) +
                      ", not a hello");
    SACPP_REQUIRE(hello.world == static_cast<std::uint32_t>(world),
                  "net: rank " + std::to_string(sender) + " believes in a " +
                      std::to_string(hello.world) + "-rank world, not " +
                      std::to_string(world));
    SACPP_REQUIRE(sender > self && sender < world,
                  "net: accepted a hello from rank " +
                      std::to_string(sender) +
                      ", which should not dial rank " + std::to_string(self));
    SACPP_REQUIRE(peers_[static_cast<std::size_t>(sender)].fd < 0,
                  "net: rank " + std::to_string(sender) +
                      " connected twice");
    const auto ack = build_handshake_frame(
        FrameType::kHelloAck, static_cast<std::uint32_t>(world),
        static_cast<std::uint32_t>(self));
    SACPP_REQUIRE(write_all(fd, ack),
                  "net: rank " + std::to_string(sender) +
                      " hung up before the hello ack");
    bytes_sent_.fetch_add(ack.size(), std::memory_order_relaxed);
    peers_[static_cast<std::size_t>(sender)].fd = fd;
    --expected;
  }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void TcpTransport::event_loop_() {
  epoll_event events[32];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.u32 == kEventFdSlot) {
        std::uint64_t drain = 0;
        while (::read(event_fd_, &drain, sizeof drain) > 0) {
        }
        if (stop_.load(std::memory_order_acquire)) return;
        // A sender queued frames: try to push them out now; EPOLLOUT takes
        // over if the socket buffer is full.
        for (int r = 0; r < size(); ++r) flush_outbound_(r);
        continue;
      }
      const int r = static_cast<int>(ev.data.u32);
      if ((ev.events & EPOLLIN) != 0) handle_readable_(r);
      if ((ev.events & EPOLLOUT) != 0) flush_outbound_(r);
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0 && !peer_dead_(r)) {
        mark_dead_(r, "connection reset (hangup)");
      }
    }
  }
}

void TcpTransport::handle_readable_(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.fd < 0 || peer_dead_(peer)) return;
  std::vector<std::uint8_t> frame;
  std::string error;
  for (;;) {
    std::uint8_t chunk[65536];
    const ssize_t got = ::recv(p.fd, chunk, sizeof chunk, MSG_DONTWAIT);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      mark_dead_(peer,
                 std::string("read failed: ") + std::strerror(errno));
      return;
    }
    if (got == 0) {
      mark_dead_(peer, "connection closed by peer");
      return;
    }
    bytes_received_.fetch_add(static_cast<std::uint64_t>(got),
                              std::memory_order_relaxed);
    p.assembler->feed(
        std::span<const std::uint8_t>(chunk, static_cast<std::size_t>(got)));
    for (;;) {
      const FrameResult res = p.assembler->next(&frame, &error);
      if (res == FrameResult::kNeedMore) break;
      if (res == FrameResult::kMalformed) {
        mark_dead_(peer, error);
        return;
      }
      if (!ingest_frame_(peer, frame)) return;
    }
  }
}

bool TcpTransport::ingest_frame_(int peer,
                                 std::span<const std::uint8_t> frame) {
  const std::span<const std::uint8_t> payload =
      frame.subspan(sizeof(std::uint32_t));
  if (payload.size() < 5 || get_u32(payload) != kMsgMagic) {
    mark_dead_(peer, "protocol violation: frame without the MSG1 magic");
    return false;
  }
  const auto type = static_cast<FrameType>(payload[4]);
  switch (type) {
    case FrameType::kData: {
      if (payload.size() < kDataHeaderBytes) {
        mark_dead_(peer, "protocol violation: truncated data header");
        return false;
      }
      const auto source = static_cast<int>(get_u32(payload.subspan(5)));
      const auto tag =
          static_cast<std::int32_t>(get_u32(payload.subspan(9)));
      const std::uint64_t count = get_u64(payload.subspan(13));
      if (source != peer) {
        mark_dead_(peer, "protocol violation: data frame claims source " +
                             std::to_string(source) + " on the rank-" +
                             std::to_string(peer) + " connection");
        return false;
      }
      if (payload.size() != kDataHeaderBytes + count * sizeof(double)) {
        mark_dead_(peer,
                   "protocol violation: count field disagrees with the "
                   "frame length");
        return false;
      }
      Message m;
      m.source = source;
      m.tag = static_cast<int>(tag);
      m.payload.resize(count);
      std::memcpy(m.payload.data(), payload.data() + kDataHeaderBytes,
                  count * sizeof(double));
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<TrackedMutex> lock(inbox_mutex_);
        inbox_.push_back(std::move(m));
      }
      inbox_cv_.notify_all();
      return true;
    }
    case FrameType::kBye:
      mark_dead_(peer, "rank " + std::to_string(peer) +
                           " left the world (bye frame)");
      return false;
    case FrameType::kHello:
    case FrameType::kHelloAck:
      mark_dead_(peer,
                 "protocol violation: handshake frame after rendezvous");
      return false;
  }
  mark_dead_(peer, "protocol violation: unknown frame type " +
                       std::to_string(static_cast<int>(type)));
  return false;
}

bool TcpTransport::flush_outbound_(int peer) {
  std::string died;
  bool progressed = false;
  {
    std::lock_guard<TrackedMutex> lock(peer_mutex_);
    Peer& p = peers_[static_cast<std::size_t>(peer)];
    if (p.fd < 0 || peer_dead_(peer)) return false;
    while (!p.outbound.empty()) {
      const std::vector<std::uint8_t>& front = p.outbound.front();
      const ssize_t n =
          ::send(p.fd, front.data() + p.front_offset,
                 front.size() - p.front_offset, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!p.want_write) {
            epoll_event ev{};
            ev.events = EPOLLIN | EPOLLOUT;
            ev.data.u32 = static_cast<std::uint32_t>(peer);
            ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, p.fd, &ev);
            p.want_write = true;
          }
          break;
        }
        died = std::string("write failed: ") + std::strerror(errno);
        break;
      }
      p.front_offset += static_cast<std::size_t>(n);
      p.outbound_bytes -= static_cast<std::size_t>(n);
      progressed = true;
      if (p.front_offset == front.size()) {
        p.outbound.pop_front();
        p.front_offset = 0;
      }
    }
    if (died.empty() && p.outbound.empty() && p.want_write) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u32 = static_cast<std::uint32_t>(peer);
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, p.fd, &ev);
      p.want_write = false;
    }
  }
  if (progressed) drained_.notify_all();
  if (!died.empty()) {
    mark_dead_(peer, died);
    return false;
  }
  return true;
}

void TcpTransport::mark_dead_(int peer, const std::string& reason) {
  {
    std::lock_guard<TrackedMutex> lock(peer_mutex_);
    Peer& p = peers_[static_cast<std::size_t>(peer)];
    if (p.death_reason.empty()) p.death_reason = reason;
    dead_[static_cast<std::size_t>(peer)].store(true,
                                                std::memory_order_release);
    if (p.fd >= 0) {
      ::close(p.fd);  // epoll drops the registration with the fd
      p.fd = -1;
    }
    p.outbound.clear();
    p.outbound_bytes = 0;
    p.front_offset = 0;
  }
  // Lock-then-notify so a receiver that saw the peer alive and decided to
  // wait is parked before the wakeup lands.
  drained_.notify_all();
  { std::lock_guard<TrackedMutex> lock(inbox_mutex_); }
  inbox_cv_.notify_all();
}

void TcpTransport::kick_() const {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(event_fd_, &one, sizeof one);
}

// ---------------------------------------------------------------------------
// Transport interface
// ---------------------------------------------------------------------------

void TcpTransport::throw_peer_gone_(int peer, const char* op,
                                    int tag) const {
  std::string reason;
  {
    std::lock_guard<TrackedMutex> lock(peer_mutex_);
    reason = peers_[static_cast<std::size_t>(peer)].death_reason;
  }
  if (reason.empty()) {
    reason = closed_.load(std::memory_order_acquire)
                 ? "transport closed"
                 : "peer gone";
  }
  throw ContractError("net: " + std::string(op) + "(rank " +
                      std::to_string(peer) + ", tag " + std::to_string(tag) +
                      ") on rank " + std::to_string(options_.rank) +
                      ": peer rank " + std::to_string(peer) + " at " +
                      endpoint_of(peer) + " is gone: " + reason);
}

void TcpTransport::send(int dest, int tag, std::span<const double> data) {
  SACPP_REQUIRE(dest >= 0 && dest < size() && dest != options_.rank,
                "net: send destination out of range (self-traffic never "
                "reaches the transport)");
  std::vector<std::uint8_t> frame =
      build_data_frame(options_.rank, tag, data);
  SACPP_REQUIRE(frame.size() - sizeof(std::uint32_t) <=
                    options_.max_frame_bytes,
                "net: message of " + std::to_string(data.size()) +
                    " doubles exceeds max_frame_bytes");
  obs::ScopedSpan span(obs::SpanKind::kNetFrame, "net_send",
                       static_cast<std::int64_t>(frame.size()));
  const std::size_t frame_bytes = frame.size();
  bool gone = false;
  {
    std::unique_lock<TrackedMutex> lock(peer_mutex_);
    Peer& p = peers_[static_cast<std::size_t>(dest)];
    for (;;) {
      if (closed_.load(std::memory_order_acquire) || peer_dead_(dest)) {
        gone = true;
        break;
      }
      // Backpressure: cap the bytes parked per peer; an empty queue always
      // admits the frame so a single oversized message cannot wedge.
      if (p.outbound.empty() ||
          p.outbound_bytes + frame_bytes <= options_.send_queue_cap) {
        break;
      }
      blocked_sends_.fetch_add(1, std::memory_order_relaxed);
      drained_.wait(lock);
    }
    if (!gone) {
      p.outbound_bytes += frame_bytes;
      p.outbound.push_back(std::move(frame));
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      bytes_sent_.fetch_add(frame_bytes, std::memory_order_relaxed);
    }
  }
  if (gone) throw_peer_gone_(dest, "send", tag);
  kick_();
  note_event(check::Dir::kSend, tag);
}

void TcpTransport::recv(int source, int tag, std::span<double> out) {
  SACPP_REQUIRE(source >= 0 && source < size() && source != options_.rank,
                "net: recv source out of range (self-traffic never reaches "
                "the transport)");
  obs::ScopedSpan span(obs::SpanKind::kNetFrame, "net_recv",
                       static_cast<std::int64_t>(out.size_bytes()));
  {
    std::unique_lock<TrackedMutex> lock(inbox_mutex_);
    for (;;) {
      const auto it = std::find_if(
          inbox_.begin(), inbox_.end(), [&](const Message& m) {
            return m.source == source && m.tag == tag;
          });
      if (it != inbox_.end()) {
        SACPP_REQUIRE(it->payload.size() == out.size(),
                      "net: message from rank " + std::to_string(source) +
                          " tag " + std::to_string(tag) + " has " +
                          std::to_string(it->payload.size()) +
                          " doubles, receive buffer holds " +
                          std::to_string(out.size()));
        std::copy(it->payload.begin(), it->payload.end(), out.begin());
        inbox_.erase(it);
        lock.unlock();
        note_event(check::Dir::kRecv, tag);
        return;
      }
      // Waiting is only correct while the peer can still deliver.
      if (closed_.load(std::memory_order_acquire) || peer_dead_(source)) {
        break;
      }
      inbox_cv_.wait(lock);
    }
  }
  throw_peer_gone_(source, "recv", tag);
}

bool TcpTransport::try_recv(int source, int tag, std::span<double> out) {
  SACPP_REQUIRE(source >= 0 && source < size() && source != options_.rank,
                "net: recv source out of range (self-traffic never reaches "
                "the transport)");
  {
    std::lock_guard<TrackedMutex> lock(inbox_mutex_);
    const auto it = std::find_if(
        inbox_.begin(), inbox_.end(), [&](const Message& m) {
          return m.source == source && m.tag == tag;
        });
    if (it != inbox_.end()) {
      SACPP_REQUIRE(it->payload.size() == out.size(),
                    "net: message length does not match receive buffer");
      std::copy(it->payload.begin(), it->payload.end(), out.begin());
      inbox_.erase(it);
      note_event(check::Dir::kRecv, tag);
      return true;
    }
    if (!closed_.load(std::memory_order_acquire) && !peer_dead_(source)) {
      return false;
    }
  }
  // A poll toward a dead peer would spin forever; fail it like recv does.
  throw_peer_gone_(source, "try_recv", tag);
}

msg::TransportStats TcpTransport::stats() const {
  msg::TransportStats s;
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.blocked_sends = blocked_sends_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Teardown
// ---------------------------------------------------------------------------

void TcpTransport::close_abruptly() {
  closed_.store(true, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  kick_();
  if (loop_.joinable()) loop_.join();
  for (int r = 0; r < size(); ++r) {
    if (r == options_.rank) continue;
    mark_dead_(r, "transport closed abruptly (injected fault)");
  }
}

TcpTransport::~TcpTransport() {
  if (loop_.joinable() && !closed_.load(std::memory_order_acquire)) {
    // Graceful goodbye: park a bye frame for every live peer, give the
    // event loop a bounded window to drain the queues, then stop.
    {
      std::lock_guard<TrackedMutex> lock(peer_mutex_);
      for (int r = 0; r < size(); ++r) {
        Peer& p = peers_[static_cast<std::size_t>(r)];
        if (r == options_.rank || p.fd < 0 || peer_dead_(r)) continue;
        auto bye =
            build_bye_frame(static_cast<std::uint32_t>(options_.rank));
        p.outbound_bytes += bye.size();
        bytes_sent_.fetch_add(bye.size(), std::memory_order_relaxed);
        p.outbound.push_back(std::move(bye));
      }
    }
    kick_();
    {
      std::unique_lock<TrackedMutex> lock(peer_mutex_);
      drained_.wait_for(lock, std::chrono::seconds(2), [&] {
        for (int r = 0; r < size(); ++r) {
          const Peer& p = peers_[static_cast<std::size_t>(r)];
          if (r != options_.rank && p.fd >= 0 && !p.outbound.empty()) {
            return false;
          }
        }
        return true;
      });
    }
    stop_.store(true, std::memory_order_release);
    kick_();
    loop_.join();
  } else if (loop_.joinable()) {
    loop_.join();
  }
  for (Peer& p : peers_) {
    if (p.fd >= 0) ::close(p.fd);
    p.fd = -1;
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  unregister_transport(this);
}

}  // namespace sacpp::net
