#include "sacpp/net/session.hpp"

#include "sacpp/msg/msg.hpp"

namespace sacpp::net {

std::uint32_t classify_tag(int tag) noexcept {
  if (tag >= 0) return kEvData;
  switch (tag) {
    case msg::kBarrierGatherTag:
    case msg::kBarrierReleaseTag:
      return kEvBarrier;
    case msg::kReduceContribTag:
    case msg::kReduceResultTag:
      return kEvReduce;
    case -1000:  // Comm::broadcast
      return kEvBcast;
    case -1001:  // Comm::gather
    case -1002:  // Comm::scatter
      return kEvGather;
    default:
      return kEvOther;
  }
}

check::SessionSpec halo_exchange_session_spec() {
  using check::Dir;
  check::SessionSpec spec;
  spec.name = "net.halo_exchange";
  spec.start = 0;
  spec.transitions = {
      {0, Dir::kSend, kEvData, check::kAnyBranch, 1, "send plane to prev"},
      {1, Dir::kSend, kEvData, check::kAnyBranch, 2, "send plane to next"},
      {2, Dir::kRecv, kEvData, check::kAnyBranch, 3, "recv plane"},
      {3, Dir::kRecv, kEvData, check::kAnyBranch, 0, "recv plane"},
  };
  spec.accepting = {0};
  return spec;
}

check::SessionSpec reduction_session_spec() {
  using check::Dir;
  check::SessionSpec spec;
  spec.name = "net.reduction";
  spec.start = 0;
  spec.transitions = {
      {0, Dir::kSend, kEvReduce, check::kAnyBranch, 1, "contribute to root"},
      {1, Dir::kRecv, kEvReduce, check::kAnyBranch, 0, "result from root"},
  };
  spec.accepting = {0};
  return spec;
}

check::SessionSpec barrier_session_spec() {
  using check::Dir;
  check::SessionSpec spec;
  spec.name = "net.barrier";
  spec.start = 0;
  spec.transitions = {
      {0, Dir::kSend, kEvBarrier, check::kAnyBranch, 1, "token to root"},
      {1, Dir::kRecv, kEvBarrier, check::kAnyBranch, 0, "release from root"},
  };
  spec.accepting = {0};
  return spec;
}

}  // namespace sacpp::net
