#include "sacpp/machine/model.hpp"

#include <algorithm>

#include "sacpp/common/error.hpp"

namespace sacpp::machine {

VariantProfile VariantProfile::for_variant(mg::Variant v) {
  VariantProfile p;
  switch (v) {
    case mg::Variant::kFortran:
      p.cost_factor = 1.0;
      // The compiler-generated parallel-region prologue of the
      // auto-parallelised code is far heavier than a hand-placed directive —
      // the main reason its curves in Fig. 12 flatten early.
      p.region_overhead = 18.7;
      break;
    case mg::Variant::kSacDirect:  // same generated-code quality as SAC
    case mg::Variant::kSac:
      // SAC's trace carries its real extra sweeps (Q-stencil prolongation,
      // copy-on-write border setups) at full nominal volume; the calibrated
      // per-flop factor < 1 says those extra flops were largely hidden
      // behind memory traffic on the Gigaplane — the only way the paper's
      // 23-30 % sequential gap is reachable given the algorithmic extra
      // work of the high-level formulation.
      p.cost_factor = 0.40;
      p.region_overhead = 5.67;  // the SAC MT runtime's scheduler setup
      break;
    case mg::Variant::kOpenMp:
      // The Fortran/C backend gap the paper observes (14-23 % vs SAC,
      // ~50 % vs Fortran) but cannot explain; encoded as measured.
      p.cost_factor = 1.64;
      p.region_overhead = 1.0;
      break;
  }
  return p;
}

double SmpModel::region_time(const Region& r, int cpus,
                             const VariantProfile& profile) const {
  SACPP_REQUIRE(cpus >= 1, "CPU count must be >= 1");
  const int p_eff = r.parallel ? cpus : 1;
  const double compute =
      r.flops * profile.cost_factor / (params_.flop_rate * p_eff);
  const double bw =
      std::min(static_cast<double>(p_eff) * params_.core_bw, params_.bus_bw);
  const double memory = r.bytes / bw;
  double t = std::max(compute, memory);
  if (r.parallel && cpus > 1) {
    t += (params_.fork_join + params_.barrier_per_cpu * cpus) *
         profile.region_overhead;
  }
  if (r.pool_hits > 0 || r.pool_misses > 0) {
    t += r.pool_hits * params_.pool_hit_cost +
         r.pool_misses * params_.alloc_cost;
  } else {
    t += r.alloc_events * params_.alloc_cost;
  }
  return t;
}

double SmpModel::trace_time(const Trace& trace, int cpus) const {
  const VariantProfile profile = VariantProfile::for_variant(trace.variant);
  double t = 0.0;
  for (const auto& r : trace.regions) t += region_time(r, cpus, profile);
  return t;
}

double SmpModel::benchmark_time(const Trace& trace, int cpus) const {
  return trace_time(trace, cpus) * trace.spec.nit;
}

std::vector<double> SmpModel::speedups(const Trace& trace, int max_cpus) const {
  SACPP_REQUIRE(max_cpus >= 1, "max CPU count must be >= 1");
  const double base = trace_time(trace, 1);
  std::vector<double> s;
  s.reserve(static_cast<std::size_t>(max_cpus));
  for (int p = 1; p <= max_cpus; ++p) {
    s.push_back(base / trace_time(trace, p));
  }
  return s;
}

}  // namespace sacpp::machine
