#include "sacpp/machine/trace.hpp"

#include <algorithm>
#include <cmath>

#include "sacpp/common/error.hpp"

namespace sacpp::machine {

const char* op_name(Op op) {
  switch (op) {
    case Op::kResid:
      return "resid";
    case Op::kPsinv:
      return "psinv";
    case Op::kRprj3:
      return "rprj3";
    case Op::kInterp:
      return "interp";
    case Op::kComm3:
      return "comm3";
    case Op::kVecOp:
      return "vecop";
    case Op::kZero:
      return "zero";
  }
  return "?";
}

double Trace::total_flops() const {
  double t = 0.0;
  for (const auto& r : regions) t += r.flops;
  return t;
}

double Trace::total_bytes() const {
  double t = 0.0;
  for (const auto& r : regions) t += r.bytes;
  return t;
}

int Trace::total_alloc_events() const {
  int t = 0;
  for (const auto& r : regions) t += r.alloc_events;
  return t;
}

int Trace::total_pool_hits() const {
  int t = 0;
  for (const auto& r : regions) t += r.pool_hits;
  return t;
}

int Trace::total_pool_misses() const {
  int t = 0;
  for (const auto& r : regions) t += r.pool_misses;
  return t;
}

double Trace::parallel_flop_fraction() const {
  double par = 0.0, all = 0.0;
  for (const auto& r : regions) {
    all += r.flops;
    if (r.parallel) par += r.flops;
  }
  return all > 0.0 ? par / all : 0.0;
}

// Flops use the grouped-stencil form every implementation reaches (4 mults
// shared over coefficient classes); bytes count each array touched once
// (neighbour reads hit cache).
OpCost op_cost(Op op) {
  switch (op) {
    case Op::kResid:
      return {31.0, 24.0};  // stencil + subtraction; read u, v, write r
    case Op::kPsinv:
      return {31.0, 24.0};  // stencil + addition; read r, read+write u
    case Op::kRprj3:
      return {30.0, 72.0};  // per coarse elem: 8 unique fine reads + write
    case Op::kInterp:
      return {3.5, 18.0};   // per fine elem: read+write fine, amortised coarse
    case Op::kComm3:
      return {0.0, 16.0};   // ghost copy: read + write
    case Op::kVecOp:
      return {1.0, 24.0};   // element-wise: two reads, one write
    case Op::kZero:
      return {0.0, 8.0};
  }
  return {0.0, 0.0};
}

namespace {

class TraceBuilder {
 public:
  TraceBuilder(mg::Variant variant, const mg::MgSpec& spec,
               const TraceOptions& opts)
      : variant_(variant), spec_(spec), opts_(opts), lt_(spec.levels()) {}

  // Interior element count of level k.
  double interior(int k) const {
    const double n = std::pow(2.0, k);
    return n * n * n;
  }
  // Ghost-face element count of level k (six faces of the extended cube).
  double faces(int k) const {
    const double n = std::pow(2.0, k) + 2.0;
    return 6.0 * n * n;
  }

  void emit(Op op, int level, double elems, bool parallel, int allocs) {
    const OpCost c = op_cost(op);
    Region r;
    r.op = op;
    r.level = level;
    r.elems = elems;
    r.flops = c.flops_per_elem * elems;
    r.bytes = c.bytes_per_elem * elems;
    r.parallel = parallel;
    r.alloc_events = allocs;
    regions_.push_back(r);
  }

  std::vector<Region> take() { return std::move(regions_); }

 protected:
  mg::Variant variant_;
  mg::MgSpec spec_;
  TraceOptions opts_;
  int lt_;
  static constexpr int lb_ = 1;
  std::vector<Region> regions_;
};

// -- Fortran-77 / OpenMP: the NPB kernel schedule -----------------------------
//
// Parallel coverage is where the two low-level implementations differ:
// automatic parallelisation handles the uniform relaxation loop nests
// (resid/psinv, grid clears) but gives up on the coupled fine/coarse index
// expressions of rprj3/interp and on the ghost exchanges; the OpenMP port
// carries an explicit directive on every sweep.

class LowLevelBuilder : public TraceBuilder {
 public:
  using TraceBuilder::TraceBuilder;

  std::vector<Region> build() {
    const bool omp = variant_ == mg::Variant::kOpenMp;
    auto par = [&](bool auto_par_handles_it) {
      return omp ? true : auto_par_handles_it;
    };

    // Downward leg: restriction to the coarsest grid.
    for (int k = lt_; k > lb_; --k) {
      emit(Op::kRprj3, k - 1, interior(k - 1), par(false), 0);
      emit(Op::kComm3, k - 1, faces(k - 1), false, 0);
    }
    // Bottom: one smoothing step on a cleared grid.
    emit(Op::kZero, lb_, interior(lb_), par(true), 0);
    emit(Op::kPsinv, lb_, interior(lb_), par(true), 0);
    emit(Op::kComm3, lb_, faces(lb_), false, 0);
    // Upward leg: prolongation, residual correction, smoothing.
    for (int k = lb_ + 1; k <= lt_; ++k) {
      if (k < lt_) emit(Op::kZero, k, interior(k), par(true), 0);
      emit(Op::kInterp, k, interior(k), par(false), 0);
      emit(Op::kResid, k, interior(k), par(true), 0);
      emit(Op::kComm3, k, faces(k), false, 0);
      emit(Op::kPsinv, k, interior(k), par(true), 0);
      emit(Op::kComm3, k, faces(k), false, 0);
    }
    // Iteration-ending residual on the finest grid.
    emit(Op::kResid, lt_, interior(lt_), par(true), 0);
    emit(Op::kComm3, lt_, faces(lt_), false, 0);
    return take();
  }
};

// -- SAC: the with-loop schedule ----------------------------------------------
//
// Every with-loop is implicitly parallel but runs sequentially below the
// threshold; every with-loop producing a fresh array costs two dynamic
// memory-management events (allocate + release), and border setup on a
// shared array costs an additional copy-on-write sweep.  The folded and
// unfolded schedules mirror MgSac's two code paths.

class SacBuilder : public TraceBuilder {
 public:
  using TraceBuilder::TraceBuilder;

  bool par(double elems) const {
    return elems >= opts_.sac_seq_threshold_elems;
  }

  bool direct() const { return variant_ == mg::Variant::kSacDirect; }

  // SetupPeriodicBorder(a) where `a` is shared: copy-on-write full-grid
  // copy, then the in-place border partitions.  The direct-periodic
  // implementation (paper Sec. 7 future work) has no artificial boundary
  // elements: these regions vanish entirely from its trace.
  void border_shared(int k) {
    if (direct()) return;
    emit(Op::kVecOp, k, interior(k), par(interior(k)), 2);  // COW copy
    emit(Op::kComm3, k, faces(k), par(faces(k)), 0);
  }
  // Border setup on a uniquely owned array: in place, no copy.
  void border_unique(int k) {
    if (direct()) return;
    emit(Op::kComm3, k, faces(k), par(faces(k)), 0);
  }

  // One full relaxation sweep producing a fresh array.
  void relax(int k) { emit(Op::kResid, k, interior(k), par(interior(k)), 2); }

  void vcycle(int k) {
    if (k > lb_) {
      fine2coarse(k);
      vcycle(k - 1);
      coarse2fine(k);
      // r = r - Resid(z); z = z + Smooth(r)
      sub_resid(k);
      add_smooth(k);
    } else {
      // z = Smooth(r)
      border_shared(k);
      relax(k);
    }
  }

  void fine2coarse(int k) {
    border_shared(k);
    if (opts_.sac_folding) {
      // One with-loop evaluates the P stencil at the condensed points only.
      emit(Op::kRprj3, k - 1, interior(k - 1), par(interior(k - 1)), 2);
    } else {
      relax(k);                                                   // P stencil
      emit(Op::kVecOp, k - 1, interior(k - 1) * 8.0 / 8.0,        // condense
           par(interior(k - 1)), 2);
      emit(Op::kVecOp, k - 1, interior(k - 1), par(interior(k - 1)), 2);  // embed
    }
  }

  void coarse2fine(int k) {
    border_shared(k - 1);
    // scatter (+ take): one full fine-grid sweep writing mostly zeros.
    emit(Op::kVecOp, k, interior(k), par(interior(k)), 2);
    if (!opts_.sac_folding) {
      emit(Op::kVecOp, k, interior(k), par(interior(k)), 2);  // separate take
    }
    relax(k);  // Q stencil
  }

  void sub_resid(int k) {
    border_shared(k);
    if (opts_.sac_folding) {
      emit(Op::kResid, k, interior(k), par(interior(k)), 2);  // fused v - A u
    } else {
      relax(k);                                               // A stencil
      emit(Op::kVecOp, k, interior(k), par(interior(k)), 2);  // subtraction
    }
  }

  void add_smooth(int k) {
    border_shared(k);
    if (opts_.sac_folding) {
      emit(Op::kPsinv, k, interior(k), par(interior(k)), 2);  // fused z + S r
    } else {
      relax(k);                                               // S stencil
      emit(Op::kVecOp, k, interior(k), par(interior(k)), 2);  // addition
    }
  }

  std::vector<Region> build() {
    // u = u + VCycle(r):
    vcycle(lt_);
    emit(Op::kVecOp, lt_, interior(lt_), par(interior(lt_)), 2);  // u + z
    // r = v - Resid(u):
    sub_resid(lt_);
    return take();
  }
};

}  // namespace

Trace build_trace(mg::Variant variant, const mg::MgSpec& spec,
                  const TraceOptions& opts) {
  Trace t;
  t.variant = variant;
  t.spec = spec;
  if (variant == mg::Variant::kSac || variant == mg::Variant::kSacDirect) {
    t.regions = SacBuilder(variant, spec, opts).build();
    if (opts.sac_pool) {
      // Pooled runtime: the same memory-management events happen, but a
      // measured fraction of them recycle a block instead of calling malloc.
      const double rate = std::clamp(opts.sac_pool_hit_rate, 0.0, 1.0);
      for (Region& r : t.regions) {
        r.pool_hits =
            static_cast<int>(std::lround(r.alloc_events * rate));
        r.pool_misses = r.alloc_events - r.pool_hits;
      }
    }
    if (opts.sac_planes) {
      // kPlanes runtime: relaxation sweeps on levels at or above the
      // small-grid cutover run the factorised plane-sum kernel; smaller
      // levels and the folded rprj3 gather stay on the grouped form, just
      // like SacConfig::stencil_planes_cutover in the real engine.
      const double scale = std::clamp(opts.sac_planes_flop_scale, 0.0, 1.0);
      const double ghost = variant == mg::Variant::kSacDirect ? 0.0 : 2.0;
      for (Region& r : t.regions) {
        if (r.op != Op::kResid && r.op != Op::kPsinv) continue;
        if (std::pow(2.0, r.level) + ghost >= opts.sac_planes_cutover) {
          r.flops *= scale;
        }
      }
    }
  } else {
    t.regions = LowLevelBuilder(variant, spec, opts).build();
  }
  return t;
}

}  // namespace sacpp::machine
