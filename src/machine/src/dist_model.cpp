#include "sacpp/machine/dist_model.hpp"

#include <algorithm>
#include <cmath>

#include "sacpp/common/error.hpp"

namespace sacpp::machine {

namespace {

int ceil_log2(int v) {
  int k = 0;
  while ((1 << k) < v) ++k;
  return k;
}

double interior(int level) {
  const double n = std::pow(2.0, level);
  return n * n * n;
}

double plane_bytes(int level) {
  const double n = std::pow(2.0, level) + 2.0;
  return n * n * 8.0;
}

}  // namespace

DistCost DistModel::iteration_cost(const mg::MgSpec& spec, int ranks) const {
  SACPP_REQUIRE(ranks >= 1 && (ranks & (ranks - 1)) == 0,
                "rank count must be a power of two");
  SACPP_REQUIRE(2 * static_cast<extent_t>(ranks) <= spec.nx,
                "need at least two grid planes per rank at the top level");
  const int lt = spec.levels();
  constexpr int lb = 1;
  const int kd = std::max(ceil_log2(ranks), lb);
  const MachineParams& node = params_.node;
  const double p = static_cast<double>(ranks);

  DistCost cost;

  // One-CPU time for `elems` elements of a sweep kind.
  auto compute = [&](Op op, double elems) {
    const OpCost c = op_cost(op);
    return std::max(c.flops_per_elem * elems / node.flop_rate,
                    c.bytes_per_elem * elems / node.core_bw);
  };
  // Halo exchange of one level: two plane messages per rank, concurrent
  // across ranks, sequential within a rank.
  auto exchange = [&](int level) {
    const double bytes = plane_bytes(level);
    cost.messages += 2 * static_cast<std::uint64_t>(ranks);
    cost.bytes += static_cast<std::uint64_t>(2.0 * p * bytes);
    cost.seconds += 2.0 * (params_.latency + bytes / params_.link_bw);
  };
  // Distributed sweep: per-rank share of the level plus the exchange the
  // kernel performs on its output.
  auto dist_kernel = [&](Op op, int out_level, bool with_exchange = true) {
    cost.seconds += compute(op, interior(out_level) / p);
    if (with_exchange) exchange(out_level);
  };

  // Downward leg.
  for (int k = lt; k > kd; --k) dist_kernel(Op::kRprj3, k - 1);

  if (kd > lb) {
    // Gather to rank 0, serial V-cycle tail, scatter back, halo refresh.
    const double block = plane_bytes(kd);  // one plane per rank at level kd
    for (int phase = 0; phase < 2; ++phase) {  // gather then scatter
      cost.messages += static_cast<std::uint64_t>(ranks - 1);
      cost.bytes += static_cast<std::uint64_t>((p - 1.0) * block);
      cost.seconds +=
          (p - 1.0) * (params_.latency + block / params_.link_bw);
    }
    for (int k = kd; k > lb; --k) cost.seconds += compute(Op::kRprj3, interior(k - 1));
    cost.seconds += compute(Op::kPsinv, interior(lb));
    for (int k = lb + 1; k <= kd; ++k) {
      cost.seconds += compute(Op::kZero, interior(k));
      cost.seconds += compute(Op::kInterp, interior(k));
      cost.seconds += compute(Op::kResid, interior(k));
      cost.seconds += compute(Op::kPsinv, interior(k));
    }
    exchange(kd);  // scattered correction's halos
  } else {
    dist_kernel(Op::kZero, kd, /*with_exchange=*/false);
    dist_kernel(Op::kPsinv, kd);
  }

  // Upward leg.
  for (int k = kd + 1; k <= lt; ++k) {
    if (k < lt) dist_kernel(Op::kZero, k, /*with_exchange=*/false);
    dist_kernel(Op::kInterp, k);
    dist_kernel(Op::kResid, k);
    dist_kernel(Op::kPsinv, k);
  }
  // Iteration-ending residual on the finest level.
  dist_kernel(Op::kResid, lt);

  // One norm reduction per iteration (tree latency; no point-to-point
  // traffic in the thread-backed substrate).
  cost.seconds += 2.0 * params_.latency * std::max(1, ceil_log2(ranks));

  return cost;
}

std::vector<std::pair<int, double>> DistModel::speedups(const mg::MgSpec& spec,
                                                        int max_ranks) const {
  const double base = iteration_cost(spec, 1).seconds;
  std::vector<std::pair<int, double>> out;
  for (int p = 1; p <= max_ranks &&
                  2 * static_cast<extent_t>(p) <= spec.nx;
       p *= 2) {
    out.emplace_back(p, base / iteration_cost(spec, p).seconds);
  }
  return out;
}

}  // namespace sacpp::machine
