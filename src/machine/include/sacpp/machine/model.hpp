#pragma once
// Analytical model of a bus-based shared-memory multiprocessor.
//
// The target machine of the paper — a SUN Ultra Enterprise 4000 (250 MHz
// UltraSPARC-II CPUs on a shared Gigaplane bus, SOLARIS 7) — is modelled by
// a handful of machine constants; an MG trace (trace.hpp) is scheduled onto
// P CPUs region by region:
//
//   t(region, P) = max( flops * cost / (rate * p_eff),
//                       bytes / min(p_eff * core_bw, bus_bw) )
//                  + (p_eff > 1 ? fork_join + barrier * P : 0)
//                  + alloc_events * alloc_cost                 (serial)
//
// (pooled traces replace the last term with pool_hits * pool_hit_cost +
// pool_misses * alloc_cost; see TraceOptions::sac_pool and docs/memory.md)
//
// with p_eff = P for parallel regions and 1 otherwise.  The bus term caps
// scaling for memory-bound sweeps (the Gigaplane saturates well below
// 10 CPUs of streaming traffic), the fork/join and barrier terms penalise
// the many small sweeps at the bottom of the V-cycle, and the serial
// allocation term reproduces SAC's dynamic-memory-management limit from the
// paper's Sec. 5 analysis.
//
// Constants are calibrated once against the paper's published end points
// (Fig. 11 ratios and the P=10 speedups of Fig. 12) and then *frozen*; all
// figures are produced by running traces through this one parameter set.

#include <vector>

#include "sacpp/machine/trace.hpp"

namespace sacpp::machine {

struct MachineParams {
  double flop_rate = 135.0e6;   // per-CPU sustained flop/s on stencil code
  double core_bw = 245.0e6;     // per-CPU sustainable memory bandwidth, B/s
  double bus_bw = 1.94e9;       // shared-bus saturation bandwidth, B/s
  double fork_join = 45.0e-6;   // s per parallel region start/stop
  double barrier_per_cpu = 3.1e-6;  // s per CPU per region barrier
  double alloc_cost = 27.0e-6;  // s per dynamic memory-management event
  // s per memory-management event served by the pooled allocator
  // (docs/memory.md): alloc_cost scaled by the pool-hit / malloc cost ratio
  // measured with bench/abl_pool on the reference host (~0.36 on the
  // bottom-of-V-cycle shape ladder).  Regions of a pooled trace
  // (TraceOptions::sac_pool) charge hits at this rate and misses at
  // alloc_cost; non-pooled traces are unaffected, so the frozen Fig. 11-13
  // calibration is untouched.
  double pool_hit_cost = 9.7e-6;

  // The SUN Ultra Enterprise 4000 calibration (the defaults above).  Fitted
  // once against the ten published end points of Figs. 11/12 (see
  // EXPERIMENTS.md for the residuals); frozen thereafter.
  static MachineParams sun_e4000() { return MachineParams{}; }
};

// Implementation-specific per-flop cost factor relative to the Fortran-77
// reference (backend code quality).  SAC's extra sweeps and allocations are
// explicit in its trace; the residual factor covers the generic with-loop
// body overhead sac2c cannot remove (the paper's missing shared-plane
// optimisation).  The C factor encodes the observed Fortran/C backend gap
// the paper reports but could not explain.
struct VariantProfile {
  double cost_factor = 1.0;
  // Multiplier on the per-region fork/join + barrier overhead: hand-placed
  // OpenMP directives start a team cheaply, SAC's MT runtime adds its
  // scheduler setup, and the auto-parallelised Fortran code pays the
  // compiler-generated region prologue on every sweep.
  double region_overhead = 1.0;
  static VariantProfile for_variant(mg::Variant v);
};

class SmpModel {
 public:
  explicit SmpModel(const MachineParams& params = MachineParams::sun_e4000())
      : params_(params) {}

  const MachineParams& params() const { return params_; }

  // Seconds for one region on P CPUs.
  double region_time(const Region& r, int cpus,
                     const VariantProfile& profile) const;

  // Seconds for one benchmark iteration (the whole trace) on P CPUs.
  double trace_time(const Trace& trace, int cpus) const;

  // Seconds for the full benchmark (nit iterations).
  double benchmark_time(const Trace& trace, int cpus) const;

  // Speedup curve T(1)/T(P) for P = 1..max_cpus.
  std::vector<double> speedups(const Trace& trace, int max_cpus) const;

 private:
  MachineParams params_;
};

}  // namespace sacpp::machine
