#pragma once
// Parallel-region traces of the MG implementations.
//
// The paper's parallel results (Figs. 12/13) were measured on a 12-CPU SUN
// Ultra Enterprise 4000, which we do not have; DESIGN.md §4 documents the
// substitution.  The substitute works on an execution *trace*: the exact
// sequence of grid sweeps one benchmark iteration performs — derived from
// the same V-cycle schedule the real solvers execute, with per-sweep element
// counts, flop counts and memory traffic computed from the real grid
// geometry — annotated with how each implementation runs that sweep:
//
//  * SAC        — every with-loop is implicitly parallel, but each array
//                 operation carries dynamic memory-management events whose
//                 cost is invariant in grid size (the paper's Sec. 5
//                 analysis), and sweeps below the sequential threshold run
//                 on one CPU;
//  * Fortran-77 — automatic parallelisation covers the simple relaxation
//                 sweeps but not the loop nests with coupled index
//                 expressions (rprj3/interp) nor the ghost exchanges;
//                 static memory layout, no allocation events;
//  * C/OpenMP   — hand-placed directives parallelise every sweep with small
//                 constant overhead ("almost static" memory layout).
//
// The model (model.hpp) then schedules a trace onto P CPUs.

#include <string>
#include <vector>

#include "sacpp/mg/driver.hpp"
#include "sacpp/mg/spec.hpp"

namespace sacpp::machine {

enum class Op {
  kResid,    // r = v - A u        (27-point stencil + subtraction)
  kPsinv,    // u += C r           (27-point stencil + addition)
  kRprj3,    // fine -> coarse restriction
  kInterp,   // coarse -> fine prolongation (additive)
  kComm3,    // periodic ghost exchange / border setup
  kVecOp,    // full-grid element-wise operation (unfused SAC only)
  kZero,     // grid clear
};

const char* op_name(Op op);

// Nominal per-element work and unique memory traffic of each sweep kind
// (shared by the shared-memory trace builder and the distributed model).
struct OpCost {
  double flops_per_elem = 0.0;
  double bytes_per_elem = 0.0;
};

OpCost op_cost(Op op);

// One grid sweep as one (potential) parallel region.
struct Region {
  Op op = Op::kResid;
  int level = 0;          // V-cycle level (levels() = finest)
  double elems = 0.0;     // result elements computed
  double flops = 0.0;     // total floating-point operations
  double bytes = 0.0;     // total unique memory traffic (read + write)
  bool parallel = false;  // this implementation runs the sweep in parallel
  int alloc_events = 0;   // dynamic memory-management operations (serial)
  // Split of alloc_events under the pooled allocator (docs/memory.md):
  // hits recycle a block at pool_hit_cost, misses pay the full alloc_cost.
  // Both zero means "no pool" and the region is charged alloc_events at
  // alloc_cost — the paper's original memory-management term.
  int pool_hits = 0;
  int pool_misses = 0;
};

struct Trace {
  mg::Variant variant = mg::Variant::kSac;
  mg::MgSpec spec;
  std::vector<Region> regions;  // one benchmark iteration (V-cycle + resid)

  double total_flops() const;
  double total_bytes() const;
  int total_alloc_events() const;
  int total_pool_hits() const;
  int total_pool_misses() const;
  // Fraction of flops inside parallel-annotated regions (Amdahl coverage).
  double parallel_flop_fraction() const;
};

struct TraceOptions {
  // SAC: with-loops over fewer elements run sequentially (config D4).
  double sac_seq_threshold_elems = 4096.0;
  // SAC: with-loop folding (folded traces have fewer sweeps/allocations).
  bool sac_folding = true;
  // SAC: pooled buffer allocator (SacConfig::pool).  Off by default: the
  // paper's SAC runtime had none, and the calibrated figures (Fig. 11-13)
  // reproduce that machine.  When on, each region's alloc_events are split
  // into pool hits/misses at sac_pool_hit_rate — bench/abl_pool feeds the
  // hit rate measured on a real run (steady-state MG recycles every shape,
  // so the real rate is ~1 minus a cold-start term).
  bool sac_pool = false;
  double sac_pool_hit_rate = 1.0;
  // SAC: kPlanes shared plane-sum stencil engine (SacConfig::stencil_mode,
  // docs/stencil.md).  Off by default — the paper's sac2c runtime had only
  // the grouped form, so the calibrated Fig. 11-13 traces stay byte
  // identical.  When on, relaxation-sweep regions (kResid/kPsinv — the ops
  // the row path serves) on levels whose grid extent reaches
  // sac_planes_cutover have their flops scaled by sac_planes_flop_scale:
  // the factorised 4-mult/~16-add per-point cost over the grouped
  // 4-mult/26-add one.  Folded rprj3 regions (kRprj3) are never scaled —
  // the condensed gather evaluates per point in the real engine too.
  bool sac_planes = false;
  double sac_planes_cutover = 18.0;
  double sac_planes_flop_scale = 20.0 / 31.0;
};

// Build the single-iteration trace of one implementation.
Trace build_trace(mg::Variant variant, const mg::MgSpec& spec,
                  const TraceOptions& opts = {});

}  // namespace sacpp::machine
