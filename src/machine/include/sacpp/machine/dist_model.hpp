#pragma once
// Analytical model of the message-passing MG (the paper's requested
// MPI-reference comparison, Sec. 7).
//
// Mirrors the slab implementation in src/mg/mg_mpi.cpp exactly: for P
// ranks, grid levels with at least one plane per rank run distributed
// (compute divided by P, one halo exchange of two plane messages per rank
// per kernel), the coarse tail is gathered to rank 0 and executed serially,
// and each iteration ends with one reduction.  Message counts and byte
// volumes are exact — the tests verify them against the real
// implementation's traffic counters — while times come from the same
// per-CPU compute parameters as the shared-memory model plus a
// latency/bandwidth link model.  The machine pictured is a cluster of
// E4000-class uniprocessor nodes: each rank owns its full memory
// bandwidth (no shared bus), which is exactly why the message-passing
// curves keep climbing where the shared-memory ones saturate.

#include "sacpp/machine/model.hpp"
#include "sacpp/machine/trace.hpp"

namespace sacpp::machine {

struct ClusterParams {
  // Per-message one-way cost and per-link bandwidth of a late-90s
  // high-speed interconnect (Myrinet class).
  double latency = 25.0e-6;   // s per point-to-point message
  double link_bw = 180.0e6;   // B/s per link
  MachineParams node;         // per-CPU compute (shared with SmpModel)
};

struct DistCost {
  double seconds = 0.0;          // one benchmark iteration
  std::uint64_t messages = 0;    // point-to-point messages per iteration
  std::uint64_t bytes = 0;       // point-to-point payload bytes per iteration
};

class DistModel {
 public:
  explicit DistModel(const ClusterParams& params = ClusterParams{})
      : params_(params) {}

  const ClusterParams& params() const { return params_; }

  // Cost of one iteration (mg3p + residual + one reduction) on `ranks`.
  DistCost iteration_cost(const mg::MgSpec& spec, int ranks) const;

  // Speedup curve T(1)/T(P) for P = 1, 2, 4, ..., <= max_ranks.
  std::vector<std::pair<int, double>> speedups(const mg::MgSpec& spec,
                                               int max_ranks) const;

 private:
  ClusterParams params_;
};

}  // namespace sacpp::machine
