#pragma once
// The paper's published numbers (Grelck, IPPS 2002, Sec. 5), used as
// calibration targets and recorded next to our reproduced values in
// EXPERIMENTS.md.  Fig. 11 is published as ratios; Figs. 12/13 as curves of
// which the text quotes the P=10 end points.

namespace sacpp::machine::paper {

// Fig. 11 — sequential performance ratios.
inline constexpr double kF77OverSacW = 1.296;  // F77 faster than SAC, class W
inline constexpr double kF77OverSacA = 1.230;  // class A
inline constexpr double kSacOverCW = 1.142;    // SAC faster than C, class W
inline constexpr double kSacOverCA = 1.225;    // class A

// Fig. 12 — speedups at P = 10 relative to each variant's own serial time.
inline constexpr double kSacSpeedupW10 = 5.3;
inline constexpr double kSacSpeedupA10 = 7.6;
inline constexpr double kF77SpeedupW10 = 2.8;
inline constexpr double kF77SpeedupA10 = 4.0;
inline constexpr double kOmpSpeedupW10 = 8.0;
inline constexpr double kOmpSpeedupA10 = 9.0;

// Fig. 13 — qualitative end points: SAC passes auto-parallelised F77 at
// four CPUs; for class A SAC stays ahead of OpenMP over P <= 10.
inline constexpr int kSacBeatsF77AtCpus = 4;

}  // namespace sacpp::machine::paper
