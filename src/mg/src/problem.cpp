#include "sacpp/mg/problem.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sacpp/common/error.hpp"
#include "sacpp/nasrand/nasrand.hpp"

namespace sacpp::mg {

std::vector<double> random_field(extent_t nx) {
  SACPP_REQUIRE(nx >= 1, "random_field needs nx >= 1");
  using namespace sacpp::nasrand;
  std::vector<double> field(static_cast<std::size_t>(nx * nx * nx));

  // NPB zran3 structure: one vranlc call per (i2, i3) row of nx deviates,
  // with the row start seed jumped by a^nx per row and a^(nx*nx) per plane.
  // Because the jumps equal the consumed counts, the field is one contiguous
  // deviate sequence; we keep the jump structure anyway so the unit tests
  // can validate ipow46 against sequential generation.
  const double a1 = ipow46(kDefaultMultiplier, nx);        // one row
  const double a2 = ipow46(kDefaultMultiplier, nx * nx);   // one plane
  double x0 = kDefaultSeed;
  for (extent_t i3 = 0; i3 < nx; ++i3) {
    double x1 = x0;
    for (extent_t i2 = 0; i2 < nx; ++i2) {
      double xx = x1;
      double* row = field.data() + (i3 * nx + i2) * nx;
      vranlc(&xx, kDefaultMultiplier,
             std::span<double>(row, static_cast<std::size_t>(nx)));
      randlc(&x1, a1);
    }
    randlc(&x0, a2);
  }
  return field;
}

Charges find_charges(const std::vector<double>& field, extent_t nx) {
  SACPP_REQUIRE(field.size() == static_cast<std::size_t>(nx * nx * nx),
                "field size does not match nx^3");
  const std::size_t want =
      std::min<std::size_t>(10, field.size());  // NPB uses mm = 10

  std::vector<std::size_t> order(field.size());
  std::iota(order.begin(), order.end(), 0);

  auto pos_of = [nx](std::size_t flat) {
    IndexVec iv(3);
    iv[2] = static_cast<extent_t>(flat) % nx;          // i1 (fastest)
    iv[1] = (static_cast<extent_t>(flat) / nx) % nx;   // i2
    iv[0] = static_cast<extent_t>(flat) / (nx * nx);   // i3
    return iv;
  };

  Charges ch;

  std::partial_sort(order.begin(), order.begin() + static_cast<long>(want),
                    order.end(), [&](std::size_t x, std::size_t y) {
                      if (field[x] != field[y]) return field[x] > field[y];
                      return x < y;  // scan-order tie break
                    });
  for (std::size_t i = 0; i < want; ++i) ch.plus.push_back(pos_of(order[i]));

  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(want),
                    order.end(), [&](std::size_t x, std::size_t y) {
                      if (field[x] != field[y]) return field[x] < field[y];
                      return x < y;
                    });
  for (std::size_t i = 0; i < want; ++i) ch.minus.push_back(pos_of(order[i]));

  return ch;
}

void fill_rhs(std::span<double> v_ext, extent_t nx) {
  const extent_t n = nx + 2;
  SACPP_REQUIRE(v_ext.size() == static_cast<std::size_t>(n * n * n),
                "extended RHS buffer size mismatch");
  std::fill(v_ext.begin(), v_ext.end(), 0.0);

  const Charges ch = find_charges(random_field(nx), nx);
  auto at = [&](const IndexVec& interior) -> double& {
    // shift by the ghost layer
    const extent_t i = interior[0] + 1, j = interior[1] + 1,
                   k = interior[2] + 1;
    return v_ext[static_cast<std::size_t>((i * n + j) * n + k)];
  };
  for (const auto& p : ch.plus) at(p) = +1.0;
  for (const auto& m : ch.minus) at(m) = -1.0;

  periodic_border_3d(v_ext, n);
}

void periodic_border_3d(std::span<double> a, extent_t n) {
  SACPP_REQUIRE(a.size() == static_cast<std::size_t>(n * n * n),
                "extended cube buffer size mismatch");
  SACPP_REQUIRE(n >= 3, "extended cube needs extent >= 3");
  auto idx = [n](extent_t i, extent_t j, extent_t k) {
    return static_cast<std::size_t>((i * n + j) * n + k);
  };
  // Axis 2 (fastest), then axis 1, then axis 0 — the NPB comm3 order; later
  // axes replicate the edge/corner values written by earlier ones.
  for (extent_t i = 0; i < n; ++i) {
    for (extent_t j = 0; j < n; ++j) {
      a[idx(i, j, 0)] = a[idx(i, j, n - 2)];
      a[idx(i, j, n - 1)] = a[idx(i, j, 1)];
    }
  }
  for (extent_t i = 0; i < n; ++i) {
    for (extent_t k = 0; k < n; ++k) {
      a[idx(i, 0, k)] = a[idx(i, n - 2, k)];
      a[idx(i, n - 1, k)] = a[idx(i, 1, k)];
    }
  }
  for (extent_t j = 0; j < n; ++j) {
    for (extent_t k = 0; k < n; ++k) {
      a[idx(0, j, k)] = a[idx(n - 2, j, k)];
      a[idx(n - 1, j, k)] = a[idx(1, j, k)];
    }
  }
}

double interior_l2_norm(std::span<const double> a, extent_t n) {
  SACPP_REQUIRE(a.size() == static_cast<std::size_t>(n * n * n),
                "extended cube buffer size mismatch");
  const extent_t nx = n - 2;
  double ss = 0.0;
  for (extent_t i = 1; i < n - 1; ++i) {
    for (extent_t j = 1; j < n - 1; ++j) {
      const double* row = a.data() + static_cast<std::size_t>((i * n + j) * n);
      for (extent_t k = 1; k < n - 1; ++k) ss += row[k] * row[k];
    }
  }
  return std::sqrt(ss / static_cast<double>(nx * nx * nx));
}

double interior_max_abs(std::span<const double> a, extent_t n) {
  SACPP_REQUIRE(a.size() == static_cast<std::size_t>(n * n * n),
                "extended cube buffer size mismatch");
  double m = 0.0;
  for (extent_t i = 1; i < n - 1; ++i) {
    for (extent_t j = 1; j < n - 1; ++j) {
      const double* row = a.data() + static_cast<std::size_t>((i * n + j) * n);
      for (extent_t k = 1; k < n - 1; ++k) m = std::max(m, std::abs(row[k]));
    }
  }
  return m;
}

}  // namespace sacpp::mg
