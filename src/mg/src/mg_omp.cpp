#include "sacpp/mg/mg_omp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "sacpp/common/error.hpp"
#include "sacpp/mg/problem.hpp"
#include "sacpp/obs/obs.hpp"

namespace sacpp::mg {

MgOmp::MgOmp(const MgSpec& spec) : spec_(spec), lt_(spec.levels()) {
  SACPP_REQUIRE(lt_ >= lb_, "MG needs at least one level");
  n_.assign(static_cast<std::size_t>(lt_) + 1, 0);
  u_.resize(static_cast<std::size_t>(lt_) + 1);
  r_.resize(static_cast<std::size_t>(lt_) + 1);
  for (int k = lb_; k <= lt_; ++k) {
    const auto sk = static_cast<std::size_t>(k);
    n_[sk] = (extent_t{1} << k) + 2;
    const auto c = static_cast<std::size_t>(n_[sk] * n_[sk] * n_[sk]);
    u_[sk].assign(c, 0.0);
    r_[sk].assign(c, 0.0);
  }
  v_.assign(u_[static_cast<std::size_t>(lt_)].size(), 0.0);
}

void MgOmp::omp_threads(int t) {
#ifdef _OPENMP
  omp_set_num_threads(t);
#else
  (void)t;
#endif
}

bool MgOmp::openmp_available() {
#ifdef _OPENMP
  return true;
#else
  return false;
#endif
}

void MgOmp::set_rhs(std::span<const double> v_ext) {
  SACPP_REQUIRE(v_ext.size() == v_.size(), "RHS buffer size mismatch");
  std::copy(v_ext.begin(), v_ext.end(), v_.begin());
}

void MgOmp::setup_default_rhs() {
  fill_rhs(std::span<double>(v_.data(), v_.size()), spec_.nx);
}

void MgOmp::zero_u() {
  for (int k = lb_; k <= lt_; ++k) {
    auto& uk = u_[static_cast<std::size_t>(k)];
    std::fill(uk.begin(), uk.end(), 0.0);
  }
}

void MgOmp::initial_resid() {
  const auto slt = static_cast<std::size_t>(lt_);
  kernel_resid(u_[slt].data(), v_.data(), r_[slt].data(), n_[slt]);
}

void MgOmp::iterate(int count) {
  for (int it = 0; it < count; ++it) {
    mg3p();
    initial_resid();
  }
}

double MgOmp::residual_norm() const {
  const auto slt = static_cast<std::size_t>(lt_);
  return interior_l2_norm(r(), n_[slt]);
}

std::span<const double> MgOmp::u() const {
  const auto& a = u_[static_cast<std::size_t>(lt_)];
  return {a.data(), a.size()};
}
std::span<const double> MgOmp::v() const { return {v_.data(), v_.size()}; }
std::span<const double> MgOmp::r() const {
  const auto& a = r_[static_cast<std::size_t>(lt_)];
  return {a.data(), a.size()};
}

// ---------------------------------------------------------------------------
// Kernels — same stencil optimisation as the reference, OpenMP work-sharing
// over the outermost grid axis, per-thread line buffers.
// ---------------------------------------------------------------------------

void MgOmp::kernel_comm3(double* a, extent_t n) {
  const std::size_t nn = static_cast<std::size_t>(n);
  periodic_border_3d(std::span<double>(a, nn * nn * nn), n);
}

void MgOmp::kernel_resid(const double* u_in, const double* v_in, double* r_out,
                         extent_t n) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "resid", n);
  const double a0 = spec_.a[0], a2 = spec_.a[2], a3 = spec_.a[3];
  const std::size_t nn = static_cast<std::size_t>(n);
#pragma omp parallel
  {
    std::vector<double> b1(nn), b2(nn);
    double* u1 = b1.data();
    double* u2 = b2.data();
#pragma omp for
    for (extent_t i = 1; i < n - 1; ++i) {
      for (extent_t j = 1; j < n - 1; ++j) {
        const std::size_t base =
            (static_cast<std::size_t>(i) * nn + static_cast<std::size_t>(j)) *
            nn;
        const double* um = u_in + base - nn * nn;
        const double* up = u_in + base + nn * nn;
        const double* ujm = u_in + base - nn;
        const double* ujp = u_in + base + nn;
        for (extent_t k = 0; k < n; ++k) {
          u1[k] = ujm[k] + ujp[k] + um[k] + up[k];
          u2[k] = um[-static_cast<std::ptrdiff_t>(nn) + k] +
                  um[static_cast<std::ptrdiff_t>(nn) + k] +
                  up[-static_cast<std::ptrdiff_t>(nn) + k] +
                  up[static_cast<std::ptrdiff_t>(nn) + k];
        }
        const double* uc = u_in + base;
        const double* vc = v_in + base;
        double* rc = r_out + base;
        for (extent_t k = 1; k < n - 1; ++k) {
          rc[k] = vc[k] - a0 * uc[k] - a2 * (u2[k] + u1[k - 1] + u1[k + 1]) -
                  a3 * (u2[k - 1] + u2[k + 1]);
        }
      }
    }
  }
  kernel_comm3(r_out, n);
}

void MgOmp::kernel_psinv(const double* r_in, double* u_inout,
                         extent_t n) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "psinv", n);
  const double c0 = spec_.s[0], c1 = spec_.s[1], c2 = spec_.s[2];
  const std::size_t nn = static_cast<std::size_t>(n);
#pragma omp parallel
  {
    std::vector<double> b1(nn), b2(nn);
    double* r1 = b1.data();
    double* r2 = b2.data();
#pragma omp for
    for (extent_t i = 1; i < n - 1; ++i) {
      for (extent_t j = 1; j < n - 1; ++j) {
        const std::size_t base =
            (static_cast<std::size_t>(i) * nn + static_cast<std::size_t>(j)) *
            nn;
        const double* rim = r_in + base - nn * nn;
        const double* rip = r_in + base + nn * nn;
        const double* rjm = r_in + base - nn;
        const double* rjp = r_in + base + nn;
        for (extent_t k = 0; k < n; ++k) {
          r1[k] = rjm[k] + rjp[k] + rim[k] + rip[k];
          r2[k] = rim[-static_cast<std::ptrdiff_t>(nn) + k] +
                  rim[static_cast<std::ptrdiff_t>(nn) + k] +
                  rip[-static_cast<std::ptrdiff_t>(nn) + k] +
                  rip[static_cast<std::ptrdiff_t>(nn) + k];
        }
        const double* rc = r_in + base;
        double* uc = u_inout + base;
        for (extent_t k = 1; k < n - 1; ++k) {
          uc[k] += c0 * rc[k] + c1 * (rc[k - 1] + rc[k + 1] + r1[k]) +
                   c2 * (r2[k] + r1[k - 1] + r1[k + 1]);
        }
      }
    }
  }
  kernel_comm3(u_inout, n);
}

void MgOmp::kernel_rprj3(const double* fine, extent_t nf, double* coarse,
                         extent_t nc) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "rprj3", nf);
  SACPP_REQUIRE(nf - 2 == 2 * (nc - 2), "rprj3 level extent mismatch");
  const double p0 = spec_.p[0], p1 = spec_.p[1], p2 = spec_.p[2],
               p3 = spec_.p[3];
  const std::size_t nnf = static_cast<std::size_t>(nf);
  const std::size_t nnc = static_cast<std::size_t>(nc);
#pragma omp parallel
  {
    std::vector<double> b1(nnf), b2(nnf);
    double* x1 = b1.data();
    double* y1 = b2.data();
#pragma omp for
    for (extent_t jc = 1; jc < nc - 1; ++jc) {
      const extent_t i = 2 * jc;
      for (extent_t kc = 1; kc < nc - 1; ++kc) {
        const extent_t j = 2 * kc;
        const std::size_t base =
            (static_cast<std::size_t>(i) * nnf + static_cast<std::size_t>(j)) *
            nnf;
        const double* fim = fine + base - nnf * nnf;
        const double* fip = fine + base + nnf * nnf;
        const double* fjm = fine + base - nnf;
        const double* fjp = fine + base + nnf;
        // Plane sums must extend into the ghost columns: the last interior
        // coarse point reads x1/y1 at fine index nf-1.
        for (extent_t k = 1; k < nf; ++k) {
          x1[k] = fim[-static_cast<std::ptrdiff_t>(nnf) + k] +
                  fim[static_cast<std::ptrdiff_t>(nnf) + k] +
                  fip[-static_cast<std::ptrdiff_t>(nnf) + k] +
                  fip[static_cast<std::ptrdiff_t>(nnf) + k];
          y1[k] = fjm[k] + fjp[k] + fim[k] + fip[k];
        }
        const double* fc = fine + base;
        double* crow = coarse + (static_cast<std::size_t>(jc) * nnc +
                                 static_cast<std::size_t>(kc)) *
                                    nnc;
        for (extent_t mc = 1; mc < nc - 1; ++mc) {
          const extent_t k = 2 * mc;
          crow[mc] = p0 * fc[k] + p1 * (fc[k - 1] + fc[k + 1] + y1[k]) +
                     p2 * (x1[k] + y1[k - 1] + y1[k + 1]) +
                     p3 * (x1[k - 1] + x1[k + 1]);
        }
      }
    }
  }
  kernel_comm3(coarse, nc);
}

void MgOmp::kernel_interp(const double* coarse, extent_t nc, double* fine,
                          extent_t nf) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "interp", nf);
  SACPP_REQUIRE(nf - 2 == 2 * (nc - 2), "interp level extent mismatch");
  const double q1 = spec_.q[1], q2 = spec_.q[2], q3 = spec_.q[3];
  const std::size_t nnf = static_cast<std::size_t>(nf);
  const std::size_t nnc = static_cast<std::size_t>(nc);
#pragma omp parallel
  {
    std::vector<double> b1(nnc), b2(nnc), b3(nnc);
    double* z1 = b1.data();
    double* z2 = b2.data();
    double* z3 = b3.data();
#pragma omp for
    for (extent_t ci = 0; ci < nc - 1; ++ci) {
      for (extent_t cj = 0; cj < nc - 1; ++cj) {
        const std::size_t cbase =
            (static_cast<std::size_t>(ci) * nnc + static_cast<std::size_t>(cj)) *
            nnc;
        const double* zc = coarse + cbase;
        const double* zcj = zc + nnc;
        const double* zci = zc + nnc * nnc;
        const double* zcc = zci + nnc;
        for (extent_t k = 0; k < nc; ++k) {
          z1[k] = zcj[k] + zc[k];
          z2[k] = zci[k] + zc[k];
          z3[k] = zcc[k] + zci[k] + z1[k];
        }
        double* f00 = fine + (static_cast<std::size_t>(2 * ci) * nnf +
                              static_cast<std::size_t>(2 * cj)) *
                                 nnf;
        double* f01 = f00 + nnf;
        double* f10 = f00 + nnf * nnf;
        double* f11 = f10 + nnf;
        for (extent_t ck = 0; ck < nc - 1; ++ck) {
          const extent_t k = 2 * ck;
          f00[k] += zc[ck];
          f00[k + 1] += q1 * (zc[ck + 1] + zc[ck]);
          f01[k] += q1 * z1[ck];
          f01[k + 1] += q2 * (z1[ck] + z1[ck + 1]);
          f10[k] += q1 * z2[ck];
          f10[k + 1] += q2 * (z2[ck] + z2[ck + 1]);
          f11[k] += q2 * z3[ck];
          f11[k + 1] += q3 * (z3[ck] + z3[ck + 1]);
        }
      }
    }
  }
}

void MgOmp::mg3p() {
  for (int k = lt_; k > lb_; --k) {
    const auto sk = static_cast<std::size_t>(k);
    kernel_rprj3(r_[sk].data(), n_[sk], r_[sk - 1].data(), n_[sk - 1]);
  }
  {
    auto& ub = u_[static_cast<std::size_t>(lb_)];
    std::fill(ub.begin(), ub.end(), 0.0);
    kernel_psinv(r_[static_cast<std::size_t>(lb_)].data(), ub.data(),
                 n_[static_cast<std::size_t>(lb_)]);
  }
  for (int k = lb_ + 1; k < lt_; ++k) {
    const auto sk = static_cast<std::size_t>(k);
    std::fill(u_[sk].begin(), u_[sk].end(), 0.0);
    kernel_interp(u_[sk - 1].data(), n_[sk - 1], u_[sk].data(), n_[sk]);
    kernel_resid(u_[sk].data(), r_[sk].data(), r_[sk].data(), n_[sk]);
    kernel_psinv(r_[sk].data(), u_[sk].data(), n_[sk]);
  }
  if (lt_ > lb_) {
    const auto slt = static_cast<std::size_t>(lt_);
    kernel_interp(u_[slt - 1].data(), n_[slt - 1], u_[slt].data(), n_[slt]);
    kernel_resid(u_[slt].data(), v_.data(), r_[slt].data(), n_[slt]);
    kernel_psinv(r_[slt].data(), u_[slt].data(), n_[slt]);
  }
}

}  // namespace sacpp::mg
