#include "sacpp/mg/mg_mpi.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>

#include "sacpp/common/error.hpp"
#include "sacpp/common/timer.hpp"
#include "sacpp/obs/obs.hpp"
#include "sacpp/mg/mg_ref.hpp"
#include "sacpp/mg/problem.hpp"

namespace sacpp::mg {

namespace {

bool is_power_of_two(int v) { return v > 0 && (v & (v - 1)) == 0; }

int ceil_log2(int v) {
  int k = 0;
  while ((1 << k) < v) ++k;
  return k;
}

// One rank's slab of one grid level: `m` owned interior planes plus one
// halo plane on each side; every plane is a full (n x n) extended sheet
// (the j/k axes are not decomposed).
struct Slab {
  extent_t n = 0;  // global extended extent of the level
  extent_t m = 0;  // owned interior planes
  std::vector<double> data;

  void init(extent_t n_, extent_t m_) {
    n = n_;
    m = m_;
    data.assign(static_cast<std::size_t>((m + 2) * n * n), 0.0);
  }
  double* plane(extent_t l) {
    return data.data() + static_cast<std::size_t>(l * n * n);
  }
  const double* plane(extent_t l) const {
    return data.data() + static_cast<std::size_t>(l * n * n);
  }
  std::size_t plane_elems() const { return static_cast<std::size_t>(n * n); }
  void zero() { std::fill(data.begin(), data.end(), 0.0); }
};

// Per-rank solver state and kernels.
class RankSolver {
 public:
  RankSolver(const MgSpec& spec, msg::Comm& comm, bool overlap_halo)
      : spec_(spec),
        comm_(comm),
        ranks_(comm.size()),
        overlap_(overlap_halo),
        lt_(spec.levels()),
        kd_(std::max(ceil_log2(comm.size()), kLb)) {
    u_.resize(static_cast<std::size_t>(lt_) + 1);
    r_.resize(static_cast<std::size_t>(lt_) + 1);
    for (int k = kd_; k <= lt_; ++k) {
      const extent_t n = spec_.extended_extent(k);
      const extent_t m = (extent_t{1} << k) / ranks_;
      u_[static_cast<std::size_t>(k)].init(n, m);
      r_[static_cast<std::size_t>(k)].init(n, m);
    }
    v_.init(spec_.extended_extent(lt_),
            (extent_t{1} << lt_) / ranks_);
    if (kd_ > kLb && comm_.rank() == 0) {
      tail_ = std::make_unique<MgRef>(
          MgSpec::custom(extent_t{1} << kd_, 1, spec_.s[0] == -3.0 / 17.0));
    }
  }

  // -- setup -------------------------------------------------------------

  void setup_rhs() {
    // Every rank generates the (deterministic) global RHS and keeps its
    // slab; NPB distributes the generator instead — same data, no traffic.
    const extent_t nx = spec_.nx;
    const extent_t n = nx + 2;
    std::vector<double> full(static_cast<std::size_t>(n * n * n));
    fill_rhs(full, nx);
    const extent_t lo = global_base(v_);
    // interior planes + halos straight from the full array (the global
    // extended array already carries the periodic ghost planes):
    for (extent_t l = 0; l <= v_.m + 1; ++l) {
      extent_t g = lo + l;  // global extended plane index of local plane l
      std::memcpy(v_.plane(l), full.data() + static_cast<std::size_t>(g) *
                                                 v_.plane_elems(),
                  v_.plane_elems() * sizeof(double));
    }
  }

  void zero_solution() {
    for (int k = kd_; k <= lt_; ++k) u_[static_cast<std::size_t>(k)].zero();
  }

  // -- one benchmark iteration --------------------------------------------

  void initial_resid() {
    resid_slab(u_top(), v_, r_top());
  }

  void mg3p() {
    // Downward leg over the distributed levels.
    for (int k = lt_; k > kd_; --k) {
      rprj3_slab(r_[static_cast<std::size_t>(k)],
                 r_[static_cast<std::size_t>(k - 1)]);
    }
    if (kd_ > kLb) {
      coarse_tail();  // gather -> serial V-cycle tail on rank 0 -> scatter
    } else {
      // Fully distributed bottom: one smoothing step on a cleared grid.
      Slab& ub = u_[static_cast<std::size_t>(kd_)];
      ub.zero();
      psinv_slab(r_[static_cast<std::size_t>(kd_)], ub);
    }
    // Upward leg.
    for (int k = kd_ + 1; k <= lt_; ++k) {
      Slab& uk = u_[static_cast<std::size_t>(k)];
      Slab& rk = r_[static_cast<std::size_t>(k)];
      if (k < lt_) uk.zero();
      interp_slab(u_[static_cast<std::size_t>(k - 1)], uk);
      if (k < lt_) {
        resid_slab(uk, rk, rk);
        psinv_slab(rk, uk);
      } else {
        resid_slab(uk, v_, rk);
        psinv_slab(rk, uk);
      }
    }
  }

  double residual_norm() {
    const Slab& r = r_top();
    double ss = 0.0;
    for (extent_t l = 1; l <= r.m; ++l) {
      const double* p = r.plane(l);
      for (extent_t j = 1; j < r.n - 1; ++j) {
        const double* row = p + j * r.n;
        for (extent_t k = 1; k < r.n - 1; ++k) ss += row[k] * row[k];
      }
    }
    const double total = comm_.allreduce_sum(ss);
    const double nx = static_cast<double>(spec_.nx);
    return std::sqrt(total / (nx * nx * nx));
  }

  void barrier() { comm_.barrier(); }

 private:
  static constexpr int kLb = 1;

  Slab& u_top() { return u_[static_cast<std::size_t>(lt_)]; }
  Slab& r_top() { return r_[static_cast<std::size_t>(lt_)]; }

  // Global extended plane index of a slab's local plane 0 (its low halo).
  extent_t global_base(const Slab& s) const {
    return static_cast<extent_t>(comm_.rank()) * s.m;
  }

  // -- communication -------------------------------------------------------

  // In-flight halo exchange: the irecv pair waiting on both neighbour
  // planes.  Requests are value handles; wait via end_exchange.
  struct ExchangeHandles {
    msg::Comm::Request high;
    msg::Comm::Request low;
  };

  // Post the cyclic halo exchange along the decomposed axis: local plane 1
  // goes to the previous rank's high halo, local plane m to the next rank's
  // low halo.  The NPB pattern: post both receives, send both planes —
  // buffered-asynchronous sends (a socket transport drains them on its
  // event loop) let communication proceed while the caller computes.  Tags
  // separate concurrent exchanges per level/kind.
  ExchangeHandles begin_exchange(Slab& s, int tag) {
    obs::ScopedSpan span(obs::SpanKind::kPhase, "halo_post", s.n);
    const int prev = (comm_.rank() + ranks_ - 1) % ranks_;
    const int next = (comm_.rank() + 1) % ranks_;
    const std::size_t pe = s.plane_elems();
    auto high_halo = comm_.irecv(next, tag, {s.plane(s.m + 1), pe});
    auto low_halo = comm_.irecv(prev, tag + 1, {s.plane(0), pe});
    comm_.isend(prev, tag, {s.plane(1), pe});      // low-going
    comm_.isend(next, tag + 1, {s.plane(s.m), pe});  // high-going
    return {high_halo, low_halo};
  }

  void end_exchange(ExchangeHandles& h, extent_t n) {
    obs::ScopedSpan span(obs::SpanKind::kPhase, "halo_wait", n);
    h.high.wait();
    h.low.wait();
  }

  void exchange_planes(Slab& s, int tag) {
    ExchangeHandles h = begin_exchange(s, tag);
    end_exchange(h, s.n);
  }

  // Periodic borders of the non-decomposed axes of one owned plane, in the
  // serial comm3 order (axis 2 first, then axis 1).
  void apply_jk_borders(Slab& s, extent_t l) {
    const extent_t n = s.n;
    double* p = s.plane(l);
    for (extent_t j = 0; j < n; ++j) {
      double* row = p + j * n;
      row[0] = row[n - 2];
      row[n - 1] = row[1];
    }
    std::memcpy(p, p + (n - 2) * n, static_cast<std::size_t>(n) * 8);
    std::memcpy(p + (n - 1) * n, p + n, static_cast<std::size_t>(n) * 8);
  }

  // Borders for every owned plane followed by the halo exchange — together
  // equivalent to the serial comm3.
  void comm3_slab(Slab& s, int tag) {
    for (extent_t l = 1; l <= s.m; ++l) apply_jk_borders(s, l);
    exchange_planes(s, tag);
  }

  // -- kernels (reference arithmetic on slabs) ------------------------------

  // One output plane of the residual; planes are independent (u and v are
  // only read), which is what licenses the overlapped sweep below.
  void resid_plane(const Slab& u, const Slab& v, Slab& r, extent_t l) {
    const double a0 = spec_.a[0], a2 = spec_.a[2], a3 = spec_.a[3];
    const extent_t n = u.n;
    std::vector<double> u1(static_cast<std::size_t>(n)),
        u2(static_cast<std::size_t>(n));
    const double* um = u.plane(l - 1);
    const double* uc = u.plane(l);
    const double* up = u.plane(l + 1);
    const double* vc = v.plane(l);
    double* rc = r.plane(l);
    for (extent_t j = 1; j < n - 1; ++j) {
      const double* ucm = uc + (j - 1) * n;
      const double* ucp = uc + (j + 1) * n;
      const double* umr = um + j * n;
      const double* upr = up + j * n;
      for (extent_t k = 0; k < n; ++k) {
        u1[static_cast<std::size_t>(k)] = ucm[k] + ucp[k] + umr[k] + upr[k];
        u2[static_cast<std::size_t>(k)] =
            um[(j - 1) * n + k] + um[(j + 1) * n + k] +
            up[(j - 1) * n + k] + up[(j + 1) * n + k];
      }
      const double* ur = uc + j * n;
      const double* vr = vc + j * n;
      double* rr = rc + j * n;
      for (extent_t k = 1; k < n - 1; ++k) {
        rr[k] = vr[k] - a0 * ur[k] -
                a2 * (u2[static_cast<std::size_t>(k)] +
                      u1[static_cast<std::size_t>(k - 1)] +
                      u1[static_cast<std::size_t>(k + 1)]) -
                a3 * (u2[static_cast<std::size_t>(k - 1)] +
                      u2[static_cast<std::size_t>(k + 1)]);
      }
    }
  }

  void resid_slab(const Slab& u, const Slab& v, Slab& r) {
    obs::ScopedSpan span(obs::SpanKind::kKernel, "resid", u.n);
    if (overlap_ && r.m >= 2) {
      // Boundary planes first: they are all the neighbours need, so the
      // exchange flies while the interior planes compute.  Identical
      // arithmetic per plane, only the schedule differs.
      resid_plane(u, v, r, 1);
      resid_plane(u, v, r, r.m);
      apply_jk_borders(r, 1);
      apply_jk_borders(r, r.m);
      ExchangeHandles h = begin_exchange(r, 10);
      for (extent_t l = 2; l < r.m; ++l) resid_plane(u, v, r, l);
      for (extent_t l = 2; l < r.m; ++l) apply_jk_borders(r, l);
      end_exchange(h, r.n);
      return;
    }
    for (extent_t l = 1; l <= u.m; ++l) resid_plane(u, v, r, l);
    comm3_slab(r, 10);
  }

  // One output plane of the smoother.  Reads r planes l-1..l+1, writes only
  // u plane l, so the planes of a sweep are mutually independent.
  void psinv_plane(const Slab& r, Slab& u, extent_t l) {
    const double c0 = spec_.s[0], c1 = spec_.s[1], c2 = spec_.s[2];
    const extent_t n = r.n;
    std::vector<double> r1(static_cast<std::size_t>(n)),
        r2(static_cast<std::size_t>(n));
    const double* rm = r.plane(l - 1);
    const double* rc = r.plane(l);
    const double* rp = r.plane(l + 1);
    double* uc = u.plane(l);
    for (extent_t j = 1; j < n - 1; ++j) {
      const double* rcm = rc + (j - 1) * n;
      const double* rcp = rc + (j + 1) * n;
      const double* rmr = rm + j * n;
      const double* rpr = rp + j * n;
      for (extent_t k = 0; k < n; ++k) {
        r1[static_cast<std::size_t>(k)] = rcm[k] + rcp[k] + rmr[k] + rpr[k];
        r2[static_cast<std::size_t>(k)] =
            rm[(j - 1) * n + k] + rm[(j + 1) * n + k] +
            rp[(j - 1) * n + k] + rp[(j + 1) * n + k];
      }
      const double* rr = rc + j * n;
      double* ur = uc + j * n;
      for (extent_t k = 1; k < n - 1; ++k) {
        ur[k] += c0 * rr[k] +
                 c1 * (rr[k - 1] + rr[k + 1] +
                       r1[static_cast<std::size_t>(k)]) +
                 c2 * (r2[static_cast<std::size_t>(k)] +
                       r1[static_cast<std::size_t>(k - 1)] +
                       r1[static_cast<std::size_t>(k + 1)]);
      }
    }
  }

  void psinv_slab(const Slab& r, Slab& u) {
    obs::ScopedSpan span(obs::SpanKind::kKernel, "psinv", r.n);
    if (overlap_ && u.m >= 2) {
      psinv_plane(r, u, 1);
      psinv_plane(r, u, u.m);
      apply_jk_borders(u, 1);
      apply_jk_borders(u, u.m);
      ExchangeHandles h = begin_exchange(u, 20);
      for (extent_t l = 2; l < u.m; ++l) psinv_plane(r, u, l);
      for (extent_t l = 2; l < u.m; ++l) apply_jk_borders(u, l);
      end_exchange(h, u.n);
      return;
    }
    for (extent_t l = 1; l <= r.m; ++l) psinv_plane(r, u, l);
    comm3_slab(u, 20);
  }

  void rprj3_slab(const Slab& fine, Slab& coarse) {
    obs::ScopedSpan span(obs::SpanKind::kKernel, "rprj3", fine.n);
    const double p0 = spec_.p[0], p1 = spec_.p[1], p2 = spec_.p[2],
                 p3 = spec_.p[3];
    const extent_t nf = fine.n, nc = coarse.n;
    std::vector<double> x1(static_cast<std::size_t>(nf)),
        y1(static_cast<std::size_t>(nf));
    for (extent_t lc = 1; lc <= coarse.m; ++lc) {
      const extent_t lf = 2 * lc;  // aligned because m is even here
      const double* fm = fine.plane(lf - 1);
      const double* fc = fine.plane(lf);
      const double* fp = fine.plane(lf + 1);
      double* cp = coarse.plane(lc);
      for (extent_t kc = 1; kc < nc - 1; ++kc) {
        const extent_t j = 2 * kc;
        for (extent_t k = 1; k < nf; ++k) {
          x1[static_cast<std::size_t>(k)] =
              fm[(j - 1) * nf + k] + fm[(j + 1) * nf + k] +
              fp[(j - 1) * nf + k] + fp[(j + 1) * nf + k];
          y1[static_cast<std::size_t>(k)] =
              fc[(j - 1) * nf + k] + fc[(j + 1) * nf + k] +
              fm[j * nf + k] + fp[j * nf + k];
        }
        const double* fr = fc + j * nf;
        double* cr = cp + kc * nc;
        for (extent_t mc = 1; mc < nc - 1; ++mc) {
          const extent_t k = 2 * mc;
          cr[mc] = p0 * fr[k] + p1 * (fr[k - 1] + fr[k + 1] +
                                      y1[static_cast<std::size_t>(k)]) +
                   p2 * (x1[static_cast<std::size_t>(k)] +
                         y1[static_cast<std::size_t>(k - 1)] +
                         y1[static_cast<std::size_t>(k + 1)]) +
                   p3 * (x1[static_cast<std::size_t>(k - 1)] +
                         x1[static_cast<std::size_t>(k + 1)]);
        }
      }
    }
    comm3_slab(coarse, 30);
  }

  // Additive prolongation; afterwards the fine halos are refreshed by a
  // plane exchange (equivalent to the ghost values the serial interp
  // writes, see the derivation in DESIGN.md).
  void interp_slab(const Slab& coarse, Slab& fine) {
    obs::ScopedSpan span(obs::SpanKind::kKernel, "interp", fine.n);
    const double q1 = spec_.q[1], q2 = spec_.q[2], q3 = spec_.q[3];
    const extent_t nf = fine.n, nc = coarse.n;
    std::vector<double> z1(static_cast<std::size_t>(nc)),
        z2(static_cast<std::size_t>(nc)), z3(static_cast<std::size_t>(nc));
    for (extent_t lc = 0; lc <= coarse.m; ++lc) {
      const extent_t f_even = 2 * lc;      // local fine plane of this cell
      const extent_t f_odd = 2 * lc + 1;
      const bool write_even = f_even >= 1 && f_even <= fine.m;
      const bool write_odd = f_odd >= 1 && f_odd <= fine.m;
      if (!write_even && !write_odd) continue;
      const double* zc0 = coarse.plane(lc);
      const double* zc1 = coarse.plane(lc + 1);
      for (extent_t cj = 0; cj < nc - 1; ++cj) {
        const double* zc = zc0 + cj * nc;
        const double* zcj = zc0 + (cj + 1) * nc;
        const double* zci = zc1 + cj * nc;
        const double* zcc = zc1 + (cj + 1) * nc;
        for (extent_t k = 0; k < nc; ++k) {
          z1[static_cast<std::size_t>(k)] = zcj[k] + zc[k];
          z2[static_cast<std::size_t>(k)] = zci[k] + zc[k];
          z3[static_cast<std::size_t>(k)] =
              zcc[k] + zci[k] + z1[static_cast<std::size_t>(k)];
        }
        double* f0j = write_even ? fine.plane(f_even) + 2 * cj * nf : nullptr;
        double* f0J = write_even
                          ? fine.plane(f_even) + (2 * cj + 1) * nf
                          : nullptr;
        double* f1j = write_odd ? fine.plane(f_odd) + 2 * cj * nf : nullptr;
        double* f1J = write_odd ? fine.plane(f_odd) + (2 * cj + 1) * nf
                                : nullptr;
        for (extent_t ck = 0; ck < nc - 1; ++ck) {
          const extent_t k = 2 * ck;
          const auto c = static_cast<std::size_t>(ck);
          if (write_even) {
            f0j[k] += zc[ck];
            f0j[k + 1] += q1 * (zc[ck + 1] + zc[ck]);
            f0J[k] += q1 * z1[c];
            f0J[k + 1] += q2 * (z1[c] + z1[c + 1]);
          }
          if (write_odd) {
            f1j[k] += q1 * z2[c];
            f1j[k + 1] += q2 * (z2[c] + z2[c + 1]);
            f1J[k] += q2 * z3[c];
            f1J[k + 1] += q3 * (z3[c] + z3[c + 1]);
          }
        }
      }
    }
    exchange_planes(fine, 40);
  }

  // Gather the coarsest distributed level to rank 0, run the remaining
  // V-cycle levels with the serial reference kernels, scatter the
  // correction back.
  void coarse_tail() {
    Slab& rk = r_[static_cast<std::size_t>(kd_)];
    Slab& uk = u_[static_cast<std::size_t>(kd_)];
    const std::size_t pe = rk.plane_elems();
    const extent_t planes = extent_t{1} << kd_;  // == ranks_ (m == 1)

    std::vector<double> full_r(comm_.rank() == 0
                                   ? pe * static_cast<std::size_t>(planes)
                                   : 0);
    comm_.gather(0, std::span<const double>(rk.plane(1), pe * rk.m),
                 std::span<double>(full_r));

    std::vector<double> full_u(comm_.rank() == 0 ? full_r.size() : 0);
    if (comm_.rank() == 0) {
      // Assemble the extended serial grid: interior planes from the gather,
      // halo planes periodic.
      auto rt = tail_->level_r_span(kd_);
      std::memcpy(rt.data() + pe, full_r.data(),
                  full_r.size() * sizeof(double));
      std::memcpy(rt.data(), rt.data() + static_cast<std::size_t>(planes) * pe,
                  pe * sizeof(double));
      std::memcpy(rt.data() + static_cast<std::size_t>(planes + 1) * pe,
                  rt.data() + pe, pe * sizeof(double));

      // The serial tail: exactly what mg3p does for levels <= kd.
      for (int k = kd_; k > kLb; --k) {
        tail_->kernel_rprj3(tail_->level_r_span(k).data(),
                            tail_->level_extent(k),
                            tail_->level_r_span(k - 1).data(),
                            tail_->level_extent(k - 1));
      }
      auto ub = tail_->level_u_span(kLb);
      std::fill(ub.begin(), ub.end(), 0.0);
      tail_->kernel_psinv(tail_->level_r_span(kLb).data(), ub.data(),
                          tail_->level_extent(kLb));
      for (int k = kLb + 1; k <= kd_; ++k) {
        auto ukk = tail_->level_u_span(k);
        std::fill(ukk.begin(), ukk.end(), 0.0);
        tail_->kernel_interp(tail_->level_u_span(k - 1).data(),
                             tail_->level_extent(k - 1), ukk.data(),
                             tail_->level_extent(k));
        tail_->kernel_resid(ukk.data(), tail_->level_r_span(k).data(),
                            tail_->level_r_span(k).data(),
                            tail_->level_extent(k));
        tail_->kernel_psinv(tail_->level_r_span(k).data(), ukk.data(),
                            tail_->level_extent(k));
      }
      std::memcpy(full_u.data(), tail_->level_u_span(kd_).data() + pe,
                  full_u.size() * sizeof(double));
    }
    comm_.scatter(0, std::span<const double>(full_u),
                  std::span<double>(uk.plane(1), pe * uk.m));
    exchange_planes(uk, 50);  // periodic halos of the scattered correction
  }

  MgSpec spec_;
  msg::Comm& comm_;
  int ranks_;
  bool overlap_;  // overlap halo exchange with interior compute in sweeps
  int lt_;
  int kd_;  // coarsest distributed level
  std::vector<Slab> u_, r_;
  Slab v_;
  std::unique_ptr<MgRef> tail_;  // rank 0 only
};

}  // namespace

MgMpi::MgMpi(const MgSpec& spec, int ranks, bool overlap_halo)
    : spec_(spec), ranks_(ranks), overlap_halo_(overlap_halo) {
  SACPP_REQUIRE(is_power_of_two(ranks), "rank count must be a power of two");
  SACPP_REQUIRE(2 * static_cast<extent_t>(ranks) <= spec.nx,
                "need at least two grid planes per rank at the top level");
}

MgMpi::Result MgMpi::run_rank(msg::Comm& comm, int nit, bool warmup) const {
  SACPP_REQUIRE(comm.size() == ranks_,
                "communicator size does not match configured rank count");
  RankSolver solver(spec_, comm, overlap_halo_);
  solver.setup_rhs();
  solver.zero_solution();
  solver.initial_resid();
  if (warmup) {
    solver.mg3p();
    solver.initial_resid();
    solver.zero_solution();
    solver.initial_resid();
  }
  comm.barrier();            // all setup traffic delivered
  comm.reset_world_stats();  // each process zeroes its own world's counters
  comm.barrier();

  Result result;
  double elapsed = 0.0;
  for (int it = 0; it < nit; ++it) {
    Timer t;
    solver.mg3p();
    solver.initial_resid();
    solver.barrier();
    elapsed += t.elapsed_seconds();
    result.norms.push_back(solver.residual_norm());
  }
  result.final_norm = result.norms.empty() ? 0.0 : result.norms.back();
  result.seconds = elapsed;
  return result;
}

MgMpi::Result MgMpi::run(int nit, bool warmup) const {
  msg::World world(ranks_);
  Result result;
  std::mutex result_mutex;

  world.run([&](msg::Comm& comm) {
    Result local = run_rank(comm, nit, warmup);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(result_mutex);
      result = std::move(local);
    }
  });
  result.comm = world.stats();
  return result;
}

}  // namespace sacpp::mg
