#include "sacpp/mg/driver.hpp"

#include <cmath>
#include <span>
#include <utility>

#include "sacpp/common/error.hpp"
#include "sacpp/common/timer.hpp"
#include "sacpp/mg/mg_omp.hpp"
#include "sacpp/mg/mg_ref.hpp"
#include "sacpp/mg/mg_sac.hpp"
#include "sacpp/mg/mg_sac_direct.hpp"
#include "sacpp/mg/problem.hpp"

namespace sacpp::mg {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kSac:
      return "SAC";
    case Variant::kFortran:
      return "Fortran-77";
    case Variant::kOpenMp:
      return "C/OpenMP";
    case Variant::kSacDirect:
      return "SAC-direct";
  }
  return "?";
}

Variant parse_variant(const std::string& name) {
  if (name == "sac" || name == "SAC") return Variant::kSac;
  if (name == "f77" || name == "fortran" || name == "ref")
    return Variant::kFortran;
  if (name == "omp" || name == "openmp" || name == "c")
    return Variant::kOpenMp;
  if (name == "sac-direct" || name == "direct") return Variant::kSacDirect;
  SACPP_REQUIRE(false, "unknown MG variant: " + name);
  return Variant::kSac;  // unreachable
}

double nominal_flops(const MgSpec& spec) {
  // The traditional NPB approximation: 58 floating-point operations per
  // fine-grid point per iteration.
  const double points = static_cast<double>(spec.nx) *
                        static_cast<double>(spec.nx) *
                        static_cast<double>(spec.nx);
  return 58.0 * points * static_cast<double>(spec.nit);
}

bool reference_norm(const MgSpec& spec, double* out) {
  // Regenerated with this reproduction (all four implementations agree to
  // <=1e-12 relative); classes S, A and B equal the official NPB 2.3
  // verification constants (0.5307707005734e-04, 0.2433365309e-05,
  // 0.180056440132e-05), class W matches the published value to the
  // rounding floor of its 1e-18 magnitude.
  if (spec.cls == MgClass::S && spec.nx == 32 && spec.nit == 4) {
    *out = 5.307707005734909e-05;
    return true;
  }
  if (spec.cls == MgClass::W && spec.nx == 64 && spec.nit == 40) {
    *out = 2.435731590081497e-18;
    return true;
  }
  if (spec.cls == MgClass::A && spec.nx == 256 && spec.nit == 4) {
    *out = 2.433365309069285e-06;
    return true;
  }
  if (spec.cls == MgClass::B && spec.nx == 256 && spec.nit == 20) {
    *out = 1.800564401355128e-06;
    return true;
  }
  return false;
}

bool verify(const MgResult& result, const MgSpec& spec, bool* known) {
  double ref = 0.0;
  *known = reference_norm(spec, &ref);
  if (!*known) return false;
  // NPB's verification tolerance: 1e-8 relative.  Class W's 40 iterations
  // converge to the rounding floor (~1e-18), where the norm consists of
  // accumulated round-off and is reproducible only for the exact reference
  // operation order; implementations with mathematically identical but
  // reordered arithmetic legitimately land within a small factor, so the
  // floor case verifies the magnitude instead.
  const double denom = std::max(std::abs(ref), 1e-300);
  if (ref < 1e-15) {
    const double ratio = result.final_norm / denom;
    return ratio > 0.2 && ratio < 5.0;
  }
  return std::abs(result.final_norm - ref) / denom < 1e-8;
}

std::string npb_report(const MgResult& result, const MgSpec& spec) {
  bool known = false;
  const bool ok = verify(result, spec, &known);
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      " MG Benchmark Completed.\n"
      " Implementation      = %s\n"
      " Class               = %s\n"
      " Size                = %lld x %lld x %lld\n"
      " Iterations          = %d\n"
      " Time in seconds     = %.2f\n"
      " Mop/s total         = %.2f\n"
      " Operation type      = floating point\n"
      " Verification        = %s\n"
      " L2 norm             = %.13e\n",
      variant_name(result.variant), spec.name().c_str(),
      static_cast<long long>(spec.nx), static_cast<long long>(spec.nx),
      static_cast<long long>(spec.nx), result.nit, result.seconds,
      result.mflops,
      known ? (ok ? "SUCCESSFUL" : "UNSUCCESSFUL") : "NOT PERFORMED",
      result.final_norm);
  return buf;
}

namespace {

// Shared measurement loop over any solver exposing the NPB protocol
// operations.  Norm recording happens with the timer paused, so recorded
// runs stay comparable to bare ones.
template <typename Reset, typename Step, typename Norm>
MgResult measure(Variant variant, const MgSpec& spec, const RunOptions& opts,
                 Reset&& reset, Step&& step, Norm&& norm) {
  MgResult res;
  res.variant = variant;
  res.cls = spec.name();
  res.nx = spec.nx;
  res.nit = spec.nit;

  reset();
  if (opts.warmup) {
    step();    // one untimed iteration touches every page
    reset();   // re-initialise, as NPB does after its warm-up
  }

  double elapsed = 0.0;
  for (int it = 0; it < spec.nit; ++it) {
    Timer t;
    step();
    elapsed += t.elapsed_seconds();
    if (opts.record_norms) res.norms.push_back(norm());
  }
  res.seconds = elapsed;
  res.final_norm = norm();
  res.mflops = elapsed > 0.0 ? nominal_flops(spec) / elapsed / 1e6 : 0.0;
  return res;
}

MgResult run_sac(const MgSpec& spec, const RunOptions& opts) {
  const extent_t n = spec.nx + 2;
  const Shape shp = cube_shape(3, n);
  std::vector<double> v_raw(static_cast<std::size_t>(n * n * n));
  fill_rhs(std::span<double>(v_raw), spec.nx);

  const sac::Array<double> v = sac::with_genarray<double>(
      shp, sac::gen_all(), sac::rank3_body([&](extent_t i, extent_t j,
                                               extent_t k) {
        return v_raw[static_cast<std::size_t>((i * n + j) * n + k)];
      }));

  MgSac solver(spec);
  sac::Array<double> u;
  sac::Array<double> r;

  auto reset = [&] {
    u = sac::genarray_const(shp, 0.0);
    // initial residual: r = v - A u  (outside the timed section, as in NPB)
    r = solver.residual(v, u);
  };
  auto step = [&] {
    u = std::move(u) + solver.vcycle(r);  // in-place update (refcount 1)
    r = solver.residual(v, u);
  };
  auto norm = [&] {
    double points = static_cast<double>(spec.nx);
    points = points * points * points;
    const Shape& rs = r.shape();
    const double ss = sac::with_fold(std::plus<>{}, 0.0, rs,
                                     sac::gen_interior(rs),
                                     sac::sum_sq_rows(r));
    return std::sqrt(ss / points);
  };
  return measure(Variant::kSac, spec, opts, reset, step, norm);
}

MgResult run_ref(const MgSpec& spec, const RunOptions& opts) {
  MgRef solver(spec);
  solver.setup_default_rhs();
  auto reset = [&] {
    solver.zero_u();
    solver.initial_resid();
  };
  auto step = [&] { solver.iterate(1); };
  auto norm = [&] { return solver.residual_norm(); };
  return measure(Variant::kFortran, spec, opts, reset, step, norm);
}

MgResult run_sac_direct(const MgSpec& spec, const RunOptions& opts) {
  const extent_t nx = spec.nx;
  const extent_t n = nx + 2;
  std::vector<double> v_raw(static_cast<std::size_t>(n * n * n));
  fill_rhs(std::span<double>(v_raw), nx);

  // Ghost-free RHS: the interior of the extended benchmark input.
  const Shape shp = cube_shape(3, nx);
  const sac::Array<double> v = sac::with_genarray<double>(
      shp, sac::rank3_body([&](extent_t i, extent_t j, extent_t k) {
        return v_raw[static_cast<std::size_t>(
            ((i + 1) * n + (j + 1)) * n + (k + 1))];
      }));

  MgSacDirect solver(spec);
  sac::Array<double> u;
  sac::Array<double> r;

  auto reset = [&] {
    u = sac::genarray_const(shp, 0.0);
    r = solver.residual(v, u);
  };
  auto step = [&] {
    u = std::move(u) + solver.vcycle(r);
    r = solver.residual(v, u);
  };
  auto norm = [&] {
    const double ss = sac::with_fold(std::plus<>{}, 0.0, r.shape(),
                                     sac::gen_all(), sac::sum_sq_rows(r));
    return std::sqrt(ss / static_cast<double>(r.elem_count()));
  };
  return measure(Variant::kSacDirect, spec, opts, reset, step, norm);
}

MgResult run_omp(const MgSpec& spec, const RunOptions& opts) {
  MgOmp solver(spec);
  solver.setup_default_rhs();
  auto reset = [&] {
    solver.zero_u();
    solver.initial_resid();
  };
  auto step = [&] { solver.iterate(1); };
  auto norm = [&] { return solver.residual_norm(); };
  return measure(Variant::kOpenMp, spec, opts, reset, step, norm);
}

}  // namespace

MgResult run_benchmark(Variant variant, const MgSpec& spec,
                       const RunOptions& opts) {
  switch (variant) {
    case Variant::kSac:
      return run_sac(spec, opts);
    case Variant::kFortran:
      return run_ref(spec, opts);
    case Variant::kOpenMp:
      return run_omp(spec, opts);
    case Variant::kSacDirect:
      return run_sac_direct(spec, opts);
  }
  SACPP_REQUIRE(false, "invalid variant");
  return {};
}

}  // namespace sacpp::mg
