#include "sacpp/mg/mg_ref.hpp"

#include <algorithm>
#include <cstring>

#include "sacpp/common/error.hpp"
#include "sacpp/mg/problem.hpp"
#include "sacpp/mg/profiler.hpp"

namespace sacpp::mg {

MgRef::MgRef(const MgSpec& spec) : spec_(spec), lt_(spec.levels()) {
  SACPP_REQUIRE(lt_ >= lb_, "MG needs at least one level");
  n_.assign(static_cast<std::size_t>(lt_) + 1, 0);
  off_u_.assign(static_cast<std::size_t>(lt_) + 1, 0);
  off_r_.assign(static_cast<std::size_t>(lt_) + 1, 0);
  std::size_t total = 0;
  for (int k = lb_; k <= lt_; ++k) {
    n_[static_cast<std::size_t>(k)] = (extent_t{1} << k) + 2;
    off_u_[static_cast<std::size_t>(k)] = total;
    total += cube(k);
    off_r_[static_cast<std::size_t>(k)] = total;
    total += cube(k);
  }
  off_v_ = total;
  total += cube(lt_);
  arena_.assign(total, 0.0);  // the single static allocation
  const auto nmax = static_cast<std::size_t>(n_[static_cast<std::size_t>(lt_)]);
  buf1_.assign(nmax, 0.0);
  buf2_.assign(nmax, 0.0);
  buf3_.assign(nmax, 0.0);
}

void MgRef::set_rhs(std::span<const double> v_ext) {
  SACPP_REQUIRE(v_ext.size() == cube(lt_), "RHS buffer size mismatch");
  std::copy(v_ext.begin(), v_ext.end(), top_v());
}

void MgRef::setup_default_rhs() {
  fill_rhs(std::span<double>(top_v(), cube(lt_)), spec_.nx);
}

void MgRef::zero_u() {
  for (int k = lb_; k <= lt_; ++k) {
    std::memset(level_u(k), 0, cube(k) * sizeof(double));
  }
}

void MgRef::initial_resid() {
  kernel_resid(level_u(lt_), top_v(), level_r(lt_), n_[static_cast<std::size_t>(lt_)]);
}

void MgRef::iterate(int count) {
  for (int it = 0; it < count; ++it) {
    mg3p();
    initial_resid();
  }
}

double MgRef::residual_norm() const {
  return interior_l2_norm(r(), n_[static_cast<std::size_t>(lt_)]);
}

std::span<const double> MgRef::u() const {
  return {level_u(lt_), cube(lt_)};
}
std::span<const double> MgRef::v() const { return {top_v(), cube(lt_)}; }
std::span<const double> MgRef::r() const {
  return {level_r(lt_), cube(lt_)};
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

void MgRef::kernel_resid(const double* u_in, const double* v_in, double* r_out,
                         extent_t n) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "resid", n);
  const double a0 = spec_.a[0], a2 = spec_.a[2], a3 = spec_.a[3];
  // a[1] == 0 for the benchmark operator A; the reference code omits its
  // term entirely (the "4 multiplications" optimisation).
  SACPP_ASSERT(spec_.a[1] == 0.0, "reference resid assumes a[1] == 0");
  double* u1 = buf1_.data();
  double* u2 = buf2_.data();
  const std::size_t nn = static_cast<std::size_t>(n);
  auto at = [nn](const double* p, extent_t i, extent_t j) {
    return p + (static_cast<std::size_t>(i) * nn + static_cast<std::size_t>(j)) * nn;
  };
  for (extent_t i = 1; i < n - 1; ++i) {
    for (extent_t j = 1; j < n - 1; ++j) {
      const double* um = at(u_in, i - 1, j);
      const double* up = at(u_in, i + 1, j);
      const double* ujm = at(u_in, i, j - 1);
      const double* ujp = at(u_in, i, j + 1);
      const double* umm = at(u_in, i - 1, j - 1);
      const double* ump = at(u_in, i - 1, j + 1);
      const double* upm = at(u_in, i + 1, j - 1);
      const double* upp = at(u_in, i + 1, j + 1);
      for (extent_t k = 0; k < n; ++k) {
        u1[k] = ujm[k] + ujp[k] + um[k] + up[k];
        u2[k] = umm[k] + ump[k] + upm[k] + upp[k];
      }
      const double* uc = at(u_in, i, j);
      const double* vc = at(v_in, i, j);
      double* rrow =
          r_out +
          (static_cast<std::size_t>(i) * nn + static_cast<std::size_t>(j)) * nn;
      for (extent_t k = 1; k < n - 1; ++k) {
        rrow[k] = vc[k] - a0 * uc[k] - a2 * (u2[k] + u1[k - 1] + u1[k + 1]) -
                  a3 * (u2[k - 1] + u2[k + 1]);
      }
    }
  }
  periodic_border_3d(std::span<double>(r_out, nn * nn * nn), n);
}

void MgRef::kernel_psinv(const double* r_in, double* u_inout,
                         extent_t n) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "psinv", n);
  const double c0 = spec_.s[0], c1 = spec_.s[1], c2 = spec_.s[2];
  // c[3] == 0 for both benchmark smoother coefficient sets.
  SACPP_ASSERT(spec_.s[3] == 0.0, "reference psinv assumes c[3] == 0");
  double* r1 = buf1_.data();
  double* r2 = buf2_.data();
  const std::size_t nn = static_cast<std::size_t>(n);
  auto at = [nn](const double* p, extent_t i, extent_t j) {
    return p + (static_cast<std::size_t>(i) * nn + static_cast<std::size_t>(j)) * nn;
  };
  for (extent_t i = 1; i < n - 1; ++i) {
    for (extent_t j = 1; j < n - 1; ++j) {
      const double* rjm = at(r_in, i, j - 1);
      const double* rjp = at(r_in, i, j + 1);
      const double* rim = at(r_in, i - 1, j);
      const double* rip = at(r_in, i + 1, j);
      const double* rmm = at(r_in, i - 1, j - 1);
      const double* rmp = at(r_in, i - 1, j + 1);
      const double* rpm = at(r_in, i + 1, j - 1);
      const double* rpp = at(r_in, i + 1, j + 1);
      for (extent_t k = 0; k < n; ++k) {
        r1[k] = rjm[k] + rjp[k] + rim[k] + rip[k];
        r2[k] = rmm[k] + rmp[k] + rpm[k] + rpp[k];
      }
      const double* rrow = at(r_in, i, j);
      double* urow =
          u_inout +
          (static_cast<std::size_t>(i) * nn + static_cast<std::size_t>(j)) * nn;
      for (extent_t k = 1; k < n - 1; ++k) {
        urow[k] += c0 * rrow[k] + c1 * (rrow[k - 1] + rrow[k + 1] + r1[k]) +
                   c2 * (r2[k] + r1[k - 1] + r1[k + 1]);
      }
    }
  }
  periodic_border_3d(std::span<double>(u_inout, nn * nn * nn), n);
}

void MgRef::kernel_rprj3(const double* fine, extent_t nf, double* coarse,
                         extent_t nc) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "rprj3", nf);
  SACPP_REQUIRE(nf - 2 == 2 * (nc - 2), "rprj3 level extent mismatch");
  const double p0 = spec_.p[0], p1 = spec_.p[1], p2 = spec_.p[2],
               p3 = spec_.p[3];
  double* x1 = buf1_.data();  // both of i/j offset (edge/corner partials)
  double* y1 = buf2_.data();  // exactly one of i/j offset
  const std::size_t nnf = static_cast<std::size_t>(nf);
  const std::size_t nnc = static_cast<std::size_t>(nc);
  auto fat = [nnf, fine](extent_t i, extent_t j) {
    return fine + (static_cast<std::size_t>(i) * nnf + static_cast<std::size_t>(j)) * nnf;
  };
  for (extent_t jc = 1; jc < nc - 1; ++jc) {
    const extent_t i = 2 * jc;
    for (extent_t kc = 1; kc < nc - 1; ++kc) {
      const extent_t j = 2 * kc;
      const double* fmm = fat(i - 1, j - 1);
      const double* fmp = fat(i - 1, j + 1);
      const double* fpm = fat(i + 1, j - 1);
      const double* fpp = fat(i + 1, j + 1);
      const double* fjm = fat(i, j - 1);
      const double* fjp = fat(i, j + 1);
      const double* fim = fat(i - 1, j);
      const double* fip = fat(i + 1, j);
      // Plane sums must extend into the ghost columns: the last interior
      // coarse point reads x1/y1 at fine index nf-1.
      for (extent_t k = 1; k < nf; ++k) {
        x1[k] = fmm[k] + fmp[k] + fpm[k] + fpp[k];
        y1[k] = fjm[k] + fjp[k] + fim[k] + fip[k];
      }
      const double* fc = fat(i, j);
      double* crow =
          coarse + (static_cast<std::size_t>(jc) * nnc + static_cast<std::size_t>(kc)) * nnc;
      for (extent_t mc = 1; mc < nc - 1; ++mc) {
        const extent_t k = 2 * mc;
        crow[mc] = p0 * fc[k] + p1 * (fc[k - 1] + fc[k + 1] + y1[k]) +
                   p2 * (x1[k] + y1[k - 1] + y1[k + 1]) +
                   p3 * (x1[k - 1] + x1[k + 1]);
      }
    }
  }
  periodic_border_3d(std::span<double>(coarse, nnc * nnc * nnc), nc);
}

void MgRef::kernel_interp(const double* coarse, extent_t nc, double* fine,
                          extent_t nf) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "interp", nf);
  SACPP_REQUIRE(nf - 2 == 2 * (nc - 2), "interp level extent mismatch");
  const double q1 = spec_.q[1], q2 = spec_.q[2], q3 = spec_.q[3];
  SACPP_ASSERT(spec_.q[0] == 1.0, "reference interp assumes q[0] == 1");
  double* z1 = buf1_.data();  // j-pair sums
  double* z2 = buf2_.data();  // i-pair sums
  double* z3 = buf3_.data();  // (i, j) quad sums
  const std::size_t nnf = static_cast<std::size_t>(nf);
  const std::size_t nnc = static_cast<std::size_t>(nc);
  auto cat = [nnc, coarse](extent_t i, extent_t j) {
    return coarse + (static_cast<std::size_t>(i) * nnc + static_cast<std::size_t>(j)) * nnc;
  };
  auto fat = [nnf, fine](extent_t i, extent_t j) {
    return fine + (static_cast<std::size_t>(i) * nnf + static_cast<std::size_t>(j)) * nnf;
  };
  for (extent_t ci = 0; ci < nc - 1; ++ci) {
    for (extent_t cj = 0; cj < nc - 1; ++cj) {
      const double* zc = cat(ci, cj);
      const double* zcj = cat(ci, cj + 1);
      const double* zci = cat(ci + 1, cj);
      const double* zcc = cat(ci + 1, cj + 1);
      for (extent_t k = 0; k < nc; ++k) {
        z1[k] = zcj[k] + zc[k];
        z2[k] = zci[k] + zc[k];
        z3[k] = zcc[k] + zci[k] + z1[k];
      }
      double* f00 = fat(2 * ci, 2 * cj);
      double* f01 = fat(2 * ci, 2 * cj + 1);
      double* f10 = fat(2 * ci + 1, 2 * cj);
      double* f11 = fat(2 * ci + 1, 2 * cj + 1);
      for (extent_t ck = 0; ck < nc - 1; ++ck) {
        const extent_t k = 2 * ck;
        f00[k] += zc[ck];
        f00[k + 1] += q1 * (zc[ck + 1] + zc[ck]);
        f01[k] += q1 * z1[ck];
        f01[k + 1] += q2 * (z1[ck] + z1[ck + 1]);
        f10[k] += q1 * z2[ck];
        f10[k + 1] += q2 * (z2[ck] + z2[ck + 1]);
        f11[k] += q2 * z3[ck];
        f11[k + 1] += q3 * (z3[ck] + z3[ck + 1]);
      }
    }
  }
}

void MgRef::mg3p() {
  // Downward: restrict the residual hierarchy to the coarsest level.
  for (int k = lt_; k > lb_; --k) {
    LevelScope scope(k);
    kernel_rprj3(level_r(k), n_[static_cast<std::size_t>(k)], level_r(k - 1),
                 n_[static_cast<std::size_t>(k - 1)]);
  }
  // Bottom: one smoothing step from a zero correction.
  {
    LevelScope scope(lb_);
    std::memset(level_u(lb_), 0, cube(lb_) * sizeof(double));
    kernel_psinv(level_r(lb_), level_u(lb_),
                 n_[static_cast<std::size_t>(lb_)]);
  }
  // Upward: prolongate, correct the residual, smooth.
  for (int k = lb_ + 1; k < lt_; ++k) {
    LevelScope scope(k);
    std::memset(level_u(k), 0, cube(k) * sizeof(double));
    kernel_interp(level_u(k - 1), n_[static_cast<std::size_t>(k - 1)],
                  level_u(k), n_[static_cast<std::size_t>(k)]);
    kernel_resid(level_u(k), level_r(k), level_r(k),
                 n_[static_cast<std::size_t>(k)]);
    kernel_psinv(level_r(k), level_u(k), n_[static_cast<std::size_t>(k)]);
  }
  if (lt_ > lb_) {
    LevelScope scope(lt_);
    const extent_t nt = n_[static_cast<std::size_t>(lt_)];
    kernel_interp(level_u(lt_ - 1), n_[static_cast<std::size_t>(lt_ - 1)],
                  level_u(lt_), nt);
    kernel_resid(level_u(lt_), top_v(), level_r(lt_), nt);
    kernel_psinv(level_r(lt_), level_u(lt_), nt);
  }
}

}  // namespace sacpp::mg
