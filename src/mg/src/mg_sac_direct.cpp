#include "sacpp/mg/mg_sac_direct.hpp"

#include <cmath>

#include "sacpp/common/error.hpp"
#include "sacpp/mg/profiler.hpp"

namespace sacpp::mg {

using sac::Array;
using sac::force;
using sac::PeriodicStencilExpr;
using sac::relax_kernel_periodic;

namespace {

// Ghost-free MG grids are pure 2^k cubes.
void check_pure(const Array<double>& a) {
  SACPP_REQUIRE(a.rank() >= 1, "MG grids must have rank >= 1");
  for (std::size_t d = 0; d < a.rank(); ++d) {
    const extent_t n = a.shape().extent(d);
    SACPP_REQUIRE(n >= 2 && (n & (n - 1)) == 0,
                  "ghost-free MG grid extent must be 2^k with k >= 1");
  }
}

// Grid-transfer sampling phase: the benchmark's coarse point j sits at the
// fine point 2j (1-based), which is pure index 2*(c+1)-1 = 2c+1 — so the
// condense/scatter pair samples with phase 1.
constexpr extent_t kPhase = 1;

// V-cycle level of a ghost-free grid: 2^k extent -> level k.
int level_of(const Array<double>& a) {
  int k = 0;
  extent_t n = a.shape().extent(0);
  while (n > 1) {
    n /= 2;
    ++k;
  }
  return k;
}

}  // namespace

Array<double> MgSacDirect::resid(const Array<double>& u) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "resid");
  return relax_kernel_periodic(u, spec_.a);
}

Array<double> MgSacDirect::smooth(const Array<double>& r) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "psinv");
  return relax_kernel_periodic(r, spec_.s);
}

Array<double> MgSacDirect::fine2coarse(const Array<double>& r) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "rprj3");
  if (sac::active_config().folding) {
    // One with-loop: the P stencil evaluated at the condensed points only.
    return force(sac::lazy_condense(2, PeriodicStencilExpr(r, spec_.p),
                                    kPhase));
  }
  return force(sac::lazy_condense(2, relax_kernel_periodic(r, spec_.p),
                                  kPhase));
}

Array<double> MgSacDirect::coarse2fine(const Array<double>& zn) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "interp");
  Array<double> scattered = force(sac::lazy_scatter(2, zn, kPhase));
  return relax_kernel_periodic(scattered, spec_.q);
}

Array<double> MgSacDirect::residual(const Array<double>& v,
                                    const Array<double>& u) const {
  SACPP_REQUIRE(v.shape() == u.shape(), "residual shape mismatch");
  if (sac::active_config().folding) {
    return force(
        sac::ewise(v, PeriodicStencilExpr(u, spec_.a), std::minus<>{}));
  }
  return v - resid(u);
}

Array<double> MgSacDirect::vcycle(const Array<double>& r) const {
  const int level = level_of(r);
  if (r.shape().extent(0) > 2) {
    Array<double> rn;
    {
      LevelScope scope(level);  // this level's work, recursion excluded
      rn = fine2coarse(r);
    }
    Array<double> zn = vcycle(rn);
    LevelScope scope(level);
    Array<double> z = coarse2fine(zn);
    Array<double> r2 =
        sac::active_config().folding
            ? force(sac::ewise(r, PeriodicStencilExpr(z, spec_.a),
                               std::minus<>{}))
            : r - resid(z);
    if (sac::active_config().folding) {
      return force(sac::ewise(z, PeriodicStencilExpr(std::move(r2), spec_.s),
                              std::plus<>{}));
    }
    return std::move(z) + smooth(r2);
  }
  LevelScope scope(level);
  return smooth(r);
}

Array<double> MgSacDirect::mgrid(const Array<double>& v, int iter) const {
  check_pure(v);
  Array<double> u = sac::genarray_const(v.shape(), 0.0);
  for (int i = 0; i < iter; ++i) {
    Array<double> r = residual(v, u);
    u = std::move(u) + vcycle(r);
  }
  return u;
}

double MgSacDirect::residual_norm(const Array<double>& v,
                                  const Array<double>& u) const {
  Array<double> r = residual(v, u);
  const double ss = sac::with_fold(std::plus<>{}, 0.0, r.shape(),
                                   sac::gen_all(), sac::sum_sq_rows(r));
  return std::sqrt(ss / static_cast<double>(r.elem_count()));
}

Array<double> MgSacDirect::smooth_rbgs(Array<double> u,
                                       const Array<double>& v) const {
  check_pure(u);
  SACPP_REQUIRE(u.shape() == v.shape(), "smoother shape mismatch");
  const Shape shp = u.shape();
  const std::size_t rank = shp.rank();
  const sac::StencilCoeffs a = spec_.a;
  const auto& table = sac::StencilTable::for_rank(rank);

  // Gauss-Seidel update of one point: solve the stencil row for the centre,
  // reading neighbours (periodically wrapped) from the in-place buffer.
  auto gs = [&v, shp, a, &table](const IndexVec& iv, const double* self) {
    double acc = 0.0;
    IndexVec src(iv.size());
    for (const auto& e : table.entries()) {
      if (e.cls == 0) continue;
      for (std::size_t d = 0; d < iv.size(); ++d) {
        const extent_t n = shp.extent(d);
        src[d] = (iv[d] + e.offset[d] + n) % n;
      }
      acc += a[static_cast<std::size_t>(e.cls)] * self[shp.linearize(src)];
    }
    return (v[iv] - acc) / a[0];
  };

  // The 27-point operator couples diagonal neighbours, so the classic
  // two-colour checkerboard is not independent; per-axis parity gives
  // 2^rank colours, each exactly one step-2 grid partition whose points
  // are mutually non-adjacent.  Later colours read earlier updates.
  std::vector<sac::ReadingPartition<double>> colors;
  const extent_t patterns = extent_t{1} << rank;
  for (extent_t c = 0; c < patterns; ++c) {
    IndexVec lower(rank);
    for (std::size_t d = 0; d < rank; ++d) {
      lower[d] = (c >> d) & 1;
    }
    sac::Gen g = sac::gen_range(std::move(lower), shp.extents());
    g.step = uniform_vec(rank, 2);
    colors.push_back(sac::ReadingPartition<double>{std::move(g), gs});
  }
  return sac::with_modarray_reading(std::move(u), colors);
}

Array<double> MgSacDirect::mgrid_rbgs(const Array<double>& v,
                                      int iter) const {
  check_pure(v);
  // V-cycle with multi-colour Gauss-Seidel smoothing of A z = r.
  auto vcycle_rbgs = [this](auto&& self,
                            const Array<double>& r) -> Array<double> {
    if (r.shape().extent(0) > 2) {
      Array<double> rn = fine2coarse(r);
      Array<double> zn = self(self, rn);
      Array<double> z = coarse2fine(zn);
      return smooth_rbgs(std::move(z), r);
    }
    return smooth_rbgs(sac::genarray_const(r.shape(), 0.0), r);
  };
  Array<double> u = sac::genarray_const(v.shape(), 0.0);
  for (int i = 0; i < iter; ++i) {
    Array<double> r = residual(v, u);
    u = std::move(u) + vcycle_rbgs(vcycle_rbgs, r);
  }
  return u;
}

Array<double> MgSacDirect::strip_ghosts(const Array<double>& extended) {
  const std::size_t rank = extended.rank();
  IndexVec pure(rank);
  for (std::size_t d = 0; d < rank; ++d) {
    pure[d] = extended.shape().extent(d) - 2;
    SACPP_REQUIRE(pure[d] >= 2, "extended grid too small to strip");
  }
  return sac::with_genarray<double>(
      Shape(pure),
      [&extended](const IndexVec& iv) { return extended[iv + 1]; });
}

}  // namespace sacpp::mg
