#include "sacpp/mg/spec.hpp"

#include "sacpp/common/error.hpp"

namespace sacpp::mg {

namespace {

constexpr sac::StencilCoeffs kA{{-8.0 / 3.0, 0.0, 1.0 / 6.0, 1.0 / 12.0}};
constexpr sac::StencilCoeffs kP{{1.0 / 2.0, 1.0 / 4.0, 1.0 / 8.0, 1.0 / 16.0}};
constexpr sac::StencilCoeffs kQ{{1.0, 1.0 / 2.0, 1.0 / 4.0, 1.0 / 8.0}};
// S(a): classes S, W, A.  S(b): classes B and C.
constexpr sac::StencilCoeffs kSa{{-3.0 / 8.0, 1.0 / 32.0, -1.0 / 64.0, 0.0}};
constexpr sac::StencilCoeffs kSb{{-3.0 / 17.0, 1.0 / 33.0, -1.0 / 61.0, 0.0}};

bool is_power_of_two(extent_t n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

MgSpec MgSpec::for_class(MgClass cls) {
  MgSpec spec;
  spec.cls = cls;
  spec.a = kA;
  spec.p = kP;
  spec.q = kQ;
  spec.s = kSa;
  switch (cls) {
    case MgClass::S:
      spec.nx = 32;
      spec.nit = 4;
      break;
    case MgClass::W:
      spec.nx = 64;
      spec.nit = 40;
      break;
    case MgClass::A:
      spec.nx = 256;
      spec.nit = 4;
      break;
    case MgClass::B:
      spec.nx = 256;
      spec.nit = 20;
      spec.s = kSb;
      break;
    case MgClass::C:
      spec.nx = 512;
      spec.nit = 20;
      spec.s = kSb;
      break;
  }
  return spec;
}

MgSpec MgSpec::custom(extent_t nx, int nit, bool class_b_smoother) {
  SACPP_REQUIRE(is_power_of_two(nx) && nx >= 4,
                "MG grid size must be a power of two >= 4");
  SACPP_REQUIRE(nit >= 0, "MG iteration count must be non-negative");
  MgSpec spec;
  spec.cls = MgClass::S;  // nominal; name() reports the custom size
  spec.nx = nx;
  spec.nit = nit;
  spec.a = kA;
  spec.p = kP;
  spec.q = kQ;
  spec.s = class_b_smoother ? kSb : kSa;
  return spec;
}

int MgSpec::levels() const {
  int k = 0;
  extent_t n = nx;
  while (n > 1) {
    n /= 2;
    ++k;
  }
  return k;
}

extent_t MgSpec::extended_extent(int level) const {
  SACPP_REQUIRE(level >= 1 && level <= levels(), "MG level out of range");
  return (extent_t{1} << level) + 2;
}

std::string MgSpec::name() const {
  switch (cls) {
    case MgClass::S:
      if (nx == 32 && nit == 4) return "S";
      return "custom(" + std::to_string(nx) + "^3 x " + std::to_string(nit) +
             ")";
    case MgClass::W:
      return "W";
    case MgClass::A:
      return "A";
    case MgClass::B:
      return "B";
    case MgClass::C:
      return "C";
  }
  return "?";
}

MgClass parse_class(const std::string& name) {
  SACPP_REQUIRE(name.size() == 1, "benchmark class must be one letter");
  switch (name[0]) {
    case 'S':
    case 's':
      return MgClass::S;
    case 'W':
    case 'w':
      return MgClass::W;
    case 'A':
    case 'a':
      return MgClass::A;
    case 'B':
    case 'b':
      return MgClass::B;
    case 'C':
    case 'c':
      return MgClass::C;
    default:
      SACPP_REQUIRE(false, "unknown benchmark class: " + name);
  }
  return MgClass::S;  // unreachable
}

}  // namespace sacpp::mg
