#include "sacpp/mg/mg_sac.hpp"

#include <cmath>

#include "sacpp/common/error.hpp"
#include "sacpp/mg/profiler.hpp"

namespace sacpp::mg {

using sac::Array;
using sac::force;
using sac::gen_interior;
using sac::gen_range;
using sac::relax_kernel;
using sac::StencilExpr;
using sac::with_fold;
using sac::with_modarray_reading;

namespace {

// Extended grids must have extent 2^k + 2 along every axis.
void check_extended(const Array<double>& a) {
  SACPP_REQUIRE(a.rank() >= 1, "MG grids must have rank >= 1");
  for (std::size_t d = 0; d < a.rank(); ++d) {
    const extent_t n = a.shape().extent(d) - 2;
    SACPP_REQUIRE(n >= 2 && (n & (n - 1)) == 0,
                  "MG extended grid extent must be 2^k + 2 with k >= 1");
  }
}

// Loop body of add_smooth_fused: z[i,j,k] + (S r)[i,j,k], reading the output
// array in place.  Carries the kPlanes row protocol by delegating to
// StencilExpr::accumulate_row — the output row is z's own row, which the
// stencil never reads (it reads the bordered residual), so accumulating in
// place is alias-safe and boundary positions simply keep their z value.
struct AddSmoothBody {
  const StencilExpr& st;
  const double* self;
  extent_t e1, e2;

  double operator()(extent_t i, extent_t j, extent_t k) const {
    return self[(i * e1 + j) * e2 + k] + st(i, j, k);
  }
  double operator()(const IndexVec& iv) const {
    return (*this)(iv[0], iv[1], iv[2]);
  }
  bool row_fill_enabled() const { return st.row_fill_enabled(); }
  sac::PlaneScratch make_row_state() const { return st.make_row_state(); }
  void fill_row(sac::PlaneScratch& s, extent_t i, extent_t j, double* out,
                extent_t k_lo, extent_t k_hi) const {
    st.accumulate_row(s, i, j, out, k_lo, k_hi);
  }
};

}  // namespace

Array<double> MgSac::setup_periodic_border(Array<double> a) {
  const std::size_t rank = a.rank();
  const Shape shp = a.shape();
  std::vector<sac::ReadingPartition<double>> parts;
  parts.reserve(2 * rank);
  for (std::size_t d = 0; d < rank; ++d) {
    const extent_t n = shp.extent(d);
    SACPP_REQUIRE(n >= 3, "periodic border needs extent >= 3");

    IndexVec low_lo = uniform_vec(rank, 0);
    IndexVec low_up(shp.extents().begin(), shp.extents().end());
    low_up[d] = 1;  // the iv[d] == 0 ghost face
    parts.push_back(sac::ReadingPartition<double>{
        gen_range(std::move(low_lo), std::move(low_up)),
        [d, n, shp](const IndexVec& iv, const double* p) {
          IndexVec src(iv.begin(), iv.end());
          src[d] = n - 2;
          return p[shp.linearize(src)];
        }});

    IndexVec high_lo = uniform_vec(rank, 0);
    high_lo[d] = n - 1;  // the iv[d] == n-1 ghost face
    IndexVec high_up(shp.extents().begin(), shp.extents().end());
    parts.push_back(sac::ReadingPartition<double>{
        gen_range(std::move(high_lo), std::move(high_up)),
        [d, shp](const IndexVec& iv, const double* p) {
          IndexVec src(iv.begin(), iv.end());
          src[d] = 1;
          return p[shp.linearize(src)];
        }});
  }
  return with_modarray_reading(std::move(a), parts);
}

Array<double> MgSac::resid(const Array<double>& u) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "resid");
  Array<double> ub = setup_periodic_border(u);
  return relax_kernel(ub, spec_.a);
}

Array<double> MgSac::smooth(const Array<double>& r) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "psinv");
  Array<double> rb = setup_periodic_border(r);
  return relax_kernel(rb, spec_.s);
}

Array<double> MgSac::fine2coarse(const Array<double>& r) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "rprj3");
  if (sac::active_config().folding) return fine2coarse_fused(r);
  Array<double> rs = setup_periodic_border(r);
  Array<double> rr = relax_kernel(rs, spec_.p);
  Array<double> rc = sac::condense(2, rr);
  return sac::embed(rc.shape().extents() + 1, 0 * rc.shape().extents(), rc);
}

Array<double> MgSac::coarse2fine(const Array<double>& rn) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "interp");
  if (sac::active_config().folding) return coarse2fine_fused(rn);
  Array<double> rp = setup_periodic_border(rn);
  Array<double> rs = sac::scatter(2, rp);
  Array<double> rt = sac::take(rs.shape().extents() - 2, rs);
  return relax_kernel(rt, spec_.q);
}

// -- fused forms (with-loop folding on) --------------------------------------

Array<double> MgSac::sub_resid_fused(const Array<double>& v,
                                     const Array<double>& u) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "resid");
  Array<double> ub = setup_periodic_border(u);
  return force(sac::ewise(v, StencilExpr(std::move(ub), spec_.a),
                          std::minus<>{}));
}

Array<double> MgSac::add_smooth_fused(Array<double> z,
                                      const Array<double>& r) const {
  obs::ScopedSpan span(obs::SpanKind::kKernel, "psinv");
  Array<double> rb = setup_periodic_border(r);
  const StencilExpr st(std::move(rb), spec_.s);
  const Shape shp = z.shape();
  double* self = z.mutable_data();  // in place when uniquely owned
  const auto g = sac::detail::resolve(sac::gen_all(), shp);
  if (shp.rank() == 3) {
    sac::detail::execute_assign(
        self, shp, g,
        AddSmoothBody{st, self, shp.extent(1), shp.extent(2)});
  } else {
    sac::detail::execute_assign(self, shp, g, [&](const IndexVec& iv) {
      return self[shp.linearize(iv)] + st(iv);
    });
  }
  return z;
}

Array<double> MgSac::fine2coarse_fused(const Array<double>& r) const {
  Array<double> rs = setup_periodic_border(r);
  auto relaxed = StencilExpr(std::move(rs), spec_.p);
  auto rc = sac::lazy_condense(2, std::move(relaxed));
  const IndexVec coarse_shape = rc.shape().extents() + 1;
  const IndexVec zero = 0 * coarse_shape;
  // One with-loop evaluates the P-stencil only at the condensed points.
  return force(sac::lazy_embed(coarse_shape, zero, std::move(rc)));
}

Array<double> MgSac::coarse2fine_fused(const Array<double>& rn) const {
  Array<double> rp = setup_periodic_border(rn);
  // scatter + take fuse into one traversal; the Q-relaxation then needs the
  // scattered grid materialised (stencils fold only over concrete arrays —
  // the same profitability constraint sac2c applies).
  const IndexVec fine_shape = 2 * rp.shape().extents() - 2;
  Array<double> rt =
      force(sac::lazy_take(fine_shape, sac::lazy_scatter(2, std::move(rp))));
  return relax_kernel(rt, spec_.q);
}

Array<double> MgSac::residual(const Array<double>& v,
                              const Array<double>& u) const {
  SACPP_REQUIRE(v.shape() == u.shape(), "residual shape mismatch");
  return sac::active_config().folding ? sub_resid_fused(v, u) : v - resid(u);
}

// -- the V-cycle --------------------------------------------------------------

namespace {

// V-cycle level of an extended grid: 2^k + 2 extent -> level k.
int level_of(const Array<double>& a) {
  int k = 0;
  extent_t n = a.shape().extent(0) - 2;
  while (n > 1) {
    n /= 2;
    ++k;
  }
  return k;
}

}  // namespace

Array<double> MgSac::vcycle(const Array<double>& r) const {
  const bool folded = sac::active_config().folding;
  const int level = level_of(r);
  if (r.shape().extent(0) > 2 + 2) {
    Array<double> rn;
    {
      LevelScope scope(level);  // this level's work, recursion excluded
      rn = fine2coarse(r);
    }
    Array<double> zn = vcycle(rn);
    LevelScope scope(level);
    Array<double> z = coarse2fine(zn);
    if (folded) {
      Array<double> r2 = sub_resid_fused(r, z);
      return add_smooth_fused(std::move(z), r2);  // z updated in place
    }
    Array<double> r2 = r - resid(z);
    return std::move(z) + smooth(r2);  // z's last use: updated in place
  }
  LevelScope scope(level);
  return smooth(r);
}

Array<double> MgSac::mgrid(const Array<double>& v, int iter) const {
  check_extended(v);
  const bool folded = sac::active_config().folding;
  (void)folded;
  Array<double> u = sac::genarray_const(v.shape(), 0.0);
  for (int i = 0; i < iter; ++i) {
    Array<double> r = residual(v, u);
    // u's reference count drops to one here, so the addition reuses its
    // buffer in place — what SAC's reference counting does for
    // `u = u + VCycle(r)`.
    u = std::move(u) + vcycle(r);
  }
  return u;
}

double MgSac::residual_norm(const Array<double>& v,
                            const Array<double>& u) const {
  SACPP_REQUIRE(v.shape() == u.shape(), "residual_norm shape mismatch");
  Array<double> r = residual(v, u);
  const Shape& shp = r.shape();
  const double ss =
      with_fold(std::plus<>{}, 0.0, shp, gen_interior(shp), sac::sum_sq_rows(r));
  double points = 1.0;
  for (std::size_t d = 0; d < shp.rank(); ++d) {
    points *= static_cast<double>(shp.extent(d) - 2);
  }
  return std::sqrt(ss / points);
}

}  // namespace sacpp::mg
