#pragma once
// Per-level execution profiler.
//
// The paper's Sec. 5 analysis is about *where time goes across V-cycle
// levels* (small grids pay fixed overheads).  The profiler records the
// wall-clock of each level's work inside the real solvers, so benchmarks
// can put measured per-level shares next to the machine model's per-level
// prediction (bench/abl_levels) — a direct validation of the analysis.
//
// Disabled (the default) it costs one branch per level per V-cycle.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sacpp/common/shape.hpp"
#include "sacpp/common/timer.hpp"

namespace sacpp::mg {

class LevelProfiler {
 public:
  static LevelProfiler& instance() {
    static LevelProfiler profiler;
    return profiler;
  }

  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  void reset() { buckets_.clear(); }

  void record(int level, double seconds) {
    auto& b = buckets_[level];
    b.seconds += seconds;
    b.count += 1;
  }

  struct Entry {
    int level = 0;
    double seconds = 0.0;
    std::uint64_t count = 0;  // V-cycle visits of this level
  };

  std::vector<Entry> entries() const {
    std::vector<Entry> out;
    for (const auto& [level, b] : buckets_) {
      out.push_back(Entry{level, b.seconds, b.count});
    }
    return out;
  }

  double total_seconds() const {
    double t = 0.0;
    for (const auto& [level, b] : buckets_) t += b.seconds;
    return t;
  }

 private:
  struct Bucket {
    double seconds = 0.0;
    std::uint64_t count = 0;
  };
  bool enabled_ = false;
  std::map<int, Bucket> buckets_;
};

// RAII: times one level's work into the profiler when enabled.
class LevelScope {
 public:
  explicit LevelScope(int level) : level_(level) {
    active_ = LevelProfiler::instance().enabled();
    if (active_) timer_.reset();
  }
  ~LevelScope() {
    if (active_) {
      LevelProfiler::instance().record(level_, timer_.elapsed_seconds());
    }
  }
  LevelScope(const LevelScope&) = delete;
  LevelScope& operator=(const LevelScope&) = delete;

 private:
  int level_;
  bool active_;
  Timer timer_;
};

}  // namespace sacpp::mg
