#pragma once
// Per-level execution profiler, ported onto the sacpp_obs telemetry layer.
//
// The paper's Sec. 5 analysis is about *where time goes across V-cycle
// levels* (small grids pay fixed overheads).  LevelScope times each level's
// work inside the real solvers and publishes the level as the thread-local
// obs context, so the MT runtime attributes every parallel region's
// busy/idle/imbalance numbers to the level that launched it.  Storage lives
// in obs's per-level aggregation table; LevelProfiler remains as the stable
// facade the benchmarks and tests use (bench/abl_levels puts measured
// per-level shares next to the machine model's prediction).
//
// Disabled (the default, with obs also off) it costs two relaxed loads and
// a branch per level per V-cycle.

#include <cstdint>
#include <vector>

#include "sacpp/obs/obs.hpp"

namespace sacpp::mg {

class LevelProfiler {
 public:
  static LevelProfiler& instance() {
    static LevelProfiler profiler;
    return profiler;
  }

  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  void reset() { obs::reset_levels(); }

  void record(int level, double seconds) {
    obs::record_level_ns(level,
                         static_cast<std::int64_t>(seconds * 1e9));
  }

  struct Entry {
    int level = 0;
    double seconds = 0.0;
    std::uint64_t count = 0;  // V-cycle visits of this level
  };

  std::vector<Entry> entries() const {
    std::vector<Entry> out;
    for (const obs::LevelMetrics& m : obs::level_metrics()) {
      // Levels that only accumulated region samples (no timed visit) are
      // obs-internal; the profiler view is the timed level scopes.
      if (m.visits == 0) continue;
      out.push_back(Entry{m.level, m.seconds, m.visits});
    }
    return out;
  }

  double total_seconds() const {
    double t = 0.0;
    for (const obs::LevelMetrics& m : obs::level_metrics()) t += m.seconds;
    return t;
  }

 private:
  bool enabled_ = false;
};

// RAII: times one level's work when the profiler or obs recording is on, and
// publishes the level as the obs context either way so parallel-region
// metrics land in the right bucket.
class LevelScope {
 public:
  explicit LevelScope(int level) : level_(level) {
    active_ = LevelProfiler::instance().enabled() || obs::enabled();
    if (active_) [[unlikely]] {
      prev_level_ = obs::set_current_level(level_);
      start_ns_ = obs::now_ns();
    }
  }
  ~LevelScope() {
    if (active_) [[unlikely]] {
      const std::int64_t dur = obs::now_ns() - start_ns_;
      obs::record_level_ns(level_, dur);
      if (obs::enabled()) {
        obs::record_span(obs::SpanKind::kLevel, "level", start_ns_, dur,
                         level_);
      }
      obs::set_current_level(prev_level_);
    }
  }
  LevelScope(const LevelScope&) = delete;
  LevelScope& operator=(const LevelScope&) = delete;

 private:
  int level_;
  bool active_;
  int prev_level_ = -1;
  std::int64_t start_ns_ = 0;
};

}  // namespace sacpp::mg
