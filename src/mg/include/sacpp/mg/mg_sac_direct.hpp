#pragma once
// NAS MG without artificial boundary elements — the paper's first
// future-work item realised (Sec. 7).
//
// Grids are pure 2^k cubes (no ghost layers); periodic boundary conditions
// live inside the relaxation kernel (sac::PeriodicStencilExpr), not in the
// data.  The grid-transfer operations collapse to their mathematical form:
//
//   Fine2Coarse(r) = condense(2, P(r))          (no embed correction)
//   Coarse2Fine(z) = Q(scatter(2, z))           (no take correction)
//
// and the V-cycle reads exactly like the mathematical specification of the
// paper's Fig. 2 — the "even closer to the mathematical specification"
// claim.  Results are numerically identical to the ghost-layer
// implementation (tests assert ≤1e-12 relative agreement on every
// iteration norm, and the interior stencil evaluation is bitwise equal).

#include "sacpp/mg/spec.hpp"
#include "sacpp/sac/periodic_stencil.hpp"
#include "sacpp/sac/sac.hpp"

namespace sacpp::mg {

class MgSacDirect {
 public:
  explicit MgSacDirect(const MgSpec& spec) : spec_(spec) {}

  const MgSpec& spec() const { return spec_; }

  // iter iterations of r = v - A u; u = u + VCycle(r), from u = 0.
  // v is a ghost-free 2^k cube of any rank.
  sac::Array<double> mgrid(const sac::Array<double>& v, int iter) const;

  sac::Array<double> vcycle(const sac::Array<double>& r) const;

  // Operator application A u with built-in periodicity (no border setup).
  sac::Array<double> resid(const sac::Array<double>& u) const;
  sac::Array<double> smooth(const sac::Array<double>& r) const;
  sac::Array<double> fine2coarse(const sac::Array<double>& r) const;
  sac::Array<double> coarse2fine(const sac::Array<double>& zn) const;

  // r = v - A u, fused when folding is enabled.
  sac::Array<double> residual(const sac::Array<double>& v,
                              const sac::Array<double>& u) const;

  // sqrt(sum(r^2)/count) over the whole (ghost-free) grid.
  double residual_norm(const sac::Array<double>& v,
                       const sac::Array<double>& u) const;

  // One red-black Gauss-Seidel sweep of A u = v with periodic boundaries —
  // a stronger smoother than the benchmark's additive S-step, and the
  // canonical application of multi-partition strided WITH-loop generators:
  // the red and black checkerboard half-grids are each the union of four
  // step-2 grid partitions, and the black partitions read the freshly
  // updated red values in place.  Takes u by value (in place when unique).
  sac::Array<double> smooth_rbgs(sac::Array<double> u,
                                 const sac::Array<double>& v) const;

  // `iter` V-cycles using red-black Gauss-Seidel smoothing instead of the
  // benchmark smoother (an extension: converges faster per cycle, no NPB
  // verification constant applies).
  sac::Array<double> mgrid_rbgs(const sac::Array<double>& v, int iter) const;

  // Strip the ghost ring from an extended grid (to share inputs with the
  // ghost-layer implementations).
  static sac::Array<double> strip_ghosts(const sac::Array<double>& extended);

 private:
  MgSpec spec_;
};

}  // namespace sacpp::mg
