#pragma once
// Port of the serial Fortran-77 NAS 2.3 MG reference implementation.
//
// This is the paper's low-level comparison point: static memory layout (one
// arena allocated up front, zero allocations inside the timed loop) and the
// hand-tuned stencil optimisation the paper analyses in Sec. 5 — only four
// distinct coefficients occur per stencil, and partial sums of rows are
// shared between neighbouring result elements through small line buffers
// (u1/u2 in the Fortran source), cutting the additions per point to 12-20.
//
// Kernels follow the NPB structure: resid (r = v - A u), psinv (u += C r),
// rprj3 (fine-to-coarse restriction), interp (additive coarse-to-fine
// prolongation), comm3 (periodic ghost exchange), mg3P (one V-cycle).
// Index convention: extended cubes of extent n = 2^k + 2, ghosts at 0 and
// n-1, row-major with the last axis fastest (NPB's i1).

#include <span>
#include <vector>

#include "sacpp/mg/spec.hpp"

namespace sacpp::mg {

class MgRef {
 public:
  explicit MgRef(const MgSpec& spec);

  const MgSpec& spec() const { return spec_; }
  extent_t top_extent() const { return n_[lt_]; }

  // -- state management -------------------------------------------------

  // Copy an extended (nx+2)^3 right-hand side into v.
  void set_rhs(std::span<const double> v_ext);
  // Generate the benchmark right-hand side (zran3 charges).
  void setup_default_rhs();
  void zero_u();
  // r = v - A u on the finest level.
  void initial_resid();
  // `count` benchmark iterations: u += M^k r (mg3P), then r = v - A u.
  void iterate(int count);
  // rnm2 of the current finest-level residual.
  double residual_norm() const;

  std::span<const double> u() const;
  std::span<const double> v() const;
  std::span<const double> r() const;

  // -- kernels (exposed for unit tests and the OpenMP port) ---------------

  // r = v - A u over the interior of an extended cube of extent n, then
  // periodic exchange of r.  v and r may alias.
  void kernel_resid(const double* u_in, const double* v_in, double* r_out,
                    extent_t n) const;
  // u += C r over the interior, then periodic exchange of u.
  void kernel_psinv(const double* r_in, double* u_inout, extent_t n) const;
  // Coarse = P-weighted restriction of fine (extent nf -> nc), then
  // periodic exchange of the coarse grid.
  void kernel_rprj3(const double* fine, extent_t nf, double* coarse,
                    extent_t nc) const;
  // Fine += trilinear prolongation of coarse (extent nc -> nf).  No
  // exchange needed: prolongation of a periodic grid is periodic.
  void kernel_interp(const double* coarse, extent_t nc, double* fine,
                     extent_t nf) const;

  // One V-cycle: restrict the residual hierarchy to the bottom, smooth,
  // then prolongate with residual corrections back to the top (NPB mg3P).
  void mg3p();

  // Direct access to the per-level grids (extent extended_extent(k)); used
  // by the distributed implementation to run the coarse tail of the
  // V-cycle serially on one rank, and by tests.
  std::span<double> level_u_span(int k) {
    return {level_u(k), cube(k)};
  }
  std::span<double> level_r_span(int k) {
    return {level_r(k), cube(k)};
  }
  int finest_level() const { return lt_; }
  int coarsest_level() const { return lb_; }
  extent_t level_extent(int k) const {
    return n_[static_cast<std::size_t>(k)];
  }

 private:
  double* level_u(int k) { return arena_.data() + off_u_[static_cast<std::size_t>(k)]; }
  double* level_r(int k) { return arena_.data() + off_r_[static_cast<std::size_t>(k)]; }
  const double* level_u(int k) const { return arena_.data() + off_u_[static_cast<std::size_t>(k)]; }
  const double* level_r(int k) const { return arena_.data() + off_r_[static_cast<std::size_t>(k)]; }
  double* top_v() { return arena_.data() + off_v_; }
  const double* top_v() const { return arena_.data() + off_v_; }

  std::size_t cube(int k) const {
    const auto n = static_cast<std::size_t>(n_[static_cast<std::size_t>(k)]);
    return n * n * n;
  }

  MgSpec spec_;
  int lt_;                  // finest level
  static constexpr int lb_ = 1;  // coarsest level
  std::vector<extent_t> n_;      // extended extent per level (index 1..lt)
  std::vector<double> arena_;    // single static allocation for all grids
  std::vector<std::size_t> off_u_, off_r_;
  std::size_t off_v_ = 0;
  // Pre-allocated line buffers for the plane-sharing stencil optimisation.
  mutable std::vector<double> buf1_, buf2_, buf3_;
};

}  // namespace sacpp::mg
