#pragma once
// The NAS MG benchmark specification: problem classes, stencil coefficient
// vectors, and grid-hierarchy geometry.
//
// MG approximates the solution u of the discrete Poisson equation
// del^2 u = v on an nx^3 grid with periodic boundaries, using `nit`
// iterations of  r = v - A u;  u = u + M^k r  where M^k is the V-cycle
// operator of Fig. 2 of the paper.  A, P, Q and S are 27-point stencils
// described by one coefficient per neighbour distance class.
//
// Class geometry follows NPB 2.3 (the version the paper benchmarks):
//   S = 32^3 / 4 it,  W = 64^3 / 40 it,  A = 256^3 / 4 it,
//   B = 256^3 / 20 it,  C = 512^3 / 20 it.
// Classes S/W/A use the S(a) smoother coefficients, classes B/C use S(b).
// (The paper evaluates W and A; B and C appear in its future-work list.)

#include <cstdint>
#include <string>

#include "sacpp/common/shape.hpp"
#include "sacpp/sac/stencil.hpp"

namespace sacpp::mg {

enum class MgClass { S, W, A, B, C };

struct MgSpec {
  MgClass cls = MgClass::S;
  extent_t nx = 32;  // interior grid points per dimension (power of two)
  int nit = 4;       // benchmark iterations

  sac::StencilCoeffs a;  // residual operator A
  sac::StencilCoeffs p;  // fine-to-coarse (restriction) operator P
  sac::StencilCoeffs q;  // coarse-to-fine (prolongation) operator Q
  sac::StencilCoeffs s;  // smoother S

  static MgSpec for_class(MgClass cls);

  // Non-standard problem size (powers of two >= 4); used by tests and
  // sweeps.  `class_b_smoother` selects the S(b) coefficient set.
  static MgSpec custom(extent_t nx, int nit, bool class_b_smoother = false);

  // Number of grid levels: level k has 2^k interior points per dimension,
  // k = 1 .. levels().  levels() == log2(nx).
  int levels() const;

  // Extended extent (interior + 2 ghost layers) at level k in [1, levels()].
  extent_t extended_extent(int level) const;

  std::string name() const;
};

// Parse "S" / "W" / "A" / "B" (case-insensitive); throws on anything else.
MgClass parse_class(const std::string& name);

}  // namespace sacpp::mg
