#pragma once
// Port of the Omni OpenMP distribution's C implementation of NAS MG.
//
// The paper's third candidate: the RWCP port of the Fortran-77 reference to
// C, decorated with OpenMP work-sharing directives (about 30 of them in the
// original; here one `parallel for` per grid sweep).  The code keeps the
// same hand-tuned stencil optimisation as the reference but uses the C
// port's structure: per-level heap arrays ("almost static memory layout" —
// allocated once at setup, none inside the timed loop) and C-style flat
// indexing.
//
// Compiled without OpenMP the pragmas vanish and the code runs serially;
// `omp_threads(t)` sets the team size when OpenMP is available.

#include <span>
#include <vector>

#include "sacpp/mg/spec.hpp"

namespace sacpp::mg {

class MgOmp {
 public:
  explicit MgOmp(const MgSpec& spec);

  const MgSpec& spec() const { return spec_; }

  // Team size for the OpenMP parallel regions (ignored without OpenMP).
  static void omp_threads(int t);
  static bool openmp_available();

  void set_rhs(std::span<const double> v_ext);
  void setup_default_rhs();
  void zero_u();
  void initial_resid();
  void iterate(int count);
  double residual_norm() const;

  std::span<const double> u() const;
  std::span<const double> v() const;
  std::span<const double> r() const;

  void mg3p();

  // Kernels (exposed for tests).
  void kernel_resid(const double* u_in, const double* v_in, double* r_out,
                    extent_t n) const;
  void kernel_psinv(const double* r_in, double* u_inout, extent_t n) const;
  void kernel_rprj3(const double* fine, extent_t nf, double* coarse,
                    extent_t nc) const;
  void kernel_interp(const double* coarse, extent_t nc, double* fine,
                     extent_t nf) const;
  static void kernel_comm3(double* a, extent_t n);

 private:
  MgSpec spec_;
  int lt_;
  static constexpr int lb_ = 1;
  std::vector<extent_t> n_;                   // extent per level
  std::vector<std::vector<double>> u_, r_;    // per-level heap arrays
  std::vector<double> v_;                     // finest-level RHS
};

}  // namespace sacpp::mg
