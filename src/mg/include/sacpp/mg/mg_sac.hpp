#pragma once
// The paper's high-level SAC implementation of NAS MG (Figs. 4-10),
// transliterated onto the sacpp array system.
//
// All functions are rank-generic: they accept extended grids of any rank
// whose per-axis extent is 2^k + 2 (the paper's double[+] genericity —
// "this SAC code could be reused for grids of any dimension without
// alteration").  The benchmark itself uses rank 3.
//
// Two execution paths reproduce the compiler story:
//  * folding off — every operation materialises its result, the literal
//    composition of Figs. 6/7 (border setup, RelaxKernel, condense, embed,
//    scatter, take as separate with-loops);
//  * folding on (default) — the compositions are fused into single
//    traversals (with-loop folding): v - A(u) evaluates in one sweep, and
//    Fine2Coarse evaluates the P-stencil only at the condensed points.
// Both paths compute identical values (tests assert this).

#include "sacpp/mg/spec.hpp"
#include "sacpp/sac/sac.hpp"

namespace sacpp::mg {

class MgSac {
 public:
  explicit MgSac(const MgSpec& spec) : spec_(spec) {}

  const MgSpec& spec() const { return spec_; }

  // Paper Fig. 4, MGrid: iter iterations of  r = v - Resid(u);
  // u = u + VCycle(r)  starting from u = 0.  v is an extended grid.
  sac::Array<double> mgrid(const sac::Array<double>& v, int iter) const;

  // Paper Fig. 4, VCycle: the recursive V-cycle correction operator.
  sac::Array<double> vcycle(const sac::Array<double>& r) const;

  // Paper Fig. 6: Resid — periodic border setup + relaxation with A.
  // (The paper's Resid(u) computes the operator application A u; the
  // residual itself is v - Resid(u).)
  sac::Array<double> resid(const sac::Array<double>& u) const;

  // Paper Fig. 6: Smooth — periodic border setup + relaxation with S.
  sac::Array<double> smooth(const sac::Array<double>& r) const;

  // Paper Fig. 7: Fine2Coarse — border setup, relax with P, condense,
  // embed into the coarse extended shape.  With folding enabled the
  // condense/embed fuse into the relaxation (P evaluated at 1/8 of points).
  sac::Array<double> fine2coarse(const sac::Array<double>& r) const;

  // Paper Fig. 7: Coarse2Fine — border setup, scatter, take, relax with Q.
  // With folding enabled scatter/take fuse into one traversal.
  sac::Array<double> coarse2fine(const sac::Array<double>& rn) const;

  // The current residual  r = v - Resid(u) , fused into one traversal when
  // with-loop folding is enabled.
  sac::Array<double> residual(const sac::Array<double>& v,
                              const sac::Array<double>& u) const;

  // Periodic boundary initialisation (paper Fig. 5): each ghost layer
  // receives the opposite interior layer, axis by axis.  Runs in place when
  // the argument is uniquely owned.
  static sac::Array<double> setup_periodic_border(sac::Array<double> a);

  // Residual norm used for verification: sqrt(sum((v - A u)^2) / nx^rank)
  // over interior points.
  double residual_norm(const sac::Array<double>& v,
                       const sac::Array<double>& u) const;

 private:
  // Fused forms used when with-loop folding is enabled.
  sac::Array<double> sub_resid_fused(const sac::Array<double>& v,
                                     const sac::Array<double>& u) const;
  // Takes z by value: when the caller passes its last reference the update
  // z + S(r) happens in place in z's buffer (SAC's psinv does the same).
  sac::Array<double> add_smooth_fused(sac::Array<double> z,
                                      const sac::Array<double>& r) const;
  sac::Array<double> fine2coarse_fused(const sac::Array<double>& r) const;
  sac::Array<double> coarse2fine_fused(const sac::Array<double>& rn) const;

  MgSpec spec_;
};

}  // namespace sacpp::mg
