#pragma once
// MG input generation (NPB's zran3) and the residual norm (norm2u3).
//
// The right-hand side v is zero except for +1 at the positions of the ten
// largest and -1 at the positions of the ten smallest values of an nx^3
// field of NAS pseudo-random deviates, laid out exactly as NPB generates it
// (innermost index fastest, one vranlc row per (i2, i3) with multiplicative
// sequence jumps between rows and planes).
//
// All extended grids are cubes of extent nx+2: one artificial periodic
// boundary layer on each side (paper Fig. 5).  Index convention inside
// extended grids: 0 and n-1 are the ghost layers, 1 .. n-2 the interior.

#include <span>
#include <vector>

#include "sacpp/common/shape.hpp"

namespace sacpp::mg {

// The nx^3 interior field of pseudo-random deviates in NPB order
// (row-major with the last index fastest, i.e. element (i3, i2, i1) of NPB
// at flat position (i3 * nx + i2) * nx + i1).
std::vector<double> random_field(extent_t nx);

// Charge positions: 0-based *interior* coordinates (each in [0, nx)).
struct Charges {
  std::vector<IndexVec> plus;   // ten largest deviates -> +1
  std::vector<IndexVec> minus;  // ten smallest deviates -> -1
};

// The ten largest / ten smallest positions of `field` (size nx^3).  Ties are
// broken by scan order; the NPB generator never produces ties.
Charges find_charges(const std::vector<double>& field, extent_t nx);

// Fill the extended (nx+2)^3 right-hand side: zero everywhere, +-1 at the
// charge positions (shifted by the ghost layer), ghost layers made
// periodic.  `v_ext` must have size (nx+2)^3.
void fill_rhs(std::span<double> v_ext, extent_t nx);

// Apply periodic boundary conditions to an extended cube in place: each
// ghost layer receives the opposite interior layer, one axis after the
// other (NPB comm3).  `n` is the extended extent; `a` has size n^3.
void periodic_border_3d(std::span<double> a, extent_t n);

// L2 norm of the interior of an extended cube, normalised by the interior
// point count: sqrt( sum_{interior} a^2 / nx^3 )  (NPB norm2u3's rnm2).
double interior_l2_norm(std::span<const double> a, extent_t n);

// Maximum absolute interior value (NPB norm2u3's rnmu).
double interior_max_abs(std::span<const double> a, extent_t n);

}  // namespace sacpp::mg
