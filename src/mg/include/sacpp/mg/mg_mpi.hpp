#pragma once
// Message-passing NAS MG — the paper's second future-work item (Sec. 7):
// "a direct comparison with the MPI-based parallel reference implementation
// of NAS-MG would be interesting."
//
// Structure follows the NPB 2.x MPI implementation, simplified to a 1-D
// slab decomposition (documented in DESIGN.md §4): each of P ranks owns a
// contiguous block of grid planes along the outermost axis, with one halo
// plane on each side exchanged after every kernel, cyclically (periodic
// boundaries).  Grid levels with at least one plane per rank run
// distributed; the coarse tail of the V-cycle is gathered to rank 0 and
// executed serially with the reference kernels (NPB instead idles
// processors — same communication pattern, simpler bookkeeping).
//
// The kernels are the reference kernels (same arithmetic, same order), so
// a distributed run reproduces the serial residual norms to roundoff; the
// tests assert ≤1e-12 relative agreement for 1, 2 and 4 ranks.
//
// Runs on the in-process message-passing world (src/msg) — ranks are
// threads with disjoint data communicating only through Comm — or, via
// run_rank, on any Comm a caller provides, including one rank of a
// socket-backed world (examples/mg_cluster.cpp, docs/net.md), where the
// same program spans OS processes.
//
// With `overlap_halo` (the default) the smoother and residual sweeps
// compute their boundary planes first, post the halo exchange, and overlap
// the interior planes with the in-flight communication.  Plane updates are
// independent, so the overlapped schedule is bitwise identical to the
// post-sweep exchange — only the timing changes.

#include <vector>

#include "sacpp/mg/spec.hpp"
#include "sacpp/msg/msg.hpp"

namespace sacpp::mg {

class MgMpi {
 public:
  struct Result {
    std::vector<double> norms;  // rnm2 after each iteration
    double final_norm = 0.0;
    double seconds = 0.0;       // timed section (iterations only)
    msg::WorldStats comm;       // point-to-point traffic of the timed part
  };

  // ranks must be a power of two with 2 * ranks <= nx.
  MgMpi(const MgSpec& spec, int ranks, bool overlap_halo = true);

  const MgSpec& spec() const { return spec_; }
  int ranks() const { return ranks_; }
  bool overlap_halo() const { return overlap_halo_; }

  // Execute the full benchmark SPMD on an in-process world: setup, optional
  // untimed warm-up iteration, `nit` timed iterations of (V-cycle +
  // residual), per-iteration norms via allreduce.
  Result run(int nit, bool warmup = true) const;

  // One rank's share of the same program on a caller-provided communicator
  // (a transport-bound world's single local rank, or one thread of an
  // in-process world).  comm.size() must equal ranks().  Every rank returns
  // the norms and timing (they are allreduced anyway); `comm` stats are the
  // caller's to collect from its world.
  Result run_rank(msg::Comm& comm, int nit, bool warmup = true) const;

 private:
  MgSpec spec_;
  int ranks_;
  bool overlap_halo_;
};

}  // namespace sacpp::mg
