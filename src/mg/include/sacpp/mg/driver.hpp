#pragma once
// Unified benchmark driver for the three MG implementations.
//
// Follows the NPB measurement protocol: generate the right-hand side, run
// one untimed warm-up iteration, re-initialise, then time exactly `nit`
// iterations of (V-cycle + residual).  Startup and finalisation are excluded
// from the timing, as the benchmark rules require.
//
// Verification: the driver records the residual norm after every iteration
// and the final norm; tests assert cross-implementation agreement and
// convergence behaviour, and EXPERIMENTS.md records the regenerated
// reference values per class.

#include <string>
#include <vector>

#include "sacpp/mg/spec.hpp"

namespace sacpp::mg {

enum class Variant {
  kSac,        // the paper's high-level SAC implementation (mg_sac)
  kFortran,    // serial Fortran-77 reference port (mg_ref)
  kOpenMp,     // Omni C/OpenMP port (mg_omp)
  kSacDirect,  // ghost-free direct-periodic SAC (mg_sac_direct; paper Sec. 7)
};

const char* variant_name(Variant v);
Variant parse_variant(const std::string& name);

struct MgResult {
  Variant variant;
  std::string cls;
  extent_t nx = 0;
  int nit = 0;
  double seconds = 0.0;            // timed section only
  double final_norm = 0.0;         // rnm2 after the last iteration
  std::vector<double> norms;       // rnm2 after each iteration
  double mflops = 0.0;             // NPB's nominal flop-count rate
};

struct RunOptions {
  bool warmup = true;       // one untimed iteration before the timed ones
  bool record_norms = true; // per-iteration norms (costs one resid pass each)
};

// Run the full benchmark for one variant.
MgResult run_benchmark(Variant variant, const MgSpec& spec,
                       const RunOptions& opts = {});

// NPB's nominal operation count for one benchmark run (used for the MFLOPS
// figure): 58 flops per fine-grid point per iteration is the traditional
// approximation used by the NPB reports.
double nominal_flops(const MgSpec& spec);

// Verification: regenerated reference residual norms per standard class
// (cross-checked between the four implementations; class S additionally
// matches the official NPB 2.3 constant).  Returns true and writes the
// reference value when the class has one recorded.
bool reference_norm(const MgSpec& spec, double* out);

// Did this run reproduce the recorded class norm (NPB's 1e-8 relative
// verification tolerance)?  Classes without a recorded value return false
// with `*known = false`.
bool verify(const MgResult& result, const MgSpec& spec, bool* known);

// Render the official NPB-style result block ("MG Benchmark Completed...").
std::string npb_report(const MgResult& result, const MgSpec& spec);

}  // namespace sacpp::mg
